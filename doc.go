// Package vhadoop is a from-scratch Go reproduction of "vHadoop: A Scalable
// Hadoop Virtual Cluster Platform for MapReduce-Based Parallel Machine
// Learning with Performance Consideration" (Ye et al., IEEE CLUSTER 2012
// Workshops).
//
// The repository rebuilds every layer the paper's platform stands on — a
// deterministic discrete-event simulator, a Xen-style virtualization layer
// with pre-copy live migration, an NFS filer, HDFS, a Hadoop-0.20-style
// MapReduce engine, the four Table I benchmarks, the six Mahout-style
// clustering algorithms, the nmon monitor, the MapReduce tuner and the
// Virt-LM migration benchmark — and regenerates every table and figure of
// the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured comparison. The root-level
// bench_test.go holds one benchmark per table and figure:
//
//	go test -bench=. -benchmem .
package vhadoop
