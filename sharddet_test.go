package vhadoop_test

// Differential determinism suite for the sharded simulation core: every
// workload × platform-seed × fault-schedule case runs once on the
// sequential engine and once per shard width, and every artifact the
// platform produces — job output, event trace, observability snapshot,
// span trace, end time, even the error — must be byte-identical. This is
// the contract that makes sim.WithShards safe to enable anywhere: shard
// count is an execution detail, never an observable one.

import (
	"fmt"
	"testing"

	"vhadoop/internal/faults"
	"vhadoop/internal/faults/chaostest"
	"vhadoop/internal/sim/shardtest"
)

// shardWidths are the sharded configurations checked against sequential.
var shardWidths = []int{2, 4, 8}

// shardArtifacts flattens one chaos run into the comparable artifact set.
func shardArtifacts(r chaostest.Result, err error) []shardtest.Digest {
	errs := ""
	if err != nil {
		errs = err.Error()
	}
	return []shardtest.Digest{
		{Name: "error", Data: errs},
		{Name: "output", Data: r.Output},
		{Name: "end", Data: fmt.Sprintf("%v", r.End)},
		{Name: "trace", Data: r.Trace},
		{Name: "metrics", Data: r.Metrics},
		{Name: "spans", Data: r.TraceJSON},
	}
}

func TestShardedPlatformDifferential(t *testing.T) {
	workloads := []chaostest.Workload{
		chaostest.Wordcount(),
		chaostest.TeraSort(),
		chaostest.Canopy(),
		chaostest.DFSIO(),
	}
	platformSeeds := []int64{42, 7, 1234}
	schedules := []struct {
		name string
		seed int64
	}{
		{"fault-free", 0},
		{"chaos5", 5},
		{"chaos9", 9},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, pseed := range platformSeeds {
				for _, sc := range schedules {
					pseed, sc := pseed, sc
					t.Run(fmt.Sprintf("seed%d/%s", pseed, sc.name), func(t *testing.T) {
						var sched faults.Schedule
						if sc.seed != 0 {
							sched = chaostest.GenSchedule(sc.seed, 3, 30)
							if len(sched.Faults) == 0 {
								t.Fatal("empty fault schedule: this case tests nothing")
							}
						}
						seqR, seqErr := chaostest.Run(w, pseed, sched)
						if sc.seed == 0 && seqErr != nil {
							t.Fatalf("fault-free sequential run failed: %v", seqErr)
						}
						// Fault-free platform runs keep the engine trace empty by
						// design (component events live in spans/metrics); only a
						// faulted schedule is guaranteed trace lines.
						if sc.seed != 0 && seqR.Trace == "" {
							t.Fatal("faulted sequential run produced no trace")
						}
						if seqR.Metrics == "" || seqR.TraceJSON == "" {
							t.Fatal("sequential run produced no observability artifacts")
						}
						seq := shardArtifacts(seqR, seqErr)
						for _, n := range shardWidths {
							shR, shErr := chaostest.RunSharded(w, pseed, sched, n)
							shardtest.RequireIdentical(t, fmt.Sprintf("shards=%d", n), seq, shardArtifacts(shR, shErr))
						}
					})
				}
			}
		})
	}
}
