package vhadoop_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// iteration provisions a fresh platform and runs the experiment; the
// reported custom metric "vsec" is the virtual (simulated) time the
// experiment took on the modelled testbed — the quantity the paper plots —
// while ns/op measures the simulator itself.

import (
	"fmt"
	"testing"

	"vhadoop/internal/classify"
	"vhadoop/internal/cloud"
	"vhadoop/internal/clustering"
	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/experiments"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/recommend"
	"vhadoop/internal/sim"
	"vhadoop/internal/virtlm"
	"vhadoop/internal/viz"
	"vhadoop/internal/workloads"
)

func platformOpts(nodes int, layout core.Layout, seed int64) core.Options {
	opts := core.DefaultOptions()
	opts.Nodes = nodes
	opts.Layout = layout
	opts.Seed = seed
	return opts
}

// reportVsec attaches the virtual duration to the benchmark output.
func reportVsec(b *testing.B, v sim.Time) {
	b.Helper()
	b.ReportMetric(v, "vsec")
}

// BenchmarkFig2Wordcount regenerates Figure 2: Wordcount runtime per input
// size for the normal and cross-domain layouts.
func BenchmarkFig2Wordcount(b *testing.B) {
	for _, layout := range []core.Layout{core.Normal, core.CrossDomain} {
		for _, sizeMB := range []float64{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/%.0fMB", layout, sizeMB), func(b *testing.B) {
				var last sim.Time
				for i := 0; i < b.N; i++ {
					pl := core.MustNewPlatform(platformOpts(16, layout, int64(i+1)))
					var res workloads.WordcountResult
					if _, err := pl.Run(func(p *sim.Proc) error {
						var err error
						res, err = workloads.RunWordcount(p, pl, "/wc", sizeMB*1e6, 4, true)
						return err
					}); err != nil {
						b.Fatal(err)
					}
					last = res.Stats.Runtime
				}
				reportVsec(b, last)
			})
		}
	}
}

// BenchmarkFig3aMRBenchMaps regenerates Figure 3(a): MRBench with reduce=1
// and 1..6 maps.
func BenchmarkFig3aMRBenchMaps(b *testing.B) {
	for _, maps := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("maps-%d", maps), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(16, core.Normal, int64(i+1)))
				var res workloads.MRBenchResult
				if _, err := pl.Run(func(p *sim.Proc) error {
					opts := workloads.DefaultMRBenchOptions()
					opts.Maps = maps
					var err error
					res, err = workloads.RunMRBench(p, pl, opts)
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.AvgTime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkFig3bMRBenchReduces regenerates Figure 3(b): MRBench with map=15
// and 1..6 reduces over the tool's classic tiny input.
func BenchmarkFig3bMRBenchReduces(b *testing.B) {
	for _, reduces := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("reduces-%d", reduces), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(16, core.Normal, int64(i+1)))
				var res workloads.MRBenchResult
				if _, err := pl.Run(func(p *sim.Proc) error {
					opts := workloads.DefaultMRBenchOptions()
					opts.Maps = 15
					opts.Reduces = reduces
					opts.BytesPerMap = 2e6
					opts.LinesPerMap = 16
					var err error
					res, err = workloads.RunMRBench(p, pl, opts)
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.AvgTime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkFig4aTeraSort regenerates Figure 4(a): TeraGen + TeraSort over
// data sizes bracketing the spill knee.
func BenchmarkFig4aTeraSort(b *testing.B) {
	for _, sizeMB := range []float64{100, 400, 1000} {
		b.Run(fmt.Sprintf("%.0fMB", sizeMB), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(16, core.Normal, int64(i+1)))
				var res workloads.TeraResult
				if _, err := pl.Run(func(p *sim.Proc) error {
					var err error
					res, err = workloads.RunTeraSort(p, pl, workloads.DefaultTeraOptions(sizeMB*1e6))
					return err
				}); err != nil {
					b.Fatal(err)
				}
				if !res.Validated {
					b.Fatal("terasort output failed validation")
				}
				last = res.GenTime + res.SortTime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkFig4bDFSIO regenerates Figure 4(b): TestDFSIO write then read.
func BenchmarkFig4bDFSIO(b *testing.B) {
	for _, layout := range []core.Layout{core.Normal, core.CrossDomain} {
		b.Run(layout.String(), func(b *testing.B) {
			var readMBps float64
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(16, layout, int64(i+1)))
				if _, err := pl.Run(func(p *sim.Proc) error {
					o := workloads.DFSIOOptions{Files: 8, FileBytes: 128e6}
					w, err := workloads.RunDFSIOWrite(p, pl, o)
					if err != nil {
						return err
					}
					r, err := workloads.RunDFSIORead(p, pl, o)
					if err != nil {
						return err
					}
					readMBps = r.ThroughputMBps
					_ = w
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(readMBps, "readMB/s")
		})
	}
}

// BenchmarkFig5Table2Migration regenerates Figure 5 / Table II: whole-cluster
// live migration, idle vs loaded, per memory size.
func BenchmarkFig5Table2Migration(b *testing.B) {
	for _, memMB := range []float64{512, 1024} {
		b.Run(fmt.Sprintf("idle-%.0fMB", memMB), func(b *testing.B) {
			var res virtlm.Result
			for i := 0; i < b.N; i++ {
				opts := platformOpts(16, core.Normal, int64(i+1))
				opts.VMMemBytes = memMB * 1e6
				pl := core.MustNewPlatform(opts)
				if _, err := pl.Run(func(p *sim.Proc) error {
					var err error
					res, err = virtlm.MigrateCluster(p, pl, "idle", pl.PMs[0], pl.PMs[1])
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportVsec(b, res.OverallTime)
			b.ReportMetric(res.OverallDowntime*1e3, "downtime-ms")
		})
	}
}

// BenchmarkFig6Clustering regenerates Figure 6: the three control-chart
// clustering algorithms across virtual cluster sizes.
func BenchmarkFig6Clustering(b *testing.B) {
	series := datasets.ControlChart(sim.New(42).Rand(), datasets.DefaultControlChartOptions())
	vectors := clustering.FromFloats(datasets.ControlVectors(series))
	for _, nodes := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("canopy-%dnodes", nodes), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(nodes, core.Normal, int64(i+1)))
				d := clustering.NewDriver(pl, "/ml/in")
				var res clustering.Result
				if _, err := pl.Run(func(p *sim.Proc) error {
					if err := d.Load(p, vectors); err != nil {
						return err
					}
					var err error
					res, err = clustering.CanopyMR(p, d,
						clustering.CanopyOptions{T1: 80, T2: 55, Distance: clustering.Euclidean})
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.Runtime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkFig7DisplayClustering regenerates Figure 7: k-means on the
// 1000-sample mixture across cluster sizes (the lightest of the six
// algorithms' sweeps; cmd/vhadoop fig7 runs all of them).
func BenchmarkFig7DisplayClustering(b *testing.B) {
	pts, _ := datasets.DisplayClusteringSample(sim.New(42).Rand())
	vectors := clustering.FromFloats(pts)
	for _, nodes := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("kmeans-%dnodes", nodes), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(nodes, core.Normal, int64(i+1)))
				d := clustering.NewDriver(pl, "/ml/in")
				var res clustering.Result
				if _, err := pl.Run(func(p *sim.Proc) error {
					if err := d.Load(p, vectors); err != nil {
						return err
					}
					var err error
					res, err = clustering.KMeansMR(p, d, d.InitCenters(3), clustering.DefaultKMeansOptions(3))
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.Runtime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkFig8Visualize regenerates Figure 8: one clustering run plus the
// SVG rendering of its convergence.
func BenchmarkFig8Visualize(b *testing.B) {
	res, err := experiments.RunFig8(experiments.Config{Seed: 1, Reps: 1, Nodes: 8, Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	pts, _ := datasets.DisplayClusteringSample(sim.New(1).Rand())
	vectors := clustering.FromFloats(pts)
	kres := clustering.Result{History: [][]clustering.Vector{{{1, 1}, {0, 2}}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = viz.RenderClusters(vectors, kres, viz.DefaultOptions("bench"))
	}
	b.ReportMetric(float64(len(res.Order)), "panels")
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationCombiner measures Wordcount with and without map-side
// combining.
func BenchmarkAblationCombiner(b *testing.B) {
	for _, combine := range []bool{true, false} {
		b.Run(fmt.Sprintf("combiner-%v", combine), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				pl := core.MustNewPlatform(platformOpts(16, core.Normal, int64(i+1)))
				var res workloads.WordcountResult
				if _, err := pl.Run(func(p *sim.Proc) error {
					var err error
					res, err = workloads.RunWordcount(p, pl, "/wc", 1024e6, 4, combine)
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.Stats.Runtime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkAblationLocality measures Wordcount with delay scheduling on
// (default) and with locality-blind task assignment.
func BenchmarkAblationLocality(b *testing.B) {
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("locality-blind-%v", disable), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				opts := platformOpts(16, core.CrossDomain, int64(i+1))
				opts.MR.DisableLocality = disable
				pl := core.MustNewPlatform(opts)
				var res workloads.WordcountResult
				if _, err := pl.Run(func(p *sim.Proc) error {
					var err error
					res, err = workloads.RunWordcount(p, pl, "/wc", 1024e6, 4, true)
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.Stats.Runtime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkAblationReplication sweeps dfs.replication for DFSIO writes.
func BenchmarkAblationReplication(b *testing.B) {
	for _, repl := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replication-%d", repl), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				opts := platformOpts(16, core.Normal, int64(i+1))
				opts.HDFS.Replication = repl
				pl := core.MustNewPlatform(opts)
				if _, err := pl.Run(func(p *sim.Proc) error {
					w, err := workloads.RunDFSIOWrite(p, pl, workloads.DFSIOOptions{Files: 8, FileBytes: 128e6})
					mbps = w.ThroughputMBps
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mbps, "writeMB/s")
		})
	}
}

// BenchmarkAblationHostCache measures DFSIO reads with the dom0 page cache
// (file-backed disks) and without it (blktap O_DIRECT).
func BenchmarkAblationHostCache(b *testing.B) {
	for _, cache := range []bool{true, false} {
		b.Run(fmt.Sprintf("cache-%v", cache), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				opts := platformOpts(16, core.Normal, int64(i+1))
				opts.HDFS.UseHostCache = cache
				pl := core.MustNewPlatform(opts)
				if _, err := pl.Run(func(p *sim.Proc) error {
					o := workloads.DFSIOOptions{Files: 8, FileBytes: 128e6}
					if _, err := workloads.RunDFSIOWrite(p, pl, o); err != nil {
						return err
					}
					r, err := workloads.RunDFSIORead(p, pl, o)
					mbps = r.ThroughputMBps
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mbps, "readMB/s")
		})
	}
}

// BenchmarkAblationSortBuffer sweeps io.sort.mb around the TeraSort knee.
func BenchmarkAblationSortBuffer(b *testing.B) {
	for _, bufMB := range []float64{50, 100, 400} {
		b.Run(fmt.Sprintf("sortbuf-%.0fMB", bufMB), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				opts := platformOpts(16, core.Normal, int64(i+1))
				opts.MR.SortBufferBytes = bufMB * 1e6
				pl := core.MustNewPlatform(opts)
				var res workloads.TeraResult
				if _, err := pl.Run(func(p *sim.Proc) error {
					var err error
					res, err = workloads.RunTeraSort(p, pl, workloads.DefaultTeraOptions(600e6))
					return err
				}); err != nil {
					b.Fatal(err)
				}
				last = res.SortTime
			}
			reportVsec(b, last)
		})
	}
}

// BenchmarkEngineThroughput measures the raw simulator: events processed
// for a full 16-node wordcount, isolating simulator cost from model time.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl := core.MustNewPlatform(platformOpts(16, core.Normal, int64(i+1)))
		if _, err := pl.Run(func(p *sim.Proc) error {
			_, err := workloads.RunWordcount(p, pl, "/wc", 256e6, 4, true)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughputSharded measures the sharded event loop on a
// synthetic multi-domain workload: 8 ownership domains no matter the shard
// count, 4 processes per domain, each stepping through a CPU-bound update
// of domain-owned state followed by an LCG-drawn sleep, with every 8th step
// sending cross-domain at the lookahead horizon. Holding the domain count
// fixed keeps the event stream identical across widths, so shards-1 (the
// plain sequential loop) is the baseline the parallel widths are read
// against.
func BenchmarkEngineThroughputSharded(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			var end sim.Time
			for i := 0; i < b.N; i++ {
				end = runShardedThroughput(int64(i+1), n)
			}
			reportVsec(b, end)
		})
	}
}

// runShardedThroughput is one iteration of the sharded throughput bench.
func runShardedThroughput(seed int64, shards int) sim.Time {
	const (
		domains   = 8
		procsPer  = 4
		steps     = 200
		lookahead = 1.0
	)
	e := sim.New(seed, sim.WithShards(shards), sim.WithLookahead(lookahead))
	state := make([]uint64, domains)
	for d := 0; d < domains; d++ {
		dom := sim.Domain(d + 1)
		for q := 0; q < procsPer; q++ {
			lcg := uint64(seed)*0x9e3779b97f4a7c15 + uint64(d*procsPer+q+1)
			e.SpawnOn(dom, fmt.Sprintf("w%d.%d", d, q), func(p *sim.Proc) {
				for s := 0; s < steps; s++ {
					// CPU-bound phase on domain-owned state: this is the work
					// a wider engine spreads across cores.
					acc := state[d]
					for k := 0; k < 2000; k++ {
						acc = acc*6364136223846793005 + 1442695040888963407
						acc ^= acc >> 29
					}
					state[d] = acc
					lcg = lcg*6364136223846793005 + 1442695040888963407
					p.Sleep(lookahead + sim.Time(lcg>>40%512)/512.0)
					if s%8 == 7 {
						tgt := sim.Domain(int(lcg>>16)%domains + 1)
						p.Send(tgt, lookahead+sim.Time(lcg>>8%256)/256.0, func() {
							state[tgt-1] += 7
						})
					}
				}
			})
		}
	}
	end := e.Run()
	e.Shutdown()
	return end
}

// BenchmarkAblationPlacement compares flat-rack HDFS (the paper's
// unconfigured clusters) against PM-aware placement + selection on a
// cross-domain cluster.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, aware := range []bool{false, true} {
		b.Run(fmt.Sprintf("pm-aware-%v", aware), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				opts := platformOpts(16, core.CrossDomain, int64(i+1))
				opts.HDFS.PMAware = aware
				pl := core.MustNewPlatform(opts)
				if _, err := pl.Run(func(p *sim.Proc) error {
					o := workloads.DFSIOOptions{Files: 8, FileBytes: 128e6}
					if _, err := workloads.RunDFSIOWrite(p, pl, o); err != nil {
						return err
					}
					r, err := workloads.RunDFSIORead(p, pl, o)
					mbps = r.ThroughputMBps
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mbps, "readMB/s")
		})
	}
}

// BenchmarkAblationGangMigration compares sequential cluster migration (the
// paper's method) against concurrent "gang" migration.
func BenchmarkAblationGangMigration(b *testing.B) {
	for _, gang := range []bool{false, true} {
		name := "sequential"
		if gang {
			name = "gang"
		}
		b.Run(name, func(b *testing.B) {
			var res virtlm.Result
			for i := 0; i < b.N; i++ {
				opts := platformOpts(8, core.Normal, int64(i+1))
				opts.VMMemBytes = 512e6
				pl := core.MustNewPlatform(opts)
				if _, err := pl.Run(func(p *sim.Proc) error {
					var err error
					if gang {
						res, err = virtlm.MigrateClusterParallel(p, pl, name, pl.PMs[0], pl.PMs[1])
					} else {
						res, err = virtlm.MigrateCluster(p, pl, name, pl.PMs[0], pl.PMs[1])
					}
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportVsec(b, res.OverallTime)
			b.ReportMetric(res.OverallDowntime*1e3, "downtime-ms")
		})
	}
}

// BenchmarkMLClassification measures the Naive Bayes training job (the ML
// library's classification category).
func BenchmarkMLClassification(b *testing.B) {
	docs := classify.SyntheticDocs(7, []string{"a", "b", "c"}, 80, 25)
	var last sim.Time
	for i := 0; i < b.N; i++ {
		pl := core.MustNewPlatform(platformOpts(8, core.Normal, int64(i+1)))
		tr := classify.NewTrainer(pl, "/bayes")
		if _, err := pl.Run(func(p *sim.Proc) error {
			if err := tr.Load(p, docs); err != nil {
				return err
			}
			_, stats, err := tr.TrainMR(p)
			last = stats.Runtime
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	reportVsec(b, last)
}

// BenchmarkMLRecommendation measures the three-stage item-based
// collaborative filtering pipeline (the ML library's third category).
func BenchmarkMLRecommendation(b *testing.B) {
	prefs := recommend.SyntheticPrefs(5, 3, 20, 40, 12)
	var last sim.Time
	for i := 0; i < b.N; i++ {
		pl := core.MustNewPlatform(platformOpts(8, core.Normal, int64(i+1)))
		job := recommend.NewJob(pl, "/prefs")
		if _, err := pl.Run(func(p *sim.Proc) error {
			if err := job.Load(p, prefs); err != nil {
				return err
			}
			_, stats, err := job.RunMR(p)
			last = 0
			for _, s := range stats {
				last += s.Runtime
			}
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	reportVsec(b, last)
}

// BenchmarkCloudProvision measures on-demand cluster provisioning with VM
// boot (the paper's future-work service).
func BenchmarkCloudProvision(b *testing.B) {
	for _, nodes := range []int{4, 16} {
		b.Run(fmt.Sprintf("%dnodes", nodes), func(b *testing.B) {
			var took sim.Time
			for i := 0; i < b.N; i++ {
				opts := platformOpts(2, core.Normal, int64(i+1))
				pl := core.MustNewPlatform(opts)
				for _, vm := range pl.VMs {
					vm.Shutdown()
				}
				svc := cloud.NewService(pl.Xen, pl.PMs)
				if _, err := pl.Run(func(p *sim.Proc) error {
					defer svc.ReleaseAll()
					start := p.Now()
					req := cloud.Request{
						Name: "bench", Nodes: nodes, VMMemBytes: 1024e6, Boot: true,
						HDFS: hdfs.DefaultConfig(), MR: mapreduce.DefaultConfig(),
					}
					_, err := svc.Provision(p, req)
					took = p.Now() - start
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportVsec(b, took)
		})
	}
}
