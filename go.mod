module vhadoop

go 1.22
