package vhadoop_test

// Determinism suite for the job service: a fixed seed plus a fixed
// submission schedule must reproduce every artifact of a multi-tenant
// backlog byte-for-byte — the per-tenant report, the engine trace, the
// metrics snapshot and the span trace — across independent reruns AND
// across shard widths. The same contract holds with a fault schedule
// firing mid-backlog: chaos decides which jobs fail, but it decides
// identically every time.

import (
	"testing"

	"vhadoop/internal/faults"
	"vhadoop/internal/jobsvc"
	"vhadoop/internal/jobsvc/backlog"
	"vhadoop/internal/sim/shardtest"
)

// backlogArtifacts flattens one run into the comparable artifact set.
func backlogArtifacts(r backlog.Result) []shardtest.Digest {
	return []shardtest.Digest{
		{Name: "report", Data: r.Report},
		{Name: "trace", Data: r.Trace},
		{Name: "metrics", Data: r.Metrics},
		{Name: "spans", Data: r.Spans},
	}
}

// bigBacklog is the acceptance-scale backlog: 100 tenants, 1000 jobs,
// with backfill and preemption armed so every scheduler path runs.
func bigBacklog(shards int) backlog.Options {
	return backlog.Options{
		Nodes:   16,
		Seed:    42,
		Shards:  shards,
		Tenants: 100,
		Jobs:    1000,
		Config: jobsvc.Config{
			Tick: 2, Backfill: true, Preemption: true,
			StarveWait: 40, MaxPreemptPerTick: 2,
		},
	}
}

func TestJobsvcBacklogDeterministic(t *testing.T) {
	run := func(shards int) backlog.Result {
		r, err := backlog.Run(bigBacklog(shards))
		if err != nil {
			t.Fatalf("backlog run (shards=%d) failed: %v", shards, err)
		}
		return r
	}
	base := run(1)
	if base.Admitted != 1000 || base.Rejected != 0 {
		t.Fatalf("admitted %d rejected %d, want 1000/0", base.Admitted, base.Rejected)
	}
	completed, failed := 0, 0
	for _, st := range base.Stats {
		completed += st.Completed
		failed += st.Failed
	}
	if completed+failed != 1000 || failed != 0 {
		t.Fatalf("backlog did not run to completion: %d done %d failed", completed, failed)
	}
	if base.Report == "" || base.Metrics == "" || base.Spans == "" {
		t.Fatal("run produced empty artifacts")
	}
	// The mixed backlog carries asymmetric per-tenant demand, so its Jain
	// index only gets a sanity floor here; the fairness acceptance number
	// (>= 0.9) is measured by the bench on the uniform-demand shape, where
	// any share skew is the scheduler's own doing.
	if base.Jain <= 0.2 {
		t.Fatalf("weighted Jain index = %.3f, want > 0.2", base.Jain)
	}
	if base.Backfills == 0 {
		t.Fatal("big backlog exercised no backfill")
	}
	want := backlogArtifacts(base)
	shardtest.RequireIdentical(t, "rerun", want, backlogArtifacts(run(1)))
	shardtest.RequireIdentical(t, "shards=4", want, backlogArtifacts(run(4)))
}

// TestJobsvcChaosBacklogDeterministic drives a 20-job backlog through a
// VM crash plus a machine partition. Whatever the faults do to
// individual jobs, the terminal state of every job — and every artifact
// of the run — must replay identically.
func TestJobsvcChaosBacklogDeterministic(t *testing.T) {
	opts := backlog.Options{
		Nodes:    8,
		Seed:     7,
		Tenants:  5,
		Jobs:     20,
		Hardened: true,
		Config:   jobsvc.Config{Tick: 2, Backfill: true},
		FaultsAfterStart: faults.Schedule{Faults: []faults.Fault{
			{At: 10, Kind: faults.KindVMCrash, Target: "vm05"},
			{At: 25, Kind: faults.KindPartition, Target: "pm2", Duration: 20},
		}},
	}
	run := func() backlog.Result {
		r, err := backlog.Run(opts)
		if err != nil {
			t.Fatalf("chaos backlog run failed: %v", err)
		}
		return r
	}
	r1, r2 := run(), run()
	completed, failed := 0, 0
	for _, st := range r1.Stats {
		completed += st.Completed
		failed += st.Failed
	}
	if completed+failed != 20 {
		t.Fatalf("jobs unaccounted for: %d done + %d failed != 20", completed, failed)
	}
	if r1.Trace == "" {
		t.Fatal("faulted run produced no trace")
	}
	shardtest.RequireIdentical(t, "chaos-rerun", backlogArtifacts(r1), backlogArtifacts(r2))
}
