package vhadoop_test

// Regression tests for the data-plane determinism guarantee: the sorted
// map-side spills and the reduce-side k-way merge must leave every job's
// output — record order included — exactly reproducible under a fixed seed.
// These would catch an unstable spill sort, a merge that breaks ties by the
// wrong run, or a partitioner change silently re-routing keys.

import (
	"testing"

	"vhadoop/internal/clustering"
	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/faults"
	"vhadoop/internal/faults/chaostest"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/obs"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// runWordcountOnce runs a 4-reduce wordcount on a fresh same-seed platform
// and returns the ordered output records and the virtual finish time.
func runWordcountOnce(t *testing.T) ([]mapreduce.KV, sim.Time) {
	t.Helper()
	pl := core.MustNewPlatform(platformOpts(8, core.Normal, 42))
	var out []mapreduce.KV
	vsec, err := pl.Run(func(p *sim.Proc) error {
		recs := datasets.Text(pl.Engine.Rand(), datasets.DefaultTextOptions(32e6))
		if _, err := pl.LoadText(p, "/wc", 32e6, recs); err != nil {
			return err
		}
		h, err := pl.MR.Submit(p, workloads.WordcountJob("/wc", "", 4, true))
		if err != nil {
			return err
		}
		if _, err := h.Wait(p); err != nil {
			return err
		}
		out = h.OutputRecords()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, vsec
}

func TestWordcountOutputDeterministic(t *testing.T) {
	out1, vsec1 := runWordcountOnce(t)
	out2, vsec2 := runWordcountOnce(t)
	if vsec1 != vsec2 {
		t.Fatalf("virtual time differs across same-seed runs: %v vs %v", vsec1, vsec2)
	}
	if len(out1) == 0 || len(out1) != len(out2) {
		t.Fatalf("output lengths differ: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		if out1[i].Key != out2[i].Key || out1[i].Value != out2[i].Value {
			t.Fatalf("record %d differs: %s=%v vs %s=%v",
				i, out1[i].Key, out1[i].Value, out2[i].Key, out2[i].Value)
		}
	}
}

// runKMeansOnce runs exactly 3 k-means iterations on a fresh same-seed
// platform and returns the resulting centers and history.
func runKMeansOnce(t *testing.T) clustering.Result {
	t.Helper()
	series := datasets.ControlChart(sim.New(7).Rand(), datasets.DefaultControlChartOptions())
	vectors := clustering.FromFloats(datasets.ControlVectors(series))
	initial := []clustering.Vector{
		vectors[0].Clone(), vectors[100].Clone(), vectors[200].Clone(),
		vectors[300].Clone(), vectors[400].Clone(), vectors[500].Clone(),
	}
	opts := clustering.DefaultKMeansOptions(len(initial))
	opts.MaxIter = 3
	opts.Epsilon = 0 // run all 3 iterations regardless of convergence

	pl := core.MustNewPlatform(platformOpts(8, core.Normal, 42))
	d := clustering.NewDriver(pl, "/ml/in")
	var res clustering.Result
	if _, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, vectors); err != nil {
			return err
		}
		var err error
		res, err = clustering.KMeansMR(p, d, initial, opts)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Iterations)
	}
	return res
}

func TestKMeansCentersDeterministic(t *testing.T) {
	r1 := runKMeansOnce(t)
	r2 := runKMeansOnce(t)
	if len(r1.History) != len(r2.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(r1.History), len(r2.History))
	}
	// Centers after every iteration must match bitwise: floating-point sums
	// are order-sensitive, so this fails if the shuffle feeds partials to
	// the reducers in a different order between runs.
	for it := range r1.History {
		for c := range r1.History[it] {
			v1, v2 := r1.History[it][c], r2.History[it][c]
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("iteration %d center %d dim %d differs: %v vs %v",
						it, c, i, v1[i], v2[i])
				}
			}
		}
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, r1.Assignments[i], r2.Assignments[i])
		}
	}
}

// TestFaultedRunTraceDeterministic extends the determinism guarantee to the
// fault path: a fixed platform seed plus a fixed fault schedule must
// reproduce a byte-identical event trace — fault firings, recoveries,
// re-replication, tracker death and requeues included — across independent
// runs. This is what makes a chaos failure replayable from two integers.
func TestFaultedRunTraceDeterministic(t *testing.T) {
	sched := faults.Schedule{Faults: []faults.Fault{
		{At: 3, Kind: faults.KindDegrade, Target: "pm2", Duration: 6, Factor: 0.25},
		{At: 5, Kind: faults.KindNFSStall, Target: "filer", Duration: 4, Factor: 0.5},
		{At: 7, Kind: faults.KindVMCrash, Target: "vm05"},
		{At: 9, Kind: faults.KindHang, Target: "vm02", Duration: 20},
	}}
	run := func() chaostest.Result {
		r, err := chaostest.Run(chaostest.Wordcount(), 42, sched)
		if err != nil {
			t.Fatalf("faulted run failed: %v", err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Trace == "" {
		t.Fatal("empty trace: nothing was exercised")
	}
	if r1.Trace != r2.Trace {
		t.Fatalf("traces differ across same-seed faulted runs: %d vs %d bytes",
			len(r1.Trace), len(r2.Trace))
	}
	if r1.Output != r2.Output || r1.End != r2.End {
		t.Fatal("output or end time differ across same-seed faulted runs")
	}
	// The observability exports inherit the guarantee: the metrics snapshot
	// (Prometheus text) and the span trace (JSON) must be byte-identical
	// across same-seed faulted runs, so dashboards and timelines replay too.
	if r1.Metrics == "" || r1.TraceJSON == "" {
		t.Fatal("observability exports are empty")
	}
	if r1.Metrics != r2.Metrics {
		t.Fatalf("metrics snapshots differ across same-seed faulted runs: %d vs %d bytes",
			len(r1.Metrics), len(r2.Metrics))
	}
	if r1.TraceJSON != r2.TraceJSON {
		t.Fatalf("span traces differ across same-seed faulted runs: %d vs %d bytes",
			len(r1.TraceJSON), len(r2.TraceJSON))
	}
	tr, err := obs.DecodeTrace([]byte(r1.TraceJSON))
	if err != nil {
		t.Fatalf("exported span trace does not decode: %v", err)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("exported span trace holds no spans")
	}
	// And the schedule itself round-trips through its codec, so the trace
	// is reproducible from the schedule *file*, not just the in-memory value.
	dec, err := faults.DecodeString(faults.EncodeString(sched))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := chaostest.Run(chaostest.Wordcount(), 42, dec)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Trace != r1.Trace {
		t.Fatal("decoded schedule produced a different trace")
	}
}
