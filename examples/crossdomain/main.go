// Crossdomain compares the same workloads on a normal virtual cluster (all
// 16 VMs on one physical machine) and a cross-domain one (8+8 across two) —
// a miniature of the paper's static performance study (Figures 2 and 4b).
package main

import (
	"fmt"
	"log"

	"vhadoop/internal/core"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

type row struct {
	wcRuntime sim.Time
	writeMBps float64
	readMBps  float64
}

func measure(layout core.Layout) row {
	opts := core.DefaultOptions()
	opts.Layout = layout
	pl := core.MustNewPlatform(opts)
	var out row
	_, err := pl.Run(func(p *sim.Proc) error {
		wc, err := workloads.RunWordcount(p, pl, "/cd/corpus", 1024e6, 4, true)
		if err != nil {
			return err
		}
		out.wcRuntime = wc.Stats.Runtime
		io := workloads.DFSIOOptions{Files: 8, FileBytes: 128e6}
		w, err := workloads.RunDFSIOWrite(p, pl, io)
		if err != nil {
			return err
		}
		out.writeMBps = w.ThroughputMBps
		r, err := workloads.RunDFSIORead(p, pl, io)
		if err != nil {
			return err
		}
		out.readMBps = r.ThroughputMBps
		return nil
	})
	if err != nil {
		log.Fatalf("%v run failed: %v", layout, err)
	}
	return out
}

func main() {
	normal := measure(core.Normal)
	cross := measure(core.CrossDomain)

	fmt.Println("16-node hadoop virtual cluster: normal vs cross-domain")
	fmt.Printf("%-28s %12s %14s\n", "metric", "normal", "cross-domain")
	fmt.Printf("%-28s %10.1f s %12.1f s\n", "wordcount 1 GB runtime", normal.wcRuntime, cross.wcRuntime)
	fmt.Printf("%-28s %7.1f MB/s %9.1f MB/s\n", "DFSIO write throughput", normal.writeMBps, cross.writeMBps)
	fmt.Printf("%-28s %7.1f MB/s %9.1f MB/s\n", "DFSIO read throughput", normal.readMBps, cross.readMBps)
	fmt.Println()
	fmt.Println("Reads hit the dom0 page cache of the machine holding the replica;")
	fmt.Println("a cross-domain cluster pays the gigabit inter-machine link instead,")
	fmt.Println("while writes are serialised by the shared NFS filer either way.")
}
