// Migration reproduces the paper's dynamic performance study in miniature:
// live-migrate a whole hadoop virtual cluster between physical machines,
// idle and under a running Wordcount, and show that the job survives the
// downtime thanks to Hadoop's fault tolerance (paper §III-C).
package main

import (
	"fmt"
	"log"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/sim"
	"vhadoop/internal/virtlm"
	"vhadoop/internal/workloads"
)

func migrateIdle(memMB float64) virtlm.Result {
	opts := core.DefaultOptions()
	opts.Nodes = 8
	opts.VMMemBytes = memMB * 1e6
	pl := core.MustNewPlatform(opts)
	var res virtlm.Result
	_, err := pl.Run(func(p *sim.Proc) error {
		var err error
		res, err = virtlm.MigrateCluster(p, pl, fmt.Sprintf("idle.%.0fMB", memMB), pl.PMs[0], pl.PMs[1])
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func migrateBusy(memMB float64) virtlm.Result {
	opts := core.DefaultOptions()
	opts.Nodes = 8
	opts.VMMemBytes = memMB * 1e6
	pl := core.MustNewPlatform(opts)
	var res virtlm.Result
	_, err := pl.Run(func(p *sim.Proc) error {
		size := 2048e6 * 8
		recs := datasets.Text(pl.Engine.Rand(), datasets.DefaultTextOptions(size))
		if _, err := pl.LoadText(p, "/mig/corpus", size, recs); err != nil {
			return err
		}
		h, err := pl.MR.Submit(p, workloads.WordcountJob("/mig/corpus", "", 4, true))
		if err != nil {
			return err
		}
		// Migrate once the job is deep in its map phase.
		for {
			mapsDone, maps, _, _ := h.Progress()
			if mapsDone >= maps/16+1 || h.Done() {
				break
			}
			p.Sleep(5)
		}
		res, err = virtlm.MigrateCluster(p, pl, fmt.Sprintf("wordcount.%.0fMB", memMB), pl.PMs[0], pl.PMs[1])
		if err != nil {
			return err
		}
		// Hadoop's fault tolerance rides out the per-VM downtimes: the job
		// must still complete correctly.
		if _, err := h.Wait(p); err != nil {
			return fmt.Errorf("wordcount did not survive the migration: %w", err)
		}
		fmt.Println("wordcount survived the cluster migration and completed")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Live migration of an 8-node hadoop virtual cluster (Virt-LM)")
	fmt.Println()
	results := []virtlm.Result{
		migrateIdle(1024),
		migrateIdle(512),
		migrateBusy(1024),
		migrateBusy(512),
	}
	fmt.Println()
	fmt.Println("Table II (miniature): overall migration time and downtime")
	for _, r := range results {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println()
	fmt.Println("Per-VM detail of the loaded 1024 MB run:")
	for _, s := range results[2].PerVM {
		fmt.Printf("  %s\n", s)
	}
}
