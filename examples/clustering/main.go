// Clustering runs all six MapReduce-based parallel clustering algorithms of
// the paper's Machine Learning Algorithm Library on the 1000-sample
// DisplayClustering mixture, prints their statistics, and writes Figure
// 8-style convergence SVGs to ./clustering-out/.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vhadoop/internal/clustering"
	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/sim"
	"vhadoop/internal/viz"
)

func main() {
	opts := core.DefaultOptions()
	opts.Nodes = 8

	pts, _ := datasets.DisplayClusteringSample(sim.New(opts.Seed).Rand())
	vectors := clustering.FromFloats(pts)

	type algo struct {
		name string
		run  func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error)
	}
	algos := []algo{
		{"canopy", func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.CanopyMR(p, d, clustering.CanopyOptions{T1: 3, T2: 1.5, Distance: clustering.Euclidean})
		}},
		{"dirichlet", func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.DirichletMR(p, d, clustering.DefaultDirichletOptions(10))
		}},
		{"fuzzykmeans", func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			o := clustering.DefaultFuzzyKMeansOptions(3)
			o.M = 3
			return clustering.FuzzyKMeansMR(p, d, d.InitCenters(3), o)
		}},
		{"kmeans", func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.KMeansMR(p, d, d.InitCenters(3), clustering.DefaultKMeansOptions(3))
		}},
		{"meanshift", func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.MeanShiftMR(p, d, clustering.DefaultMeanShiftOptions(2, 1))
		}},
		{"minhash", func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.MinHashMR(p, d, clustering.DefaultMinHashOptions())
		}},
	}

	outDir := "clustering-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	sample := viz.RenderClusters(vectors, clustering.Result{}, viz.DefaultOptions("Sample Data"))
	if err := os.WriteFile(filepath.Join(outDir, "sample-data.svg"), []byte(sample), 0o644); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %6s %8s %6s\n", "algorithm", "runtime", "iters", "clusters", "jobs")
	for _, a := range algos {
		// Fresh platform per algorithm so runs are independent (the paper
		// runs each program separately).
		pl := core.MustNewPlatform(opts)
		d := clustering.NewDriver(pl, "/ml/input")
		var res clustering.Result
		_, err := pl.Run(func(p *sim.Proc) error {
			if err := d.Load(p, vectors); err != nil {
				return err
			}
			var err error
			res, err = a.run(p, d)
			return err
		})
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		fmt.Printf("%-12s %8.1f s %6d %8d %6d\n",
			a.name, res.Runtime, res.Iterations, len(res.Centers), len(res.JobStats))
		svg := viz.RenderClusters(vectors, res, viz.DefaultOptions(a.name))
		path := filepath.Join(outDir, a.name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nconvergence SVGs written to %s/\n", outDir)
}
