// Cloud demonstrates the paper's future work brought to life: an EC2-style
// on-demand service over the physical pool. A tenant rents a hadoop virtual
// cluster, runs Wordcount, scales out for a Naive Bayes training job
// (classification — the ML library's second category), gets item-based
// recommendations (the third category), scales back in without losing HDFS
// data, and releases the lease.
package main

import (
	"fmt"
	"log"

	"vhadoop/internal/classify"
	"vhadoop/internal/cloud"
	"vhadoop/internal/core"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/recommend"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

func main() {
	// The provider's pool: the standard two-machine testbed.
	opts := core.DefaultOptions()
	opts.Nodes = 2
	base := core.MustNewPlatform(opts)
	for _, vm := range base.VMs {
		vm.Shutdown() // the service owns all capacity
	}
	svc := cloud.NewService(base.Xen, base.PMs)

	_, err := base.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()

		fmt.Println("provisioning an 8-node hadoop virtual cluster (with VM boot)...")
		req := cloud.Request{
			Name: "tenant", Nodes: 8, VMMemBytes: 1024e6, Boot: true,
			HDFS: hdfs.DefaultConfig(), MR: mapreduce.DefaultConfig(),
		}
		t0 := p.Now()
		lease, err := svc.Provision(p, req)
		if err != nil {
			return err
		}
		fmt.Printf("  ready in %.1f s (image streaming from the NFS filer dominates)\n", p.Now()-t0)

		// A tenant-view platform reuses the workload helpers.
		tp := *base
		tp.VMs, tp.Master, tp.DFS, tp.MR = lease.VMs, lease.Master, lease.DFS, lease.MR

		wc, err := workloads.RunWordcount(p, &tp, "/t/corpus", 512e6, 4, true)
		if err != nil {
			return err
		}
		fmt.Printf("wordcount on 7 workers: %.1f s\n", wc.Stats.Runtime)

		fmt.Println("scaling out by 8 workers...")
		if err := lease.ScaleOut(p, 8); err != nil {
			return err
		}

		// Classification: train Naive Bayes and classify a held-out set.
		trainer := classify.NewTrainer(&tp, "/t/bayes")
		docs := classify.SyntheticDocs(7, []string{"sports", "science", "politics"}, 60, 25)
		if err := trainer.Load(p, docs); err != nil {
			return err
		}
		model, stats, err := trainer.TrainMR(p)
		if err != nil {
			return err
		}
		held := classify.SyntheticDocs(99, []string{"sports", "science", "politics"}, 20, 25)
		fmt.Printf("naive bayes trained in %.1f s; held-out accuracy %.0f%%\n",
			stats.Runtime, classify.Accuracy(model, held)*100)

		// Recommendations: item-based collaborative filtering.
		rec := recommend.NewJob(&tp, "/t/prefs")
		prefs := recommend.SyntheticPrefs(5, 3, 15, 30, 12)
		if err := rec.Load(p, prefs); err != nil {
			return err
		}
		recs, recStats, err := rec.RunMR(p)
		if err != nil {
			return err
		}
		var totalRecTime sim.Time
		for _, s := range recStats {
			totalRecTime += s.Runtime
		}
		fmt.Printf("item-based recommender: 3 jobs, %.1f s, recommendations for %d users\n",
			totalRecTime, len(recs))

		fmt.Println("scaling in by 8 workers (HDFS drains via re-replication)...")
		if err := lease.ScaleIn(p, 8); err != nil {
			return err
		}
		if n := len(lease.DFS.UnderReplicated()); n != 0 {
			return fmt.Errorf("%d blocks under-replicated after scale-in", n)
		}
		fmt.Printf("workers remaining: %d; all data fully replicated\n", len(lease.Workers()))

		lease.Release()
		fmt.Printf("lease released; pool free memory: pm1=%.0f GB pm2=%.0f GB\n",
			base.PMs[0].MemFree()/1e9, base.PMs[1].MemFree()/1e9)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
