// Quickstart: provision a 16-node hadoop virtual cluster, load a 512 MB
// corpus into HDFS and run Wordcount — the "hello world" of the vHadoop
// platform. Prints job statistics and the ten most frequent words.
package main

import (
	"fmt"
	"log"
	"sort"

	"vhadoop/internal/core"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

func main() {
	// A platform is a simulated testbed: two physical machines, an NFS
	// filer, and a virtual cluster of VMs running HDFS + MapReduce daemons.
	pl := core.MustNewPlatform(core.DefaultOptions())

	var res workloads.WordcountResult
	end, err := pl.Run(func(p *sim.Proc) error {
		var err error
		res, err = workloads.RunWordcount(p, pl, "/quickstart/corpus", 512e6, 4, true)
		return err
	})
	if err != nil {
		log.Fatalf("wordcount failed: %v", err)
	}

	s := res.Stats
	fmt.Printf("Wordcount over %.0f MB on a %d-node %s cluster\n",
		res.InputBytes/1e6, pl.Opts.Nodes, pl.Opts.Layout)
	fmt.Printf("  job runtime:      %.1f s (virtual)\n", s.Runtime)
	fmt.Printf("  map tasks:        %d (%d data-local)\n", s.MapTasks, s.LocalMaps)
	fmt.Printf("  reduce tasks:     %d\n", s.ReduceTasks)
	fmt.Printf("  shuffled:         %.1f MB\n", s.ShuffledBytes/1e6)
	fmt.Printf("  distinct words:   %d\n", len(res.Counts))
	fmt.Printf("  simulation ended: t=%.1f s\n", end)

	type wc struct {
		word string
		n    int
	}
	// Build the ranking from sorted words so the printed top-10 is
	// deterministic by construction, not by the tiebreak below.
	words := make([]string, 0, len(res.Counts))
	for w := range res.Counts {
		words = append(words, w)
	}
	sort.Strings(words)
	top := make([]wc, 0, len(words))
	for _, w := range words {
		top = append(top, wc{w, res.Counts[w]})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].word < top[j].word
	})
	fmt.Println("  top words:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Printf("    %-10s %6d\n", top[i].word, top[i].n)
	}
}
