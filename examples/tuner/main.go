// Tuner demonstrates the closed loop of the paper's nmon Monitor +
// MapReduce Tuner: run a shuffle-heavy job on a cross-domain cluster while
// nmon samples every VM and shared resource, let the tuner read the report,
// apply its recommendations (including live-migrating the remote VMs back
// onto one machine), and re-run the job to show the effect.
package main

import (
	"fmt"
	"log"

	"vhadoop/internal/core"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
	"vhadoop/internal/sim"
	"vhadoop/internal/tuner"
	"vhadoop/internal/workloads"
)

// shuffleHeavy builds an identity job whose full input volume crosses the
// shuffle — the workload that makes a cross-domain layout hurt.
func shuffleHeavy(input string) mapreduce.JobConfig {
	cfg := workloads.WordcountJob(input, "", 4, false)
	cfg.Name = "shuffle-heavy"
	return cfg
}

func main() {
	opts := core.DefaultOptions()
	opts.Layout = core.CrossDomain
	pl := core.MustNewPlatform(opts)

	mon := nmon.New(pl.Engine, nmon.WithInterval(2.0), nmon.WithPlane(pl.Obs))
	for _, vm := range pl.VMs {
		mon.Watch(vm)
	}
	for _, pm := range pl.PMs {
		mon.WatchMachine(pm)
	}
	mon.WatchDisk(pl.Filer.Disk)
	mon.Start()

	var before, after mapreduce.JobStats
	var recs []tuner.Recommendation
	_, err := pl.Run(func(p *sim.Proc) error {
		wc, err := workloads.RunWordcount(p, pl, "/tuner/corpus", 2048e6, 4, false)
		if err != nil {
			return err
		}
		before = wc.Stats

		// The tuner reads a registry snapshot alone: the monitor publishes
		// its summaries into the observability plane, the MapReduce and
		// platform layers publish job history and cluster shape, and
		// EvaluateReader reconstructs its decision inputs from that export
		// without touching the monitor's internals.
		report := mon.Analyze()
		recs = tuner.New().EvaluateReader(pl.Obs.Snapshot())
		fmt.Printf("nmon bottleneck: %s (%s) at %.0f%% utilisation\n",
			report.Bottleneck.Resource, report.Bottleneck.Kind, report.Bottleneck.MeanUtil*100)
		for _, r := range recs {
			fmt.Printf("tuner: %s\n", r)
		}

		// Apply the recommendations: parameter changes fold into the running
		// cluster's configuration; consolidation live-migrates VMs.
		newCfg := tuner.Apply(pl.MR.Config(), recs)
		if newCfg != pl.MR.Config() {
			fmt.Printf("applying: io.sort.mb %.0f -> %.0f MB, map slots %d -> %d\n",
				pl.MR.Config().SortBufferBytes/1e6, newCfg.SortBufferBytes/1e6,
				pl.MR.Config().MapSlots, newCfg.MapSlots)
			// The spill diagnosis repeats until the buffer fits the data.
			for i := 0; i < 4; i++ {
				newCfg.SortBufferBytes *= 2
			}
			pl.MR.Reconfigure(newCfg)
		}
		for _, r := range recs {
			if r.Action == tuner.ActionConsolidate {
				fmt.Println("applying: live-migrating remote VMs onto pm1 ...")
				stats, err := pl.MigrateWorkers(p, pl.PMs[1], pl.PMs[0])
				if err != nil {
					return err
				}
				fmt.Printf("  migrated %d VMs\n", len(stats))
			}
		}

		h, err := pl.MR.Submit(p, shuffleHeavy("/tuner/corpus"))
		if err != nil {
			return err
		}
		after, err = h.Wait(p)
		if err != nil {
			return err
		}
		mon.Stop()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\njob runtime before tuning: %.1f s\n", before.Runtime)
	fmt.Printf("job runtime after tuning:  %.1f s\n", after.Runtime)
	if len(recs) == 0 {
		fmt.Println("(the tuner saw nothing to fix on this run)")
	}
}
