#!/usr/bin/env bash
# bench.sh — run the data-plane acceptance benchmarks and record the results
# as JSON (default BENCH_PR8.json in the repo root).
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   COUNT      repetitions per benchmark (default 5); the JSON records the
#              minimum ns/op across repetitions, the most noise-robust
#              statistic on a shared machine
#   BENCHTIME  passed to -benchtime (default 200x: fixed iteration counts so
#              every repetition does identical work)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR8.json}
COUNT=${COUNT:-5}
BENCHTIME=${BENCHTIME:-200x}

# Preflight: never record numbers off a tree that violates the invariants
# the numbers are meant to demonstrate (set SKIP_LINT=1 to bypass).
if [[ "${SKIP_LINT:-0}" != 1 ]]; then
  scripts/lint.sh >&2
fi

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() { # run <package> <bench regex>
  go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -count "$COUNT" "$1" 2>/dev/null |
    grep -E '^Benchmark' >>"$TMP" || true
}

echo "running macro benchmarks (engine throughput, Fig6 canopy, Fig4a terasort)..." >&2
run . 'BenchmarkEngineThroughput$'
run . 'BenchmarkEngineThroughputSharded'
run . 'BenchmarkFig6Clustering/canopy-16nodes'
run . 'BenchmarkFig4aTeraSort'

echo "running data-plane micro benchmarks..." >&2
run ./internal/mapreduce 'BenchmarkReduceMergeVsSort|BenchmarkSortKVs|BenchmarkDefaultPartition'
run ./internal/clustering 'BenchmarkSquaredEuclidean60|BenchmarkManhattan60|BenchmarkCosine60|BenchmarkNearestSquared'

echo "running observability-plane micro benchmarks..." >&2
run ./internal/obs 'BenchmarkCounterAdd|BenchmarkRegistryLookup|BenchmarkSnapshotPrometheus|BenchmarkTracerSpan$|BenchmarkTracerSpanSampled|BenchmarkVecWithHit|BenchmarkEventf'

# Fold repetitions into min ns/op per benchmark and emit JSON (portable awk:
# the first pass computes minima, sort orders the names, the second pass
# assembles the JSON).
awk '
  {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    ns = $3
    if (!(name in best) || ns < best[name]) best[name] = ns
    for (i = 4; i < NF; i++)
      if ($(i + 1) == "vsec" && !(name in vsec)) vsec[name] = $i
  }
  END {
    for (name in best)
      print name, best[name], (name in vsec ? vsec[name] : "-")
  }
' "$TMP" | sort | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
                     -v benchtime="$BENCHTIME" -v count="$COUNT" \
                     -v cores="$(nproc 2>/dev/null || echo 1)" '
  BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"count\": %d,\n  \"cores\": %d,\n  \"stat\": \"min ns/op\",\n  \"results\": {\n", date, benchtime, count, cores
    sep = ""
  }
  {
    printf "%s    \"%s\": {\"ns_per_op\": %s", sep, $1, $2
    if ($3 != "-") printf ", \"vsec\": %s", $3
    printf "}"
    sep = ",\n"
  }
  END { print "\n  }\n}" }
' >"$OUT"

echo "wrote $OUT" >&2
