#!/usr/bin/env bash
# jobsvc_smoke.sh — job-service regression gate for CI.
#
# Runs the quick jobsvc backlog study (go run ./cmd/vhadoop -quick jobsvc)
# and gates its virtual-time metrics against the BENCH_PR10 smoke pins:
#
#   1. mixed-shape p99 job wait within MARGIN percent of the pin — the
#      scheduler-quality number. Virtual time is deterministic, so any
#      movement here is a real scheduling change, not host noise; the
#      margin only keeps deliberate small scheduler tweaks from needing a
#      pin refresh in the same commit.
#   2. uniform-shape weighted Jain index >= JAIN_FLOOR — the fairness
#      acceptance number. Uniform demand means any slot-share skew is the
#      scheduler's own doing.
#
# Full-scale numbers (100 tenants x 1000 jobs) come from
# scripts/jobsvc_bench.sh and are recorded in BENCH_PR10.json.
#
# Usage:
#   scripts/jobsvc_smoke.sh
#
# Environment:
#   PIN_FILE    JSON file holding the smoke pins (default BENCH_PR10.json)
#   MARGIN      tolerated p99-wait growth over the pin, percent (default 10)
#   JAIN_FLOOR  minimum uniform-shape Jain index (default 0.9)
set -euo pipefail
cd "$(dirname "$0")/.."

PIN_FILE=${PIN_FILE:-BENCH_PR10.json}
MARGIN=${MARGIN:-10}
JAIN_FLOOR=${JAIN_FLOOR:-0.9}

# read_pin <shape key> <metric key>: the first <metric> after <shape>
# inside the "smoke" section.
read_pin() {
  awk -v shape="\"shape_$1\"" -v metric="\"$2\"" '
    /"smoke"/ { smoke = 1 }
    smoke && index($0, shape) {
      v = $0
      sub(".*" metric ": *", "", v)
      sub(/[,}].*/, "", v)
      print v
      exit
    }
  ' "$PIN_FILE"
}

p99_pin=$(read_pin mixed p99_wait_s)
if [[ -z "$p99_pin" ]]; then
  echo "jobsvc_smoke: no smoke mixed p99_wait_s pin in $PIN_FILE" >&2
  exit 2
fi

echo "jobsvc_smoke: quick backlog study vs $PIN_FILE (p99 pin ${p99_pin}s +${MARGIN}%, Jain floor $JAIN_FLOOR)" >&2
out=$(go run ./cmd/vhadoop -quick jobsvc | grep '^jobsvc-bench')
echo "$out" >&2

metric() {
  echo "$out" | awk -v shape="shape=$1" -v key="$2" '
    $0 ~ shape {
      for (i = 1; i <= NF; i++)
        if (split($i, kv, "=") == 2 && kv[1] == key) print kv[2]
    }
  '
}

p99=$(metric mixed p99_wait_s)
jain=$(metric uniform jain)
if [[ -z "$p99" || -z "$jain" ]]; then
  echo "jobsvc_smoke: FAIL — study output missing jobsvc-bench metrics" >&2
  exit 1
fi

awk -v p99="$p99" -v pin="$p99_pin" -v margin="$MARGIN" \
    -v jain="$jain" -v floor="$JAIN_FLOOR" '
  BEGIN {
    limit = pin * (1 + margin / 100)
    printf "jobsvc_smoke: mixed p99 wait %.2fs, limit %.2fs\n", p99, limit > "/dev/stderr"
    printf "jobsvc_smoke: uniform Jain %.4f, floor %.2f\n", jain, floor > "/dev/stderr"
    fail = 0
    if (p99 > limit) {
      printf "jobsvc_smoke: FAIL — p99 wait regressed beyond the pin by >%s%%\n", margin > "/dev/stderr"
      fail = 1
    }
    if (jain < floor) {
      printf "jobsvc_smoke: FAIL — uniform Jain index below %.2f\n", floor > "/dev/stderr"
      fail = 1
    }
    if (fail) exit 1
    print "jobsvc_smoke: ok" > "/dev/stderr"
  }
'
