#!/usr/bin/env bash
# bench_smoke.sh — fast bench-regression gate for CI.
#
# Two gates, both at a reduced -benchtime:
#
#   1. BenchmarkEngineThroughput vs the pinned BENCH_PR1 number — the
#      sequential hot path. The sharded engine rides on the same event loop
#      structs, so this is also the "WithShards support costs the
#      sequential path nothing" check.
#   2. BenchmarkEngineThroughputSharded/1 vs its BENCH_PR9 pin — the
#      nshards>1 machinery at width 1, which must reduce to the sequential
#      loop and therefore must not drift either.
#
# Fails if the minimum ns/op across repetitions exceeds the pin by more
# than MARGIN percent. This is a smoke test, not a measurement: it exists
# so an accidental hot-path regression (a registry lookup creeping back
# into a per-event path, say) fails the build instead of landing silently.
# Full numbers come from scripts/bench.sh.
#
# Usage:
#   scripts/bench_smoke.sh
#
# Environment:
#   PIN_FILE        JSON file holding the EngineThroughput pin (default
#                   BENCH_PR1.json). When the file has a "pr1_baseline"
#                   section (a same-machine re-measure recorded in a later
#                   BENCH_PRn.json), point PIN_FILE there for an
#                   apples-to-apples gate.
#   SHARD_PIN_FILE  JSON file holding the Sharded/1 pin (default
#                   BENCH_PR9.json); gate skipped if the file or key is
#                   absent.
#   MARGIN          tolerated regression over the pin, percent (default 5)
#   BENCHTIME       passed to -benchtime (default 20x)
#   COUNT           repetitions, minimum taken (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

PIN_FILE=${PIN_FILE:-BENCH_PR1.json}
SHARD_PIN_FILE=${SHARD_PIN_FILE:-BENCH_PR9.json}
MARGIN=${MARGIN:-5}
BENCHTIME=${BENCHTIME:-20x}
COUNT=${COUNT:-3}

# read_pin <file> <benchmark key>: the last ns_per_op following the key
# (the final occurrence, so a seed_baseline or pr1_baseline section earlier
# in the file does not shadow it). Handles both one-line and
# pretty-printed entries.
read_pin() {
  awk -v key="\"$2\"" '
    index($0, key) { armed = 1 }
    armed && /"ns_per_op"/ {
      v = $0
      sub(/.*"ns_per_op": */, "", v)
      sub(/[,}].*/, "", v)
      pin = v
      armed = 0
    }
    END { print pin }
  ' "$1"
}

# gate <label> <bench regex> <pin>: run the benchmark and enforce the pin.
gate() {
  local label=$1 bench=$2 pin=$3
  echo "bench_smoke: $label at $BENCHTIME x$COUNT vs pin $pin ns/op (+$MARGIN%)" >&2
  local out
  out=$(go test -run '^$' -bench "$bench" \
    -benchtime "$BENCHTIME" -count "$COUNT" . 2>/dev/null | grep -E '^Benchmark')
  echo "$out" >&2
  echo "$out" | awk -v pin="$pin" -v margin="$MARGIN" -v label="$label" '
    { if (min == "" || $3 < min) min = $3 }
    END {
      limit = pin * (1 + margin / 100)
      printf "bench_smoke: min %.0f ns/op, limit %.0f ns/op\n", min, limit > "/dev/stderr"
      if (min > limit) {
        printf "bench_smoke: FAIL — %s regressed beyond the pin by >%s%%\n", label, margin > "/dev/stderr"
        exit 1
      }
      print "bench_smoke: ok" > "/dev/stderr"
    }
  '
}

pin=$(read_pin "$PIN_FILE" BenchmarkEngineThroughput)
if [[ -z "$pin" ]]; then
  echo "bench_smoke: no BenchmarkEngineThroughput pin in $PIN_FILE" >&2
  exit 2
fi
gate EngineThroughput 'BenchmarkEngineThroughput$' "$pin"

if [[ -f "$SHARD_PIN_FILE" ]]; then
  spin=$(read_pin "$SHARD_PIN_FILE" 'BenchmarkEngineThroughputSharded/1')
  if [[ -n "$spin" ]]; then
    gate EngineThroughputSharded/1 'BenchmarkEngineThroughputSharded/1$' "$spin"
  else
    echo "bench_smoke: no Sharded/1 pin in $SHARD_PIN_FILE; skipping shard gate" >&2
  fi
else
  echo "bench_smoke: $SHARD_PIN_FILE absent; skipping shard gate" >&2
fi
