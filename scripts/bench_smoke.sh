#!/usr/bin/env bash
# bench_smoke.sh — fast bench-regression gate for CI.
#
# Runs BenchmarkEngineThroughput at a reduced -benchtime and fails if the
# minimum ns/op across repetitions exceeds the pinned BENCH_PR1 number by
# more than MARGIN percent. This is a smoke test, not a measurement: it
# exists so an accidental hot-path regression (a registry lookup creeping
# back into a per-event path, say) fails the build instead of landing
# silently. Full numbers come from scripts/bench.sh.
#
# Usage:
#   scripts/bench_smoke.sh
#
# Environment:
#   PIN_FILE   JSON file holding the pin (default BENCH_PR1.json). When the
#              file has a "pr1_baseline" section (a same-machine re-measure
#              recorded in a later BENCH_PRn.json), point PIN_FILE there for
#              an apples-to-apples gate.
#   MARGIN     tolerated regression over the pin, percent (default 5)
#   BENCHTIME  passed to -benchtime (default 20x)
#   COUNT      repetitions, minimum taken (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

PIN_FILE=${PIN_FILE:-BENCH_PR1.json}
MARGIN=${MARGIN:-5}
BENCHTIME=${BENCHTIME:-20x}
COUNT=${COUNT:-3}

# Pin: the last ns_per_op following a BenchmarkEngineThroughput key in the
# file's "results" section (the final occurrence, so a seed_baseline or
# pr1_baseline section earlier in the file does not shadow it). Handles
# both one-line and pretty-printed entries.
pin=$(awk '
  /"BenchmarkEngineThroughput"/ { armed = 1 }
  armed && /"ns_per_op"/ {
    v = $0
    sub(/.*"ns_per_op": */, "", v)
    sub(/[,}].*/, "", v)
    pin = v
    armed = 0
  }
  END { print pin }
' "$PIN_FILE")
if [[ -z "$pin" ]]; then
  echo "bench_smoke: no BenchmarkEngineThroughput pin in $PIN_FILE" >&2
  exit 2
fi

echo "bench_smoke: EngineThroughput at $BENCHTIME x$COUNT vs pin $pin ns/op (+$MARGIN%)" >&2
out=$(go test -run '^$' -bench 'BenchmarkEngineThroughput$' \
  -benchtime "$BENCHTIME" -count "$COUNT" . 2>/dev/null | grep -E '^Benchmark')
echo "$out" >&2

echo "$out" | awk -v pin="$pin" -v margin="$MARGIN" '
  { if (min == "" || $3 < min) min = $3 }
  END {
    limit = pin * (1 + margin / 100)
    printf "bench_smoke: min %.0f ns/op, limit %.0f ns/op\n", min, limit > "/dev/stderr"
    if (min > limit) {
      printf "bench_smoke: FAIL — EngineThroughput regressed beyond the pin by >%s%%\n", margin > "/dev/stderr"
      exit 1
    }
    print "bench_smoke: ok" > "/dev/stderr"
  }
'
