#!/usr/bin/env bash
# lint.sh — the repo's static gate: gofmt, go vet, and vhlint (the
# determinism / hot-path invariant suite under internal/lint).
#
# Usage:
#   scripts/lint.sh [packages...]   # defaults to ./...
#
# Exits non-zero on the first failing stage. bench.sh runs this as a
# preflight so benchmark numbers are never recorded off a tree that
# violates the invariants the numbers are supposed to demonstrate.
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=("${@:-./...}")

echo "gofmt..." >&2
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [[ -n "$unformatted" ]]; then
  echo "gofmt: needs formatting:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "go vet..." >&2
go vet "${PKGS[@]}"

echo "vhlint..." >&2
go run ./cmd/vhlint "${PKGS[@]}"

# Stale allows are active diagnostics, so the stage above already fails
# on them — but gate on them explicitly too, off the -json audit stream,
# so an annotation that suppresses nothing can never outlive the code it
# excused even if default filtering ever changes.
echo "vhlint stale-allow audit..." >&2
audit=$(go run ./cmd/vhlint -json "${PKGS[@]}" || true)
stale=$(grep 'stale //vhlint:allow' <<<"$audit" || true)
if [[ -n "$stale" ]]; then
  echo "stale //vhlint:allow annotations (they suppress nothing — delete them):" >&2
  echo "$stale" >&2
  exit 1
fi

# The ownership ledger is a checked-in artifact: regenerate it and
# demand a byte-identical match, so every change to the tree's domain
# structure (new owners, new crossings, new waivers) lands as a
# reviewable SHARDLEDGER.json diff. Always tree-wide — the ledger spans
# the module regardless of which packages this run lints.
echo "vhlint owners ledger..." >&2
if ! go run ./cmd/vhlint -owners ./... | diff -u SHARDLEDGER.json - >&2; then
  echo "SHARDLEDGER.json is stale; regenerate with: go run ./cmd/vhlint -owners ./... > SHARDLEDGER.json" >&2
  exit 1
fi
