#!/usr/bin/env bash
# lint.sh — the repo's static gate: gofmt, go vet, and vhlint (the
# determinism / hot-path invariant suite under internal/lint).
#
# Usage:
#   scripts/lint.sh [packages...]   # defaults to ./...
#
# Exits non-zero on the first failing stage. bench.sh runs this as a
# preflight so benchmark numbers are never recorded off a tree that
# violates the invariants the numbers are supposed to demonstrate.
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=("${@:-./...}")

echo "gofmt..." >&2
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [[ -n "$unformatted" ]]; then
  echo "gofmt: needs formatting:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "go vet..." >&2
go vet "${PKGS[@]}"

echo "vhlint..." >&2
go run ./cmd/vhlint "${PKGS[@]}"
