#!/usr/bin/env bash
# jobsvc_bench.sh — full-scale job-service backlog study.
#
# Runs both backlog shapes at acceptance scale (100 tenants x 1000 jobs on
# 16 nodes) and the quick smoke shape (20 x 200 on 8 nodes), printing the
# study tables and the machine-parsable jobsvc-bench lines. The numbers
# are virtual-time metrics of a deterministic simulation: for a fixed seed
# and schedule they are exact, so a pin refresh is copying values, not
# re-measuring on a quiet host.
#
# To refresh BENCH_PR10.json, transcribe the jobsvc-bench lines into the
# matching "full" and "smoke" sections.
#
# Usage:
#   scripts/jobsvc_bench.sh
#
# Environment:
#   SHARDS  simulation shard workers (default 1; the artifacts are
#           byte-identical at any width — that is the determinism suite's
#           contract, jobsvcdet_test.go)
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS=${SHARDS:-1}

echo "jobsvc_bench: full shapes (100 tenants x 1000 jobs, 16 nodes, shards=$SHARDS)" >&2
go run ./cmd/vhadoop -shards "$SHARDS" jobsvc

echo "jobsvc_bench: smoke shapes (20 tenants x 200 jobs, 8 nodes, shards=$SHARDS)" >&2
go run ./cmd/vhadoop -shards "$SHARDS" -quick jobsvc
