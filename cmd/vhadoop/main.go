// Command vhadoop regenerates the tables and figures of the vHadoop paper
// (Ye et al., IEEE CLUSTER 2012 Workshops) on the simulated platform.
//
// Usage:
//
//	vhadoop [flags] <experiment>
//
// Experiments: table1, fig2, fig3, fig4a, fig4b, fig5, table2, fig6, fig7,
// fig8, nmon, chaos, all. The nmon experiment runs a monitored Wordcount
// and writes the monitor's CSV capture plus analyser charts (selected with
// -chart) to the -out directory. The chaos experiment runs a generated
// fault schedule against a Wordcount and exports the observability plane's
// metrics snapshot, span trace and timeline.
//
// Flags:
//
//	-seed N     base random seed (default 1)
//	-reps N     repetitions averaged per configuration (default 3, the
//	            paper's protocol)
//	-nodes N    virtual cluster size for the static/migration studies
//	            (default 16)
//	-quick      trimmed sweeps for a fast smoke run
//	-out DIR    output directory for fig8/nmon/chaos artifacts
//	            (default "fig8-out")
//	-chart LIST comma-separated nmon chart metrics by name: cpu, disk, net
//	            (default "cpu,disk,net")
//	-shards N   simulation shard workers (default 1, the sequential
//	            engine; any N produces byte-identical results)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vhadoop/internal/core"
	"vhadoop/internal/experiments"
	"vhadoop/internal/faults"
	"vhadoop/internal/faults/chaostest"
	"vhadoop/internal/nmon"
	"vhadoop/internal/obs"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// parseCharts turns the -chart flag's comma-separated list into metrics.
func parseCharts(s string) ([]nmon.Metric, error) {
	var out []nmon.Metric
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		m, err := nmon.ParseMetric(field)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// runNmon reproduces the platform's monitoring flow: a Wordcount under full
// nmon observation, then the analyser's report, CSV capture and charts.
func runNmon(cfg experiments.Config, outDir string, charts []nmon.Metric) error {
	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Nodes = cfg.Nodes
	opts.Shards = cfg.Shards
	pl := core.MustNewPlatform(opts)
	mon := nmon.New(pl.Engine, nmon.WithInterval(2.0), nmon.WithPlane(pl.Obs))
	for _, vm := range pl.VMs {
		mon.Watch(vm)
	}
	for _, pm := range pl.PMs {
		mon.WatchMachine(pm)
	}
	mon.WatchDisk(pl.Filer.Disk)
	mon.WatchLink(pl.Filer.NICTx)
	mon.WatchLink(pl.Filer.NICRx)
	mon.Start()
	if _, err := pl.Run(func(p *sim.Proc) error {
		defer mon.Stop()
		_, err := workloads.RunWordcount(p, pl, "/nmon/corpus", 1024e6, 4, true)
		return err
	}); err != nil {
		return err
	}
	rep := mon.Analyze()
	fmt.Printf("nmon: bottleneck %s (%s) at %.0f%% mean utilisation"+"\n",
		rep.Bottleneck.Resource, rep.Bottleneck.Kind, rep.Bottleneck.MeanUtil*100)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(outDir, "nmon.csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	if err := mon.WriteCSV(csvFile); err != nil {
		return err
	}
	for _, metric := range charts {
		svg := mon.RenderSVG(metric, nmon.ChartOptions{})
		path := filepath.Join(outDir, metric.Name()+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("nmon analyser chart written: %s"+"\n", path)
	}
	fmt.Printf("nmon capture written: %s"+"\n", filepath.Join(outDir, "nmon.csv"))
	return nil
}

// runChaos runs a generated fault schedule against a chaos Wordcount and
// exports the run's observability artifacts: the final metrics snapshot
// (Prometheus text), the span trace (JSON) and its SVG timeline.
func runChaos(cfg experiments.Config, outDir string) error {
	sched := chaostest.GenSchedule(cfg.Seed, 3, 30)
	fmt.Printf("chaos schedule (seed %d):\n%s", cfg.Seed, faults.EncodeString(sched))
	res, err := chaostest.RunSharded(chaostest.Wordcount(), cfg.Seed, sched, cfg.Shards)
	if err != nil {
		return err
	}
	fmt.Printf("chaos run survived %d faults, finished at t=%.2fs\n", len(sched.Faults), res.End)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	tr, err := obs.DecodeTrace([]byte(res.TraceJSON))
	if err != nil {
		return err
	}
	for _, f := range []struct{ name, body string }{
		{"metrics.prom", res.Metrics},
		{"trace.json", res.TraceJSON},
		{"timeline.svg", tr.SVG()},
	} {
		path := filepath.Join(outDir, f.name)
		if err := os.WriteFile(path, []byte(f.body), 0o644); err != nil {
			return err
		}
		fmt.Printf("chaos artifact written: %s\n", path)
	}
	return nil
}

func main() {
	seed := flag.Int64("seed", 1, "base random seed")
	reps := flag.Int("reps", 3, "repetitions averaged per configuration")
	nodes := flag.Int("nodes", 16, "virtual cluster size")
	quick := flag.Bool("quick", false, "trimmed sweeps")
	out := flag.String("out", "fig8-out", "output directory for fig8 SVGs")
	chart := flag.String("chart", "cpu,disk,net", "comma-separated nmon chart metrics (cpu, disk, net)")
	shards := flag.Int("shards", 1, "simulation shard workers (1 = sequential engine)")
	flag.Parse()

	charts, err := parseCharts(*chart)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vhadoop: -chart: %v\n", err)
		os.Exit(2)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vhadoop [flags] <table1|fig2|fig3|fig4a|fig4b|fig5|table2|fig6|fig7|fig8|nmon|chaos|jobsvc|all>")
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Reps: *reps, Nodes: *nodes, Quick: *quick, Shards: *shards}

	run := func(name string) error {
		start := time.Now() //vhlint:allow simclock -- wall-clock progress reporting for the operator, not simulation state
		defer func() {
			//vhlint:allow simclock -- wall-clock progress reporting for the operator, not simulation state
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "table1":
			fmt.Println("Table I: MapReduce-based parallel benchmarks")
			fmt.Println(experiments.Table1())
		case "fig2":
			res, err := experiments.RunFig2(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 2: Wordcount, normal vs cross-domain (16-node cluster)")
			fmt.Println(res.Table())
		case "fig3":
			res, err := experiments.RunFig3(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
		case "fig4a":
			res, err := experiments.RunFig4a(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 4(a): TeraSort, generation and sort time vs data size")
			fmt.Println(res.Table())
		case "fig4b":
			res, err := experiments.RunFig4b(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 4(b): TestDFSIO read/write throughput")
			fmt.Println(res.Table())
		case "fig5", "table2":
			res, err := experiments.RunFig5(cfg)
			if err != nil {
				return err
			}
			if name == "fig5" {
				fmt.Println("Figure 5: per-VM migration time and downtime")
				fmt.Println(res.PerVMTable())
			}
			fmt.Println("Table II: overall migration time and downtime of the cluster")
			fmt.Println(res.Table2())
		case "fig6":
			res, err := experiments.RunFig6(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 6: parallel clustering on the Synthetic Control data set")
			fmt.Println(res.Table())
		case "fig7":
			res, err := experiments.RunFig7(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Figure 7: visualizing-sample clustering across cluster sizes")
			fmt.Println(res.Table())
		case "fig8":
			res, err := experiments.RunFig8(cfg)
			if err != nil {
				return err
			}
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			for _, panel := range res.Order {
				path := filepath.Join(*out, panel+".svg")
				if err := os.WriteFile(path, []byte(res.SVGs[panel]), 0o644); err != nil {
					return err
				}
				fmt.Printf("Figure 8 panel written: %s\n", path)
			}
		case "nmon":
			if err := runNmon(cfg, *out, charts); err != nil {
				return err
			}
		case "chaos":
			if err := runChaos(cfg, *out); err != nil {
				return err
			}
		case "jobsvc":
			res, err := experiments.RunJobsvc(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Job-service study: multi-tenant backlogs under the fair-share scheduler")
			fmt.Println(res.Table())
			fmt.Print(res.MetricsLines())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		names = []string{"table1", "fig2", "fig3", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8", "nmon", "chaos", "jobsvc"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "vhadoop: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
