// Command vhlint runs vhadoop's custom static-analysis suite over the
// repository. It is the project's equivalent of a go/analysis
// multichecker driver, built on the standard library only, and prints
// diagnostics in go vet's file:line:col format so editors and CI parse
// them the same way.
//
// Usage:
//
//	go run ./cmd/vhlint [-list] [-json] [packages...]
//
// Patterns follow go tooling conventions: "./..." (the default) walks
// every package under the current module; "./internal/sim" names one
// package. The exit status is 0 when the tree is clean, 1 when any
// analyzer reports an active diagnostic, and 2 on a load or usage
// error, so CI can gate on it directly.
//
// -json emits one JSON object per line (file/line/column/analyzer/
// message/suppressed) instead of the vet format. The stream is an audit
// view: findings silenced by //vhlint:allow annotations appear with
// "suppressed": true, but only active findings count toward the exit
// status.
//
// -owners emits the ownership ledger instead of running the analyzers:
// a deterministic JSON inventory of domain assignments, mutable
// package-level state, and cross-domain writes with their waiver
// status. CI regenerates it and diffs against the checked-in
// SHARDLEDGER.json, so any change to the tree's sharding posture shows
// up as a reviewable diff. The ledger also inventories every spawn
// site with its inferred domain classification (the spawnsites
// section). The exit status is 1 if the ledger records any unwaived
// cross-domain write, or any confined spawn site still entering
// through the Shared-implied Spawn/SpawnAfter APIs — the Shared-exit
// migration invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vhadoop/internal/lint"
)

// jsonDiag is the one-line-per-finding schema -json emits.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding, including suppressed ones")
	owners := flag.Bool("owners", false, "emit the ownership ledger (SHARDLEDGER.json) instead of diagnostics")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vhlint [-list] [-json] [-owners] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	dirs, err := lint.Expand(wd, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *owners {
		led, err := lint.BuildLedger(loader, dirs)
		if err != nil {
			fatal(err)
		}
		out, err := led.Encode()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		bad := false
		if n := led.UnwaivedCrossings(); n > 0 {
			fmt.Fprintf(os.Stderr, "vhlint: %d unwaived cross-domain write(s)\n", n)
			bad = true
		}
		if n := led.ConfinedOnSpawn(); n > 0 {
			fmt.Fprintf(os.Stderr, "vhlint: %d confined spawn site(s) still on plain Spawn/SpawnAfter\n", n)
			bad = true
		}
		if bad {
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	nDiags := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			for _, d := range lint.RunAllDiagnostics(pkg) {
				if !d.Suppressed {
					nDiags++
				}
				if err := enc.Encode(jsonDiag{
					File:       relFile(wd, d.Pos.Filename),
					Line:       d.Pos.Line,
					Column:     d.Pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				}); err != nil {
					fatal(err)
				}
			}
			continue
		}
		for _, d := range lint.RunAll(pkg) {
			nDiags++
			fmt.Printf("%s: %s: %s\n", relPos(wd, d), d.Analyzer, d.Message)
		}
	}
	if nDiags > 0 {
		fmt.Fprintf(os.Stderr, "vhlint: %d diagnostic(s)\n", nDiags)
		os.Exit(1)
	}
}

func relFile(wd, filename string) string {
	//vhlint:allow errflow -- display-only: an unrelatable filename is printed absolute, which is still a correct position
	if rel, err := filepath.Rel(wd, filename); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return filename
}

func relPos(wd string, d lint.Diagnostic) string {
	p := d.Pos
	p.Filename = relFile(wd, p.Filename)
	return p.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vhlint:", err)
	os.Exit(2)
}
