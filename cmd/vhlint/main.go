// Command vhlint runs vhadoop's custom static-analysis suite over the
// repository. It is the project's equivalent of a go/analysis
// multichecker driver, built on the standard library only, and prints
// diagnostics in go vet's file:line:col format so editors and CI parse
// them the same way.
//
// Usage:
//
//	go run ./cmd/vhlint [-list] [packages...]
//
// Patterns follow go tooling conventions: "./..." (the default) walks
// every package under the current module; "./internal/sim" names one
// package. The exit status is 0 when the tree is clean and 1 when any
// analyzer reports a diagnostic, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vhadoop/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vhlint [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	dirs, err := lint.Expand(wd, flag.Args())
	if err != nil {
		fatal(err)
	}

	nDiags := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			fatal(err)
		}
		for _, d := range lint.RunAll(pkg) {
			nDiags++
			fmt.Printf("%s: %s: %s\n", relPos(wd, d), d.Analyzer, d.Message)
		}
	}
	if nDiags > 0 {
		fmt.Fprintf(os.Stderr, "vhlint: %d diagnostic(s)\n", nDiags)
		os.Exit(1)
	}
}

func relPos(wd string, d lint.Diagnostic) string {
	p := d.Pos
	if rel, err := filepath.Rel(wd, p.Filename); err == nil && !filepath.IsAbs(rel) {
		p.Filename = rel
	}
	return p.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vhlint:", err)
	os.Exit(2)
}
