package sim_test

import (
	"fmt"

	"vhadoop/internal/sim"
)

// Two processes contend for a processor-sharing disk: each sees half the
// bandwidth while both are active.
func Example() {
	e := sim.New(1)
	disk := sim.NewFairShare(e, "disk", 100, 0) // 100 units/s

	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, func(p *sim.Proc) {
			disk.Use(p, 100) // 100 units of work
			fmt.Printf("%s done at t=%v\n", name, p.Now())
		})
	}
	e.Run()
	// Output:
	// a done at t=2
	// b done at t=2
}

// A Gate models a pausable component: work stalls while it is closed.
func ExampleGate() {
	e := sim.New(1)
	gate := sim.NewGate(e, true)
	e.Spawn("worker", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			gate.WaitOpen(p)
			p.Sleep(1)
		}
		fmt.Printf("finished at t=%v\n", p.Now())
	})
	e.At(0.5, func() { gate.Close() })
	e.At(3.5, func() { gate.Open() })
	e.Run()
	// Output:
	// finished at t=4.5
}

// Done latches coordinate processes: waiters block until the latch fires.
func ExampleDone() {
	e := sim.New(1)
	ready := sim.NewDone(e)
	e.Spawn("consumer", func(p *sim.Proc) {
		ready.Wait(p)
		fmt.Printf("consumed at t=%v\n", p.Now())
	})
	e.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(3)
		ready.Fire()
	})
	e.Run()
	// Output:
	// consumed at t=3
}
