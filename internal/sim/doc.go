// Package sim implements the deterministic discrete-event simulation engine
// that underlies every performance experiment in this repository.
//
// The engine advances a virtual clock (float64 seconds) through a priority
// queue of events. Simulated activities are written as ordinary imperative Go
// functions running in "processes": goroutines that hand control back and
// forth with the engine so that exactly one goroutine is runnable at any
// time. This keeps user code readable (a MapReduce task is a straight-line
// function that sleeps, acquires resources and waits on signals) while the
// whole simulation stays deterministic and reproducible from a seed.
//
// Building blocks:
//
//   - Engine: the clock, the event heap and the run loop.
//   - Proc: a simulated process; created with Engine.Spawn.
//   - Done: a one-shot completion latch processes can wait on.
//   - Gate: an open/closed barrier (used e.g. to pause virtual machines
//     during the stop-and-copy phase of live migration).
//   - Queue: a counting semaphore with FIFO wakeup (task slots, bounded
//     buffers).
//   - FairShare: a processor-sharing resource (CPU pools, disks); N jobs in
//     service each progress at capacity/N, optionally capped per job. This is
//     the building block for the Xen credit scheduler and for disk contention.
//
// All times are in seconds, all data volumes in bytes, all rates in bytes or
// work-units per second, matching the conventions used across internal/vnet,
// internal/xen and internal/mapreduce.
//
// # Sharded execution
//
// New(seed, WithShards(n)) partitions the event loop across n shard workers
// by ownership Domain: processes spawned with Engine.SpawnOn(dom, ...) run
// on the shard owning dom, while everything spawned with plain Spawn lives
// in the Shared domain and is executed by the coordinator exactly as on the
// sequential engine. Shards advance concurrently inside conservative
// windows bounded by the engine's lookahead (SetLookahead; platforms use
// the fabric's minimum link latency), and cross-domain interaction flows
// through Proc.Send / Proc.SpawnOnAfter with a delay of at least the
// lookahead. At every window barrier the coordinator replays the executed
// events in (time, seq) order and re-assigns sequence numbers, so traces,
// random draws and all derived state are byte-identical to the sequential
// engine for any n — WithShards(1) literally is the sequential path. The
// blocking primitives (Done, Gate, Queue, FairShare) are Shared-domain
// only; shard processes coordinate by sending events to the Shared domain.
package sim
