package sim

import "fmt"

// errKilled unwinds a process goroutine during Engine.Shutdown.
type errKilled struct{ name string }

func (e errKilled) Error() string { return "sim: process killed: " + e.name }

// Proc is a simulated process: a goroutine that runs under the engine's
// strict hand-off discipline. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	engine   *Engine
	name     string
	spawnSeq uint64 // creation order, the engine's teardown order
	//vhlint:allow lockfree -- hand-off core: resume carries the engine->process baton; exactly one of the pair runs at any instant
	resume chan struct{}
	//vhlint:allow lockfree -- hand-off core: the process->scheduler half of the baton pair: the engine's channel for Shared procs, the owning shard's for shard procs
	handoff    chan struct{}
	done       *Done
	started    bool
	terminated bool
	killed     bool
	abortErr   error // pending Abort, delivered at the next resume
	err        error // value recovered from a Fail or Abort, if any

	// Sharded-execution state (see shard.go). Shared procs keep sh == nil.
	dom     Domain
	sh      *shard // owning shard; nil = coordinator/sequential
	startEv *event // the event that starts this proc, the teardown order key
}

// startSeq is the proc's position in the global start order, used by the
// sharded Shutdown to kill in the same relative order spawnSeq gives the
// sequential one.
func (p *Proc) startSeq() uint64 {
	if p.startEv != nil {
		return p.startEv.seq
	}
	return 0
}

// now returns the virtual time in this process's execution context: its
// shard clock inside a window, the engine clock otherwise.
func (p *Proc) now() Time {
	if sh := p.sh; sh != nil && sh.inWindow {
		return sh.now
	}
	return p.engine.now
}

// start launches the process body. Called in engine context by the start
// event created in Spawn.
func (p *Proc) start(fn func(p *Proc)) {
	p.started = true
	if p.sh != nil {
		// Shard procs register here, in their shard's own context, rather
		// than at spawn time in the spawner's context.
		p.sh.procs[p] = true
	}
	//vhlint:allow lockfree -- hand-off core: the process goroutine is created parked; it runs only between a resume send and the next handoff send
	go func() {
		//vhlint:allow lockfree -- hand-off core: first dispatch baton
		<-p.resume // wait for first dispatch
		defer func() {
			r := recover()
			bug := false
			switch r := r.(type) {
			case nil:
			case errKilled:
				// Normal unwind during Shutdown.
			case procFailure:
				p.err = r.err
			default:
				// A real bug in simulation code. Record it and let dispatch
				// re-panic in engine context after the hand-off completes:
				// panicking here, on the process goroutine, would resume
				// the engine and then crash concurrently with it — the
				// report interleaves with further simulation activity and
				// surfaces on a goroutine no test can recover from.
				msg := fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				if p.sh != nil {
					p.sh.procPanic = msg
				} else {
					p.engine.procPanic = msg
				}
				bug = true
			}
			p.terminated = true
			if p.sh != nil {
				delete(p.sh.procs, p)
			} else {
				delete(p.engine.procs, p)
			}
			if !p.killed && !bug {
				p.done.fire()
			}
			//vhlint:allow lockfree -- hand-off core: terminal baton back to the scheduler; the goroutine exits immediately after
			p.handoff <- struct{}{}
		}()
		fn(p)
	}()
	if p.sh != nil {
		p.sh.dispatch(p)
	} else {
		p.engine.dispatch(p)
	}
}

// procFailure carries an error through panic/recover in Fail.
type procFailure struct{ err error }

// Fail terminates the process immediately, recording err; Done waiters are
// still released and can inspect Err.
func (p *Proc) Fail(err error) {
	panic(procFailure{err: err})
}

// Abort asynchronously terminates the process with err the next time it
// would run: a parked process is woken immediately to unwind (its deferred
// cleanup runs, its Done latch fires with Err() == err). Aborting a
// terminated process is a no-op. Abort must be called from engine context
// or another process, never from the target itself (use Fail there).
// Cross-domain Abort must come from the target's own context (or Shared
// context between windows): aborting a shard-owned process from another
// shard's window is an ownership violation, like any cross-domain write.
func (p *Proc) Abort(err error) {
	if p.terminated || p.abortErr != nil {
		return
	}
	p.abortErr = err
	if p.started {
		if sh := p.sh; sh != nil && sh.inWindow {
			p.scheduleAt(sh.now)
		} else {
			p.scheduleAt(p.engine.now)
		}
	}
}

// Err returns the error recorded by Fail, or nil.
func (p *Proc) Err() error { return p.err }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.engine }

// Now returns the current virtual time in this process's context.
func (p *Proc) Now() Time { return p.now() }

// Done returns a latch that fires when the process terminates normally
// (including via Fail, but not when killed by Shutdown).
func (p *Proc) Done() *Done { return p.done }

// Terminated reports whether the process has finished.
func (p *Proc) Terminated() bool { return p.terminated }

// yield returns control to the engine and blocks until the engine resumes
// this process. Every blocking primitive bottoms out here.
func (p *Proc) yield() {
	if p.killed {
		panic(errKilled{p.name})
	}
	//vhlint:allow lockfree -- hand-off core: yield parks this process by passing the baton to its scheduler...
	p.handoff <- struct{}{}
	//vhlint:allow lockfree -- hand-off core: ...and blocks until the engine passes it back; no third party ever holds it
	<-p.resume
	if p.killed {
		panic(errKilled{p.name})
	}
	if p.abortErr != nil {
		panic(procFailure{err: p.abortErr})
	}
}

// block parks the process with no scheduled wakeup; something else (a Done
// firing, a queue grant) must schedule its resume event.
func (p *Proc) block() { p.yield() }

// schedule enqueues a resume event for this process at time t, in whichever
// event queue owns the process: inside a window, its shard's heap (with a
// provisional sequence number renumbered at the barrier); between windows —
// an Abort from Shared code, teardown — a coordinator injection into the
// shard's heap; and on the plain engine queue for Shared procs.
func (p *Proc) scheduleAt(t Time) *Timer {
	if sh := p.sh; sh != nil {
		if sh.inWindow {
			return sh.schedule(p, t)
		}
		ev := &event{at: t, seq: p.engine.nextSeq(), proc: p, sx: &shardEv{sh: sh}}
		sh.push(ev)
		p.engine.anyShard = true
		return &Timer{ev: ev}
	}
	ev := &event{at: t, seq: p.engine.nextSeq(), proc: p}
	p.engine.events.push(ev)
	return &Timer{ev: ev}
}

// Sleep suspends the process for d seconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %q", d, p.name))
	}
	p.scheduleAt(p.now() + d)
	p.yield()
}

// SleepUntil suspends the process until virtual time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.now() {
		return
	}
	p.scheduleAt(t)
	p.yield()
}

// Yield reschedules the process at the current time, letting other
// same-time events run first.
func (p *Proc) Yield() {
	p.scheduleAt(p.now())
	p.yield()
}
