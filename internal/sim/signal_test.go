package sim

import "testing"

func TestDoneReleasesWaiters(t *testing.T) {
	e := New(1)
	d := NewDone(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) {
			d.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.At(5, func() { d.Fire() })
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want 3 waiters", woke)
	}
	for _, w := range woke {
		almost(t, w, 5, 0, "wake time")
	}
	if !d.Fired() {
		t.Fatal("latch not marked fired")
	}
}

func TestDoneWaitAfterFireReturnsImmediately(t *testing.T) {
	e := New(1)
	d := NewDone(e)
	d.Fire()
	d.Fire() // idempotent
	var at Time = -1
	e.Spawn("late", func(p *Proc) {
		p.Sleep(2)
		d.Wait(p)
		at = p.Now()
	})
	e.Run()
	almost(t, at, 2, 0, "no extra delay waiting on fired latch")
}

func TestWaitAll(t *testing.T) {
	e := New(1)
	d1, d2 := NewDone(e), NewDone(e)
	e.At(3, func() { d1.Fire() })
	e.At(7, func() { d2.Fire() })
	var at Time
	e.Spawn("joiner", func(p *Proc) {
		WaitAll(p, d1, d2)
		at = p.Now()
	})
	e.Run()
	almost(t, at, 7, 0, "WaitAll completes at the latest latch")
}

func TestGatePausesWaiters(t *testing.T) {
	e := New(1)
	g := NewGate(e, false)
	var at Time = -1
	e.Spawn("gated", func(p *Proc) {
		g.WaitOpen(p)
		at = p.Now()
	})
	e.At(4, func() { g.Open() })
	e.Run()
	almost(t, at, 4, 0, "gated proc wake")
}

func TestGateOpenIsImmediate(t *testing.T) {
	e := New(1)
	g := NewGate(e, true)
	var at Time = -1
	e.Spawn("free", func(p *Proc) {
		g.WaitOpen(p)
		at = p.Now()
	})
	e.Run()
	almost(t, at, 0, 0, "open gate does not block")
}

func TestGateReclose(t *testing.T) {
	e := New(1)
	g := NewGate(e, true)
	var passes []Time
	e.Spawn("worker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			g.WaitOpen(p)
			passes = append(passes, p.Now())
			p.Sleep(1)
		}
	})
	e.At(0.5, func() { g.Close() })
	e.At(2.5, func() { g.Open() })
	e.Run()
	// Pass 1 at t=0 (gate open), pass 2 blocked at t=1 until 2.5, pass 3 at 3.5.
	if len(passes) != 3 {
		t.Fatalf("passes = %v", passes)
	}
	almost(t, passes[0], 0, 0, "pass 1")
	almost(t, passes[1], 2.5, 0, "pass 2")
	almost(t, passes[2], 3.5, 0, "pass 3")
}

func TestGateTotalClosed(t *testing.T) {
	e := New(1)
	g := NewGate(e, true)
	e.At(1, func() { g.Close() })
	e.At(3, func() { g.Open() })
	e.At(5, func() { g.Close() })
	e.At(6, func() { g.Open() })
	e.Run()
	almost(t, g.TotalClosed(), 3, 1e-12, "cumulative closed time")
}
