package sim

import "fmt"

// Queue is a counting semaphore with strict FIFO wakeup. It models bounded
// pools: task slots on a tasktracker, RPC handler threads, and so on.
type Queue struct {
	engine    *Engine
	capacity  int
	available int
	waiters   []*qWaiter

	// occupancy statistics for the monitor
	lastChange Time
	busyInt    float64 // integral of (capacity-available) dt
}

type qWaiter struct {
	p *Proc
	n int
}

// NewQueue returns a queue with the given capacity, all of it available.
func NewQueue(e *Engine, capacity int) *Queue {
	if capacity <= 0 {
		panic("sim: queue capacity must be positive")
	}
	return &Queue{engine: e, capacity: capacity, available: capacity, lastChange: e.now}
}

// Capacity returns the total number of units.
func (q *Queue) Capacity() int { return q.capacity }

// Available returns the number of currently free units.
func (q *Queue) Available() int { return q.available }

// InUse returns the number of currently held units.
func (q *Queue) InUse() int { return q.capacity - q.available }

func (q *Queue) account() {
	q.busyInt += float64(q.InUse()) * (q.engine.now - q.lastChange)
	q.lastChange = q.engine.now
}

// MeanOccupancy returns the time-averaged number of units in use since the
// queue was created.
func (q *Queue) MeanOccupancy() float64 {
	q.account()
	if q.engine.now == 0 {
		return 0
	}
	return q.busyInt / q.engine.now
}

// Acquire blocks p until n units are available, then takes them. Grants are
// strictly FIFO: a large request at the head of the line blocks later small
// requests (no starvation). If p is aborted or killed while waiting, its
// queue entry (or an already-applied grant) is returned before unwinding.
func (q *Queue) Acquire(p *Proc, n int) {
	if n <= 0 || n > q.capacity {
		panic("sim: invalid acquire count")
	}
	if p.sh != nil {
		panic(fmt.Sprintf("sim: shard-owned process %q cannot Acquire from a Queue; Queue is Shared-domain", p.name))
	}
	if len(q.waiters) == 0 && q.available >= n {
		q.account()
		q.available -= n
		return
	}
	q.waiters = append(q.waiters, &qWaiter{p: p, n: n})
	defer func() {
		if r := recover(); r != nil {
			if q.granted(p) {
				q.Release(n) // grant landed just as we unwound
			} else {
				q.removeWaiter(p)
			}
			panic(r)
		}
	}()
	for {
		p.block()
		// We are woken by Release when our grant is ready; the grant was
		// already applied, so just return.
		if q.granted(p) {
			return
		}
	}
}

// removeWaiter drops p's pending entry (abort-path cleanup).
func (q *Queue) removeWaiter(p *Proc) {
	for i, w := range q.waiters {
		if w.p == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// granted reports whether p's waiter entry has been consumed.
func (q *Queue) granted(p *Proc) bool {
	for _, w := range q.waiters {
		if w.p == p {
			return false
		}
	}
	return true
}

// TryAcquire takes n units without blocking, reporting success.
func (q *Queue) TryAcquire(n int) bool {
	if n <= 0 || n > q.capacity {
		panic("sim: invalid acquire count")
	}
	if len(q.waiters) == 0 && q.available >= n {
		q.account()
		q.available -= n
		return true
	}
	return false
}

// Release returns n units and hands them to queued waiters in FIFO order.
// Queue is Shared-domain: its occupancy accounting reads the engine clock,
// so it must not be driven from shard context.
func (q *Queue) Release(n int) {
	if n <= 0 {
		panic("sim: invalid release count")
	}
	if q.engine.windowActive {
		panic("sim: Queue.Release called from shard context; Queue is Shared-domain")
	}
	q.account()
	q.available += n
	if q.available > q.capacity {
		panic("sim: queue over-released")
	}
	for len(q.waiters) > 0 && q.available >= q.waiters[0].n {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.available -= w.n
		w.p.scheduleAt(q.engine.now)
	}
}
