package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Time is a point on (or span of) the virtual clock, in seconds.
type Time = float64

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxFloat64 / 4

// Engine is a deterministic discrete-event simulator. It owns the virtual
// clock and the event queue, and it coordinates processes so exactly one of
// them runs at a time. An Engine must not be shared between goroutines other
// than through the process mechanism it provides.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	procSeq uint64 // spawn-order stamp, so teardown order is reproducible
	rng     *rand.Rand
	//vhlint:allow lockfree -- hand-off core: handoff is the process->engine half of the strict baton pair; see dispatch
	handoff   chan struct{}  // processes signal the run loop here
	procs     map[*Proc]bool // all live processes
	current   *Proc          // process currently executing, nil in engine context
	stopped   bool           // set by Stop / Shutdown
	procPanic string         // pending process-bug report, re-panicked by dispatch in engine context
	tracef    func(Time, string, ...any)

	// Sharded-execution state (see shard.go). A sequential engine keeps
	// nshards == 1 and never builds workers.
	nshards      int
	lookahead    Time
	shards       []*shard // built lazily on first sharded use
	windowActive bool     // true while shard workers execute a window
	anyShard     bool     // true once any shard heap has ever held an event
}

// New returns an Engine whose pseudo-random stream is derived from seed.
// The same seed always reproduces the same simulation. Options select
// sharded execution (WithShards) and tune it (WithLookahead); with no
// options — or WithShards(1) — the engine is the plain sequential one.
func New(seed int64, opts ...Option) *Engine {
	e := &Engine{
		rng: rand.New(rand.NewSource(seed)),
		//vhlint:allow lockfree -- hand-off core: unbuffered by design, so a baton pass is a rendezvous and both sides can never run at once
		handoff:   make(chan struct{}),
		procs:     make(map[*Proc]bool),
		nshards:   1,
		lookahead: DefaultLookahead,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic pseudo-random source. The stream
// is Shared-domain state: shard-owned processes must not draw from it.
func (e *Engine) Rand() *rand.Rand {
	if e.windowActive {
		panic("sim: Engine.Rand called from shard context; the rng is Shared-domain state")
	}
	return e.rng
}

// SetTrace installs fn as the trace sink. Pass nil to disable tracing.
func (e *Engine) SetTrace(fn func(t Time, format string, args ...any)) { e.tracef = fn }

// TraceEnabled reports whether a trace sink is installed — the fast
// check instrumentation layers use to skip formatting work when nobody
// is listening to the line trace.
func (e *Engine) TraceEnabled() bool { return e.tracef != nil }

// Tracef emits a trace line if tracing is enabled. Shard-owned processes
// must use Proc.Tracef, which buffers lines for barrier-ordered emission.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracef != nil {
		if e.windowActive {
			panic("sim: Engine.Tracef called from shard context; use Proc.Tracef")
		}
		e.tracef(e.now, format, args...)
	}
}

// At schedules fn to run in engine context at virtual time t. Scheduling in
// the past is an error that panics: it would break causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if e.windowActive {
		panic("sim: Engine.At called from shard context; use Proc.Send or Proc.SpawnOnAfter")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.nextSeq(), fn: fn}
	e.events.push(ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// Spawn creates a new process running fn and schedules it to start at the
// current virtual time. fn runs in its own goroutine but under the engine's
// strict hand-off discipline, so it may freely touch simulation state.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, fn)
}

// SpawnAfter is Spawn with a start delay.
func (e *Engine) SpawnAfter(d Time, name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{
		engine:   e,
		name:     name,
		spawnSeq: e.procSeq,
		//vhlint:allow lockfree -- hand-off core: per-process engine->process baton, unbuffered rendezvous
		resume:  make(chan struct{}),
		handoff: e.handoff,
		done:    NewDone(e),
	}
	e.procs[p] = true
	tm := e.After(d, func() { p.start(fn) })
	p.startEv = tm.ev
	return p
}

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// RunUntil executes events with timestamps <= deadline. Events beyond the
// deadline stay queued; the clock is advanced to the deadline if any such
// events remain (so repeated RunUntil calls observe monotonic time).
func (e *Engine) RunUntil(deadline Time) Time {
	if e.nshards > 1 {
		return e.runSharded(deadline)
	}
	for !e.stopped {
		ev := e.events.pop()
		if ev == nil {
			break
		}
		if ev.at > deadline {
			// Put it back for a later RunUntil call.
			ev.seq = 0 // keep it ahead of same-time events scheduled later
			e.events.push(ev)
			e.now = deadline
			return e.now
		}
		e.now = ev.at
		ev.fired = true
		if ev.fn != nil {
			ev.fn()
		} else if ev.proc != nil {
			e.dispatch(ev.proc)
		}
	}
	return e.now
}

// dispatch transfers control to p until it blocks or terminates. A
// panic that escaped the process body is re-raised here, in engine
// context, so the failure is synchronous and lands on the goroutine
// that called Run — deterministic and recoverable by tests.
func (e *Engine) dispatch(p *Proc) {
	if p.terminated {
		return
	}
	e.current = p
	//vhlint:allow lockfree -- hand-off core: pass the baton to the process...
	p.resume <- struct{}{}
	//vhlint:allow lockfree -- hand-off core: ...and block until it comes back; the engine never runs concurrently with a process
	<-e.handoff
	e.current = nil
	if msg := e.procPanic; msg != "" {
		e.procPanic = ""
		panic(msg)
	}
}

// Stop halts the run loop after the current event completes. Queued events
// remain; a subsequent Run resumes from where the simulation stopped.
func (e *Engine) Stop() { e.stopped = true }

// resetStop re-arms a stopped engine so Run can be called again.
func (e *Engine) resetStop() { e.stopped = false }

// Resume clears a previous Stop so the engine can run again.
func (e *Engine) Resume() { e.resetStop() }

// LiveProcs returns the number of processes that have been spawned and have
// not yet terminated (they may be blocked or not yet started). Shard-owned
// processes count only once started: they register on their own shard.
func (e *Engine) LiveProcs() int {
	n := len(e.procs)
	for _, sh := range e.shards {
		n += len(sh.procs)
	}
	return n
}

// Shutdown terminates every live process by unwinding its goroutine, then
// clears the event queue. It is intended for tests and for tearing down a
// platform whose background daemons (heartbeats, monitors) never exit on
// their own. Shutdown must be called from engine context (not from inside a
// process).
func (e *Engine) Shutdown() {
	if e.current != nil {
		panic("sim: Shutdown called from process context")
	}
	if e.windowActive {
		panic("sim: Shutdown called from shard context")
	}
	if e.shards != nil {
		e.shutdownSharded()
		return
	}
	// Kill in spawn order: map iteration order would make the unwind
	// sequence (and anything its deferred cleanup touches) vary run to
	// run.
	live := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		live = append(live, p)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].spawnSeq < live[j].spawnSeq })
	for _, p := range live {
		if p.started && !p.terminated {
			p.killed = true
			e.dispatch(p)
		} else {
			delete(e.procs, p)
		}
	}
	e.events = nil
	e.stopped = false
}
