package sim

import "container/heap"

// Timer is a handle to a scheduled event. Cancel prevents the event from
// firing if it has not fired yet.
type Timer struct {
	ev *event
}

// Cancel deactivates the timer. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer's event is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// event is a single entry in the engine's event heap. Exactly one of fn and
// proc is set: fn events run a callback in engine context, proc events resume
// a blocked process.
type event struct {
	at        Time
	seq       uint64 // tie-breaker: FIFO among equal timestamps
	fn        func()
	proc      *Proc
	cancelled bool
	fired     bool
	sx        *shardEv // shard-mode metadata; nil on a sequential engine
}

// eventHeap orders events by (time, sequence number).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }

// pop returns the next non-cancelled event, or nil if the heap is empty.
func (h *eventHeap) pop() *event {
	for h.Len() > 0 {
		ev := heap.Pop(h).(*event)
		if !ev.cancelled {
			return ev
		}
	}
	return nil
}

// peekLive returns the next non-cancelled event without removing it,
// discarding cancelled heads along the way.
func (h *eventHeap) peekLive() *event {
	for h.Len() > 0 {
		ev := (*h)[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(h)
	}
	return nil
}
