package sim

import (
	"fmt"
	"strings"
	"testing"
)

// The synthetic multi-domain workload used by the sharded/sequential
// differential tests. It exercises every cross-domain mechanism: same- and
// cross-domain sleeps, Proc.Send fan-out, cross-domain spawns, shard->Shared
// sends, and a Shared ticker that both serialises windows and reads domain
// state at barrier-consistent points.

const testLookahead = 0.25

type shardWork struct {
	trace      strings.Builder
	counters   []int64
	sharedDone int
	end        Time
}

func (w *shardWork) traceSink(at Time, format string, args ...any) {
	fmt.Fprintf(&w.trace, "%012.6f | ", at)
	fmt.Fprintf(&w.trace, format, args...)
	w.trace.WriteByte('\n')
}

// runShardWork builds and drains the workload on an engine with the given
// shard count. All parameters other than shards shape the event pattern, so
// runs that differ only in shards must produce identical results.
func runShardWork(shards, ndom, procsPer, steps int, ticker bool) *shardWork {
	w := &shardWork{counters: make([]int64, ndom)}
	e := New(7, WithShards(shards), WithLookahead(testLookahead))
	e.SetTrace(w.traceSink)
	for d := 0; d < ndom; d++ {
		for q := 0; q < procsPer; q++ {
			d, q := d, q
			e.SpawnOn(Domain(d+1), fmt.Sprintf("w%d.%d", d, q), func(p *Proc) {
				rng := uint64(d*131 + q*17 + 1)
				for s := 0; s < steps; s++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					w.counters[d]++
					p.Tracef("dom %d proc %d step %d t=%.6f c=%d", d, q, s, p.Now(), w.counters[d])
					if s%4 == 3 && ndom > 1 {
						if td := (d + q + s) % ndom; td != d {
							extra := float64(rng%512) / 1024 // [0, 0.5)
							p.Send(Domain(td+1), testLookahead+extra, func() {
								w.counters[td] += 100
							})
						}
					}
					if s%7 == 5 && ndom > 1 {
						td := (d + s) % ndom
						delay := Time(0.125)
						if td != d {
							delay = testLookahead + 0.125
						}
						name := fmt.Sprintf("x%d.%d.%d", d, q, s)
						p.SpawnOnAfter(Domain(td+1), delay, name, func(c *Proc) {
							w.counters[td] += 1000
							c.Tracef("spawned %s in dom %d t=%.6f", name, td, c.Now())
							c.Sleep(0.5)
							w.counters[td]++
						})
					}
					p.Sleep(0.5 + float64(rng%1000)/1000)
				}
				p.Tracef("dom %d proc %d finished t=%.6f", d, q, p.Now())
				// Fan-in to the Shared domain: the sanctioned way for a
				// shard proc to report completion to coordinator state.
				p.Send(Shared, testLookahead+0.5, func() { w.sharedDone++ })
			})
		}
	}
	if ticker {
		e.Spawn("ticker", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(2.0)
				var sum int64
				for _, c := range w.counters {
					sum += c
				}
				p.Tracef("tick %d t=%.6f sum=%d done=%d", i, p.Now(), sum, w.sharedDone)
			}
		})
	}
	w.end = e.Run()
	e.Shutdown()
	return w
}

func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  seq: %s\n  shd: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: %d vs %d lines", len(al), len(bl))
}

func requireSameWork(t *testing.T, want, got *shardWork, label string) {
	t.Helper()
	if want.end != got.end {
		t.Errorf("%s: end time %v, sequential %v", label, got.end, want.end)
	}
	if fmt.Sprint(want.counters) != fmt.Sprint(got.counters) {
		t.Errorf("%s: counters %v, sequential %v", label, got.counters, want.counters)
	}
	if want.sharedDone != got.sharedDone {
		t.Errorf("%s: sharedDone %d, sequential %d", label, got.sharedDone, want.sharedDone)
	}
	if want.trace.String() != got.trace.String() {
		t.Errorf("%s: trace diverges at %s", label, diffLine(want.trace.String(), got.trace.String()))
	}
}

// TestShardedMatchesSequential is the sim-level differential suite: the same
// workload must produce byte-identical traces and state at every shard count.
func TestShardedMatchesSequential(t *testing.T) {
	shapes := []struct {
		ndom, procs, steps int
		ticker             bool
	}{
		{1, 2, 8, false},  // single domain: pure window execution
		{3, 2, 10, true},  // ticker forces shared/window interleaving
		{8, 3, 12, true},  // more domains than shards at every n
		{5, 1, 20, false}, // no shared events after setup
	}
	for _, sh := range shapes {
		sh := sh
		name := fmt.Sprintf("dom%d_procs%d_steps%d_ticker%v", sh.ndom, sh.procs, sh.steps, sh.ticker)
		t.Run(name, func(t *testing.T) {
			want := runShardWork(1, sh.ndom, sh.procs, sh.steps, sh.ticker)
			if want.trace.Len() == 0 {
				t.Fatal("sequential run produced no trace")
			}
			for _, n := range []int{2, 4, 8} {
				got := runShardWork(n, sh.ndom, sh.procs, sh.steps, sh.ticker)
				requireSameWork(t, want, got, fmt.Sprintf("shards=%d", n))
			}
		})
	}
}

// TestShardRunUntilSplit checks that chopping a sharded run into RunUntil
// segments neither changes the result nor differs from sequential.
func TestShardRunUntilSplit(t *testing.T) {
	run := func(shards int, cuts []Time) *shardWork {
		w := &shardWork{counters: make([]int64, 4)}
		e := New(7, WithShards(shards), WithLookahead(testLookahead))
		e.SetTrace(w.traceSink)
		for d := 0; d < 4; d++ {
			d := d
			e.SpawnOn(Domain(d+1), fmt.Sprintf("w%d", d), func(p *Proc) {
				for s := 0; s < 10; s++ {
					w.counters[d]++
					p.Tracef("dom %d step %d t=%.6f", d, s, p.Now())
					if td := (d + 1) % 4; s%3 == 2 {
						p.Send(Domain(td+1), testLookahead+0.1, func() { w.counters[td] += 10 })
					}
					p.Sleep(0.7 + float64(d)*0.03)
				}
			})
		}
		for _, c := range cuts {
			e.RunUntil(c)
		}
		w.end = e.Run()
		e.Shutdown()
		return w
	}
	want := run(1, nil)
	for _, n := range []int{1, 2, 4} {
		got := run(n, []Time{1.5, 3.0, 4.25})
		requireSameWork(t, want, got, fmt.Sprintf("shards=%d split", n))
	}
}

// TestShardStress hammers the barrier hand-off with many small windows and
// heavy cross-domain spawning; run with -count=20 (CI) and -race it is the
// scheduler's race-coverage workhorse.
func TestShardStress(t *testing.T) {
	want := runShardWork(1, 6, 3, 12, true)
	for _, n := range []int{2, 4, 8} {
		got := runShardWork(n, 6, 3, 12, true)
		requireSameWork(t, want, got, fmt.Sprintf("stress shards=%d", n))
	}
}

// TestWithShardsOneIsSequential pins the contract that WithShards(1) is the
// plain engine: no workers are ever built and the trace matches a default New.
func TestWithShardsOneIsSequential(t *testing.T) {
	runOne := func(e *Engine) string {
		var tr strings.Builder
		e.SetTrace(func(at Time, f string, a ...any) {
			fmt.Fprintf(&tr, "%.6f ", at)
			fmt.Fprintf(&tr, f, a...)
			tr.WriteByte('\n')
		})
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Tracef("a %d", i)
				p.Sleep(1)
			}
		})
		e.Run()
		return tr.String()
	}
	plain := New(3)
	one := New(3, WithShards(1))
	if got, want := runOne(one), runOne(plain); got != want {
		t.Errorf("WithShards(1) trace differs from default engine:\n%s", diffLine(want, got))
	}
	if one.shards != nil {
		t.Error("WithShards(1) built shard workers")
	}
	if one.Shards() != 1 {
		t.Errorf("Shards() = %d, want 1", one.Shards())
	}
}

// TestShardShutdownDrainsInboxes is the regression test for the
// shutdown-during-barrier fix: after a window aborts mid-flight (so staged
// cross-shard events are still sitting in outboxes), Shutdown must drain
// them into target heaps and unwind every process instead of leaking the
// events onto a dead shard.
func TestShardShutdownDrainsInboxes(t *testing.T) {
	e := New(1, WithShards(4), WithLookahead(testLookahead))
	hits := 0
	e.SpawnOn(1, "sender", func(p *Proc) {
		// Staged into the outbox, then the same window dies below.
		p.Send(2, testLookahead+1, func() { hits++ })
		p.Sleep(0.01)
		panic("boom in window")
	})
	e.SpawnOn(2, "peer", func(p *Proc) {
		for {
			p.Sleep(0.5)
		}
	})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected the window panic to surface from Run")
			}
			if !strings.Contains(fmt.Sprint(r), "boom in window") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		e.Run()
	}()
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after Shutdown, want 0", e.LiveProcs())
	}
	if e.shards != nil {
		t.Error("shards not torn down by Shutdown")
	}
	if hits != 0 {
		t.Errorf("staged cross-shard event fired during teardown: hits=%d", hits)
	}
}

// TestShardShutdownMidFlight shuts a sharded engine down at a deadline with
// cross-shard events still queued; teardown must kill procs in start order
// without touching a dead shard.
func TestShardShutdownMidFlight(t *testing.T) {
	w := &shardWork{counters: make([]int64, 6)}
	e := New(7, WithShards(4), WithLookahead(testLookahead))
	e.SetTrace(w.traceSink)
	for d := 0; d < 6; d++ {
		d := d
		e.SpawnOn(Domain(d+1), fmt.Sprintf("w%d", d), func(p *Proc) {
			for {
				w.counters[d]++
				td := (d + 1) % 6
				p.Send(Domain(td+1), testLookahead+0.2, func() { w.counters[td]++ })
				p.Sleep(0.9)
			}
		})
	}
	e.RunUntil(5.0)
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after Shutdown, want 0", e.LiveProcs())
	}
	// The engine is reusable after Shutdown.
	ran := false
	e.Spawn("after", func(p *Proc) { ran = true })
	e.Run()
	e.Shutdown()
	if !ran {
		t.Error("engine did not run again after sharded Shutdown")
	}
}

// TestShardLookaheadViolation pins that an under-delayed cross-domain send
// fails deterministically: the same panic text, run after run.
func TestShardLookaheadViolation(t *testing.T) {
	run := func() (msg string) {
		e := New(1, WithShards(2), WithLookahead(0.5))
		e.SpawnOn(1, "v", func(p *Proc) {
			p.Sleep(1)
			p.Send(2, 0.01, func() {}) // far below lookahead
		})
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
			e.Shutdown()
		}()
		e.Run()
		return "no panic"
	}
	first := run()
	if !strings.Contains(first, "cross-domain") || !strings.Contains(first, "lookahead") {
		t.Fatalf("unexpected violation report: %q", first)
	}
	if second := run(); second != first {
		t.Errorf("violation not deterministic:\n first: %s\nsecond: %s", first, second)
	}
}

// TestShardSharedGuards verifies the ownership guards: Shared-domain
// primitives and engine surfaces reject use from shard context.
func TestShardSharedGuards(t *testing.T) {
	mustPanic := func(name string, body func(p *Proc)) {
		t.Helper()
		e := New(1, WithShards(2), WithLookahead(testLookahead))
		e.SpawnOn(1, name, body)
		defer e.Shutdown()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: expected a guard panic", name)
			}
		}()
		e.Run()
	}
	mustPanic("engine-at", func(p *Proc) { p.Engine().At(99, func() {}) })
	mustPanic("engine-rand", func(p *Proc) { _ = p.Engine().Rand().Int63() })
	d := func(p *Proc) *Done { return NewDone(p.Engine()) }
	mustPanic("done-wait", func(p *Proc) { d(p).Wait(p) })
	mustPanic("queue-acquire", func(p *Proc) { NewQueue(p.Engine(), 2).Acquire(p, 1) })
	mustPanic("gate-wait", func(p *Proc) { NewGate(p.Engine(), false).WaitOpen(p) })
}

// TestShardDomainAffinity pins the modulo grouping rule: a domain's events
// always land on the same worker for a given shard count.
func TestShardDomainAffinity(t *testing.T) {
	e := New(1, WithShards(3))
	if got := e.shardOf(1); got != e.shardOf(4) || got.id != 1 {
		t.Errorf("domain 1 and 4 should share shard 1, got %v/%v", e.shardOf(1).id, e.shardOf(4).id)
	}
	if e.shardOf(Shared) != nil {
		t.Error("Shared must map to the coordinator")
	}
	if e.shardOf(3).id != 3 {
		t.Errorf("domain 3 on shard %d, want 3", e.shardOf(3).id)
	}
	e.Shutdown()
}
