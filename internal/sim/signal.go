package sim

import "fmt"

// Done is a one-shot completion latch. Processes that Wait on it block until
// Fire is called; waits after the latch has fired return immediately.
type Done struct {
	engine  *Engine
	fired   bool
	waiters []*Proc
}

// NewDone returns an unfired latch bound to e.
func NewDone(e *Engine) *Done { return &Done{engine: e} }

// Fired reports whether the latch has fired.
func (d *Done) Fired() bool { return d.fired }

// Fire releases all current and future waiters. Firing twice is a no-op.
// Fire may be called from engine context or from a process.
func (d *Done) Fire() { d.fire() }

func (d *Done) fire() {
	if d.fired {
		return
	}
	d.fired = true
	if len(d.waiters) > 0 && d.engine.windowActive {
		panic("sim: Done latch with waiters fired from shard context; route the Fire through Proc.Send to the Shared domain")
	}
	for _, p := range d.waiters {
		p.scheduleAt(d.engine.now)
	}
	d.waiters = nil
}

// Wait blocks p until the latch fires. Done is a Shared-domain primitive:
// shard-owned processes must not wait on it (a cross-shard Fire could not
// wake them deterministically); they coordinate with Sleep and Send.
func (d *Done) Wait(p *Proc) {
	if d.fired {
		return
	}
	if p.sh != nil {
		panic(fmt.Sprintf("sim: shard-owned process %q cannot Wait on a Done latch; Done is Shared-domain", p.name))
	}
	d.waiters = append(d.waiters, p)
	p.block()
}

// WaitAll blocks p until every latch has fired.
func WaitAll(p *Proc, ds ...*Done) {
	for _, d := range ds {
		d.Wait(p)
	}
}

// WaitProcs blocks p until every listed process has terminated, and returns
// the first non-nil error recorded by any of them (in argument order).
func WaitProcs(p *Proc, procs ...*Proc) error {
	var err error
	for _, q := range procs {
		q.Done().Wait(p)
		if err == nil && q.Err() != nil {
			err = q.Err()
		}
	}
	return err
}

// Gate is a reusable open/closed barrier. While open, WaitOpen returns
// immediately; while closed, waiters block until the next Open. Gates model
// pausable components, e.g. a VM's VCPU during stop-and-copy.
type Gate struct {
	engine  *Engine
	open    bool
	waiters []*Proc

	closedAt   Time // when the gate last closed (valid while closed)
	totalClose Time // cumulative closed duration
}

// NewGate returns a gate in the given initial state.
func NewGate(e *Engine, open bool) *Gate {
	g := &Gate{engine: e, open: open}
	if !open {
		g.closedAt = e.now
	}
	return g
}

// IsOpen reports whether the gate is open.
func (g *Gate) IsOpen() bool { return g.open }

// Open releases all waiters. No-op if already open. Gate is Shared-domain:
// it reads the engine clock, so it must not be driven from shard context.
func (g *Gate) Open() {
	if g.open {
		return
	}
	if g.engine.windowActive {
		panic("sim: Gate.Open called from shard context; Gate is Shared-domain")
	}
	g.open = true
	g.totalClose += g.engine.now - g.closedAt
	for _, p := range g.waiters {
		p.scheduleAt(g.engine.now)
	}
	g.waiters = nil
}

// Close makes subsequent WaitOpen calls block. No-op if already closed.
func (g *Gate) Close() {
	if !g.open {
		return
	}
	g.open = false
	g.closedAt = g.engine.now
}

// TotalClosed returns the cumulative virtual time the gate has spent closed.
func (g *Gate) TotalClosed() Time {
	t := g.totalClose
	if !g.open {
		t += g.engine.now - g.closedAt
	}
	return t
}

// WaitOpen blocks p until the gate is open. If the gate closes and reopens
// while p is queued, p still wakes at the first Open after its Wait.
func (g *Gate) WaitOpen(p *Proc) {
	if p.sh != nil {
		panic(fmt.Sprintf("sim: shard-owned process %q cannot wait on a Gate; Gate is Shared-domain", p.name))
	}
	for !g.open {
		g.waiters = append(g.waiters, p)
		p.block()
	}
}
