// Package shardtest is the differential determinism harness for the sharded
// simulation core: it compares the complete artifact set of a sequential run
// (trace, observability snapshot, job output, end time) against a sharded
// run of the same workload and reports the first divergence precisely.
//
// The contract under test is absolute: sharded execution must be
// byte-identical to sequential, so every comparison here is exact string
// equality — there are no tolerances.
package shardtest

import (
	"fmt"
	"strings"
)

// TB is the subset of testing.TB the harness needs. Taking an interface
// keeps the package importable outside test binaries (experiment drivers
// can run differential checks too) and keeps it free of the testing
// package's concurrency machinery.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Digest is one labelled artifact of a run: its name ("trace", "output",
// "metrics", ...) and its exact bytes.
type Digest struct {
	Name string
	Data string
}

// Fingerprint returns a short stable FNV-1a fingerprint of s, for log
// lines where quoting the whole artifact would be noise.
func Fingerprint(s string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

// FirstDiff locates the first line where a and b differ. ok is false when
// the strings are identical.
func FirstDiff(a, b string) (line int, aLine, bLine string, ok bool) {
	if a == b {
		return 0, "", "", false
	}
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return i + 1, al[i], bl[i], true
		}
	}
	// One is a prefix of the other; report the first extra line.
	if len(al) < len(bl) {
		return len(al) + 1, "<end of sequential artifact>", bl[len(al)], true
	}
	return len(bl) + 1, al[len(bl)], "<end of sharded artifact>", true
}

// RequireIdentical asserts that every sharded artifact matches its
// sequential counterpart byte for byte. Artifacts are matched by Name; a
// name present on one side only is itself a failure.
func RequireIdentical(t TB, label string, sequential, sharded []Digest) {
	t.Helper()
	shd := make(map[string]string, len(sharded))
	for _, d := range sharded {
		shd[d.Name] = d.Data
	}
	seen := make(map[string]bool, len(sequential))
	for _, want := range sequential {
		seen[want.Name] = true
		got, found := shd[want.Name]
		if !found {
			t.Errorf("%s: artifact %q missing from the sharded run", label, want.Name)
			continue
		}
		if line, sl, gl, diff := FirstDiff(want.Data, got); diff {
			t.Errorf("%s: artifact %q diverges at line %d\n  sequential: %s\n  sharded:    %s\n  (fingerprints %s vs %s, %d vs %d bytes)",
				label, want.Name, line, clip(sl), clip(gl),
				Fingerprint(want.Data), Fingerprint(got), len(want.Data), len(got))
		}
	}
	for _, d := range sharded {
		if !seen[d.Name] {
			t.Errorf("%s: artifact %q present only in the sharded run", label, d.Name)
		}
	}
}

// clip bounds one reported line so a failure message stays readable.
func clip(s string) string {
	const max = 220
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}
