package sim

// Sharded execution: a conservative parallel discrete-event core that is
// bit-identical to the sequential engine.
//
// State is partitioned into ownership Domains (the runtime counterpart of
// the //vhlint:owner domains certified by SHARDLEDGER.json). Domain 0
// (Shared) is executed by the coordinator — the goroutine that called Run —
// exactly like the sequential engine. Positive domains are grouped onto
// shards: worker goroutines with their own event heap, clock and
// provisional sequence counter.
//
// The run loop alternates two regimes:
//
//   - If the globally earliest pending event is Shared, the coordinator
//     executes it alone, in (time, seq) order, exactly as RunUntil does.
//     Shared events therefore serialise the whole simulation — which is
//     what makes an untagged (all-Shared) workload behave identically at
//     any shard count.
//   - Otherwise the coordinator opens a window: every shard executes its
//     local events with key < bound, in parallel, where bound is the
//     minimum of (earliest event time + lookahead), the key of the next
//     Shared event, and the RunUntil deadline. Conservative lookahead
//     makes the windows race-free: cross-domain events must be scheduled
//     at or beyond the window bound, so nothing a shard does inside a
//     window can affect another shard's same-window execution.
//
// Determinism is restored at each barrier by a renumbering replay. During
// a window each shard stamps newly created events with provisional
// sequence numbers (all greater than the frozen global counter, assigned
// in execution order, so each shard's relative order matches what the
// sequential engine would have produced). At the barrier the coordinator
// replays the window in merged (time, seq) order without re-executing
// anything: it pops executed events off a replay heap, emits their
// buffered trace lines, and assigns final global sequence numbers to
// their children in creation order — the exact numbers the sequential
// engine would have handed out. Cross-shard events travel through
// per-shard outboxes into the target shard's inbox and are drained, in
// (time, seq) order, into its heap at the same barrier.
//
// Because replay renumbering reproduces the sequential (time, seq) total
// order, traces, observability snapshots and outputs are byte-identical
// to a sequential run — the property sharddet_test.go, the shard_test.go
// differential suite and FuzzShardSchedule pin.

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Domain identifies an ownership partition of simulation state. Domain 0
// (Shared) is engine/shared state, executed serially by the coordinator;
// positive domains are mapped onto shard workers by modulo grouping, so a
// domain's events always execute on the same shard regardless of how many
// shards the engine was built with.
type Domain int

// Shared is the engine/shared domain: its events serialise the simulation.
const Shared Domain = 0

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithShards sets the number of shard workers. n <= 1 selects the plain
// sequential engine — byte-for-byte today's single-threaded path.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.nshards = n
	}
}

// WithLookahead sets the conservative lookahead: the minimum virtual-time
// distance of any cross-domain event, typically the minimum vnet link
// latency. Larger lookahead means wider windows and fewer barriers.
func WithLookahead(d Time) Option {
	return func(e *Engine) { e.SetLookahead(d) }
}

// DefaultLookahead is used when no lookahead is configured. It is tiny so
// an unconfigured sharded engine is correct (windows just stay narrow).
const DefaultLookahead Time = 1e-6

// SetLookahead adjusts the lookahead between runs. It must not be called
// while the engine is running.
func (e *Engine) SetLookahead(d Time) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: lookahead must be positive, got %v", d))
	}
	e.lookahead = d
}

// Lookahead returns the configured conservative lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// Shards returns the configured shard count (1 = sequential).
func (e *Engine) Shards() int { return e.nshards }

// evKey is a point in the engine's (time, seq) total order.
type evKey struct {
	at  Time
	seq uint64
}

func keyLess(a, b evKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// bufTrace is one trace line buffered during a window, emitted in
// sequential order at the barrier.
type bufTrace struct {
	at  Time
	msg string
}

// shardEv is the shard-mode metadata of an event. It is nil on every
// event of a sequential engine and on Shared events, so the sequential
// hot path pays only the pointer field.
type shardEv struct {
	sh       *shard     // executing shard; nil would mean Shared (not stored)
	prov     bool       // seq is provisional until the next barrier renumber
	children []*event   // events scheduled while this one executed, in order
	traces   []bufTrace // trace lines emitted while this one executed
}

// windowCmd is the coordinator -> worker instruction for one window.
type windowCmd struct {
	bound evKey
	quit  bool
}

// shard is one worker: a slice of the simulation owning every domain that
// maps to it. Exactly one of {coordinator, this shard's worker, a process
// dispatched by this worker} runs at any instant with respect to the
// shard's state; the cmd/ack channel pair is the barrier hand-off and the
// handoff/resume pair is the per-process baton, mirroring the sequential
// engine's discipline.
type shard struct {
	id  int // 1-based worker index
	eng *Engine

	now     Time
	events  eventHeap
	provSeq uint64 // provisional seq counter, rebased to e.seq every window

	//vhlint:allow lockfree -- barrier hand-off: coordinator -> worker window command; the worker only runs between cmd receive and ack send
	cmd chan windowCmd
	//vhlint:allow lockfree -- barrier hand-off: worker -> coordinator window completion; the coordinator blocks here while workers run
	ack chan struct{}
	//vhlint:allow lockfree -- hand-off core: per-shard process->worker baton, the shard-local twin of Engine.handoff
	handoff chan struct{}

	current  *Proc
	procs    map[*Proc]bool
	inWindow bool  // true while the worker executes a window body
	bound    evKey // current window bound (valid while inWindow)

	curEv     *event   // event being executed (children/traces attach here)
	execd     []*event // events executed this window, in execution order
	outbox    []*event // cross-context events created this window
	inbox     []*event // finalised events staged for this shard at a barrier
	procPanic string   // pending failure report, re-raised by the coordinator
}

// ensureShards lazily builds the shard workers on first sharded Run.
func (e *Engine) ensureShards() {
	if e.shards != nil {
		return
	}
	e.shards = make([]*shard, e.nshards)
	for i := range e.shards {
		sh := &shard{
			id:  i + 1,
			eng: e,
			now: e.now,
			//vhlint:allow lockfree -- barrier hand-off: unbuffered by design so a window command is a rendezvous
			cmd: make(chan windowCmd),
			//vhlint:allow lockfree -- barrier hand-off: unbuffered ack, the coordinator never runs concurrently with an acked worker
			ack: make(chan struct{}),
			//vhlint:allow lockfree -- hand-off core: unbuffered per-shard baton, exactly one side runs at a time
			handoff: make(chan struct{}),
			procs:   make(map[*Proc]bool),
		}
		e.shards[i] = sh
		//vhlint:allow lockfree -- barrier hand-off: the worker goroutine is born parked on cmd and only ever runs inside a window granted by the coordinator
		go sh.run()
	}
}

// shardOf maps a domain to its shard (nil for Shared). Grouping is modulo
// the shard count, so the mapping is deterministic and a domain never
// migrates between shards within a run.
func (e *Engine) shardOf(dom Domain) *shard {
	if dom <= 0 || e.nshards <= 1 {
		return nil
	}
	e.ensureShards()
	return e.shards[(int(dom)-1)%len(e.shards)]
}

// run is the worker main loop.
func (sh *shard) run() {
	for {
		//vhlint:allow lockfree -- barrier hand-off: parked until the coordinator grants a window
		cmd := <-sh.cmd
		if cmd.quit {
			return
		}
		sh.window(cmd.bound)
		//vhlint:allow lockfree -- barrier hand-off: window complete, hand control back to the coordinator
		sh.ack <- struct{}{}
	}
}

// window executes every local event with key < bound in (time, seq)
// order. A process failure or a lookahead violation aborts the window;
// the coordinator re-raises it after the barrier.
func (sh *shard) window(bound evKey) {
	defer func() {
		sh.inWindow = false
		sh.curEv = nil
		if r := recover(); r != nil && sh.procPanic == "" {
			sh.procPanic = fmt.Sprintf("sim: shard %d: %v", sh.id, r)
		}
	}()
	sh.bound = bound
	sh.provSeq = sh.eng.seq // rebase: provisional > every finalised seq
	sh.inWindow = true
	for {
		ev := sh.events.peekLive()
		if ev == nil || !keyLess(evKey{ev.at, ev.seq}, bound) {
			return
		}
		sh.events.pop()
		sh.now = ev.at
		ev.fired = true
		sh.execd = append(sh.execd, ev)
		sh.curEv = ev
		if ev.fn != nil {
			ev.fn()
		} else if ev.proc != nil {
			sh.dispatch(ev.proc)
		}
		sh.curEv = nil
		if sh.procPanic != "" {
			return
		}
	}
}

// dispatch transfers control to p until it blocks or terminates, the
// shard-local twin of Engine.dispatch.
func (sh *shard) dispatch(p *Proc) {
	if p.terminated {
		return
	}
	sh.current = p
	//vhlint:allow lockfree -- hand-off core: pass the baton to the process...
	p.resume <- struct{}{}
	//vhlint:allow lockfree -- hand-off core: ...and block until it comes back; worker and process never run concurrently
	<-sh.handoff
	sh.current = nil
}

// nextProv returns the next provisional sequence number. Provisional
// numbers are strictly greater than every finalised seq (they rebase to
// the frozen global counter each window) and increase in creation order,
// so each shard's window-local order matches the final renumbered order.
func (sh *shard) nextProv() uint64 {
	sh.provSeq++
	return sh.provSeq
}

// push validates causality and inserts ev into the shard's heap.
func (sh *shard) push(ev *event) {
	if ev.at < sh.now {
		panic(fmt.Sprintf("sim: shard %d: scheduling event at %v before shard time %v", sh.id, ev.at, sh.now))
	}
	sh.events.push(ev)
}

// schedule creates a window-local resume event for p at time t. Worker
// context only.
func (sh *shard) schedule(p *Proc, t Time) *Timer {
	ev := &event{at: t, seq: sh.nextProv(), proc: p, sx: &shardEv{sh: sh, prov: true}}
	sh.record(ev)
	sh.push(ev)
	return &Timer{ev: ev}
}

// scheduleFn creates a window-local fn event targeting target (which may
// be this shard or, for a cross-domain send, another one). Worker context
// only; cross-shard events are staged in the outbox for barrier routing.
func (sh *shard) scheduleFn(target *shard, t Time, fn func()) *event {
	ev := &event{at: t, seq: sh.nextProv(), fn: fn, sx: &shardEv{sh: target, prov: true}}
	sh.record(ev)
	if target == sh {
		sh.push(ev)
	} else {
		sh.outbox = append(sh.outbox, ev)
	}
	return ev
}

// record appends ev to the executing event's children, the barrier
// renumbering order.
func (sh *shard) record(ev *event) {
	if sh.curEv == nil || sh.curEv.sx == nil {
		panic(fmt.Sprintf("sim: shard %d: scheduling outside an executing event", sh.id))
	}
	sh.curEv.sx.children = append(sh.curEv.sx.children, ev)
}

// checkLookahead enforces the conservative contract: a cross-domain event
// must land at or beyond the current window bound, which the window
// construction guarantees whenever the scheduling delay is at least the
// engine lookahead.
func (sh *shard) checkLookahead(t Time, what string) {
	if t < sh.bound.at {
		panic(fmt.Sprintf(
			"sim: shard %d: cross-domain %s at t=%v lands inside the current window (bound %v): cross-domain events need a delay of at least the lookahead (%v); raise the delay or lower the engine lookahead",
			sh.id, what, t, sh.bound.at, sh.eng.lookahead))
	}
}

// inject schedules ev into a shard from coordinator context (between
// windows: setup code, Shared events, Abort from Shared code). The seq is
// final — the coordinator owns the global counter — and shared->shard
// scheduling needs no lookahead because every shard is at or behind the
// coordinator's clock while Shared code runs.
func (e *Engine) inject(sh *shard, ev *event) {
	ev.seq = e.nextSeq()
	sh.push(ev)
	e.anyShard = true
}

// globalNow returns the latest clock across the coordinator and all
// shards — the virtual time a drained sharded run has reached.
func (e *Engine) globalNow() Time {
	t := e.now
	for _, sh := range e.shards {
		if sh.now > t {
			t = sh.now
		}
	}
	return t
}

// runSharded is the coordinator loop: RunUntil for a sharded engine.
func (e *Engine) runSharded(deadline Time) Time {
	e.ensureShards()
	for !e.stopped {
		sev := e.events.peekLive()
		// The globally earliest shard event, if any.
		var minSh *shard
		var minKey evKey
		if e.anyShard {
			for _, sh := range e.shards {
				if ev := sh.events.peekLive(); ev != nil {
					k := evKey{ev.at, ev.seq}
					if minSh == nil || keyLess(k, minKey) {
						minSh, minKey = sh, k
					}
				}
			}
		}
		if sev != nil && (minSh == nil || keyLess(evKey{sev.at, sev.seq}, minKey)) {
			// A Shared event is globally next: execute it exactly like the
			// sequential engine, alone.
			if sev.at > deadline {
				e.events.pop()
				sev.seq = 0 // keep it ahead of same-time events scheduled later
				e.events.push(sev)
				e.now = deadline
				return e.now
			}
			e.events.pop()
			e.now = sev.at
			sev.fired = true
			if sev.fn != nil {
				sev.fn()
			} else if sev.proc != nil {
				e.dispatch(sev.proc)
			}
			continue
		}
		if minSh == nil {
			break // fully drained
		}
		if minKey.at > deadline {
			e.now = deadline
			return e.now
		}
		// Parallel window: earliest time plus lookahead, cut at the next
		// Shared event and at the deadline.
		bound := evKey{minKey.at + e.lookahead, 0}
		if sev != nil && keyLess(evKey{sev.at, sev.seq}, bound) {
			bound = evKey{sev.at, sev.seq}
		}
		if bound.at > deadline {
			bound = evKey{deadline, math.MaxUint64}
		}
		e.runWindow(bound)
	}
	e.now = e.globalNow()
	return e.now
}

// runWindow runs one parallel window across all shards with work before
// bound, then performs the barrier: re-raise failures, renumber, route
// outboxes and drain inboxes.
func (e *Engine) runWindow(bound evKey) {
	e.windowActive = true
	var active []*shard
	for _, sh := range e.shards {
		ev := sh.events.peekLive()
		if ev != nil && keyLess(evKey{ev.at, ev.seq}, bound) {
			active = append(active, sh)
		}
	}
	for _, sh := range active {
		//vhlint:allow lockfree -- barrier hand-off: grant the window; the coordinator does not touch shard state until the ack
		sh.cmd <- windowCmd{bound: bound}
	}
	for _, sh := range active {
		//vhlint:allow lockfree -- barrier hand-off: wait for the worker to finish its window
		<-sh.ack
	}
	e.windowActive = false
	var failures []string
	for _, sh := range e.shards {
		if sh.procPanic != "" {
			failures = append(failures, sh.procPanic)
			sh.procPanic = ""
		}
	}
	if len(failures) > 0 {
		// Deterministic: collected in shard order. The aborted window's
		// outboxes stay staged; Shutdown drains them.
		panic(strings.Join(failures, "; "))
	}
	e.renumber()
	e.routeOutboxes()
	e.drainInboxes()
}

// renumber is the barrier replay: it walks the window's executed events
// in merged (time, seq) order — without re-executing anything — emitting
// buffered trace lines and assigning final sequence numbers to children
// in creation order, exactly as the sequential engine would have.
func (e *Engine) renumber() {
	var pq eventHeap
	for _, sh := range e.shards {
		for _, ev := range sh.execd {
			if ev.sx != nil && !ev.sx.prov {
				pq.push(ev)
			}
		}
	}
	for {
		ev := pq.pop()
		if ev == nil {
			break
		}
		sx := ev.sx
		if e.tracef != nil {
			for _, tl := range sx.traces {
				e.tracef(tl.at, "%s", tl.msg)
			}
		}
		for _, c := range sx.children {
			c.seq = e.nextSeq()
			c.sx.prov = false
			if c.fired {
				pq.push(c)
			}
		}
		sx.children = nil
		sx.traces = nil
	}
	for _, sh := range e.shards {
		sh.execd = sh.execd[:0]
	}
}

// routeOutboxes moves cross-context events created during the window into
// their target shard's inbox (or the Shared heap). Every outbox event was
// renumbered by the replay — it is a child of an executed event.
func (e *Engine) routeOutboxes() {
	for _, sh := range e.shards {
		for _, ev := range sh.outbox {
			if ev.cancelled {
				continue
			}
			if ev.sx.prov {
				panic("sim: internal: outbox event escaped renumbering")
			}
			target := ev.sx.sh
			if target == nil {
				e.events.push(ev)
				continue
			}
			target.inbox = append(target.inbox, ev)
		}
		sh.outbox = sh.outbox[:0]
	}
}

// drainInboxes empties every shard's inbox into its heap in (time, seq)
// order. Runs at each barrier and — so no cross-shard event can land on a
// torn-down shard — as the first step of Shutdown.
func (e *Engine) drainInboxes() {
	for _, sh := range e.shards {
		if len(sh.inbox) == 0 {
			continue
		}
		sort.Slice(sh.inbox, func(i, j int) bool {
			return keyLess(evKey{sh.inbox[i].at, sh.inbox[i].seq}, evKey{sh.inbox[j].at, sh.inbox[j].seq})
		})
		for _, ev := range sh.inbox {
			sh.push(ev)
		}
		sh.inbox = sh.inbox[:0]
		e.anyShard = true
	}
}

// shutdownSharded tears down a sharded engine: drain staged cross-shard
// events first (an aborted window may have left outboxes behind), kill
// every live process in start order, stop the workers, clear all heaps.
func (e *Engine) shutdownSharded() {
	// Step 1: drain. Stray outbox events from an aborted window carry
	// provisional seqs; give them final ones so heap ordering during the
	// teardown below stays total, then deliver everything.
	for _, sh := range e.shards {
		for _, ev := range sh.outbox {
			if ev.sx.prov {
				ev.seq = e.nextSeq()
				ev.sx.prov = false
			}
		}
	}
	e.routeOutboxes()
	e.drainInboxes()
	// Step 2: kill every started live process, coordinator- and
	// shard-owned alike, in spawn order (the start event's seq — the same
	// relative order the sequential engine's spawnSeq produces).
	var live []*Proc
	for p := range e.procs {
		live = append(live, p)
	}
	for _, sh := range e.shards {
		for p := range sh.procs {
			live = append(live, p)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].startSeq() < live[j].startSeq() })
	for _, p := range live {
		if !p.started || p.terminated {
			delete(e.procs, p)
			if p.sh != nil {
				delete(p.sh.procs, p)
			}
			continue
		}
		p.killed = true
		// The per-process baton works from the coordinator because every
		// worker is parked between windows: resume the process, wait for
		// its unwind to hand the baton back.
		//vhlint:allow lockfree -- hand-off core: teardown baton, same pair dispatch uses; workers are parked so the coordinator is the only other runner
		p.resume <- struct{}{}
		//vhlint:allow lockfree -- hand-off core: block until the unwound process hands back
		<-p.handoff
		if msg := e.procPanic; msg != "" {
			e.procPanic = ""
			panic(msg)
		}
		for _, sh := range e.shards {
			if msg := sh.procPanic; msg != "" {
				sh.procPanic = ""
				panic(msg)
			}
		}
	}
	// Step 3: stop the workers and clear all event state. The engine is
	// reusable: the next sharded Run rebuilds fresh workers.
	for _, sh := range e.shards {
		//vhlint:allow lockfree -- barrier hand-off: final command; the worker goroutine exits on receipt
		sh.cmd <- windowCmd{quit: true}
		sh.events = nil
		sh.inbox = nil
		sh.outbox = nil
		sh.execd = nil
	}
	e.shards = nil
	e.anyShard = false
	e.events = nil
	e.stopped = false
}

// --- Domain-tagged spawning and sending ------------------------------------

// SpawnOn creates a process owned by dom, starting at the current time.
// Must be called from Shared context (setup code, a Shared event or a
// Shared process). With one shard — or for the Shared domain — it is
// exactly Spawn.
func (e *Engine) SpawnOn(dom Domain, name string, fn func(p *Proc)) *Proc {
	return e.SpawnOnAfter(dom, 0, name, fn)
}

// SpawnOnAfter is SpawnOn with a start delay.
func (e *Engine) SpawnOnAfter(dom Domain, d Time, name string, fn func(p *Proc)) *Proc {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	sh := e.shardOf(dom)
	if sh == nil {
		p := e.SpawnAfter(d, name, fn)
		p.dom = dom
		return p
	}
	if e.windowActive {
		panic("sim: Engine.SpawnOn called from shard context; use Proc.SpawnOnAfter")
	}
	p := e.newShardProc(name, dom, sh)
	ev := &event{at: e.now + d, fn: func() { p.start(fn) }, sx: &shardEv{sh: sh}}
	e.inject(sh, ev)
	p.startEv = ev
	return p
}

// newShardProc builds a shard-owned process. Registration into the
// shard's process set happens in start, in the shard's own context.
func (e *Engine) newShardProc(name string, dom Domain, sh *shard) *Proc {
	return &Proc{
		engine: e,
		name:   name,
		dom:    dom,
		sh:     sh,
		//vhlint:allow lockfree -- hand-off core: per-process worker->process baton, unbuffered rendezvous
		resume:  make(chan struct{}),
		handoff: sh.handoff,
		done:    NewDone(e),
	}
}

// Domain returns the ownership domain this process was spawned on.
func (p *Proc) Domain() Domain { return p.dom }

// Tracef emits a trace line attributed to this process's context. In a
// window it is buffered (formatted eagerly) and emitted in sequential
// (time, seq) order at the barrier, so sharded traces are byte-identical
// to sequential ones.
func (p *Proc) Tracef(format string, args ...any) {
	e := p.engine
	if e.tracef == nil {
		return
	}
	if sh := p.sh; sh != nil && sh.inWindow {
		sh.curEv.sx.traces = append(sh.curEv.sx.traces, bufTrace{at: sh.now, msg: fmt.Sprintf(format, args...)})
		return
	}
	e.Tracef(format, args...)
}

// Send schedules fn to run in dom's context d seconds from now. Sending
// to the process's own domain is a local timer with any non-negative
// delay. Cross-domain sends from a shard-owned process must respect the
// engine lookahead; sends from Shared context reach any domain with any
// delay (shards never run ahead of executing Shared code).
func (p *Proc) Send(dom Domain, d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e := p.engine
	target := e.shardOf(dom)
	if sh := p.sh; sh != nil && sh.inWindow {
		t := sh.now + d
		if dom != p.dom {
			sh.checkLookahead(t, "send")
		}
		if target == nil {
			// Shard -> Shared: stage for the coordinator's heap.
			ev := &event{at: t, seq: sh.nextProv(), fn: fn, sx: &shardEv{sh: nil, prov: true}}
			sh.record(ev)
			sh.outbox = append(sh.outbox, ev)
			return
		}
		sh.scheduleFn(target, t, fn)
		return
	}
	// Shared (or sequential) context.
	if target == nil {
		e.After(d, fn)
		return
	}
	ev := &event{at: e.now + d, fn: fn, sx: &shardEv{sh: target}}
	e.inject(target, ev)
}

// SpawnOnAfter creates a process owned by dom from process context,
// starting d seconds from now. Cross-domain spawns from a shard-owned
// process must respect the engine lookahead, like Send.
func (p *Proc) SpawnOnAfter(dom Domain, d Time, name string, fn func(q *Proc)) *Proc {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e := p.engine
	target := e.shardOf(dom)
	if sh := p.sh; sh != nil && sh.inWindow {
		t := sh.now + d
		if dom != p.dom {
			sh.checkLookahead(t, "spawn")
		}
		var q *Proc
		if target == nil {
			panic("sim: shard-owned process cannot spawn a Shared process; Shared procs belong to the coordinator")
		}
		q = e.newShardProc(name, dom, target)
		q.startEv = sh.scheduleFn(target, t, func() { q.start(fn) })
		return q
	}
	return e.SpawnOnAfter(dom, d, name, fn)
}
