package sim

import (
	"testing"
	"testing/quick"
)

func TestFairShareSingleJob(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "disk", 100, 0)
	var done Time
	e.Spawn("w", func(p *Proc) {
		fs.Use(p, 500)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 5, 1e-9, "500 work at 100/s")
}

func TestFairShareSetCapacityMidJob(t *testing.T) {
	// 1000 work at 100/s; at t=5 (500 served) the device stalls to 10/s,
	// so the remaining 500 takes 50 more seconds.
	e := New(1)
	fs := NewFairShare(e, "disk", 100, 0)
	e.At(5, func() { fs.SetCapacity(10) })
	var done Time
	e.Spawn("w", func(p *Proc) {
		fs.Use(p, 1000)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 55, 1e-6, "stalled device slows the tail")
	almost(t, fs.Served(), 1000, 1e-6, "work conserved across retune")
}

func TestFairShareSetCapacityRejectsNonPositive(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "disk", 100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetCapacity(0) did not panic")
		}
	}()
	fs.SetCapacity(0)
}

func TestFairShareTwoJobsShareEqually(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "disk", 100, 0)
	var d1, d2 Time
	e.Spawn("a", func(p *Proc) { fs.Use(p, 100); d1 = p.Now() })
	e.Spawn("b", func(p *Proc) { fs.Use(p, 100); d2 = p.Now() })
	e.Run()
	// Both run at 50/s while together: each 100 units takes 2s.
	almost(t, d1, 2, 1e-9, "job a")
	almost(t, d2, 2, 1e-9, "job b")
}

func TestFairShareShorterJobFreesCapacity(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "disk", 100, 0)
	var dShort, dLong Time
	e.Spawn("short", func(p *Proc) { fs.Use(p, 50); dShort = p.Now() })
	e.Spawn("long", func(p *Proc) { fs.Use(p, 150); dLong = p.Now() })
	e.Run()
	// Shared phase: both at 50/s; short finishes at t=1 with long at 100 left,
	// which then runs at 100/s, finishing at t=2.
	almost(t, dShort, 1, 1e-9, "short job")
	almost(t, dLong, 2, 1e-9, "long job")
}

func TestFairSharePerJobCap(t *testing.T) {
	e := New(1)
	// 8-core CPU pool with 1-core cap per VCPU: a single job cannot exceed 1.
	fs := NewFairShare(e, "cpu", 8, 1)
	var done Time
	e.Spawn("vcpu", func(p *Proc) { fs.Use(p, 10); done = p.Now() })
	e.Run()
	almost(t, done, 10, 1e-9, "capped single job")
}

func TestFairShareCapRedistribution(t *testing.T) {
	e := New(1)
	// Capacity 10, cap 4: three jobs -> equal share 3.33 < cap, all at 3.33.
	// Two jobs -> share 5 > cap, both at 4 (surplus unusable).
	fs := NewFairShare(e, "r", 10, 4)
	var d1, d2 Time
	e.Spawn("a", func(p *Proc) { fs.Use(p, 8); d1 = p.Now() })
	e.Spawn("b", func(p *Proc) { fs.Use(p, 8); d2 = p.Now() })
	e.Run()
	almost(t, d1, 2, 1e-9, "capped pair a")
	almost(t, d2, 2, 1e-9, "capped pair b")
}

func TestFairShareWeights(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "r", 90, 0)
	var dHeavy, dLight Time
	e.Spawn("heavy", func(p *Proc) { fs.UseWeighted(p, 120, 2); dHeavy = p.Now() })
	e.Spawn("light", func(p *Proc) { fs.UseWeighted(p, 60, 1); dLight = p.Now() })
	e.Run()
	// heavy at 60/s, light at 30/s: both finish at t=2.
	almost(t, dHeavy, 2, 1e-9, "weighted heavy")
	almost(t, dLight, 2, 1e-9, "weighted light")
}

func TestFairShareOversubscriptionSlowdown(t *testing.T) {
	// 16 VCPUs on 8 cores must take twice as long as 8 VCPUs on 8 cores —
	// the normal-vs-cross-domain CPU effect in the paper's testbed.
	elapsed := func(nJobs int) Time {
		e := New(1)
		fs := NewFairShare(e, "cpu", 8, 1)
		var last Time
		for i := 0; i < nJobs; i++ {
			e.Spawn("vcpu", func(p *Proc) {
				fs.Use(p, 10)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		return last
	}
	t8, t16 := elapsed(8), elapsed(16)
	almost(t, t8, 10, 1e-9, "8 on 8")
	almost(t, t16, 20, 1e-9, "16 on 8")
}

func TestFairShareUtilizationAccounting(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "r", 100, 0)
	e.Spawn("w", func(p *Proc) {
		fs.Use(p, 500) // busy 0..5 at full rate
		p.Sleep(5)     // idle 5..10
	})
	e.Run()
	almost(t, fs.MeanUtilization(), 0.5, 1e-9, "mean utilisation")
	almost(t, fs.Served(), 500, 1e-6, "served work")
	if fs.Load() != 0 {
		t.Fatalf("load = %d after completion", fs.Load())
	}
}

func TestFairShareSubmitFromEngineContext(t *testing.T) {
	e := New(1)
	fs := NewFairShare(e, "r", 10, 0)
	d := fs.Submit(100, 1)
	var at Time
	e.Spawn("w", func(p *Proc) { d.Wait(p); at = p.Now() })
	e.Run()
	almost(t, at, 10, 1e-9, "submit completion")
}

// Property: for any set of job sizes, total served work equals total
// submitted work and every job completes no earlier than its ideal
// (uncontended) finish time.
func TestFairShareConservationProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		jobs := make([]float64, 0, len(sizes))
		var total float64
		for _, s := range sizes {
			if len(jobs) == 12 {
				break
			}
			w := float64(s%1000) + 1
			jobs = append(jobs, w)
			total += w
		}
		if len(jobs) == 0 {
			return true
		}
		e := New(7)
		fs := NewFairShare(e, "r", 50, 0)
		ok := true
		for _, w := range jobs {
			w := w
			e.Spawn("j", func(p *Proc) {
				fs.Use(p, w)
				if p.Now() < w/50-1e-6 { // faster than uncontended is impossible
					ok = false
				}
			})
		}
		e.Run()
		served := fs.Served()
		return ok && served > total-1e-3 && served < total+1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
