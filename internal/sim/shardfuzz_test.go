package sim

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzShardSchedule decodes arbitrary bytes into a bounded multi-domain
// event timeline and checks the sharded engine's core contract: for any
// timeline, execution at every shard count replays byte-identically to the
// sequential engine — same trace, same per-domain state, same end time.
func FuzzShardSchedule(f *testing.F) {
	f.Add([]byte{0x03})
	f.Add([]byte("\x07spawn-heavy schedule with several domains"))
	f.Add([]byte("\x02\x80\x81\x82\x83\x84\x85\x86\x87"))
	f.Add([]byte("interleaved sends 123456789 abcdefgh"))
	f.Add([]byte{0x06, 0xff, 0x00, 0xff, 0x00, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		want := runFuzzTimeline(data, 1)
		for _, n := range []int{2, 3, 4} {
			got := runFuzzTimeline(data, n)
			if got != want {
				t.Fatalf("shards=%d diverges from sequential:\n%s", n, diffLine(want, got))
			}
		}
	})
}

// runFuzzTimeline is a pure function of (data, shards): it builds the
// decoded workload, drains it, and returns a digest of everything the
// engine produced.
func runFuzzTimeline(data []byte, shards int) string {
	const fuzzLookahead = 0.2
	byteAt := func(i int) byte { return data[i%len(data)] }
	ndom := 1 + int(data[0]&3)
	procs := 1 + int((data[0]>>2)&1)
	e := New(11, WithShards(shards), WithLookahead(fuzzLookahead))
	var trace strings.Builder
	e.SetTrace(func(at Time, format string, args ...any) {
		fmt.Fprintf(&trace, "%012.6f | ", at)
		fmt.Fprintf(&trace, format, args...)
		trace.WriteByte('\n')
	})
	counters := make([]int64, ndom)
	for d := 0; d < ndom; d++ {
		for q := 0; q < procs; q++ {
			d, q := d, q
			e.SpawnOn(Domain(d+1), fmt.Sprintf("p%d.%d", d, q), func(p *Proc) {
				idx := d*31 + q*7
				steps := 4 + int(byteAt(idx))%20
				for s := 0; s < steps; s++ {
					b := byteAt(idx + s + 1)
					counters[d]++
					switch b % 4 {
					case 0:
						p.Sleep(0.05 + float64(b)/512)
					case 1:
						p.Tracef("p%d.%d s%d t=%.6f c=%d", d, q, s, p.Now(), counters[d])
						p.Sleep(0.3)
					case 2:
						td := int(b/4) % ndom
						p.Send(Domain(td+1), fuzzLookahead+float64(b%64)/256, func() {
							counters[td] += 7
						})
						p.Sleep(0.1)
					case 3:
						td := (d + int(b/8)) % ndom
						p.SpawnOnAfter(Domain(td+1), fuzzLookahead+0.05, fmt.Sprintf("c%d.%d.%d", d, q, s), func(c *Proc) {
							counters[td] += 3
							c.Tracef("c%d.%d.%d t=%.6f", d, q, s, c.Now())
						})
						p.Sleep(0.2)
					}
				}
				p.Send(Shared, fuzzLookahead+0.1, func() { counters[d] += 1000 })
			})
		}
	}
	e.Spawn("tick", func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.Sleep(1.1)
			var sum int64
			for _, c := range counters {
				sum += c
			}
			p.Tracef("tick %d sum=%d", i, sum)
		}
	})
	end := e.Run()
	e.Shutdown()
	return fmt.Sprintf("end=%v counters=%v\n%s", end, counters, trace.String())
}
