package sim

import "fmt"

// FairShare is a processor-sharing resource: every job in service progresses
// simultaneously, each at a weighted fair fraction of the total capacity,
// optionally capped at a per-job maximum rate. It models CPU pools under the
// Xen credit scheduler (capacity = #cores, per-job cap = 1 core), disks and
// any other rate-shared device.
type FairShare struct {
	engine    *Engine
	name      string
	capacity  float64 // total work units per second
	perJobCap float64 // per-job max rate; 0 means uncapped

	// Jobs are kept in submission order (a slice, not a map): progress
	// integration, water-filling and completion firing must walk them in a
	// reproducible order or floating-point accumulation and wakeup order
	// vary run to run.
	jobs       []*fsJob
	lastUpdate Time
	timer      *Timer

	busyInt     float64 // integral of allocated rate (for utilisation)
	servedTotal float64 // total work completed
	createdAt   Time
}

type fsJob struct {
	remaining float64
	weight    float64
	rate      float64
	done      *Done
}

// NewFairShare returns a processor-sharing resource with the given total
// capacity (work units per second) and per-job rate cap (0 = uncapped).
func NewFairShare(e *Engine, name string, capacity, perJobCap float64) *FairShare {
	if capacity <= 0 {
		panic("sim: fair-share capacity must be positive")
	}
	return &FairShare{
		engine:     e,
		name:       name,
		capacity:   capacity,
		perJobCap:  perJobCap,
		lastUpdate: e.now,
		createdAt:  e.now,
	}
}

// Name returns the resource name.
func (f *FairShare) Name() string { return f.name }

// Capacity returns the total service rate.
func (f *FairShare) Capacity() float64 { return f.capacity }

// Load returns the number of jobs currently in service.
func (f *FairShare) Load() int { return len(f.jobs) }

// SetCapacity retunes the total service rate mid-simulation (fault
// injection: a stalled disk or throttled device). Progress is integrated at
// the old rates first, then every in-flight job is re-rated. Capacity must
// stay positive: a zero-rate resource would stall the event loop, so stalls
// are modelled as a severe-but-finite slowdown.
func (f *FairShare) SetCapacity(capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: fair-share %q: capacity must be positive", f.name))
	}
	f.advance()
	f.capacity = capacity
	f.reschedule()
}

// Utilization returns the instantaneous fraction of capacity in use.
func (f *FairShare) Utilization() float64 {
	total := 0.0
	for _, j := range f.jobs {
		total += j.rate
	}
	return total / f.capacity
}

// MeanUtilization returns the time-averaged utilisation since creation.
func (f *FairShare) MeanUtilization() float64 {
	f.advance()
	dt := f.engine.now - f.createdAt
	if dt <= 0 {
		return 0
	}
	return f.busyInt / (f.capacity * dt)
}

// Served returns the total work completed so far.
func (f *FairShare) Served() float64 {
	f.advance()
	return f.servedTotal
}

// Use blocks p until `work` units have been serviced at fair-share rates.
func (f *FairShare) Use(p *Proc, work float64) { f.UseWeighted(p, work, 1) }

// UseWeighted is Use with a scheduling weight (a job with weight 2 receives
// twice the rate of a weight-1 job when the resource is contended).
func (f *FairShare) UseWeighted(p *Proc, work, weight float64) {
	if work <= 0 {
		return
	}
	done := f.Submit(work, weight)
	done.Wait(p)
}

// Submit enqueues work asynchronously and returns a latch that fires on
// completion. It may be called from engine context or a process.
func (f *FairShare) Submit(work, weight float64) *Done {
	if work <= 0 {
		d := NewDone(f.engine)
		d.Fire()
		return d
	}
	if weight <= 0 {
		panic(fmt.Sprintf("sim: fair-share %q: non-positive weight", f.name))
	}
	f.advance()
	j := &fsJob{remaining: work, weight: weight, done: NewDone(f.engine)}
	f.jobs = append(f.jobs, j)
	f.reschedule()
	return j.done
}

// advance integrates job progress from lastUpdate to now.
func (f *FairShare) advance() {
	dt := f.engine.now - f.lastUpdate
	if dt <= 0 {
		f.lastUpdate = f.engine.now
		return
	}
	for _, j := range f.jobs {
		served := j.rate * dt
		if served > j.remaining {
			served = j.remaining
		}
		j.remaining -= served
		f.busyInt += j.rate * dt
		f.servedTotal += served
	}
	f.lastUpdate = f.engine.now
}

// recomputeRates assigns per-job rates by weighted fair sharing with an
// optional per-job cap, using water-filling so that capped jobs return their
// surplus to the rest.
func (f *FairShare) recomputeRates() {
	if len(f.jobs) == 0 {
		return
	}
	residual := f.capacity
	active := make([]*fsJob, len(f.jobs))
	copy(active, f.jobs)
	for len(active) > 0 {
		var wsum float64
		for _, j := range active {
			wsum += j.weight
		}
		capped := false
		next := active[:0]
		for _, j := range active {
			share := residual * j.weight / wsum
			if f.perJobCap > 0 && share >= f.perJobCap {
				j.rate = f.perJobCap
				residual -= f.perJobCap
				capped = true
			} else {
				j.rate = share
				next = append(next, j)
			}
		}
		active = next
		if !capped {
			break
		}
	}
}

// fsEps retires jobs with a negligible work residue; fsMinTick guarantees
// the clock advances between completion events, so floating-point undershoot
// in rate*dt cannot pin the simulation at a constant virtual time.
const (
	fsEps     = 1e-9
	fsMinTick = 1e-9
)

// reschedule recomputes rates and (re)arms the next-completion timer.
func (f *FairShare) reschedule() {
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	// Retire finished jobs first (including any that would complete within
	// one minimum tick at their current rate), firing done latches in
	// submission order and compacting the rest in place.
	live := f.jobs[:0]
	for _, j := range f.jobs {
		if j.remaining <= fsEps || j.remaining <= j.rate*fsMinTick {
			j.done.Fire()
			continue
		}
		live = append(live, j)
	}
	for i := len(live); i < len(f.jobs); i++ {
		f.jobs[i] = nil // release retired jobs to the GC
	}
	f.jobs = live
	if len(f.jobs) == 0 {
		return
	}
	f.recomputeRates()
	minT := Forever
	for _, j := range f.jobs {
		if j.rate <= 0 {
			continue
		}
		if t := j.remaining / j.rate; t < minT {
			minT = t
		}
	}
	if minT >= Forever {
		panic(fmt.Sprintf("sim: fair-share %q stalled with %d jobs", f.name, len(f.jobs)))
	}
	if minT < fsMinTick {
		minT = fsMinTick
	}
	f.timer = f.engine.After(minT, func() {
		f.advance()
		f.reschedule()
	})
}
