package sim

import "testing"

func TestQueueBasicAcquireRelease(t *testing.T) {
	e := New(1)
	q := NewQueue(e, 2)
	var order []string
	worker := func(name string, hold Time) {
		e.Spawn(name, func(p *Proc) {
			q.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			q.Release(1)
			order = append(order, name+"-")
		})
	}
	worker("a", 2)
	worker("b", 2)
	worker("c", 2) // must wait for a slot
	e.Run()
	if q.Available() != 2 {
		t.Fatalf("available = %d after all released", q.Available())
	}
	// At t=2, a's wake event precedes b's, and c's grant event (created by
	// a's release) lands after b's pre-existing wake event.
	want := []string{"a+", "b+", "a-", "b-", "c+", "c-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueFIFONoStarvation(t *testing.T) {
	e := New(1)
	q := NewQueue(e, 4)
	var got []string
	e.Spawn("hog", func(p *Proc) {
		q.Acquire(p, 4)
		got = append(got, "hog")
		p.Sleep(1)
		q.Release(4)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(0.1) // arrive second
		q.Acquire(p, 3)
		got = append(got, "big")
		q.Release(3)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(0.2) // arrive third; must NOT jump ahead of big
		q.Acquire(p, 1)
		got = append(got, "small")
		q.Release(1)
	})
	e.Run()
	want := []string{"hog", "big", "small"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO violated)", got, want)
		}
	}
}

func TestQueueTryAcquire(t *testing.T) {
	e := New(1)
	q := NewQueue(e, 1)
	if !q.TryAcquire(1) {
		t.Fatal("first TryAcquire failed")
	}
	if q.TryAcquire(1) {
		t.Fatal("second TryAcquire succeeded on a full queue")
	}
	q.Release(1)
	if !q.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestQueueOverReleasePanics(t *testing.T) {
	e := New(1)
	q := NewQueue(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	q.Release(1)
}

func TestQueueMeanOccupancy(t *testing.T) {
	e := New(1)
	q := NewQueue(e, 2)
	e.Spawn("w", func(p *Proc) {
		q.Acquire(p, 2)
		p.Sleep(5)
		q.Release(2)
		p.Sleep(5)
	})
	e.Run()
	// 2 units held for 5s out of 10s => mean occupancy 1.0.
	almost(t, q.MeanOccupancy(), 1.0, 1e-9, "mean occupancy")
}
