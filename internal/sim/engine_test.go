package sim

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestEngineEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(2.0, func() { order = append(order, 2) })
	e.At(1.0, func() { order = append(order, 1) })
	e.At(3.0, func() { order = append(order, 3) })
	e.At(1.0, func() { order = append(order, 10) }) // same time: FIFO
	end := e.Run()
	if end != 3.0 {
		t.Fatalf("final time = %v, want 3", end)
	}
	want := []int{1, 10, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := New(1)
	var at Time
	e.After(5, func() { at = e.Now() })
	e.Run()
	almost(t, at, 5, 0, "After(5) fire time")
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.At(1, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after scheduling")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2", fired)
	}
	almost(t, e.Now(), 2.5, 0, "clock after RunUntil")
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v after full Run, want 4 events", fired)
	}
}

func TestSpawnSleepSequence(t *testing.T) {
	e := New(1)
	var marks []Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1)
		marks = append(marks, p.Now())
		p.Sleep(2)
		marks = append(marks, p.Now())
	})
	e.Run()
	if len(marks) != 2 {
		t.Fatalf("marks = %v", marks)
	}
	almost(t, marks[0], 1, 0, "first wake")
	almost(t, marks[1], 3, 0, "second wake")
}

func TestSpawnAfterDelaysStart(t *testing.T) {
	e := New(1)
	var started Time = -1
	e.SpawnAfter(4, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	almost(t, started, 4, 0, "delayed start")
}

func TestProcYieldInterleaving(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	e.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := New(42)
		var out []float64
		for i := 0; i < 10; i++ {
			e.Spawn("p", func(p *Proc) {
				p.Sleep(p.Engine().Rand().Float64() * 10)
				out = append(out, p.Now())
			})
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	e := New(1)
	d := NewDone(e)
	cleaned := false
	e.Spawn("blocked", func(p *Proc) {
		defer func() { cleaned = true }()
		d.Wait(p) // never fired
	})
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d, want 1 blocked", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after shutdown = %d", e.LiveProcs())
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run during shutdown")
	}
}

func TestStopAndResume(t *testing.T) {
	e := New(1)
	var fired []Time
	e.At(1, func() { fired = append(fired, 1); e.Stop() })
	e.At(2, func() { fired = append(fired, 2) })
	e.Run()
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want just the event at t=1", fired)
	}
	e.Resume()
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired = %v after resume", fired)
	}
}

func TestProcFailRecordsError(t *testing.T) {
	e := New(1)
	p := e.Spawn("failing", func(p *Proc) {
		p.Sleep(1)
		p.Fail(errTest)
	})
	var got error
	e.Spawn("watcher", func(w *Proc) {
		got = WaitProcs(w, p)
	})
	e.Run()
	if got != errTest {
		t.Fatalf("WaitProcs error = %v, want errTest", got)
	}
}

type testErr string

func (e testErr) Error() string { return string(e) }

var errTest = testErr("boom")

func TestAbortUnwindsParkedProcess(t *testing.T) {
	e := New(1)
	d := NewDone(e)
	cleaned := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		d.Wait(p) // never fired
	})
	e.At(3, func() { p.Abort(errTest) })
	e.Run()
	if !p.Terminated() {
		t.Fatal("aborted process still live")
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run")
	}
	if p.Err() != errTest {
		t.Fatalf("err = %v", p.Err())
	}
	if !p.Done().Fired() {
		t.Fatal("done latch not fired after abort")
	}
}

func TestAbortReleasesQueueGrant(t *testing.T) {
	e := New(1)
	q := NewQueue(e, 1)
	// holder takes the unit; victim queues; abort victim, then a third
	// process must still get the unit (no leak, no stuck FIFO entry).
	e.Spawn("holder", func(p *Proc) {
		q.Acquire(p, 1)
		p.Sleep(5)
		q.Release(1)
	})
	victim := e.Spawn("victim", func(p *Proc) {
		q.Acquire(p, 1)
		q.Release(1)
	})
	e.At(1, func() { victim.Abort(errTest) })
	var thirdAt Time = -1
	e.Spawn("third", func(p *Proc) {
		p.Sleep(2) // arrive after the victim
		q.Acquire(p, 1)
		thirdAt = p.Now()
		q.Release(1)
	})
	e.Run()
	almost(t, thirdAt, 5, 1e-9, "third process acquires when holder releases")
	if q.Available() != 1 {
		t.Fatalf("available = %d at end", q.Available())
	}
}

func TestAbortTerminatedProcessIsNoop(t *testing.T) {
	e := New(1)
	p := e.Spawn("quick", func(p *Proc) {})
	e.Run()
	p.Abort(errTest) // must not panic or revive
	if p.Err() != nil {
		t.Fatalf("err = %v on completed process", p.Err())
	}
}

// A panic escaping a process body must surface synchronously in engine
// context (the goroutine that called Run), not on the process goroutine
// where no recover can reach it and where the engine would keep
// executing events concurrently with the crash.
func TestProcessPanicSurfacesInEngineContext(t *testing.T) {
	e := New(1)
	e.Spawn("buggy", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	witness := 0
	e.At(5, func() { witness++ })
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || msg != `sim: process "buggy" panicked: boom` {
			t.Fatalf("unexpected panic value: %v", r)
		}
		if witness != 0 {
			t.Fatalf("engine kept executing events after the process bug: witness=%d", witness)
		}
	}()
	e.Run()
	t.Fatal("Run returned; expected the process panic to propagate")
}
