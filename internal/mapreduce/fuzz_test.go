package mapreduce

import (
	"fmt"
	"sort"
	"testing"

	"vhadoop/internal/hdfs"
)

// The fuzzers below attack the two pure data-plane transforms whose
// invariants the whole shuffle rests on:
//
//   - mergeRuns/merge2: merging key-sorted runs must be byte-identical
//     to a stable sort over their concatenation (ties to the earliest
//     run, within-run order preserved);
//   - makeSplits: cutting blocks into map inputs must conserve every
//     byte and every record, in order, no matter how awkward the block
//     sizes or map count.
//
// Both decode raw fuzz bytes into structured inputs with a tiny key
// alphabet, so the fuzzer hits key collisions (the tie-break paths)
// constantly instead of almost never.

// decodeRuns turns fuzz bytes into numRuns key-sorted runs. Each input
// byte becomes one record; the key is drawn from an 8-letter alphabet
// to force cross-run ties, and the Value carries the record's global
// arrival index so stability violations are observable.
func decodeRuns(data []byte, numRuns int) [][]KV {
	runs := make([][]KV, numRuns)
	for i, b := range data {
		r := int(b>>3) % numRuns
		runs[r] = append(runs[r], KV{
			Key:   string(rune('a' + b%8)),
			Value: i,
			Size:  1,
		})
	}
	for _, run := range runs {
		sortKVs(run)
	}
	return runs
}

func FuzzMergeRuns(f *testing.F) {
	f.Add([]byte(nil), byte(2))
	f.Add([]byte("the quick brown fox"), byte(3))
	f.Add([]byte{0, 8, 16, 24, 32, 40, 48, 56, 7, 15}, byte(4))
	f.Add([]byte{255, 255, 255, 0, 0, 0}, byte(1))
	f.Add([]byte("aaaaaaaabbbbbbbb"), byte(7))
	f.Fuzz(func(t *testing.T, data []byte, numRunsRaw byte) {
		numRuns := int(numRunsRaw)%8 + 1
		runs := decodeRuns(data, numRuns)

		// Reference: stable sort over the concatenation of the sorted
		// runs in run order. mergeRuns documents byte-identical output.
		var want []KV
		for _, run := range runs {
			want = append(want, run...)
		}
		want = append([]KV(nil), want...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })

		got := mergeRuns(runs, 0)
		if len(got) != len(want) {
			t.Fatalf("mergeRuns returned %d records, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key || got[i].Value != want[i].Value {
				t.Fatalf("record %d: got {%s %v}, want {%s %v} (tie-break or ordering bug)",
					i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	})
}

func FuzzSortKVs(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("zyxwvut"))
	f.Add([]byte("aabbaabb"))
	f.Add([]byte{1, 1, 1, 1, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		kvs := make([]KV, len(data))
		for i, b := range data {
			kvs[i] = KV{Key: string(rune('a' + b%4)), Value: i, Size: 1}
		}
		want := append([]KV(nil), kvs...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })

		sortKVs(kvs)
		for i := range kvs {
			if kvs[i].Key != want[i].Key || kvs[i].Value != want[i].Value {
				t.Fatalf("record %d: got {%s %v}, want {%s %v} (sortKVs must be stable)",
					i, kvs[i].Key, kvs[i].Value, want[i].Key, want[i].Value)
			}
		}
	})
}

// decodeBlocks turns fuzz bytes into HDFS blocks: each byte yields one
// block whose size is derived from its high bits and whose records
// (0-3 of them, one possibly zero-sized) split the block's bytes.
func decodeBlocks(data []byte) []*hdfs.Block {
	var blocks []*hdfs.Block
	recID := 0
	for i, b := range data {
		size := float64(int(b>>2)+1) * 1e5
		nrec := int(b % 4)
		blk := &hdfs.Block{ID: i + 1, Index: i, Size: size}
		for r := 0; r < nrec; r++ {
			recID++
			rsz := size / float64(nrec)
			if r == 0 && b%8 >= 4 {
				rsz = 0 // zero-size record: boundary landmine
			}
			blk.Records = append(blk.Records, hdfs.Record{
				Key:  fmt.Sprintf("r%d", recID),
				Size: rsz,
			})
		}
		blocks = append(blocks, blk)
	}
	return blocks
}

func FuzzMakeSplits(f *testing.F) {
	f.Add([]byte(nil), byte(0))
	f.Add([]byte{10, 20, 30}, byte(0))
	f.Add([]byte{255}, byte(7))
	f.Add([]byte{4, 5, 6, 7}, byte(19))
	f.Add([]byte{100, 100, 100, 100, 100}, byte(3))
	f.Fuzz(func(t *testing.T, data []byte, numMapsRaw byte) {
		if len(data) > 32 {
			data = data[:32]
		}
		blocks := decodeBlocks(data)
		if len(blocks) == 0 {
			return
		}
		numMaps := int(numMapsRaw) % 24 // 0 = one split per block

		var wantBytes float64
		var wantRecs []string
		for _, b := range blocks {
			wantBytes += b.Size
			for _, r := range b.Records {
				wantRecs = append(wantRecs, r.Key)
			}
		}

		splits := makeSplits(blocks, numMaps)

		wantSplits := numMaps
		if numMaps == 0 {
			wantSplits = len(blocks)
		}
		if len(splits) != wantSplits {
			t.Fatalf("got %d splits, want %d", len(splits), wantSplits)
		}

		var gotBytes float64
		var gotRecs []string
		for i, s := range splits {
			for _, part := range s.parts {
				if part.bytes < 0 {
					t.Fatalf("split %d carries a negative byte range %v", i, part.bytes)
				}
				gotBytes += part.bytes
			}
			for _, r := range s.records {
				gotRecs = append(gotRecs, r.Key)
			}
		}
		if diff := gotBytes - wantBytes; diff > 1 || diff < -1 {
			t.Fatalf("splits cover %v bytes, blocks hold %v (lost or invented bytes)", gotBytes, wantBytes)
		}
		if len(gotRecs) != len(wantRecs) {
			t.Fatalf("splits carry %d records, blocks hold %d (lost or duplicated records)", len(gotRecs), len(wantRecs))
		}
		// Records must keep their global order: split i's records all
		// precede split i+1's, and within a split they stay in block order.
		for i := range gotRecs {
			if gotRecs[i] != wantRecs[i] {
				t.Fatalf("record %d: got %s, want %s (split reordered records)", i, gotRecs[i], wantRecs[i])
			}
		}
	})
}
