package mapreduce

import (
	"fmt"
	"math"

	"vhadoop/internal/sim"
	"vhadoop/internal/xen"
)

// runTask executes one attempt of t on tr's VM. Any failure (VM crash,
// tracker death mid-I/O) unwinds this process via p.Fail; the watcher in
// launch routes the outcome back to the scheduler.
//
//vhlint:owner machine
func (c *Cluster) runTask(p *sim.Proc, tr *Tracker, t *task) {
	if t.job.finished() {
		return
	}
	vm := tr.VM
	// A running task dirties guest pages; the live-migration working-set
	// model feeds on this.
	vm.AddActivity(c.cfg.TaskDirtyRate)
	defer vm.RemoveActivity(c.cfg.TaskDirtyRate)

	// Task JVM launch and init.
	vm.Exec(p, t.job.cfg.Cost.TaskSetupCPU)

	if t.kind == MapTask {
		c.runMap(p, tr, t)
	} else {
		c.runReduce(p, tr, t)
	}
	// Completion report to the jobtracker.
	vm.Message(p, c.master, 512)
}

// spillPasses returns the number of extra merge passes needed when bytes
// exceed the sort buffer.
func (c *Cluster) spillPasses(bytes float64) int {
	if c.cfg.SortBufferBytes <= 0 || bytes <= c.cfg.SortBufferBytes {
		return 0
	}
	extra := int(math.Ceil(bytes/c.cfg.SortBufferBytes)) - 1
	if extra > c.cfg.MaxSpillPasses {
		extra = c.cfg.MaxSpillPasses
	}
	return extra
}

// runMap executes a map attempt: read the split (datanode-local when the
// scheduler achieved locality), run the real mapper over the real records,
// optionally combine, then sort and persist the partitioned output to the
// VM's disk, spilling in extra passes if it outgrows the sort buffer.
//
//vhlint:owner machine
func (c *Cluster) runMap(p *sim.Proc, tr *Tracker, t *task) {
	vm := tr.VM
	job := t.job
	cost := job.cfg.Cost

	// Side inputs (distributed cluster state) are read by every map task.
	for _, name := range job.cfg.SideInput {
		f, err := c.dfs.Lookup(name)
		if err != nil {
			p.Fail(fmt.Errorf("map %d of %s: side input: %w", t.index, job.cfg.Name, err))
		}
		for _, b := range f.Blocks {
			if err := c.dfs.ReadBlock(p, vm, b); err != nil {
				p.Fail(fmt.Errorf("map %d of %s: side input: %w", t.index, job.cfg.Name, err))
			}
		}
	}

	if primary := t.split.primary(); primary != nil {
		t.wasLocal = c.dfs.IsLocal(primary, vm)
	}
	for _, part := range t.split.parts {
		if err := c.dfs.ReadRange(p, vm, part.block, part.bytes); err != nil {
			p.Fail(fmt.Errorf("map %d of %s: %w", t.index, job.cfg.Name, err))
		}
	}

	nParts := job.cfg.NumReduces
	if nParts == 0 {
		nParts = 1
	}
	parts := make([][]KV, nParts)
	sizes := make([]float64, nParts)
	// Seed each partition buffer from the split's record count so the first
	// emits don't churn through growslice (mappers emitting several records
	// per input still grow, but from a sensible floor).
	if est := len(t.split.records)/nParts + 1; est > 1 {
		for i := range parts {
			parts[i] = make([]KV, 0, est)
		}
	}
	emit := func(key string, value any, size float64) {
		idx := 0
		if job.cfg.NumReduces > 0 {
			idx = job.cfg.Partition(key, job.cfg.NumReduces)
		}
		parts[idx] = append(parts[idx], KV{Key: key, Value: value, Size: size})
		sizes[idx] += size
	}

	mapper := job.cfg.NewMapper()
	for _, rec := range t.split.records {
		mapper.Map(rec.Key, rec.Value, emit)
	}
	if cm, ok := mapper.(ClosingMapper); ok {
		cm.Close(emit)
	}
	vm.Exec(p, cost.MapCPUPerByte*t.split.size+cost.MapCPUPerRecord*float64(len(t.split.records)))

	// Map-side combine shrinks each partition before it hits disk.
	if job.cfg.NewCombiner != nil && job.cfg.NumReduces > 0 {
		var combined int
		for i := range parts {
			combined += len(parts[i])
			parts[i] = groupAndReduce(parts[i], job.cfg.NewCombiner())
			sizes[i] = 0
			for _, kv := range parts[i] {
				sizes[i] += kv.Size
			}
		}
		vm.Exec(p, cost.CombineCPUPerRecord*float64(combined))
	}

	var outBytes float64
	for _, s := range sizes {
		outBytes += s
	}

	if job.cfg.NumReduces == 0 {
		// Map-only job: commit output straight to HDFS.
		t.out = parts[0]
		t.outBytes = outBytes
		if job.cfg.Output != "" && outBytes > 0 {
			name := fmt.Sprintf("%s/part-m-%05d.%d", job.cfg.Output, t.index, t.attempts)
			if _, err := c.dfs.Write(p, vm, name, outBytes, parts[0]); err != nil {
				p.Fail(fmt.Errorf("map %d of %s: %w", t.index, job.cfg.Name, err))
			}
		}
		return
	}

	// Sort and persist the map output locally; extra merge passes when the
	// buffer overflows. Each partition is really sorted here (stable, so
	// equal keys keep emit order) — reducers then k-way merge the sorted
	// runs instead of re-sorting the full shuffled set.
	for i := range parts {
		sortKVs(parts[i])
	}
	vm.Exec(p, cost.SortCPUPerByte*outBytes)
	vm.WriteDisk(p, outBytes)
	for i := 0; i < c.spillPasses(outBytes); i++ {
		vm.ReadDisk(p, outBytes)
		vm.WriteDisk(p, outBytes)
		t.spilled += 2 * outBytes
	}
	t.parts = parts
	t.partSizes = sizes
}

// runReduce executes a reduce attempt: fetch this partition from every
// completed map as completions arrive (the shuffle), merge/sort, run the
// real reducer over grouped keys and write the output to HDFS through a
// replication pipeline.
//
//vhlint:owner machine
func (c *Cluster) runReduce(p *sim.Proc, tr *Tracker, t *task) {
	vm := tr.VM
	job := t.job
	cost := job.cfg.Cost

	fetched := make([]bool, len(job.maps))
	runs := make([][]KV, 0, len(job.maps))
	totalRecs := 0
	var totalBytes float64
	n := 0
	for n < len(job.maps) {
		if job.finished() {
			return
		}
		signal := job.mapDone // capture before scanning to avoid lost wakeups
		progress := false
		for i, mt := range job.maps {
			if fetched[i] || mt.state != TaskDone {
				continue
			}
			src := mt.tracker
			if src == nil || !src.Alive() {
				continue
			}
			recs := mt.parts[t.index]
			bytes := mt.partSizes[t.index]
			c.fetchMapOutput(p, src.VM, vm, bytes)
			runs = append(runs, recs)
			totalRecs += len(recs)
			totalBytes += bytes
			fetched[i] = true
			n++
			progress = true
		}
		if n >= len(job.maps) {
			break
		}
		if !progress {
			signal.Wait(p)
		}
	}
	t.shuffled = totalBytes
	job.noteShuffleDone(t)

	// Merge phase: on-disk merge passes if the fetched data outgrew the
	// buffer, then the in-memory merge itself. Each fetched run arrived
	// key-sorted from the map-side spill, so a stable k-way merge (ties to
	// the earliest-fetched run) replaces the full re-sort while producing
	// the identical record order.
	for i := 0; i < c.spillPasses(totalBytes); i++ {
		vm.WriteDisk(p, totalBytes)
		vm.ReadDisk(p, totalBytes)
		t.spilled += 2 * totalBytes
	}
	vm.Exec(p, cost.SortCPUPerByte*totalBytes)

	kvs := mergeRuns(runs, totalRecs)
	out := reduceSorted(kvs, job.cfg.NewReducer())
	vm.Exec(p, cost.ReduceCPUPerByte*totalBytes+cost.ReduceCPUPerRecord*float64(len(kvs)))

	var outBytes float64
	for _, kv := range out {
		outBytes += kv.Size
	}
	t.out = out
	t.outBytes = outBytes
	if job.cfg.Output != "" && outBytes > 0 {
		name := fmt.Sprintf("%s/part-r-%05d.%d", job.cfg.Output, t.index, t.attempts)
		if _, err := c.dfs.Write(p, vm, name, outBytes, out); err != nil {
			p.Fail(fmt.Errorf("reduce %d of %s: %w", t.index, job.cfg.Name, err))
		}
	}
}

// fetchMapOutput moves one map-output partition from src to dst: a fetch
// RPC, then the source disk read streaming into the network transfer.
//
//vhlint:owner machine
func (c *Cluster) fetchMapOutput(p *sim.Proc, src, dst *xen.VM, bytes float64) {
	dst.Message(p, src, 128)
	if c.cfg.FetchOverhead > 0 {
		p.Sleep(c.cfg.FetchOverhead)
	}
	if bytes <= 0 {
		return
	}
	if src == dst {
		dst.ReadDisk(p, bytes)
		return
	}
	e := p.Engine()
	reader := e.Spawn("shuffle-disk", func(q *sim.Proc) { src.ReadDisk(q, bytes) })
	sender := e.Spawn("shuffle-net", func(q *sim.Proc) { src.SendTo(q, dst, bytes) })
	if err := sim.WaitProcs(p, reader, sender); err != nil {
		p.Fail(err)
	}
}
