package mapreduce

import (
	"errors"
	"fmt"
	"strconv"

	"vhadoop/internal/hdfs"
	"vhadoop/internal/obs"
	"vhadoop/internal/sim"
	"vhadoop/internal/xen"
)

// errAttemptKilled unwinds a speculative attempt made redundant by the
// winning one.
var errAttemptKilled = errors.New("mapreduce: attempt superseded")

// errPreempted unwinds a running attempt the scheduler reclaimed from an
// over-share tenant; unlike a failure it does not burn the task's attempt
// budget.
var errPreempted = errors.New("mapreduce: attempt preempted")

// ErrJobKilled is the terminal error of a job ended by Handle.Kill or by
// the job service's admission/quota enforcement.
var ErrJobKilled = errors.New("mapreduce: job killed")

// Config carries the engine parameters of the paper's Hadoop Module
// (map.tasks.maximum, reduce.tasks.maximum and friends).
type Config struct {
	MapSlots    int // map.tasks.maximum per tasktracker
	ReduceSlots int // reduce.tasks.maximum per tasktracker

	HeartbeatInterval sim.Time // tasktracker heartbeat period
	TrackerTimeout    sim.Time // declare a tracker dead after this silence
	JobSetupTime      sim.Time // jobtracker-side job init/commit overhead

	SortBufferBytes float64 // io.sort.mb: map output buffer before spilling
	MaxSpillPasses  int     // extra merge passes cap

	Speculative         bool
	SpeculativeFraction float64 // maps completed before speculating
	SpeculativeSlowdown float64 // task slower than this x mean is a straggler

	MaxAttempts int // per-task execution attempts before the job fails

	// FetchOverhead is the reducer-side fixed cost per map-output fetch
	// (HTTP connection setup and the tasktracker's shuffle servlet). It is
	// what makes many-map jobs over tiny data slower on bigger clusters.
	FetchOverhead sim.Time

	// DisableLocality turns off data-local scheduling and delay scheduling
	// (an ablation: what locality-blind assignment costs).
	DisableLocality bool

	// TaskDirtyRate is the page-dirty rate a running task contributes to its
	// VM (feeds the live-migration working-set model).
	TaskDirtyRate float64

	HeartbeatBytes float64
}

// DefaultConfig mirrors Hadoop 0.20.2 defaults scaled to the testbed.
func DefaultConfig() Config {
	return Config{
		MapSlots:            2,
		ReduceSlots:         1,
		HeartbeatInterval:   3.0, // Hadoop 0.20's minimum heartbeat period
		TrackerTimeout:      30,
		JobSetupTime:        2.5,
		SortBufferBytes:     100e6,
		MaxSpillPasses:      2,
		Speculative:         false,
		SpeculativeFraction: 0.75,
		SpeculativeSlowdown: 1.5,
		MaxAttempts:         4,
		FetchOverhead:       0.04,
		TaskDirtyRate:       12e6, // I/O-bound tasks dirty buffers, not all of RAM
		HeartbeatBytes:      256,
	}
}

// Tracker is a tasktracker daemon on one worker VM. The struct spans
// two ownership domains, made explicit for the sharded-engine refactor:
// the daemon itself (and the VM it runs on) is machine state, while the
// slot ledger, liveness view and running-task set are the jobtracker's
// scheduling view of the tracker — shared state the scheduler reads and
// writes from its own context, which a sharded engine must carry in
// heartbeat/assignment control messages rather than direct field access.
//
//vhlint:owner machine
type Tracker struct {
	VM *xen.VM

	cluster *Cluster

	// Jobtracker-owned scheduling view.
	mapFree    int            //vhlint:owner shared
	reduceFree int            //vhlint:owner shared
	lastHB     sim.Time       //vhlint:owner shared
	dead       bool           //vhlint:owner shared
	running    map[*task]bool //vhlint:owner shared

	// Machine-side daemon state: a wedged daemon thread hangs on the VM.
	hungUntil sim.Time
}

// Alive reports whether the tracker is serving.
func (tr *Tracker) Alive() bool {
	return !tr.dead && tr.VM.State() != xen.StateCrashed && tr.VM.State() != xen.StateShutdown
}

// Hang silences the tracker's heartbeats until the given virtual time
// without killing its VM or the tasks it is running (a long GC pause or a
// wedged daemon thread). If the silence outlasts TrackerTimeout the
// jobtracker declares the tracker dead while its tasks keep running — the
// zombie-tasktracker scenario whose late completions must be discarded.
func (tr *Tracker) Hang(until sim.Time) {
	if until > tr.hungUntil {
		tr.hungUntil = until
	}
}

// DecommissionTracker removes a tasktracker from service, re-queueing its
// tasks (the cloud service's scale-in path).
func (c *Cluster) DecommissionTracker(tr *Tracker) { c.declareDead(tr) }

// Cluster is one Hadoop MapReduce instance: a jobtracker on the master VM
// plus tasktrackers on worker VMs, sharing an HDFS instance.
type Cluster struct {
	engine   *sim.Engine
	master   *xen.VM
	dfs      *hdfs.Cluster
	cfg      Config
	trackers []*Tracker

	// pending is the cross-job queue of schedulable tasks, ordered by job
	// priority (descending) with submission order breaking ties — at the
	// default priority 0 it degenerates to the original FIFO.
	pending []*task
	jobs    []*job
	stopped bool

	// Per-tenant running-slot ledger, maintained by launch/onTaskExit and
	// read (never iterated — map order must stay off every deterministic
	// path) by the job service's fair-share scheduler.
	tenantMapRunning    map[string]int
	tenantReduceRunning map[string]int

	obs   *obs.Plane // nil outside core.NewPlatform; every use is guarded
	instr *instruments

	lastReduceAssign sim.Time // reduce ramp-up throttle (see assign)
	reduceAssigned   bool
}

// NewCluster creates a MapReduce cluster with the jobtracker on master,
// storing data in dfs. Call AddTracker for each worker, then Start.
func NewCluster(e *sim.Engine, cfg Config, master *xen.VM, dfs *hdfs.Cluster) *Cluster {
	if cfg.MapSlots < 1 || cfg.ReduceSlots < 0 {
		panic("mapreduce: invalid slot configuration")
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	return &Cluster{
		engine: e, master: master, dfs: dfs, cfg: cfg,
		tenantMapRunning:    make(map[string]int),
		tenantReduceRunning: make(map[string]int),
	}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Reconfigure applies a new configuration to the running cluster — the
// MapReduce Tuner's parameter lever. Slot-count changes propagate to the
// tasktrackers' free-slot counters; everything else takes effect for
// subsequently scheduled tasks.
func (c *Cluster) Reconfigure(cfg Config) {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	for _, tr := range c.trackers {
		tr.mapFree += cfg.MapSlots - c.cfg.MapSlots
		tr.reduceFree += cfg.ReduceSlots - c.cfg.ReduceSlots
	}
	c.cfg = cfg
}

// DFS returns the HDFS instance backing this cluster.
func (c *Cluster) DFS() *hdfs.Cluster { return c.dfs }

// Master returns the jobtracker VM.
func (c *Cluster) Master() *xen.VM { return c.master }

// Trackers returns all tasktrackers in registration order.
func (c *Cluster) Trackers() []*Tracker { return c.trackers }

// AddTracker registers a tasktracker on vm.
func (c *Cluster) AddTracker(vm *xen.VM) *Tracker {
	tr := &Tracker{
		VM:         vm,
		cluster:    c,
		mapFree:    c.cfg.MapSlots,
		reduceFree: c.cfg.ReduceSlots,
		running:    make(map[*task]bool),
	}
	c.trackers = append(c.trackers, tr)
	return tr
}

// Start launches the heartbeat daemons and the jobtracker's failure
// detector. Call Stop when the experiment's driver is finished so the
// simulation can drain.
func (c *Cluster) Start() {
	for _, tr := range c.trackers {
		c.StartTracker(tr)
	}
	c.engine.Spawn("jt-monitor", func(p *sim.Proc) { c.monitorLoop(p) })
}

// StartTracker launches the heartbeat daemon for one tracker — used by
// Start, and directly for trackers joining a running cluster (elastic
// scale-out).
func (c *Cluster) StartTracker(tr *Tracker) {
	c.engine.Spawn("tt-heartbeat:"+tr.VM.Name, func(p *sim.Proc) {
		c.heartbeatLoop(p, tr)
	})
}

// Stop shuts down the daemons after their current sleep.
func (c *Cluster) Stop() { c.stopped = true }

// heartbeatLoop is the tasktracker main loop: report in, then pull work for
// any free slots. A paused VM (live-migration stop-and-copy) stalls inside
// Message, delaying the heartbeat exactly as the real daemon would.
//
//vhlint:owner machine
func (c *Cluster) heartbeatLoop(p *sim.Proc, tr *Tracker) {
	for !c.stopped && tr.Alive() {
		p.Sleep(c.cfg.HeartbeatInterval)
		if c.stopped || !tr.Alive() {
			return
		}
		if p.Now() < tr.hungUntil {
			continue // hung daemon: heartbeat-silent, but the VM lives on
		}
		tr.VM.Message(p, c.master, c.cfg.HeartbeatBytes)
		tr.lastHB = p.Now()
		c.assign(tr)
	}
}

// monitorLoop is the jobtracker's failure detector: trackers silent past the
// timeout (crashed VM, or a migration downtime long enough to miss many
// heartbeats) are declared dead and their tasks re-executed elsewhere.
func (c *Cluster) monitorLoop(p *sim.Proc) {
	period := c.cfg.TrackerTimeout / 3
	if period <= 0 {
		period = 10
	}
	for !c.stopped {
		p.Sleep(period)
		for _, tr := range c.trackers {
			if tr.dead {
				continue
			}
			silent := p.Now()-tr.lastHB > c.cfg.TrackerTimeout
			if silent || !tr.Alive() {
				c.declareDead(tr)
			}
		}
	}
}

// declareDead removes a tracker from service and re-queues its in-flight
// tasks plus — for still-running jobs — its completed map tasks, whose
// outputs lived on the dead VM's disk.
func (c *Cluster) declareDead(tr *Tracker) {
	if tr.dead {
		return
	}
	tr.dead = true
	if c.instr != nil {
		c.instr.trackerDeaths.Inc()
	}
	c.eventf(obs.KindCluster, "jobtracker: tasktracker %s declared dead", tr.VM.Name)
	// Requeue the tracker's running tasks in deterministic (job, kind,
	// index) order — tr.running is a map, and requeue order decides the
	// scheduler's pending queue after a failure.
	requeueRunning := func(ts []*task) {
		for _, t := range ts {
			if tr.running[t] {
				delete(tr.running, t)
				c.requeue(t)
			}
		}
	}
	for _, j := range c.jobs {
		requeueRunning(j.maps)
		requeueRunning(j.reduces)
	}
	for _, j := range c.jobs {
		if j.finished() {
			continue
		}
		for _, t := range j.maps {
			if t.state == TaskDone && t.tracker == tr {
				j.mapsDone--
				c.requeue(t)
			}
		}
	}
}

// requeue puts a task back in the pending queue for re-execution, failing
// the job if the task is out of attempts.
func (c *Cluster) requeue(t *task) {
	if t.job.finished() {
		return
	}
	if t.attempts >= c.cfg.MaxAttempts {
		t.job.fail(fmt.Errorf("mapreduce: %s task %d of %s failed %d times",
			t.kind, t.index, t.job.cfg.Name, t.attempts))
		return
	}
	t.state = TaskPending
	t.tracker = nil
	t.parts = nil
	t.partSizes = nil
	t.skips = 1 // re-executions skip the locality delay
	c.enqueuePending(t)
}

// assign hands pending tasks to tr's free slots: data-local maps first, then
// any map, then reduces.
func (c *Cluster) assign(tr *Tracker) {
	if !tr.Alive() {
		return
	}
	for tr.mapFree > 0 {
		t := c.pickMap(tr)
		if t == nil {
			break
		}
		c.launch(tr, t)
	}
	// Reduce ramp-up throttle: like Hadoop 0.20's JobQueueTaskScheduler,
	// the jobtracker hands out at most one new reduce task per scheduling
	// round (heartbeat interval), so jobs with many reduces pay roughly one
	// heartbeat of ramp-up per reduce — the growth Figure 3(b) measures.
	now := c.engine.Now()
	if c.reduceAssigned && now-c.lastReduceAssign < c.cfg.HeartbeatInterval {
		return
	}
	if tr.reduceFree > 0 {
		if t := c.pickReduce(); t != nil {
			c.launch(tr, t)
			c.lastReduceAssign = now
			c.reduceAssigned = true
		}
	}
}

// pickMap removes and returns the best pending map task for tr: one whose
// input block has a replica on tr's VM if any. Non-local assignment uses
// delay scheduling: a task must first be passed over once (giving its local
// trackers a scheduling round to claim it) before anyone may run it remotely.
func (c *Cluster) pickMap(tr *Tracker) *task {
	fallback := -1
	passed := false
	for i, t := range c.pending {
		if t.kind != MapTask || t.job.finished() {
			continue
		}
		if c.cfg.DisableLocality {
			return c.takePending(i)
		}
		if b := t.split.primary(); b != nil && c.dfs.IsLocal(b, tr.VM) {
			return c.takePending(i)
		}
		if fallback < 0 && t.skips >= 1 {
			fallback = i
		}
		passed = true
	}
	if fallback >= 0 {
		return c.takePending(fallback)
	}
	if passed {
		for _, t := range c.pending {
			if t.kind == MapTask && !t.job.finished() {
				t.skips++
			}
		}
	}
	return nil
}

// pickReduce removes and returns the oldest pending reduce task.
func (c *Cluster) pickReduce() *task {
	for i, t := range c.pending {
		if t.kind == ReduceTask && !t.job.finished() {
			return c.takePending(i)
		}
	}
	return nil
}

func (c *Cluster) takePending(i int) *task {
	t := c.pending[i]
	c.pending = append(c.pending[:i], c.pending[i+1:]...)
	return t
}

// enqueuePending inserts t into the pending queue at its job's priority
// rank: before the first queued task of a strictly lower-priority job,
// after everything at the same or higher priority. Default-priority jobs
// therefore append, preserving the original cross-job FIFO byte-for-byte.
func (c *Cluster) enqueuePending(t *task) {
	if pr := t.job.priority; pr != 0 {
		for i, q := range c.pending {
			if q.job.priority < pr {
				c.pending = append(c.pending, nil)
				copy(c.pending[i+1:], c.pending[i:])
				c.pending[i] = t
				return
			}
		}
	}
	c.pending = append(c.pending, t)
}

// sweepPending drops tasks of finished (completed, failed or killed) jobs
// from the queue so they never reach a slot.
func (c *Cluster) sweepPending() {
	kept := c.pending[:0]
	for _, t := range c.pending {
		if !t.job.finished() {
			kept = append(kept, t)
		}
	}
	c.pending = kept
}

// killJob terminates j with err: waiters unblock immediately, running
// attempts abort (their watchers release the slots), and its queued tasks
// are swept from the pending queue.
func (c *Cluster) killJob(j *job, err error) {
	if j.finished() {
		return
	}
	j.fail(err)
	c.eventf(obs.KindJob, "jobtracker: killing job %s: %v", j.cfg.Name, err)
	for _, ts := range [][]*task{j.maps, j.reduces} {
		for _, t := range ts {
			for _, proc := range t.attemptProcs {
				proc.Abort(errAttemptKilled)
			}
		}
	}
	c.sweepPending()
}

// PreemptTenant reclaims up to n running slots of the given kind from
// tenant's jobs: the youngest jobs lose their highest-indexed running,
// non-speculated attempts first (newest work has the least sunk cost).
// Preempted tasks requeue without burning attempt budget. Returns the
// number of attempts actually preempted.
func (c *Cluster) PreemptTenant(tenant string, kind TaskKind, n int) int {
	preempted := 0
	for i := len(c.jobs) - 1; i >= 0 && preempted < n; i-- {
		j := c.jobs[i]
		if j.tenant != tenant || j.finished() {
			continue
		}
		tasks := j.maps
		if kind == ReduceTask {
			tasks = j.reduces
		}
		for ti := len(tasks) - 1; ti >= 0 && preempted < n; ti-- {
			t := tasks[ti]
			if t.state != TaskRunning || t.speculated || len(t.attemptProcs) != 1 {
				continue
			}
			t.attemptProcs[0].Abort(errPreempted)
			preempted++
		}
	}
	return preempted
}

// SlotTotals returns the cluster's configured slot capacity across alive
// tasktrackers.
func (c *Cluster) SlotTotals() (maps, reduces int) {
	for _, tr := range c.trackers {
		if tr.Alive() {
			maps += c.cfg.MapSlots
			reduces += c.cfg.ReduceSlots
		}
	}
	return maps, reduces
}

// FreeSlots returns the currently idle slots across alive tasktrackers.
func (c *Cluster) FreeSlots() (maps, reduces int) {
	for _, tr := range c.trackers {
		if tr.Alive() {
			maps += tr.mapFree
			reduces += tr.reduceFree
		}
	}
	return maps, reduces
}

// TenantSlots returns the number of slots tenant's jobs occupy right now.
func (c *Cluster) TenantSlots(tenant string) (maps, reduces int) {
	return c.tenantMapRunning[tenant], c.tenantReduceRunning[tenant]
}

// PendingTasks returns the depth of the cross-job pending queue.
func (c *Cluster) PendingTasks() int { return len(c.pending) }

// LocalityScore reports the fraction of the named input files' blocks that
// currently have a replica on an alive tasktracker with a free map slot —
// the placement signal the job service's locality-aware dispatch uses.
// Files not (yet) in HDFS contribute no blocks; with no resolvable blocks
// at all the score is 0.
func (c *Cluster) LocalityScore(inputs []string) float64 {
	blocks, local := 0, 0
	for _, name := range inputs {
		//vhlint:allow errflow -- the error is the answer: Lookup failing means "not yet staged", and such a file contributes no blocks to the score
		f, err := c.dfs.Lookup(name)
		if err != nil {
			continue
		}
		for _, b := range f.Blocks {
			blocks++
			for _, tr := range c.trackers {
				if tr.Alive() && tr.mapFree > 0 && c.dfs.IsLocal(b, tr.VM) {
					local++
					break
				}
			}
		}
	}
	if blocks == 0 {
		return 0
	}
	return float64(local) / float64(blocks)
}

// launch starts one attempt of t on tr and a watcher that routes the
// attempt's outcome back to the scheduler.
func (c *Cluster) launch(tr *Tracker, t *task) {
	if t.kind == MapTask {
		tr.mapFree--
		c.tenantMapRunning[t.job.tenant]++
	} else {
		tr.reduceFree--
		c.tenantReduceRunning[t.job.tenant]++
	}
	tr.running[t] = true
	t.state = TaskRunning
	t.tracker = tr
	t.attempts++
	t.job.stats.Attempts++
	t.startedAt = c.engine.Now()
	name := t.job.cfg.Name + ":" + t.kind.String() + strconv.Itoa(t.index) + "." + strconv.Itoa(t.attempts)
	var sp *obs.Span
	if c.obs != nil {
		sp = c.obs.Start(obs.KindTask, name, t.job.taskSpanParent(t)).SetAttr("vm", tr.VM.Name)
	}
	attempt := c.engine.Spawn(name, func(p *sim.Proc) { c.runTask(p, tr, t) })
	t.attemptProcs = append(t.attemptProcs, attempt)
	c.engine.Spawn("watch:"+attempt.Name(), func(p *sim.Proc) {
		attempt.Done().Wait(p)
		for i, ap := range t.attemptProcs {
			if ap == attempt {
				t.attemptProcs = append(t.attemptProcs[:i], t.attemptProcs[i+1:]...)
				break
			}
		}
		c.onTaskExit(tr, t, attempt.Err(), sp)
	})
}

// onTaskExit releases the slot and either records completion or re-queues a
// failed attempt. sp is the attempt's span (nil without a plane); every
// path closes it with an outcome attribute.
func (c *Cluster) onTaskExit(tr *Tracker, t *task, err error, sp *obs.Span) {
	if t.kind == MapTask {
		tr.mapFree++
		c.tenantMapRunning[t.job.tenant]--
	} else {
		tr.reduceFree++
		c.tenantReduceRunning[t.job.tenant]--
	}
	delete(tr.running, t)
	if c.stopped || t.job.finished() {
		sp.SetAttr("outcome", "abandoned").Finish()
		return
	}
	if t.state == TaskDone && t.tracker != tr {
		// A speculative duplicate finished after the primary; discard.
		sp.SetAttr("outcome", "superseded").Finish()
		return
	}
	if err != nil {
		if tr.dead || t.state == TaskDone {
			// declareDead requeued it, or a killed duplicate unwound.
			sp.SetAttr("outcome", "unwound").Finish()
			return
		}
		if err == errPreempted {
			// Reclaimed by the fair-share scheduler, not the task's fault:
			// hand the attempt budget back and requeue at the front of its
			// priority class (skips=1 bypasses the locality delay).
			if c.instr != nil {
				c.instr.preemptions.Inc()
			}
			c.spanEventf(sp, "preempting %s%d of %s on %s", t.kind, t.index, t.job.cfg.Name, tr.VM.Name)
			sp.SetAttr("outcome", "preempted").Finish()
			t.attempts--
			c.requeue(t)
			return
		}
		if c.instr != nil {
			c.instr.taskFailures.Inc()
		}
		c.spanEventf(sp, "task %s%d of %s failed on %s: %v", t.kind, t.index, t.job.cfg.Name, tr.VM.Name, err)
		sp.SetAttr("outcome", "failed").Finish()
		c.requeue(t)
		return
	}
	if tr.dead {
		// A zombie tracker (hung past the timeout, or declared dead just as
		// its task finished) reporting success: its map output lives on a
		// node the jobtracker has written off and reducers will never fetch
		// from. Discard; declareDead already requeued the task elsewhere.
		if c.instr != nil {
			c.instr.zombieDiscards.Inc()
		}
		c.spanEventf(sp, "discarding zombie completion of %s%d of %s on %s", t.kind, t.index, t.job.cfg.Name, tr.VM.Name)
		sp.SetAttr("outcome", "zombie-discarded").Finish()
		return
	}
	if t.state == TaskDone {
		sp.SetAttr("outcome", "duplicate").Finish()
		return // duplicate completion
	}
	t.state = TaskDone
	t.tracker = tr
	t.doneIn = c.engine.Now() - t.startedAt
	if i := c.instr; i != nil {
		if t.kind == MapTask {
			i.mapSeconds.Observe(float64(t.doneIn))
		} else {
			i.reduceSeconds.Observe(float64(t.doneIn))
		}
	}
	sp.SetAttr("outcome", "done").SetFloat("seconds", float64(t.doneIn)).Finish()
	// Kill redundant speculative attempts; their slots free as they unwind.
	for _, proc := range t.attemptProcs {
		proc.Abort(errAttemptKilled)
	}
	t.job.taskCompleted(t)
}

// speculate re-queues a duplicate attempt for the straggler task, if any.
// Called from the job's speculation monitor.
func (c *Cluster) speculate(t *task) {
	if t.state != TaskRunning || t.speculated {
		return
	}
	t.speculated = true
	if c.instr != nil {
		c.instr.speculations.Inc()
	}
	c.eventf(obs.KindTask, "speculating %s%d of %s", t.kind, t.index, t.job.cfg.Name)
	c.enqueuePending(t)
}
