package mapreduce_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"vhadoop/internal/core"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// lineRecords turns lines of text into records of the given virtual size.
func lineRecords(lines []string, each float64) []hdfs.Record {
	recs := make([]hdfs.Record, len(lines))
	for i, l := range lines {
		recs[i] = hdfs.Record{Key: fmt.Sprintf("line%05d", i), Value: l, Size: each}
	}
	return recs
}

// wordcountJob builds the canonical wordcount job over input.
func wordcountJob(input, output string, reduces int, combine bool) mapreduce.JobConfig {
	cfg := mapreduce.JobConfig{
		Name:       "wordcount",
		Input:      []string{input},
		Output:     output,
		NumReduces: reduces,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(key string, value any, emit mapreduce.Emit) {
				words := strings.Fields(value.(string))
				for _, w := range words {
					emit(w, 1, 16)
				}
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				sum := 0
				for _, v := range values {
					sum += v.(int)
				}
				emit(key, sum, 24)
			})
		},
		Cost: mapreduce.CostModel{
			MapCPUPerByte:       2.5e-8, // ~40 MB/s of mapping per core
			SortCPUPerByte:      5e-9,
			ReduceCPUPerByte:    1e-8,
			CombineCPUPerRecord: 1e-6,
			TaskSetupCPU:        1.5,
		},
	}
	if combine {
		cfg.NewCombiner = cfg.NewReducer
	}
	return cfg
}

// runJob and runCollect are the Submit+Wait forms of the deprecated Run and
// RunAndCollect shims; every test but TestOutputLandsInHDFS (which
// deliberately keeps the shims covered) goes through them.
func runJob(p *sim.Proc, c *mapreduce.Cluster, cfg mapreduce.JobSpec) (mapreduce.JobStats, error) {
	h, err := c.Submit(p, cfg)
	if err != nil {
		return mapreduce.JobStats{}, err
	}
	return h.Wait(p)
}

func runCollect(p *sim.Proc, c *mapreduce.Cluster, cfg mapreduce.JobSpec) ([]mapreduce.KV, mapreduce.JobStats, error) {
	h, err := c.Submit(p, cfg)
	if err != nil {
		return nil, mapreduce.JobStats{}, err
	}
	stats, err := h.Wait(p)
	if err != nil {
		return nil, stats, err
	}
	return h.OutputRecords(), stats, nil
}

// runWordcount provisions a platform, loads sizeBytes of input made of the
// given lines, runs wordcount and returns stats plus real output counts.
func runWordcount(t *testing.T, opts core.Options, lines []string, sizeBytes float64, reduces int, combine bool) (mapreduce.JobStats, map[string]int) {
	t.Helper()
	pl := core.MustNewPlatform(opts)
	var stats mapreduce.JobStats
	counts := map[string]int{}
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", sizeBytes, lineRecords(lines, sizeBytes/float64(len(lines)))); err != nil {
			return err
		}
		out, st, err := runCollect(p, pl.MR, wordcountJob("/in", "/out", reduces, combine))
		if err != nil {
			return err
		}
		stats = st
		for _, kv := range out {
			counts[kv.Key] = kv.Value.(int)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("wordcount run: %v", err)
	}
	return stats, counts
}

func smallOpts(nodes int, layout core.Layout) core.Options {
	opts := core.DefaultOptions()
	opts.Nodes = nodes
	opts.Layout = layout
	return opts
}

var testLines = []string{
	"the quick brown fox", "jumps over the lazy dog",
	"the dog barks", "quick quick fox",
}

func TestWordcountCorrectCounts(t *testing.T) {
	stats, counts := runWordcount(t, smallOpts(5, core.Normal), testLines, 128e6, 2, false)
	want := map[string]int{
		"the": 3, "quick": 3, "brown": 1, "fox": 2, "jumps": 1,
		"over": 1, "lazy": 1, "dog": 2, "barks": 1,
	}
	if len(counts) != len(want) {
		t.Fatalf("got %d distinct words, want %d: %v", len(counts), len(want), counts)
	}
	for w, n := range want {
		if counts[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, counts[w], n)
		}
	}
	if stats.Runtime <= 0 {
		t.Fatalf("runtime = %v", stats.Runtime)
	}
	if stats.MapTasks != 2 { // 128MB / 64MB blocks
		t.Fatalf("map tasks = %d, want 2", stats.MapTasks)
	}
	if stats.ReduceTasks != 2 {
		t.Fatalf("reduce tasks = %d, want 2", stats.ReduceTasks)
	}
	if stats.OutputRecords != len(want) {
		t.Fatalf("output records = %d", stats.OutputRecords)
	}
}

func TestOutputLandsInHDFS(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(5, core.Normal))
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 64e6, lineRecords(testLines, 1e6)); err != nil {
			return err
		}
		// Deliberately the deprecated Run shim: this one call site keeps the
		// backward-compatible surface covered until it is removed.
		_, err := pl.MR.Run(p, wordcountJob("/in", "/out", 2, false))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, name := range pl.DFS.Files() {
		if strings.HasPrefix(name, "/out/part-r-") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("found %d reduce output files, want 2: %v", found, pl.DFS.Files())
	}
}

func TestMapOnlyJob(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(4, core.Normal))
	var out []mapreduce.KV
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 64e6, lineRecords([]string{"a b", "c"}, 1e6)); err != nil {
			return err
		}
		cfg := mapreduce.JobConfig{
			Name:  "identity",
			Input: []string{"/in"},
			NewMapper: func() mapreduce.Mapper {
				return mapreduce.MapperFunc(func(k string, v any, emit mapreduce.Emit) {
					emit(k, v, 8)
				})
			},
			Cost: mapreduce.CostModel{TaskSetupCPU: 1},
		}
		var err error
		out, _, err = runCollect(p, pl.MR, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("map-only output records = %d, want 2", len(out))
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	// Many repeated words: combining should collapse per-map duplicates.
	lines := make([]string, 40)
	for i := range lines {
		lines[i] = "alpha beta alpha gamma alpha"
	}
	noComb, c1 := runWordcount(t, smallOpts(5, core.Normal), lines, 128e6, 1, false)
	comb, c2 := runWordcount(t, smallOpts(5, core.Normal), lines, 128e6, 1, true)
	if comb.ShuffledBytes >= noComb.ShuffledBytes {
		t.Fatalf("combiner did not shrink shuffle: %v vs %v", comb.ShuffledBytes, noComb.ShuffledBytes)
	}
	for w, n := range c1 {
		if c2[w] != n {
			t.Fatalf("combiner changed counts: %q %d vs %d", w, c2[w], n)
		}
	}
}

func TestDataLocalityPreferred(t *testing.T) {
	stats, _ := runWordcount(t, smallOpts(9, core.Normal), testLines, 512e6, 2, false)
	if stats.LocalMaps == 0 {
		t.Fatal("no data-local map tasks at all")
	}
	frac := float64(stats.LocalMaps) / float64(stats.MapTasks)
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of maps were data-local", frac*100)
	}
}

func TestMissingInputFails(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(4, core.Normal))
	_, err := pl.Run(func(p *sim.Proc) error {
		_, err := runJob(p, pl.MR, wordcountJob("/nope", "", 1, false))
		return err
	})
	if err == nil {
		t.Fatal("job over missing input succeeded")
	}
}

func TestCrossDomainShuffleCrossesGuestNICs(t *testing.T) {
	// The structural cross-domain difference: a shuffle-heavy job's traffic
	// stays on the virtual bridge in the normal layout but crosses the
	// inter-machine guest NICs in the cross-domain layout, and the job is
	// never meaningfully faster there.
	run := func(layout core.Layout) (sim.Time, float64) {
		pl := core.MustNewPlatform(smallOpts(16, layout))
		var stats mapreduce.JobStats
		_, err := pl.Run(func(p *sim.Proc) error {
			recs := lineRecords(make([]string, 32), 2048e6/32)
			if _, err := pl.LoadText(p, "/in", 2048e6, recs); err != nil {
				return err
			}
			cfg := identityJob("/in", 4)
			cfg.NewMapper = func() mapreduce.Mapper {
				return mapreduce.MapperFunc(func(k string, v any, emit mapreduce.Emit) {
					emit(k, v, 2048e6/32) // full-volume shuffle
				})
			}
			cfg.Cost = mapreduce.CostModel{TaskSetupCPU: 1.5, SortCPUPerByte: 5e-9}
			var err error
			stats, err = runJob(p, pl.MR, cfg)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		crossing := pl.PMs[0].NICTx.BytesCarried() + pl.PMs[1].NICTx.BytesCarried()
		return stats.Runtime, crossing
	}
	normalT, normalX := run(core.Normal)
	crossT, crossX := run(core.CrossDomain)
	if normalX != 0 {
		t.Fatalf("normal layout moved %.0f bytes over guest NICs, want 0", normalX)
	}
	if crossX < 500e6 {
		t.Fatalf("cross-domain moved only %.0f bytes over guest NICs", crossX)
	}
	// NFS serialisation dominates this job equally in both layouts, so the
	// runtimes sit near parity; the cross layout must not win outright.
	if crossT < normalT*0.95 {
		t.Fatalf("cross-domain (%v) much faster than normal (%v)", crossT, normalT)
	}
}

// identityJob emits each record unchanged at full virtual size, so the map
// output volume equals the input volume (like TeraSort's map phase).
func identityJob(input string, reduces int) mapreduce.JobConfig {
	return mapreduce.JobConfig{
		Name:       "identity",
		Input:      []string{input},
		NumReduces: reduces,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(k string, v any, emit mapreduce.Emit) {
				emit(k, v, 0) // size patched by caller via record size below
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(k string, vs []any, emit mapreduce.Emit) {
				for _, v := range vs {
					emit(k, v, 8)
				}
			})
		},
		Cost: mapreduce.CostModel{TaskSetupCPU: 1, SortCPUPerByte: 1e-9},
	}
}

func runSpill(t *testing.T, sortBuf float64) mapreduce.JobStats {
	t.Helper()
	opts := smallOpts(5, core.Normal)
	opts.MR.SortBufferBytes = sortBuf
	pl := core.MustNewPlatform(opts)
	var stats mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		recs := lineRecords(make([]string, 64), 256e6/64)
		if _, err := pl.LoadText(p, "/in", 256e6, recs); err != nil {
			return err
		}
		cfg := identityJob("/in", 1)
		// Emit at the full per-record virtual size: 64MB blocks of map
		// output per task, far above a small sort buffer.
		cfg.NewMapper = func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(k string, v any, emit mapreduce.Emit) {
				emit(k, v, 256e6/64)
			})
		}
		var err error
		stats, err = runJob(p, pl.MR, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestSpillWhenSortBufferSmall(t *testing.T) {
	small := runSpill(t, 8e6)
	if small.SpillBytes == 0 {
		t.Fatal("no spill bytes with an 8MB sort buffer")
	}
	big := runSpill(t, 1e9)
	if big.SpillBytes != 0 {
		t.Fatalf("spills with a 1GB buffer: %v", big.SpillBytes)
	}
	if small.Runtime <= big.Runtime {
		t.Fatalf("spilling run (%v) not slower than in-memory run (%v)", small.Runtime, big.Runtime)
	}
}

func TestTaskReexecutionAfterVMCrash(t *testing.T) {
	opts := smallOpts(6, core.Normal)
	opts.MR.TrackerTimeout = 10
	pl := core.MustNewPlatform(opts)
	lines := make([]string, 32)
	for i := range lines {
		lines[i] = fmt.Sprintf("x%d y z", i)
	}
	var stats mapreduce.JobStats
	counts := map[string]int{}
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 2048e6, lineRecords(lines, 2048e6/32)); err != nil {
			return err
		}
		// Crash one worker 20s into the job (well before its ~32 maps on 10
		// slots can finish).
		pl.Engine.After(20, func() { pl.VMs[2].Crash() })
		out, st, err := runCollect(p, pl.MR, wordcountJob("/in", "", 2, false))
		if err != nil {
			return err
		}
		stats = st
		for _, kv := range out {
			counts[kv.Key] = kv.Value.(int)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("job did not survive VM crash: %v", err)
	}
	if counts["z"] != 32 {
		t.Fatalf("lost records after crash: z=%d, want 32", counts["z"])
	}
	if stats.Attempts <= stats.MapTasks+stats.ReduceTasks {
		t.Fatalf("no re-execution recorded: attempts=%d tasks=%d",
			stats.Attempts, stats.MapTasks+stats.ReduceTasks)
	}
}

func TestTrackerHangDeclaredDeadButJobCompletes(t *testing.T) {
	// A tasktracker that goes heartbeat-silent (without its VM dying) must
	// be declared dead past the timeout and its tasks re-executed elsewhere.
	// The zombie's tasks keep running and eventually report success — those
	// late completions must be discarded, or reducers would wait forever on
	// map output the jobtracker has written off.
	opts := smallOpts(6, core.Normal)
	opts.MR.TrackerTimeout = 10
	pl := core.MustNewPlatform(opts)
	lines := make([]string, 32)
	for i := range lines {
		lines[i] = fmt.Sprintf("x%d y z", i)
	}
	var stats mapreduce.JobStats
	counts := map[string]int{}
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 2048e6, lineRecords(lines, 2048e6/32)); err != nil {
			return err
		}
		zombie := pl.MR.Trackers()[1]
		pl.Engine.After(20, func() { zombie.Hang(1e6) })
		out, st, err := runCollect(p, pl.MR, wordcountJob("/in", "", 2, false))
		if err != nil {
			return err
		}
		stats = st
		for _, kv := range out {
			counts[kv.Key] = kv.Value.(int)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("job did not survive tracker hang: %v", err)
	}
	if counts["z"] != 32 {
		t.Fatalf("lost or duplicated records after hang: z=%d, want 32", counts["z"])
	}
	if stats.Attempts <= stats.MapTasks+stats.ReduceTasks {
		t.Fatalf("no re-execution recorded: attempts=%d tasks=%d",
			stats.Attempts, stats.MapTasks+stats.ReduceTasks)
	}
}

func TestTrackerShortHangRecovers(t *testing.T) {
	// A hang shorter than the timeout only delays heartbeats: the tracker
	// is never declared dead and no task is re-executed.
	opts := smallOpts(5, core.Normal)
	opts.MR.TrackerTimeout = 30
	pl := core.MustNewPlatform(opts)
	var stats mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 128e6, lineRecords(testLines, 32e6)); err != nil {
			return err
		}
		tr := pl.MR.Trackers()[0]
		pl.Engine.After(5, func() { tr.Hang(pl.Engine.Now() + 15) })
		var err error
		stats, err = runJob(p, pl.MR, wordcountJob("/in", "", 2, false))
		return err
	})
	if err != nil {
		t.Fatalf("job did not survive short hang: %v", err)
	}
	for _, tr := range pl.MR.Trackers() {
		if !tr.Alive() {
			t.Fatalf("tracker %s declared dead after sub-timeout hang", tr.VM.Name)
		}
	}
	if stats.Attempts != stats.MapTasks+stats.ReduceTasks {
		t.Fatalf("unexpected re-execution: attempts=%d tasks=%d",
			stats.Attempts, stats.MapTasks+stats.ReduceTasks)
	}
}

func TestSpeculativeExecutionDuplicatesStraggler(t *testing.T) {
	opts := smallOpts(6, core.Normal)
	opts.MR.Speculative = true
	opts.MR.SpeculativeFraction = 0.5
	opts.MR.SpeculativeSlowdown = 1.3
	pl := core.MustNewPlatform(opts)
	lines := make([]string, 16)
	for i := range lines {
		lines[i] = "a b c"
	}
	// CPU hogs time-slicing one worker's single VCPU make its tasks run at
	// quarter speed: clear stragglers.
	hogVM := pl.VMs[3]
	for i := 0; i < 3; i++ {
		pl.Engine.Spawn("hog", func(p *sim.Proc) {
			hogVM.Exec(p, 120) // bounded so the simulation drains after the job
		})
	}
	var stats mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 640e6, lineRecords(lines, 40e6)); err != nil {
			return err
		}
		cfg := wordcountJob("/in", "", 1, false)
		cfg.Cost.MapCPUPerByte = 1.2e-7 // CPU-dominated maps amplify the straggler
		var err error
		stats, err = runJob(p, pl.MR, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts <= stats.MapTasks+stats.ReduceTasks {
		t.Fatalf("no speculative attempts: attempts=%d tasks=%d",
			stats.Attempts, stats.MapTasks+stats.ReduceTasks)
	}
}

func TestDeterministicRuntime(t *testing.T) {
	s1, _ := runWordcount(t, smallOpts(8, core.Normal), testLines, 256e6, 2, false)
	s2, _ := runWordcount(t, smallOpts(8, core.Normal), testLines, 256e6, 2, false)
	if s1.Runtime != s2.Runtime {
		t.Fatalf("same seed, different runtimes: %v vs %v", s1.Runtime, s2.Runtime)
	}
}

// Property: every emitted word is counted exactly once regardless of the
// number of reduce tasks.
func TestCountConservationProperty(t *testing.T) {
	prop := func(wordsRaw []uint8, reducesRaw uint8) bool {
		if len(wordsRaw) == 0 {
			return true
		}
		if len(wordsRaw) > 60 {
			wordsRaw = wordsRaw[:60]
		}
		reduces := int(reducesRaw%4) + 1
		var sb strings.Builder
		total := 0
		for _, w := range wordsRaw {
			fmt.Fprintf(&sb, "w%d ", w%16)
			total++
		}
		_, counts := runWordcount(t, smallOpts(4, core.Normal), []string{sb.String()}, 64e6, reduces, false)
		got := 0
		for _, n := range counts {
			got += n
		}
		return got == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculativeLoserIsKilled(t *testing.T) {
	opts := smallOpts(6, core.Normal)
	opts.MR.Speculative = true
	opts.MR.SpeculativeFraction = 0.5
	opts.MR.SpeculativeSlowdown = 1.3
	pl := core.MustNewPlatform(opts)
	hogVM := pl.VMs[3]
	for i := 0; i < 3; i++ {
		pl.Engine.Spawn("hog", func(p *sim.Proc) {
			hogVM.Exec(p, 120)
		})
	}
	var stats mapreduce.JobStats
	end, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 640e6, lineRecords(make([]string, 16), 40e6)); err != nil {
			return err
		}
		cfg := wordcountJob("/in", "", 1, false)
		cfg.Cost.MapCPUPerByte = 1.2e-7
		var err error
		stats, err = runJob(p, pl.MR, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts <= stats.MapTasks+stats.ReduceTasks {
		t.Fatal("no speculation happened; kill path not exercised")
	}
	// The straggler attempts on the hogged VM must be aborted when their
	// duplicates win: the simulation must not wait for them to grind
	// through the hog (the hogs alone run 360 VCPU-seconds).
	if end > 390 {
		t.Fatalf("simulation drained at %v: killed attempts kept running", end)
	}
}

func TestConcurrentJobsShareTheCluster(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(8, core.Normal))
	var first, second mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in1", 512e6, lineRecords(make([]string, 16), 32e6)); err != nil {
			return err
		}
		if _, err := pl.LoadText(p, "/in2", 512e6, lineRecords(make([]string, 16), 32e6)); err != nil {
			return err
		}
		h1, err := pl.MR.Submit(p, identityJob("/in1", 2))
		if err != nil {
			return err
		}
		h2, err := pl.MR.Submit(p, identityJob("/in2", 2))
		if err != nil {
			return err
		}
		if first, err = h1.Wait(p); err != nil {
			return err
		}
		second, err = h2.Wait(p)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// FIFO scheduling (Hadoop 0.20's default JobQueueTaskScheduler): the
	// first-submitted job's tasks go first, so it finishes no later.
	if first.Finished > second.Finished {
		t.Fatalf("FIFO violated: job1 finished %v after job2 %v", first.Finished, second.Finished)
	}
	if first.Runtime <= 0 || second.Runtime <= 0 {
		t.Fatal("jobs did not run")
	}
}

func TestReconfigureAdjustsSlots(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(4, core.Normal))
	cfg := pl.MR.Config()
	cfg.MapSlots = 4
	pl.MR.Reconfigure(cfg)
	if got := pl.MR.Config().MapSlots; got != 4 {
		t.Fatalf("map slots = %d", got)
	}
	// The widened slots must actually be usable: an 8-map job on 3 workers
	// x 4 slots runs in a single wave.
	var stats mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 512e6, lineRecords(make([]string, 16), 32e6)); err != nil {
			return err
		}
		var err error
		stats, err = runJob(p, pl.MR, identityJob("/in", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapTasks != 8 {
		t.Fatalf("maps = %d", stats.MapTasks)
	}
}

func TestMissingSideInputFailsJob(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(4, core.Normal))
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 64e6, lineRecords(make([]string, 4), 16e6)); err != nil {
			return err
		}
		cfg := identityJob("/in", 1)
		cfg.SideInput = []string{"/does-not-exist"}
		_, err := runJob(p, pl.MR, cfg)
		return err
	})
	if err == nil {
		t.Fatal("job with missing side input succeeded")
	}
}
