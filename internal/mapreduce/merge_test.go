package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"
)

// legacySortKVs is the seed implementation's reduce-side sort (reflect-based
// sort.SliceStable over the full shuffled set), kept here as the reference
// the merge must match record-for-record and the baseline the
// micro-benchmark compares against.
func legacySortKVs(kvs []KV) {
	sort.SliceStable(kvs, func(a, b int) bool { return kvs[a].Key < kvs[b].Key })
}

// makeRuns builds nRuns sorted runs of perRun records with keys drawn from a
// small vocabulary (lots of cross-run duplicates, like a real shuffle). The
// Value records the producing run and position so tests can check stability.
func makeRuns(rng *rand.Rand, nRuns, perRun, vocab int) [][]KV {
	runs := make([][]KV, nRuns)
	for r := range runs {
		run := make([]KV, perRun)
		for i := range run {
			run[i] = KV{
				Key:   fmt.Sprintf("k%04d", rng.Intn(vocab)),
				Value: [2]int{r, i},
				Size:  24,
			}
		}
		sortKVs(run)
		runs[r] = run
	}
	return runs
}

func flatten(runs [][]KV) []KV {
	var out []KV
	for _, r := range runs {
		out = append(out, r...)
	}
	return out
}

func TestMergeRunsMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ runs, per, vocab int }{
		{1, 50, 10},
		{2, 40, 8},
		{3, 30, 5},
		{8, 100, 20},
		{16, 64, 3}, // heavy duplication across many runs
	} {
		runs := makeRuns(rng, tc.runs, tc.per, tc.vocab)
		want := flatten(runs)
		legacySortKVs(want)
		got := mergeRuns(runs, 0)
		if len(got) != len(want) {
			t.Fatalf("%d runs: merged %d records, want %d", tc.runs, len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Value != want[i].Value {
				t.Fatalf("%d runs: record %d = %v/%v, want %v/%v (stability broken)",
					tc.runs, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

func TestMergeRunsEmptyAndNil(t *testing.T) {
	if got := mergeRuns(nil, 0); len(got) != 0 {
		t.Fatalf("merge of no runs = %d records", len(got))
	}
	if got := mergeRuns([][]KV{{}, nil, {}}, 0); len(got) != 0 {
		t.Fatalf("merge of empty runs = %d records", len(got))
	}
	run := []KV{{Key: "a"}, {Key: "b"}}
	got := mergeRuns([][]KV{nil, run, {}}, 0)
	if len(got) != 2 || got[0].Key != "a" {
		t.Fatalf("single live run mishandled: %v", got)
	}
}

func TestSortKVsStableAndSortedFastPath(t *testing.T) {
	kvs := []KV{{Key: "a", Value: 1}, {Key: "a", Value: 2}, {Key: "b", Value: 3}}
	sortKVs(kvs)
	if kvs[0].Value != 1 || kvs[1].Value != 2 {
		t.Fatal("sortKVs reordered already-sorted equal keys")
	}
	kvs = []KV{{Key: "b", Value: 1}, {Key: "a", Value: 2}, {Key: "a", Value: 3}, {Key: "a", Value: 4}}
	if sortedByKey(kvs) {
		t.Fatal("unsorted input reported sorted")
	}
	sortKVs(kvs)
	if kvs[0].Key != "a" || kvs[0].Value != 2 || kvs[1].Value != 3 || kvs[2].Value != 4 || kvs[3].Key != "b" {
		t.Fatalf("sortKVs unstable or wrong: %v", kvs)
	}
}

func TestDefaultPartitionMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "hello", "k0042", "the quick brown fox", "\x00\xff"}
	for _, key := range keys {
		for _, n := range []int{1, 3, 7, 16} {
			h := fnv.New32a()
			h.Write([]byte(key))
			want := int(h.Sum32() % uint32(n))
			if got := defaultPartition(key, n); got != want {
				t.Fatalf("defaultPartition(%q, %d) = %d, want %d", key, n, got, want)
			}
		}
	}
}

func TestDefaultPartitionZeroAllocs(t *testing.T) {
	key := "some-intermediate-key-0042"
	allocs := testing.AllocsPerRun(1000, func() {
		if defaultPartition(key, 16) < 0 {
			t.Fail()
		}
	})
	if allocs != 0 {
		t.Fatalf("defaultPartition allocates %v objects per call, want 0", allocs)
	}
}

func TestReduceSortedReusesScratchSafely(t *testing.T) {
	// A reducer that (correctly) only reads values during the call.
	red := ReducerFunc(func(key string, values []any, emit Emit) {
		sum := 0
		for _, v := range values {
			sum += v.(int)
		}
		emit(key, sum, 8)
	})
	kvs := []KV{
		{Key: "a", Value: 1}, {Key: "a", Value: 2},
		{Key: "b", Value: 3},
		{Key: "c", Value: 4}, {Key: "c", Value: 5}, {Key: "c", Value: 6},
	}
	out := reduceSorted(kvs, red)
	want := map[string]int{"a": 3, "b": 3, "c": 15}
	if len(out) != 3 {
		t.Fatalf("groups = %d, want 3", len(out))
	}
	for _, kv := range out {
		if want[kv.Key] != kv.Value.(int) {
			t.Fatalf("%s = %v, want %d", kv.Key, kv.Value, want[kv.Key])
		}
	}
}

// --- Micro-benchmarks ------------------------------------------------------

// BenchmarkReduceMergeVsSort compares the reduce-side k-way merge over
// pre-sorted runs against the seed's full stable re-sort of the shuffled
// concatenation, at a typical shuffle shape (16 maps feeding one reducer).
func BenchmarkReduceMergeVsSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	runs := makeRuns(rng, 16, 512, 200)
	b.Run("kway-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := mergeRuns(runs, 0); len(out) != 16*512 {
				b.Fatal("bad merge")
			}
		}
	})
	b.Run("legacy-resort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kvs := flatten(runs)
			legacySortKVs(kvs)
			if len(kvs) != 16*512 {
				b.Fatal("bad sort")
			}
		}
	})
}

// BenchmarkSortKVs measures the map-side spill sort (generic stable sort)
// against the seed's reflect-based sort.SliceStable.
func BenchmarkSortKVs(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	base := flatten(makeRuns(rng, 1, 4096, 500))
	scratch := make([]KV, len(base))
	b.Run("index-pdqsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			sortKVs(scratch)
		}
	})
	b.Run("legacy-sliceStable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			legacySortKVs(scratch)
		}
	})
}

// BenchmarkDefaultPartition measures the inlined FNV-1a partitioner against
// the seed's hash/fnv-object implementation.
func BenchmarkDefaultPartition(b *testing.B) {
	keys := make([]string, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = fmt.Sprintf("word%06d", rng.Intn(1e6))
	}
	b.Run("inline-fnv1a", func(b *testing.B) {
		b.ReportAllocs()
		s := 0
		for i := 0; i < b.N; i++ {
			s += defaultPartition(keys[i%len(keys)], 16)
		}
		_ = s
	})
	b.Run("legacy-fnv-object", func(b *testing.B) {
		b.ReportAllocs()
		s := 0
		for i := 0; i < b.N; i++ {
			h := fnv.New32a()
			h.Write([]byte(keys[i%len(keys)]))
			s += int(h.Sum32() % 16)
		}
		_ = s
	})
}
