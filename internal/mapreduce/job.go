package mapreduce

import (
	"fmt"

	"vhadoop/internal/hdfs"
	"vhadoop/internal/obs"
	"vhadoop/internal/sim"
)

// splitPart is one block's byte contribution to an input split.
type splitPart struct {
	block *hdfs.Block
	bytes float64
}

// inputSplit is the unit of map-task input: by default exactly one HDFS
// block, or an arbitrary byte range over consecutive blocks when the job
// overrides NumMaps.
type inputSplit struct {
	size    float64
	records []KV
	parts   []splitPart
}

// primary returns the block contributing the most bytes: the locality
// anchor for scheduling.
func (s *inputSplit) primary() *hdfs.Block {
	var best *hdfs.Block
	bestBytes := -1.0
	for _, part := range s.parts {
		if part.bytes > bestBytes {
			bestBytes = part.bytes
			best = part.block
		}
	}
	return best
}

// task is one map or reduce task (shared across its execution attempts).
type task struct {
	job   *job
	kind  TaskKind
	index int

	split *inputSplit // map input split

	state      TaskState
	tracker    *Tracker
	attempts   int
	startedAt  sim.Time
	doneIn     sim.Time // runtime of the successful attempt
	speculated bool
	skips      int // scheduling rounds passed over while awaiting locality

	// attempts currently executing (primary plus speculative duplicates),
	// in launch order; the winner aborts the rest, as the jobtracker kills
	// redundant attempts in Hadoop.
	attemptProcs []*sim.Proc

	// map output, one slice of records and one virtual size per reduce
	// partition (or a single partition for map-only jobs).
	parts     [][]KV
	partSizes []float64

	// per-attempt results folded into JobStats by the winning attempt
	wasLocal bool
	shuffled float64
	spilled  float64
	out      []KV
	outBytes float64

	shuffleCounted bool // this reduce already closed its share of the shuffle phase
}

// job is a submitted MapReduce job.
type job struct {
	cluster *Cluster
	cfg     JobSpec

	// Per-submission knobs (see SubmitOption).
	tenant   string
	priority int
	deadline sim.Time // 0: none
	collect  bool     // retain real output records

	maps    []*task
	reduces []*task

	mapsDone    int
	reducesDone int
	mapDone     *sim.Done // rotating broadcast: fired on each map completion
	done        *sim.Done
	err         error
	isDone      bool

	stats   JobStats
	outputs [][]KV // per-reduce (or per-map for map-only) real output records

	// observability spans and cached handles (nil without a plane); see obs.go
	span          *obs.Span
	phaseMap      *obs.Span
	phaseShuffle  *obs.Span
	phaseReduce   *obs.Span
	shufflesDone  int
	extraAttempts *obs.Gauge // interned once at submission; see startSpans
}

func (j *job) finished() bool { return j.isDone }

// fail completes the job with an error.
func (j *job) fail(err error) {
	if j.isDone {
		return
	}
	j.err = err
	j.isDone = true
	// Failed jobs get the same terminal timestamps as completed ones, so
	// Wait always reports a consistent (stats, err) pair.
	j.stats.Finished = j.cluster.engine.Now()
	j.stats.Runtime = j.stats.Finished - j.stats.Submitted
	if i := j.cluster.instr; i != nil {
		i.jobsFailed.Inc()
	}
	j.finishSpans()
	j.done.Fire()
	j.rotateMapSignal() // unblock any reducers so their procs can exit
}

func (j *job) rotateMapSignal() {
	old := j.mapDone
	j.mapDone = sim.NewDone(j.cluster.engine)
	old.Fire()
}

// taskCompleted records a successful task and completes the job when its
// last task finishes.
func (j *job) taskCompleted(t *task) {
	j.stats.SpillBytes += t.spilled
	if i := j.cluster.instr; i != nil {
		i.spillBytes.Add(t.spilled)
		if t.kind == ReduceTask {
			i.shuffleBytes.Add(t.shuffled)
		}
		if t.outBytes > 0 && (t.kind == ReduceTask || len(j.reduces) == 0) {
			i.outputBytes.Add(t.outBytes)
		}
	}
	if t.kind == MapTask {
		if t.wasLocal {
			j.stats.LocalMaps++
		}
		j.stats.MapSeconds += t.doneIn
		j.mapsDone++
		if j.mapsDone == len(j.maps) && len(j.reduces) > 0 {
			j.phaseMap.Finish()
		}
		j.rotateMapSignal()
		if len(j.reduces) == 0 {
			if j.collect {
				j.outputs[t.index] = t.out
			}
			j.stats.OutputBytes += t.outBytes
			j.stats.OutputRecords += len(t.out)
			if j.mapsDone == len(j.maps) {
				j.complete()
			}
		}
		return
	}
	j.stats.ShuffledBytes += t.shuffled
	j.stats.ReduceSeconds += t.doneIn
	if j.collect {
		j.outputs[t.index] = t.out
	}
	j.stats.OutputBytes += t.outBytes
	j.stats.OutputRecords += len(t.out)
	j.reducesDone++
	if j.reducesDone == len(j.reduces) {
		j.complete()
	}
}

func (j *job) complete() {
	if j.isDone {
		return
	}
	j.isDone = true
	j.stats.Finished = j.cluster.engine.Now()
	j.stats.Runtime = j.stats.Finished - j.stats.Submitted
	if i := j.cluster.instr; i != nil {
		i.jobsCompleted.Inc()
		j.extraAttempts.Set(float64(j.stats.Attempts - j.stats.MapTasks - j.stats.ReduceTasks))
	}
	j.finishSpans()
	j.done.Fire()
}

// OutputRecords returns the job's real output records in partition order.
func (j *job) outputRecords() []KV {
	var out []KV
	for _, part := range j.outputs {
		out = append(out, part...)
	}
	return out
}

// Handle tracks a submitted job.
type Handle struct{ j *job }

// Wait blocks p until the job completes and returns its stats. It is safe to
// call repeatedly — on an already-finished job (completed, failed or killed)
// it returns the stored stats and error immediately, and every call returns
// the same pair.
func (h *Handle) Wait(p *sim.Proc) (JobStats, error) {
	h.j.done.Wait(p)
	return h.j.stats, h.j.err
}

// Stats returns the job stats (final once Wait has returned).
func (h *Handle) Stats() JobStats { return h.j.stats }

// Err returns the job's terminal error: nil while running or after success,
// the failure cause (or ErrJobKilled) once the job has failed.
func (h *Handle) Err() error { return h.j.err }

// Tenant returns the tenant account the job was submitted under.
func (h *Handle) Tenant() string { return h.j.tenant }

// Deadline returns the job's completion deadline (0: none).
func (h *Handle) Deadline() sim.Time { return h.j.deadline }

// Kill terminates the job: running attempts are aborted, its pending tasks
// leave the queue, and waiters unblock with ErrJobKilled. Killing a finished
// job is a no-op.
func (h *Handle) Kill() { h.j.cluster.killJob(h.j, ErrJobKilled) }

// Progress reports completed and total map and reduce tasks.
func (h *Handle) Progress() (mapsDone, maps, reducesDone, reduces int) {
	return h.j.mapsDone, len(h.j.maps), h.j.reducesDone, len(h.j.reduces)
}

// Done reports whether the job has finished.
func (h *Handle) Done() bool { return h.j.finished() }

// OutputRecords returns the real output records (valid after completion;
// nil when the job was submitted with WithCollectOutput(false)).
func (h *Handle) OutputRecords() []KV { return h.j.outputRecords() }

// SubmitOption tunes one submission of a JobSpec.
type SubmitOption func(*submitOpts)

type submitOpts struct {
	tenant   string
	priority int
	deadline sim.Time
	collect  bool
}

// WithTenant attributes the job to a tenant account. The scheduler's
// per-tenant slot ledger and the job service's fair-share accounting key
// off this name.
func WithTenant(name string) SubmitOption {
	return func(o *submitOpts) { o.tenant = name }
}

// WithPriority sets the job's scheduling priority (default 0). Pending
// tasks of higher-priority jobs are offered to free slots before those of
// lower-priority ones; ties keep submission order.
func WithPriority(pr int) SubmitOption {
	return func(o *submitOpts) { o.priority = pr }
}

// WithDeadline records the virtual time by which the job should finish.
// The cluster itself does not enforce it; the job service's placement
// policy orders queued jobs by deadline slack.
func WithDeadline(t sim.Time) SubmitOption {
	return func(o *submitOpts) { o.deadline = t }
}

// WithCollectOutput controls whether the job retains its real output
// records for OutputRecords (default true). Long-running services turn it
// off for jobs whose output nobody reads back.
func WithCollectOutput(keep bool) SubmitOption {
	return func(o *submitOpts) { o.collect = keep }
}

// defaultPartition is Hadoop's hash partitioner: FNV-1a over the key bytes,
// inlined so the per-emit hot path allocates neither a hash.Hash32 nor a
// []byte copy of the key. Bit-compatible with hash/fnv's New32a.
//
//vhlint:hot
func defaultPartition(key string, numReduces int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(numReduces))
}

// Submit registers a job with the jobtracker: the client RPCs the master,
// the master charges job-setup time, input splits become map tasks (one per
// HDFS block) and everything enters the pending queue. Tasks start flowing
// at the next tasktracker heartbeats, as in Hadoop. Options attribute the
// submission to a tenant, raise its priority, attach a deadline or turn off
// output collection; a bare Submit behaves exactly as before the options
// existed.
func (c *Cluster) Submit(p *sim.Proc, spec JobSpec, opts ...SubmitOption) (*Handle, error) {
	so := submitOpts{collect: true}
	for _, opt := range opts {
		opt(&so)
	}
	if spec.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %s has no mapper", spec.Name)
	}
	if spec.NumReduces > 0 && spec.NewReducer == nil {
		return nil, fmt.Errorf("mapreduce: job %s has %d reduces but no reducer", spec.Name, spec.NumReduces)
	}
	if spec.Partition == nil {
		spec.Partition = defaultPartition
	}
	j := &job{
		cluster:  c,
		cfg:      spec,
		tenant:   so.tenant,
		priority: so.priority,
		deadline: so.deadline,
		collect:  so.collect,
		mapDone:  sim.NewDone(c.engine),
		done:     sim.NewDone(c.engine),
	}
	j.stats.Name = spec.Name
	j.stats.Tenant = so.tenant
	j.stats.Submitted = c.engine.Now()

	// Resolve input blocks and cut them into map splits.
	var blocks []*hdfs.Block
	for _, name := range spec.Input {
		f, err := c.dfs.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %s: %w", spec.Name, err)
		}
		blocks = append(blocks, f.Blocks...)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("mapreduce: job %s has no input blocks", spec.Name)
	}
	for _, s := range makeSplits(blocks, spec.NumMaps) {
		j.maps = append(j.maps, &task{job: j, kind: MapTask, index: len(j.maps), split: s})
	}
	for r := 0; r < spec.NumReduces; r++ {
		j.reduces = append(j.reduces, &task{job: j, kind: ReduceTask, index: r})
	}
	j.stats.MapTasks = len(j.maps)
	j.stats.ReduceTasks = len(j.reduces)
	if spec.NumReduces > 0 {
		j.outputs = make([][]KV, spec.NumReduces)
	} else {
		j.outputs = make([][]KV, len(j.maps))
	}

	// Client -> jobtracker RPC plus jobtracker-side setup (staging the job
	// configuration and jar, initialising the task lists).
	c.master.Message(p, c.master, 4096)
	p.Sleep(c.cfg.JobSetupTime)

	c.jobs = append(c.jobs, j)
	j.startSpans()
	for _, t := range j.maps {
		c.enqueuePending(t)
	}
	for _, t := range j.reduces {
		c.enqueuePending(t)
	}
	if c.cfg.Speculative {
		c.engine.Spawn("speculator:"+spec.Name, func(q *sim.Proc) { c.speculatorLoop(q, j) })
	}
	return &Handle{j: j}, nil
}

// Run submits spec and blocks p until completion.
//
// Deprecated: use Submit followed by Handle.Wait.
func (c *Cluster) Run(p *sim.Proc, spec JobSpec) (JobStats, error) {
	h, err := c.Submit(p, spec)
	if err != nil {
		return JobStats{}, err
	}
	return h.Wait(p)
}

// RunAndCollect is Run returning the job's real output records as well.
//
// Deprecated: use Submit followed by Handle.Wait and Handle.OutputRecords.
func (c *Cluster) RunAndCollect(p *sim.Proc, spec JobSpec) ([]KV, JobStats, error) {
	h, err := c.Submit(p, spec)
	if err != nil {
		return nil, JobStats{}, err
	}
	stats, err := h.Wait(p)
	if err != nil {
		return nil, stats, err
	}
	return h.OutputRecords(), stats, nil
}

// speculatorLoop watches a job for straggler map tasks and schedules
// duplicate attempts once most maps have completed.
func (c *Cluster) speculatorLoop(p *sim.Proc, j *job) {
	for !c.stopped && !j.finished() {
		p.Sleep(2 * c.cfg.HeartbeatInterval)
		if j.finished() {
			return
		}
		frac := float64(j.mapsDone) / float64(len(j.maps))
		if frac < c.cfg.SpeculativeFraction || j.mapsDone == 0 {
			continue
		}
		// Mean runtime of completed maps.
		var mean sim.Time
		n := 0
		for _, t := range j.maps {
			if t.state == TaskDone {
				mean += t.doneIn
				n++
			}
		}
		if n == 0 {
			continue
		}
		mean /= sim.Time(n)
		for _, t := range j.maps {
			if t.state == TaskRunning && !t.speculated &&
				p.Now()-t.startedAt > c.cfg.SpeculativeSlowdown*mean {
				c.speculate(t)
			}
		}
	}
}

// makeSplits cuts blocks into map-task inputs: one split per block when
// numMaps is 0, otherwise numMaps equal byte ranges over the concatenated
// blocks, with records following their cumulative byte positions.
func makeSplits(blocks []*hdfs.Block, numMaps int) []*inputSplit {
	if numMaps <= 0 {
		splits := make([]*inputSplit, len(blocks))
		for i, b := range blocks {
			splits[i] = &inputSplit{
				size:    b.Size,
				records: b.Records,
				parts:   []splitPart{{block: b, bytes: b.Size}},
			}
		}
		return splits
	}
	var total float64
	var records []KV
	for _, b := range blocks {
		total += b.Size
		records = append(records, b.Records...)
	}
	per := total / float64(numMaps)
	splits := make([]*inputSplit, numMaps)
	for i := range splits {
		splits[i] = &inputSplit{size: per}
	}
	// Distribute block bytes across consecutive splits. The last split
	// absorbs any floating-point residue so the loop always terminates.
	splitIdx, room := 0, per
	for _, b := range blocks {
		remaining := b.Size
		for remaining > 1e-9 {
			take := remaining
			if splitIdx < numMaps-1 && take > room {
				take = room
			}
			s := splits[splitIdx]
			s.parts = append(s.parts, splitPart{block: b, bytes: take})
			remaining -= take
			room -= take
			if room <= 1e-9 && splitIdx < numMaps-1 {
				splitIdx++
				room = per
			}
		}
	}
	// Distribute records by cumulative byte position.
	cum := 0.0
	for _, r := range records {
		idx := int(cum / per)
		if idx >= numMaps {
			idx = numMaps - 1
		}
		splits[idx].records = append(splits[idx].records, r)
		cum += r.Size
	}
	return splits
}

// groupAndReduce sorts records in place, groups them by key and feeds each
// group to red, collecting emissions. The sort/merge fast paths live in
// merge.go; callers holding already-sorted input should use reduceSorted.
func groupAndReduce(kvs []KV, red Reducer) []KV {
	sortKVs(kvs)
	return reduceSorted(kvs, red)
}
