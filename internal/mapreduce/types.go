// Package mapreduce implements the Hadoop MapReduce engine of the vHadoop
// platform: a jobtracker on the master VM, tasktrackers on the worker VMs,
// and jobs whose map, combine, shuffle, sort and reduce phases run real user
// code over real records while their I/O, CPU and network costs advance the
// simulation's virtual clock.
//
// The engine reproduces the Hadoop 0.20 behaviours the paper's experiments
// depend on: heartbeat-driven pull scheduling with data-locality preference,
// per-task JVM setup overhead, map-side sort/spill with multi-pass merges
// when outputs outgrow the sort buffer, shuffle over the virtual network,
// replicated HDFS output writes, task re-execution on tasktracker failure,
// and optional speculative execution.
package mapreduce

import (
	"vhadoop/internal/hdfs"
	"vhadoop/internal/sim"
)

// KV is one intermediate or output record: a real key/value pair plus the
// virtual bytes it stands for. It is the same shape as hdfs.Record so data
// moves between the layers without conversion.
type KV = hdfs.Record

// Emit receives a record produced by a Mapper, Combiner or Reducer.
type Emit func(key string, value any, size float64)

// Mapper transforms one input record into intermediate records.
type Mapper interface {
	Map(key string, value any, emit Emit)
}

// ClosingMapper is a Mapper that also emits records when its split ends
// (Hadoop's cleanup/close hook) — canopy generation needs this to flush the
// canopies accumulated over the whole split.
type ClosingMapper interface {
	Mapper
	Close(emit Emit)
}

// Reducer folds all values of one key into output records. Combiners are
// Reducers run on map-side partial groups.
//
// As in Hadoop's value iterator, the values slice is scratch owned by the
// engine and reused for the next key group: a Reducer must copy it (or the
// values it needs) if it retains anything past the Reduce call.
type Reducer interface {
	Reduce(key string, values []any, emit Emit)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key string, value any, emit Emit)

// Map calls f.
func (f MapperFunc) Map(key string, value any, emit Emit) { f(key, value, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values []any, emit Emit)

// Reduce calls f.
func (f ReducerFunc) Reduce(key string, values []any, emit Emit) { f(key, values, emit) }

// CostModel translates record counts and virtual bytes into VCPU seconds.
// Real user code runs natively (its wall-clock cost is free); the model
// charges the virtual time the same work would take on the testbed's cores.
type CostModel struct {
	MapCPUPerByte       float64 // map function cost per virtual input byte
	MapCPUPerRecord     float64 // map function cost per real record
	CombineCPUPerRecord float64
	SortCPUPerByte      float64 // sort/merge cost per virtual byte
	ReduceCPUPerByte    float64 // reduce function cost per virtual shuffled byte
	ReduceCPUPerRecord  float64
	TaskSetupCPU        float64 // JVM launch + task init, VCPU seconds
}

// JobSpec is the immutable description of one MapReduce job: its input,
// output, task counts, user code and cost model. Everything that varies per
// submission rather than per job — tenant account, priority, deadline,
// whether to retain output records — travels as SubmitOptions instead.
type JobSpec struct {
	Name       string
	Input      []string // HDFS files; one map task per block by default
	Output     string   // HDFS directory for reduce output ("" discards)
	NumReduces int
	// NumMaps overrides the split count (MRBench's -maps flag): the input
	// is re-chopped into exactly this many equal-sized splits. 0 keeps the
	// default of one map task per HDFS block.
	NumMaps int
	// SideInput lists HDFS files every map task reads during setup — the
	// distributed-cache pattern Mahout uses to ship the current cluster
	// state to all mappers each iteration.
	SideInput []string

	NewMapper   func() Mapper
	NewReducer  func() Reducer // nil: map-only job
	NewCombiner func() Reducer // optional map-side combine

	// Partition picks the reduce for a key; nil uses hash partitioning.
	Partition func(key string, numReduces int) int

	Cost CostModel
}

// JobConfig is the old name for JobSpec, from when the job description and
// the per-submission tuning knobs lived in one struct.
//
// Deprecated: use JobSpec with Cluster.Submit and SubmitOptions.
type JobConfig = JobSpec

// TaskKind distinguishes map from reduce tasks.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskState is a task's lifecycle state.
type TaskState int

// Task states.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskDone
)

// JobStats summarises a completed job.
type JobStats struct {
	Name string
	// Tenant is the account the job was submitted under ("" for none).
	Tenant      string
	Submitted   sim.Time
	Finished    sim.Time
	Runtime     sim.Time
	MapTasks    int
	ReduceTasks int
	// LocalMaps counts map tasks that read a block replica on their own VM.
	LocalMaps int
	// ShuffledBytes is the total map-output volume moved to reducers.
	ShuffledBytes float64
	// SpillBytes is extra disk traffic from sort-buffer overflow merges.
	SpillBytes float64
	// OutputBytes is the virtual size of the job output.
	OutputBytes float64
	// OutputRecords is the number of real output records.
	OutputRecords int
	// Attempts counts task executions including re-executions and
	// speculative duplicates.
	Attempts int
	// MapSeconds and ReduceSeconds accumulate the runtimes of the winning
	// task attempts — the slot-second usage fair-share scheduling accounts
	// against tenants.
	MapSeconds    sim.Time
	ReduceSeconds sim.Time
}
