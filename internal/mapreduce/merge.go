package mapreduce

import (
	"slices"
	"strings"
)

// This file is the shuffle data plane's sort/merge core. Map tasks sort each
// output partition once at spill time (where the engine charges the virtual
// sort CPU); reduce tasks then see one already-sorted run per map and combine
// them with a stable k-way merge instead of re-sorting the full record set.
// The merge pops equal keys from runs in arrival (fetch) order, so its output
// is byte-identical to what the previous stable full sort over the
// arrival-ordered concatenation produced — and deterministic, because the
// simulation's fetch order is deterministic under a fixed seed.

// sortKVs orders records by key (stable, so equal keys keep their current
// order). Rather than stable-sorting the 40-byte records directly (rotation
// moves dominate) or through sort.SliceStable (reflect swapper dominates),
// it pattern-defeating-quicksorts an index permutation with the original
// position as tie-break — stability for 8-byte swaps — then applies the
// permutation in one pass.
//
//vhlint:hot
func sortKVs(kvs []KV) {
	if len(kvs) < 2 || sortedByKey(kvs) {
		return
	}
	idx := make([]int, len(kvs))
	for i := range idx {
		idx[i] = i
	}
	//vhlint:allow hotalloc -- one comparator closure per spill sort, amortised over the whole run
	slices.SortFunc(idx, func(a, b int) int {
		if c := strings.Compare(kvs[a].Key, kvs[b].Key); c != 0 {
			return c
		}
		return a - b
	})
	out := make([]KV, len(kvs))
	for i, j := range idx {
		out[i] = kvs[j]
	}
	copy(kvs, out)
}

// sortedByKey reports whether kvs is already in non-decreasing key order —
// combiner output usually is, letting the spill skip its sort pass.
func sortedByKey(kvs []KV) bool {
	for i := 1; i < len(kvs); i++ {
		if kvs[i].Key < kvs[i-1].Key {
			return false
		}
	}
	return true
}

// mergeRuns merges key-sorted runs into one key-sorted slice. Ties across
// runs resolve to the earliest run (stable), and records within a run keep
// their order, so merging runs in fetch order reproduces exactly the
// ordering of a stable sort over their concatenation. total is the summed
// run length (a sizing hint; pass 0 to count here).
//
//vhlint:hot
func mergeRuns(runs [][]KV, total int) []KV {
	// Drop empty runs; they only slow the heap down.
	live := runs[:0:0]
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		// Single run: already sorted; hand it back without copying. Callers
		// treat merge output as read-only.
		return live[0]
	}
	if total == 0 {
		for _, r := range live {
			total += len(r)
		}
	}
	out := make([]KV, 0, total)
	if len(live) == 2 {
		return merge2(out, live[0], live[1])
	}

	// K-way merge over a binary min-heap of run heads. The heap stores run
	// indices; pos[i] is the cursor into live[i]. Comparison is by current
	// key, then run index, which keeps the merge stable across runs.
	pos := make([]int, len(live))
	heap := make([]int, len(live))
	for i := range heap {
		heap[i] = i
	}
	less := func(a, b int) bool {
		ka, kb := live[a][pos[a]].Key, live[b][pos[b]].Key
		if ka != kb {
			return ka < kb
		}
		return a < b
	}
	siftDown := func(i, n int) {
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			m := l
			if r := l + 1; r < n && less(heap[r], heap[l]) {
				m = r
			}
			if !less(heap[m], heap[i]) {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i, len(heap))
	}
	n := len(heap)
	for n > 0 {
		r := heap[0]
		out = append(out, live[r][pos[r]])
		pos[r]++
		if pos[r] == len(live[r]) {
			heap[0] = heap[n-1]
			n--
		}
		siftDown(0, n)
	}
	return out
}

// merge2 is the two-run special case: no heap, just a cursor race. Ties go
// to a (the earlier-fetched run), matching the k-way merge's tie-breaking.
//
//vhlint:hot
func merge2(out, a, b []KV) []KV {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Key < a[i].Key {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// reduceSorted feeds each key group of the already-sorted kvs to red and
// returns the emitted records. The values slice passed to each Reduce call
// is scratch reused across groups (Hadoop's iterator semantics): reducers
// must not retain it past the call.
//
//vhlint:hot
func reduceSorted(kvs []KV, red Reducer) []KV {
	var out []KV
	//vhlint:allow hotalloc -- one emit closure per reduce task, amortised over its record stream
	emit := func(key string, value any, size float64) {
		out = append(out, KV{Key: key, Value: value, Size: size})
	}
	// Sized to the worst case (one group holding every record) so the
	// per-group reslice below never regrows mid-stream.
	values := make([]any, 0, len(kvs))
	for i := 0; i < len(kvs); {
		end := i + 1
		for end < len(kvs) && kvs[end].Key == kvs[i].Key {
			end++
		}
		values = values[:0]
		for _, kv := range kvs[i:end] {
			values = append(values, kv.Value)
		}
		red.Reduce(kvs[i].Key, values, emit)
		i = end
	}
	return out
}
