package mapreduce_test

import (
	"errors"
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// TestDoubleWaitAndWaitAfterKill pins the Wait contract of the redesigned
// submission API: killing a job unblocks waiters with ErrJobKilled and
// terminal timestamps, and every subsequent Wait returns the same pair.
func TestDoubleWaitAndWaitAfterKill(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(5, core.Normal))
	var first, second mapreduce.JobStats
	var err1, err2 error
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 128e6, lineRecords(testLines, 32e6)); err != nil {
			return err
		}
		h, err := pl.MR.Submit(p, wordcountJob("/in", "/out", 2, false),
			mapreduce.WithTenant("acct"))
		if err != nil {
			return err
		}
		pl.Engine.Spawn("killer", func(q *sim.Proc) {
			for {
				if m, _ := pl.MR.TenantSlots("acct"); m > 0 {
					break
				}
				if h.Done() {
					return
				}
				q.Sleep(1)
			}
			h.Kill()
			h.Kill() // killing a finished job is a no-op
		})
		first, err1 = h.Wait(p)
		second, err2 = h.Wait(p) // must not block and must agree
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(err1, mapreduce.ErrJobKilled) {
		t.Fatalf("first Wait err = %v, want ErrJobKilled", err1)
	}
	if err2 != err1 {
		t.Fatalf("second Wait err = %v, want same as first (%v)", err2, err1)
	}
	if first != second {
		t.Fatalf("double Wait disagrees:\nfirst  %+v\nsecond %+v", first, second)
	}
	if first.Finished <= 0 || first.Runtime < 0 {
		t.Fatalf("killed job missing terminal timestamps: %+v", first)
	}
	if first.Tenant != "acct" {
		t.Fatalf("stats.Tenant = %q, want acct", first.Tenant)
	}
	if m, r := pl.MR.TenantSlots("acct"); m != 0 || r != 0 {
		t.Fatalf("tenant slot ledger not drained after kill: maps=%d reduces=%d", m, r)
	}
}

// TestWaitAfterFailReturnsStoredError checks the same contract for a job
// that fails on its own — every tasktracker is decommissioned mid-run with
// MaxAttempts exhausted, so the requeue path fails the job. The stored
// error must come back identically from repeated Waits.
func TestWaitAfterFailReturnsStoredError(t *testing.T) {
	opts := smallOpts(5, core.Normal)
	opts.MR.MaxAttempts = 1
	pl := core.MustNewPlatform(opts)
	var errs [2]error
	var stats [2]mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 64e6, lineRecords(testLines, 16e6)); err != nil {
			return err
		}
		h, err := pl.MR.Submit(p, wordcountJob("/in", "", 1, false),
			mapreduce.WithTenant("doomed"))
		if err != nil {
			return err
		}
		pl.Engine.Spawn("saboteur", func(q *sim.Proc) {
			for {
				if m, _ := pl.MR.TenantSlots("doomed"); m > 0 {
					break
				}
				if h.Done() {
					return
				}
				q.Sleep(1)
			}
			for _, tr := range pl.MR.Trackers() {
				pl.MR.DecommissionTracker(tr)
			}
		})
		stats[0], errs[0] = h.Wait(p)
		stats[1], errs[1] = h.Wait(p)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("failed job Wait errors = %v, %v; want both non-nil", errs[0], errs[1])
	}
	if errs[0] != errs[1] {
		t.Fatalf("Wait-after-fail returned different errors: %v vs %v", errs[0], errs[1])
	}
	if stats[0] != stats[1] {
		t.Fatalf("Wait-after-fail stats disagree:\nfirst  %+v\nsecond %+v", stats[0], stats[1])
	}
	if stats[0].Finished <= 0 {
		t.Fatalf("failed job missing terminal timestamp: %+v", stats[0])
	}
}

// TestPreemptTenantRequeuesWithoutBurningBudget preempts a running map of a
// tenant's job and checks the job still completes correctly — the preempted
// attempt requeues without consuming MaxAttempts budget.
func TestPreemptTenantRequeuesWithoutBurningBudget(t *testing.T) {
	opts := smallOpts(5, core.Normal)
	opts.MR.MaxAttempts = 1 // a preemption charged as a failure would kill the job
	pl := core.MustNewPlatform(opts)
	preempted := 0
	var stats mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 128e6, lineRecords(testLines, 32e6)); err != nil {
			return err
		}
		h, err := pl.MR.Submit(p, wordcountJob("/in", "/out", 2, false),
			mapreduce.WithTenant("victim"))
		if err != nil {
			return err
		}
		pl.Engine.Spawn("preemptor", func(q *sim.Proc) {
			for {
				if m, _ := pl.MR.TenantSlots("victim"); m > 0 {
					break
				}
				if h.Done() {
					return
				}
				q.Sleep(1)
			}
			preempted = pl.MR.PreemptTenant("victim", mapreduce.MapTask, 1)
		})
		stats, err = h.Wait(p)
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if preempted != 1 {
		t.Fatalf("preempted = %d, want 1", preempted)
	}
	if stats.Attempts <= stats.MapTasks+stats.ReduceTasks {
		t.Fatalf("attempts = %d with %d tasks: preempted attempt not re-executed",
			stats.Attempts, stats.MapTasks+stats.ReduceTasks)
	}
	if stats.MapSeconds <= 0 || stats.ReduceSeconds <= 0 {
		t.Fatalf("slot-second accounting missing: map=%v reduce=%v", stats.MapSeconds, stats.ReduceSeconds)
	}
}

// TestPriorityJumpsQueue submits a low-priority wide job followed by a
// high-priority narrow one and expects the latecomer to finish first: its
// tasks are inserted ahead of the pending backlog.
func TestPriorityJumpsQueue(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(3, core.Normal)) // 2 workers, 4 map slots
	var wide, narrow mapreduce.JobStats
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 256e6, lineRecords(testLines, 64e6)); err != nil {
			return err
		}
		wideSpec := wordcountJob("/in", "", 0, false)
		wideSpec.Name, wideSpec.NumMaps = "wide", 16
		narrowSpec := wordcountJob("/in", "", 0, false)
		narrowSpec.Name, narrowSpec.NumMaps = "narrow", 2
		hw, err := pl.MR.Submit(p, wideSpec)
		if err != nil {
			return err
		}
		hn, err := pl.MR.Submit(p, narrowSpec, mapreduce.WithPriority(10))
		if err != nil {
			return err
		}
		if wide, err = hw.Wait(p); err != nil {
			return err
		}
		narrow, err = hn.Wait(p)
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if narrow.Finished >= wide.Finished {
		t.Fatalf("high-priority job finished at %v, after the wide backlog job at %v",
			narrow.Finished, wide.Finished)
	}
}

// TestWithCollectOutputOff keeps counters but drops the record payloads.
func TestWithCollectOutputOff(t *testing.T) {
	pl := core.MustNewPlatform(smallOpts(5, core.Normal))
	var stats mapreduce.JobStats
	var records int
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := pl.LoadText(p, "/in", 64e6, lineRecords(testLines, 16e6)); err != nil {
			return err
		}
		h, err := pl.MR.Submit(p, wordcountJob("/in", "/out", 2, false),
			mapreduce.WithCollectOutput(false))
		if err != nil {
			return err
		}
		if stats, err = h.Wait(p); err != nil {
			return err
		}
		records = len(h.OutputRecords())
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if records != 0 {
		t.Fatalf("OutputRecords returned %d records with collection off", records)
	}
	if stats.OutputRecords == 0 || stats.OutputBytes == 0 {
		t.Fatalf("output counters lost with collection off: %+v", stats)
	}
}
