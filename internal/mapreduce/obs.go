package mapreduce

import (
	"strconv"

	"vhadoop/internal/obs"
)

// taskSecondsBuckets are the histogram bounds for task runtimes: the
// testbed's tasks run seconds to a few minutes.
var taskSecondsBuckets = []float64{0.5, 1, 2, 5, 10, 20, 60, 180}

// instruments caches the cluster's metric handles so hot completion
// paths pay one nil check instead of a registry lookup.
type instruments struct {
	mapSeconds     *obs.Histogram
	reduceSeconds  *obs.Histogram
	spillBytes     *obs.Counter
	shuffleBytes   *obs.Counter
	outputBytes    *obs.Counter
	taskFailures   *obs.Counter
	zombieDiscards *obs.Counter
	trackerDeaths  *obs.Counter
	speculations   *obs.Counter
	preemptions    *obs.Counter
	jobsCompleted  *obs.Counter
	jobsFailed     *obs.Counter

	extraAttempts *obs.GaugeVec // per-job retry overhead, one member per job name

	cfgMapSlots    *obs.Gauge
	cfgReduceSlots *obs.Gauge
	cfgSortBuffer  *obs.Gauge
	cfgSpeculative *obs.Gauge
	trackersDead   *obs.Gauge
	pendingTasks   *obs.Gauge
}

// SetObs attaches the observability plane: jobs and task attempts get
// spans, scheduler events become typed trace events, and the registry
// gains the mr_* metric family. A cluster without a plane keeps its
// legacy Engine.Tracef lines.
func (c *Cluster) SetObs(pl *obs.Plane) {
	c.obs = pl
	if pl == nil {
		c.instr = nil
		return
	}
	c.instr = &instruments{
		mapSeconds:     pl.Histogram("mr_task_seconds", taskSecondsBuckets, "kind", "map"),
		reduceSeconds:  pl.Histogram("mr_task_seconds", taskSecondsBuckets, "kind", "reduce"),
		spillBytes:     pl.Counter("mr_spill_bytes_total"),
		shuffleBytes:   pl.Counter("mr_shuffle_bytes_total"),
		outputBytes:    pl.Counter("mr_output_bytes_total"),
		taskFailures:   pl.Counter("mr_task_failures_total"),
		zombieDiscards: pl.Counter("mr_zombie_discards_total"),
		trackerDeaths:  pl.Counter("mr_tracker_deaths_total"),
		speculations:   pl.Counter("mr_speculative_attempts_total"),
		preemptions:    pl.Counter("mr_preemptions_total"),
		jobsCompleted:  pl.Counter("mr_jobs_completed_total"),
		jobsFailed:     pl.Counter("mr_jobs_failed_total"),

		extraAttempts: pl.GaugeVec("mr_job_extra_attempts", "job"),

		cfgMapSlots:    pl.Gauge("mr_config_map_slots"),
		cfgReduceSlots: pl.Gauge("mr_config_reduce_slots"),
		cfgSortBuffer:  pl.Gauge("mr_config_sort_buffer_bytes"),
		cfgSpeculative: pl.Gauge("mr_config_speculative"),
		trackersDead:   pl.Gauge("mr_trackers_dead"),
		pendingTasks:   pl.Gauge("mr_pending_tasks"),
	}
	pl.Registry().OnCollect(c.collect)
}

// collect refreshes the configuration and liveness gauges the tuner's
// Reader path consumes. It runs only at snapshot time, so derived state
// (dead-tracker count, queue depth) is folded here instead of being
// maintained per event.
func (c *Cluster) collect() {
	in := c.instr
	in.cfgMapSlots.Set(float64(c.cfg.MapSlots))
	in.cfgReduceSlots.Set(float64(c.cfg.ReduceSlots))
	in.cfgSortBuffer.Set(c.cfg.SortBufferBytes)
	spec := 0.0
	if c.cfg.Speculative {
		spec = 1
	}
	in.cfgSpeculative.Set(spec)
	dead := 0
	for _, tr := range c.trackers {
		if !tr.Alive() {
			dead++
		}
	}
	in.trackersDead.Set(float64(dead))
	in.pendingTasks.Set(float64(len(c.pending)))
}

// eventf records a typed top-level trace event through the plane, or
// falls back to the raw engine trace for clusters built without one —
// direct-constructed clusters keep their legacy trace lines. Both sinks
// are lazy: with no trace sink installed, the plane defers Sprintf to
// export time and the raw engine drops the line unformatted.
func (c *Cluster) eventf(kind obs.SpanKind, format string, args ...any) {
	if c.obs != nil {
		c.obs.Eventf(kind, format, args...)
		return
	}
	c.engine.Tracef(format, args...)
}

// spanEventf records an event attributed to sp, falling back to the
// engine trace when the cluster has no plane (sp is then nil).
func (c *Cluster) spanEventf(sp *obs.Span, format string, args ...any) {
	if sp != nil {
		sp.Eventf(format, args...)
		return
	}
	c.engine.Tracef(format, args...)
}

// startSpans opens the job's root span and its map phase at submission,
// and interns the job's per-name metric handles so completion paths
// never rebuild a registry key.
func (j *job) startSpans() {
	pl := j.cluster.obs
	if pl == nil {
		return
	}
	j.extraAttempts = j.cluster.instr.extraAttempts.With(j.cfg.Name)
	j.span = pl.Start(obs.KindJob, j.cfg.Name, nil).
		SetAttr("maps", strconv.Itoa(len(j.maps))).
		SetAttr("reduces", strconv.Itoa(len(j.reduces)))
	if j.tenant != "" {
		j.span.SetAttr("tenant", j.tenant)
	}
	j.phaseMap = pl.Start(obs.KindPhase, j.cfg.Name+"/map", j.span)
}

// taskSpanParent returns the phase span a new attempt of t belongs
// under, opening the shuffle and reduce phases at the first reduce
// launch — a deterministic point in the schedule.
func (j *job) taskSpanParent(t *task) *obs.Span {
	pl := j.cluster.obs
	if pl == nil {
		return nil
	}
	if t.kind == MapTask {
		return j.phaseMap
	}
	if j.phaseReduce == nil {
		j.phaseShuffle = pl.Start(obs.KindPhase, j.cfg.Name+"/shuffle", j.span)
		j.phaseReduce = pl.Start(obs.KindPhase, j.cfg.Name+"/reduce", j.span)
	}
	return j.phaseReduce
}

// noteShuffleDone closes the shuffle phase once every reduce task has
// fetched its full partition set at least once.
func (j *job) noteShuffleDone(t *task) {
	if t.shuffleCounted || j.phaseShuffle == nil {
		return
	}
	t.shuffleCounted = true
	j.shufflesDone++
	if j.shufflesDone == len(j.reduces) {
		j.phaseShuffle.Finish()
	}
}

// finishSpans closes any still-open job and phase spans when the job
// completes or fails.
func (j *job) finishSpans() {
	if j.span == nil {
		return
	}
	j.phaseMap.Finish()
	j.phaseShuffle.Finish()
	j.phaseReduce.Finish()
	j.span.SetAttr("attempts", strconv.Itoa(j.stats.Attempts))
	if j.err != nil {
		j.span.SetAttr("error", j.err.Error())
	} else {
		j.span.SetFloat("runtime", float64(j.stats.Runtime))
	}
	j.span.Finish()
}
