package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"vhadoop/internal/hdfs"
)

func mkBlocks(sizes []float64, recsPerBlock int) []*hdfs.Block {
	blocks := make([]*hdfs.Block, len(sizes))
	id := 0
	for i, sz := range sizes {
		b := &hdfs.Block{ID: i + 1, Index: i, Size: sz}
		for r := 0; r < recsPerBlock; r++ {
			id++
			b.Records = append(b.Records, hdfs.Record{
				Key:  "r",
				Size: sz / float64(recsPerBlock),
			})
		}
		blocks[i] = b
	}
	return blocks
}

func TestMakeSplitsDefaultOnePerBlock(t *testing.T) {
	blocks := mkBlocks([]float64{64e6, 64e6, 32e6}, 4)
	splits := makeSplits(blocks, 0)
	if len(splits) != 3 {
		t.Fatalf("splits = %d, want 3", len(splits))
	}
	for i, s := range splits {
		if s.size != blocks[i].Size {
			t.Fatalf("split %d size %v != block size %v", i, s.size, blocks[i].Size)
		}
		if len(s.records) != 4 {
			t.Fatalf("split %d records = %d", i, len(s.records))
		}
		if s.primary() != blocks[i] {
			t.Fatalf("split %d primary mismatch", i)
		}
	}
}

func TestMakeSplitsOverrideTilesBytes(t *testing.T) {
	blocks := mkBlocks([]float64{100e6, 100e6}, 10)
	splits := makeSplits(blocks, 5)
	if len(splits) != 5 {
		t.Fatalf("splits = %d, want 5", len(splits))
	}
	var totalBytes float64
	totalRecs := 0
	for _, s := range splits {
		var partBytes float64
		for _, part := range s.parts {
			partBytes += part.bytes
		}
		if math.Abs(partBytes-40e6) > 1 {
			t.Fatalf("split covers %v bytes, want 40e6", partBytes)
		}
		totalBytes += partBytes
		totalRecs += len(s.records)
	}
	if math.Abs(totalBytes-200e6) > 1 {
		t.Fatalf("splits cover %v bytes", totalBytes)
	}
	if totalRecs != 20 {
		t.Fatalf("splits carry %d records, want 20", totalRecs)
	}
}

// Property: for any block sizes and any map count, splits tile the input
// exactly and no record is lost or duplicated.
func TestMakeSplitsConservationProperty(t *testing.T) {
	prop := func(sizesRaw []uint16, numMapsRaw uint8) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 12 {
			sizesRaw = sizesRaw[:12]
		}
		sizes := make([]float64, len(sizesRaw))
		var want float64
		for i, s := range sizesRaw {
			sizes[i] = float64(s%1000+1) * 1e5
			want += sizes[i]
		}
		blocks := mkBlocks(sizes, 3)
		numMaps := int(numMapsRaw % 20) // 0 = default
		splits := makeSplits(blocks, numMaps)
		var got float64
		recs := 0
		for _, s := range splits {
			for _, part := range s.parts {
				if part.bytes < 0 {
					return false
				}
				got += part.bytes
			}
			recs += len(s.records)
		}
		return math.Abs(got-want) < 1 && recs == 3*len(blocks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeSplitsMoreMapsThanBlocks(t *testing.T) {
	// 2 blocks cut into 7 maps: every split must still cover total/7 bytes,
	// and blocks must span split boundaries without losing ranges.
	blocks := mkBlocks([]float64{70e6, 70e6}, 7)
	splits := makeSplits(blocks, 7)
	if len(splits) != 7 {
		t.Fatalf("splits = %d, want 7", len(splits))
	}
	var total float64
	recs := 0
	for i, s := range splits {
		var partBytes float64
		for _, part := range s.parts {
			if part.bytes <= 0 {
				t.Fatalf("split %d has non-positive part %v", i, part.bytes)
			}
			partBytes += part.bytes
		}
		if math.Abs(partBytes-20e6) > 1 {
			t.Fatalf("split %d covers %v bytes, want 20e6", i, partBytes)
		}
		total += partBytes
		recs += len(s.records)
	}
	if math.Abs(total-140e6) > 1 || recs != 14 {
		t.Fatalf("splits cover %v bytes / %d records, want 140e6 / 14", total, recs)
	}
}

func TestMakeSplitsSingleOversizedBlock(t *testing.T) {
	// One giant block split 5 ways: each split gets exactly one part of the
	// same block, tiling it in order.
	blocks := mkBlocks([]float64{500e6}, 25)
	splits := makeSplits(blocks, 5)
	if len(splits) != 5 {
		t.Fatalf("splits = %d, want 5", len(splits))
	}
	for i, s := range splits {
		if len(s.parts) != 1 || s.parts[0].block != blocks[0] {
			t.Fatalf("split %d parts = %+v, want one range of the single block", i, s.parts)
		}
		if math.Abs(s.parts[0].bytes-100e6) > 1 {
			t.Fatalf("split %d covers %v bytes, want 100e6", i, s.parts[0].bytes)
		}
		if len(s.records) != 5 {
			t.Fatalf("split %d records = %d, want 5", i, len(s.records))
		}
		if s.primary() != blocks[0] {
			t.Fatalf("split %d primary mismatch", i)
		}
	}
}

func TestMakeSplitsZeroSizeRecordsOnBoundary(t *testing.T) {
	// Zero-size records sitting exactly on a split boundary must land in
	// exactly one split (the one starting at that byte position) and never
	// be lost or duplicated.
	b := &hdfs.Block{ID: 1, Index: 0, Size: 100}
	b.Records = []hdfs.Record{
		{Key: "a", Size: 50},
		{Key: "marker1", Size: 0}, // at byte 50, the boundary of 2 splits
		{Key: "marker2", Size: 0},
		{Key: "b", Size: 50},
	}
	splits := makeSplits([]*hdfs.Block{b}, 2)
	if len(splits) != 2 {
		t.Fatalf("splits = %d, want 2", len(splits))
	}
	seen := map[string]int{}
	for _, s := range splits {
		for _, r := range s.records {
			seen[r.Key]++
		}
	}
	for _, key := range []string{"a", "marker1", "marker2", "b"} {
		if seen[key] != 1 {
			t.Fatalf("record %q appears %d times across splits, want 1", key, seen[key])
		}
	}
	// Byte position 50 belongs to the second split (int(50/50) == 1).
	if len(splits[0].records) != 1 || splits[0].records[0].Key != "a" {
		t.Fatalf("first split records = %v", splits[0].records)
	}
	if len(splits[1].records) != 3 {
		t.Fatalf("second split records = %v", splits[1].records)
	}
}

func TestSplitPrimaryIsLargestContribution(t *testing.T) {
	blocks := mkBlocks([]float64{10e6, 90e6}, 1)
	splits := makeSplits(blocks, 1)
	if len(splits) != 1 {
		t.Fatalf("splits = %d", len(splits))
	}
	if splits[0].primary() != blocks[1] {
		t.Fatal("primary should be the block contributing the most bytes")
	}
}
