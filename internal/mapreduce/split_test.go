package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"vhadoop/internal/hdfs"
)

func mkBlocks(sizes []float64, recsPerBlock int) []*hdfs.Block {
	blocks := make([]*hdfs.Block, len(sizes))
	id := 0
	for i, sz := range sizes {
		b := &hdfs.Block{ID: i + 1, Index: i, Size: sz}
		for r := 0; r < recsPerBlock; r++ {
			id++
			b.Records = append(b.Records, hdfs.Record{
				Key:  "r",
				Size: sz / float64(recsPerBlock),
			})
		}
		blocks[i] = b
	}
	return blocks
}

func TestMakeSplitsDefaultOnePerBlock(t *testing.T) {
	blocks := mkBlocks([]float64{64e6, 64e6, 32e6}, 4)
	splits := makeSplits(blocks, 0)
	if len(splits) != 3 {
		t.Fatalf("splits = %d, want 3", len(splits))
	}
	for i, s := range splits {
		if s.size != blocks[i].Size {
			t.Fatalf("split %d size %v != block size %v", i, s.size, blocks[i].Size)
		}
		if len(s.records) != 4 {
			t.Fatalf("split %d records = %d", i, len(s.records))
		}
		if s.primary() != blocks[i] {
			t.Fatalf("split %d primary mismatch", i)
		}
	}
}

func TestMakeSplitsOverrideTilesBytes(t *testing.T) {
	blocks := mkBlocks([]float64{100e6, 100e6}, 10)
	splits := makeSplits(blocks, 5)
	if len(splits) != 5 {
		t.Fatalf("splits = %d, want 5", len(splits))
	}
	var totalBytes float64
	totalRecs := 0
	for _, s := range splits {
		var partBytes float64
		for _, part := range s.parts {
			partBytes += part.bytes
		}
		if math.Abs(partBytes-40e6) > 1 {
			t.Fatalf("split covers %v bytes, want 40e6", partBytes)
		}
		totalBytes += partBytes
		totalRecs += len(s.records)
	}
	if math.Abs(totalBytes-200e6) > 1 {
		t.Fatalf("splits cover %v bytes", totalBytes)
	}
	if totalRecs != 20 {
		t.Fatalf("splits carry %d records, want 20", totalRecs)
	}
}

// Property: for any block sizes and any map count, splits tile the input
// exactly and no record is lost or duplicated.
func TestMakeSplitsConservationProperty(t *testing.T) {
	prop := func(sizesRaw []uint16, numMapsRaw uint8) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 12 {
			sizesRaw = sizesRaw[:12]
		}
		sizes := make([]float64, len(sizesRaw))
		var want float64
		for i, s := range sizesRaw {
			sizes[i] = float64(s%1000+1) * 1e5
			want += sizes[i]
		}
		blocks := mkBlocks(sizes, 3)
		numMaps := int(numMapsRaw % 20) // 0 = default
		splits := makeSplits(blocks, numMaps)
		var got float64
		recs := 0
		for _, s := range splits {
			for _, part := range s.parts {
				if part.bytes < 0 {
					return false
				}
				got += part.bytes
			}
			recs += len(s.records)
		}
		return math.Abs(got-want) < 1 && recs == 3*len(blocks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPrimaryIsLargestContribution(t *testing.T) {
	blocks := mkBlocks([]float64{10e6, 90e6}, 1)
	splits := makeSplits(blocks, 1)
	if len(splits) != 1 {
		t.Fatalf("splits = %d", len(splits))
	}
	if splits[0].primary() != blocks[1] {
		t.Fatal("primary should be the block contributing the most bytes")
	}
}
