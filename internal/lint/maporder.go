package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags iteration over Go maps in determinism-critical
// packages. Map iteration order varies run to run, so any map-ordered
// loop whose effect depends on visit order (floating-point
// accumulation, tie-breaking, output ordering, event scheduling) breaks
// the platform's bit-identical-replay guarantee.
//
// A range over a map is accepted without annotation when the loop body
// is provably order-insensitive:
//
//   - it only collects keys/values into local slices that are passed to
//     a sort.*/slices.Sort* call later in the same function (sorted sink);
//   - it only writes m2[k] = ... under the range key (distinct keys),
//     deletes from the ranged map, or sets boolean flags to constants;
//   - it only accumulates integers with commutative operators
//     (+=, -=, |=, &=, ^=, *=, ++, --);
//   - it only returns constants (existence checks).
//
// Anything else needs an explicit //vhlint:allow maporder -- <reason>.
// Calls to maps.Keys/maps.Values/maps.All are flagged unless wrapped
// directly in slices.Sorted/SortedFunc/SortedStableFunc.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "flag nondeterministic map iteration in determinism-critical packages",
	AppliesTo: determinismCritical,
	Run:       runMapOrder,
}

// determinismCritical marks the packages whose behaviour feeds
// fixed-seed experiment results: the simulator core, the virtual
// cluster layers, the workloads/ML stack and the CLI that reports them.
func determinismCritical(pkgPath string) bool {
	return internalPkg(pkgPath, "vhadoop", "internal", "cmd")
}

func runMapOrder(pass *Pass) {
	walkStack(pass, func(n ast.Node, stack []ast.Node) bool {
		if rs, isMap := mapRangeStmt(pass, n); isMap {
			if !orderInsensitiveMapRange(pass, rs, enclosingFuncDecl(stack)) {
				pass.Reportf(rs.For, "range over map %s: iteration order is nondeterministic; sort keys, keep an ordered slice, or annotate //vhlint:allow maporder -- <reason>", types.ExprString(rs.X))
			}
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn := calleeFunc(pass, call)
			for _, name := range [...]string{"Keys", "Values", "All"} {
				if isPkgFunc(fn, "maps", name) && !insideSortedCall(pass, stack) {
					pass.Reportf(call.Pos(), "maps.%s yields entries in nondeterministic order; wrap in slices.Sorted or iterate an ordered slice", name)
				}
			}
		}
		return true
	})
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// insideSortedCall reports whether the innermost enclosing call is
// slices.Sorted / slices.SortedFunc / slices.SortedStableFunc.
func insideSortedCall(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(pass, call)
		for _, name := range [...]string{"Sorted", "SortedFunc", "SortedStableFunc"} {
			if isPkgFunc(fn, "slices", name) {
				return true
			}
		}
		return false // some other call consumes the iterator unsorted
	}
	return false
}

// mapRangeChecker classifies one map-range body.
type mapRangeChecker struct {
	pass      *Pass
	rs        *ast.RangeStmt
	keyObj    types.Object          // the range key variable, if named
	rangedObj types.Object          // the ranged map, if a plain identifier
	locals    map[types.Object]bool // variables declared inside the body
	crossIter map[types.Object]bool // outer variables mutated by the body
	sinks     map[types.Object]bool // append targets needing a later sort
}

// orderInsensitiveMapRange reports whether every effect of the range
// body is independent of map visit order, per the heuristics on
// MapOrder's doc comment.
func orderInsensitiveMapRange(pass *Pass, rs *ast.RangeStmt, encl *ast.FuncDecl) bool {
	c := &mapRangeChecker{
		pass:      pass,
		rs:        rs,
		keyObj:    definedObj(pass, rs.Key),
		rangedObj: identObj(pass, rs.X),
		locals:    make(map[types.Object]bool),
		crossIter: make(map[types.Object]bool),
		sinks:     make(map[types.Object]bool),
	}
	// Variables declared inside the body (including nested loops) are
	// per-iteration state; mutating them never leaks across iterations.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
		return true
	})
	if c.keyObj != nil {
		c.locals[c.keyObj] = true
	}
	if vo := definedObj(pass, rs.Value); vo != nil {
		c.locals[vo] = true
	}
	// Outer variables written by the body carry state across iterations:
	// reading them inside the loop is order-dependent.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if obj := identObj(pass, lhs); obj != nil && !c.locals[obj] {
					c.crossIter[obj] = true
				}
			}
		case *ast.IncDecStmt:
			if obj := identObj(pass, s.X); obj != nil && !c.locals[obj] {
				c.crossIter[obj] = true
			}
		}
		return true
	})
	if !c.stmtsOK(rs.Body.List) {
		return false
	}
	// Every sink slice must reach a sort before the function ends.
	for obj := range c.sinks {
		if !sortedAfter(pass, encl, rs, obj) {
			return false
		}
	}
	return true
}

func definedObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Defs[id]
}

func (c *mapRangeChecker) stmtsOK(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *mapRangeChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.DeclStmt:
		return true
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IncDecStmt:
		obj := identObj(c.pass, s.X)
		if obj != nil && c.locals[obj] {
			return true
		}
		tv, ok := c.pass.TypesInfo.Types[s.X]
		return ok && isIntegerType(tv.Type)
	case *ast.ExprStmt:
		return c.deleteFromRanged(s.X) || c.sortOfLocal(s.X)
	case *ast.BlockStmt:
		return c.stmtsOK(s.List)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if usesAnyObj(c.pass, s.Cond, c.crossIter) {
			return false
		}
		if !c.stmtsOK(s.Body.List) {
			return false
		}
		if s.Else != nil {
			return c.stmtOK(s.Else)
		}
		return true
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !isConstExpr(c.pass, r) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.RangeStmt:
		return !usesAnyObj(c.pass, s.X, c.crossIter) && c.stmtsOK(s.Body.List)
	case *ast.ForStmt:
		for _, sub := range []ast.Node{s.Init, s.Cond, s.Post} {
			if usesAnyObj(c.pass, sub, c.crossIter) {
				return false
			}
		}
		return c.stmtsOK(s.Body.List)
	default:
		return false
	}
}

func (c *mapRangeChecker) assignOK(a *ast.AssignStmt) bool {
	switch a.Tok {
	case token.DEFINE:
		for _, rhs := range a.Rhs {
			if usesAnyObj(c.pass, rhs, c.crossIter) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		if len(a.Lhs) != 1 {
			return false
		}
		if usesAnyObj(c.pass, a.Rhs[0], c.crossIter) {
			return false
		}
		if obj := identObj(c.pass, a.Lhs[0]); obj != nil && c.locals[obj] {
			return true
		}
		// m2[k] op= v under the range key updates a distinct slot per
		// iteration, so visit order cannot reorder any single slot's
		// accumulation — fine for floats too.
		if idx, ok := ast.Unparen(a.Lhs[0]).(*ast.IndexExpr); ok {
			return c.keyObj != nil && usesObj(c.pass, idx.Index, c.keyObj) &&
				!usesAnyObj(c.pass, idx.X, c.crossIter)
		}
		tv, ok := c.pass.TypesInfo.Types[a.Lhs[0]]
		return ok && isIntegerType(tv.Type) // int accumulation commutes; float does not
	case token.ASSIGN:
		if len(a.Lhs) != len(a.Rhs) {
			return false
		}
		for i, lhs := range a.Lhs {
			if !c.plainAssignOK(lhs, a.Rhs[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (c *mapRangeChecker) plainAssignOK(lhs, rhs ast.Expr) bool {
	// s = append(s, ...): a sink, valid only if sorted later. The target
	// may be a plain variable or a field path (m.Labels). Checked before
	// the cross-iteration read test, which the self-referencing append
	// would otherwise fail.
	if obj, path := pathObj(c.pass, lhs); obj != nil && !c.locals[obj] {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			fid, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
			if isIdent && fid.Name == "append" && isBuiltin(c.pass, fid) && len(call.Args) > 0 {
				argObj, argPath := pathObj(c.pass, call.Args[0])
				if argObj == obj && argPath == path {
					for _, arg := range call.Args[1:] {
						if usesAnyObj(c.pass, arg, c.crossIter) {
							return false
						}
					}
					c.sinks[obj] = true
					return true
				}
			}
		}
	}
	if usesAnyObj(c.pass, rhs, c.crossIter) {
		return false
	}
	// Local (per-iteration) targets are always fine.
	if obj := identObj(c.pass, lhs); obj != nil && c.locals[obj] {
		return true
	}
	// m2[k] = ...: the range key makes each write hit a distinct slot.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		return c.keyObj != nil && usesObj(c.pass, idx.Index, c.keyObj) &&
			!usesAnyObj(c.pass, idx.X, c.crossIter)
	}
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		tv, typed := c.pass.TypesInfo.Types[lhs]
		// flag = true / flag = false: idempotent regardless of order.
		if typed && isBoolConst(c.pass, rhs) {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
				return true
			}
		}
	}
	return false
}

// sortOfLocal accepts sort.*/slices.Sort* calls whose arguments touch
// only per-iteration locals (e.g. sorting the range value slice before
// collecting it): the mutation is confined to one iteration's state.
func (c *mapRangeChecker) sortOfLocal(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !isSortCall(c.pass, call) {
		return false
	}
	for _, arg := range call.Args {
		localOnly := true
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && !c.locals[v] && !v.IsField() {
					localOnly = false
				}
			}
			return localOnly
		})
		if !localOnly {
			return false
		}
	}
	return true
}

// deleteFromRanged accepts delete(m, k) on the ranged map itself.
func (c *mapRangeChecker) deleteFromRanged(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "delete" || !isBuiltin(c.pass, fid) {
		return false
	}
	return c.rangedObj != nil && identObj(c.pass, call.Args[0]) == c.rangedObj
}

// pathObj resolves a plain identifier or a selector chain of
// identifiers (x, x.f, x.f.g) to its final object plus a printed path
// for structural comparison. Anything else yields nil.
func pathObj(pass *Pass, e ast.Expr) (types.Object, string) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return identObj(pass, v), v.Name
	case *ast.SelectorExpr:
		base, path := pathObj(pass, v.X)
		if base == nil {
			return nil, ""
		}
		if obj := pass.TypesInfo.Uses[v.Sel]; obj != nil {
			return obj, path + "." + v.Sel.Name
		}
	}
	return nil, ""
}

// isBuiltin reports whether id resolves to the predeclared builtin of
// the same name (rather than a shadowing declaration).
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && (tv.Value != nil || tv.IsNil())
}

func isBoolConst(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (id.Name == "true" || id.Name == "false") && isConstExpr(pass, e)
}

// sortedAfter reports whether a sort.* / slices.Sort* call referencing
// obj appears after rs in the enclosing function.
func sortedAfter(pass *Pass, encl *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	if encl == nil || encl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObj(pass, arg, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	sortFuncs := map[string][]string{
		"sort":   {"Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable"},
		"slices": {"Sort", "SortFunc", "SortStableFunc"},
	}
	for pkg, names := range sortFuncs {
		for _, name := range names {
			if isPkgFunc(fn, pkg, name) {
				return true
			}
		}
	}
	return false
}
