package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestDetFlow(t *testing.T) {
	linttest.Run(t, lint.DetFlow, "detflow")
}
