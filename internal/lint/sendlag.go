package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SendLag flags cross-domain scheduling calls whose constant delay is
// provably below the engine's lookahead floor. Proc.Send and
// Proc.SpawnOnAfter are the only shard-legal ways to schedule work on
// another domain, and both are runtime-checked against the engine
// lookahead: a delay under it would land inside the current
// conservative window and break the shard ordering proof, so the
// engine panics. A delay that is a compile-time constant below
// sim.DefaultLookahead can never pass that check on a default-
// configured engine, so the panic is provable statically.
//
// Provability stops at constants: the platform lowers the runtime
// lookahead to fabric.MinLatency(), a value the linter cannot see, so
// non-constant delays (and constants at or above the floor, which
// depend on the configured lookahead) are runtime territory
// (DESIGN.md §13). A send whose domain argument is the sender's own
// <proc>.Domain() is exempt: same-domain scheduling has no lookahead
// bound.
var SendLag = &Analyzer{
	Name:      "sendlag",
	Doc:       "flag Proc.Send/Proc.SpawnOnAfter calls whose constant delay is provably below the engine lookahead floor",
	AppliesTo: spawnCritical,
	Run:       runSendLag,
}

// SendLagFloor mirrors sim.DefaultLookahead — the tightest lookahead
// any engine runs with, and therefore the only statically sound bound.
// TestSendLagFloorMatchesSim pins the two constants together.
const SendLagFloor = 1e-6

func runSendLag(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != simPkgPath || recvNameOf(fn) != "Proc" {
				return true
			}
			var domArg, delayArg ast.Expr
			switch fn.Name() {
			case "Send": // Send(dom, d, fn)
				if len(call.Args) != 3 {
					return true
				}
				domArg, delayArg = call.Args[0], call.Args[1]
			case "SpawnOnAfter": // SpawnOnAfter(dom, d, name, fn)
				if len(call.Args) != 4 {
					return true
				}
				domArg, delayArg = call.Args[0], call.Args[1]
			default:
				return true
			}
			d, ok := constantFloat(pass, delayArg)
			if !ok || d >= SendLagFloor {
				return true
			}
			if selfDomainSend(pass, call, domArg) {
				return true
			}
			pass.Reportf(call.Pos(), "constant delay %g is below the engine's lookahead floor %g (sim.DefaultLookahead): a cross-domain %s this tight lands inside the conservative window and panics at runtime; delay at least the platform lookahead, or annotate //vhlint:allow sendlag -- <reason>",
				d, float64(SendLagFloor), fn.Name())
			return true
		})
	}
}

// constantFloat folds an expression to a float constant when possible.
func constantFloat(pass *Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

// selfDomainSend reports whether domArg is <recv>.Domain() of the same
// proc the Send/SpawnOnAfter is invoked on — a same-domain schedule,
// which the runtime exempts from the lookahead bound.
func selfDomainSend(pass *Pass, call *ast.CallExpr, domArg ast.Expr) bool {
	dcall, ok := ast.Unparen(domArg).(*ast.CallExpr)
	if !ok {
		return false
	}
	dfn := staticCallee(pass.TypesInfo, dcall)
	if dfn == nil || dfn.Pkg() == nil || dfn.Pkg().Path() != simPkgPath ||
		recvNameOf(dfn) != "Proc" || dfn.Name() != "Domain" {
		return false
	}
	return sameIdentObj(pass, recvExpr(dcall), recvExpr(call))
}

// recvExpr returns the receiver expression of a method call, or nil.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// sameIdentObj reports whether two expressions are uses of the same
// simple identifier's object.
func sameIdentObj(pass *Pass, a, b ast.Expr) bool {
	ida, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	idb, ok := ast.Unparen(b).(*ast.Ident)
	if !ok {
		return false
	}
	var oa, ob types.Object = pass.TypesInfo.Uses[ida], pass.TypesInfo.Uses[idb]
	return oa != nil && oa == ob
}
