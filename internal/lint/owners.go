package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared ownership machinery behind the globalstate and
// xdomain analyzers and the -owners sharding-readiness ledger.
//
// Simulator state is partitioned into ownership domains — the shard
// boundaries a parallel DES engine would cut along:
//
//	machine  state confined to one physical machine and the VMs on it
//	         (phys.Machine, xen.VM, per-VM daemons, datanode storage)
//	vnet     the shared network fabric (links, flows, rate allocation)
//	engine   the simulation core itself (clock, event queue, hand-off);
//	         calls into it are the sanctioned cross-domain surface
//	shared   explicitly cross-shard state (jobtracker bookkeeping,
//	         namenode metadata, observability); writable from anywhere,
//	         and the inventory of what sharding must redesign
//
// A domain is assigned by a //vhlint:owner <domain> annotation on a type
// declaration, struct field, package-level var, or function declaration
// (a function annotation fixes the domain context its body runs in — a
// per-VM daemon loop that happens to be a method on a shared scheduler,
// say). Unannotated state is inferred: the domain root types below, then
// the defining package's default domain, then shared for module-local
// code. The written-state domain of an lvalue is resolved by walking its
// selector chain leaf-inward and taking the first field annotation or
// known container type domain — so vm.mgr.fabric.flows is vnet state
// even though the chain roots at a machine-domain VM.
//
// Every function has a per-call-site ownership summary packed into
// 64-bit masks, computed bottom-up over the call graph exactly like
// detflow's taint summaries, so whole-tree analysis stays linear:
//
//	writes      domains of state the function mutates, counting only
//	            writes that match its own context domain — a write that
//	            crosses a boundary is reported (or waived) at the frame
//	            where the crossing happens and is not re-billed to every
//	            caller above it
//	writeParams bit i: mutates state rooted at argument i whose domain
//	            only the call site can resolve
//	globals     bit k: mutates the k-th interned package-level var
//	fresh       every return value is freshly constructed, so writes to
//	            locals holding it are construction, not mutation

// Domain names accepted by //vhlint:owner.
const (
	DomainMachine = "machine"
	DomainVnet    = "vnet"
	DomainEngine  = "engine"
	DomainShared  = "shared"
)

// DomainNames returns the valid //vhlint:owner domains.
func DomainNames() []string {
	return []string{DomainEngine, DomainMachine, DomainShared, DomainVnet}
}

func knownDomain(name string) bool {
	for _, d := range DomainNames() {
		if d == name {
			return true
		}
	}
	return false
}

// domainBit maps a domain name to its summary bit.
func domainBit(domain string) uint64 {
	switch domain {
	case DomainMachine:
		return 1 << 0
	case DomainVnet:
		return 1 << 1
	case DomainEngine:
		return 1 << 2
	case DomainShared:
		return 1 << 3
	}
	return 0
}

// domainsOf lists the domain names present in a writes mask.
func domainsOf(mask uint64) []string {
	var out []string
	for _, d := range []string{DomainMachine, DomainVnet, DomainEngine, DomainShared} {
		if mask&domainBit(d) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// domainRoots are the types whose reachable state defines a domain even
// without annotation: the inference roots of the ownership model.
var domainRoots = map[string]string{
	"vhadoop/internal/sim.Engine":   DomainEngine,
	"vhadoop/internal/sim.Proc":     DomainEngine,
	"vhadoop/internal/phys.Machine": DomainMachine,
	"vhadoop/internal/xen.VM":       DomainMachine,
	"vhadoop/internal/vnet.Link":    DomainVnet,
	"vhadoop/internal/vnet.Fabric":  DomainVnet,
	"vhadoop/internal/vnet.Flow":    DomainVnet,
}

// domainDefaults assigns whole packages a default domain; module-local
// packages not listed here default to shared (coordinator/metadata code).
var domainDefaults = map[string]string{
	"vhadoop/internal/sim":  DomainEngine,
	"vhadoop/internal/phys": DomainMachine,
	"vhadoop/internal/xen":  DomainMachine,
	"vhadoop/internal/vnet": DomainVnet,
}

// pkgDefaultDomain returns the default domain of a package path, or ""
// for packages outside the module (stdlib state carries no domain).
func pkgDefaultDomain(path string) string {
	if d, ok := domainDefaults[path]; ok {
		return d
	}
	if internalPkg(path, "vhadoop", "internal", "cmd", "examples") || strings.HasPrefix(path, "test/") {
		return DomainShared
	}
	if path == "vhadoop" {
		return DomainShared
	}
	return ""
}

// domainKey renders a stable human/ledger key for an object: the package
// path with the module prefix trimmed, dot, the object name.
func domainKey(pkgPath, name string) string {
	p := strings.TrimPrefix(pkgPath, "vhadoop/internal/")
	p = strings.TrimPrefix(p, "vhadoop/")
	return p + "." + name
}

// ownerIndex is one package's parsed //vhlint:owner annotations: the
// domain of each annotated type, struct field, package-level var and
// function object, plus the directive positions that found a home (for
// vhdirective's attachment check).
type ownerIndex struct {
	domains map[types.Object]string
	claimed map[token.Pos]bool
	kinds   map[types.Object]string // "type" | "field" | "var" | "func"
	keys    map[types.Object]string // display key within the package (Type.field, Recv.Method)
}

// ownerIndex builds (once) the package's owner annotation index.
func (p *Package) ownerIndex() *ownerIndex {
	if p.owners != nil {
		return p.owners
	}
	idx := &ownerIndex{
		domains: make(map[types.Object]string),
		claimed: make(map[token.Pos]bool),
		kinds:   make(map[types.Object]string),
		keys:    make(map[types.Object]string),
	}
	p.owners = idx

	owners := make([]*Directive, 0, 8)
	for _, d := range p.Directives() {
		if d.Kind == DirectiveOwner {
			owners = append(owners, d)
		}
	}
	if len(owners) == 0 {
		return idx
	}
	// claim assigns every owner directive inside the comment group to obj.
	claim := func(cg *ast.CommentGroup, obj types.Object, kind, key string) {
		if cg == nil || obj == nil {
			return
		}
		for _, d := range owners {
			if d.TokPos >= cg.Pos() && d.TokPos <= cg.End() {
				idx.domains[obj] = d.Domain
				idx.claimed[d.TokPos] = true
				idx.kinds[obj] = kind
				idx.keys[obj] = key
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				fkey := decl.Name.Name
				if fn, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
					fkey = strings.TrimPrefix(funcKey(fn), strings.TrimPrefix(p.Path, "vhadoop/internal/")+".")
				}
				claim(decl.Doc, p.Info.Defs[decl.Name], "func", fkey)
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						obj := p.Info.Defs[spec.Name]
						claim(decl.Doc, obj, "type", spec.Name.Name)
						claim(spec.Doc, obj, "type", spec.Name.Name)
						claim(spec.Comment, obj, "type", spec.Name.Name)
						if st, ok := spec.Type.(*ast.StructType); ok {
							for _, field := range st.Fields.List {
								for _, name := range field.Names {
									fkey := spec.Name.Name + "." + name.Name
									claim(field.Doc, p.Info.Defs[name], "field", fkey)
									claim(field.Comment, p.Info.Defs[name], "field", fkey)
								}
							}
						}
					case *ast.ValueSpec:
						if decl.Tok != token.VAR {
							continue
						}
						for _, name := range spec.Names {
							obj := p.Info.Defs[name]
							if v, ok := obj.(*types.Var); !ok || v.Parent() != p.Types.Scope() {
								continue // only package-level vars carry domains
							}
							claim(decl.Doc, obj, "var", name.Name)
							claim(spec.Doc, obj, "var", name.Name)
							claim(spec.Comment, obj, "var", name.Name)
						}
					}
				}
			}
		}
	}
	return idx
}

// annotatedDomain looks up the //vhlint:owner domain of obj in its
// defining package, or "".
func (ip *interproc) annotatedDomain(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := ip.packageFor(obj.Pkg())
	if pkg == nil {
		return ""
	}
	return pkg.ownerIndex().domains[obj]
}

// typeDomain resolves the ownership domain of a type: annotation on the
// named type, then the root table, then the defining package's default.
// The second result is the ledger key of the carrier ("" when unowned).
func (ip *interproc) typeDomain(t types.Type) (string, string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			return ip.typeDomain(p.Elem())
		}
		return "", ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	key := domainKey(obj.Pkg().Path(), obj.Name())
	if d := ip.annotatedDomain(obj); d != "" {
		return d, key
	}
	if d, ok := domainRoots[obj.Pkg().Path()+"."+obj.Name()]; ok {
		return d, key
	}
	if d := pkgDefaultDomain(obj.Pkg().Path()); d != "" {
		return d, key
	}
	return "", ""
}

// isPkgLevelVar reports whether obj is a package-level variable.
func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// varDomain resolves the domain of a package-level var: annotation, then
// the defining package's default.
func (ip *interproc) varDomain(v types.Object) (string, string) {
	key := domainKey(v.Pkg().Path(), v.Name())
	if d := ip.annotatedDomain(v); d != "" {
		return d, key
	}
	return pkgDefaultDomain(v.Pkg().Path()), key
}

// ctxDomain resolves the domain context a function's body runs in: the
// //vhlint:owner annotation on the declaration, else the receiver type's
// domain, else the package default. This is the contract every write in
// the body is checked against.
func (ip *interproc) ctxDomain(pkg *Package, fd *ast.FuncDecl) string {
	if obj := pkg.Info.Defs[fd.Name]; obj != nil {
		if d := ip.annotatedDomain(obj); d != "" {
			return d
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]; ok && tv.Type != nil {
			if d, _ := ip.typeDomain(tv.Type); d != "" {
				return d
			}
		}
	}
	return pkgDefaultDomain(pkg.Path)
}

// writeTarget is the resolved ownership of one lvalue (or mutated call
// argument).
type writeTarget struct {
	domain string       // owning domain, "" when unowned
	key    string       // ledger key of the carrier (type, field or var)
	root   types.Object // the identifier the chain bottoms out at, if any
	atRoot bool         // the domain was resolved from root's own type
	global types.Object // set when the chain roots at a package-level var
}

// resolveWrite resolves the ownership of the state mutated by writing
// through e. The chain is walked leaf-inward: a field annotation wins,
// then the static type of each containing expression, so the resolution
// lands on the nearest owned container rather than the syntactic root.
func (ip *interproc) resolveWrite(pkg *Package, e ast.Expr) writeTarget {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if obj == nil {
			return writeTarget{}
		}
		if isPkgLevelVar(obj) {
			d, key := ip.varDomain(obj)
			return writeTarget{domain: d, key: key, root: obj, atRoot: true, global: obj}
		}
		if v, ok := obj.(*types.Var); ok {
			d, key := ip.typeDomain(v.Type())
			return writeTarget{domain: d, key: key, root: obj, atRoot: true}
		}
		return writeTarget{}
	case *ast.SelectorExpr:
		// Field annotation on the selected field is the most specific owner.
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			fieldObj := sel.Obj()
			if d := ip.annotatedDomain(fieldObj); d != "" {
				key := ""
				if fieldObj.Pkg() != nil {
					key = domainKey(fieldObj.Pkg().Path(), recvTypeName(sel)+"."+fieldObj.Name())
				}
				return writeTarget{domain: d, key: key}
			}
		}
		if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
			if d, key := ip.typeDomain(tv.Type); d != "" {
				t := ip.resolveWrite(pkg, e.X)
				return writeTarget{domain: d, key: key, root: t.root, atRoot: isIdentExpr(e.X), global: t.global}
			}
		}
		return ip.resolveWrite(pkg, e.X)
	case *ast.IndexExpr:
		if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
			if d, key := ip.typeDomain(tv.Type); d != "" {
				t := ip.resolveWrite(pkg, e.X)
				return writeTarget{domain: d, key: key, root: t.root, atRoot: isIdentExpr(e.X), global: t.global}
			}
		}
		return ip.resolveWrite(pkg, e.X)
	case *ast.StarExpr:
		if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
			if d, key := ip.typeDomain(tv.Type); d != "" {
				t := ip.resolveWrite(pkg, e.X)
				return writeTarget{domain: d, key: key, root: t.root, atRoot: isIdentExpr(e.X), global: t.global}
			}
		}
		return ip.resolveWrite(pkg, e.X)
	case *ast.CallExpr, *ast.CompositeLit:
		// Writing through a call result or a literal mutates a value no
		// one else can name yet.
		return writeTarget{}
	}
	return writeTarget{}
}

// recvTypeName extracts the receiver type name of a field selection for
// ledger keys ("Tracker" in mapreduce.Tracker.lastHB).
func recvTypeName(sel *types.Selection) string {
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return "?"
}

func isIdentExpr(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// --- ownership summaries ---------------------------------------------

const maxOwnGlobals = 63 // bit 63 is the overflow bucket

// ownSummary is one function's ownership behaviour as seen from a call
// site: three 64-bit masks plus the fresh-constructor bit.
type ownSummary struct {
	writes      uint64 // domain bits of own-context state mutated
	writeParams uint64 // bit i: mutates state rooted at argument i (receiver-first)
	globals     uint64 // bit k: mutates interned package-level var k
	fresh       bool   // all results freshly constructed
}

// internGlobal assigns (once) a summary bit to a package-level var.
// Interning order follows analysis order, which is deterministic per
// run; bit 63 is shared by every var past the first 63.
func (ip *interproc) internGlobal(v types.Object) int {
	if i, ok := ip.globalIdx[v]; ok {
		return i
	}
	i := len(ip.globalOrder)
	if i >= maxOwnGlobals {
		i = maxOwnGlobals
	} else {
		ip.globalOrder = append(ip.globalOrder, v)
	}
	ip.globalIdx[v] = i
	return i
}

// globalNames renders the var names in a globals mask, sorted.
func (ip *interproc) globalNames(mask uint64) []string {
	var out []string
	for i, v := range ip.globalOrder {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, domainKey(v.Pkg().Path(), v.Name()))
		}
	}
	if mask&(1<<maxOwnGlobals) != 0 {
		out = append(out, "…")
	}
	sort.Strings(out)
	return out
}

// ownSummaryFor computes (once) the ownership summary of fn, or nil
// when fn has no module-local source. Recursion resolves optimistically,
// like detflow.
func (ip *interproc) ownSummaryFor(fn *types.Func) *ownSummary {
	if s, ok := ip.ownSummaries[fn]; ok {
		return s
	}
	n := ip.node(fn)
	if n == nil {
		return nil
	}
	if ip.ownBusy[fn] {
		return &ownSummary{}
	}
	ip.ownBusy[fn] = true
	s := &ownSummary{}
	if n.decl.Body != nil {
		w := newOwnWalker(n.pkg, ip, n.decl)
		w.summary = s
		w.run()
		s.fresh = computeFresh(ip, n, w.freshLocals)
	}
	delete(ip.ownBusy, fn)
	ip.ownSummaries[fn] = s
	return s
}

// computeFresh reports whether every return statement of n returns only
// freshly constructed values.
func computeFresh(ip *interproc, n *cgNode, freshLocals map[types.Object]bool) bool {
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	fresh := true
	sawReturn := false
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if !fresh {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		r, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(r.Results) == 0 {
			fresh = false // naked return: named results are not tracked
			return true
		}
		for _, res := range r.Results {
			if !isFreshExpr(ip, n.pkg, res, freshLocals) {
				fresh = false
			}
		}
		return true
	})
	return fresh && sawReturn
}

// isFreshExpr reports whether e evaluates to state constructed inside
// the current function (or a callee that only returns fresh state).
func isFreshExpr(ip *interproc, pkg *Package, e ast.Expr, freshLocals map[types.Object]bool) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return isFreshExpr(ip, pkg, e.X, freshLocals)
		}
		return false
	case *ast.Ident:
		if e.Name == "nil" || e.Name == "true" || e.Name == "false" {
			return true
		}
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		return obj != nil && freshLocals[obj]
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "new", "make", "append":
				return true
			}
		}
		if fn := staticCallee(pkg.Info, e); fn != nil {
			if s := ip.ownSummaryFor(fn); s != nil {
				return s.fresh
			}
		}
		return false
	}
	// Basic-typed values (ints, strings, ...) are copies, hence fresh.
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Basic:
			return true
		}
	}
	return false
}
