package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
	"sort"
	"strings"
)

// This file is the spawn-domain inference layer: it decides, for every
// closure handed to the engine's scheduling surface, which ownership
// domains the spawned process would write and whether it can leave the
// Shared domain. It builds on the same callgraph + ownership machinery
// as xdomain, but computes a different summary: xdomain bills each
// cross-domain write to the deepest frame that crosses (and stops
// there), while a spawned closure needs its *full transitive
// footprint* — every domain it or any callee writes, plus whether it
// can reach a Shared-only engine primitive — because that footprint is
// what decides which shard the process may run on.
//
// The classification lattice (DESIGN.md §13):
//
//	confined(dom)    writes state of exactly one shardable domain
//	                 (machine or vnet) and never blocks on a
//	                 Shared-only primitive — migratable to SpawnOn(dom)
//	confined(any)    writes no owned state at all; may run anywhere
//	mixed            writes ≥2 shardable domains with no Shared need —
//	                 split it, or route the minority writes through
//	                 Shared fan-in sends
//	shared-required  writes shared- or engine-domain state, blocks on a
//	                 Shared-only primitive (Done/Gate/Queue waits,
//	                 FairShare, engine scheduling APIs), or mutates a
//	                 variable captured from the spawner's stack
//
// Engine-domain writes count as shared-required because engine state
// is the coordinator's own; machine and vnet are the shardable
// domains. The inference is conservative in the same places ownwalk
// is: dynamic calls and calls without module-local source are assumed
// non-mutating and non-blocking (see DESIGN.md §13 for the limits).

// SpawnDomain infers the ownership-domain footprint of every spawned
// closure and flags the actionable gaps: a confined closure still
// entering through the Shared-implied Spawn/SpawnAfter APIs (the
// migration the sharded engine is waiting on), a mixed closure, and a
// shared-required closure forced onto a non-Shared domain (a runtime
// panic under WithShards). At/After callbacks are inventoried in the
// ledger but never flagged: engine events run on the coordinator by
// design.
var SpawnDomain = &Analyzer{
	Name:      "spawndomain",
	Doc:       "infer the domains spawned closures write; flag migratable, mixed and mis-domained spawn sites",
	AppliesTo: spawnCritical,
	Run:       runSpawnDomain,
}

const simPkgPath = "vhadoop/internal/sim"

// spawnCritical scopes the spawn-site analyzers: every determinism-
// critical package except the engine itself, whose internal scheduling
// calls are the mechanism, not migration targets.
func spawnCritical(pkgPath string) bool {
	return determinismCritical(pkgPath) && pkgPath != simPkgPath
}

// --- Shared-only surface of the sim package --------------------------

// Kinds of sim-package calls as seen from a spawned closure.
const (
	simShardSafe  = iota // legal from any shard process
	simSharedOnly        // runtime-guarded to the Shared domain / engine context
	simWait              // a blocking wait on a Shared-only primitive (blockshared's subset)
)

// simCallKind classifies a call into vhadoop/internal/sim against the
// runtime's Shared-domain guards (engine.go/shard.go/signal.go/
// queue.go/fairshare.go panic paths). The default is simSharedOnly:
// an unknown engine API must prove itself shard-safe, not the other
// way around.
func simCallKind(fn *types.Func) (kind int, prim string) {
	recv := recvNameOf(fn)
	name := fn.Name()
	if recv == "" {
		prim = "sim." + name
	} else {
		prim = "sim." + recv + "." + name
	}
	switch recv {
	case "Proc":
		switch name {
		case "Sleep", "SleepUntil", "Yield", "Now", "Name", "Engine", "Err",
			"Done", "Terminated", "Tracef", "Send", "SpawnOnAfter", "Domain", "Fail":
			return simShardSafe, ""
		}
		return simSharedOnly, prim // Abort (cross-proc control) and anything new
	case "Engine":
		switch name {
		case "Now", "TraceEnabled", "Lookahead", "Shards", "LiveProcs":
			return simShardSafe, ""
		}
		return simSharedOnly, prim // Spawn/At/After/Rand/Tracef/Shutdown/...
	case "Done":
		switch name {
		case "Wait":
			return simWait, prim
		case "Fire":
			return simSharedOnly, prim // wakes Shared-side waiters
		}
		return simShardSafe, ""
	case "Gate":
		switch name {
		case "WaitOpen":
			return simWait, prim
		case "Open", "Close":
			return simSharedOnly, prim
		}
		return simShardSafe, ""
	case "Queue":
		switch name {
		case "Acquire":
			return simWait, prim
		case "Release", "TryAcquire":
			return simSharedOnly, prim
		}
		return simShardSafe, ""
	case "FairShare":
		switch name {
		case "Use", "UseWeighted":
			return simWait, prim
		case "Submit", "SetCapacity":
			return simSharedOnly, prim
		}
		return simShardSafe, ""
	case "Timer":
		if name == "Cancel" {
			return simSharedOnly, prim // mutates the Shared event heap
		}
		return simShardSafe, ""
	case "":
		switch name {
		case "WaitAll", "WaitProcs":
			return simWait, prim
		}
		return simShardSafe, "" // New*, With*, option constructors
	}
	return simSharedOnly, prim
}

// recvNameOf returns the name of fn's receiver type, or "" for
// package-level functions.
func recvNameOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}

// --- transitive spawn summaries --------------------------------------

// spawnBlocker is one Shared-only sim primitive a function (or its
// callees) reaches.
type spawnBlocker struct {
	prim string // "sim.Done.Wait"
	wait bool   // wait-family: Done/Gate/Queue waits, FairShare use
	via  string // call chain from the summarized frame, "" when direct
}

// maxSpawnBlockers caps a summary's blocker list; beyond it every new
// primitive collapses into the count, keeping ledger entries bounded.
const maxSpawnBlockers = 8

// spawnSummary is one function's transitive footprint as seen from a
// spawned closure: every domain it writes regardless of its own
// context (unlike ownSummary.writes, which only counts own-context
// writes and leaves crossings at the deepest frame), plus the
// Shared-only primitives it can reach.
type spawnSummary struct {
	doms      uint64            // domain bits of state written, transitively
	domParams uint64            // bit i: writes state rooted at parameter i
	via       map[string]string // domain → sample call chain ("" = direct write)
	blockers  []spawnBlocker    // deduped by primitive, discovery order
}

func newSpawnSummary() *spawnSummary {
	return &spawnSummary{via: make(map[string]string)}
}

func (s *spawnSummary) addDom(d, via string) {
	if d == "" {
		return
	}
	if s.doms&domainBit(d) == 0 {
		s.doms |= domainBit(d)
		s.via[d] = via
	}
}

func (s *spawnSummary) addBlocker(prim string, wait bool, via string) {
	for i := range s.blockers {
		if s.blockers[i].prim == prim {
			if wait && !s.blockers[i].wait {
				s.blockers[i].wait = true
			}
			return
		}
	}
	if len(s.blockers) < maxSpawnBlockers {
		s.blockers = append(s.blockers, spawnBlocker{prim: prim, wait: wait, via: via})
	}
}

// chainVia prepends a frame to a callee's sample chain, capped at
// three frames so ledger entries stay readable.
func chainVia(head, tail string) string {
	if tail == "" {
		return head
	}
	if strings.Count(tail, " -> ") >= 2 {
		return head
	}
	return head + " -> " + tail
}

// spawnSummaryFor computes (once) the transitive spawn footprint of
// fn, or nil when fn has no module-local source. Recursion resolves
// optimistically, like the other interprocedural summaries.
func (ip *interproc) spawnSummaryFor(fn *types.Func) *spawnSummary {
	if s, ok := ip.spawnSummaries[fn]; ok {
		return s
	}
	n := ip.node(fn)
	if n == nil {
		return nil
	}
	if ip.spawnBusy[fn] {
		return &spawnSummary{}
	}
	ip.spawnBusy[fn] = true
	s := newSpawnSummary()
	if n.decl.Body != nil {
		w := &spawnWalker{
			pkg:         n.pkg,
			ip:          ip,
			sum:         s,
			body:        n.decl.Body,
			paramIdx:    paramIndex(n.pkg, n.decl.Recv, n.decl.Type.Params),
			freshLocals: computeFreshLocals(ip, n.pkg, n.decl.Body),
		}
		w.walk()
	}
	delete(ip.spawnBusy, fn)
	ip.spawnSummaries[fn] = s
	return s
}

// paramIndex assigns receiver-first positions to declared parameters,
// matching ownSummary's writeParams indexing.
func paramIndex(pkg *Package, fls ...*ast.FieldList) map[types.Object]int {
	idx := make(map[types.Object]int)
	i := 0
	for _, fl := range fls {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					idx[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return idx
}

// spawnWalker accumulates a spawn summary over one body: a function
// declaration's, or a spawn-site closure's (captures=true, where
// mutating a variable declared outside the body is a write to the
// spawner's stack — Shared-side state once the closure runs on a
// shard).
type spawnWalker struct {
	pkg         *Package
	ip          *interproc
	sum         *spawnSummary
	body        *ast.BlockStmt
	paramIdx    map[types.Object]int
	freshLocals map[types.Object]bool
	captures    bool
}

func (w *spawnWalker) walk() {
	// Closures handed to the scheduling surface inside this body run as
	// their own processes/events: their footprint is classified at their
	// own spawn site, not billed to this one.
	nested := make(map[*ast.FuncLit]bool)
	for _, st := range spawnSitesIn(w.pkg, w.body) {
		if fl, ok := ast.Unparen(st.cbArg).(*ast.FuncLit); ok {
			nested[fl] = true
		}
	}
	ast.Inspect(w.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if nested[n] {
				return false
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				w.write(lhs)
			}
		case *ast.IncDecStmt:
			w.write(n.X)
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// capturedObj reports whether obj is declared outside the walked body
// (and is not a parameter): for a spawn-site closure that is a
// variable on the spawning function's stack.
func (w *spawnWalker) capturedObj(obj types.Object) bool {
	if !w.captures || obj == nil {
		return false
	}
	if _, isParam := w.paramIdx[obj]; isParam {
		return false
	}
	return obj.Pos() < w.body.Pos() || obj.Pos() > w.body.End()
}

func (w *spawnWalker) write(e ast.Expr) {
	t := w.ip.resolveWrite(w.pkg, e)
	if _, bare := ast.Unparen(e).(*ast.Ident); bare && t.global == nil {
		// Rebinding a local is not a state write — unless the local is
		// captured from the enclosing function.
		if w.capturedObj(t.root) {
			w.sum.addDom(DomainShared, "captured variable "+t.root.Name())
		}
		return
	}
	if t.domain == "" {
		if t.root == nil {
			return
		}
		if i, ok := w.paramIdx[t.root]; ok && i < 64 {
			w.sum.domParams |= 1 << uint(i)
			return
		}
		if w.capturedObj(t.root) {
			w.sum.addDom(DomainShared, "captured variable "+t.root.Name())
		}
		return
	}
	if w.freshRooted(t) {
		return
	}
	w.sum.addDom(t.domain, "")
}

// freshRooted mirrors ownWalker.freshRooted: writes into an object the
// body constructed itself are construction, not mutation.
func (w *spawnWalker) freshRooted(t writeTarget) bool {
	if t.root == nil || !w.freshLocals[t.root] {
		return false
	}
	v, ok := t.root.(*types.Var)
	if !ok {
		return false
	}
	d, _ := w.ip.typeDomain(v.Type())
	return d == t.domain
}

func (w *spawnWalker) call(call *ast.CallExpr) {
	fn := staticCallee(w.pkg.Info, call)
	if fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
			switch id.Name {
			case "delete", "copy", "clear":
				w.write(call.Args[0])
			}
		}
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == simPkgPath {
		if kind, prim := simCallKind(fn); kind != simShardSafe {
			w.sum.addBlocker(prim, kind == simWait, "")
		}
		return
	}
	s := w.ip.spawnSummaryFor(fn)
	if s == nil {
		return // no module-local source: assumed pure (DESIGN.md §13 limits)
	}
	via := funcKey(fn)
	for _, d := range domainsOf(s.doms) {
		w.sum.addDom(d, chainVia(via, s.via[d]))
	}
	for _, b := range s.blockers {
		w.sum.addBlocker(b.prim, b.wait, chainVia(via, b.via))
	}
	if s.domParams != 0 {
		for i, a := range ownCallArgs(w.pkg, call) {
			if i >= 64 {
				break
			}
			if s.domParams>>uint(i)&1 == 0 {
				continue
			}
			t := w.ip.resolveArg(w.pkg, a)
			if t.domain != "" {
				if !w.freshRooted(t) {
					w.sum.addDom(t.domain, via)
				}
			} else if t.root != nil {
				if j, ok := w.paramIdx[t.root]; ok && j < 64 {
					w.sum.domParams |= 1 << uint(j)
				} else if w.capturedObj(t.root) {
					w.sum.addDom(DomainShared, "captured variable "+t.root.Name())
				}
			}
		}
	}
}

// --- spawn sites ------------------------------------------------------

// spawnSite is one scheduling call: a process spawn or an engine
// event. domArg is nil for the Shared-implied APIs; nameArg is nil for
// the name-less At/After.
type spawnSite struct {
	call    *ast.CallExpr
	api     string // Spawn | SpawnAfter | SpawnOn | SpawnOnAfter | At | After
	domArg  ast.Expr
	nameArg ast.Expr
	cbArg   ast.Expr
}

// spawnSitesIn enumerates the scheduling calls in a body, in source
// order.
func spawnSitesIn(pkg *Package, body *ast.BlockStmt) []spawnSite {
	var out []spawnSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != simPkgPath {
			return true
		}
		st := spawnSite{call: call, api: fn.Name()}
		switch fn.Name() {
		case "Spawn":
			if len(call.Args) != 2 {
				return true
			}
			st.nameArg, st.cbArg = call.Args[0], call.Args[1]
		case "SpawnAfter":
			if len(call.Args) != 3 {
				return true
			}
			st.nameArg, st.cbArg = call.Args[1], call.Args[2]
		case "At", "After":
			if len(call.Args) != 2 {
				return true
			}
			st.cbArg = call.Args[1]
		case "SpawnOn":
			if len(call.Args) != 3 {
				return true
			}
			st.domArg, st.nameArg, st.cbArg = call.Args[0], call.Args[1], call.Args[2]
		case "SpawnOnAfter": // Engine and Proc forms share arg positions
			if len(call.Args) != 4 {
				return true
			}
			st.domArg, st.nameArg, st.cbArg = call.Args[0], call.Args[2], call.Args[3]
		default:
			return true
		}
		out = append(out, st)
		return true
	})
	return out
}

// domIsShared reports whether a site's domain argument is provably
// sim.Shared (constant 0). A non-constant domain argument is treated
// as non-Shared: call sites pass machine domains there.
func domIsShared(pkg *Package, e ast.Expr) bool {
	if e == nil {
		return true
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

// procNameOf renders a site's process-name argument: the constant
// string when it folds, "<prefix>*" for literal+dynamic
// concatenations, "*" otherwise.
func procNameOf(pkg *Package, e ast.Expr) string {
	if e == nil {
		return ""
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.ADD {
		if tv, ok := pkg.Info.Types[b.X]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value) + "*"
		}
	}
	return "*"
}

// --- classification ---------------------------------------------------

// Spawn-site classes, in "worst wins" order for ledger aggregation.
const (
	classConfined       = "confined"
	classMixed          = "mixed"
	classSharedRequired = "shared-required"
)

// spawnClass is one site's classification.
type spawnClass struct {
	class    string
	domain   string            // confined target domain; "" = any
	writes   []string          // domains written, sorted
	via      map[string]string // domain → sample chain
	blockers []string          // rendered blockers, sorted
	waits    []spawnBlocker    // wait-family blockers, for blockshared
}

// classifySpawn computes the classification of one spawn site from its
// callback's transitive footprint.
func (ip *interproc) classifySpawn(pkg *Package, st spawnSite) spawnClass {
	var sum *spawnSummary
	if fl, ok := ast.Unparen(st.cbArg).(*ast.FuncLit); ok {
		sum = newSpawnSummary()
		w := &spawnWalker{
			pkg:         pkg,
			ip:          ip,
			sum:         sum,
			body:        fl.Body,
			paramIdx:    paramIndex(pkg, fl.Type.Params),
			freshLocals: computeFreshLocals(ip, pkg, fl.Body),
			captures:    true,
		}
		w.walk()
	} else if fn := callbackFunc(pkg, st.cbArg); fn != nil {
		sum = ip.spawnSummaryFor(fn)
	}
	if sum == nil {
		return spawnClass{
			class:    classSharedRequired,
			blockers: []string{"(unresolved callback)"},
		}
	}
	c := spawnClass{writes: domainsOf(sum.doms), via: sum.via}
	for _, b := range sum.blockers {
		desc := b.prim
		if b.via != "" {
			desc += " via " + b.via
		}
		c.blockers = append(c.blockers, desc)
		if b.wait {
			c.waits = append(c.waits, b)
		}
	}
	sort.Strings(c.blockers)
	shardable := sum.doms &^ (domainBit(DomainShared) | domainBit(DomainEngine))
	switch {
	case len(sum.blockers) > 0 || sum.doms&(domainBit(DomainShared)|domainBit(DomainEngine)) != 0:
		c.class = classSharedRequired
	case bits.OnesCount64(shardable) > 1:
		c.class = classMixed
	default:
		c.class = classConfined
		if ds := domainsOf(shardable); len(ds) == 1 {
			c.domain = ds[0]
		}
	}
	return c
}

// callbackFunc resolves a non-literal callback argument (a named
// function or method value) to its *types.Func, or nil.
func callbackFunc(pkg *Package, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// renderWrites lists a classification's written domains, each with its
// sample frame chain when the write is not direct.
func renderWrites(c spawnClass) []string {
	out := make([]string, 0, len(c.writes))
	for _, d := range c.writes {
		if via := c.via[d]; via != "" {
			out = append(out, d+" via "+via)
		} else {
			out = append(out, d)
		}
	}
	return out
}

// --- the analyzer -----------------------------------------------------

func runSpawnDomain(pass *Pass) {
	ip := pass.pkg.interproc()
	if ip == nil {
		return
	}
	g := ip.graphFor(pass.pkg)
	for _, n := range g.bottomUp() {
		ip.spawnSummaryFor(n.fn)
	}
	for _, n := range g.order {
		if n.decl.Body == nil {
			continue
		}
		for _, st := range spawnSitesIn(pass.pkg, n.decl.Body) {
			if st.api == "At" || st.api == "After" {
				continue // engine events: ledger-only
			}
			c := ip.classifySpawn(pass.pkg, st)
			sharedTarget := domIsShared(pass.pkg, st.domArg)
			switch c.class {
			case classConfined:
				if !sharedTarget {
					continue // already migrated
				}
				if c.domain == "" {
					pass.Reportf(st.call.Pos(), "spawned closure writes no owned state; it is confined by inference — spawn it with SpawnOn to pick its shard domain, or annotate //vhlint:allow spawndomain -- <reason>")
				} else {
					pass.Reportf(st.call.Pos(), "spawned closure writes only %s-domain state; migrate this %s to SpawnOn with the %s domain so a sharded engine can parallelize it, or annotate //vhlint:allow spawndomain -- <reason>",
						c.domain, st.api, c.domain)
				}
			case classMixed:
				pass.Reportf(st.call.Pos(), "spawned closure writes state of %d shardable domains (%s); split it per domain or route the minority writes through Shared fan-in sends, or annotate //vhlint:allow spawndomain -- <reason>",
					len(c.writes), strings.Join(renderWrites(c), ", "))
			case classSharedRequired:
				if sharedTarget {
					continue // honestly Shared: the ledger inventories why
				}
				// Forced onto a shard while needing Shared state: report the
				// write-side causes here (blockshared owns the wait side).
				var causes []string
				for _, d := range []string{DomainShared, DomainEngine} {
					for _, wd := range c.writes {
						if wd == d {
							causes = append(causes, d)
						}
					}
				}
				if len(causes) == 0 {
					continue
				}
				cc := spawnClass{writes: causes, via: c.via}
				pass.Reportf(st.call.Pos(), "closure spawned on a non-Shared domain writes %s-domain state (%s); under WithShards this write is unordered across shards — keep the process on Shared or confine the state, or annotate //vhlint:allow spawndomain -- <reason>",
					strings.Join(causes, "- and "), strings.Join(renderWrites(cc), ", "))
			}
		}
	}
}
