package lint

import (
	"go/token"
	"go/types"
)

// XDomain enforces domain confinement of simulator state: every
// function body runs in a domain context (its //vhlint:owner
// annotation, else its receiver type's domain, else its package's
// default), and a write to state owned by a different domain — directly
// or through a callee's ownership summary — is a confinement defect
// unless it flows through the engine's scheduling surface
// (vhadoop/internal/sim, the same hand-off core lockfree trusts), a
// declared //vhlint:owner entry point, or constructs a freshly built
// object. Crossings are reported at the deepest frame that crosses the
// boundary, so each chokepoint is fixed or waived exactly once rather
// than once per caller. Writes to shared-domain state are legal from
// everywhere: shared is the explicit cross-shard bucket whose
// inventory `vhlint -owners` ledgers.
var XDomain = &Analyzer{
	Name:      "xdomain",
	Doc:       "flag writes to simulator state owned by a different domain",
	AppliesTo: determinismCritical,
	Run:       runXDomain,
}

func runXDomain(pass *Pass) {
	ip := pass.pkg.interproc()
	if ip == nil {
		return
	}
	g := ip.graphFor(pass.pkg)
	// Summaries bottom-up first, so intra-package forward calls resolve
	// without hitting the optimistic recursion guard.
	for _, n := range g.bottomUp() {
		ip.ownSummaryFor(n.fn)
	}
	for _, n := range g.order {
		if n.decl.Body == nil {
			continue
		}
		w := newOwnWalker(pass.pkg, ip, n.decl)
		w.onCross = func(pos token.Pos, domain, targetKey string, callee *types.Func) {
			if callee != nil {
				pass.Reportf(pos, "call to %s writes %s-domain state from %s-domain context; route it through the engine hand-off, declare the callee a //vhlint:owner entry point, or annotate //vhlint:allow xdomain -- <reason>",
					targetKey, domain, w.ctx)
				return
			}
			pass.Reportf(pos, "write to %s (%s-domain state) from %s-domain context; route it through the engine hand-off, fix the owner annotations, or annotate //vhlint:allow xdomain -- <reason>",
				targetKey, domain, w.ctx)
		}
		w.run()
	}
}
