package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestBlockShared(t *testing.T) {
	linttest.Run(t, lint.BlockShared, "blockshared")
}
