package lint_test

import (
	"strings"
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestDirectives(t *testing.T) {
	linttest.Run(t, lint.Directives, "vhdirective")
}

// TestTreeClean runs the full suite over the real repository tree, the
// same invocation CI performs via cmd/vhlint: the tree must be clean,
// meaning every remaining map range is provably order-insensitive or
// carries a justified, non-stale allow.
func TestTreeClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := lint.Expand(loader.RepoRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d, "")
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		for _, diag := range lint.RunAll(pkg) {
			t.Errorf("%s", diag)
		}
	}
}

// TestAnalyzerNames pins the annotation vocabulary: a rename here breaks
// every //vhlint:allow in the tree, so it must be deliberate.
func TestAnalyzerNames(t *testing.T) {
	got := strings.Join(lint.AnalyzerNames(), ",")
	want := "maporder,simclock,hotalloc,floataccum,detflow,errflow,lockfree,globalstate,xdomain,spawndomain,blockshared,sendlag,vhdirective"
	if got != want {
		t.Errorf("AnalyzerNames() = %q, want %q", got, want)
	}
}
