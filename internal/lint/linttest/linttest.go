// Package linttest is a stdlib-only analogue of go/analysis/analysistest:
// it loads a testdata package, runs one vhlint analyzer over it, and
// checks the diagnostics against // want "regexp" comments.
//
// Expectations sit on the line they apply to:
//
//	for k := range m { // want "iteration order"
//
// A line may carry several expectations (// want "a" "b"); every
// diagnostic must match exactly one unconsumed expectation on its line,
// and every expectation must be consumed, or the test fails.
package linttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vhadoop/internal/lint"
)

// want is one expectation: a regexp at a file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> (relative to the test's working
// directory) and checks analyzer a against its // want comments.
func Run(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", pkg)
	p, err := loader.LoadDir(dir, "test/"+pkg)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	wants := collectWants(t, p)
	for _, d := range lint.RunAnalyzer(p, a) {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func consume(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE matches each quoted expectation after a "// want" marker.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, p *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, p, c)...)
			}
		}
	}
	return wants
}

func parseWants(t *testing.T, p *lint.Package, c *ast.Comment) []*want {
	t.Helper()
	_, rest, found := strings.Cut(c.Text, "// want ")
	if !found {
		if _, rest, found = strings.Cut(c.Text, "//want "); !found {
			return nil
		}
	}
	pos := p.Fset.Position(c.Pos())
	var wants []*want
	for _, q := range wantRE.FindAllString(rest, -1) {
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	if len(wants) == 0 {
		t.Fatalf("%s:%d: // want marker with no quoted pattern", pos.Filename, pos.Line)
	}
	return wants
}
