package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "hotalloc")
}
