package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
	"vhadoop/internal/sim"
)

func TestSendLag(t *testing.T) {
	linttest.Run(t, lint.SendLag, "sendlag")
}

// TestSendLagFloorMatchesSim pins the analyzer's lookahead floor to the
// engine's: if sim.DefaultLookahead moves, the static bound must move
// with it or sendlag's provability claim is wrong.
func TestSendLagFloorMatchesSim(t *testing.T) {
	if lint.SendLagFloor != float64(sim.DefaultLookahead) {
		t.Fatalf("lint.SendLagFloor = %g, sim.DefaultLookahead = %g: the static floor must mirror the engine's",
			lint.SendLagFloor, float64(sim.DefaultLookahead))
	}
}
