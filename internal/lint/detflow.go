package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow traces nondeterministic values across function boundaries
// into the sinks that fixed-seed reproducibility is judged by: the
// engine event trace (Engine.Tracef), the nmon event stream
// (Monitor.Annotate), job output (mapreduce.Emit), and — in package
// main — program output (fmt.Print*, os.WriteFile).
//
// Sources of taint are the host clock (time.Now and friends), the
// global math/rand stream, map iteration order, and goroutine
// completion order (channel receives). Values derived from a tainted
// value stay tainted through assignments, arithmetic, composite
// literals, field/index reads and calls. Crossing a module-local call
// uses a per-function summary (which argument positions reach the
// results, which reach a sink), so whole-tree analysis is linear in
// package count; unknown callees conservatively pass taint from
// arguments to results.
//
// Sorting cleanses map-order taint only when the comparison is provably
// a total order: sort.Strings/Ints/Float64s, slices.Sort and
// slices.Sorted. Comparator sorts (sort.Slice, slices.SortFunc, ...)
// do NOT cleanse — a comparator that ties on distinct elements leaves
// the tied range in map-visit order, the exact hole maporder's
// sorted-sink exoneration cannot see. Functions whose determinism is
// argued by hand opt out with //vhlint:detsafe -- <reason> on the doc
// comment: the body is skipped and the results are treated as clean.
var DetFlow = &Analyzer{
	Name:      "detflow",
	Doc:       "trace nondeterministic values interprocedurally into trace/monitor/output sinks",
	AppliesTo: detflowApplies,
	Run:       runDetFlow,
}

// detflowApplies extends determinism-critical coverage to examples/,
// whose printed output is the user-visible face of reproducibility.
func detflowApplies(pkgPath string) bool {
	return internalPkg(pkgPath, "vhadoop", "internal", "cmd", "examples")
}

// taint is a bitset of nondeterminism colors. The low bits are concrete
// sources; the remaining bits are symbolic parameter colors used while
// computing a function summary.
type taint uint64

const (
	taintMapOrder taint = 1 << iota // map iteration order
	taintClock                      // host wall clock
	taintRand                       // global math/rand stream
	taintChan                       // goroutine completion order (channel receive)

	numTaintKinds = iota
)

// kindMask selects the concrete source colors.
const kindMask taint = 1<<numTaintKinds - 1

const maxTaintParams = 64 - numTaintKinds

// paramColor is the symbolic color of parameter i during summary
// computation. Functions with more parameters than bits lose tracking
// for the overflow positions (their flows go unreported, never
// misreported).
func paramColor(i int) taint {
	if i < 0 || i >= maxTaintParams {
		return 0
	}
	return 1 << (numTaintKinds + i)
}

// paramBits extracts the symbolic parameter colors as a position mask.
func paramBits(t taint) uint64 { return uint64(t >> numTaintKinds) }

func (t taint) describe() string {
	var parts []string
	if t&taintMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	if t&taintClock != 0 {
		parts = append(parts, "the host clock")
	}
	if t&taintRand != 0 {
		parts = append(parts, "the global math/rand stream")
	}
	if t&taintChan != 0 {
		parts = append(parts, "goroutine completion order")
	}
	return strings.Join(parts, " and ")
}

// detSummary is one function's taint behaviour as seen from a call
// site. Argument positions are receiver-first for methods.
type detSummary struct {
	safe       bool   // //vhlint:detsafe: results clean, body vouched for
	ret        taint  // concrete colors always present on the results
	retParams  uint64 // bit i: argument i's colors propagate to the results
	sinkParams uint64 // bit i: argument i reaches a trace/output sink inside
}

// detSummaryFor computes (once) the taint summary of fn, or nil when fn
// has no module-local source. Recursion is broken optimistically: a
// cycle participant sees an empty summary for the functions still on
// the stack.
func (ip *interproc) detSummaryFor(fn *types.Func) *detSummary {
	if s, ok := ip.detSummaries[fn]; ok {
		return s
	}
	n := ip.node(fn)
	if n == nil {
		return nil
	}
	if ip.detBusy[fn] {
		return &detSummary{}
	}
	ip.detBusy[fn] = true
	s := &detSummary{}
	if n.detsafe {
		s.safe = true
	} else if n.decl.Body != nil {
		d := newDetFunc(n.pkg, ip, n.decl)
		d.summary = s
		d.run()
	}
	delete(ip.detBusy, fn)
	ip.detSummaries[fn] = s
	return s
}

func runDetFlow(pass *Pass) {
	ip := pass.pkg.interproc()
	if ip == nil {
		return
	}
	g := ip.graphFor(pass.pkg)
	// Summaries bottom-up first, so intra-package forward calls resolve
	// without hitting the optimistic recursion guard.
	for _, n := range g.bottomUp() {
		ip.detSummaryFor(n.fn)
	}
	for _, n := range g.order {
		if n.detsafe || n.decl.Body == nil {
			continue
		}
		d := newDetFunc(pass.pkg, ip, n.decl)
		d.pass = pass
		d.run()
	}
}

// detFunc is the per-function forward taint interpreter. The body is
// interpreted in source order for a fixed number of passes (so loops
// feed taint back through statements that precede their source), with
// weak updates on assignment and an explicit cleanse for provably-total
// sorts. Exactly one of summary/pass is set: summary mode seeds the
// parameters with symbolic colors and records flows to results and
// sinks; report mode starts parameters clean (call sites account for
// them) and reports tainted values reaching sinks.
type detFunc struct {
	pkg    *Package
	ip     *interproc
	fd     *ast.FuncDecl
	params []types.Object // receiver first, then declared parameters
	vals   map[types.Object]taint

	summary *detSummary
	pass    *Pass

	last bool // final pass: report sinks / record summary flows
}

func newDetFunc(pkg *Package, ip *interproc, fd *ast.FuncDecl) *detFunc {
	d := &detFunc{pkg: pkg, ip: ip, fd: fd, vals: make(map[types.Object]taint)}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					d.params = append(d.params, obj)
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return d
}

func (d *detFunc) run() {
	if d.summary != nil {
		for i, p := range d.params {
			d.vals[p] = paramColor(i)
		}
	}
	const passes = 3
	for i := 0; i < passes; i++ {
		d.last = i == passes-1
		d.interpret()
	}
}

// interpret walks the body once in source order, transferring taint.
func (d *detFunc) interpret() {
	inspectWithStack(d.fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			d.assign(n, stack)
		case *ast.RangeStmt:
			d.rangeStmt(n)
		case *ast.CallExpr:
			d.cleanse(n)
			if d.last {
				d.checkSink(n)
			}
		case *ast.ReturnStmt:
			// Only the outer function's own returns feed the summary: a
			// return inside a nested func literal yields that closure's
			// value, not this function's.
			if d.summary != nil && !insideFuncLit(stack) {
				d.returnStmt(n)
			}
		}
		return true
	})
}

// insideFuncLit reports whether the walk is currently under a func
// literal nested in the function body.
func insideFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

func (d *detFunc) obj(id *ast.Ident) types.Object {
	if o := d.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return d.pkg.Info.Defs[id]
}

// lhsRoot resolves the variable ultimately written by an assignment
// target: x, x.f, x[i], *x all root at x. Field and element writes
// weakly taint the whole container.
func (d *detFunc) lhsRoot(e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return d.obj(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func (d *detFunc) assign(a *ast.AssignStmt, stack []ast.Node) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// Multi-value: v, err := f() — every target gets the call's taint.
		t := d.taintOf(a.Rhs[0])
		for _, lhs := range a.Lhs {
			d.taintLhs(lhs, t)
		}
		return
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		t := d.taintOf(a.Rhs[i])
		// Sequence construction under map-visit order: appending to a
		// slice declared outside a map range builds its elements in
		// iteration order, an ORDER effect the value-level union above
		// cannot see. Tainting the target lets a later comparator sort
		// (never cleansing) carry the hazard to a sink — the exact
		// tie-unsoundness hole in maporder's sorted-sink exoneration.
		if call, ok := ast.Unparen(a.Rhs[i]).(*ast.CallExpr); ok {
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
				if obj := d.lhsRoot(lhs); obj != nil && d.inMapRangeOutside(obj, stack) {
					t |= taintMapOrder
				}
			}
		}
		d.taintLhs(lhs, t)
	}
}

// inMapRangeOutside reports whether the current statement sits inside a
// range over a map whose body does not contain obj's declaration (obj
// carries state across iterations, so its construction order tracks
// map-visit order).
func (d *detFunc) inMapRangeOutside(obj types.Object, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := d.pkg.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		if obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End() {
			return true
		}
	}
	return false
}

func (d *detFunc) taintLhs(lhs ast.Expr, t taint) {
	if t == 0 {
		return
	}
	if obj := d.lhsRoot(lhs); obj != nil {
		d.vals[obj] |= t
	}
}

func (d *detFunc) rangeStmt(rs *ast.RangeStmt) {
	base := d.taintOf(rs.X)
	keyT, valT := base, base
	if tv, ok := d.pkg.Info.Types[rs.X]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			keyT |= taintMapOrder
			valT |= taintMapOrder
		case *types.Chan:
			valT |= taintChan
		}
	}
	d.taintLhs(rs.Key, keyT)
	if rs.Value != nil {
		d.taintLhs(rs.Value, valT)
	}
}

func (d *detFunc) returnStmt(r *ast.ReturnStmt) {
	var t taint
	if len(r.Results) == 0 {
		// Naked return: the named results carry whatever they hold.
		if d.fd.Type.Results != nil {
			for _, field := range d.fd.Type.Results.List {
				for _, name := range field.Names {
					if obj := d.pkg.Info.Defs[name]; obj != nil {
						t |= d.vals[obj]
					}
				}
			}
		}
	}
	for _, res := range r.Results {
		t |= d.taintOf(res)
	}
	d.summary.ret |= t & kindMask
	d.summary.retParams |= paramBits(t)
}

// taintOf evaluates the taint of an expression in the current state.
func (d *detFunc) taintOf(e ast.Expr) taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := d.obj(e); obj != nil {
			return d.vals[obj]
		}
	case *ast.CallExpr:
		return d.callTaint(e)
	case *ast.BinaryExpr:
		return d.taintOf(e.X) | d.taintOf(e.Y)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return taintChan | d.taintOf(e.X)
		}
		return d.taintOf(e.X)
	case *ast.StarExpr:
		return d.taintOf(e.X)
	case *ast.SelectorExpr:
		// Field or method read inherits the container's taint;
		// package-qualified identifiers root at a PkgName, which never
		// carries taint.
		return d.taintOf(e.X)
	case *ast.IndexExpr:
		return d.taintOf(e.X) | d.taintOf(e.Index)
	case *ast.SliceExpr:
		t := d.taintOf(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				t |= d.taintOf(b)
			}
		}
		return t
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			t |= d.taintOf(el)
		}
		return t
	case *ast.KeyValueExpr:
		return d.taintOf(e.Key) | d.taintOf(e.Value)
	case *ast.TypeAssertExpr:
		return d.taintOf(e.X)
	}
	// Literals, func literals, type expressions: clean.
	return 0
}

// callArgs is the receiver-first argument list of a call, matching the
// parameter indexing of detSummary.
func callArgs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return append([]ast.Expr{sel.X}, call.Args...)
	}
	return call.Args
}

func (d *detFunc) callTaint(call *ast.CallExpr) taint {
	fn := staticCallee(d.pkg.Info, call)
	if fn != nil {
		pkgPath := ""
		if fn.Pkg() != nil {
			pkgPath = fn.Pkg().Path()
		}
		switch {
		case pkgPath == "time" && bannedTime[fn.Name()]:
			return taintClock
		case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") &&
			!allowedRand[fn.Name()] && isPackageLevelFunc(fn):
			return taintRand
		case pkgPath == "slices" && fn.Name() == "Sorted":
			// slices.Sorted imposes the element type's total order.
			var t taint
			for _, a := range call.Args {
				t |= d.taintOf(a)
			}
			return t &^ taintMapOrder
		}
		if s := d.ip.detSummaryFor(fn); s != nil {
			if s.safe {
				return 0
			}
			t := s.ret
			args := callArgs(call)
			for i, a := range args {
				if i >= 64 {
					break
				}
				if s.retParams>>uint(i)&1 == 1 {
					t |= d.taintOf(a)
				}
			}
			// A method call still reads its receiver even when the
			// summary proves no parameter flow; the receiver position is
			// argument 0 and already covered above.
			return t
		}
	}
	// Unknown callee (stdlib, builtin, dynamic): taint passes from
	// arguments (and the method receiver) to the result.
	var t taint
	for _, a := range callArgs(call) {
		t |= d.taintOf(a)
	}
	return t
}

// cleanse clears map-order taint from the argument of a provably
// total-order in-place sort. Comparator sorts are deliberately absent:
// their comparison may tie, leaving tied runs in map-visit order.
func (d *detFunc) cleanse(call *ast.CallExpr) {
	fn := staticCallee(d.pkg.Info, call)
	if fn == nil || len(call.Args) == 0 {
		return
	}
	total := isPkgFunc(fn, "sort", "Strings") ||
		isPkgFunc(fn, "sort", "Ints") ||
		isPkgFunc(fn, "sort", "Float64s") ||
		isPkgFunc(fn, "slices", "Sort")
	if !total {
		return
	}
	if obj := d.lhsRoot(call.Args[0]); obj != nil {
		d.vals[obj] &^= taintMapOrder
	}
}

// checkSink reports (or, in summary mode, records) tainted values
// passed to a reproducibility sink.
func (d *detFunc) checkSink(call *ast.CallExpr) {
	args, sink := d.sinkOf(call)
	if sink != "" {
		for _, a := range args {
			t := d.taintOf(a)
			if d.summary != nil {
				d.summary.sinkParams |= paramBits(t)
				continue
			}
			if t&kindMask != 0 {
				d.pass.Reportf(a.Pos(), "value influenced by %s reaches %s; this breaks bit-identical replay — make the source deterministic or annotate the enclosing function //vhlint:detsafe -- <reason>", (t & kindMask).describe(), sink)
			}
		}
		// The call IS the sink; a callee summary would only restate the
		// same flow (obs wrappers forward their arguments to each other).
		return
	}
	// Module-local callees that sink some argument internally.
	fn := staticCallee(d.pkg.Info, call)
	if fn == nil {
		return
	}
	s := d.ip.detSummaryFor(fn)
	if s == nil || s.safe || s.sinkParams == 0 {
		return
	}
	all := callArgs(call)
	for i, a := range all {
		if i >= 64 || s.sinkParams>>uint(i)&1 == 0 {
			continue
		}
		t := d.taintOf(a)
		if d.summary != nil {
			d.summary.sinkParams |= paramBits(t)
			continue
		}
		if t&kindMask != 0 {
			d.pass.Reportf(a.Pos(), "value influenced by %s reaches a trace/output sink inside %s; this breaks bit-identical replay — make the source deterministic or annotate the enclosing function //vhlint:detsafe -- <reason>", (t & kindMask).describe(), fn.Name())
		}
	}
}

// sinkOf classifies a call as a reproducibility sink, returning the
// arguments whose values land in the sink and a human-readable name
// (empty when not a sink).
func (d *detFunc) sinkOf(call *ast.CallExpr) ([]ast.Expr, string) {
	if fn := staticCallee(d.pkg.Info, call); fn != nil && fn.Pkg() != nil {
		path, name := fn.Pkg().Path(), fn.Name()
		sig, _ := fn.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		switch {
		case path == "vhadoop/internal/sim" && name == "Tracef" && isMethod:
			return call.Args, "the engine trace (Engine.Tracef)"
		case path == "vhadoop/internal/nmon" && name == "Annotate" && isMethod:
			return call.Args, "the nmon event stream (Monitor.Annotate)"
		case path == "vhadoop/internal/jobsvc" && isMethod:
			// The job service's replay surface: tenant names and submission
			// arguments land in the daemon's trace and span events
			// (Service.eventf) and in the canonical per-tenant report, all
			// byte-compared by the determinism suite.
			switch name {
			case "eventf":
				return call.Args, "the job-service event stream (Service.eventf)"
			case "Register":
				return call.Args, "the job-service tenant report (Service.Register)"
			case "Submit":
				return call.Args, "the job-service event stream (Service.Submit)"
			}
		case path == "vhadoop/internal/obs" && isMethod:
			// The observability plane's exports are part of the replay
			// surface: spans, span attributes and events land in the JSON
			// trace; counter/gauge/histogram updates land in the metrics
			// snapshot. Both must be byte-identical across same-seed runs.
			switch name {
			case "Eventf", "Annotate", "Start", "SetAttr", "SetFloat":
				return call.Args, "the span trace (obs." + name + ")"
			case "Counter", "Gauge", "Histogram", "Add", "Set", "Inc", "Observe",
				"CounterVec", "GaugeVec", "HistogramVec", "With":
				// Vec label values select the interned handle, so they land
				// in the snapshot's canonical key just like lookup labels.
				return call.Args, "the metrics registry (obs." + name + ")"
			}
		}
		if d.pkg.Types.Name() == "main" {
			switch {
			case path == "fmt" && (name == "Print" || name == "Printf" || name == "Println"):
				return call.Args, "program output"
			case path == "os" && name == "WriteFile":
				return call.Args, "program output (os.WriteFile)"
			}
		}
		return nil, ""
	}
	// Dynamic call through a value of the job-output emit type.
	if tv, ok := d.pkg.Info.Types[call.Fun]; ok && tv.Type != nil {
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "vhadoop/internal/mapreduce" && obj.Name() == "Emit" {
				return call.Args, "job output (mapreduce.Emit)"
			}
		}
	}
	return nil, ""
}
