package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "maporder")
}

func TestMapOrderAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"vhadoop/internal/sim":       true,
		"vhadoop/internal/mapreduce": true,
		"vhadoop/cmd/vhadoop":        true,
		"vhadoop/internal/lint":      true,
		"test/maporder":              false,
		"fmt":                        false,
	} {
		if got := lint.MapOrder.AppliesTo(path); got != want {
			t.Errorf("MapOrder.AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
