// Package lint is vhadoop's custom static-analysis suite (vhlint). It
// mechanically enforces the invariants the simulator's reproducibility
// claims rest on — fixed-seed runs must be bit-identical — plus the
// hot-path allocation discipline established by the data-plane fast
// paths.
//
// The suite is deliberately self-contained: it is built only on the
// standard library (go/ast, go/types, go/build), mirroring the shape of
// a golang.org/x/tools go/analysis multichecker without depending on
// it. cmd/vhlint is the driver; each analyzer lives in its own file
// here with an analysistest-style suite under testdata/src.
//
// Analyzers:
//
//   - maporder:   range over a map (or maps.Keys/Values/All) in
//     determinism-critical packages, unless provably order-insensitive.
//   - simclock:   wall-clock time and global math/rand in simulator-
//     driven code; the sim.Engine clock and Engine.Rand() are the only
//     legal sources.
//   - hotalloc:   fmt calls, string concatenation in loops, and
//     escaping closures inside functions annotated //vhlint:hot.
//   - floataccum: floating-point accumulation whose summation order
//     depends on map iteration.
//   - detflow:    interprocedural taint from nondeterminism sources
//     (wall clock, global rand, map iteration order) into trace, nmon
//     and program-output sinks, via call-graph function summaries.
//   - errflow:    error values that are produced and then dropped
//     (checked but never returned, traced, stored or passed on) or
//     overwritten unexamined — the failure mode that silently loses
//     recovery-path faults.
//   - lockfree:   goroutines, channels, select and sync primitives in
//     simulator-driven code; the engine's strict hand-off core is the
//     only sanctioned concurrency.
//   - globalstate: package-level mutable state (vars, sync primitives)
//     reachable from sim.Proc closures — implicitly shared across all
//     future engine shards.
//   - xdomain:    writes to simulator state owned by a different
//     ownership domain (machine, vnet, engine, shared — assigned by
//     //vhlint:owner annotations plus root-type/package inference),
//     outside the engine's sanctioned hand-off surface.
//   - spawndomain: the transitive ownership-domain footprint of every
//     spawned closure — confined closures still entering through the
//     Shared-implied Spawn/SpawnAfter, mixed-domain closures, and
//     shared-required closures forced onto a shard domain.
//   - blockshared: blocking waits on Shared-only primitives (Done,
//     Gate, Queue, FairShare) reachable from closures spawned on a
//     non-Shared domain — statically, before the runtime panic.
//   - sendlag:    Proc.Send/Proc.SpawnOnAfter delays that are constant
//     and provably below the engine's lookahead floor.
//   - vhdirective: malformed or misplaced //vhlint: annotations.
//
// Suppression uses source annotations, validated by the suite itself:
//
//	//vhlint:allow <analyzer> -- <reason>
//
// on the flagged line or the line directly above. A malformed allow (no
// reason) is itself a diagnostic, and an allow that suppresses nothing
// is reported as stale. Whole functions whose determinism is argued by
// hand are exempted from detflow with //vhlint:detsafe -- <reason> on
// the function's doc comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding. Suppressed marks findings silenced
// by a //vhlint:allow annotation; they are filtered from the default
// output but surfaced by cmd/vhlint -json for audit.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path; nil means every package.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	pkg        *Package // carries the loader back-pointer for interprocedural queries
	directives []*Directive
	diags      []Diagnostic
}

// Reportf records a diagnostic at pos. Suppression by //vhlint:allow
// annotations is applied after the analyzer finishes.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// all is populated in init to break the initialization cycle between
// the Directives analyzer and the registry it validates names against.
var all []*Analyzer

func init() {
	all = []*Analyzer{MapOrder, SimClock, HotAlloc, FloatAccum, DetFlow, ErrFlow, LockFree, GlobalState, XDomain, SpawnDomain, BlockShared, SendLag, Directives}
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer { return all }

// AnalyzerNames returns the names accepted in //vhlint:allow annotations.
func AnalyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// RunAnalyzer runs a on pkg: the analyzer's Run produces raw
// diagnostics, //vhlint:allow annotations for a.Name filter them, and
// any allow that suppressed nothing is reported as stale. The caller is
// responsible for honouring a.AppliesTo.
func RunAnalyzer(pkg *Package, a *Analyzer) []Diagnostic {
	var kept []Diagnostic
	for _, d := range runAnalyzer(pkg, a) {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// runAnalyzer is RunAnalyzer keeping suppressed diagnostics, marked.
func runAnalyzer(pkg *Package, a *Analyzer) []Diagnostic {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		PkgPath:    pkg.Path,
		pkg:        pkg,
		directives: pkg.Directives(),
	}
	a.Run(pass)

	// Apply allow annotations: an allow for this analyzer on the
	// diagnostic's line, or the line directly above it, suppresses the
	// diagnostic and marks the allow used.
	allows := make([]*Directive, 0, 4)
	for _, d := range pass.directives {
		if d.Kind == DirectiveAllow && d.Analyzer == a.Name {
			allows = append(allows, d)
		}
	}
	out := pass.diags
	for i, diag := range out {
		for _, al := range allows {
			if al.Pos.Filename == diag.Pos.Filename &&
				(al.Pos.Line == diag.Pos.Line || al.Pos.Line == diag.Pos.Line-1) {
				al.used = true
				out[i].Suppressed = true
			}
		}
	}
	for _, al := range allows {
		if !al.used {
			out = append(out, Diagnostic{
				Pos:      al.Pos,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("stale //vhlint:allow %s annotation: it suppresses nothing", a.Name),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// RunAll runs every applicable analyzer on pkg and returns the combined
// active diagnostics in file/line order.
func RunAll(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range All() {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		out = append(out, RunAnalyzer(pkg, a)...)
	}
	sortDiagnostics(out)
	return out
}

// RunAllDiagnostics is RunAll including suppressed diagnostics, each
// marked with Suppressed=true — the audit view cmd/vhlint -json emits.
func RunAllDiagnostics(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range All() {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		out = append(out, runAnalyzer(pkg, a)...)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
