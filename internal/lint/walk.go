package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses every file in the pass, calling fn with each node
// and the stack of its ancestors (outermost first, excluding the node
// itself). Returning false prunes the subtree.
func walkStack(pass *Pass, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			enter := fn(n, stack)
			if enter {
				stack = append(stack, n)
			}
			return enter
		})
	}
}

// mapRangeStmt reports whether n ranges over a map value.
func mapRangeStmt(pass *Pass, n ast.Node) (*ast.RangeStmt, bool) {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, isMap := t.Underlying().(*types.Map)
	return rs, isMap
}

// calleeFunc resolves the called package-level function (or method) of
// a call expression, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// identObj resolves an identifier (possibly parenthesised) to its object.
func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// usesObj reports whether expr references obj anywhere.
func usesObj(pass *Pass, expr ast.Node, obj types.Object) bool {
	if expr == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// usesAnyObj reports whether expr references any object in objs.
func usesAnyObj(pass *Pass, expr ast.Node, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// isIntegerType reports whether t's core type is an integer.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloatType reports whether t's core type is a float or complex.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isStringType reports whether t's core type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// internalPkg reports whether path is one of this module's packages
// under any of the given trees (e.g. "internal", "cmd").
func internalPkg(path, modPath string, trees ...string) bool {
	for _, tree := range trees {
		prefix := modPath + "/" + tree
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}
