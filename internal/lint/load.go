package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Path  string // import path ("vhadoop/internal/sim"), synthetic for testdata
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loader     *Loader // back-pointer for interprocedural queries
	directives []*Directive
	parsedDirs bool
	owners     *ownerIndex // //vhlint:owner annotations, built on first use
}

// Directives returns the //vhlint: annotations found in the package,
// parsed once and cached.
func (p *Package) Directives() []*Directive {
	if !p.parsedDirs {
		p.directives = parseDirectives(p.Fset, p.Files)
		p.parsedDirs = true
	}
	return p.directives
}

// Loader parses and type-checks packages without external tooling:
// module-local import paths are resolved against the repository root,
// everything else falls through to the standard library's source
// importer. Loaded packages are cached, so shared dependencies are
// checked once.
type Loader struct {
	Fset     *token.FileSet
	RepoRoot string
	ModPath  string

	byDir   map[string]*Package
	loading map[string]bool
	stdlib  types.Importer
	ip      *interproc // lazily-built cross-package analysis state
}

// NewLoader locates go.mod upward from dir (or the working directory if
// dir is empty) and returns a Loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		RepoRoot: root,
		ModPath:  modPath,
		byDir:    make(map[string]*Package),
		loading:  make(map[string]bool),
		stdlib:   importer.ForCompiler(fset, "source", nil),
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		//vhlint:allow errflow -- probe: a missing go.mod at this level just walks up; only exhausting every parent is an error
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found upward of %s", dir)
		}
		dir = parent
	}
}

// LoadDir parses and type-checks the package in dir. importPath may be
// empty, in which case it is derived from the directory's position
// under the repository root.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	if importPath == "" {
		importPath = l.importPathFor(abs)
	}
	bp, err := build.Default.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", abs, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:   importPath,
		Dir:    abs,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	l.byDir[abs] = pkg
	return pkg, nil
}

func (l *Loader) importPathFor(abs string) string {
	//vhlint:allow errflow -- best-effort: an unrelatable path falls back to the absolute form, which is still a usable synthetic import path
	rel, err := filepath.Rel(l.RepoRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return abs
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// loaderImporter routes module-local imports to the Loader and
// everything else to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(path, l.ModPath)
		rel = strings.TrimPrefix(rel, "/")
		pkg, err := l.LoadDir(filepath.Join(l.RepoRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

// Expand resolves command-line package patterns ("./...", "./internal/sim",
// a bare directory) into package directories, relative to base. Directories
// without buildable Go files, testdata trees, and hidden directories are
// skipped.
func Expand(base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		//vhlint:allow errflow -- best-effort: a dir that cannot be made absolute is dropped from the pattern expansion, matching go tooling
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(base, rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	//vhlint:allow errflow -- the error is the answer: ImportDir failing means "no buildable Go files", which is this predicate's false
	_, err := build.Default.ImportDir(dir, 0)
	return err == nil
}
