package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestSimClock(t *testing.T) {
	linttest.Run(t, lint.SimClock, "simclock")
}
