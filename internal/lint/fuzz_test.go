package lint

import (
	"strings"
	"testing"
)

// FuzzDirective drives the //vhlint: directive grammar with arbitrary
// comment payloads. parseDirective sits on the front line of every
// analyzer run — a malformed annotation must become a DirectiveBad
// diagnostic, never a panic or a silently-misparsed allow — so the fuzz
// target pins the parser's total behaviour:
//
//   - it never returns nil, and every result has a known Kind;
//   - an allow always names a registered analyzer and carries a
//     non-empty reason, and re-rendering it in canonical form reparses
//     to the same directive (round-trip);
//   - a detsafe always carries a non-empty reason;
//   - an owner always names a known domain, exactly one, and
//     round-trips through its canonical form;
//   - everything else is DirectiveBad with a non-empty explanation.
func FuzzDirective(f *testing.F) {
	seeds := []string{
		"",
		"hot",
		"hot trailing",
		"allow",
		"allow maporder",
		"allow maporder -- sorted immediately after",
		"allow maporder--no space",
		"allow bogus -- reason",
		"allow errflow -- multi -- dash reason",
		"allow  detflow  --  generously  spaced ",
		"detsafe",
		"detsafe --",
		"detsafe -- keys are interned and unique",
		"owner",
		"owner machine",
		"owner shared",
		"owner cloud",
		"owner machine vnet",
		"owner  engine",
		"unknown words here",
		"allow\tlockfree\t--\ttabbed",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		// parseDirectives hands parseDirective the payload with trailing
		// blanks trimmed; mirror that entry condition here.
		d := parseDirective(strings.TrimRight(text, " \t"))
		if d == nil {
			t.Fatalf("parseDirective(%q) = nil", text)
		}
		switch d.Kind {
		case DirectiveHot:
			// No payload to validate.
		case DirectiveAllow:
			if !knownAnalyzer(d.Analyzer) {
				t.Errorf("parseDirective(%q): allow for unknown analyzer %q", text, d.Analyzer)
			}
			if d.Reason == "" {
				t.Errorf("parseDirective(%q): allow accepted without a reason", text)
			}
			canon := "allow " + d.Analyzer + " -- " + d.Reason
			r := parseDirective(canon)
			if r.Kind != DirectiveAllow || r.Analyzer != d.Analyzer || r.Reason != d.Reason {
				t.Errorf("round-trip broke: %q reparsed as %+v, want analyzer %q reason %q", canon, r, d.Analyzer, d.Reason)
			}
		case DirectiveDetsafe:
			if d.Reason == "" {
				t.Errorf("parseDirective(%q): detsafe accepted without a reason", text)
			}
		case DirectiveOwner:
			if !knownDomain(d.Domain) {
				t.Errorf("parseDirective(%q): owner for unknown domain %q", text, d.Domain)
			}
			canon := "owner " + d.Domain
			r := parseDirective(canon)
			if r.Kind != DirectiveOwner || r.Domain != d.Domain {
				t.Errorf("round-trip broke: %q reparsed as %+v, want domain %q", canon, r, d.Domain)
			}
		case DirectiveBad:
			if d.Err == "" {
				t.Errorf("parseDirective(%q): DirectiveBad with empty explanation", text)
			}
		default:
			t.Errorf("parseDirective(%q): unknown kind %q", text, d.Kind)
		}
	})
}
