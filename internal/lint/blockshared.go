package lint

// BlockShared statically flags what today only a runtime panic
// catches: a closure spawned on a non-Shared domain that can reach a
// blocking wait on a Shared-only primitive (Done.Wait, Gate.WaitOpen,
// Queue.Acquire, FairShare.Use/UseWeighted, WaitAll/WaitProcs). Under
// sim.WithShards those waits park the process on the coordinator's
// wait lists, which only Shared-window code may touch — the engine
// panics the moment the shard process blocks. The static version
// reports the wait at the spawn site, with the call chain that reaches
// it, before anyone runs a sharded configuration.
//
// Scope is deliberately narrow: only SpawnOn/SpawnOnAfter sites whose
// domain argument is not provably sim.Shared are checked. Plain
// Spawn/SpawnAfter closures run on Shared where every wait is legal,
// and flagging waits by annotation context instead of spawn context
// would bury the platform in waivers (DESIGN.md §13).
var BlockShared = &Analyzer{
	Name:      "blockshared",
	Doc:       "flag Shared-only blocking waits reachable from closures spawned on a non-Shared domain",
	AppliesTo: spawnCritical,
	Run:       runBlockShared,
}

func runBlockShared(pass *Pass) {
	ip := pass.pkg.interproc()
	if ip == nil {
		return
	}
	g := ip.graphFor(pass.pkg)
	for _, n := range g.bottomUp() {
		ip.spawnSummaryFor(n.fn)
	}
	for _, n := range g.order {
		if n.decl.Body == nil {
			continue
		}
		for _, st := range spawnSitesIn(pass.pkg, n.decl.Body) {
			if st.api != "SpawnOn" && st.api != "SpawnOnAfter" {
				continue
			}
			if domIsShared(pass.pkg, st.domArg) {
				continue
			}
			c := ip.classifySpawn(pass.pkg, st)
			for _, b := range c.waits {
				chain := ""
				if b.via != "" {
					chain = " via " + b.via
				}
				pass.Reportf(st.call.Pos(), "closure spawned on a non-Shared domain reaches %s%s: a shard process must not wait on Shared-only primitives (runtime panic under WithShards); convert the wait into a Shared fan-in p.Send, or annotate //vhlint:allow blockshared -- <reason>",
					b.prim, chain)
			}
		}
	}
}
