package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vhadoop/internal/lint"
)

// buildTreeLedger assembles the ownership ledger over the real
// repository tree with a fresh loader, exactly as cmd/vhlint -owners
// does.
func buildTreeLedger(t *testing.T) []byte {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := lint.Expand(loader.RepoRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	led, err := lint.BuildLedger(loader, dirs)
	if err != nil {
		t.Fatalf("BuildLedger: %v", err)
	}
	out, err := led.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return out
}

// TestLedgerDeterministic builds the ledger twice from scratch and
// demands byte-identical output: the file is CI-diffed, so any map
// iteration or position leak in its construction is a bug.
func TestLedgerDeterministic(t *testing.T) {
	a := buildTreeLedger(t)
	b := buildTreeLedger(t)
	if !bytes.Equal(a, b) {
		t.Errorf("two fresh ledger builds differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestLedgerUpToDate compares a fresh build against the checked-in
// SHARDLEDGER.json. A failure means the tree's ownership structure
// changed without regenerating the ledger: run
//
//	go run ./cmd/vhlint -owners ./... > SHARDLEDGER.json
//
// and review the diff.
func TestLedgerUpToDate(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	checked, err := os.ReadFile(filepath.Join(loader.RepoRoot, "SHARDLEDGER.json"))
	if err != nil {
		t.Fatalf("read checked-in ledger: %v", err)
	}
	fresh := buildTreeLedger(t)
	if !bytes.Equal(fresh, checked) {
		t.Errorf("SHARDLEDGER.json is stale; regenerate with: go run ./cmd/vhlint -owners ./... > SHARDLEDGER.json")
	}
}

// TestLedgerShardsafe pins the acceptance bar: the checked-in tree has
// zero unwaived cross-domain writes, and every waived crossing carries
// a written reason.
func TestLedgerShardsafe(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := lint.Expand(loader.RepoRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	led, err := lint.BuildLedger(loader, dirs)
	if err != nil {
		t.Fatalf("BuildLedger: %v", err)
	}
	if n := led.UnwaivedCrossings(); n != 0 {
		t.Errorf("tree has %d unwaived cross-domain write(s)", n)
	}
	for _, c := range led.Crossings {
		if c.Waived > 0 && c.Reason == "" {
			t.Errorf("waived crossing %s -> %s has no reason", c.Writer, c.Target)
		}
	}
	for _, name := range []string{"globalstate", "xdomain", "spawndomain", "blockshared", "sendlag"} {
		if _, ok := led.Counts[name]; !ok {
			t.Errorf("ledger counts missing analyzer %s", name)
		}
		if led.Counts[name].Active != 0 {
			t.Errorf("ledger records %d active %s finding(s); tree must be clean", led.Counts[name].Active, name)
		}
	}
	if len(led.Spawnsites) == 0 {
		t.Error("ledger has no spawnsites: the platform certainly spawns processes")
	}
	if n := led.ConfinedOnSpawn(); n != 0 {
		t.Errorf("ledger records %d confined spawn site(s) still on plain Spawn/SpawnAfter; migrate them to SpawnOn", n)
	}
	for _, s := range led.Spawnsites {
		if s.Class == "shared-required" && len(s.Writes) == 0 && len(s.Blockers) == 0 {
			t.Errorf("shared-required spawn site %s/%s documents neither writes nor blockers", s.Func, s.Proc)
		}
	}
}
