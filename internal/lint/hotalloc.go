package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the zero-allocation discipline of functions annotated
// //vhlint:hot (the data-plane fast paths: partitioner, k-way merge,
// tokenizer, distance kernels). Inside a hot function it flags:
//
//   - any fmt.* call — every argument is boxed into an interface and
//     Sprintf-style formatting allocates its result;
//   - obs registry lookups (Counter/Gauge/Histogram and the vec
//     constructors) — each call rebuilds or re-canonicalises a metric
//     key; hot paths must intern handles at construction and use them
//     (or a vec's With, the sanctioned fast path) instead;
//   - obs formatted-event calls (Eventf) — argument boxing on every
//     call even when rendering is deferred;
//   - string concatenation with + inside a loop — each iteration
//     allocates an intermediate string;
//   - escaping closures: a func literal that captures enclosing
//     variables and is passed to a call, returned, or stored in a
//     non-local — its context escapes to the heap. A closure assigned
//     to a local variable and only called directly stays on the stack
//     and is not flagged.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation sources inside //vhlint:hot functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	hot := hotFuncs(pass)
	walkStack(pass, func(n ast.Node, stack []ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || !hot[fd] {
			return true
		}
		checkHotFunc(pass, fd)
		return false // already checked the whole body
	})
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	// Closures bound to local variables (fn := func(...){...}) stay on
	// the stack only while every use is a direct call fn(...). Collect
	// them first, then flag any use that lets the value escape.
	localClosures := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range a.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(a.Lhs) || !capturesOuter(pass, lit) {
				continue
			}
			if obj := definedObj(pass, a.Lhs[i]); obj != nil {
				localClosures[obj] = lit
			} else if obj := identObj(pass, a.Lhs[i]); obj != nil {
				localClosures[obj] = lit
			}
		}
		return true
	})
	reported := make(map[*ast.FuncLit]bool)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if lit := localClosures[pass.TypesInfo.Uses[id]]; lit != nil && !reported[lit] && !directCallUse(stack, id) {
				reported[lit] = true
				pass.Reportf(lit.Pos(), "closure %s in hot function %s escapes (used as a value, not just called), so its capture context is heap-allocated", id.Name, fd.Name.Name)
			}
		}
		switch e := n.(type) {
		case *ast.AssignStmt:
			checkAppendGrowth(pass, fd, e, stack)
		case *ast.CallExpr:
			if fn := calleeFunc(pass, e); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "fmt" && isPackageLevelFunc(fn):
					pass.Reportf(e.Pos(), "fmt.%s in hot function %s allocates (interface boxing + formatted result)", fn.Name(), fd.Name.Name)
				case isObsLookup(fn):
					pass.Reportf(e.Pos(), "obs lookup %s in hot function %s rebuilds the metric key per call; intern the handle at construction (cached field or vec With)", fn.Name(), fd.Name.Name)
				case isObsFormat(fn):
					pass.Reportf(e.Pos(), "obs %s in hot function %s boxes its arguments per call; move the event off the hot path or precompute the message", fn.Name(), fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && insideLoop(stack) {
				if tv, ok := pass.TypesInfo.Types[e]; ok && isStringType(tv.Type) {
					pass.Reportf(e.Pos(), "string concatenation in a loop inside hot function %s allocates per iteration; use a byte slice or index arithmetic", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			if closureEscapes(stack) && capturesOuter(pass, e) {
				pass.Reportf(e.Pos(), "escaping closure in hot function %s allocates its capture context on the heap", fd.Name.Name)
				stack = append(stack, n)
				return true
			}
		}
		stack = append(stack, n)
		return true
	})
}

// obsPkgPath is the observability plane package the hot-path rules key
// off. Methods are matched by receiver package, not receiver type, so
// Registry, Plane and Tracer lookups are all covered.
const obsPkgPath = "vhadoop/internal/obs"

// obsMethod reports whether fn is a method named name declared in the
// obs package.
func obsMethod(fn *types.Func, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// isObsLookup reports whether fn is an obs registry lookup: the string
// keyed Counter/Gauge/Histogram accessors that canonicalise a key per
// call, or a vec constructor (which allocates the vec). A vec's With is
// deliberately not a lookup — the interned hit path is the sanctioned
// hot-path access.
func isObsLookup(fn *types.Func) bool {
	return obsMethod(fn, "Counter", "Gauge", "Histogram",
		"CounterVec", "GaugeVec", "HistogramVec")
}

// isObsFormat reports whether fn is a formatted obs event emitter:
// even with rendering deferred to export time, every call boxes its
// arguments into []any.
func isObsFormat(fn *types.Func) bool {
	return obsMethod(fn, "Eventf")
}

// checkAppendGrowth flags s = append(s, ...) inside a loop of a hot
// function when s is a local slice declared without capacity: each
// growth past the backing array reallocates and copies, exactly the
// amortized churn the hot annotation promises away. Parameters and
// slices pre-sized with a three-argument make are exempt.
func checkAppendGrowth(pass *Pass, fd *ast.FuncDecl, a *ast.AssignStmt, stack []ast.Node) {
	if !insideLoop(stack) || len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		call, ok := ast.Unparen(a.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fid.Name != "append" || !isBuiltin(pass, fid) || len(call.Args) == 0 {
			continue
		}
		obj := identObj(pass, lhs)
		if obj == nil {
			obj = definedObj(pass, lhs)
		}
		if obj == nil || obj != identObj(pass, call.Args[0]) {
			continue // only self-appends grow a tracked slice
		}
		v, ok := obj.(*types.Var)
		if !ok || !uncappedLocalSlice(pass, fd, v) {
			continue
		}
		pass.Reportf(call.Pos(), "append growth of %s in a loop inside hot function %s reallocates as the slice grows; pre-size it with make(len, cap) before the loop", v.Name(), fd.Name.Name)
	}
}

// uncappedLocalSlice reports whether v is a slice declared inside fd's
// body with no capacity reserve: `var s []T`, `s := []T{...}`, or a
// make with fewer than three arguments. Parameters and slices built by
// other calls (unknown capacity) are not flagged.
func uncappedLocalSlice(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	if fd.Body == nil || v.Pos() < fd.Body.Pos() || v.Pos() > fd.Body.End() {
		return false // parameter, receiver, or package-level
	}
	uncapped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if definedObj(pass, lhs) != types.Object(v) || i >= len(n.Rhs) {
					continue
				}
				uncapped = uncappedInit(pass, n.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] != types.Object(v) {
					continue
				}
				if i >= len(n.Values) {
					uncapped = true // var s []T: nil slice, zero capacity
				} else {
					uncapped = uncappedInit(pass, n.Values[i])
				}
			}
		}
		return true
	})
	return uncapped
}

// uncappedInit reports whether the initializer provably reserves no
// spare capacity: a composite literal or a make without a capacity
// argument. Anything else (another call, a slice expression) may carry
// capacity we cannot see, so it is not flagged.
func uncappedInit(pass *Pass, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		fid, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if ok && fid.Name == "make" && isBuiltin(pass, fid) {
			return len(e.Args) < 3
		}
	}
	return false
}

// directCallUse reports whether the identifier at the top of the walk
// is the function position of a call (fn(...)) — the one use of a local
// closure that does not force its context to escape.
func directCallUse(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == id
}

func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// closureEscapes reports whether the func literal whose ancestors are
// stack is in an escaping position: a call argument, a return value, a
// composite literal element, or the right-hand side of anything other
// than a plain local-variable assignment.
func closureEscapes(stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		return true // argument to a call (or immediately invoked via another path)
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.AssignStmt:
		// fn := func(...) {...} with a plain identifier target stays
		// stack-allocated when only called locally; anything fancier
		// (struct field, map slot, global) escapes.
		for i, rhs := range parent.Rhs {
			if _, ok := rhs.(*ast.FuncLit); ok && i < len(parent.Lhs) {
				if _, isIdent := parent.Lhs[i].(*ast.Ident); !isIdent {
					return true
				}
			}
		}
		return false
	default:
		return true
	}
}

// capturesOuter reports whether the func literal references a variable
// declared outside itself (a capture). Capture-free literals carry no
// context and cost nothing even when they escape.
func capturesOuter(pass *Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil || obj.Parent() == nil {
			return true
		}
		// A use whose definition lies outside the literal is a capture
		// (package-level objects excepted: they are not captured state).
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			if obj.Parent() != obj.Pkg().Scope() {
				captured = true
				return false
			}
		}
		return true
	})
	return captured
}
