package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum flags floating-point accumulation whose summation order
// depends on map iteration — the exact bug class behind the pre-PR-1
// fig4a TeraSort drift: FP addition is not associative, so summing in
// map order makes the last few ulps (and every tie-break downstream of
// them) vary run to run.
//
// It reports x += e, x -= e, x *= e, x /= e, and x = x ± e where x has
// floating-point type, x is declared outside the enclosing map range,
// and the write is not a distinct-slot update keyed by the range key.
// maporder usually flags the surrounding loop too; the two checks are
// suppressed independently so an allowed map range still cannot hide a
// float accumulation.
var FloatAccum = &Analyzer{
	Name:      "floataccum",
	Doc:       "flag float accumulation ordered by map iteration",
	AppliesTo: determinismCritical,
	Run:       runFloatAccum,
}

func runFloatAccum(pass *Pass) {
	walkStack(pass, func(n ast.Node, stack []ast.Node) bool {
		rs, isMap := mapRangeStmt(pass, n)
		if !isMap {
			return true
		}
		keyObj := definedObj(pass, rs.Key)
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			a, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch a.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(a.Lhs) == 1 && floatAccumulator(pass, a.Lhs[0], rs, keyObj) {
					pass.Reportf(a.Pos(), "float accumulation into %s ordered by map iteration: FP addition is not associative, so the result varies run to run", types.ExprString(a.Lhs[0]))
				}
			case token.ASSIGN:
				for i, lhs := range a.Lhs {
					if i < len(a.Rhs) && selfFloatUpdate(pass, lhs, a.Rhs[i]) && floatAccumulator(pass, lhs, rs, keyObj) {
						pass.Reportf(a.Pos(), "float accumulation into %s ordered by map iteration: FP addition is not associative, so the result varies run to run", types.ExprString(lhs))
					}
				}
			}
			return true
		})
		return true
	})
}

// floatAccumulator reports whether lhs is a float-typed location that
// carries state across iterations of rs: declared outside the loop
// body, and (for indexed writes) not keyed by the range key.
func floatAccumulator(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt, keyObj types.Object) bool {
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || !isFloatType(tv.Type) {
		return false
	}
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := identObj(pass, e)
		if obj == nil {
			return false
		}
		// Declared inside the loop body: per-iteration scratch, fine.
		return obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End()
	case *ast.IndexExpr:
		// m2[k] += v under the range key touches a distinct slot per
		// iteration; any other index is a shared accumulator.
		return keyObj == nil || !usesObj(pass, e.Index, keyObj)
	case *ast.SelectorExpr:
		return true // field of some longer-lived struct
	default:
		return true
	}
}

// selfFloatUpdate matches x = x + e / x = x - e / x = e + x forms.
func selfFloatUpdate(pass *Pass, lhs, rhs ast.Expr) bool {
	be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok || (be.Op != token.ADD && be.Op != token.SUB && be.Op != token.MUL && be.Op != token.QUO) {
		return false
	}
	obj := identObj(pass, lhs)
	if obj == nil {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj = pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return false
		}
	}
	return usesObj(pass, be.X, obj) || usesObj(pass, be.Y, obj)
}
