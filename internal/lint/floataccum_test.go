package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestFloatAccum(t *testing.T) {
	linttest.Run(t, lint.FloatAccum, "floataccum")
}
