package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// interproc is the cross-package analysis state shared by the
// interprocedural analyzers (detflow, errflow). It hangs off the Loader
// so call-graph nodes and function summaries are computed once per
// process no matter how many packages are analyzed — total work stays
// linear in the number of loaded packages, not quadratic in the number
// of analyzer runs that consult them.
type interproc struct {
	l     *Loader
	pkgOf map[*types.Package]*Package // reverse index over the loader cache

	graphs map[*Package]*callGraph

	detSummaries map[*types.Func]*detSummary
	detBusy      map[*types.Func]bool
	errSummaries map[*types.Func]*errSummary
	errBusy      map[*types.Func]bool
	ownSummaries map[*types.Func]*ownSummary
	ownBusy      map[*types.Func]bool

	spawnSummaries map[*types.Func]*spawnSummary
	spawnBusy      map[*types.Func]bool

	// package-level vars interned into ownSummary.globals bits
	globalIdx   map[types.Object]int
	globalOrder []types.Object
}

// interproc returns the cross-package state of the loader that produced
// p, creating it on first use.
func (p *Package) interproc() *interproc {
	if p.loader == nil {
		return nil
	}
	if p.loader.ip == nil {
		p.loader.ip = &interproc{
			l:            p.loader,
			pkgOf:        make(map[*types.Package]*Package),
			graphs:       make(map[*Package]*callGraph),
			detSummaries: make(map[*types.Func]*detSummary),
			detBusy:      make(map[*types.Func]bool),
			errSummaries: make(map[*types.Func]*errSummary),
			errBusy:      make(map[*types.Func]bool),
			ownSummaries: make(map[*types.Func]*ownSummary),
			ownBusy:      make(map[*types.Func]bool),

			spawnSummaries: make(map[*types.Func]*spawnSummary),
			spawnBusy:      make(map[*types.Func]bool),

			globalIdx: make(map[types.Object]int),
		}
	}
	return p.loader.ip
}

// packageFor maps a type-checker package back to its loaded source
// package, or nil for packages without module-local source (stdlib).
func (ip *interproc) packageFor(tp *types.Package) *Package {
	if p, ok := ip.pkgOf[tp]; ok {
		return p
	}
	// Refresh from the loader cache: type-checking routes module-local
	// imports through LoadDir, so every package whose source we can
	// analyze is already cached there.
	dirs := make([]string, 0, len(ip.l.byDir))
	for dir := range ip.l.byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		p := ip.l.byDir[dir]
		ip.pkgOf[p.Types] = p
	}
	p := ip.pkgOf[tp]
	if p == nil {
		ip.pkgOf[tp] = nil // memoize the miss so stdlib lookups stay O(1)
	}
	return p
}

// callGraph is one package's static call graph: a node per function or
// method declaration, with call sites resolved through the type
// checker. Nodes appear in declaration order (files are loaded sorted
// by name), so every traversal is deterministic.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	order []*cgNode
}

// cgNode is one declared function or method.
type cgNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	callees []*types.Func // static call targets, in source order, deduped
	detsafe bool          // //vhlint:detsafe on the doc comment
}

// graphFor builds (once) and returns the call graph of pkg.
func (ip *interproc) graphFor(pkg *Package) *callGraph {
	if g, ok := ip.graphs[pkg]; ok {
		return g
	}
	g := &callGraph{nodes: make(map[*types.Func]*cgNode)}
	safe := detsafeFuncs(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &cgNode{fn: fn, decl: fd, pkg: pkg, detsafe: safe[fd]}
			n.callees = calleesOf(pkg, fd)
			g.nodes[fn] = n
			g.order = append(g.order, n)
		}
	}
	ip.graphs[pkg] = g
	return g
}

// node resolves fn to its call-graph node, loading and indexing the
// defining package on demand. nil for functions without module-local
// source (stdlib, interface methods, builtins).
func (ip *interproc) node(fn *types.Func) *cgNode {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pkg := ip.packageFor(fn.Pkg())
	if pkg == nil {
		return nil
	}
	return ip.graphFor(pkg).nodes[fn]
}

// bottomUp returns the package's nodes in reverse topological order of
// intra-package call edges (callees before callers), so summary
// computation never re-enters an unfinished function except on true
// recursion. Cross-package edges are resolved on demand instead.
func (g *callGraph) bottomUp() []*cgNode {
	visited := make(map[*cgNode]bool)
	out := make([]*cgNode, 0, len(g.order))
	var visit func(n *cgNode)
	visit = func(n *cgNode) {
		if visited[n] {
			return
		}
		visited[n] = true
		for _, callee := range n.callees {
			if m := g.nodes[callee]; m != nil {
				visit(m)
			}
		}
		out = append(out, n)
	}
	for _, n := range g.order {
		visit(n)
	}
	return out
}

// calleesOf lists the functions fd's body statically calls.
func calleesOf(pkg *Package, fd *ast.FuncDecl) []*types.Func {
	if fd.Body == nil {
		return nil
	}
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pkg.Info, call); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// staticCallee resolves the called function or method of a call
// expression through the type info, or nil for dynamic calls (closure
// values, function-typed variables, conversions) and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
