package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlow flags error values that are produced and then lost: assigned
// from a call that can actually fail, but neither returned, passed to
// another call, stored, nor traced before being overwritten or going
// out of scope. Checking the error (err != nil) does not count as
// handling it — `if err != nil { break }` on a recovery path observes
// the failure and then silently discards its cause, which is exactly
// the bug class that turns a deterministic fault-injection run into an
// undiagnosable flake.
//
// Interprocedural summaries keep the signal clean: a dropped error from
// a callee that provably always returns nil is not reported. Error
// variables captured by closures — declared outside a func literal that
// reads or writes them — are skipped entirely: the closure may run at
// any time (deferred, handed to the scheduler), so the positional
// write/use model cannot order its accesses. Variables declared inside
// a closure are still tracked; their lifetime is confined to one body.
var ErrFlow = &Analyzer{
	Name:      "errflow",
	Doc:       "flag error values dropped or overwritten before they escape",
	AppliesTo: determinismCritical,
	Run:       runErrFlow,
}

// errSummary records whether a function can return a non-nil error.
type errSummary struct {
	mayFail bool
}

// mayFail reports whether fn can return a non-nil error, computed once
// per function from its return statements (forwarded calls recurse
// through summaries; recursion resolves optimistically).
func (ip *interproc) mayFail(fn *types.Func) bool {
	if s, ok := ip.errSummaries[fn]; ok {
		return s.mayFail
	}
	n := ip.node(fn)
	if n == nil {
		return true
	}
	if ip.errBusy[fn] {
		return false
	}
	ip.errBusy[fn] = true
	s := &errSummary{mayFail: computeMayFail(ip, n)}
	delete(ip.errBusy, fn)
	ip.errSummaries[fn] = s
	return s.mayFail
}

func computeMayFail(ip *interproc, n *cgNode) bool {
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok || n.decl.Body == nil {
		return true
	}
	var errIdx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return false
	}
	fails := false
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if fails {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false // nested function's returns are its own
		}
		r, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(r.Results) == 0:
			fails = true // naked return: a named error result may be set
		case len(r.Results) == 1 && sig.Results().Len() > 1:
			// return f(): all results forwarded from one call.
			fails = fails || callMayFail(ip, n.pkg, r.Results[0])
		default:
			for _, i := range errIdx {
				if i >= len(r.Results) {
					fails = true
					continue
				}
				res := r.Results[i]
				if tv, ok := n.pkg.Info.Types[res]; ok && tv.IsNil() {
					continue
				}
				fails = fails || callMayFail(ip, n.pkg, res)
			}
		}
		return true
	})
	return fails
}

// callMayFail reports whether expression e, used as a returned error,
// can be non-nil: a call to a function that may fail, or anything we
// cannot resolve (variables, wrapped errors).
func callMayFail(ip *interproc, pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return true
	}
	fn := staticCallee(pkg.Info, call)
	if fn == nil {
		return true
	}
	return ip.mayFail(fn)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func runErrFlow(pass *Pass) {
	ip := pass.pkg.interproc()
	if ip == nil {
		return
	}
	g := ip.graphFor(pass.pkg)
	for _, n := range g.order {
		if n.decl.Body == nil {
			continue
		}
		checkErrFlow(pass, ip, n.decl)
	}
}

type errWrite struct {
	pos     token.Pos // report position (the assignment)
	end     token.Pos // ordering position: stmt end, so same-stmt RHS uses precede
	callee  string    // producing call, "" for plain value writes
	mayFail bool
	loopPos token.Pos // innermost enclosing loop range, 0 when not in a loop
	loopEnd token.Pos
}

type errUse struct {
	pos    token.Pos
	escape bool
}

type errVar struct {
	obj       types.Object
	writes    []errWrite
	uses      []errUse
	inClosure bool // used inside a func literal: positional model breaks down
}

func checkErrFlow(pass *Pass, ip *interproc, fd *ast.FuncDecl) {
	vars := make(map[types.Object]*errVar)
	var order []*errVar
	get := func(obj types.Object) *errVar {
		v := vars[obj]
		if v == nil {
			v = &errVar{obj: obj}
			vars[obj] = v
			order = append(order, v)
		}
		return v
	}

	recordWrite := func(obj types.Object, lhsPos token.Pos, end token.Pos, rhs ast.Expr, stack []ast.Node) {
		if capturedBy(obj, stack) {
			get(obj).inClosure = true
			return
		}
		w := errWrite{pos: lhsPos, end: end}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			w.callee = calleeName(pass, call)
			fn := staticCallee(pass.pkg.Info, call)
			if fn == nil {
				w.mayFail = true
			} else {
				w.mayFail = ip.mayFail(fn)
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			switch l := stack[i].(type) {
			case *ast.ForStmt:
				w.loopPos, w.loopEnd = l.Pos(), l.End()
			case *ast.RangeStmt:
				w.loopPos, w.loopEnd = l.Pos(), l.End()
			case *ast.FuncLit:
				i = -1 // loop boundaries outside a closure do not apply
			}
			if w.loopPos != 0 {
				break
			}
		}
		get(obj).writes = append(get(obj).writes, w)
	}

	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			multi := len(n.Rhs) == 1 && len(n.Lhs) > 1
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				rhs := ast.Expr(nil)
				if multi {
					rhs = n.Rhs[0]
				} else if i < len(n.Rhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil {
					continue
				}
				recordWrite(obj, lhs.Pos(), n.End(), rhs, stack)
			}
		case *ast.ValueSpec:
			// var err error = f()
			for i, name := range n.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil || !isErrorType(obj.Type()) || i >= len(n.Values) {
					continue
				}
				recordWrite(obj, name.Pos(), n.End(), n.Values[i], stack)
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || !isErrorType(obj.Type()) {
				return true
			}
			if isAssignTarget(n, stack) {
				return true
			}
			v := get(obj)
			if capturedBy(obj, stack) {
				v.inClosure = true
				return true
			}
			escape, inClosure, decided := classifyErrUse(n, stack)
			if inClosure {
				v.inClosure = true
				return true
			}
			if decided {
				v.uses = append(v.uses, errUse{pos: n.Pos(), escape: escape})
			}
		case *ast.ReturnStmt:
			// Naked returns propagate every named error result.
			if len(n.Results) == 0 && fd.Type.Results != nil {
				for _, field := range fd.Type.Results.List {
					for _, name := range field.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj != nil && isErrorType(obj.Type()) {
							get(obj).uses = append(get(obj).uses, errUse{pos: n.Pos(), escape: true})
						}
					}
				}
			}
		}
		return true
	})

	const endPos = token.Pos(1 << 30)
	for _, v := range order {
		if v.inClosure {
			continue
		}
		sortWrites(v.writes)
		sortUses(v.uses)
		for wi, w := range v.writes {
			if !w.mayFail || w.callee == "" {
				continue
			}
			next := endPos
			if wi+1 < len(v.writes) {
				next = v.writes[wi+1].end
			}
			escaped, checked := false, false
			for _, u := range v.uses {
				inInterval := u.pos > w.end && u.pos < next
				inLoop := w.loopPos != 0 && u.pos >= w.loopPos && u.pos <= w.loopEnd
				if !inInterval && !inLoop {
					continue
				}
				checked = true
				if u.escape {
					escaped = true
					break
				}
			}
			if escaped {
				continue
			}
			name := v.obj.Name()
			switch {
			case next != endPos && !checked:
				pass.Reportf(w.pos, "error from %s assigned to %s is overwritten before it is even checked; the failure is silently lost", w.callee, name)
			case next != endPos:
				pass.Reportf(w.pos, "error from %s assigned to %s is checked but never escapes (not returned, passed on, or stored) before being overwritten; the failure cause is silently dropped", w.callee, name)
			case !checked:
				pass.Reportf(w.pos, "error from %s assigned to %s is neither checked nor propagated; a recovery-path failure would be silently lost", w.callee, name)
			default:
				pass.Reportf(w.pos, "error from %s assigned to %s is checked but never escapes this function (not returned, passed on, stored, or traced); the failure cause is silently dropped", w.callee, name)
			}
		}
	}
}

func sortWrites(ws []errWrite) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].end < ws[j-1].end; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func sortUses(us []errUse) {
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j].pos < us[j-1].pos; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

// capturedBy reports whether obj is referenced from inside a func
// literal it was declared outside of — a closure capture, whose
// execution time the positional model cannot order.
func capturedBy(obj types.Object, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return obj.Pos() < fl.Pos() || obj.Pos() > fl.End()
		}
	}
	return false
}

// isAssignTarget reports whether id is a left-hand side of its nearest
// enclosing assignment (a write, not a use).
func isAssignTarget(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	a, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range a.Lhs {
		if ast.Unparen(lhs) == ast.Expr(id) {
			return true
		}
	}
	return false
}

// classifyErrUse decides what a read of an error variable does with the
// value: escape (it leaves the function's hands — returned, passed to a
// call, stored somewhere, examined via method/field access) versus a
// bare check (nil comparison, switch). decided=false means the walk ran
// out of context (treated as a check by the caller's default).
func classifyErrUse(id *ast.Ident, stack []ast.Node) (escape, inClosure, decided bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.FuncLit:
			return false, true, false
		case *ast.ParenExpr, *ast.TypeAssertExpr:
			// transparent: keep climbing
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return true, false, true // address taken: aliases escape
			}
		case *ast.SelectorExpr:
			if p.Sel != id {
				return true, false, true // err.Error(), err.Field: content read out
			}
		case *ast.CallExpr:
			if id.Pos() >= p.Lparen {
				return true, false, true // argument to a call (incl. panic, errors.Is)
			}
		case *ast.ReturnStmt:
			return true, false, true
		case *ast.AssignStmt:
			if id.Pos() > p.TokPos {
				return true, false, true // flows into another variable/field/slot
			}
			return false, false, false // LHS of an outer assignment
		case *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			return true, false, true
		case *ast.BinaryExpr, *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.CaseClause, *ast.ForStmt, *ast.RangeStmt, *ast.ExprStmt:
			return false, false, true // condition-only: a check, not handling
		}
	}
	return false, false, true
}

// calleeName renders the called expression for diagnostics: the static
// callee's name when resolvable, a printed expression otherwise.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := staticCallee(pass.pkg.Info, call); fn != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return types.ExprString(sel.X) + "." + fn.Name()
		}
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}

// inspectWithStack is ast.Inspect carrying the ancestor stack
// (outermost first, excluding the node itself).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		enter := fn(n, stack)
		if enter {
			stack = append(stack, n)
		}
		return enter
	})
}
