package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestErrFlow(t *testing.T) {
	linttest.Run(t, lint.ErrFlow, "errflow")
}
