package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestXDomain(t *testing.T) {
	linttest.Run(t, lint.XDomain, "xdomain")
}
