package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive kinds.
const (
	DirectiveAllow   = "allow"   // //vhlint:allow <analyzer> -- <reason>
	DirectiveHot     = "hot"     // //vhlint:hot on a function's doc comment
	DirectiveDetsafe = "detsafe" // //vhlint:detsafe -- <reason> on a function's doc comment
	DirectiveOwner   = "owner"   // //vhlint:owner <domain> on a type, field, var or func
	DirectiveBad     = "bad"     // malformed; Err explains why
)

// Directive is one parsed //vhlint: source annotation.
type Directive struct {
	Pos      token.Position
	TokPos   token.Pos
	Kind     string
	Analyzer string // for allow
	Reason   string // for allow
	Domain   string // for owner
	Err      string // for bad
	used     bool   // allow suppressed at least one diagnostic
}

// parseDirectives extracts every //vhlint: comment from files. Malformed
// directives are returned with Kind=DirectiveBad rather than dropped, so
// the vhdirective analyzer can report them.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*Directive {
	var out []*Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//vhlint:")
				if !ok {
					continue
				}
				// Testdata convenience: a trailing "// want ..." expectation
				// on the same physical line is not part of the directive.
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				d := parseDirective(strings.TrimRight(text, " \t"))
				d.TokPos = c.Pos()
				d.Pos = fset.Position(c.Pos())
				out = append(out, d)
			}
		}
	}
	return out
}

func parseDirective(text string) *Directive {
	switch {
	case text == "hot":
		return &Directive{Kind: DirectiveHot}
	case text == "allow" || strings.HasPrefix(text, "allow "):
		rest := strings.TrimSpace(strings.TrimPrefix(text, "allow"))
		name, reason, found := strings.Cut(rest, "--")
		name = strings.TrimSpace(name)
		reason = strings.TrimSpace(reason)
		if name == "" {
			return &Directive{Kind: DirectiveBad, Err: "malformed //vhlint:allow: missing analyzer name"}
		}
		if !knownAnalyzer(name) {
			return &Directive{Kind: DirectiveBad, Err: fmt.Sprintf("//vhlint:allow names unknown analyzer %q (known: %s)", name, strings.Join(AnalyzerNames(), ", "))}
		}
		if !found || reason == "" {
			return &Directive{Kind: DirectiveBad, Err: fmt.Sprintf("malformed //vhlint:allow %s: missing '-- <reason>' justification", name)}
		}
		return &Directive{Kind: DirectiveAllow, Analyzer: name, Reason: reason}
	case text == "owner" || strings.HasPrefix(text, "owner "):
		rest := strings.TrimSpace(strings.TrimPrefix(text, "owner"))
		if rest == "" {
			return &Directive{Kind: DirectiveBad, Err: fmt.Sprintf("malformed //vhlint:owner: missing domain (known: %s)", strings.Join(DomainNames(), ", "))}
		}
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			return &Directive{Kind: DirectiveBad, Err: fmt.Sprintf("malformed //vhlint:owner %q: exactly one domain expected", rest)}
		}
		if !knownDomain(rest) {
			return &Directive{Kind: DirectiveBad, Err: fmt.Sprintf("//vhlint:owner names unknown domain %q (known: %s)", rest, strings.Join(DomainNames(), ", "))}
		}
		return &Directive{Kind: DirectiveOwner, Domain: rest}
	case text == "detsafe" || strings.HasPrefix(text, "detsafe "):
		rest := strings.TrimSpace(strings.TrimPrefix(text, "detsafe"))
		_, reason, found := strings.Cut(rest, "--")
		reason = strings.TrimSpace(reason)
		if !found || reason == "" {
			return &Directive{Kind: DirectiveBad, Err: "malformed //vhlint:detsafe: missing '-- <reason>' justification"}
		}
		return &Directive{Kind: DirectiveDetsafe, Reason: reason}
	default:
		word := text
		if i := strings.IndexAny(word, " \t"); i >= 0 {
			word = word[:i]
		}
		return &Directive{Kind: DirectiveBad, Err: fmt.Sprintf("unknown //vhlint: directive %q (known: allow, detsafe, hot, owner)", word)}
	}
}

func knownAnalyzer(name string) bool {
	for _, n := range AnalyzerNames() {
		if n == name {
			return true
		}
	}
	return false
}

// annotatedFuncs returns the function declarations carrying a directive
// of the given kind, matched by the directive appearing inside the
// function's doc comment.
func annotatedFuncs(files []*ast.File, directives []*Directive, kind string) map[*ast.FuncDecl]bool {
	out := make(map[*ast.FuncDecl]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, d := range directives {
				if d.Kind == kind && d.TokPos >= fd.Doc.Pos() && d.TokPos <= fd.Doc.End() {
					out[fd] = true
				}
			}
		}
	}
	return out
}

// hotFuncs returns the function declarations annotated //vhlint:hot.
func hotFuncs(pass *Pass) map[*ast.FuncDecl]bool {
	return annotatedFuncs(pass.Files, pass.directives, DirectiveHot)
}

// detsafeFuncs returns the function declarations annotated
// //vhlint:detsafe for the given package.
func detsafeFuncs(pkg *Package) map[*ast.FuncDecl]bool {
	return annotatedFuncs(pkg.Files, pkg.Directives(), DirectiveDetsafe)
}

// Directives reports malformed //vhlint: annotations, hot annotations
// that are not attached to a function declaration, and allow
// annotations for analyzers that do not run on the package (those would
// otherwise silently never match anything).
var Directives = &Analyzer{
	Name: "vhdirective",
	Doc:  "validate //vhlint: source annotations",
	Run:  runDirectives,
}

func runDirectives(pass *Pass) {
	attached := attachedDirectivePositions(pass)
	for _, d := range pass.directives {
		switch d.Kind {
		case DirectiveBad:
			pass.Reportf(d.TokPos, "%s", d.Err)
		case DirectiveHot:
			if !attached[d.TokPos] {
				pass.Reportf(d.TokPos, "//vhlint:hot is not attached to a function declaration's doc comment")
			}
		case DirectiveDetsafe:
			if !attached[d.TokPos] {
				pass.Reportf(d.TokPos, "//vhlint:detsafe is not attached to a function declaration's doc comment")
			}
		case DirectiveOwner:
			if !pass.pkg.ownerIndex().claimed[d.TokPos] {
				pass.Reportf(d.TokPos, "//vhlint:owner is not attached to a type declaration, struct field, package-level var, or function declaration")
			}
		case DirectiveAllow:
			for _, a := range All() {
				if a.Name == d.Analyzer && a.AppliesTo != nil && !a.AppliesTo(pass.PkgPath) {
					pass.Reportf(d.TokPos, "//vhlint:allow %s in package %s, where %s does not run", d.Analyzer, pass.PkgPath, d.Analyzer)
				}
			}
		}
	}
}

// attachedDirectivePositions marks the hot/detsafe directives that sit
// inside some function declaration's doc comment.
func attachedDirectivePositions(pass *Pass) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, d := range pass.directives {
				if (d.Kind == DirectiveHot || d.Kind == DirectiveDetsafe) &&
					d.TokPos >= fd.Doc.Pos() && d.TokPos <= fd.Doc.End() {
					out[d.TokPos] = true
				}
			}
		}
	}
	return out
}
