package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestSpawnDomain(t *testing.T) {
	linttest.Run(t, lint.SpawnDomain, "spawndomain")
}
