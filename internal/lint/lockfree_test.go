package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestLockFree(t *testing.T) {
	linttest.Run(t, lint.LockFree, "lockfree")
}
