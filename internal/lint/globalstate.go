package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GlobalState flags package-level mutable state reachable from
// sim.Proc closures. Every future engine shard executes procs; a
// package-level var a proc writes is implicitly shared across all
// shards, so it must be confined into a domain object, made
// immutable-after-init, or explicitly waived. Package-level sync
// primitives are flagged at the declaration: lock-protected globals
// are cross-shard coordination by construction, which the engine's
// single-threaded hand-off core is supposed to make unnecessary.
//
// Writes reached through calls are found via the same bottom-up
// ownership summaries xdomain uses (ownSummary.globals), so the check
// stays linear in tree size. Writes in init functions and package var
// initializers are exempt — immutable-after-init is the sanctioned
// global pattern. Aliasing through stored pointers (p := &g at setup
// time, *p = v in a proc) is not tracked; see DESIGN.md §11.
var GlobalState = &Analyzer{
	Name:      "globalstate",
	Doc:       "flag package-level mutable state reachable from sim.Proc closures",
	AppliesTo: determinismCritical,
	Run:       runGlobalState,
}

func runGlobalState(pass *Pass) {
	ip := pass.pkg.interproc()
	if ip == nil {
		return
	}
	reportSyncGlobals(pass)
	g := ip.graphFor(pass.pkg)
	for _, n := range g.bottomUp() {
		ip.ownSummaryFor(n.fn)
	}
	for _, n := range g.order {
		if n.decl.Body == nil || n.decl.Name.Name == "init" {
			continue
		}
		regions := entryRegions(pass.pkg, n.decl)
		if len(regions) == 0 {
			continue
		}
		inRegion := func(pos token.Pos) bool {
			for _, r := range regions {
				if pos >= r.from && pos <= r.to {
					return true
				}
			}
			return false
		}
		w := newOwnWalker(pass.pkg, ip, n.decl)
		w.onGlobal = func(pos token.Pos, v types.Object) {
			if !inRegion(pos) {
				return
			}
			pass.Reportf(pos, "proc code writes package-level var %s: shards would share it; confine it to a domain object, make it immutable-after-init, or annotate //vhlint:allow globalstate -- <reason>",
				domainKey(v.Pkg().Path(), v.Name()))
		}
		w.onGlobalCall = func(pos token.Pos, fn *types.Func, mask uint64) {
			if !inRegion(pos) || hasProcParam(fn) {
				return
			}
			names := ip.globalNames(mask)
			pass.Reportf(pos, "call to %s mutates package-level var%s %s from proc code; confine the state to a domain object or annotate //vhlint:allow globalstate -- <reason>",
				funcKey(fn), plural(len(names)), strings.Join(names, ", "))
		}
		w.run()
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// posRange is one proc-entry region of a function body.
type posRange struct{ from, to token.Pos }

// entryRegions returns the spans of fd that execute as proc code: the
// whole body when fd takes a *sim.Proc, otherwise the bodies of func
// literals that take a *sim.Proc or are passed directly to the engine's
// Spawn/SpawnAfter/At/After scheduling surface.
func entryRegions(pkg *Package, fd *ast.FuncDecl) []posRange {
	if funcTypeHasProc(pkg, fd.Type) {
		return []posRange{{fd.Body.Pos(), fd.Body.End()}}
	}
	var out []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if funcTypeHasProc(pkg, n.Type) {
				out = append(out, posRange{n.Body.Pos(), n.Body.End()})
				return false
			}
		case *ast.CallExpr:
			if fn := staticCallee(pkg.Info, n); fn != nil && isSpawnAPI(fn) {
				for _, a := range n.Args {
					if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
						out = append(out, posRange{fl.Body.Pos(), fl.Body.End()})
					}
				}
			}
		}
		return true
	})
	return out
}

// isSpawnAPI reports whether fn is one of the engine's proc/event
// scheduling entry points.
func isSpawnAPI(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "vhadoop/internal/sim" {
		return false
	}
	switch fn.Name() {
	case "Spawn", "SpawnAfter", "At", "After":
		return true
	}
	return false
}

// hasProcParam reports whether fn's signature takes a *sim.Proc.
func hasProcParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isProcPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// funcTypeHasProc reports whether an ast function type declares a
// *sim.Proc parameter.
func funcTypeHasProc(pkg *Package, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pkg.Info.Types[field.Type]; ok && isProcPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isProcPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "vhadoop/internal/sim" && named.Obj().Name() == "Proc"
}

// reportSyncGlobals flags package-level vars whose type embeds a sync
// primitive.
func reportSyncGlobals(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || !isPkgLevelVar(obj) {
						continue
					}
					if prim := syncPrimIn(obj.Type(), make(map[types.Type]bool)); prim != "" {
						pass.Reportf(name.Pos(), "package-level var %s contains %s: cross-shard lock state; move it into a domain object or annotate //vhlint:allow globalstate -- <reason>",
							name.Name, prim)
					}
				}
			}
		}
	}
}

// syncPrimIn returns the name of the first sync/atomic primitive found
// inside t, or "".
func syncPrimIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() {
		case "sync", "sync/atomic":
			return fmt.Sprintf("%s.%s", named.Obj().Pkg().Name(), named.Obj().Name())
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if prim := syncPrimIn(u.Field(i).Type(), seen); prim != "" {
				return prim
			}
		}
	case *types.Pointer:
		return syncPrimIn(u.Elem(), seen)
	case *types.Array:
		return syncPrimIn(u.Elem(), seen)
	}
	return ""
}
