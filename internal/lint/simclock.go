package lint

import (
	"go/ast"
	"go/types"
)

// SimClock forbids wall-clock time and the global math/rand stream in
// simulator-driven code. Virtual time comes from the sim.Engine clock
// (Engine.Now, Proc.Sleep); randomness comes from the seeded
// Engine.Rand(). Wall-clock reads make run length depend on host load,
// and the global rand stream is shared process state that breaks
// fixed-seed reproducibility (and is racy under -race with parallel
// tests). Constructing seeded sources (rand.New, rand.NewSource,
// rand.NewZipf, rand.NewPCG, ...) stays legal.
var SimClock = &Analyzer{
	Name:      "simclock",
	Doc:       "forbid wall-clock time and global math/rand in simulator-driven code",
	AppliesTo: determinismCritical,
	Run:       runSimClock,
}

// bannedTime is the subset of package time that observes or waits on
// the host clock. Pure arithmetic (time.Duration, time.Unix) is fine.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand is the subset of math/rand{,/v2} package-level functions
// that build explicitly-seeded sources rather than using the global one.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSimClock(pass *Pass) {
	walkStack(pass, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		pkg, name := obj.Pkg().Path(), obj.Name()
		switch {
		case pkg == "time" && bannedTime[name]:
			pass.Reportf(sel.Pos(), "time.%s reads the host clock; simulator-driven code must use the sim.Engine virtual clock (Engine.Now, Proc.Sleep)", name)
		case (pkg == "math/rand" || pkg == "math/rand/v2") && !allowedRand[name] && isPackageLevelFunc(obj):
			pass.Reportf(sel.Pos(), "global %s.%s breaks fixed-seed reproducibility; draw from the seeded Engine.Rand() instead", pkgBase(pkg), name)
		}
		return true
	})
}

// isPackageLevelFunc reports whether obj is a package-level function
// (not a method, not a type or variable, not rand.Rand methods).
func isPackageLevelFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
