package lint_test

import (
	"testing"

	"vhadoop/internal/lint"
	"vhadoop/internal/lint/linttest"
)

func TestGlobalState(t *testing.T) {
	linttest.Run(t, lint.GlobalState, "globalstate")
}
