package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The sharding-readiness ledger is the reviewable artifact behind
// `vhlint -owners`: a deterministic JSON inventory of the ownership
// model — which state belongs to which domain, which package-level vars
// are mutable, and every cross-domain write with its waiver status. It
// is checked in at the repository root (SHARDLEDGER.json) and diffed by
// CI, so "is the engine shardable yet?" is answered by reading a diff
// rather than re-deriving the analysis. The encoding carries no
// positions or timestamps: it is byte-identical across runs and only
// changes when the ownership structure of the tree changes.

// Ledger is the -owners output. All slices are sorted and all map keys
// serialize sorted, so marshaling is deterministic.
type Ledger struct {
	Version    int                    `json:"version"`
	Domains    []string               `json:"domains"`
	Defaults   map[string]string      `json:"defaults"` // package (short path) → default domain
	Owners     []LedgerOwner          `json:"owners"`
	Globals    []LedgerGlobal         `json:"globals"`
	Crossings  []LedgerCrossing       `json:"crossings"`
	Spawnsites []LedgerSpawnsite      `json:"spawnsites"`
	Counts     map[string]LedgerCount `json:"counts"`
}

// LedgerOwner is one explicit domain assignment: a //vhlint:owner
// annotation or a built-in domain root type.
type LedgerOwner struct {
	Key    string `json:"key"`  // pkg.Name, pkg.Type.field, pkg.Recv.Method
	Kind   string `json:"kind"` // type | field | var | func | root
	Domain string `json:"domain"`
	Source string `json:"source"` // annotation | root
}

// LedgerGlobal is one package-level var some function mutates.
type LedgerGlobal struct {
	Key     string   `json:"key"`
	Domain  string   `json:"domain"`
	Writers []string `json:"writers"` // functions writing it directly
}

// LedgerCrossing is one cross-domain write chokepoint, aggregated over
// its call/write sites.
type LedgerCrossing struct {
	Writer       string `json:"writer"` // function containing the write
	WriterDomain string `json:"writerDomain"`
	Target       string `json:"target"` // carrier of the written state (or callee)
	TargetDomain string `json:"targetDomain"`
	Sites        int    `json:"sites"`
	Waived       int    `json:"waived"` // sites carrying a //vhlint:allow xdomain
	Reason       string `json:"reason,omitempty"`
}

// LedgerSpawnsite is one scheduling chokepoint — all sites in a
// function that spawn the same-named process through the same API —
// with the spawndomain classification of the closure it schedules.
// It is the work-list of the Shared-exit migration: every confined
// entry still on Spawn/SpawnAfter is a licensed SpawnOn move, and
// every shared-required entry documents (via writes/blockers) exactly
// what keeps the process on the coordinator.
type LedgerSpawnsite struct {
	Func     string   `json:"func"`
	Proc     string   `json:"proc,omitempty"` // spawned process name; "" for At/After events
	API      string   `json:"api"`
	Class    string   `json:"class"`            // confined | mixed | shared-required
	Domain   string   `json:"domain,omitempty"` // confined target domain; "" = any
	Writes   []string `json:"writes,omitempty"` // domains the closure transitively writes
	Blockers []string `json:"blockers,omitempty"`
	Sites    int      `json:"sites"`
}

// LedgerCount is one analyzer's finding tally over the tree.
type LedgerCount struct {
	Active int `json:"active"`
	Waived int `json:"waived"`
}

// BuildLedger loads every package directory and assembles the ownership
// ledger. All packages are loaded before any analysis so summaries see
// the whole tree regardless of directory order.
func BuildLedger(loader *Loader, dirs []string) (*Ledger, error) {
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	led := &Ledger{
		Version:  1,
		Domains:  DomainNames(),
		Defaults: make(map[string]string),
		Counts:   make(map[string]LedgerCount),
	}
	for root, domain := range domainRoots {
		i := strings.LastIndex(root, ".")
		led.Owners = append(led.Owners, LedgerOwner{
			Key:    domainKey(root[:i], root[i+1:]),
			Kind:   "root",
			Domain: domain,
			Source: "root",
		})
	}

	type gkey struct{ key, domain string }
	globals := make(map[gkey]map[string]bool) // → direct writer set
	crossings := make(map[LedgerCrossing]*LedgerCrossing)
	type skey struct{ fn, proc, api string }
	spawns := make(map[skey]*LedgerSpawnsite)

	for _, pkg := range pkgs {
		if !determinismCritical(pkg.Path) {
			continue
		}
		ip := pkg.interproc()
		if ip == nil {
			continue
		}
		led.Defaults[shortPath(pkg.Path)] = pkgDefaultDomain(pkg.Path)

		// Annotated owners.
		idx := pkg.ownerIndex()
		for obj, domain := range idx.domains {
			led.Owners = append(led.Owners, LedgerOwner{
				Key:    domainKey(pkg.Path, idx.keys[obj]),
				Kind:   idx.kinds[obj],
				Domain: domain,
				Source: "annotation",
			})
		}

		// Per-function walks: crossings and direct global writes.
		allows := xdomainAllows(pkg)
		g := ip.graphFor(pkg)
		for _, n := range g.bottomUp() {
			ip.ownSummaryFor(n.fn)
		}
		for _, n := range g.order {
			if n.decl.Body == nil {
				continue
			}
			writer := funcKey(n.fn)
			w := newOwnWalker(pkg, ip, n.decl)
			w.onCross = func(pos token.Pos, domain, targetKey string, callee *types.Func) {
				k := LedgerCrossing{Writer: writer, WriterDomain: w.ctx, Target: targetKey, TargetDomain: domain}
				c := crossings[k]
				if c == nil {
					c = &LedgerCrossing{Writer: writer, WriterDomain: w.ctx, Target: targetKey, TargetDomain: domain}
					crossings[k] = c
				}
				c.Sites++
				if reason, ok := allowReason(pkg, allows, pos); ok {
					c.Waived++
					if c.Reason == "" {
						c.Reason = reason
					}
				}
			}
			w.onGlobal = func(pos token.Pos, v types.Object) {
				d, key := ip.varDomain(v)
				k := gkey{key, d}
				if globals[k] == nil {
					globals[k] = make(map[string]bool)
				}
				globals[k][writer] = true
			}
			w.run()

			// Spawn-site inventory (the engine's own scheduling calls are
			// mechanism, not migration targets).
			if pkg.Path == simPkgPath {
				continue
			}
			for _, st := range spawnSitesIn(pkg, n.decl.Body) {
				c := ip.classifySpawn(pkg, st)
				k := skey{writer, procNameOf(pkg, st.nameArg), st.api}
				e := spawns[k]
				if e == nil {
					e = &LedgerSpawnsite{Func: k.fn, Proc: k.proc, API: k.api, Class: c.class, Domain: c.domain}
					spawns[k] = e
				}
				e.Sites++
				e.Class = worseSpawnClass(e.Class, c.class)
				if e.Domain != c.domain {
					e.Domain = ""
				}
				e.Writes = mergeSorted(e.Writes, c.writes)
				e.Blockers = mergeSorted(e.Blockers, c.blockers)
			}
		}

		// Finding counts, with allow suppression applied the same way the
		// analyzers themselves apply it.
		for _, a := range []*Analyzer{GlobalState, XDomain, SpawnDomain, BlockShared, SendLag} {
			count := led.Counts[a.Name]
			for _, diag := range runAnalyzer(pkg, a) {
				if diag.Suppressed {
					count.Waived++
				} else {
					count.Active++
				}
			}
			led.Counts[a.Name] = count
		}
	}

	gkeys := make([]gkey, 0, len(globals))
	for k := range globals {
		gkeys = append(gkeys, k)
	}
	sort.Slice(gkeys, func(i, j int) bool {
		if gkeys[i].key != gkeys[j].key {
			return gkeys[i].key < gkeys[j].key
		}
		return gkeys[i].domain < gkeys[j].domain
	})
	for _, k := range gkeys {
		ws := make([]string, 0, len(globals[k]))
		for wk := range globals[k] {
			ws = append(ws, wk)
		}
		sort.Strings(ws)
		led.Globals = append(led.Globals, LedgerGlobal{Key: k.key, Domain: k.domain, Writers: ws})
	}
	for _, c := range crossings {
		led.Crossings = append(led.Crossings, *c)
	}
	sort.Slice(led.Owners, func(i, j int) bool {
		a, b := led.Owners[i], led.Owners[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Kind < b.Kind
	})
	sort.Slice(led.Crossings, func(i, j int) bool {
		a, b := led.Crossings[i], led.Crossings[j]
		if a.Writer != b.Writer {
			return a.Writer < b.Writer
		}
		return a.Target < b.Target
	})
	skeys := make([]skey, 0, len(spawns))
	for k := range spawns {
		skeys = append(skeys, k)
	}
	sort.Slice(skeys, func(i, j int) bool {
		a, b := skeys[i], skeys[j]
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		if a.proc != b.proc {
			return a.proc < b.proc
		}
		return a.api < b.api
	})
	for _, k := range skeys {
		s := spawns[k]
		if s.Class != classConfined {
			s.Domain = "" // a merged-to-worse chokepoint has no single target
		}
		led.Spawnsites = append(led.Spawnsites, *s)
	}
	return led, nil
}

// worseSpawnClass merges two site classes conservatively:
// shared-required > mixed > confined.
func worseSpawnClass(a, b string) string {
	rank := func(c string) int {
		switch c {
		case classSharedRequired:
			return 2
		case classMixed:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// mergeSorted unions two sorted string slices, deduplicated.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Encode renders the ledger as indented JSON with a trailing newline —
// the exact bytes SHARDLEDGER.json holds.
func (l *Ledger) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnwaivedCrossings counts crossing sites not covered by a
// //vhlint:allow xdomain waiver — the number the tree must hold at zero
// to be shardsafe.
func (l *Ledger) UnwaivedCrossings() int {
	n := 0
	for _, c := range l.Crossings {
		n += c.Sites - c.Waived
	}
	return n
}

// ConfinedOnSpawn counts spawn sites the inference proves migratable
// (confined) that still enter through the Shared-implied
// Spawn/SpawnAfter APIs — the number the Shared-exit migration drives
// to, and CI holds at, zero.
func (l *Ledger) ConfinedOnSpawn() int {
	n := 0
	for _, s := range l.Spawnsites {
		if s.Class == classConfined && (s.API == "Spawn" || s.API == "SpawnAfter") {
			n += s.Sites
		}
	}
	return n
}

func shortPath(path string) string {
	p := strings.TrimPrefix(path, "vhadoop/internal/")
	return strings.TrimPrefix(p, "vhadoop/")
}

// xdomainAllows collects the package's //vhlint:allow xdomain
// directives for ledger-side waiver matching.
func xdomainAllows(pkg *Package) []*Directive {
	var out []*Directive
	for _, d := range pkg.Directives() {
		if d.Kind == DirectiveAllow && d.Analyzer == XDomain.Name {
			out = append(out, d)
		}
	}
	return out
}

// allowReason applies the same suppression rule runAnalyzer uses — an
// allow on the finding's line or the line directly above — and returns
// the waiver's written reason.
func allowReason(pkg *Package, allows []*Directive, pos token.Pos) (string, bool) {
	p := pkg.Fset.Position(pos)
	for _, al := range allows {
		if al.Pos.Filename == p.Filename && (al.Pos.Line == p.Line || al.Pos.Line == p.Line-1) {
			return al.Reason, true
		}
	}
	return "", false
}
