// Test fixtures for the errflow analyzer: error values produced by a
// call that can actually fail, then dropped, overwritten unexamined, or
// checked without the failure ever escaping the function.
package errflow

import "errors"

var errBoom = errors.New("boom")

// flaky can actually fail, so dropping its error is reportable.
func flaky() error { return errBoom }

// alwaysNil provably cannot fail; its summary exempts callers.
func alwaysNil() error { return nil }

// forwardsNil only forwards alwaysNil, so it cannot fail either — the
// may-fail summary recurses through forwarded calls.
func forwardsNil() error { return alwaysNil() }

// propagated is the correct shape: checked, then returned.
func propagated() error {
	err := flaky()
	if err != nil {
		return err
	}
	return nil
}

// checkedOnly observes the failure and then discards its cause: the
// error never leaves the function.
func checkedOnly() {
	err := flaky() // want "checked but never escapes this function"
	if err != nil {
		return
	}
}

// declaredAndDropped is checkedOnly through a var declaration with an
// initializer instead of a short variable declaration.
func declaredAndDropped() {
	var err error = flaky() // want "checked but never escapes this function"
	if err != nil {
		return
	}
}

// clobbered overwrites the first error without ever looking at it.
func clobbered() error {
	err := flaky() // want "overwritten before it is even checked"
	err = flaky()
	return err
}

// checkedThenClobbered checks the first error but lets the reassignment
// destroy the cause before it can escape.
func checkedThenClobbered() (int, error) {
	retries := 0
	err := flaky() // want "before being overwritten"
	if err != nil {
		retries++
	}
	err = flaky()
	return retries, err
}

// infallibleDropped is clean: alwaysNil provably returns nil, so there
// is no failure to lose.
func infallibleDropped() {
	err := alwaysNil()
	if err != nil {
		return
	}
}

// forwardedInfallibleDropped is clean through the recursive summary.
func forwardedInfallibleDropped() {
	err := forwardsNil()
	if err != nil {
		return
	}
}

// noteFailure stands in for any handler the error is passed to.
func noteFailure(err error) {}

// handedOff is clean: passing the error to a call lets it escape.
func handedOff() {
	err := flaky()
	if err != nil {
		noteFailure(err)
	}
}

type result struct{ err error }

// storedInField is clean: the error escapes into a struct slot.
func storedInField(r *result) {
	err := flaky()
	r.err = err
}

// retryLoop is clean: the error written inside the loop escapes via the
// return after it — uses anywhere in the enclosing loop's interval (or
// after the final write) count.
func retryLoop() error {
	var err error
	for i := 0; i < 3; i++ {
		err = flaky()
		if err == nil {
			break
		}
	}
	return err
}

// capturedByClosure is skipped entirely: the closure may run at any
// time, so the positional write/use model cannot order its accesses.
func capturedByClosure(run func(func())) {
	var err error
	run(func() {
		err = flaky()
	})
	if err != nil {
		return
	}
}

// allowedProbe documents a deliberate check-and-drop.
func allowedProbe() {
	//vhlint:allow errflow -- test fixture: probe call, failure only means the fast path is unavailable
	err := flaky()
	if err != nil {
		return
	}
}

// staleAllowed annotates a site that drops nothing.
func staleAllowed() error {
	//vhlint:allow errflow -- test fixture: propagated error needs no allow // want "stale //vhlint:allow errflow"
	err := flaky()
	return err
}
