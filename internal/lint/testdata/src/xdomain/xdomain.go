// Test fixtures for the xdomain analyzer: ownership domains assigned
// via //vhlint:owner annotations and the built-in root table, with
// cross-domain writes flagged at the deepest frame that crosses. The
// package path is test/xdomain, so unannotated code here runs in the
// shared default context.
package xdomain

import "vhadoop/internal/xen"

// pipe is vnet-domain state; note is the jobtracker-style shared
// exception proving field overrides beat the type's domain.
//
//vhlint:owner vnet
type pipe struct {
	queued int
	note   string //vhlint:owner shared
}

// node is machine-domain state.
//
//vhlint:owner machine
type node struct {
	cpu  int
	wire *pipe
	tags map[string]bool
}

// ticker is engine-domain state.
//
//vhlint:owner engine
type ticker struct {
	ticks int
}

// load writes its own domain's state: a node method runs in machine
// context, so this is clean.
func (n *node) load(v int) {
	n.cpu = v
}

// leak writes vnet state directly from machine context.
func (n *node) leak() {
	n.wire.queued++ // want "write to test/xdomain.pipe .vnet-domain state. from machine-domain context"
}

// bump mutates the pipe in its own context; its summary records a
// vnet-domain write for callers to account for.
func (pl *pipe) bump() {
	pl.queued++
}

// relay crosses by delegation: bump's summary surfaces at the call.
func (n *node) relay() {
	n.wire.bump() // want "call to test/xdomain.pipe.bump writes vnet-domain state from machine-domain context"
}

// tickle reaches engine state from machine context.
func (n *node) tickle(tk *ticker) {
	tk.ticks++ // want "write to test/xdomain.ticker .engine-domain state. from machine-domain context"
}

// steal runs in the package's shared default context and writes
// machine state.
func steal(n *node) {
	n.cpu = 0 // want "write to test/xdomain.node .machine-domain state. from shared-domain context"
}

// wipe mutates a machine-owned map through the delete builtin.
func wipe(n *node, key string) {
	delete(n.tags, key) // want "write to test/xdomain.node .machine-domain state. from shared-domain context"
}

// resize writes a domain-root type from the built-in table: xen.VM is
// machine state with no annotation in sight.
func resize(vm *xen.VM) {
	vm.MemBytes = 0 // want "write to xen.VM .machine-domain state. from shared-domain context"
}

// build constructs a fresh pipe: writes during construction of an
// object this function owns are not crossings.
func build() *pipe {
	pl := &pipe{}
	pl.queued = 4
	return pl
}

// ingest is a declared vnet entry point: its body runs in vnet context
// and calling it is a sanctioned context transfer, not a crossing.
//
//vhlint:owner vnet
func ingest(pl *pipe, v int) {
	pl.queued += v
}

// feed calls the entry point from shared context: clean.
func feed(pl *pipe) {
	ingest(pl, 1)
}

// label writes the pipe's shared-annotated field from machine context:
// the field override wins, so this is clean.
func (n *node) label() {
	n.wire.note = "ok"
}

// rebind reassigns a local holding foreign state: rebinding a variable
// never mutates domain state.
func rebind(pl *pipe) {
	pl = &pipe{}
	_ = pl
}

// drain carries a waiver: the crossing is suppressed, not emitted.
func (n *node) drain() {
	//vhlint:allow xdomain -- fixture: harness-style direct poke to prove suppression
	n.wire.queued = 0
}
