// Test fixtures for the detflow analyzer: interprocedural taint from
// nondeterminism sources (host clock, global math/rand, map iteration
// order, channel receives) into reproducibility sinks. The package is
// named main so the program-output sinks (fmt.Print*, os.WriteFile)
// are live alongside the engine-trace sink.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"vhadoop/internal/jobsvc"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/obs"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

func main() {}

// traceClock feeds the host clock straight into the engine trace.
func traceClock(e *sim.Engine) {
	e.Tracef("started at %v", time.Now()) // want "the host clock"
}

// stamp derives a string from the wall clock; its summary carries the
// clock taint to every caller.
func stamp() string {
	return time.Now().String()
}

// traceStamp picks the taint up across the call to stamp.
func traceStamp(e *sim.Engine) {
	e.Tracef("stamp %s", stamp()) // want "the host clock"
}

// traceVia itself is clean — in report mode parameters start
// untainted, because call sites account for their arguments — but its
// summary records that argument position 1 reaches a sink inside.
func traceVia(e *sim.Engine, msg string) {
	e.Tracef("%s", msg)
}

// callTraceVia is caught through traceVia's sink-parameter summary.
func callTraceVia(e *sim.Engine) {
	traceVia(e, time.Now().String()) // want "sink inside traceVia"
}

// traceElapsed propagates clock taint through two local assignments.
func traceElapsed(e *sim.Engine) {
	start := time.Now()
	elapsed := time.Since(start)
	e.Tracef("took %v", elapsed) // want "the host clock"
}

// printKeysUnsorted builds a slice in map-visit order and prints it. The
// comparator sort does not cleanse: a comparator that ties would leave
// tied runs in map order, so only provably-total sorts count.
func printKeysUnsorted(counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Println(keys) // want "map iteration order"
}

// printKeysSorted is the blessed idiom: sort.Strings imposes a total
// order, which cleanses the map-order taint before the sink.
func printKeysSorted(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(keys)
}

// printDraw lets the global math/rand stream reach program output.
func printDraw() {
	fmt.Printf("draw=%d\n", rand.Intn(6)) // want "math/rand stream"
}

// printFirstResult prints whichever goroutine finished first: channel
// receives carry goroutine completion order.
func printFirstResult(results chan string) {
	v := <-results
	fmt.Println(v) // want "goroutine completion order"
}

// dumpReport writes map-ordered lines to a file sink.
func dumpReport(counts map[string]int) error {
	var lines []string
	for k, v := range counts {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v))
	}
	return os.WriteFile("report.txt", []byte(strings.Join(lines, "\n")), 0o644) // want "map iteration order"
}

// emitKeys writes keys to job output in map-visit order through the
// dynamic mapreduce.Emit sink.
func emitKeys(emit mapreduce.Emit, counts map[string]int) {
	for k := range counts {
		emit(k, 1, 1) // want "map iteration order"
	}
}

// pickAny returns an arbitrary key. Determinism is argued by hand (any
// key is acceptable here), so the body is vouched for and callers see a
// clean summary.
//
//vhlint:detsafe -- test fixture: any key is acceptable, the choice is not replay-compared
func pickAny(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// printAny is clean: pickAny's detsafe summary clears the taint.
func printAny(m map[string]int) {
	fmt.Println(pickAny(m))
}

// constantLabel's only map-ordered return sits inside a nested func
// literal; that return belongs to the closure, not to constantLabel,
// whose own result is a literal. Its summary must stay clean.
func constantLabel(m map[string]int) string {
	pick := func() string {
		for k := range m {
			return k
		}
		return ""
	}
	_ = pick
	return "label"
}

// printConstant is clean thanks to constantLabel's closure-free summary.
func printConstant(m map[string]int) {
	fmt.Println(constantLabel(m))
}

// printTimestampAllowed documents a deliberate wall-clock trace line.
func printTimestampAllowed(e *sim.Engine) {
	//vhlint:allow detflow -- test fixture: timing line excluded from replay comparison
	e.Tracef("wall time %v", time.Now())
}

// staleAllowed annotates a line that sinks nothing nondeterministic.
func staleAllowed(e *sim.Engine) {
	//vhlint:allow detflow -- test fixture: constant trace needs no allow // want "stale //vhlint:allow detflow"
	e.Tracef("constant line")
}

// The observability plane's exports (span trace, metrics snapshot) are
// replay-compared byte for byte, so they are sinks exactly like the
// engine trace.

// obsEventClock feeds the host clock into a typed span event.
func obsEventClock(pl *obs.Plane) {
	pl.Eventf(obs.KindCluster, "started at %v", time.Now()) // want "the host clock"
}

// obsSpanNameFromMap opens a span named by a map-ordered pick.
func obsSpanNameFromMap(tr *obs.Tracer, m map[string]int) {
	var name string
	for k := range m {
		name = k
	}
	tr.Start(obs.KindTask, name, nil) // want "map iteration order"
}

// obsAttrFromRand lets the global math/rand stream reach a span attribute.
func obsAttrFromRand(sp *obs.Span) {
	sp.SetFloat("draw", rand.Float64()) // want "math/rand stream"
}

// obsCounterLabelFromMap mints counter label values in map-visit order:
// the labels land in the metrics snapshot's canonical key set.
func obsCounterLabelFromMap(reg *obs.Registry, m map[string]int) {
	for k := range m {
		reg.Counter("hits_total", "key", k).Inc() // want "map iteration order"
	}
}

// obsObserveWallElapsed feeds a wall-clock duration into a histogram.
func obsObserveWallElapsed(h *obs.Histogram) {
	start := time.Now()
	h.Observe(float64(time.Since(start))) // want "the host clock"
}

// obsGaugeClean is the blessed path: deterministic values may flow into
// the registry freely.
func obsGaugeClean(reg *obs.Registry, vms int) {
	reg.Gauge("cluster_vms").Set(float64(vms))
}

// obsSpanClean exercises the span surface with deterministic inputs.
func obsSpanClean(pl *obs.Plane, name string, seconds float64) {
	sp := pl.Start(obs.KindTask, name, nil)
	sp.SetAttr("outcome", "done")
	sp.SetFloat("seconds", seconds)
	sp.Finish()
}

// The job service's submission surface is a sink too: tenant names and
// submission arguments land in the daemon's trace and span events and
// in the canonical per-tenant report, all replay-compared.

// jobsvcRegisterStamp mints a tenant name from the wall clock; the name
// keys the byte-compared tenant report.
func jobsvcRegisterStamp(svc *jobsvc.Service) {
	_, _ = svc.Register(stamp(), 1) // want "the job-service tenant report"
}

// jobsvcSubmitRand routes the global math/rand stream into a submission
// argument; the tenant name lands in the dispatch trace line.
func jobsvcSubmitRand(p *sim.Proc, svc *jobsvc.Service) {
	_, _ = svc.Submit(p, fmt.Sprintf("t%d", rand.Int()), workloads.WordcountSpec{Input: "/in"}) // want "the job-service event stream"
}

// jobsvcSubmitClean is the blessed path: deterministic tenant names and
// specs flow into the service freely.
func jobsvcSubmitClean(p *sim.Proc, svc *jobsvc.Service) {
	_, _ = svc.Submit(p, "gold", workloads.WordcountSpec{Input: "/in", SizeBytes: 8e6, Reduces: 1})
}
