// Package maporder exercises the maporder analyzer: nondeterministic
// map iteration is flagged unless the loop body is provably
// order-insensitive or carries a justified allow annotation.
package maporder

import (
	"maps"
	"slices"
	"sort"
)

// floatAccumulation is the classic violation: FP summation in map order.
func floatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "iteration order is nondeterministic"
		total += v
	}
	return total
}

// unsortedCollect appends map keys but never sorts them.
func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

// firstKey returns whichever key the runtime yields first.
func firstKey(m map[string]int) string {
	for k := range m { // want "iteration order is nondeterministic"
		return k
	}
	return ""
}

// tieBreakByOrder keeps the first maximal element it happens to visit.
func tieBreakByOrder(m map[string]int) string {
	best, bestN := "", -1
	for k, n := range m { // want "iteration order is nondeterministic"
		if n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// sortedCollect is the canonical fix: collect then sort.
func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// model shows the sorted-sink pattern through a struct field.
type model struct {
	labels []string
}

func (mo *model) fieldSink(m map[string]int) {
	mo.labels = mo.labels[:0]
	for l := range m {
		mo.labels = append(mo.labels, l)
	}
	sort.Strings(mo.labels)
}

// counting only accumulates integers: addition commutes, order is moot.
func counting(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return n, sum
}

// distinctWrites hits a distinct slot of another map per iteration.
func distinctWrites(src map[string]int, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

// keyedFloatSlot accumulates floats, but each slot sees exactly one
// update per sweep, so visit order cannot reorder any slot's sum.
func keyedFloatSlot(src map[string]float64, dst map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// drain deletes from the ranged map itself.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// existence only returns constants.
func existence(m map[string]int) bool {
	for _, v := range m {
		if v > 10 {
			return true
		}
	}
	return false
}

// flagSet writes a constant boolean: idempotent under reordering.
func flagSet(m map[string]int) bool {
	saw := false
	for _, v := range m {
		if v < 0 {
			saw = true
		}
	}
	return saw
}

// sortLocalValue sorts a per-iteration local, then sinks into a slice
// that is itself sorted after the loop.
func sortLocalValue(groups map[int][]int) [][]int {
	var out [][]int
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// sortedKeysIter wraps the maps.Keys iterator in slices.Sorted.
func sortedKeysIter(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// rawKeysIter consumes the iterator unsorted.
func rawKeysIter(m map[string]int) []string {
	return slices.Collect(maps.Keys(m)) // want "nondeterministic order"
}

// annotated carries a justified allow and is suppressed.
func annotated(m map[string]float64) float64 {
	total := 0.0
	//vhlint:allow maporder -- test fixture: summation result is fed to an order-insensitive consumer
	for _, v := range m {
		total += v
	}
	return total
}

// staleAllow annotates a loop that is already order-insensitive, so the
// annotation itself is reported.
func staleAllow(m map[string]int) int {
	n := 0
	//vhlint:allow maporder -- test fixture: nothing here needs suppressing // want "stale //vhlint:allow maporder"
	for range m {
		n++
	}
	return n
}
