// Test fixtures for the spawndomain analyzer. The package default
// domain of test packages is shared, so unannotated state keeps a
// closure shared-required; the annotated types below carve out
// machine- and vnet-confined state.
package spawndomain

import "vhadoop/internal/sim"

//vhlint:owner machine
type node struct {
	busy int
}

//vhlint:owner vnet
type wire struct {
	queued int
}

type book struct { // unannotated: test-package default = shared
	entries int
}

// confinedSpawn: the closure writes only machine state through a
// captured parameter — migratable, so the plain Spawn is flagged.
func confinedSpawn(e *sim.Engine, n *node) {
	e.Spawn("tick", func(p *sim.Proc) { // want "writes only machine-domain state; migrate this Spawn to SpawnOn"
		n.busy++
		p.Sleep(1)
	})
}

// confinedAfter: SpawnAfter is Shared-implied too.
func confinedAfter(e *sim.Engine, n *node) {
	e.SpawnAfter(2, "tick", func(p *sim.Proc) { // want "migrate this SpawnAfter to SpawnOn"
		n.busy++
	})
}

// migrated: the same closure on a non-Shared SpawnOn is clean.
func migrated(e *sim.Engine, n *node, dom sim.Domain) {
	e.SpawnOn(dom, "tick", func(p *sim.Proc) {
		n.busy++
		p.Sleep(1)
	})
}

// stillShared: SpawnOn with a provably Shared domain is no migration.
func stillShared(e *sim.Engine, n *node) {
	e.SpawnOn(sim.Shared, "tick", func(p *sim.Proc) { // want "writes only machine-domain state"
		n.busy++
	})
}

// domainFree: no owned writes at all — confined by inference.
func domainFree(e *sim.Engine) {
	e.Spawn("idle", func(p *sim.Proc) { // want "writes no owned state"
		p.Sleep(5)
	})
}

// sharedSpawn: shared-domain writes keep the proc on Shared; the plain
// Spawn is exactly right and stays quiet.
func sharedSpawn(e *sim.Engine, b *book) {
	e.Spawn("log", func(p *sim.Proc) {
		b.entries++
	})
}

// misdomained: a shared-required closure forced onto a shard domain is
// the inverse bug.
func misdomained(e *sim.Engine, b *book, dom sim.Domain) {
	e.SpawnOn(dom, "log", func(p *sim.Proc) { // want "non-Shared domain writes shared-domain state"
		b.entries++
	})
}

// blocked: a Shared-only wait keeps the closure shared-required, so
// the plain Spawn stays quiet (the wait itself is blockshared's job).
func blocked(e *sim.Engine, d *sim.Done) {
	e.Spawn("wait", func(p *sim.Proc) {
		d.Wait(p)
	})
}

// mixedSpawn: two shardable domains written with no Shared need.
func mixedSpawn(e *sim.Engine, n *node, wr *wire) {
	e.Spawn("both", func(p *sim.Proc) { // want "writes state of 2 shardable domains .machine, vnet."
		n.busy++
		wr.queued++
	})
}

// drain exists so delegated's closure writes vnet state only through a
// callee summary.
func drain(wr *wire) {
	wr.queued--
}

// delegated: transitive inference through the call graph.
func delegated(e *sim.Engine, wr *wire) {
	e.Spawn("drain", func(p *sim.Proc) { // want "writes only vnet-domain state"
		drain(wr)
	})
}

// capturedVar: rebinding a variable captured from the spawner's stack
// is a write to Shared-side state — not confined, no diagnostic.
func capturedVar(e *sim.Engine) int {
	total := 0
	e.Spawn("sum", func(p *sim.Proc) {
		total++
	})
	return total
}

// waived: an allow annotation suppresses the migration nudge.
func waived(e *sim.Engine, n *node) {
	//vhlint:allow spawndomain -- fixture: migration deliberately deferred
	e.Spawn("tick", func(p *sim.Proc) {
		n.busy++
	})
}

// atEvent: At/After callbacks are coordinator events, inventoried in
// the ledger but never flagged, however confined they look.
func atEvent(e *sim.Engine, n *node) {
	e.At(3, func() {
		n.busy++
	})
	e.After(1, func() {
		n.busy++
	})
}

// nestedSpawn: a closure handed to the scheduling surface inside a
// spawned body runs as its own process — its machine writes are not
// billed to the outer closure, which stays shared-required (Engine.
// Spawn is Shared-only) and quiet; the inner site is flagged on its
// own.
func nestedSpawn(e *sim.Engine, n *node) {
	e.Spawn("outer", func(p *sim.Proc) {
		e.Spawn("inner", func(q *sim.Proc) { // want "writes only machine-domain state"
			n.busy++
		})
	})
}

// jobsvcDaemon mirrors the job service's scheduler shape: a daemon loop
// that mutates unannotated (shared) service state and dispatches runner
// procs that fire a Done latch. Both closures are shared-required —
// shared writes in the daemon, a Shared-only Fire in the runner — so
// both plain Spawns are exactly right and stay quiet.
func jobsvcDaemon(e *sim.Engine, b *book, d *sim.Done) {
	e.Spawn("jobsvc-sched", func(p *sim.Proc) {
		for b.entries > 0 {
			b.entries--
			e.Spawn("jobsvc-run", func(q *sim.Proc) {
				q.Sleep(1)
				d.Fire()
			})
			p.Sleep(2)
		}
	})
}
