// Test fixtures for the blockshared analyzer: blocking waits on
// Shared-only primitives reachable from closures spawned on a
// non-Shared domain.
package blockshared

import "vhadoop/internal/sim"

//vhlint:owner machine
type node struct {
	busy int
}

// shardWait: a shard-domain proc must not block on a Done.
func shardWait(e *sim.Engine, dom sim.Domain, d *sim.Done) {
	e.SpawnOn(dom, "w", func(p *sim.Proc) { // want "reaches sim.Done.Wait"
		d.Wait(p)
	})
}

// helper exists so shardGate's wait is only visible transitively.
func helper(p *sim.Proc, g *sim.Gate) {
	g.WaitOpen(p)
}

// shardGate: the wait is reported at the spawn site with the chain
// that reaches it.
func shardGate(e *sim.Engine, dom sim.Domain, g *sim.Gate) {
	e.SpawnOn(dom, "g", func(p *sim.Proc) { // want "reaches sim.Gate.WaitOpen via test/blockshared.helper"
		helper(p, g)
	})
}

// shardQueue: Queue.Acquire and FairShare.Use are both wait-family.
func shardQueue(e *sim.Engine, dom sim.Domain, q *sim.Queue, fs *sim.FairShare) {
	e.SpawnOn(dom, "q", func(p *sim.Proc) { // want "sim.Queue.Acquire" "sim.FairShare.Use"
		q.Acquire(p, 1)
		fs.Use(p, 10)
	})
}

// nestedShard: Proc.SpawnOnAfter sites are checked like Engine ones.
func nestedShard(e *sim.Engine, dom sim.Domain, d *sim.Done) {
	e.SpawnOn(dom, "outer", func(p *sim.Proc) {
		p.SpawnOnAfter(dom, 1, "inner", func(q *sim.Proc) { // want "reaches sim.Done.Wait"
			d.Wait(q)
		})
	})
}

// sharedFanIn: waits on the Shared domain are the sanctioned fan-in
// pattern — plain Spawn and provably-Shared SpawnOn stay quiet.
func sharedFanIn(e *sim.Engine, d *sim.Done) {
	e.Spawn("w1", func(p *sim.Proc) {
		d.Wait(p)
	})
	e.SpawnOn(sim.Shared, "w2", func(p *sim.Proc) {
		d.Wait(p)
	})
}

// shardClean: sleeping and writing owned state on a shard is fine.
func shardClean(e *sim.Engine, dom sim.Domain, n *node) {
	e.SpawnOn(dom, "ok", func(p *sim.Proc) {
		n.busy++
		p.Sleep(1)
	})
}

// waived: an allow annotation suppresses the wait report.
func waived(e *sim.Engine, dom sim.Domain, d *sim.Done) {
	//vhlint:allow blockshared -- fixture: wait restructured in a follow-up
	e.SpawnOn(dom, "w", func(p *sim.Proc) {
		d.Wait(p)
	})
}
