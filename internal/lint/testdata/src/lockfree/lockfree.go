// Test fixtures for the lockfree analyzer: concurrency machinery in
// simulator-driven code. Everything outside the engine's strict
// hand-off core runs single-threaded under the virtual clock, so go
// statements, channels, select, and sync/atomic are all flagged.
package lockfree

import (
	"sync"
	"sync/atomic"
)

// spawnWorker hands work to the host scheduler.
func spawnWorker(work func()) {
	go work() // want "go statement in simulator-driven code"
}

// fanIn races two channels; the ready-case choice is nondeterministic.
func fanIn(a, b chan int) int { // want "channel type"
	select { // want "select in simulator-driven code"
	case v := <-a: // want "channel receive"
		return v
	case v := <-b: // want "channel receive"
		return v
	}
}

// push sends across goroutines.
func push(ch chan string, v string) { // want "channel type"
	ch <- v // want "channel send"
}

// drain consumes in delivery order, which tracks goroutine scheduling.
func drain(ch chan int) int { // want "channel type"
	total := 0
	for v := range ch { // want "range over a channel"
		total += v
	}
	return total
}

// counter guards single-threaded state with a lock it cannot need.
type counter struct {
	mu sync.Mutex // want "sync.Mutex in simulator-driven code"
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()   // want "sync.Lock in simulator-driven code"
	c.n++
	c.mu.Unlock() // want "sync.Unlock in simulator-driven code"
}

// tick uses an atomic where a plain increment is correct by
// construction in single-threaded code.
func tick(n *int64) {
	atomic.AddInt64(n, 1) // want "atomic.AddInt64 in simulator-driven code"
}

// sequential is clean: plain single-threaded code.
func sequential(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// modelledHandoff documents a sanctioned baton site, mirroring the
// engine core's per-site allows.
func modelledHandoff(ready chan struct{}) { // want "channel type"
	//vhlint:allow lockfree -- test fixture: modelled hand-off baton, mirrors the engine core discipline
	<-ready
}

//vhlint:allow lockfree -- test fixture: purely sequential helper needs no allow // want "stale //vhlint:allow lockfree"
func sequentialAllowed(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
