// Package simclock exercises the simclock analyzer: wall-clock reads
// and the global math/rand stream are flagged; seeded sources and pure
// time arithmetic are not.
package simclock

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// wallClock reads and waits on the host clock.
func wallClock() time.Duration {
	start := time.Now()          // want "reads the host clock"
	time.Sleep(time.Millisecond) // want "reads the host clock"
	return time.Since(start)     // want "reads the host clock"
}

// sleepOnly is a second banned call site on its own line.
func sleepOnly() {
	time.Sleep(time.Second) // want "reads the host clock"
}

// globalRand draws from the process-global stream.
func globalRand() int {
	return rand.Intn(10) // want "breaks fixed-seed reproducibility"
}

// globalRandV2 is just as bad in math/rand/v2.
func globalRandV2() float64 {
	return randv2.Float64() // want "breaks fixed-seed reproducibility"
}

// seeded constructs an explicit source: every draw is reproducible.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// zipf builds a derived distribution from a seeded source.
func zipf(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.1, 1, 100)
	return z.Uint64()
}

// arithmetic uses package time for pure duration math only.
func arithmetic(d time.Duration) float64 {
	return d.Seconds() + time.Unix(0, 0).Sub(time.Unix(0, 0)).Seconds()
}

// annotated is a justified wall-clock read.
func annotated() time.Time {
	//vhlint:allow simclock -- test fixture: operator-facing progress stamp, not simulation state
	return time.Now()
}

// staleAnnotation suppresses nothing and is reported.
func staleAnnotation(rng *rand.Rand) int {
	//vhlint:allow simclock -- test fixture: seeded draw needs no allow // want "stale //vhlint:allow simclock"
	return rng.Intn(3)
}
