// Test fixtures for the globalstate analyzer: package-level mutable
// state reachable from sim.Proc closures. Proc code runs on engine
// shards; a package-level var it writes is implicitly shared across
// every shard, so such writes are flagged directly, through callee
// summaries, and inside closures handed to the engine's scheduling
// surface. Writes at init time and writes from plain setup code are
// the sanctioned patterns and stay quiet.
package globalstate

import (
	"sync"

	"vhadoop/internal/sim"
)

// counter is mutable package state; proc-context writes are flagged.
var counter int

// registry is written only at init time: immutable-after-init is fine.
var registry = map[string]int{}

// mu is lock state at package level, flagged at the declaration.
var mu sync.Mutex // want "package-level var mu contains sync.Mutex: cross-shard lock state"

// lockbox buries a primitive inside a nested struct.
type lockbox struct {
	inner struct {
		m sync.RWMutex
	}
}

var box lockbox // want "package-level var box contains sync.RWMutex: cross-shard lock state"

func init() {
	registry["seed"] = 1
	counter = 0
}

// direct writes the global straight from a proc body.
func direct(p *sim.Proc) {
	counter++ // want "proc code writes package-level var test/globalstate.counter"
}

// bump has no proc parameter; its summary carries the global write to
// every caller.
func bump() {
	counter++
}

// viaCall reaches the global through bump's summary.
func viaCall(p *sim.Proc) {
	bump() // want "call to test/globalstate.bump mutates package-level var test/globalstate.counter"
}

// spawned flags writes inside closures handed to the engine's
// scheduling surface, both the proc and the timer form.
func spawned(e *sim.Engine) {
	e.Spawn("w", func(p *sim.Proc) {
		counter = 7 // want "proc code writes package-level var test/globalstate.counter"
	})
	e.At(3, func() {
		counter = 9 // want "proc code writes package-level var test/globalstate.counter"
	})
}

// setup writes the same global outside any proc context: clean.
func setup() {
	counter = 1
}

// helperWithProc takes its own *sim.Proc, so it owns its finding;
// callers are not billed a second time.
func helperWithProc(p *sim.Proc) {
	counter++ // want "proc code writes package-level var test/globalstate.counter"
}

// delegate calls a proc-taking helper: the call site stays quiet.
func delegate(p *sim.Proc) {
	helperWithProc(p)
}

// waived carries an allow: the finding is suppressed, not emitted.
func waived(p *sim.Proc) {
	//vhlint:allow globalstate -- fixture: deliberate shared tally to prove suppression
	counter++
}
