// Test fixtures for the sendlag analyzer: cross-domain scheduling
// delays that are compile-time constants provably below the engine's
// lookahead floor (sim.DefaultLookahead).
package sendlag

import "vhadoop/internal/sim"

const tick = 5e-7 // below the 1e-6 floor

func tooTight(p *sim.Proc, dom sim.Domain) {
	p.Send(dom, 0, func() {})    // want "constant delay 0 is below the engine's lookahead floor"
	p.Send(dom, 1e-9, func() {}) // want "below the engine's lookahead floor"
	p.Send(dom, tick, func() {}) // want "constant delay 5e-07"
}

func atOrAboveFloor(p *sim.Proc, dom sim.Domain) {
	p.Send(dom, 1e-6, func() {}) // at the floor: legal on a default engine
	p.Send(dom, 2.5, func() {})
}

func selfSend(p *sim.Proc) {
	// Same-domain scheduling has no lookahead bound.
	p.Send(p.Domain(), 0, func() {})
}

func crossProcDomain(p, q *sim.Proc) {
	p.Send(q.Domain(), 0, func() {}) // want "below the engine's lookahead floor"
}

func spawnTight(p *sim.Proc, dom sim.Domain) {
	p.SpawnOnAfter(dom, 0, "x", func(r *sim.Proc) {}) // want "cross-domain SpawnOnAfter this tight"
}

func runtimeDelay(p *sim.Proc, dom sim.Domain, d sim.Time) {
	p.Send(dom, d, func() {}) // not provable statically: runtime's job
}

func waived(p *sim.Proc, dom sim.Domain) {
	//vhlint:allow sendlag -- fixture: target engine configures zero lookahead
	p.Send(dom, 0, func() {})
}
