// Package vhdirective exercises the vhdirective analyzer, which
// validates the //vhlint: annotation grammar itself: malformed allows,
// unknown names, misplaced hot markers, and allows for analyzers that
// do not run on the package.
package vhdirective

// hotAttached is correctly annotated: the marker sits in the doc
// comment of a function declaration.
//
//vhlint:hot
func hotAttached(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func misplacedHot() {
	//vhlint:hot // want "not attached to a function declaration"
	_ = 0
}

// hotOnVar hangs the marker on a variable declaration instead of a
// function.
//
//vhlint:hot // want "not attached to a function declaration"
var hotOnVar = 42

func missingName() {
	//vhlint:allow // want "missing analyzer name"
	_ = 0
}

func missingReason() {
	//vhlint:allow hotalloc // want "missing '-- <reason>' justification"
	_ = 0
}

func emptyReason() {
	//vhlint:allow hotalloc -- // want "missing '-- <reason>' justification"
	_ = 0
}

func unknownAnalyzer() {
	//vhlint:allow gofish -- sounds plausible // want "unknown analyzer \"gofish\""
	_ = 0
}

func unknownDirective() {
	//vhlint:suppress hotalloc -- wrong verb // want "unknown //vhlint: directive \"suppress\""
	_ = 0
}

// outOfScope allows maporder here, but maporder only runs on vhadoop's
// determinism-critical packages — never on this testdata package — so
// the allow could never suppress anything.
func outOfScope(m map[string]int) int {
	n := 0
	//vhlint:allow maporder -- test fixture: can never apply here // want "where maporder does not run"
	for _, v := range m {
		n += v
	}
	return n
}

// wellFormed is a grammatically valid allow for an analyzer that runs
// everywhere; vhdirective has nothing to say about it (staleness is the
// target analyzer's job, not the grammar checker's).
func wellFormed(xs []int) int {
	n := 0
	//vhlint:allow hotalloc -- test fixture: grammar-valid allow, checked elsewhere
	for _, x := range xs {
		n += x
	}
	return n
}

// ownedType carries a correctly attached owner annotation on the type
// declaration and a field-level override inside it.
//
//vhlint:owner machine
type ownedType struct {
	port int //vhlint:owner shared
}

// ownedVar attaches an owner to a package-level var.
//
//vhlint:owner vnet
var ownedVar ownedType

// ownedFunc is a declared domain entry point.
//
//vhlint:owner engine
func ownedFunc() {}

func misplacedOwner() {
	//vhlint:owner machine // want "not attached to a type declaration, struct field, package-level var, or function declaration"
	_ = 0
}

func ownerMissingDomain() {
	//vhlint:owner // want "missing domain"
	_ = 0
}

func ownerUnknownDomain() {
	//vhlint:owner cloud // want "unknown domain \"cloud\""
	_ = 0
}

func ownerTwoDomains() {
	//vhlint:owner machine vnet // want "exactly one domain expected"
	_ = 0
}
