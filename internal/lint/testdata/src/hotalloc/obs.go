package hotalloc

import (
	"vhadoop/internal/obs"
)

// hotCounterLookup re-resolves the counter by string key per call — the
// exact pattern handle interning exists to remove.
//
//vhlint:hot
func hotCounterLookup(r *obs.Registry, vm string) {
	r.Counter("tasks_total", "vm", vm).Inc() // want "obs lookup Counter in hot function hotCounterLookup"
}

// hotGaugeLookup does the same through a Plane shorthand.
//
//vhlint:hot
func hotGaugeLookup(pl *obs.Plane) {
	pl.Gauge("depth").Set(1) // want "obs lookup Gauge in hot function hotGaugeLookup"
}

// hotHistogramLookup re-resolves a histogram per observation.
//
//vhlint:hot
func hotHistogramLookup(r *obs.Registry, v float64) {
	r.Histogram("seconds", []float64{1, 2}).Observe(v) // want "obs lookup Histogram in hot function hotHistogramLookup"
}

// hotVecConstruction builds the vec itself inside the hot region;
// declaring the family belongs at construction time.
//
//vhlint:hot
func hotVecConstruction(r *obs.Registry, vm string) {
	r.CounterVec("tasks_total", "vm").With(vm).Inc() // want "obs lookup CounterVec in hot function hotVecConstruction"
}

// hotEventf boxes its arguments on every call even though rendering is
// deferred.
//
//vhlint:hot
func hotEventf(pl *obs.Plane, vm string) {
	pl.Eventf(obs.KindTask, "task on %s", vm) // want "obs Eventf in hot function hotEventf"
}

// hotInternedWith is the sanctioned fast path: the vec was interned at
// construction and With is an allocation-free cache hit — not flagged.
//
//vhlint:hot
func hotInternedWith(v *obs.CounterVec, vm string) {
	v.With(vm).Inc()
}

// hotCachedHandle uses a pre-resolved handle — the other sanctioned
// pattern, also not flagged.
//
//vhlint:hot
func hotCachedHandle(c *obs.Counter) {
	c.Inc()
}

// coldLookup is unannotated: lookups outside hot regions are fine.
func coldLookup(r *obs.Registry) {
	r.Counter("setup_total").Inc()
}
