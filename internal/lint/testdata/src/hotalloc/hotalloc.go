// Package hotalloc exercises the hotalloc analyzer: functions annotated
// //vhlint:hot must not allocate via fmt, loop string concatenation, or
// escaping closures. Unannotated functions are never checked.
package hotalloc

import (
	"fmt"
	"sort"
)

// hotSprintf formats inside a hot path.
//
//vhlint:hot
func hotSprintf(id int) string {
	return fmt.Sprintf("task-%d", id) // want "fmt.Sprintf in hot function hotSprintf"
}

// hotConcatLoop builds a string with + per iteration.
//
//vhlint:hot
func hotConcatLoop(parts []string) string {
	out := ""
	for _, p := range parts {
		out = out + "," + p // want "string concatenation in a loop" "string concatenation in a loop"
	}
	return out
}

// hotConcatOnce concatenates outside any loop: one allocation, allowed.
//
//vhlint:hot
func hotConcatOnce(a, b string) string {
	return a + b
}

// hotEscapingClosure hands a capturing closure to sort, which forces
// the capture context onto the heap.
//
//vhlint:hot
func hotEscapingClosure(xs []int, limit int) {
	sort.Slice(xs, func(i, j int) bool { // want "escaping closure in hot function"
		return xs[i]%limit < xs[j]%limit
	})
}

// hotLocalClosure keeps the closure local and only calls it directly:
// the context stays on the stack.
//
//vhlint:hot
func hotLocalClosure(xs []int) int {
	total := 0
	add := func(v int) { total += v }
	for _, x := range xs {
		add(x)
	}
	return total
}

// hotValueEscape assigns the closure locally but later passes it as a
// value, which still makes it escape.
//
//vhlint:hot
func hotValueEscape(xs []int) {
	total := 0
	add := func(v int) { total += v } // want "escapes .used as a value"
	apply(xs, add)
}

func apply(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

// coldSprintf is not annotated, so nothing here is flagged.
func coldSprintf(id int) string {
	return fmt.Sprintf("task-%d", id)
}

// hotAnnotatedAllow documents a deliberate one-off allocation.
//
//vhlint:hot
func hotAnnotatedAllow(xs []int) {
	//vhlint:allow hotalloc -- test fixture: one comparator closure per call, amortised
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// hotStaleAllow annotates a line that allocates nothing.
//
//vhlint:hot
func hotStaleAllow(xs []int) int {
	n := 0
	//vhlint:allow hotalloc -- test fixture: plain loop needs no allow // want "stale //vhlint:allow hotalloc"
	for _, x := range xs {
		n += x
	}
	return n
}

// hotAppendGrowth grows an uncapped local slice element by element:
// every growth past the backing array reallocates and copies.
//
//vhlint:hot
func hotAppendGrowth(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*x) // want "append growth of out in a loop"
	}
	return out
}

// hotAppendLiteral is the same churn through a literal initializer.
//
//vhlint:hot
func hotAppendLiteral(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x) // want "append growth of out in a loop"
	}
	return out
}

// hotAppendTwoArgMake reserves length but no spare capacity.
//
//vhlint:hot
func hotAppendTwoArgMake(xs []int) []int {
	out := make([]int, 0)
	for _, x := range xs {
		out = append(out, x) // want "append growth of out in a loop"
	}
	return out
}

// hotAppendPresized is the blessed idiom: capacity reserved up front,
// so the in-loop appends never grow the backing array.
//
//vhlint:hot
func hotAppendPresized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// hotAppendToParam appends to a caller-provided slice whose capacity is
// the caller's business, so it is not flagged.
//
//vhlint:hot
func hotAppendToParam(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// hotAppendOutsideLoop grows once, outside any loop: amortisation is
// the loop's problem, a single append is not.
//
//vhlint:hot
func hotAppendOutsideLoop(xs []int) []int {
	var out []int
	out = append(out, xs...)
	return out
}
