// Package floataccum exercises the floataccum analyzer: floating-point
// accumulation ordered by map iteration is flagged; per-iteration
// scratch, keyed slots, integer sums, and slice loops are not.
package floataccum

type stats struct {
	total float64
	count int
}

// sumCompound is the canonical violation: += into a float declared
// outside the map range.
func sumCompound(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into total"
	}
	return total
}

// sumExplicit spells the same accumulation as x = x + e.
func sumExplicit(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "float accumulation into sum"
	}
	return sum
}

// sumField accumulates into a struct field, which always outlives the
// loop.
func sumField(m map[string]float64, s *stats) {
	for _, v := range m {
		s.total += v // want "float accumulation into s.total"
	}
}

// sumSharedSlot folds every value into one fixed slot: order-dependent.
func sumSharedSlot(m map[string]float64, acc []float64) {
	for _, v := range m {
		acc[0] += v // want "float accumulation into acc"
	}
}

// product is order-dependent for the same non-associativity reason.
func product(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want "float accumulation into p"
	}
	return p
}

// scratch declares its accumulator inside the body: per-iteration state.
func scratch(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out[k] = local
	}
	return out
}

// keyedSlot writes a distinct slot per iteration: one update per slot
// per sweep, so visit order cannot reorder any slot's sum.
func keyedSlot(src map[string]float64, dst map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// intSum accumulates integers: exact arithmetic commutes.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sliceSum iterates a slice, whose order is deterministic.
func sliceSum(vs []float64) float64 {
	total := 0.0
	for _, v := range vs {
		total += v
	}
	return total
}

// annotated carries a justified allow and is suppressed.
func annotated(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//vhlint:allow floataccum -- test fixture: result only compared against a coarse threshold
		total += v
	}
	return total
}

// staleAllow annotates an integer sum that floataccum never flags.
func staleAllow(m map[string]int) int {
	n := 0
	for _, v := range m {
		//vhlint:allow floataccum -- test fixture: integer sum needs no allow // want "stale //vhlint:allow floataccum"
		n += v
	}
	return n
}
