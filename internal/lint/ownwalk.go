package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ownWalker interprets one function body against the ownership model:
// it resolves every write (assignments, ++/--, delete/copy/clear, and
// mutations delegated to callees via their summaries) to a domain and
// classifies it as own-context, shared, construction of fresh state, or
// a cross-domain crossing. The same walk serves three consumers — the
// summary computation (ownSummaryFor), the xdomain analyzer, and the
// -owners ledger — which differ only in the callbacks they install.
//
// Func literals nested in the body run in the enclosing function's
// domain context: a proc closure spawned by a machine-domain method is
// machine code. The sanctioned ways to change context are calling into
// vhadoop/internal/sim (the engine hand-off surface, exempt wholesale)
// and calling a function that carries an explicit //vhlint:owner
// annotation — such a function is a declared domain entry point, and
// invoking one is a context transfer billed to the entry's own domain,
// not a crossing by the caller.
type ownWalker struct {
	pkg  *Package
	ip   *interproc
	decl *ast.FuncDecl
	ctx  string // the body's domain context

	summary     *ownSummary
	paramIdx    map[types.Object]int // receiver-first parameter positions
	freshLocals map[types.Object]bool

	// onCross reports a cross-domain write: state of domain written from
	// a w.ctx context. callee is nil for direct writes, the summarized
	// callee for writes delegated through a call.
	onCross func(pos token.Pos, domain, targetKey string, callee *types.Func)
	// onGlobal reports a direct write to a package-level var.
	onGlobal func(pos token.Pos, v types.Object)
	// onGlobalCall reports a call whose callee (transitively) mutates
	// package-level vars, identified by their summary mask.
	onGlobalCall func(pos token.Pos, callee *types.Func, mask uint64)
}

func newOwnWalker(pkg *Package, ip *interproc, fd *ast.FuncDecl) *ownWalker {
	return &ownWalker{
		pkg:      pkg,
		ip:       ip,
		decl:     fd,
		ctx:      ip.ctxDomain(pkg, fd),
		summary:  &ownSummary{},
		paramIdx: paramIndex(pkg, fd.Recv, fd.Type.Params),
	}
}

// run interprets the body once. Freshness is computed first so the walk
// can tell construction from mutation in a single pass.
func (w *ownWalker) run() {
	if w.decl.Body == nil {
		return
	}
	w.freshLocals = computeFreshLocals(w.ip, w.pkg, w.decl.Body)
	ast.Inspect(w.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // declarations construct locals, not state
			}
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				w.write(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			w.write(n.X, n.X.Pos())
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// write classifies one lvalue (or call-mutated argument) write.
func (w *ownWalker) write(e ast.Expr, pos token.Pos) {
	t := w.ip.resolveWrite(w.pkg, e)
	if t.global != nil {
		w.summary.globals |= 1 << uint(w.ip.internGlobal(t.global))
		if w.onGlobal != nil {
			w.onGlobal(pos, t.global)
		}
	} else if _, bare := ast.Unparen(e).(*ast.Ident); bare {
		// A bare identifier assigns the variable itself — rebinding a
		// local never mutates domain state.
		return
	}
	w.classify(t, pos, nil)
}

// classify routes a resolved write target: own-context and shared
// writes feed the summary, unowned param-rooted writes become
// writeParams bits, and foreign-domain writes are crossings reported at
// this frame (and deliberately not propagated to callers — the deepest
// frame that crosses the boundary owns the finding or its waiver).
func (w *ownWalker) classify(t writeTarget, pos token.Pos, callee *types.Func) {
	switch t.domain {
	case "":
		if t.root != nil && t.global == nil {
			if i, ok := w.paramIdx[t.root]; ok && i < 64 {
				w.summary.writeParams |= 1 << uint(i)
			}
		}
	case DomainShared:
		// Shared state is writable from every domain by definition; the
		// ledger inventories it, the analyzers stay quiet.
	case w.ctx:
		w.summary.writes |= domainBit(t.domain)
	default:
		if w.freshRooted(t) {
			return // constructing a fresh object of that domain
		}
		if w.onCross != nil {
			w.onCross(pos, t.domain, t.key, callee)
		}
	}
}

// freshRooted reports whether the write lands inside an object this
// function constructed itself: the chain roots at a fresh local whose
// own type carries the written domain.
func (w *ownWalker) freshRooted(t writeTarget) bool {
	if t.root == nil || !w.freshLocals[t.root] {
		return false
	}
	v, ok := t.root.(*types.Var)
	if !ok {
		return false
	}
	d, _ := w.ip.typeDomain(v.Type())
	return d == t.domain
}

// call applies a callee's ownership summary at the call site.
func (w *ownWalker) call(call *ast.CallExpr) {
	fn := staticCallee(w.pkg.Info, call)
	if fn == nil {
		// Mutating builtins write their first argument.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
			switch id.Name {
			case "delete", "copy", "clear":
				w.write(call.Args[0], call.Args[0].Pos())
			}
		}
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "vhadoop/internal/sim" {
		return // engine hand-off surface: the sanctioned crossing
	}
	if w.ip.annotatedDomain(fn) != "" {
		return // declared domain entry point: calling it transfers context
	}
	s := w.ip.ownSummaryFor(fn)
	if s == nil {
		// No module-local source (stdlib, interface dispatch): assumed
		// non-mutating; see the limitations note in DESIGN.md §11.
		return
	}
	if s.globals != 0 {
		w.summary.globals |= s.globals
		if w.onGlobalCall != nil {
			w.onGlobalCall(call.Pos(), fn, s.globals)
		}
	}
	// Own-context writes of the callee, re-examined in our context.
	bits := s.writes &^ domainBit(DomainShared)
	w.summary.writes |= bits & domainBit(w.ctx)
	foreign := bits &^ domainBit(w.ctx)
	if foreign != 0 {
		for _, d := range domainsOf(foreign) {
			if w.freshArgsCover(call, fn, d) {
				continue
			}
			if w.onCross != nil {
				w.onCross(call.Pos(), d, funcKey(fn), fn)
			}
		}
	}
	// Param-rooted mutations resolve to whatever the arguments are here.
	if s.writeParams != 0 {
		args := ownCallArgs(w.pkg, call)
		for i, a := range args {
			if i >= 64 {
				break
			}
			if s.writeParams>>uint(i)&1 == 0 {
				continue
			}
			t := w.ip.resolveArg(w.pkg, a)
			if t.global != nil {
				w.summary.globals |= 1 << uint(w.ip.internGlobal(t.global))
				if w.onGlobal != nil {
					w.onGlobal(a.Pos(), t.global)
				}
			}
			w.classify(t, a.Pos(), fn)
		}
	}
}

// freshArgsCover reports whether every argument of the call that could
// carry domain d into the callee is a freshly constructed local — in
// which case the callee's d-domain writes are construction on our
// behalf, not a crossing. At least one argument must resolve to d;
// otherwise the callee reaches d-state on its own and no argument can
// vouch for it.
func (w *ownWalker) freshArgsCover(call *ast.CallExpr, fn *types.Func, d string) bool {
	covered := false
	for _, a := range ownCallArgs(w.pkg, call) {
		t := w.ip.resolveArg(w.pkg, a)
		if t.domain != d {
			continue
		}
		if t.root == nil || !w.freshLocals[t.root] {
			return false
		}
		covered = true
	}
	return covered
}

// ownCallArgs is the receiver-first argument list matching ownSummary's
// parameter indexing: the receiver is position 0 only for genuine
// method-value calls. Package-qualified calls are not shifted by their
// package identifier (unlike detflow's callArgs, which tolerates that
// imprecision because package names carry no taint), and method
// expressions (T.M)(recv, ...) already pass the receiver first.
func ownCallArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args
}

// resolveArg resolves the ownership of the state an argument hands a
// mutating callee: the argument value's own type domain first (the
// callee mutates through the value, wherever it was read from), then
// the lvalue chain as a fallback for untyped roots.
func (ip *interproc) resolveArg(pkg *Package, e ast.Expr) writeTarget {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	var root types.Object
	var global types.Object
	if id, ok := leafIdent(e); ok {
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		if obj != nil {
			root = obj
			if isPkgLevelVar(obj) {
				global = obj
			}
		}
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		if d, key := ip.typeDomain(tv.Type); d != "" {
			return writeTarget{domain: d, key: key, root: root, global: global}
		}
	}
	if global != nil {
		d, key := ip.varDomain(global)
		return writeTarget{domain: d, key: key, root: root, global: global}
	}
	return writeTarget{root: root, global: global}
}

// leafIdent returns the identifier the expression bottoms out at when
// it is a plain (possibly dereferenced/indexed) chain from one.
func leafIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// funcKey is the ledger/report key of a function: shortened package
// path, receiver type for methods, name.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	return domainKey(fn.Pkg().Path(), name)
}

// computeFreshLocals finds the body's locals that only ever hold state
// constructed inside this function (composite literals, &T{}, new,
// make, or calls to constructors whose summary proves fresh returns).
// Writes into such a local's own object are construction, not mutation
// of pre-existing domain state. Range variables and params are never
// fresh: they alias state owned elsewhere. The set is a greatest fixed
// point: everything assigned is optimistically fresh, then any
// assignment from a non-fresh source revokes, to stability.
func computeFreshLocals(ip *interproc, pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	type binding struct {
		obj types.Object
		rhs ast.Expr // nil for var decls without initializer (zero value: fresh)
	}
	var bindings []binding
	localObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		return obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				obj := localObj(lhs)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0] // multi-value call/map/assert form
				}
				if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
					bindings = append(bindings, binding{obj, rhs})
				} else {
					// += and friends derive from the old value; basic types
					// only, harmless either way.
					bindings = append(bindings, binding{obj, rhs})
				}
				if _, ok := fresh[obj]; !ok {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				bindings = append(bindings, binding{obj, rhs})
				if _, ok := fresh[obj]; !ok {
					fresh[obj] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if obj := localObj(e); obj != nil {
					fresh[obj] = false
				}
			}
		}
		return true
	})
	// Params and results are callers' state, never fresh.
	for obj := range fresh {
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil {
			// A local declared in the body has the body (or a nested
			// block) as parent; params sit in the function scope above
			// the body. Distinguishing scopes precisely is fiddly — use
			// position instead: params are declared before the body.
			if obj.Pos() < body.Pos() {
				fresh[obj] = false
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range bindings {
			if !fresh[b.obj] {
				continue
			}
			if b.rhs != nil && !isFreshExpr(ip, pkg, b.rhs, fresh) {
				fresh[b.obj] = false
				changed = true
			}
		}
	}
	return fresh
}
