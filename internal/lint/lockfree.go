package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockFree forbids concurrency machinery in simulator-driven code. The
// engine's run loop and its strict hand-off pair (Engine.handoff,
// Proc.resume) are the only sanctioned goroutine coordination in the
// tree; everything else executes single-threaded under the virtual
// clock, which is what makes fixed-seed replay bit-identical. A stray
// `go` statement, channel, select, mutex, or atomic anywhere else
// introduces host-scheduler ordering that no seed pins down — and a
// mutex in single-threaded code is at best dead weight, at worst a sign
// the author believed two things run at once.
//
// Flagged: go statements, select, channel types, channel sends and
// receives, range over a channel, and any reference into sync or
// sync/atomic. The engine core carries per-site
// //vhlint:allow lockfree annotations documenting the hand-off
// invariant each site maintains.
var LockFree = &Analyzer{
	Name:      "lockfree",
	Doc:       "forbid concurrency primitives outside the engine's strict hand-off core",
	AppliesTo: determinismCritical,
	Run:       runLockFree,
}

func runLockFree(pass *Pass) {
	walkStack(pass, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in simulator-driven code: goroutine completion order is host-scheduler state that no seed reproduces")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in simulator-driven code: ready-case choice is nondeterministic")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in simulator-driven code: cross-goroutine ordering is not replayable")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in simulator-driven code: cross-goroutine ordering is not replayable")
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.For, "range over a channel in simulator-driven code: delivery order tracks goroutine scheduling")
				}
			}
		case *ast.ChanType:
			pass.Reportf(n.Pos(), "channel type in simulator-driven code: the engine's hand-off channels are the only sanctioned concurrency")
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			if obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sync", "sync/atomic":
					pass.Reportf(n.Pos(), "%s.%s in simulator-driven code: locks and atomics imply real concurrency, which the single-threaded core must not have", obj.Pkg().Name(), obj.Name())
				}
			}
		}
		return true
	})
}
