package obs

import (
	"fmt"
	"strings"
)

// The vector types are the hot-path face of the registry: a vec is
// declared once per metric family with its label *keys*, and With
// resolves label *values* to an instrument handle through an interned
// tuple cache. A cache hit performs one map probe and zero allocations —
// it never rebuilds the canonical "name{k=v,...}" key the plain
// Registry.Counter/Gauge/Histogram lookup pays per call. Identity is
// shared with the legacy lookup: the first With for a tuple registers
// through the same canonicalisation, so vec-resolved and string-resolved
// handles for equal (name, labels) hit the same instrument and exports
// stay byte-identical.
//
// Tuple caches are lookup-only maps — they are never iterated, so they
// cannot leak map order into any export.

// tupleKey joins 3+ label values into one cache key. Values containing
// the separator would collide, but label values here are identifiers
// (vm names, metric kinds); the canonical key built on the miss path is
// authoritative for instrument identity either way.
func tupleKey(values []string) string {
	return strings.Join(values, "\xff")
}

// vecKV builds the alternating key/value list for the slow lookup path.
func vecKV(keys, values []string) []string {
	kv := make([]string, 0, 2*len(keys))
	for i, k := range keys {
		kv = append(kv, k, values[i])
	}
	return kv
}

func checkArity(name string, keys, values []string) {
	if len(values) != len(keys) {
		panic(fmt.Sprintf("obs: vec %s: got %d label values for keys %v", name, len(values), keys))
	}
}

// CounterVec interns counter handles per label-value tuple.
type CounterVec struct {
	r    *Registry
	name string
	keys []string

	zero *Counter               // no labels
	one  map[string]*Counter    // exactly one label
	two  map[[2]string]*Counter // exactly two labels
	more map[string]*Counter    // 3+ labels, tupleKey-joined
}

// CounterVec declares a counter family with fixed label keys. Resolve
// handles with With; construction itself registers nothing.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, name: name, keys: keys}
}

// With returns the counter for the given label values (one per key, in
// key order), interning the handle on first use. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	checkArity(v.name, v.keys, values)
	switch len(v.keys) {
	case 0:
		if v.zero != nil {
			return v.zero
		}
	case 1:
		if c, ok := v.one[values[0]]; ok {
			return c
		}
	case 2:
		if c, ok := v.two[[2]string{values[0], values[1]}]; ok {
			return c
		}
	default:
		if c, ok := v.more[tupleKey(values)]; ok {
			return c
		}
	}
	return v.miss(values)
}

func (v *CounterVec) miss(values []string) *Counter {
	c := v.r.Counter(v.name, vecKV(v.keys, values)...)
	switch len(v.keys) {
	case 0:
		v.zero = c
	case 1:
		if v.one == nil {
			v.one = make(map[string]*Counter)
		}
		v.one[values[0]] = c
	case 2:
		if v.two == nil {
			v.two = make(map[[2]string]*Counter)
		}
		v.two[[2]string{values[0], values[1]}] = c
	default:
		if v.more == nil {
			v.more = make(map[string]*Counter)
		}
		v.more[tupleKey(values)] = c
	}
	return c
}

// GaugeVec interns gauge handles per label-value tuple.
type GaugeVec struct {
	r    *Registry
	name string
	keys []string

	zero *Gauge
	one  map[string]*Gauge
	two  map[[2]string]*Gauge
	more map[string]*Gauge
}

// GaugeVec declares a gauge family with fixed label keys.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r: r, name: name, keys: keys}
}

// With returns the gauge for the given label values, interning the
// handle on first use. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	checkArity(v.name, v.keys, values)
	switch len(v.keys) {
	case 0:
		if g := v.zero; g != nil {
			return g
		}
	case 1:
		if g, ok := v.one[values[0]]; ok {
			return g
		}
	case 2:
		if g, ok := v.two[[2]string{values[0], values[1]}]; ok {
			return g
		}
	default:
		if g, ok := v.more[tupleKey(values)]; ok {
			return g
		}
	}
	return v.miss(values)
}

func (v *GaugeVec) miss(values []string) *Gauge {
	g := v.r.Gauge(v.name, vecKV(v.keys, values)...)
	switch len(v.keys) {
	case 0:
		v.zero = g
	case 1:
		if v.one == nil {
			v.one = make(map[string]*Gauge)
		}
		v.one[values[0]] = g
	case 2:
		if v.two == nil {
			v.two = make(map[[2]string]*Gauge)
		}
		v.two[[2]string{values[0], values[1]}] = g
	default:
		if v.more == nil {
			v.more = make(map[string]*Gauge)
		}
		v.more[tupleKey(values)] = g
	}
	return g
}

// HistogramVec interns histogram handles per label-value tuple. Every
// member shares the bucket bounds given at declaration.
type HistogramVec struct {
	r       *Registry
	name    string
	keys    []string
	buckets []float64

	zero *Histogram
	one  map[string]*Histogram
	two  map[[2]string]*Histogram
	more map[string]*Histogram
}

// HistogramVec declares a histogram family with fixed label keys and
// shared bucket bounds.
func (r *Registry) HistogramVec(name string, buckets []float64, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r: r, name: name, keys: keys, buckets: buckets}
}

// With returns the histogram for the given label values, interning the
// handle on first use. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	checkArity(v.name, v.keys, values)
	switch len(v.keys) {
	case 0:
		if h := v.zero; h != nil {
			return h
		}
	case 1:
		if h, ok := v.one[values[0]]; ok {
			return h
		}
	case 2:
		if h, ok := v.two[[2]string{values[0], values[1]}]; ok {
			return h
		}
	default:
		if h, ok := v.more[tupleKey(values)]; ok {
			return h
		}
	}
	return v.miss(values)
}

func (v *HistogramVec) miss(values []string) *Histogram {
	h := v.r.Histogram(v.name, v.buckets, vecKV(v.keys, values)...)
	switch len(v.keys) {
	case 0:
		v.zero = h
	case 1:
		if v.one == nil {
			v.one = make(map[string]*Histogram)
		}
		v.one[values[0]] = h
	case 2:
		if v.two == nil {
			v.two = make(map[[2]string]*Histogram)
		}
		v.two[[2]string{values[0], values[1]}] = h
	default:
		if v.more == nil {
			v.more = make(map[string]*Histogram)
		}
		v.more[tupleKey(values)] = h
	}
	return h
}
