package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline rendering constants: an nmon-style chart — one lane per
// span, time on the x axis, kind-coloured bars, event ticks.
const (
	svgLaneH   = 18
	svgLaneGap = 4
	svgLabelW  = 260
	svgPlotW   = 820
	svgTopPad  = 34
	svgBotPad  = 16
)

// spanColor maps a span kind to its bar colour (nmon palette-ish).
func spanColor(k SpanKind) string {
	switch k {
	case KindJob:
		return "#4d78b3"
	case KindPhase:
		return "#7aa6d9"
	case KindTask:
		return "#8fc98f"
	case KindHDFSWrite:
		return "#c9a227"
	case KindRepair:
		return "#e0883a"
	case KindMigration:
		return "#b06fc9"
	case KindFault:
		return "#d9534f"
	default:
		return "#999999"
	}
}

// SVG renders the trace as a standalone SVG timeline. Lanes are ordered
// depth-first through the span hierarchy (children under parents, in ID
// order), so the document is deterministic for a deterministic trace.
func (t Trace) SVG() string {
	// Order lanes: depth-first from the roots, children sorted by ID.
	children := make(map[int][]Span)
	var ids []int
	for _, s := range t.Spans {
		children[s.Parent] = append(children[s.Parent], s)
		ids = append(ids, s.Parent)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := children[id]
		sort.Slice(c, func(i, j int) bool { return c[i].ID < c[j].ID })
	}
	type lane struct {
		span  Span
		depth int
	}
	var lanes []lane
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, s := range children[parent] {
			lanes = append(lanes, lane{span: s, depth: depth})
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)

	// Time range across spans and events.
	t0, t1 := 0.0, 1.0
	first := true
	grow := func(a, b float64) {
		if first {
			t0, t1, first = a, b, false
			return
		}
		if a < t0 {
			t0 = a
		}
		if b > t1 {
			t1 = b
		}
	}
	for _, l := range lanes {
		grow(l.span.Start, l.span.End)
	}
	for _, ev := range t.Events {
		grow(ev.T, ev.T)
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	x := func(at float64) float64 {
		return svgLabelW + (at-t0)/(t1-t0)*svgPlotW
	}

	h := svgTopPad + len(lanes)*(svgLaneH+svgLaneGap) + svgBotPad
	w := svgLabelW + svgPlotW + 20
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="#ffffff"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="8" y="16" font-size="13">trace timeline — %d spans, %d events, t=[%s, %s]</text>`+"\n",
		len(lanes), len(t.Events), formatFloat(t0), formatFloat(t1))

	// Vertical gridlines every 10% of the range.
	for i := 0; i <= 10; i++ {
		gx := svgLabelW + float64(i)*svgPlotW/10
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#e0e0e0"/>`+"\n",
			gx, svgTopPad-6, gx, h-svgBotPad)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" fill="#888888" font-size="9">%s</text>`+"\n",
			gx+2, svgTopPad-8, formatFloat(t0+float64(i)*(t1-t0)/10))
	}

	laneY := make(map[int]int, len(lanes))
	for i, l := range lanes {
		y := svgTopPad + i*(svgLaneH+svgLaneGap)
		laneY[l.span.ID] = y
		label := fmt.Sprintf("%s%s %s", strings.Repeat("· ", l.depth), l.span.Kind, l.span.Name)
		if len(label) > 42 {
			label = label[:41] + "…"
		}
		fmt.Fprintf(&sb, `<text x="8" y="%d">%s</text>`+"\n", y+svgLaneH-5, xmlEscape(label))
		x0, x1 := x(l.span.Start), x(l.span.End)
		if x1-x0 < 2 {
			x1 = x0 + 2
		}
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" rx="2"><title>%s</title></rect>`+"\n",
			x0, y, x1-x0, svgLaneH, spanColor(l.span.Kind),
			xmlEscape(fmt.Sprintf("%s %s [%s, %s]", l.span.Kind, l.span.Name, formatFloat(l.span.Start), formatFloat(l.span.End))))
	}

	// Event ticks: on their span's lane, or along the top for top-level.
	for _, ev := range t.Events {
		y, ok := laneY[ev.Span]
		if !ok {
			y = svgTopPad - 6
		}
		ex := x(ev.T)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="2"><title>%s</title></line>`+"\n",
			ex, y, ex, y+svgLaneH, spanColor(ev.Kind), xmlEscape(fmt.Sprintf("%s @%s: %s", ev.Kind, formatFloat(ev.T), ev.Msg)))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// xmlEscape escapes text for inclusion in SVG/XML bodies.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
