// Package obs is the platform-wide observability plane of vHadoop: one
// deterministic layer that replaces the ad-hoc telemetry surfaces
// (scattered Engine.Tracef lines, Monitor.Annotate marks, raw sample
// fields) with
//
//   - a metrics registry — counters, gauges and fixed-bucket histograms
//     keyed by (name, labels), iterated in a deterministic order and
//     timestamped off the simulation clock;
//   - span-based tracing — a Job → Phase (map/shuffle/reduce) → Task
//     hierarchy plus spans for HDFS pipeline writes, VM live migrations
//     and injected faults, exported as diffable JSON and as an
//     nmon-style SVG timeline;
//   - snapshot export — Prometheus text format plus a JSON codec, so
//     chaos and bench runs can assert on telemetry byte-for-byte.
//
// Everything the plane records is keyed to virtual time and emitted in
// creation order, so a fixed platform seed reproduces byte-identical
// exports — the trace and the metrics are part of the replay-compared
// regression surface, enforced by determinism_test.go.
//
// Engine.Tracef remains the low-level line sink: span events written
// through the plane also land in the engine trace, which is what keeps
// the chaos harness's bit-identical-trace invariant meaningful.
//
// Every method is nil-safe: a subsystem holding a nil *Plane (a cluster
// built outside core.NewPlatform, a unit test) can instrument its hot
// paths unconditionally and pay only a nil check.
package obs

import (
	"vhadoop/internal/sim"
)

// Plane bundles the registry and the tracer for one platform instance.
type Plane struct {
	engine   *sim.Engine
	registry *Registry
	tracer   *Tracer
}

// Option configures a Plane at construction time.
type Option func(*Plane)

// WithTaskSampling records only one in n task spans (n > 1). Counters
// and every other span kind stay exact — only per-attempt KindTask
// spans are thinned, deterministically (by start order, not randomly),
// for very large runs where the task table dominates trace size. The
// default (no option, or n <= 1) records every span and is what the
// determinism suite pins.
func WithTaskSampling(n int) Option {
	return func(pl *Plane) {
		if n > 1 {
			pl.tracer.sampleN = n
		}
	}
}

// New creates an observability plane bound to the engine: registry
// snapshots are stamped with the engine's virtual clock and span events
// are mirrored into the engine trace.
func New(e *sim.Engine, opts ...Option) *Plane {
	pl := &Plane{
		engine:   e,
		registry: NewRegistry(e.Now),
		tracer:   newTracer(e),
	}
	for _, opt := range opts {
		opt(pl)
	}
	return pl
}

// Registry returns the plane's metrics registry (nil for a nil plane).
func (pl *Plane) Registry() *Registry {
	if pl == nil {
		return nil
	}
	return pl.registry
}

// Tracer returns the plane's span tracer (nil for a nil plane).
func (pl *Plane) Tracer() *Tracer {
	if pl == nil {
		return nil
	}
	return pl.tracer
}

// Counter is shorthand for Registry().Counter.
func (pl *Plane) Counter(name string, labels ...string) *Counter {
	return pl.Registry().Counter(name, labels...)
}

// Gauge is shorthand for Registry().Gauge.
func (pl *Plane) Gauge(name string, labels ...string) *Gauge {
	return pl.Registry().Gauge(name, labels...)
}

// Histogram is shorthand for Registry().Histogram.
func (pl *Plane) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return pl.Registry().Histogram(name, buckets, labels...)
}

// CounterVec is shorthand for Registry().CounterVec.
func (pl *Plane) CounterVec(name string, keys ...string) *CounterVec {
	return pl.Registry().CounterVec(name, keys...)
}

// GaugeVec is shorthand for Registry().GaugeVec.
func (pl *Plane) GaugeVec(name string, keys ...string) *GaugeVec {
	return pl.Registry().GaugeVec(name, keys...)
}

// HistogramVec is shorthand for Registry().HistogramVec.
func (pl *Plane) HistogramVec(name string, buckets []float64, keys ...string) *HistogramVec {
	return pl.Registry().HistogramVec(name, buckets, keys...)
}

// Start is shorthand for Tracer().Start.
func (pl *Plane) Start(kind SpanKind, name string, parent *Span) *Span {
	return pl.Tracer().Start(kind, name, parent)
}

// Eventf is shorthand for Tracer().Eventf: a top-level typed event.
func (pl *Plane) Eventf(kind SpanKind, format string, args ...any) {
	pl.Tracer().Eventf(kind, format, args...)
}

// Snapshot is shorthand for Registry().Snapshot.
func (pl *Plane) Snapshot() Snapshot { return pl.Registry().Snapshot() }
