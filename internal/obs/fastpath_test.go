package obs

import (
	"fmt"
	"reflect"
	"testing"

	"vhadoop/internal/sim"
)

// TestVecHandleIdentity: With must intern — repeated calls with equal
// label values return the same handle, and that handle is the same
// instrument the legacy string lookup resolves.
func TestVecHandleIdentity(t *testing.T) {
	r := NewRegistry(nil)

	cv := r.CounterVec("tasks_total", "vm")
	a := cv.With("vm01")
	if b := cv.With("vm01"); a != b {
		t.Fatal("CounterVec.With returned distinct handles for equal labels")
	}
	a.Inc()
	if legacy := r.Counter("tasks_total", "vm", "vm01"); legacy.Value() != 1 {
		t.Fatal("vec-resolved and string-resolved handles are different instruments")
	}

	// Two labels hit the array-keyed cache; identity must still hold
	// against the legacy lookup in either label order.
	gv := r.GaugeVec("load", "vm", "kind")
	gv.With("vm02", "map").Set(7)
	if g := r.Gauge("load", "kind", "map", "vm", "vm02"); g.Value() != 7 {
		t.Fatal("two-label vec handle not shared with canonicalised lookup")
	}
	if g1, g2 := gv.With("vm02", "map"), gv.With("vm02", "map"); g1 != g2 {
		t.Fatal("two-label With not interned")
	}

	// Zero and 3+ label arities.
	zv := r.CounterVec("total")
	if zv.With() != zv.With() {
		t.Fatal("zero-label With not interned")
	}
	hv := r.HistogramVec("lat", []float64{1, 2}, "a", "b", "c")
	h := hv.With("1", "2", "3")
	h.Observe(1.5)
	if h2 := r.Histogram("lat", []float64{1, 2}, "a", "1", "b", "2", "c", "3"); h2.Count() != 1 {
		t.Fatal("three-label vec handle not shared with legacy lookup")
	}
	if h != hv.With("1", "2", "3") {
		t.Fatal("three-label With not interned")
	}
}

func TestVecArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	NewRegistry(nil).CounterVec("x", "vm").With("a", "b")
}

// TestVecNilSafety: nil planes and registries must hand out nil vecs
// whose With chains to nil instruments, all no-ops.
func TestVecNilSafety(t *testing.T) {
	var pl *Plane
	pl.CounterVec("c", "k").With("v").Inc()
	pl.GaugeVec("g", "k").With("v").Set(1)
	pl.HistogramVec("h", []float64{1}, "k").With("v").Observe(1)
	var r *Registry
	r.CounterVec("c", "k").With("v").Add(2)
}

// TestDeferredEventRendering: with no trace sink, Eventf defers the
// Sprintf — but the exported trace must be byte-identical to a run with
// a sink installed (eager formatting), for the same emission sequence.
func TestDeferredEventRendering(t *testing.T) {
	emit := func(withSink bool) (string, int) {
		e := sim.New(1)
		lines := 0
		if withSink {
			e.SetTrace(func(ts sim.Time, format string, args ...any) { lines++ })
		}
		p := New(e)
		e.Spawn("w", func(pr *sim.Proc) {
			sp := p.Start(KindJob, "job", nil)
			pr.Sleep(1)
			sp.Eventf("attempt %d of %s failed: %v", 3, "wc", fmt.Errorf("boom"))
			p.Eventf(KindFault, "fault: %s factor %.2f", "netdeg", 0.5)
			sp.Finish()
		})
		e.Run()
		return p.Tracer().JSON(), lines
	}

	eager, eagerLines := emit(true)
	deferred, deferredLines := emit(false)
	if eager != deferred {
		t.Fatalf("deferred rendering diverged from eager:\n%s\nvs\n%s", deferred, eager)
	}
	if eagerLines != 2 || deferredLines != 0 {
		t.Fatalf("trace mirroring wrong: eager %d lines (want 2), deferred %d (want 0)", eagerLines, deferredLines)
	}

	// Exporting twice must not double-render or mutate stored events.
	e := sim.New(1)
	p := New(e)
	p.Eventf(KindCluster, "n=%d", 4)
	first := p.Tracer().JSON()
	if second := p.Tracer().JSON(); first != second {
		t.Fatal("repeated export changed rendered events")
	}
}

// TestTaskSamplingCountersExact: with 1-in-n task sampling, only every
// n-th task span is recorded, other span kinds are untouched, IDs stay
// dense, and nothing counter-like changes (sampling is a trace-volume
// knob only).
func TestTaskSamplingCountersExact(t *testing.T) {
	e := sim.New(1)
	p := New(e, WithTaskSampling(3))
	c := p.Counter("attempts_total")
	job := p.Start(KindJob, "job", nil)
	var kept []*Span
	for i := 0; i < 9; i++ {
		sp := p.Start(KindTask, "t", job)
		sp.SetAttr("i", "x").Eventf("task %d", i)
		c.Inc()
		sp.Finish()
		if i%3 == 0 {
			kept = append(kept, sp)
		}
	}
	job.Finish()

	if c.Value() != 9 {
		t.Fatalf("counter = %v, want 9 (sampling must not thin metrics)", c.Value())
	}
	tr := p.Tracer().Export()
	tasks := 0
	for _, s := range tr.Spans {
		if s.Kind == KindTask {
			tasks++
			if s.Parent != job.ID {
				t.Fatalf("sampled task span lost its parent: %+v", s)
			}
		}
	}
	if tasks != 3 {
		t.Fatalf("recorded task spans = %d, want 3 of 9", tasks)
	}
	// IDs are dense over recorded spans only: job + 3 tasks = 1..4.
	for i, s := range tr.Spans {
		if s.ID != i+1 {
			t.Fatalf("span IDs not dense: %+v", tr.Spans)
		}
	}
	// Events on dropped spans are discarded; kept spans' events remain.
	if len(tr.Events) != 3 {
		t.Fatalf("events = %d, want 3 (one per recorded task)", len(tr.Events))
	}
}

// TestPooledSpanReuse: sampled-out spans are recycled through the
// freelist; reuse must not corrupt previously recorded spans or leak
// attributes/events across incarnations.
func TestPooledSpanReuse(t *testing.T) {
	e := sim.New(1)
	p := New(e, WithTaskSampling(2))
	job := p.Start(KindJob, "job", nil)
	for i := 0; i < 50; i++ {
		sp := p.Start(KindTask, "t", job)
		sp.SetAttr("attempt", "1").SetFloat("bytes", float64(i))
		sp.Eventf("work %d", i)
		sp.Finish()
	}
	job.Finish()
	tr := p.Tracer().Export()

	wantTasks := 25
	got := 0
	for _, s := range tr.Spans {
		if s.Kind != KindTask {
			continue
		}
		got++
		// Each recorded span must carry exactly its own two attrs.
		if !reflect.DeepEqual(attrKeys(s.Attrs), []string{"attempt", "bytes"}) {
			t.Fatalf("recycled span corrupted attrs: %+v", s.Attrs)
		}
	}
	if got != wantTasks {
		t.Fatalf("task spans = %d, want %d", got, wantTasks)
	}
	if len(tr.Events) != wantTasks {
		t.Fatalf("events = %d, want %d (dropped spans must not leak events)", len(tr.Events), wantTasks)
	}
	// Round-trip through JSON to make sure recycled backing arrays never
	// alias exported data.
	dec, err := DecodeTrace([]byte(p.Tracer().JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, tr) {
		t.Fatal("export after reuse does not round-trip")
	}
}

func attrKeys(attrs []Attr) []string {
	keys := make([]string, 0, len(attrs))
	for _, a := range attrs {
		keys = append(keys, a.Key)
	}
	return keys
}

// TestSamplingOffByDefault: without the option every task span records,
// byte-identical to the pre-sampling behaviour the determinism suite
// pins.
func TestSamplingOffByDefault(t *testing.T) {
	e := sim.New(1)
	p := New(e)
	job := p.Start(KindJob, "job", nil)
	for i := 0; i < 5; i++ {
		p.Start(KindTask, "t", job).Finish()
	}
	job.Finish()
	if n := len(p.Tracer().Export().Spans); n != 6 {
		t.Fatalf("spans = %d, want 6 (sampling must default off)", n)
	}
}
