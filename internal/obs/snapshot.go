package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vhadoop/internal/sim"
)

// Reader is the typed, read-only face of a metrics snapshot: what the
// MapReduce Tuner (and any rule engine, chart, or test) consumes
// instead of poking Monitor internals. A Reader is a value — decisions
// made from it are reproducible from the snapshot alone.
type Reader interface {
	// Value returns the value of the metric with exactly these labels
	// (alternating key/value strings); ok is false when absent. For
	// histograms the value is the observation count.
	Value(name string, labels ...string) (float64, bool)
	// Total sums the values of every label set registered under name.
	Total(name string) float64
	// Series returns every metric registered under name, in canonical
	// label order.
	Series(name string) []Metric
	// Names returns every distinct metric name, sorted.
	Names() []string
}

// Bucket is one exported histogram bucket (cumulative count of
// observations <= Le).
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Metric is one exported instrument.
type Metric struct {
	Name    string     `json:"name"`
	Type    MetricType `json:"type"`
	Labels  []Label    `json:"labels,omitempty"`
	Value   float64    `json:"value,omitempty"`
	Buckets []Bucket   `json:"buckets,omitempty"` // histograms: cumulative
	Sum     float64    `json:"sum,omitempty"`     // histograms
	Count   uint64     `json:"count,omitempty"`   // histograms

	key string // canonical sort/lookup key, not exported
}

// Key returns the canonical "name{k=v,...}" identity of the metric.
func (m Metric) Key() string { return m.key }

// Label reports the value of one label key ("" when absent).
func (m Metric) Label(key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Snapshot is one deterministic export of a registry: metrics sorted by
// canonical key, stamped with the virtual time of the export.
type Snapshot struct {
	At      sim.Time `json:"at"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot runs the collect hooks, then exports every instrument in
// canonical (name, labels) order. Safe on a nil registry (empty
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	for _, fn := range r.collectors {
		fn()
	}
	out := Snapshot{At: r.now(), Metrics: make([]Metric, 0, len(r.order))}
	for _, m := range r.order {
		em := Metric{Name: m.name, Type: m.typ, Labels: m.labels, key: m.key}
		switch m.typ {
		case TypeHistogram:
			cum := uint64(0)
			em.Buckets = make([]Bucket, 0, len(m.counts))
			for i, c := range m.counts {
				cum += c
				le := sim.Forever
				if i < len(m.buckets) {
					le = m.buckets[i]
				}
				em.Buckets = append(em.Buckets, Bucket{Le: le, Count: cum})
			}
			em.Sum = m.sum
			em.Count = m.count
		default:
			em.Value = m.value
		}
		out.Metrics = append(out.Metrics, em)
	}
	sort.Slice(out.Metrics, func(i, j int) bool { return out.Metrics[i].key < out.Metrics[j].key })
	return out
}

// Value implements Reader.
func (s Snapshot) Value(name string, labels ...string) (float64, bool) {
	key, _ := canonical(name, labels)
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].key >= key })
	if i < len(s.Metrics) && s.Metrics[i].key == key {
		if s.Metrics[i].Type == TypeHistogram {
			return float64(s.Metrics[i].Count), true
		}
		return s.Metrics[i].Value, true
	}
	return 0, false
}

// Total implements Reader.
func (s Snapshot) Total(name string) float64 {
	var sum float64
	for _, m := range s.Series(name) {
		if m.Type == TypeHistogram {
			sum += float64(m.Count)
		} else {
			sum += m.Value
		}
	}
	return sum
}

// Series implements Reader.
func (s Snapshot) Series(name string) []Metric {
	var out []Metric
	for _, m := range s.Metrics {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// Names implements Reader. Metrics are sorted by canonical key, which
// starts with the name, so equal names are adjacent.
func (s Snapshot) Names() []string {
	var names []string
	last := ""
	for _, m := range s.Metrics {
		if m.Name != last {
			names = append(names, m.Name)
			last = m.Name
		}
	}
	return names
}

// formatFloat renders values the same way everywhere: shortest
// round-trip representation, so exports are byte-stable.
func formatFloat(v float64) string {
	if v >= sim.Forever {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscape escapes a label value for the Prometheus text format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promName renders "name{k="v",...}" with extra labels appended (the
// histogram le), or the plain name when there are no labels at all.
func promName(name string, labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, promEscape(l.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: one # TYPE header per metric name, samples in canonical
// order, histograms as cumulative _bucket/_sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastName = m.Name
		}
		var err error
		switch m.Type {
		case TypeHistogram:
			for _, b := range m.Buckets {
				if _, err = fmt.Fprintf(w, "%s %d\n",
					promName(m.Name+"_bucket", m.Labels, Label{Key: "le", Value: formatFloat(b.Le)}), b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s %s\n", promName(m.Name+"_sum", m.Labels), formatFloat(m.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s %d\n", promName(m.Name+"_count", m.Labels), m.Count)
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", promName(m.Name, m.Labels), formatFloat(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// PrometheusText returns WritePrometheus as a string.
func (s Snapshot) PrometheusText() string {
	var sb strings.Builder
	_ = s.WritePrometheus(&sb)
	return sb.String()
}

// JSON renders the snapshot as indented, diffable JSON: metrics are
// already in canonical order and struct fields encode in declaration
// order, so equal snapshots produce byte-equal documents.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: snapshot JSON: " + err.Error()) // structs of plain values cannot fail
	}
	return string(b)
}

// DecodeSnapshot parses a document produced by JSON, rebuilding the
// canonical keys so the result is again a usable Reader.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		kv := make([]string, 0, 2*len(m.Labels))
		for _, l := range m.Labels {
			kv = append(kv, l.Key, l.Value)
		}
		m.key, _ = canonical(m.Name, kv)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].key < s.Metrics[j].key })
	return s, nil
}

// Diff lists the canonical keys whose values differ between two
// snapshots (missing counts as different) — the assertion primitive for
// telemetry regressions in chaos and bench runs.
func Diff(a, b Snapshot) []string {
	index := func(s Snapshot) map[string]Metric {
		m := make(map[string]Metric, len(s.Metrics))
		for _, em := range s.Metrics {
			m[em.key] = em
		}
		return m
	}
	am, bm := index(a), index(b)
	seen := make(map[string]bool, len(am)+len(bm))
	var keys []string
	for _, em := range a.Metrics {
		seen[em.key] = true
		keys = append(keys, em.key)
	}
	for _, em := range b.Metrics {
		if !seen[em.key] {
			keys = append(keys, em.key)
		}
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		x, okA := am[k]
		y, okB := bm[k]
		if !okA || !okB || !sameMetric(x, y) {
			out = append(out, k)
		}
	}
	return out
}

func sameMetric(a, b Metric) bool {
	if a.Type != b.Type || a.Value != b.Value || a.Sum != b.Sum || a.Count != b.Count ||
		len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}
