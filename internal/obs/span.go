package obs

import (
	"encoding/json"
	"fmt"

	"vhadoop/internal/sim"
)

// SpanKind classifies spans and events so exports and lint rules can
// treat them by type rather than by parsing message text.
type SpanKind string

// The span/event kinds the platform emits.
const (
	KindJob       SpanKind = "job"         // one MapReduce job
	KindPhase     SpanKind = "phase"       // map / shuffle / reduce within a job
	KindTask      SpanKind = "task"        // one task attempt
	KindHDFSWrite SpanKind = "hdfs-write"  // one pipelined block write
	KindRepair    SpanKind = "hdfs-repair" // HDFS recovery: re-replication, read failover
	KindMigration SpanKind = "migration"   // one VM live migration
	KindFault     SpanKind = "fault"       // one injected fault
	KindCluster   SpanKind = "cluster"     // cluster-level lifecycle events
)

// Attr is one span attribute. Attributes keep append order, which is
// deterministic because spans are only touched from sim context.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// spanInlineAttrs is the attribute capacity carried inside the Span
// itself: the platform's spans set at most four attributes on their hot
// paths (vm + outcome + seconds + one more), so the common case never
// heap-allocates an attribute slice.
const spanInlineAttrs = 4

// spanChunk is the arena block size: spans are handed out from blocks
// of this many, so a run with thousands of task attempts pays one
// allocation per block instead of one per span.
const spanChunk = 64

// Span is one timed interval in the trace. IDs are sequential in
// creation order, so a fixed seed reproduces identical span tables.
type Span struct {
	ID     int      `json:"id"`
	Parent int      `json:"parent"` // 0 = root (IDs start at 1)
	Kind   SpanKind `json:"kind"`
	Name   string   `json:"name"`
	Start  sim.Time `json:"start"`
	End    sim.Time `json:"end"` // == Start while open; set by End()
	Attrs  []Attr   `json:"attrs,omitempty"`

	tracer  *Tracer
	open    bool
	dropped bool // sampled out: recorded nowhere, recycled on Finish
	inline  [spanInlineAttrs]Attr
}

// Event is one instantaneous annotation, attributed to a span (or 0 for
// a top-level event).
type Event struct {
	T    sim.Time `json:"t"`
	Kind SpanKind `json:"kind"`
	Span int      `json:"span"`
	Msg  string   `json:"msg"`
}

// event is the internal, possibly deferred form of one Event. When the
// engine's line trace is disabled at emission time there is no observer
// to satisfy eagerly, so Eventf captures format+args and the message is
// rendered at export time — in emission order, so exports stay
// byte-identical with eager formatting. Args must therefore format
// stably (strings, numbers, errors, value structs — which is all the
// platform passes); a pointer mutated between emission and export would
// render differently than it would have eagerly.
type event struct {
	t      sim.Time
	kind   SpanKind
	span   int
	msg    string // rendered form; authoritative once format == ""
	format string // non-empty while rendering is deferred
	args   []any
}

// render materialises the message, memoising the result (tracers are
// sim-context single-threaded).
func (ev *event) render() string {
	if ev.format != "" {
		ev.msg = fmt.Sprintf(ev.format, ev.args...)
		ev.format = ""
		ev.args = nil
	}
	return ev.msg
}

// Tracer records spans and events for one platform. Span starts and
// ends are silent; events additionally write through Engine.Tracef when
// a trace sink is installed, so the legacy line trace remains a
// faithful subset of the span trace.
type Tracer struct {
	engine *sim.Engine
	nextID int
	spans  []*Span
	events []event

	chunk []Span  // arena tail: spans are carved off here
	free  []*Span // recycled sampled-out spans

	sampleN  int // record 1-in-n task spans; 0 or 1 records all
	taskSeen int // task spans started, admitted or not
}

// newTracer binds a tracer to the engine clock and trace sink.
func newTracer(e *sim.Engine) *Tracer {
	return &Tracer{engine: e}
}

// alloc hands out a zeroed span from the freelist or the arena.
func (tr *Tracer) alloc() *Span {
	if n := len(tr.free); n > 0 {
		s := tr.free[n-1]
		tr.free = tr.free[:n-1]
		*s = Span{}
		return s
	}
	if len(tr.chunk) == 0 {
		tr.chunk = make([]Span, spanChunk)
	}
	s := &tr.chunk[0]
	tr.chunk = tr.chunk[1:]
	return s
}

// Start opens a span of the given kind under parent (nil for a root
// span). Nil-safe: a nil tracer returns a nil span, whose methods are
// all no-ops. With task sampling enabled (see WithTaskSampling),
// sampled-out task spans are live but unrecorded: their attributes and
// events are discarded and the span object is recycled on Finish.
func (tr *Tracer) Start(kind SpanKind, name string, parent *Span) *Span {
	if tr == nil {
		return nil
	}
	s := tr.alloc()
	if kind == KindTask && tr.sampleN > 1 {
		tr.taskSeen++
		if (tr.taskSeen-1)%tr.sampleN != 0 {
			s.Kind = kind
			s.tracer = tr
			s.open = true
			s.dropped = true
			return s
		}
	}
	tr.nextID++
	s.ID = tr.nextID
	s.Kind = kind
	s.Name = name
	s.Start = tr.engine.Now()
	s.End = s.Start
	s.tracer = tr
	s.open = true
	if parent != nil && !parent.dropped {
		s.Parent = parent.ID
	}
	tr.spans = append(tr.spans, s)
	return s
}

// Eventf records a top-level typed event and mirrors it into the engine
// trace when a sink is installed; without one, formatting is deferred
// to export time.
func (tr *Tracer) Eventf(kind SpanKind, format string, args ...any) {
	if tr == nil {
		return
	}
	tr.recordf(kind, 0, format, args...)
}

// record stores a pre-rendered event and mirrors it into the engine
// trace.
func (tr *Tracer) record(kind SpanKind, spanID int, msg string) {
	tr.events = append(tr.events, event{t: tr.engine.Now(), kind: kind, span: spanID, msg: msg})
	tr.engine.Tracef("%s", msg)
}

// recordf stores a formatted event: rendered eagerly (and mirrored)
// when the engine trace is live, captured as format+args otherwise.
func (tr *Tracer) recordf(kind SpanKind, spanID int, format string, args ...any) {
	if tr.engine.TraceEnabled() {
		tr.record(kind, spanID, fmt.Sprintf(format, args...))
		return
	}
	tr.events = append(tr.events, event{t: tr.engine.Now(), kind: kind, span: spanID, format: format, args: args})
}

// Finish closes the span at the current virtual time. Finishing twice
// keeps the first end time. A sampled-out span returns to the tracer's
// freelist here — callers must not touch a span after Finish.
func (s *Span) Finish() {
	if s == nil || !s.open {
		return
	}
	s.open = false
	if s.dropped {
		s.tracer.free = append(s.tracer.free, s)
		return
	}
	s.End = s.tracer.engine.Now()
}

// SetAttr attaches a string attribute (replacing an earlier value for
// the same key, so retried paths don't grow duplicate attrs). The first
// few attributes live inline in the span; only unusually decorated
// spans spill to the heap.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil || s.dropped {
		return s
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return s
		}
	}
	if s.Attrs == nil {
		s.Attrs = s.inline[:0]
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	return s
}

// SetFloat attaches a numeric attribute, rendered with the export
// float format so traces stay byte-stable.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil || s.dropped {
		return s
	}
	return s.SetAttr(key, formatFloat(v))
}

// Annotate records a plain event attributed to this span.
func (s *Span) Annotate(msg string) {
	if s == nil || s.tracer == nil || s.dropped {
		return
	}
	s.tracer.record(s.Kind, s.ID, msg)
}

// Eventf records a formatted event attributed to this span and mirrors
// it into the engine trace — the replacement for direct Tracef calls in
// the subsystems. Formatting is deferred when no trace sink is
// installed.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil || s.tracer == nil || s.dropped {
		return
	}
	s.tracer.recordf(s.Kind, s.ID, format, args...)
}

// Trace is the exported form of a tracer: spans in creation order,
// events in emission order.
type Trace struct {
	Spans  []Span  `json:"spans"`
	Events []Event `json:"events"`
}

// Export returns the current trace as a value (open spans export with
// End == the current clock). Deferred events render here, in emission
// order.
func (tr *Tracer) Export() Trace {
	if tr == nil {
		return Trace{}
	}
	t := Trace{Spans: make([]Span, 0, len(tr.spans)), Events: make([]Event, 0, len(tr.events))}
	for i := range tr.events {
		ev := &tr.events[i]
		t.Events = append(t.Events, Event{T: ev.t, Kind: ev.kind, Span: ev.span, Msg: ev.render()})
	}
	for _, s := range tr.spans {
		// Rebuild the exported value field by field: a whole-struct copy
		// would drag the unexported bookkeeping (open flag, inline attr
		// backing) along and break DeepEqual against decoded traces.
		cp := Span{
			ID:     s.ID,
			Parent: s.Parent,
			Kind:   s.Kind,
			Name:   s.Name,
			Start:  s.Start,
			End:    s.End,
			Attrs:  append([]Attr(nil), s.Attrs...),
		}
		if s.open {
			cp.End = tr.engine.Now()
		}
		t.Spans = append(t.Spans, cp)
	}
	return t
}

// JSON renders the trace as indented, diffable JSON; spans and events
// are already in deterministic order.
func (tr *Tracer) JSON() string {
	b, err := json.MarshalIndent(tr.Export(), "", "  ")
	if err != nil {
		panic("obs: trace JSON: " + err.Error()) // structs of plain values cannot fail
	}
	return string(b)
}

// DecodeTrace parses a document produced by Tracer.JSON.
func DecodeTrace(data []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return Trace{}, fmt.Errorf("obs: decode trace: %w", err)
	}
	return t, nil
}
