package obs

import (
	"encoding/json"
	"fmt"

	"vhadoop/internal/sim"
)

// SpanKind classifies spans and events so exports and lint rules can
// treat them by type rather than by parsing message text.
type SpanKind string

// The span/event kinds the platform emits.
const (
	KindJob       SpanKind = "job"         // one MapReduce job
	KindPhase     SpanKind = "phase"       // map / shuffle / reduce within a job
	KindTask      SpanKind = "task"        // one task attempt
	KindHDFSWrite SpanKind = "hdfs-write"  // one pipelined block write
	KindRepair    SpanKind = "hdfs-repair" // HDFS recovery: re-replication, read failover
	KindMigration SpanKind = "migration"   // one VM live migration
	KindFault     SpanKind = "fault"       // one injected fault
	KindCluster   SpanKind = "cluster"     // cluster-level lifecycle events
)

// Attr is one span attribute. Attributes keep append order, which is
// deterministic because spans are only touched from sim context.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed interval in the trace. IDs are sequential in
// creation order, so a fixed seed reproduces identical span tables.
type Span struct {
	ID     int      `json:"id"`
	Parent int      `json:"parent"` // 0 = root (IDs start at 1)
	Kind   SpanKind `json:"kind"`
	Name   string   `json:"name"`
	Start  sim.Time `json:"start"`
	End    sim.Time `json:"end"` // == Start while open; set by End()
	Attrs  []Attr   `json:"attrs,omitempty"`

	tracer *Tracer
	open   bool
}

// Event is one instantaneous annotation, attributed to a span (or 0 for
// a top-level event).
type Event struct {
	T    sim.Time `json:"t"`
	Kind SpanKind `json:"kind"`
	Span int      `json:"span"`
	Msg  string   `json:"msg"`
}

// Tracer records spans and events for one platform. Span starts and
// ends are silent; events additionally write through Engine.Tracef, so
// the legacy line trace remains a faithful subset of the span trace.
type Tracer struct {
	engine *sim.Engine
	nextID int
	spans  []*Span
	events []Event
}

// newTracer binds a tracer to the engine clock and trace sink.
func newTracer(e *sim.Engine) *Tracer {
	return &Tracer{engine: e}
}

// Start opens a span of the given kind under parent (nil for a root
// span). Nil-safe: a nil tracer returns a nil span, whose methods are
// all no-ops.
func (tr *Tracer) Start(kind SpanKind, name string, parent *Span) *Span {
	if tr == nil {
		return nil
	}
	tr.nextID++
	s := &Span{
		ID:     tr.nextID,
		Kind:   kind,
		Name:   name,
		Start:  tr.engine.Now(),
		End:    tr.engine.Now(),
		tracer: tr,
		open:   true,
	}
	if parent != nil {
		s.Parent = parent.ID
	}
	tr.spans = append(tr.spans, s)
	return s
}

// Eventf records a top-level typed event and mirrors it into the engine
// trace.
func (tr *Tracer) Eventf(kind SpanKind, format string, args ...any) {
	if tr == nil {
		return
	}
	tr.record(kind, 0, fmt.Sprintf(format, args...))
}

func (tr *Tracer) record(kind SpanKind, spanID int, msg string) {
	tr.events = append(tr.events, Event{T: tr.engine.Now(), Kind: kind, Span: spanID, Msg: msg})
	tr.engine.Tracef("%s", msg)
}

// Finish closes the span at the current virtual time. Finishing twice
// keeps the first end time.
func (s *Span) Finish() {
	if s == nil || !s.open {
		return
	}
	s.open = false
	s.End = s.tracer.engine.Now()
}

// SetAttr attaches a string attribute (replacing an earlier value for
// the same key, so retried paths don't grow duplicate attrs).
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return s
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	return s
}

// SetFloat attaches a numeric attribute, rendered with the export
// float format so traces stay byte-stable.
func (s *Span) SetFloat(key string, v float64) *Span {
	return s.SetAttr(key, formatFloat(v))
}

// Annotate records a plain event attributed to this span.
func (s *Span) Annotate(msg string) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.record(s.Kind, s.ID, msg)
}

// Eventf records a formatted event attributed to this span and mirrors
// it into the engine trace — the replacement for direct Tracef calls in
// the subsystems.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.record(s.Kind, s.ID, fmt.Sprintf(format, args...))
}

// Trace is the exported form of a tracer: spans in creation order,
// events in emission order.
type Trace struct {
	Spans  []Span  `json:"spans"`
	Events []Event `json:"events"`
}

// Export returns the current trace as a value (open spans export with
// End == the current clock).
func (tr *Tracer) Export() Trace {
	if tr == nil {
		return Trace{}
	}
	t := Trace{Spans: make([]Span, 0, len(tr.spans)), Events: append([]Event(nil), tr.events...)}
	for _, s := range tr.spans {
		cp := *s
		cp.tracer = nil
		if cp.open {
			cp.End = tr.engine.Now()
		}
		cp.Attrs = append([]Attr(nil), s.Attrs...)
		t.Spans = append(t.Spans, cp)
	}
	return t
}

// JSON renders the trace as indented, diffable JSON; spans and events
// are already in deterministic order.
func (tr *Tracer) JSON() string {
	b, err := json.MarshalIndent(tr.Export(), "", "  ")
	if err != nil {
		panic("obs: trace JSON: " + err.Error()) // structs of plain values cannot fail
	}
	return string(b)
}

// DecodeTrace parses a document produced by Tracer.JSON.
func DecodeTrace(data []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return Trace{}, fmt.Errorf("obs: decode trace: %w", err)
	}
	return t, nil
}
