package obs

import (
	"fmt"
	"testing"

	"vhadoop/internal/sim"
)

// BenchmarkCounterAdd measures the hot-path cost of a cached instrument
// handle — what subsystems pay per event after SetObs cached the handle.
func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry(nil)
	c := reg.Counter("mr_spill_bytes_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(float64(i))
	}
}

// BenchmarkRegistryLookup measures the uncached path: canonical key
// construction plus map lookup for a labelled instrument.
func BenchmarkRegistryLookup(b *testing.B) {
	reg := NewRegistry(nil)
	reg.Counter("mr_task_failures_total", "kind", "map").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Counter("mr_task_failures_total", "kind", "map")
	}
}

// BenchmarkSnapshotPrometheus measures a full export of a realistically
// sized registry (a few hundred series) to Prometheus text.
func BenchmarkSnapshotPrometheus(b *testing.B) {
	reg := NewRegistry(nil)
	for i := 0; i < 64; i++ {
		vm := fmt.Sprintf("vm%02d", i)
		reg.Gauge("nmon_vm_cpu_mean", "vm", vm).Set(float64(i) / 64)
		reg.Counter("mr_spill_bytes_total", "vm", vm).Add(1e6)
		reg.Histogram("mr_task_seconds", []float64{0.5, 1, 2, 5, 10}, "vm", vm).Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot().PrometheusText()
	}
}

// BenchmarkTracerSpan measures the span lifecycle the MapReduce layer
// pays per task attempt: start, two attributes, finish.
func BenchmarkTracerSpan(b *testing.B) {
	pl := New(sim.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := pl.Start(KindTask, "wc:m0.0", nil)
		sp.SetAttr("vm", "vm01").SetFloat("seconds", 1.5)
		sp.Finish()
	}
}

// BenchmarkTracerSpanSampled is the same lifecycle with 1-in-16 task
// sampling: 15 of 16 spans recycle through the freelist.
func BenchmarkTracerSpanSampled(b *testing.B) {
	pl := New(sim.New(1), WithTaskSampling(16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := pl.Start(KindTask, "wc:m0.0", nil)
		sp.SetAttr("vm", "vm01").SetFloat("seconds", 1.5)
		sp.Finish()
	}
}

// BenchmarkVecWithHit measures the interned fast path — the cost hot
// code pays per With once the tuple is cached — against the legacy
// string lookup it replaces (BenchmarkRegistryLookup).
func BenchmarkVecWithHit(b *testing.B) {
	reg := NewRegistry(nil)
	v := reg.CounterVec("mr_task_failures_total", "kind")
	v.With("map").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("map")
	}
}

// BenchmarkVecWithHitTwoLabels exercises the array-keyed two-label
// cache, still allocation-free on hits.
func BenchmarkVecWithHitTwoLabels(b *testing.B) {
	reg := NewRegistry(nil)
	v := reg.GaugeVec("nmon_vm_load", "vm", "kind")
	v.With("vm01", "map").Set(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("vm01", "map")
	}
}

// BenchmarkEventfDisabled measures Eventf with no trace sink installed:
// formatting is deferred, so the cost is capturing format+args.
func BenchmarkEventfDisabled(b *testing.B) {
	pl := New(sim.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Eventf(KindTask, "speculating %s%d of %s", "m", i, "wc")
	}
}

// BenchmarkEventfEnabled is the same event with a trace sink installed:
// eager Sprintf plus the engine-trace mirror.
func BenchmarkEventfEnabled(b *testing.B) {
	e := sim.New(1)
	e.SetTrace(func(t sim.Time, format string, args ...any) {})
	pl := New(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Eventf(KindTask, "speculating %s%d of %s", "m", i, "wc")
	}
}
