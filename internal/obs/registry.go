package obs

import (
	"fmt"
	"sort"
	"strings"

	"vhadoop/internal/sim"
)

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// MetricType distinguishes the three instrument families.
type MetricType string

// The registry's instrument families.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// metric is the shared identity of one registered instrument.
type metric struct {
	name   string
	labels []Label // sorted by key
	key    string  // canonical "name{k=v,...}" lookup/sort key
	typ    MetricType

	// instrument state (one of, per typ)
	value   float64 // counter and gauge
	buckets []float64
	counts  []uint64 // len(buckets)+1, last is +Inf
	sum     float64
	count   uint64
}

// Counter is a monotonically increasing total.
type Counter struct{ m *metric }

// Gauge is a value that can move both ways.
type Gauge struct{ m *metric }

// Histogram counts observations into fixed buckets (cumulative-le
// semantics at export time, like Prometheus: a value lands in the first
// bucket whose upper bound is >= the value).
type Histogram struct{ m *metric }

// Registry holds every instrument of one platform and exports
// deterministic snapshots. It is simulator-driven, single-threaded
// code: instruments are cheap to look up (one map probe) and callers
// are expected to cache the returned handles on hot paths.
type Registry struct {
	now        func() sim.Time
	byKey      map[string]*metric
	order      []*metric // registration order; snapshots re-sort by key
	collectors []func()  // refresh hooks run before each snapshot
}

// NewRegistry creates a registry whose snapshots are stamped by now
// (typically Engine.Now). A nil now stamps snapshots with zero.
func NewRegistry(now func() sim.Time) *Registry {
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	return &Registry{now: now, byKey: make(map[string]*metric)}
}

// canonical builds the sorted label set and lookup key for a name and
// alternating key/value pairs. Label pairs arrive as variadic strings
// ("vm", "vm03", "kind", "map") so call sites stay allocation-light.
func canonical(name string, kv []string) (string, []Label) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %q", name, kv))
	}
	if len(kv) == 0 {
		return name, nil
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String(), labels
}

// lookup returns the instrument for (name, labels), creating it with
// typ on first use and panicking on a type clash — one name maps to one
// instrument family, as in Prometheus.
func (r *Registry) lookup(typ MetricType, name string, kv []string) *metric {
	key, labels := canonical(name, kv)
	if m, ok := r.byKey[key]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, m.typ, typ))
		}
		return m
	}
	m := &metric{name: name, labels: labels, key: key, typ: typ}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns (registering on first use) the counter for
// (name, labels). Labels are alternating key/value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{m: r.lookup(TypeCounter, name, labels)}
}

// Gauge returns (registering on first use) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{m: r.lookup(TypeGauge, name, labels)}
}

// Histogram returns (registering on first use) the histogram for
// (name, labels) with the given ascending bucket upper bounds. A second
// registration must pass identical buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s: bucket bounds not ascending: %v", name, buckets))
		}
	}
	m := r.lookup(TypeHistogram, name, labels)
	if m.counts == nil {
		m.buckets = append([]float64(nil), buckets...)
		m.counts = make([]uint64, len(buckets)+1)
	} else if len(m.buckets) != len(buckets) {
		panic("obs: histogram " + name + " re-registered with different buckets")
	} else {
		for i := range buckets {
			if m.buckets[i] != buckets[i] {
				panic("obs: histogram " + name + " re-registered with different buckets")
			}
		}
	}
	return &Histogram{m: m}
}

// OnCollect registers a refresh hook run (in registration order) before
// every snapshot — the idiom for gauges derived from live state, like
// per-link byte totals or the namenode's under-replicated block count.
func (r *Registry) OnCollect(fn func()) {
	if r == nil {
		return
	}
	r.collectors = append(r.collectors, fn)
}

// Add increases the counter. Negative deltas panic: a counter that can
// shrink is a gauge, and a shrinking "total" would poison rate rules.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	if v < 0 {
		panic("obs: counter " + c.m.key + ": negative add")
	}
	c.m.value += v
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.m.value
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.m.value = v
}

// Add moves the gauge by v (either direction).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.m.value += v
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.m.value
}

// Observe records one value: it lands in the first bucket whose upper
// bound is >= v, or the implicit +Inf bucket beyond the last bound.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	m := h.m
	idx := sort.SearchFloat64s(m.buckets, v) // first bound >= v
	m.counts[idx]++
	m.sum += v
	m.count++
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.m.count
}
