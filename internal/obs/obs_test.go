package obs

import (
	"reflect"
	"strings"
	"testing"

	"vhadoop/internal/sim"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("slots", "vm", "vm01")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	// Same (name, labels) in any label order resolves to one instrument.
	c2 := r.Counter("bytes", "vm", "vm01", "kind", "map")
	c2.Inc()
	c3 := r.Counter("bytes", "kind", "map", "vm", "vm01")
	if c3.Value() != 1 {
		t.Fatalf("label order changed instrument identity")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	NewRegistry(nil).Counter("x").Add(-1)
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge/counter clash did not panic")
		}
	}()
	r.Gauge("x")
}

// TestHistogramBucketEdges pins the le-semantics: a value lands in the
// first bucket whose upper bound is >= the value, values beyond the
// last bound land in the implicit +Inf bucket, and exported buckets are
// cumulative.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat", []float64{1, 5, 10})
	var wantSum float64
	for _, v := range []float64{
		0,    // below first bound -> bucket le=1
		1,    // exactly on a bound -> that bucket (le semantics)
		1.01, // just above -> le=5
		5,    // on the middle bound
		10,   // on the last bound
		10.5, // above the last bound -> +Inf only
		-3,   // negative still lands in the first bucket
	} {
		h.Observe(v)
		wantSum += v
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	snap := r.Snapshot()
	m := snap.Series("lat")[0]
	wantCum := []uint64{3, 5, 6, 7} // le=1, le=5, le=10, +Inf (cumulative)
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.Le, b.Count, wantCum[i])
		}
	}
	if m.Buckets[3].Le < sim.Forever {
		t.Fatalf("last bucket bound = %v, want +Inf sentinel", m.Buckets[3].Le)
	}
	if m.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", m.Sum, wantSum)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	r := NewRegistry(nil)
	for _, bad := range [][]float64{{}, {5, 1}, {1, 1}} {
		func() {
			defer func() { recover() }()
			r.Histogram("h", bad)
			t.Fatalf("buckets %v accepted", bad)
		}()
	}
	r.Histogram("ok", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registration with different buckets did not panic")
		}
	}()
	r.Histogram("ok", []float64{1, 3})
}

// TestRegistryDeterministicUnderSimProcs runs several interleaved sim
// processes that all write into one registry and checks that two
// identically seeded runs export byte-identical Prometheus text and
// JSON — the registry inherits the engine's determinism because it is
// only ever touched from sim context.
func TestRegistryDeterministicUnderSimProcs(t *testing.T) {
	run := func() (string, string) {
		e := sim.New(7)
		p := New(e)
		for i := 0; i < 4; i++ {
			id := i
			e.Spawn("writer", func(pr *sim.Proc) {
				vm := []string{"vm00", "vm01", "vm02", "vm03"}[id]
				c := p.Counter("work_total", "vm", vm)
				h := p.Histogram("step_seconds", []float64{0.5, 1, 2}, "vm", vm)
				for j := 0; j < 5; j++ {
					d := pr.Engine().Rand().Float64()
					pr.Sleep(d)
					c.Inc()
					h.Observe(d)
					p.Gauge("last_step", "vm", vm).Set(d)
				}
			})
		}
		e.Run()
		snap := p.Snapshot()
		return snap.PrometheusText(), snap.JSON()
	}
	prom1, js1 := run()
	prom2, js2 := run()
	if prom1 != prom2 {
		t.Fatalf("prometheus text differs between identically seeded runs:\n%s\n---\n%s", prom1, prom2)
	}
	if js1 != js2 {
		t.Fatalf("JSON snapshot differs between identically seeded runs")
	}
	if !strings.Contains(prom1, `work_total{vm="vm02"} 5`) {
		t.Fatalf("missing expected sample; got:\n%s", prom1)
	}
}

func TestSnapshotReaderAndCodec(t *testing.T) {
	e := sim.New(1)
	r := NewRegistry(e.Now)
	r.Counter("a_total", "k", "x").Add(2)
	r.Counter("a_total", "k", "y").Add(3)
	r.Gauge("b").Set(1.5)
	r.Histogram("c", []float64{1}).Observe(0.5)
	collected := false
	r.OnCollect(func() { collected = true; r.Gauge("live").Set(9) })

	snap := r.Snapshot()
	if !collected {
		t.Fatal("collector did not run")
	}
	if v, ok := snap.Value("a_total", "k", "x"); !ok || v != 2 {
		t.Fatalf("Value(a_total,k=x) = %v,%v", v, ok)
	}
	if v, ok := snap.Value("c"); !ok || v != 1 {
		t.Fatalf("histogram Value = %v,%v, want count 1", v, ok)
	}
	if _, ok := snap.Value("a_total"); ok {
		t.Fatal("unlabelled lookup matched a labelled metric")
	}
	if got := snap.Total("a_total"); got != 5 {
		t.Fatalf("Total = %v, want 5", got)
	}
	wantNames := []string{"a_total", "b", "c", "live"}
	if got := snap.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("Names = %v, want %v", got, wantNames)
	}

	dec, err := DecodeSnapshot([]byte(snap.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if diff := Diff(snap, dec); len(diff) != 0 {
		t.Fatalf("decoded snapshot differs: %v", diff)
	}
	if dec.JSON() != snap.JSON() {
		t.Fatal("JSON round-trip is not byte-stable")
	}

	r.Counter("a_total", "k", "x").Inc()
	snap2 := r.Snapshot()
	if diff := Diff(snap, snap2); !reflect.DeepEqual(diff, []string{"a_total{k=x}"}) {
		t.Fatalf("Diff = %v", diff)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("x_total", "q", `a"b`).Inc()
	r.Histogram("h_seconds", []float64{1, 2}).Observe(1.5)
	text := r.Snapshot().PrometheusText()
	want := `# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 0
h_seconds_bucket{le="2"} 1
h_seconds_bucket{le="+Inf"} 1
h_seconds_sum 1.5
h_seconds_count 1
# TYPE x_total counter
x_total{q="a\"b"} 1
`
	if text != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", text, want)
	}
}

func TestSpansAndEvents(t *testing.T) {
	e := sim.New(1)
	var lines []string
	e.SetTrace(func(at sim.Time, f string, args ...any) {
		lines = append(lines, strings.TrimSpace(f))
	})
	p := New(e)
	e.Spawn("job", func(pr *sim.Proc) {
		job := p.Start(KindJob, "wordcount", nil)
		phase := p.Start(KindPhase, "map", job)
		pr.Sleep(2)
		task := p.Start(KindTask, "m0", phase).SetAttr("vm", "vm01").SetFloat("bytes", 1024)
		pr.Sleep(1)
		task.Eventf("task %s done", "m0")
		task.SetAttr("vm", "vm02") // replaces, not appends
		task.Finish()
		phase.Finish()
		job.Finish()
		p.Eventf(KindFault, "fault: vmcrash vm01")
	})
	e.Run()

	tr := p.Tracer().Export()
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	job, phase, task := tr.Spans[0], tr.Spans[1], tr.Spans[2]
	if job.ID != 1 || phase.Parent != job.ID || task.Parent != phase.ID {
		t.Fatalf("hierarchy wrong: %+v", tr.Spans)
	}
	if task.Start != 2 || task.End != 3 || job.End != 3 {
		t.Fatalf("timing wrong: task [%v,%v], job end %v", task.Start, task.End, job.End)
	}
	if !reflect.DeepEqual(task.Attrs, []Attr{{"vm", "vm02"}, {"bytes", "1024"}}) {
		t.Fatalf("attrs = %v", task.Attrs)
	}
	if len(tr.Events) != 2 || tr.Events[0].Span != task.ID || tr.Events[1].Kind != KindFault {
		t.Fatalf("events = %+v", tr.Events)
	}
	// Events mirror into the engine trace.
	if !reflect.DeepEqual(lines, []string{"%s", "%s"}) && len(lines) != 2 {
		t.Fatalf("engine trace lines = %v", lines)
	}

	js := p.Tracer().JSON()
	dec, err := DecodeTrace([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, tr) {
		t.Fatal("trace JSON round-trip mismatch")
	}
	svg := tr.SVG()
	for _, want := range []string{"<svg", "wordcount", "vmcrash", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

// TestNilSafety: every entry point must be a no-op on nil receivers so
// un-wired subsystems can instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var p *Plane
	p.Counter("c").Inc()
	p.Counter("c").Add(1)
	p.Gauge("g").Set(1)
	p.Gauge("g").Add(1)
	p.Histogram("h", []float64{1}).Observe(1)
	s := p.Start(KindJob, "j", nil)
	s.SetAttr("k", "v").SetFloat("f", 1)
	s.Annotate("x")
	s.Eventf("e %d", 1)
	s.Finish()
	p.Eventf(KindFault, "f")
	if p.Registry() != nil || p.Tracer() != nil {
		t.Fatal("nil plane leaked non-nil components")
	}
	if got := p.Snapshot(); len(got.Metrics) != 0 {
		t.Fatal("nil plane snapshot not empty")
	}
	if p.Counter("c").Value() != 0 || p.Gauge("g").Value() != 0 || p.Histogram("h", []float64{1}).Count() != 0 {
		t.Fatal("nil instrument values not zero")
	}
	var reg *Registry
	reg.OnCollect(func() {})
	var tr *Tracer
	if tr.JSON() == "" {
		t.Fatal("nil tracer JSON should still be a document")
	}
}
