package core

import (
	"errors"
	"testing"

	"vhadoop/internal/sim"
)

func TestProvisionNormalLayout(t *testing.T) {
	pl := MustNewPlatform(DefaultOptions())
	if len(pl.VMs) != 16 {
		t.Fatalf("VMs = %d", len(pl.VMs))
	}
	for _, vm := range pl.VMs {
		if vm.Host() != pl.PMs[0] {
			t.Fatalf("%s on %s in normal layout", vm.Name, vm.Host().Name)
		}
	}
	if len(pl.Workers()) != 15 {
		t.Fatalf("workers = %d", len(pl.Workers()))
	}
	if pl.Master != pl.VMs[0] {
		t.Fatal("master is not VMs[0]")
	}
	if pl.DFS.Namenode() != pl.Master || pl.MR.Master() != pl.Master {
		t.Fatal("namenode/jobtracker not on the master VM")
	}
	if got := len(pl.DFS.Datanodes()); got != 15 {
		t.Fatalf("datanodes = %d", got)
	}
	if got := len(pl.MR.Trackers()); got != 15 {
		t.Fatalf("trackers = %d", got)
	}
}

func TestProvisionCrossDomainLayout(t *testing.T) {
	opts := DefaultOptions()
	opts.Layout = CrossDomain
	pl := MustNewPlatform(opts)
	perPM := map[string]int{}
	for _, vm := range pl.VMs {
		perPM[vm.Host().Name]++
	}
	if perPM["pm1"] != 8 || perPM["pm2"] != 8 {
		t.Fatalf("cross-domain distribution: %v", perPM)
	}
}

func TestProvisionRejectsTinyCluster(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 1
	if _, err := NewPlatform(opts); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

func TestProvisionRejectsOversizedCluster(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 100 // 100 GB of VMs on a 32 GB machine
	if _, err := NewPlatform(opts); err == nil {
		t.Fatal("oversized normal-layout cluster accepted")
	}
}

func TestRunPropagatesDriverError(t *testing.T) {
	pl := MustNewPlatform(DefaultOptions())
	sentinel := errors.New("boom")
	_, err := pl.Run(func(p *sim.Proc) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunDrainsAndShutsDown(t *testing.T) {
	pl := MustNewPlatform(DefaultOptions())
	end, err := pl.Run(func(p *sim.Proc) error {
		p.Sleep(5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end < 5 {
		t.Fatalf("simulation ended at %v", end)
	}
	if pl.Engine.LiveProcs() != 0 {
		t.Fatalf("%d processes leaked after Run", pl.Engine.LiveProcs())
	}
}

func TestMigrateWorkersMovesEverything(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 4
	pl := MustNewPlatform(opts)
	_, err := pl.Run(func(p *sim.Proc) error {
		stats, err := pl.MigrateWorkers(p, pl.PMs[0], pl.PMs[1])
		if err != nil {
			return err
		}
		if len(stats) != 4 {
			t.Errorf("migrated %d VMs, want 4", len(stats))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range pl.VMs {
		if vm.Host() != pl.PMs[1] {
			t.Fatalf("%s still on %s", vm.Name, vm.Host().Name)
		}
	}
}

func TestDeterministicProvisioning(t *testing.T) {
	a := MustNewPlatform(DefaultOptions())
	b := MustNewPlatform(DefaultOptions())
	endA, errA := a.Run(func(p *sim.Proc) error { p.Sleep(1); return nil })
	endB, errB := b.Run(func(p *sim.Proc) error { p.Sleep(1); return nil })
	if errA != nil || errB != nil || endA != endB {
		t.Fatalf("same-seed platforms diverged: %v/%v %v/%v", endA, errA, endB, errB)
	}
}
