// Package core is the vHadoop platform itself: it wires the five modules of
// the paper — the Virtualization Module (internal/xen over internal/phys and
// internal/nfs), the Hadoop Module (internal/hdfs + internal/mapreduce), the
// Machine Learning Algorithm Library (internal/clustering), the nmon Monitor
// (internal/nmon) and the MapReduce Tuner (internal/tuner) — and provisions
// hadoop virtual clusters in the paper's two layouts: normal (all VMs on one
// physical machine) and cross-domain (VMs split across two).
package core

import (
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
	"vhadoop/internal/xen"
)

// Params is the hardware calibration of the simulated testbed. Defaults
// mirror the paper's Dell T710 servers: 2x quad-core Xeon E5620 (16
// hyper-threads), 32 GB DRAM, gigabit NICs and a separate NFS filer holding
// every VM image.
type Params struct {
	Cores      int
	DRAMBytes  float64
	LocalDisk  float64 // dom0-local disk bandwidth (B/s)
	NICBW      float64 // gigabit effective (B/s)
	NICLat     sim.Time
	BridgeBW   float64 // intra-machine virtual bridge (B/s)
	BridgeLat  sim.Time
	SwitchBW   float64 // switch backplane (B/s)
	SwitchLat  sim.Time
	FilerNIC   float64 // NFS filer NIC (bonded pair)
	FilerDisk  float64 // NFS filer disk array (B/s)
	FilerCores int
}

// DefaultParams returns the testbed calibration used by every experiment.
func DefaultParams() Params {
	return Params{
		Cores:      16,
		DRAMBytes:  32e9,
		LocalDisk:  90e6,
		NICBW:      119e6, // ~1 Gb/s after protocol overhead
		NICLat:     0.0001,
		BridgeBW:   1e9, // intra-host netback switching, ~8 Gb/s aggregate
		BridgeLat:  0.00002,
		SwitchBW:   10e9,
		SwitchLat:  0.00001,
		FilerNIC:   150e6, // bonded filer uplink, keeps pace with the array
		FilerDisk:  150e6,
		FilerCores: 8,
	}
}

// Layout is how the virtual cluster maps onto physical machines.
type Layout int

// Cluster layouts from the paper's static performance study.
const (
	// Normal packs every VM onto one physical machine.
	Normal Layout = iota
	// CrossDomain distributes the VMs equally across two machines.
	CrossDomain
)

func (l Layout) String() string {
	if l == Normal {
		return "normal"
	}
	return "cross-domain"
}

// Options configures one provisioned hadoop virtual cluster.
type Options struct {
	Seed       int64
	Nodes      int // total VMs: 1 namenode/jobtracker + N-1 workers
	Layout     Layout
	VMMemBytes float64 // per-VM memory (512 MB or 1024 MB in the paper)
	Params     Params
	HDFS       hdfs.Config
	MR         mapreduce.Config
	Xen        xen.Config
	Migration  xen.MigrationConfig

	// TaskSampling records 1-in-n task spans when n > 1 (counters stay
	// exact); 0 records every span. See obs.WithTaskSampling.
	TaskSampling int

	// Shards selects sharded simulation (sim.WithShards) when > 1. The
	// engine's conservative lookahead is keyed to the fabric's minimum
	// link latency. 0 or 1 is the plain sequential engine; either way the
	// simulation's traces, snapshots and outputs are byte-identical.
	Shards int
}

// DefaultOptions returns the paper's standard 16-node, 1 GiB-VM cluster in
// the normal layout.
func DefaultOptions() Options {
	return Options{
		Seed:       1,
		Nodes:      16,
		Layout:     Normal,
		VMMemBytes: 1024e6,
		Params:     DefaultParams(),
		HDFS:       hdfs.DefaultConfig(),
		MR:         mapreduce.DefaultConfig(),
		Xen:        xen.DefaultConfig(),
		Migration:  xen.DefaultMigrationConfig(),
	}
}

// machineSpec converts Params to a phys.MachineSpec for compute machines.
func (p Params) machineSpec() phys.MachineSpec {
	return phys.MachineSpec{
		Cores:     p.Cores,
		DRAMBytes: p.DRAMBytes,
		DiskBW:    p.LocalDisk,
		NICBW:     p.NICBW,
		NICLat:    p.NICLat,
		BridgeBW:  p.BridgeBW,
		BridgeLat: p.BridgeLat,
	}
}

// filerSpec converts Params to the NFS filer's machine spec.
func (p Params) filerSpec() phys.MachineSpec {
	return phys.MachineSpec{
		Cores:     p.FilerCores,
		DRAMBytes: p.DRAMBytes,
		DiskBW:    p.FilerDisk,
		NICBW:     p.FilerNIC,
		NICLat:    p.NICLat,
		BridgeBW:  p.BridgeBW,
		BridgeLat: p.BridgeLat,
	}
}
