package core_test

// The paper's §II-A describes the vHadoop execution flow in nine steps.
// This integration test walks all of them end to end, exercising every one
// of the platform's five modules in concert:
//
//  1. the Machine Learning Algorithm Library triggers a cluster request,
//  2. the Virtualization Module starts a hadoop virtual cluster,
//  3. the Hadoop Module configures it,
//  4. the input data is uploaded to HDFS,
//  5. the master assigns maps and reduces to the workers,
//  6. the mapping operation runs,
//  7. the reducing operation runs,
//  8. the output is collected and analysed (with nmon monitoring the master
//     and workers throughout),
//  9. the MapReduce Tuner adjusts the platform from the monitoring data.

import (
	"testing"

	"vhadoop/internal/cloud"
	"vhadoop/internal/clustering"
	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
	"vhadoop/internal/sim"
	"vhadoop/internal/tuner"
)

func TestPaperExecutionFlow(t *testing.T) {
	// Substrate: the two-machine testbed, capacity owned by the service.
	opts := core.DefaultOptions()
	opts.Nodes = 2
	pl := core.MustNewPlatform(opts)
	for _, vm := range pl.VMs {
		vm.Shutdown()
	}
	svc := cloud.NewService(pl.Xen, pl.PMs)

	// Step 1: the ML library needs a cluster for a k-means run.
	pts, _ := datasets.DisplayClusteringSample(sim.New(opts.Seed).Rand())
	vectors := clustering.FromFloats(pts)

	var result clustering.Result
	var recs []tuner.Recommendation
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()

		// Step 2: the Virtualization Module starts the cluster (with boot).
		lease, err := svc.Provision(p, cloud.Request{
			Name: "ml", Nodes: 8, VMMemBytes: 1024e6, Boot: true,
			// Step 3: the Hadoop Module's configuration.
			HDFS: hdfs.DefaultConfig(), MR: mapreduce.DefaultConfig(),
		})
		if err != nil {
			return err
		}

		// The leased cluster publishes into the platform's observability
		// plane (its collect hooks register after the base platform's, so
		// its gauges reflect the active cluster).
		lease.MR.SetObs(pl.Obs)
		lease.DFS.SetObs(pl.Obs)

		// Step 8 (setup): nmon watches master and workers from the start.
		mon := nmon.New(pl.Engine, nmon.WithInterval(2.0), nmon.WithPlane(pl.Obs))
		for _, vm := range lease.VMs {
			mon.Watch(vm)
		}
		for _, pm := range pl.PMs {
			mon.WatchMachine(pm)
		}
		mon.WatchDisk(pl.Filer.Disk)
		mon.Start()
		defer mon.Stop()

		tp := *pl
		tp.VMs, tp.Master, tp.DFS, tp.MR = lease.VMs, lease.Master, lease.DFS, lease.MR

		// Step 4: upload the input data to HDFS.
		driver := clustering.NewDriver(&tp, "/flow/input")
		if err := driver.Load(p, vectors); err != nil {
			return err
		}

		// Steps 5-7: the master assigns maps and reduces; the iterations run.
		result, err = clustering.KMeansMR(p, driver, driver.InitCenters(3),
			clustering.DefaultKMeansOptions(3))
		if err != nil {
			return err
		}

		// Step 8: collect and analyse the output + monitoring data.
		report := mon.Analyze()
		if report.Bottleneck.Resource == "" {
			t.Error("analyser produced no bottleneck")
		}

		// Step 9: the Tuner adjusts the platform from the monitoring data —
		// read back through the observability plane's snapshot, not from the
		// monitor object. The decision is reproducible from the export alone.
		snap := pl.Obs.Snapshot()
		recs = tuner.New().EvaluateReader(snap)
		metrics := tuner.MetricsFromReader(snap)
		if metrics.Report.Bottleneck.Kind == "" {
			t.Error("reader-path metrics produced no bottleneck")
		}
		if got := tuner.New().Evaluate(metrics); len(got) != len(recs) {
			t.Errorf("EvaluateReader gave %d recs, Evaluate(MetricsFromReader) gave %d", len(recs), len(got))
		}
		tp.MR.Reconfigure(tuner.Apply(tp.MR.Config(), recs))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The flow must have produced a real clustering of the real data.
	if len(result.Centers) != 3 {
		t.Fatalf("centers = %d", len(result.Centers))
	}
	if result.Iterations < 1 || result.Runtime <= 0 {
		t.Fatalf("iterations=%d runtime=%v", result.Iterations, result.Runtime)
	}
	counts := make(map[int]int)
	for _, a := range result.Assignments {
		counts[a]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
	// Recommendations may be empty on a healthy run; the flow only requires
	// the tuner to have evaluated the metrics without fault.
	t.Logf("flow complete: %d iterations, %d tuner recommendations", result.Iterations, len(recs))
}
