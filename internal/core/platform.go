package core

import (
	"fmt"

	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nfs"
	"vhadoop/internal/obs"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
	"vhadoop/internal/vnet"
	"vhadoop/internal/xen"
)

// Platform is one provisioned hadoop virtual cluster plus the substrate it
// runs on. It is the programmatic face of vHadoop: experiments provision a
// platform, load data, run jobs or migrations, and read the results.
type Platform struct {
	Opts Options

	Engine *sim.Engine
	Obs    *obs.Plane
	Fabric *vnet.Fabric
	Topo   *phys.Topology
	NFS    *nfs.Server
	Xen    *xen.Manager

	PMs    []*phys.Machine // the two compute machines
	Filer  *phys.Machine
	VMs    []*xen.VM // VMs[0] is the master
	Master *xen.VM

	DFS *hdfs.Cluster
	MR  *mapreduce.Cluster

	// collectPlatform's interned gauge handles
	linkBytes   *obs.GaugeVec
	linkUtil    *obs.GaugeVec
	crossDomain *obs.Gauge
	clusterVMs  *obs.Gauge
}

// NewPlatform provisions a hadoop virtual cluster per opts: two physical
// machines plus the NFS filer; VMs packed on PM1 (normal layout) or split
// equally across PM1/PM2 (cross-domain); namenode + jobtracker on VMs[0] and
// datanode + tasktracker daemons on every other VM.
func NewPlatform(opts Options) (*Platform, error) {
	if opts.Nodes < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes (1 master + 1 worker), got %d", opts.Nodes)
	}
	var simOpts []sim.Option
	if opts.Shards > 1 {
		simOpts = append(simOpts, sim.WithShards(opts.Shards))
	}
	e := sim.New(opts.Seed, simOpts...)
	plane := obs.New(e, obs.WithTaskSampling(opts.TaskSampling))
	fabric := vnet.NewFabric(e)
	topo := phys.NewTopology(e, fabric, opts.Params.SwitchBW, opts.Params.SwitchLat)
	pm1 := topo.AddMachine("pm1", opts.Params.machineSpec())
	pm2 := topo.AddMachine("pm2", opts.Params.machineSpec())
	filer := topo.AddMachine("filer", opts.Params.filerSpec())
	server := nfs.NewServer(topo, filer)
	mgr := xen.NewManager(topo, server, opts.Xen)

	pl := &Platform{
		Opts:   opts,
		Engine: e,
		Obs:    plane,
		Fabric: fabric,
		Topo:   topo,
		NFS:    server,
		Xen:    mgr,
		PMs:    []*phys.Machine{pm1, pm2},
		Filer:  filer,
	}

	for i := 0; i < opts.Nodes; i++ {
		host := pm1
		if opts.Layout == CrossDomain && i >= opts.Nodes/2 {
			host = pm2
		}
		vm, err := mgr.Define(fmt.Sprintf("vm%02d", i), opts.VMMemBytes, host)
		if err != nil {
			return nil, fmt.Errorf("core: provisioning node %d: %w", i, err)
		}
		pl.VMs = append(pl.VMs, vm)
	}
	pl.Master = pl.VMs[0]

	pl.DFS = hdfs.NewCluster(opts.HDFS, pl.Master)
	for _, vm := range pl.VMs[1:] {
		pl.DFS.AddDatanode(vm)
	}
	pl.MR = mapreduce.NewCluster(e, opts.MR, pl.Master, pl.DFS)
	for _, vm := range pl.VMs[1:] {
		pl.MR.AddTracker(vm)
	}
	mgr.SetObs(plane)
	pl.DFS.SetObs(plane)
	pl.MR.SetObs(plane)
	pl.linkBytes = plane.GaugeVec("vnet_link_bytes", "link")
	pl.linkUtil = plane.GaugeVec("vnet_link_util_mean", "link")
	pl.crossDomain = plane.Gauge("cluster_cross_domain")
	pl.clusterVMs = plane.Gauge("cluster_vms")
	plane.Registry().OnCollect(pl.collectPlatform)
	// Conservative lookahead: no cross-machine event can take effect
	// sooner than the fastest link propagates, so windows this wide are
	// race-free by construction. Set unconditionally — at width 1 it is
	// inert — so cross-domain Send/SpawnOnAfter delay checks behave the
	// same whether or not the engine is sharded.
	if min := fabric.MinLatency(); min > 0 {
		e.SetLookahead(min)
	}
	return pl, nil
}

// collectPlatform refreshes the platform-level gauges before every
// registry snapshot: per-link fabric traffic and the cross-domain bit
// the tuner's migration rule keys off.
func (pl *Platform) collectPlatform() {
	for _, l := range pl.Fabric.Links() {
		pl.linkBytes.With(l.Name()).Set(l.BytesCarried())
		pl.linkUtil.With(l.Name()).Set(l.MeanUtilization())
	}
	cross := 0.0
	for _, vm := range pl.VMs {
		if vm.Host() != pl.Master.Host() {
			cross = 1
			break
		}
	}
	pl.crossDomain.Set(cross)
	pl.clusterVMs.Set(float64(len(pl.VMs)))
}

// MustNewPlatform is NewPlatform that panics on error (experiment setup).
func MustNewPlatform(opts Options) *Platform {
	pl, err := NewPlatform(opts)
	if err != nil {
		panic(err)
	}
	return pl
}

// Workers returns the worker VMs (everything but the master).
func (pl *Platform) Workers() []*xen.VM { return pl.VMs[1:] }

// Run starts the cluster daemons (including the HDFS replication monitor
// when configured), runs driver as a simulated process, then stops the
// daemons and drains the simulation. It returns the driver's error and the
// final virtual time.
func (pl *Platform) Run(driver func(p *sim.Proc) error) (sim.Time, error) {
	pl.MR.Start()
	pl.DFS.StartReplicationMonitor(pl.Opts.HDFS.ReplMonitorInterval)
	var derr error
	d := pl.Engine.Spawn("driver", func(p *sim.Proc) {
		derr = driver(p)
	})
	pl.Engine.Spawn("terminator", func(p *sim.Proc) {
		d.Done().Wait(p)
		pl.MR.Stop()
		pl.DFS.StopReplicationMonitor()
	})
	end := pl.Engine.Run()
	if derr == nil && d.Err() != nil {
		derr = d.Err()
	}
	pl.Engine.Shutdown()
	return end, derr
}

// LoadText writes records as an HDFS input file of the given virtual size,
// uploading from the master VM (the paper's step 4: "input data is prepared
// by uploading to HDFS").
func (pl *Platform) LoadText(p *sim.Proc, name string, size float64, records []hdfs.Record) (*hdfs.File, error) {
	return pl.DFS.Write(p, pl.Master, name, size, records)
}

// MigrateWorkers live-migrates every VM currently on from to dst,
// sequentially (Xen serialises migrations on the management interface), and
// returns per-VM statistics.
func (pl *Platform) MigrateWorkers(p *sim.Proc, from, to *phys.Machine) ([]xen.MigrationStats, error) {
	var out []xen.MigrationStats
	for _, vm := range pl.VMs {
		if vm.Host() != from {
			continue
		}
		st, err := pl.Xen.Migrate(p, vm, to, pl.Opts.Migration)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}
