// Package vnet models the data-centre network that connects physical
// machines, the NFS filer and — through per-machine virtual bridges — the
// virtual machines of a vHadoop cluster.
//
// The fabric is a set of Links (virtual bridge, NIC transmit/receive, switch
// backplane) with fixed capacities and latencies. Bulk data moves as Flows:
// each flow occupies a path of links, and whenever the flow population
// changes the fabric recomputes every flow's rate with max-min fair
// water-filling, the standard fluid approximation of TCP bandwidth sharing.
// This is what makes a shared 1 Gb/s NIC the bottleneck of a cross-domain
// Hadoop virtual cluster, exactly as the vHadoop paper observes.
//
// Small control messages (heartbeats, RPCs) use Message, which charges
// propagation latency plus serialisation time but does not contend with bulk
// flows — matching their negligible real bandwidth.
package vnet

import (
	"fmt"

	"vhadoop/internal/sim"
)

// Link is a unidirectional network segment with a capacity in bytes/second
// and a one-way propagation latency.
type Link struct {
	name      string
	bandwidth float64
	latency   sim.Time
	fabric    *Fabric

	inUse      float64 // currently allocated rate
	busyInt    float64 // integral of allocated rate over time
	bytesTotal float64 // cumulative bytes carried
	createdAt  sim.Time
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link capacity in bytes/second.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// Latency returns the one-way propagation latency.
func (l *Link) Latency() sim.Time { return l.latency }

// Utilization returns the instantaneous fraction of capacity allocated.
func (l *Link) Utilization() float64 { return l.inUse / l.bandwidth }

// SetBandwidth retunes the link capacity mid-simulation (fault injection:
// degradation, or a partition modelled as a near-zero crawl). Flow progress
// is integrated at the old rates first, then every active flow is re-rated
// by a fresh water-filling pass. Bandwidth must stay positive: a zero-rate
// link would stall the fabric, so partitions use a small positive floor.
func (l *Link) SetBandwidth(bw float64) {
	if bw <= 0 {
		panic(fmt.Sprintf("vnet: link %q: bandwidth must be positive", l.name))
	}
	l.fabric.advance()
	l.bandwidth = bw
	l.fabric.reschedule()
}

// MeanUtilization returns the time-averaged utilisation since creation.
//
//vhlint:owner vnet
func (l *Link) MeanUtilization() float64 {
	l.fabric.advance()
	dt := l.fabric.engine.Now() - l.createdAt
	if dt <= 0 {
		return 0
	}
	return l.busyInt / (l.bandwidth * dt)
}

// BytesCarried returns the cumulative bytes moved across this link.
//
//vhlint:owner vnet
func (l *Link) BytesCarried() float64 {
	l.fabric.advance()
	return l.bytesTotal
}

// Flow is an in-flight bulk transfer across a path of links.
type Flow struct {
	name      string
	path      []*Link
	remaining float64
	rate      float64
	done      *sim.Done
	frozen    bool // scratch state for water-filling
	started   sim.Time
}

// Done returns the latch that fires when the last byte arrives.
func (f *Flow) Done() *sim.Done { return f.done }

// Rate returns the flow's current allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet transmitted.
func (f *Flow) Remaining() float64 { return f.remaining }

// Fabric owns all links and active flows and performs rate allocation.
// Active flows are kept in start order (a slice, not a map): rate
// allocation, retirement and completion-event firing must all walk them in
// a reproducible order, or floating-point tie-breaks and done-latch wakeup
// order — and with them the whole simulation — vary run to run.
type Fabric struct {
	engine     *sim.Engine
	links      []*Link
	flows      []*Flow
	timer      *sim.Timer
	lastUpdate sim.Time

	flowsTotal int
}

// NewFabric returns an empty fabric bound to e.
func NewFabric(e *sim.Engine) *Fabric {
	return &Fabric{engine: e}
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.engine }

// NewLink creates a link and registers it with the fabric.
//
//vhlint:owner vnet
func (f *Fabric) NewLink(name string, bandwidth float64, latency sim.Time) *Link {
	if bandwidth <= 0 {
		panic("vnet: link bandwidth must be positive")
	}
	l := &Link{
		name:      name,
		bandwidth: bandwidth,
		latency:   latency,
		fabric:    f,
		createdAt: f.engine.Now(),
	}
	f.links = append(f.links, l)
	return l
}

// Links returns all links in the fabric.
func (f *Fabric) Links() []*Link { return f.links }

// MinLatency returns the smallest positive one-way link latency in the
// fabric, or 0 if no link has one. It is the natural conservative lookahead
// for sharded simulation: no cross-machine interaction can land sooner than
// one traversal of the fastest link.
func (f *Fabric) MinLatency() sim.Time {
	var min sim.Time
	for _, l := range f.links {
		if l.latency > 0 && (min == 0 || l.latency < min) {
			min = l.latency
		}
	}
	return min
}

// ActiveFlows returns the number of flows currently in flight.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// FlowsStarted returns the cumulative number of flows ever started.
func (f *Fabric) FlowsStarted() int { return f.flowsTotal }

// pathLatency sums one-way latencies along a path.
func pathLatency(path []*Link) sim.Time {
	var t sim.Time
	for _, l := range path {
		t += l.latency
	}
	return t
}

// StartFlow begins an asynchronous bulk transfer of the given size along
// path. The returned flow's Done latch fires when the last byte has arrived
// (transmission time under fair sharing, plus path propagation latency).
//
//vhlint:owner vnet
func (f *Fabric) StartFlow(name string, path []*Link, bytes float64) *Flow {
	if len(path) == 0 {
		panic("vnet: empty flow path")
	}
	for _, l := range path {
		if l.fabric != f {
			panic(fmt.Sprintf("vnet: link %q belongs to a different fabric", l.name))
		}
	}
	fl := &Flow{
		name:      name,
		path:      path,
		remaining: bytes,
		done:      sim.NewDone(f.engine),
		started:   f.engine.Now(),
	}
	f.flowsTotal++
	if bytes <= 0 {
		// Pure control transfer: latency only.
		f.engine.After(pathLatency(path), fl.done.Fire)
		return fl
	}
	f.advance()
	f.flows = append(f.flows, fl)
	f.reschedule()
	return fl
}

// Transfer moves bytes along path, blocking p until the last byte arrives.
//
//vhlint:owner vnet
func (f *Fabric) Transfer(p *sim.Proc, name string, path []*Link, bytes float64) {
	fl := f.StartFlow(name, path, bytes)
	fl.done.Wait(p)
}

// Message charges p for a small control message: propagation latency plus
// serialisation at the slowest link, without contending with bulk flows.
func (f *Fabric) Message(p *sim.Proc, path []*Link, bytes float64) {
	minBW := sim.Forever
	for _, l := range path {
		if l.bandwidth < minBW {
			minBW = l.bandwidth
		}
	}
	d := pathLatency(path)
	if bytes > 0 && minBW < sim.Forever {
		d += bytes / minBW
	}
	p.Sleep(d)
}

// advance integrates flow progress and link accounting up to now.
func (f *Fabric) advance() {
	now := f.engine.Now()
	dt := now - f.lastUpdate
	f.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, fl := range f.flows {
		moved := fl.rate * dt
		if moved > fl.remaining {
			moved = fl.remaining
		}
		fl.remaining -= moved
		for _, l := range fl.path {
			l.bytesTotal += moved
		}
	}
	for _, l := range f.links {
		l.busyInt += l.inUse * dt
	}
}

// recomputeRates performs max-min fair water-filling across all flows.
func (f *Fabric) recomputeRates() {
	for _, l := range f.links {
		l.inUse = 0
	}
	if len(f.flows) == 0 {
		return
	}
	residual := make(map[*Link]float64, len(f.links))
	crossing := make(map[*Link]int, len(f.links))
	for _, fl := range f.flows {
		fl.frozen = false
		for _, l := range fl.path {
			if _, ok := residual[l]; !ok {
				residual[l] = l.bandwidth
			}
			crossing[l]++
		}
	}
	unfrozen := len(f.flows)
	for unfrozen > 0 {
		// Find the tightest link: smallest residual fair share. Scan f.links
		// (creation order) rather than the crossing map so that exact
		// floating-point ties always resolve to the same link.
		var bottleneck *Link
		best := sim.Forever
		for _, l := range f.links {
			n := crossing[l]
			if n == 0 {
				continue
			}
			if share := residual[l] / float64(n); share < best {
				best = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at that share.
		for _, fl := range f.flows {
			if fl.frozen {
				continue
			}
			onBottleneck := false
			for _, l := range fl.path {
				if l == bottleneck {
					onBottleneck = true
					break
				}
			}
			if !onBottleneck {
				continue
			}
			fl.frozen = true
			fl.rate = best
			unfrozen--
			for _, l := range fl.path {
				residual[l] -= best
				if residual[l] < 0 {
					residual[l] = 0
				}
				crossing[l]--
				l.inUse += best
			}
		}
	}
}

// flowEps retires flows with a negligible byte residue; minTick guarantees
// the clock advances between completion events, so floating-point undershoot
// in rate*dt can never pin the simulation at a constant virtual time.
const (
	flowEps = 1e-6
	minTick = 1e-9
)

// reschedule retires finished flows, recomputes rates and re-arms the
// next-completion timer.
func (f *Fabric) reschedule() {
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	// Retire flows that are done or would finish within one tick, firing
	// their done latches in start order and compacting the rest in place.
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= flowEps || fl.remaining <= fl.rate*minTick {
			// Last byte leaves now; it arrives after path propagation.
			lat := pathLatency(fl.path)
			if lat > 0 {
				f.engine.After(lat, fl.done.Fire)
			} else {
				fl.done.Fire()
			}
			continue
		}
		live = append(live, fl)
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil // release retired flows to the GC
	}
	f.flows = live
	if len(f.flows) == 0 {
		for _, l := range f.links {
			l.inUse = 0
		}
		return
	}
	f.recomputeRates()
	minT := sim.Forever
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		if t := fl.remaining / fl.rate; t < minT {
			minT = t
		}
	}
	if minT >= sim.Forever {
		panic("vnet: fabric stalled with active flows")
	}
	if minT < minTick {
		minT = minTick
	}
	f.timer = f.engine.After(minT, func() {
		f.advance()
		f.reschedule()
	})
}
