package vnet

import (
	"math"
	"testing"
	"testing/quick"

	"vhadoop/internal/sim"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	var done sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		f.Transfer(p, "t", []*Link{l}, 500e6)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 5, 1e-9, "500 MB over 100 MB/s")
}

func TestLatencyAddsToCompletion(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	a := f.NewLink("a", 100e6, 0.001)
	b := f.NewLink("b", 100e6, 0.002)
	var done sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		f.Transfer(p, "t", []*Link{a, b}, 100e6)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 1.003, 1e-9, "transfer plus path latency")
}

func TestSetBandwidthRetunesMidFlow(t *testing.T) {
	// 1000 MB over 100 MB/s; at t=5 (500 MB moved) the link degrades to
	// 50 MB/s, so the remaining 500 MB takes 10 more seconds.
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	e.At(5, func() { l.SetBandwidth(50e6) })
	var done sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		f.Transfer(p, "t", []*Link{l}, 1000e6)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 15, 1e-6, "degraded link halves the tail rate")
}

func TestSetBandwidthRestore(t *testing.T) {
	// Degrade to a crawl and restore: 100 MB at 100 MB/s would take 1s;
	// crawling at 1 MB/s between t=0.5 and t=1.5 moves only 1 MB, the rest
	// finishes at full rate after restoration.
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	e.At(0.5, func() { l.SetBandwidth(1e6) })
	e.At(1.5, func() { l.SetBandwidth(100e6) })
	var done sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		f.Transfer(p, "t", []*Link{l}, 100e6)
		done = p.Now()
	})
	e.Run()
	// 50 MB by 0.5s, 1 MB by 1.5s, remaining 49 MB in 0.49s.
	almost(t, done, 1.99, 1e-6, "restored link resumes full rate")
}

func TestSetBandwidthRejectsNonPositive(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetBandwidth(0) did not panic")
		}
	}()
	l.SetBandwidth(0)
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	var d1, d2 sim.Time
	e.Spawn("a", func(p *sim.Proc) { f.Transfer(p, "a", []*Link{l}, 100e6); d1 = p.Now() })
	e.Spawn("b", func(p *sim.Proc) { f.Transfer(p, "b", []*Link{l}, 100e6); d2 = p.Now() })
	e.Run()
	almost(t, d1, 2, 1e-9, "flow a at half rate")
	almost(t, d2, 2, 1e-9, "flow b at half rate")
}

func TestMaxMinWaterFilling(t *testing.T) {
	// Classic parking-lot: flows A (link1 only) and B (link1+link2), link2 is
	// narrow. B is limited by link2, A picks up the slack on link1.
	e := sim.New(1)
	f := NewFabric(e)
	l1 := f.NewLink("wide", 100e6, 0)
	l2 := f.NewLink("narrow", 20e6, 0)
	var rateA, rateB float64
	e.Spawn("probe", func(p *sim.Proc) {
		fa := f.StartFlow("A", []*Link{l1}, 1e9)
		fb := f.StartFlow("B", []*Link{l1, l2}, 1e9)
		p.Sleep(0.01)
		rateA, rateB = fa.Rate(), fb.Rate()
		sim.WaitAll(p, fa.Done(), fb.Done())
	})
	e.Run()
	almost(t, rateB, 20e6, 1, "B limited by the narrow link")
	almost(t, rateA, 80e6, 1, "A gets the residual of the wide link")
}

func TestFlowCompletionFreesBandwidth(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	var dShort, dLong sim.Time
	e.Spawn("short", func(p *sim.Proc) { f.Transfer(p, "s", []*Link{l}, 50e6); dShort = p.Now() })
	e.Spawn("long", func(p *sim.Proc) { f.Transfer(p, "l", []*Link{l}, 150e6); dLong = p.Now() })
	e.Run()
	almost(t, dShort, 1, 1e-9, "short flow")
	almost(t, dLong, 2, 1e-9, "long flow accelerates after short completes")
}

func TestZeroByteFlowIsLatencyOnly(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0.005)
	var done sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		f.Transfer(p, "ping", []*Link{l}, 0)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 0.005, 1e-12, "zero-byte flow")
}

func TestMessageDoesNotContend(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0.001)
	fl := f.StartFlow("bulk", []*Link{l}, 1e9)
	var msgDone sim.Time
	e.Spawn("hb", func(p *sim.Proc) {
		f.Message(p, []*Link{l}, 1000)
		msgDone = p.Now()
	})
	e.Spawn("watch", func(p *sim.Proc) { fl.Done().Wait(p) })
	e.Run()
	almost(t, msgDone, 0.001+1000/100e6, 1e-12, "message latency unaffected by bulk flow")
}

func TestLinkAccounting(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	l := f.NewLink("nic", 100e6, 0)
	e.Spawn("x", func(p *sim.Proc) {
		f.Transfer(p, "t", []*Link{l}, 100e6) // busy 0..1
		p.Sleep(1)                            // idle 1..2
	})
	e.Run()
	almost(t, l.BytesCarried(), 100e6, 1, "bytes carried")
	almost(t, l.MeanUtilization(), 0.5, 1e-9, "mean utilisation")
	if f.ActiveFlows() != 0 {
		t.Fatalf("active flows = %d at end", f.ActiveFlows())
	}
}

// Property: with any number of equal flows on one link, aggregate throughput
// equals link capacity and per-flow completion time scales linearly.
func TestFairShareScalingProperty(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		e := sim.New(3)
		f := NewFabric(e)
		l := f.NewLink("nic", 50e6, 0)
		size := 25e6
		var last sim.Time
		for i := 0; i < n; i++ {
			e.Spawn("fl", func(p *sim.Proc) {
				f.Transfer(p, "t", []*Link{l}, size)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		want := size * float64(n) / 50e6
		return math.Abs(last-want) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min allocation never oversubscribes any link.
func TestNoLinkOversubscriptionProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		e := sim.New(seed)
		f := NewFabric(e)
		links := []*Link{
			f.NewLink("l0", 10e6, 0),
			f.NewLink("l1", 25e6, 0),
			f.NewLink("l2", 100e6, 0),
		}
		for i := 0; i < n; i++ {
			path := []*Link{links[e.Rand().Intn(3)], links[e.Rand().Intn(3)]}
			if path[0] == path[1] {
				path = path[:1]
			}
			f.StartFlow("fl", path, 1e6+e.Rand().Float64()*20e6)
		}
		ok := true
		e.Spawn("check", func(p *sim.Proc) {
			for f.ActiveFlows() > 0 {
				for _, l := range links {
					if l.Utilization() > 1+1e-9 {
						ok = false
					}
				}
				p.Sleep(0.05)
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinLatency(t *testing.T) {
	e := sim.New(1)
	f := NewFabric(e)
	if got := f.MinLatency(); got != 0 {
		t.Fatalf("empty fabric MinLatency: got %v, want 0", got)
	}
	f.NewLink("zero", 100e6, 0)
	if got := f.MinLatency(); got != 0 {
		t.Fatalf("zero-latency-only fabric MinLatency: got %v, want 0", got)
	}
	f.NewLink("slow", 100e6, 5e-3)
	f.NewLink("fast", 100e6, 2e-4)
	f.NewLink("mid", 100e6, 1e-3)
	if got := f.MinLatency(); got != 2e-4 {
		t.Fatalf("MinLatency: got %v, want 2e-4 (smallest positive latency)", got)
	}
}
