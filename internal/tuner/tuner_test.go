package tuner

import (
	"reflect"
	"testing"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
)

func baseMetrics() Metrics {
	return Metrics{
		Report: nmon.Report{
			Bottleneck: nmon.Bottleneck{Resource: "vm-cpu", Kind: "cpu", MeanUtil: 0.5},
			VMs:        []nmon.VMSummary{{VM: "vm01", MeanCPU: 0.5}},
		},
		MRConfig: mapreduce.DefaultConfig(),
	}
}

func actions(recs []Recommendation) []Action {
	var out []Action
	for _, r := range recs {
		out = append(out, r.Action)
	}
	return out
}

// TestRuleTable drives every tuner rule from a healthy baseline: each
// sample mutates exactly one signal and must fire exactly its own rule —
// no rule may trigger on another rule's sample, and the healthy baseline
// must stay silent.
func TestRuleTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Metrics)
		want   []Action
	}{
		{
			name:   "healthy baseline",
			mutate: func(m *Metrics) {},
			want:   nil,
		},
		{
			name: "node lost",
			mutate: func(m *Metrics) {
				m.DeadNodes = 1
			},
			want: []Action{ActionRepairReplica},
		},
		{
			name: "under-replicated blocks without a known dead node",
			mutate: func(m *Metrics) {
				m.UnderReplicated = 12
			},
			want: []Action{ActionRepairReplica},
		},
		{
			name: "cross-domain network-bound",
			mutate: func(m *Metrics) {
				m.CrossDomain = true
				m.Report.Bottleneck = nmon.Bottleneck{Resource: "pm1.tx", Kind: "network", MeanUtil: 0.95}
			},
			want: []Action{ActionConsolidate},
		},
		{
			name: "network-bound but already consolidated",
			mutate: func(m *Metrics) {
				m.Report.Bottleneck = nmon.Bottleneck{Resource: "pm1.tx", Kind: "network", MeanUtil: 0.95}
			},
			want: nil, // migration cannot help a normal-layout cluster
		},
		{
			name: "heavy spilling",
			mutate: func(m *Metrics) {
				m.RecentJobs = []mapreduce.JobStats{{ShuffledBytes: 100e6, SpillBytes: 60e6, MapTasks: 4, ReduceTasks: 1, Attempts: 5}}
			},
			want: []Action{ActionIncreaseSortBuf},
		},
		{
			name: "hot VCPUs",
			mutate: func(m *Metrics) {
				m.Report.VMs = []nmon.VMSummary{{VM: "vm01", MeanCPU: 0.97}}
			},
			want: []Action{ActionDecreaseSlots},
		},
		{
			name: "cold VCPUs with CPU bottleneck",
			mutate: func(m *Metrics) {
				m.Report.VMs = []nmon.VMSummary{{VM: "vm01", MeanCPU: 0.15}}
				m.Report.Bottleneck = nmon.Bottleneck{Resource: "vm-cpu", Kind: "cpu", MeanUtil: 0.15}
			},
			want: []Action{ActionIncreaseSlots},
		},
		{
			name: "stragglers without speculation",
			mutate: func(m *Metrics) {
				m.RecentJobs = []mapreduce.JobStats{{MapTasks: 10, ReduceTasks: 2, Attempts: 15}}
			},
			want: []Action{ActionEnableSpec},
		},
		{
			name: "stragglers with speculation already on",
			mutate: func(m *Metrics) {
				m.RecentJobs = []mapreduce.JobStats{{MapTasks: 10, ReduceTasks: 2, Attempts: 15}}
				m.MRConfig.Speculative = true
			},
			want: nil,
		},
		{
			name: "disk-bound filer",
			mutate: func(m *Metrics) {
				m.Report.Bottleneck = nmon.Bottleneck{Resource: "filer.disk", Kind: "disk", MeanUtil: 0.92}
			},
			want: []Action{ActionLargerBlocks},
		},
		{
			name: "node lost outranks performance tuning",
			mutate: func(m *Metrics) {
				m.DeadNodes = 2
				m.UnderReplicated = 30
				m.CrossDomain = true
				m.Report.Bottleneck = nmon.Bottleneck{Resource: "pm1.tx", Kind: "network", MeanUtil: 0.95}
			},
			want: []Action{ActionRepairReplica, ActionConsolidate},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := baseMetrics()
			tc.mutate(&m)
			got := actions(New().Evaluate(m))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("actions = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestApplyFoldsParameterActions(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	out := Apply(cfg, []Recommendation{
		{Action: ActionIncreaseSortBuf},
		{Action: ActionIncreaseSlots},
		{Action: ActionEnableSpec},
	})
	if out.SortBufferBytes != cfg.SortBufferBytes*2 {
		t.Fatalf("sort buffer not doubled: %v", out.SortBufferBytes)
	}
	if out.MapSlots != cfg.MapSlots+1 {
		t.Fatalf("slots not increased: %d", out.MapSlots)
	}
	if !out.Speculative {
		t.Fatal("speculation not applied")
	}
	down := Apply(out, []Recommendation{{Action: ActionDecreaseSlots}})
	if down.MapSlots != out.MapSlots-1 {
		t.Fatalf("slots not decreased: %d", down.MapSlots)
	}
}

func TestApplyIgnoresNonParameterActions(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	out := Apply(cfg, []Recommendation{
		{Action: ActionConsolidate},
		{Action: ActionRepairReplica},
		{Action: ActionLargerBlocks},
	})
	if !reflect.DeepEqual(out, cfg) {
		t.Fatal("platform-level actions changed the MR config")
	}
}
