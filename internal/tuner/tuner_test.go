package tuner

import (
	"testing"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
)

func baseMetrics() Metrics {
	return Metrics{
		Report: nmon.Report{
			Bottleneck: nmon.Bottleneck{Resource: "vm-cpu", Kind: "cpu", MeanUtil: 0.5},
			VMs:        []nmon.VMSummary{{VM: "vm01", MeanCPU: 0.5}},
		},
		MRConfig: mapreduce.DefaultConfig(),
	}
}

func hasAction(recs []Recommendation, a Action) bool {
	for _, r := range recs {
		if r.Action == a {
			return true
		}
	}
	return false
}

func TestNoRecommendationsWhenHealthy(t *testing.T) {
	recs := New().Evaluate(baseMetrics())
	if len(recs) != 0 {
		t.Fatalf("healthy cluster produced recommendations: %v", recs)
	}
}

func TestConsolidateCrossDomainNetworkBound(t *testing.T) {
	m := baseMetrics()
	m.CrossDomain = true
	m.Report.Bottleneck = nmon.Bottleneck{Resource: "pm1.tx", Kind: "network", MeanUtil: 0.95}
	recs := New().Evaluate(m)
	if !hasAction(recs, ActionConsolidate) {
		t.Fatalf("no consolidation recommended: %v", recs)
	}
	// Same saturation on a packed cluster: migration cannot help.
	m.CrossDomain = false
	recs = New().Evaluate(m)
	if hasAction(recs, ActionConsolidate) {
		t.Fatalf("consolidation recommended for a normal-layout cluster: %v", recs)
	}
}

func TestSpillTriggersSortBuffer(t *testing.T) {
	m := baseMetrics()
	m.RecentJobs = []mapreduce.JobStats{{ShuffledBytes: 100e6, SpillBytes: 60e6, MapTasks: 4, ReduceTasks: 1, Attempts: 5}}
	recs := New().Evaluate(m)
	if !hasAction(recs, ActionIncreaseSortBuf) {
		t.Fatalf("no sort-buffer recommendation: %v", recs)
	}
	cfg := Apply(m.MRConfig, recs)
	if cfg.SortBufferBytes != m.MRConfig.SortBufferBytes*2 {
		t.Fatalf("sort buffer not doubled: %v", cfg.SortBufferBytes)
	}
}

func TestHotCPUDecreasesSlots(t *testing.T) {
	m := baseMetrics()
	m.Report.VMs = []nmon.VMSummary{{VM: "vm01", MeanCPU: 0.97}}
	recs := New().Evaluate(m)
	if !hasAction(recs, ActionDecreaseSlots) {
		t.Fatalf("no slot decrease: %v", recs)
	}
	cfg := Apply(m.MRConfig, recs)
	if cfg.MapSlots != m.MRConfig.MapSlots-1 {
		t.Fatalf("slots not decreased: %d", cfg.MapSlots)
	}
}

func TestColdCPUIncreasesSlots(t *testing.T) {
	m := baseMetrics()
	m.Report.VMs = []nmon.VMSummary{{VM: "vm01", MeanCPU: 0.15}}
	m.Report.Bottleneck = nmon.Bottleneck{Resource: "vm-cpu", Kind: "cpu", MeanUtil: 0.15}
	recs := New().Evaluate(m)
	if !hasAction(recs, ActionIncreaseSlots) {
		t.Fatalf("no slot increase: %v", recs)
	}
}

func TestStragglersEnableSpeculation(t *testing.T) {
	m := baseMetrics()
	m.RecentJobs = []mapreduce.JobStats{{MapTasks: 10, ReduceTasks: 2, Attempts: 15}}
	recs := New().Evaluate(m)
	if !hasAction(recs, ActionEnableSpec) {
		t.Fatalf("no speculation recommendation: %v", recs)
	}
	cfg := Apply(m.MRConfig, recs)
	if !cfg.Speculative {
		t.Fatal("speculation not applied")
	}
	// Already speculative: no recommendation.
	m.MRConfig.Speculative = true
	if recs := New().Evaluate(m); hasAction(recs, ActionEnableSpec) {
		t.Fatal("speculation recommended twice")
	}
}

func TestDiskBoundRecommendsLargerBlocks(t *testing.T) {
	m := baseMetrics()
	m.Report.Bottleneck = nmon.Bottleneck{Resource: "filer.disk", Kind: "disk", MeanUtil: 0.92}
	recs := New().Evaluate(m)
	if !hasAction(recs, ActionLargerBlocks) {
		t.Fatalf("no block-size recommendation: %v", recs)
	}
}

func TestApplyIgnoresMigrationActions(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	out := Apply(cfg, []Recommendation{{Action: ActionConsolidate}})
	if out.MapSlots != cfg.MapSlots || out.SortBufferBytes != cfg.SortBufferBytes {
		t.Fatal("consolidation changed the MR config")
	}
}
