package tuner

// This file is the tuner's redesigned input surface. Instead of being
// handed a live nmon.Monitor and poking at its internals, the tuner
// reconstructs its Metrics from an observability-plane snapshot — any
// obs.Reader, whether a just-taken Snapshot or one decoded from a file.
// Decisions therefore replay offline from exported data alone.

import (
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
	"vhadoop/internal/obs"
)

// MetricsFromReader rebuilds a Metrics round from a registry snapshot.
//
// The mapping mirrors what the subsystems publish: VM summaries from the
// nmon_vm_* gauges, link/disk utilisations from nmon_link_util_mean and
// nmon_disk_util_mean, the bottleneck re-derived with nmon.BottleneckOf
// (the same rule Analyze uses, so live and replayed decisions agree),
// cluster shape from cluster_cross_domain, failure state from
// mr_trackers_dead and hdfs_under_replicated_blocks, and the Hadoop
// configuration from the mr_config_* gauges. Job statistics collapse to a
// single synthetic aggregate: total spill and shuffle volumes from the
// mr_*_bytes_total counters and the worst job's extra attempts from the
// mr_job_extra_attempts gauge (MapTasks and ReduceTasks stay zero so the
// straggler rule sees exactly that excess).
func MetricsFromReader(r obs.Reader) Metrics {
	var m Metrics

	links := make(map[string]float64)
	for _, mt := range r.Series("nmon_link_util_mean") {
		links[mt.Label("link")] = mt.Value
	}
	disks := make(map[string]float64)
	for _, mt := range r.Series("nmon_disk_util_mean") {
		disks[mt.Label("disk")] = mt.Value
	}

	var cpuSum float64
	var vms []nmon.VMSummary
	for _, mt := range r.Series("nmon_vm_cpu_mean") {
		name := mt.Label("vm")
		peak, _ := r.Value("nmon_vm_cpu_peak", "vm", name)
		diskBps, _ := r.Value("nmon_vm_disk_bps_mean", "vm", name)
		netBps, _ := r.Value("nmon_vm_net_bps_mean", "vm", name)
		vms = append(vms, nmon.VMSummary{
			VM:          name,
			MeanCPU:     mt.Value,
			PeakCPU:     peak,
			MeanDiskBps: diskBps,
			MeanNetBps:  netBps,
			Samples:     1, // per-sample detail is not exported; the means are
		})
		cpuSum += mt.Value
	}
	var cpuMean float64
	if len(vms) > 0 {
		cpuMean = cpuSum / float64(len(vms))
	}

	m.Report = nmon.Report{
		VMs:        vms,
		Links:      links,
		Disks:      disks,
		Bottleneck: nmon.BottleneckOf(cpuMean, links, disks),
	}

	if v, ok := r.Value("cluster_cross_domain"); ok && v > 0 {
		m.CrossDomain = true
	}
	if v, ok := r.Value("mr_trackers_dead"); ok {
		m.DeadNodes = int(v)
	}
	if v, ok := r.Value("hdfs_under_replicated_blocks"); ok {
		m.UnderReplicated = int(v)
	}

	if v, ok := r.Value("mr_config_map_slots"); ok {
		m.MRConfig.MapSlots = int(v)
	}
	if v, ok := r.Value("mr_config_reduce_slots"); ok {
		m.MRConfig.ReduceSlots = int(v)
	}
	if v, ok := r.Value("mr_config_sort_buffer_bytes"); ok {
		m.MRConfig.SortBufferBytes = v
	}
	if v, ok := r.Value("mr_config_speculative"); ok {
		m.MRConfig.Speculative = v > 0
	}

	spill := r.Total("mr_spill_bytes_total")
	shuffle := r.Total("mr_shuffle_bytes_total")
	extra := 0
	for _, mt := range r.Series("mr_job_extra_attempts") {
		if int(mt.Value) > extra {
			extra = int(mt.Value)
		}
	}
	if spill != 0 || shuffle != 0 || extra != 0 {
		m.RecentJobs = append(m.RecentJobs, mapreduce.JobStats{
			Name:          "registry-aggregate",
			SpillBytes:    spill,
			ShuffledBytes: shuffle,
			Attempts:      extra,
		})
	}
	return m
}

// EvaluateReader evaluates the rule set directly against a registry
// snapshot: Evaluate(MetricsFromReader(r)).
func (t *Tuner) EvaluateReader(r obs.Reader) []Recommendation {
	return t.Evaluate(MetricsFromReader(r))
}
