package tuner

import (
	"reflect"
	"testing"

	"vhadoop/internal/obs"
)

// faultyRegistry publishes the registry shape the platform exports on an
// unhealthy run: hot cross-domain network, heavy spilling, stragglers
// without speculation, and a lost node.
func faultyRegistry() *obs.Registry {
	reg := obs.NewRegistry(nil)
	reg.Gauge("nmon_vm_cpu_mean", "vm", "vm01").Set(0.5)
	reg.Gauge("nmon_vm_cpu_peak", "vm", "vm01").Set(0.9)
	reg.Gauge("nmon_vm_disk_bps_mean", "vm", "vm01").Set(4e6)
	reg.Gauge("nmon_vm_net_bps_mean", "vm", "vm01").Set(9e6)
	reg.Gauge("nmon_vm_cpu_mean", "vm", "vm02").Set(0.3)
	reg.Gauge("nmon_link_util_mean", "link", "pm1.tx").Set(0.92)
	reg.Gauge("nmon_link_util_mean", "link", "pm2.tx").Set(0.40)
	reg.Gauge("nmon_disk_util_mean", "disk", "filer.disk").Set(0.35)
	reg.Gauge("cluster_cross_domain").Set(1)
	reg.Gauge("mr_trackers_dead").Set(1)
	reg.Gauge("hdfs_under_replicated_blocks").Set(3)
	reg.Gauge("mr_config_map_slots").Set(2)
	reg.Gauge("mr_config_reduce_slots").Set(1)
	reg.Gauge("mr_config_sort_buffer_bytes").Set(100e6)
	reg.Gauge("mr_config_speculative").Set(0)
	reg.Counter("mr_spill_bytes_total").Add(400e6)
	reg.Counter("mr_shuffle_bytes_total").Add(1000e6)
	reg.Gauge("mr_job_extra_attempts", "job", "wc1").Set(3)
	reg.Gauge("mr_job_extra_attempts", "job", "wc2").Set(1)
	return reg
}

func TestMetricsFromReader(t *testing.T) {
	m := MetricsFromReader(faultyRegistry().Snapshot())

	if len(m.Report.VMs) != 2 {
		t.Fatalf("VMs = %d, want 2", len(m.Report.VMs))
	}
	vm1 := m.Report.VMs[0]
	if vm1.VM != "vm01" || vm1.MeanCPU != 0.5 || vm1.PeakCPU != 0.9 ||
		vm1.MeanDiskBps != 4e6 || vm1.MeanNetBps != 9e6 {
		t.Errorf("vm01 summary = %+v", vm1)
	}
	if got := m.Report.Links["pm1.tx"]; got != 0.92 {
		t.Errorf("pm1.tx util = %g", got)
	}
	if got := m.Report.Disks["filer.disk"]; got != 0.35 {
		t.Errorf("filer.disk util = %g", got)
	}
	b := m.Report.Bottleneck
	if b.Resource != "pm1.tx" || b.Kind != "network" || b.MeanUtil != 0.92 {
		t.Errorf("bottleneck = %+v", b)
	}
	if !m.CrossDomain {
		t.Error("CrossDomain = false")
	}
	if m.DeadNodes != 1 || m.UnderReplicated != 3 {
		t.Errorf("DeadNodes=%d UnderReplicated=%d", m.DeadNodes, m.UnderReplicated)
	}
	if m.MRConfig.MapSlots != 2 || m.MRConfig.ReduceSlots != 1 ||
		m.MRConfig.SortBufferBytes != 100e6 || m.MRConfig.Speculative {
		t.Errorf("MRConfig = %+v", m.MRConfig)
	}
	if len(m.RecentJobs) != 1 {
		t.Fatalf("RecentJobs = %d, want 1 synthetic aggregate", len(m.RecentJobs))
	}
	js := m.RecentJobs[0]
	if js.SpillBytes != 400e6 || js.ShuffledBytes != 1000e6 || js.Attempts != 3 {
		t.Errorf("aggregate job = %+v", js)
	}
	if js.MapTasks != 0 || js.ReduceTasks != 0 {
		t.Errorf("aggregate job tasks = %d/%d, want 0/0", js.MapTasks, js.ReduceTasks)
	}
}

func TestMetricsFromReaderEmpty(t *testing.T) {
	m := MetricsFromReader(obs.NewRegistry(nil).Snapshot())
	if len(m.RecentJobs) != 0 || m.CrossDomain || m.DeadNodes != 0 {
		t.Errorf("empty registry produced %+v", m)
	}
	if m.Report.Bottleneck.Kind != "cpu" {
		t.Errorf("empty bottleneck = %+v", m.Report.Bottleneck)
	}
	if New().Evaluate(m) != nil {
		t.Error("empty registry produced recommendations")
	}
}

// TestEvaluateReaderParity pins the API contract: a tuner decision is
// reproducible from the registry snapshot alone, and EvaluateReader is
// exactly Evaluate over MetricsFromReader.
func TestEvaluateReaderParity(t *testing.T) {
	snap := faultyRegistry().Snapshot()
	tn := New()
	direct := tn.Evaluate(MetricsFromReader(snap))
	viaReader := tn.EvaluateReader(snap)
	if !reflect.DeepEqual(direct, viaReader) {
		t.Errorf("EvaluateReader = %v, Evaluate(MetricsFromReader) = %v", viaReader, direct)
	}

	// The faulty registry must trip the repair, consolidation, sort-buffer
	// and speculation rules.
	want := []Action{ActionRepairReplica, ActionConsolidate, ActionIncreaseSortBuf, ActionEnableSpec}
	if got := actions(viaReader); !reflect.DeepEqual(got, want) {
		t.Errorf("actions = %v, want %v", got, want)
	}
}

func TestTunerOptions(t *testing.T) {
	th := DefaultThresholds()
	th.NetworkHot = 0.99
	if got := New(WithThresholds(th)).Thresholds.NetworkHot; got != 0.99 {
		t.Errorf("WithThresholds: NetworkHot = %g", got)
	}
	if got := NewWithThresholds(th).Thresholds.NetworkHot; got != 0.99 {
		t.Errorf("NewWithThresholds shim: NetworkHot = %g", got)
	}
	if got := New().Thresholds; got != DefaultThresholds() {
		t.Errorf("New() thresholds = %+v", got)
	}

	// A custom rule runs after the built-in set.
	custom := Recommendation{Action: Action("custom"), Reason: "always"}
	tn := New(WithRule(func(m Metrics) []Recommendation {
		return []Recommendation{custom}
	}))
	recs := tn.Evaluate(baseMetrics())
	if len(recs) != 1 || recs[0] != custom {
		t.Errorf("custom rule on healthy metrics: %v", recs)
	}
	m := baseMetrics()
	m.DeadNodes = 1
	recs = tn.Evaluate(m)
	if want := []Action{ActionRepairReplica, "custom"}; !reflect.DeepEqual(actions(recs), want) {
		t.Errorf("rule ordering = %v, want %v", actions(recs), want)
	}
}
