// Package tuner is the MapReduce Tuner module of the vHadoop platform: it
// turns the nmon analyser's report plus recent job statistics into concrete
// adjustments — re-configuring Hadoop parameters or triggering live
// migration to consolidate a cross-domain cluster — exactly the two levers
// the paper gives its Tuner.
package tuner

import (
	"fmt"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
)

// Metrics is everything the tuner looks at for one decision round.
type Metrics struct {
	Report      nmon.Report
	RecentJobs  []mapreduce.JobStats
	CrossDomain bool // VMs currently span two physical machines
	MRConfig    mapreduce.Config
	// DeadNodes counts datanodes/tasktrackers lost since the last round
	// (crashed VMs, failed machines, decommissions not yet repaired).
	DeadNodes int
	// UnderReplicated counts HDFS blocks below their replication target
	// (hdfs.Cluster.UnderReplicated).
	UnderReplicated int
}

// Action identifies what a recommendation changes.
type Action string

// The tuner's action vocabulary.
const (
	ActionConsolidate     Action = "consolidate-cluster"  // live-migrate VMs onto one PM
	ActionIncreaseSortBuf Action = "increase-sort-buffer" // io.sort.mb
	ActionIncreaseSlots   Action = "increase-map-slots"   // map.tasks.maximum
	ActionDecreaseSlots   Action = "decrease-map-slots"
	ActionEnableSpec      Action = "enable-speculation"
	ActionLargerBlocks    Action = "increase-block-size" // dfs.block.size
	ActionRepairReplica   Action = "repair-replication"  // re-replicate lost blocks
)

// Recommendation is one proposed adjustment with its evidence.
type Recommendation struct {
	Action Action
	Reason string
}

func (r Recommendation) String() string { return fmt.Sprintf("%s: %s", r.Action, r.Reason) }

// Thresholds tune the rules.
type Thresholds struct {
	NetworkHot float64 // link utilisation considered saturated
	DiskHot    float64
	CPUHot     float64
	CPUCold    float64
	// SpillFraction: spilled bytes / shuffled bytes above this means the
	// sort buffer is undersized.
	SpillFraction float64
	// StragglerAttempts: attempts beyond tasks per job indicating stragglers.
	StragglerAttempts int
}

// DefaultThresholds gives the paper-calibrated rule set.
func DefaultThresholds() Thresholds {
	return Thresholds{
		NetworkHot:        0.85,
		DiskHot:           0.85,
		CPUHot:            0.9,
		CPUCold:           0.3,
		SpillFraction:     0.25,
		StragglerAttempts: 2,
	}
}

// Rule is one custom tuning rule: it inspects a metrics round and returns
// zero or more recommendations. Custom rules run after the built-in set,
// in registration order.
type Rule func(Metrics) []Recommendation

// Tuner evaluates metrics into recommendations.
type Tuner struct {
	Thresholds Thresholds

	rules []Rule
}

// Option configures a Tuner under construction.
type Option func(*Tuner)

// WithThresholds replaces the default thresholds.
func WithThresholds(th Thresholds) Option {
	return func(t *Tuner) { t.Thresholds = th }
}

// WithRule appends a custom rule evaluated after the built-in set.
func WithRule(r Rule) Option {
	return func(t *Tuner) { t.rules = append(t.rules, r) }
}

// New returns a tuner with default thresholds, adjusted by the options.
func New(opts ...Option) *Tuner {
	t := &Tuner{Thresholds: DefaultThresholds()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// NewWithThresholds returns a tuner with the given thresholds.
//
// Deprecated: use New(WithThresholds(th)).
func NewWithThresholds(th Thresholds) *Tuner { return New(WithThresholds(th)) }

// Evaluate applies the rule set to the metrics, most impactful rules first.
func (t *Tuner) Evaluate(m Metrics) []Recommendation {
	var recs []Recommendation
	th := t.Thresholds
	b := m.Report.Bottleneck

	// Rule 0: lost nodes endanger data before anything costs performance.
	// A dead datanode or an under-replicated block means the cluster is one
	// more failure away from losing data, so repair outranks every tuning
	// knob (run ReReplicate, or enable the namenode's replication monitor).
	if m.DeadNodes > 0 || m.UnderReplicated > 0 {
		recs = append(recs, Recommendation{
			Action: ActionRepairReplica,
			Reason: fmt.Sprintf("%d node(s) lost and %d block(s) under-replicated: re-replicate onto surviving datanodes before tuning performance", m.DeadNodes, m.UnderReplicated),
		})
	}

	// Rule 1: a network-bound cross-domain cluster should be consolidated
	// onto one physical machine via live migration (the Tuner's headline
	// capability in the paper).
	if m.CrossDomain && b.Kind == "network" && b.MeanUtil >= th.NetworkHot {
		recs = append(recs, Recommendation{
			Action: ActionConsolidate,
			Reason: fmt.Sprintf("cross-domain cluster with %s at %.0f%% utilisation: inter-machine traffic dominates; live-migrate the remote VMs back", b.Resource, b.MeanUtil*100),
		})
	}

	// Rule 2: heavy spilling means io.sort.mb is too small.
	var spill, shuffle float64
	attemptsOver := 0
	for _, js := range m.RecentJobs {
		spill += js.SpillBytes
		shuffle += js.ShuffledBytes
		if over := js.Attempts - js.MapTasks - js.ReduceTasks; over > attemptsOver {
			attemptsOver = over
		}
	}
	if shuffle > 0 && spill/shuffle >= th.SpillFraction {
		recs = append(recs, Recommendation{
			Action: ActionIncreaseSortBuf,
			Reason: fmt.Sprintf("spilled %.0f MB against %.0f MB shuffled: raise io.sort.mb above %.0f MB", spill/1e6, shuffle/1e6, m.MRConfig.SortBufferBytes/1e6),
		})
	}

	// Rule 3: slot sizing against VM CPU.
	var meanCPU float64
	for _, vs := range m.Report.VMs {
		meanCPU += vs.MeanCPU
	}
	if n := len(m.Report.VMs); n > 0 {
		meanCPU /= float64(n)
	}
	switch {
	case meanCPU >= th.CPUHot && m.MRConfig.MapSlots > 1:
		recs = append(recs, Recommendation{
			Action: ActionDecreaseSlots,
			Reason: fmt.Sprintf("worker VCPUs at %.0f%%: %d map slots oversubscribe the single VCPU", meanCPU*100, m.MRConfig.MapSlots),
		})
	case meanCPU > 0 && meanCPU <= th.CPUCold && b.Kind == "cpu":
		recs = append(recs, Recommendation{
			Action: ActionIncreaseSlots,
			Reason: fmt.Sprintf("worker VCPUs at %.0f%% with no hot shared resource: more map slots would raise utilisation", meanCPU*100),
		})
	}

	// Rule 4: stragglers without speculation.
	if attemptsOver >= th.StragglerAttempts && !m.MRConfig.Speculative {
		recs = append(recs, Recommendation{
			Action: ActionEnableSpec,
			Reason: fmt.Sprintf("%d extra task attempts in recent jobs: enable speculative execution", attemptsOver),
		})
	}

	// Rule 5: a disk-bound (NFS) cluster benefits from larger blocks
	// (fewer, longer sequential streams).
	if b.Kind == "disk" && b.MeanUtil >= th.DiskHot {
		recs = append(recs, Recommendation{
			Action: ActionLargerBlocks,
			Reason: fmt.Sprintf("%s at %.0f%%: larger dfs.block.size reduces per-block overhead on the filer", b.Resource, b.MeanUtil*100),
		})
	}

	// Custom rules run last, in registration order.
	for _, rule := range t.rules {
		recs = append(recs, rule(m)...)
	}
	return recs
}

// Apply folds parameter-changing recommendations into a MapReduce config,
// returning the updated copy (migration actions are executed by the caller,
// which owns the platform).
func Apply(cfg mapreduce.Config, recs []Recommendation) mapreduce.Config {
	for _, r := range recs {
		switch r.Action {
		case ActionIncreaseSortBuf:
			cfg.SortBufferBytes *= 2
		case ActionIncreaseSlots:
			cfg.MapSlots++
		case ActionDecreaseSlots:
			if cfg.MapSlots > 1 {
				cfg.MapSlots--
			}
		case ActionEnableSpec:
			cfg.Speculative = true
		}
	}
	return cfg
}
