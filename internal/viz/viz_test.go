package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"vhadoop/internal/clustering"
)

func sampleResult() ([]clustering.Vector, clustering.Result) {
	points := []clustering.Vector{{0, 0}, {1, 1}, {10, 10}, {11, 11}}
	return points, clustering.Result{
		Algorithm: "kmeans",
		History: [][]clustering.Vector{
			{{2, 2}, {8, 8}},
			{{0.5, 0.5}, {10.5, 10.5}},
		},
		Centers: []clustering.Vector{{0.5, 0.5}, {10.5, 10.5}},
	}
}

func TestRenderProducesWellFormedSVG(t *testing.T) {
	points, res := sampleResult()
	svg := RenderClusters(points, res, DefaultOptions("k-means"))
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("not an svg: %.60s", svg)
	}
	// Well-formed XML?
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("svg is not well-formed XML: %v", err)
		}
	}
}

func TestRenderContainsPointsAndIterations(t *testing.T) {
	points, res := sampleResult()
	svg := RenderClusters(points, res, DefaultOptions("k-means"))
	if got := strings.Count(svg, `fill-opacity="0.5"`); got != len(points) {
		t.Fatalf("rendered %d sample points, want %d", got, len(points))
	}
	// Final iteration in bold red, previous in orange.
	if !strings.Contains(svg, "#d62728") {
		t.Fatal("final iteration not drawn in red")
	}
	if !strings.Contains(svg, "#ff7f0e") {
		t.Fatal("previous iteration not drawn in orange")
	}
}

func TestOldIterationsGrey(t *testing.T) {
	points, _ := sampleResult()
	res := clustering.Result{History: make([][]clustering.Vector, 10)}
	for i := range res.History {
		res.History[i] = []clustering.Vector{{float64(i), float64(i)}}
	}
	svg := RenderClusters(points, res, DefaultOptions(""))
	if !strings.Contains(svg, historyColor) {
		t.Fatal("iterations older than the colour ramp not greyed out")
	}
}

func TestTitleEscaped(t *testing.T) {
	points, res := sampleResult()
	svg := RenderClusters(points, res, DefaultOptions(`fuzzy <k> & "m"`))
	if strings.Contains(svg, "<k>") {
		t.Fatal("title not XML-escaped")
	}
	if !strings.Contains(svg, "&lt;k&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestHighDimensionalProjection(t *testing.T) {
	points := []clustering.Vector{{0, 0, 5, 5}, {1, 1, 9, 9}}
	res := clustering.Result{History: [][]clustering.Vector{{{0.5, 0.5, 7, 7}}}}
	svg := RenderClusters(points, res, DefaultOptions("60-dim"))
	if !strings.Contains(svg, "<circle") {
		t.Fatal("nothing rendered for high-dimensional data")
	}
}
