// Package viz renders clustering results as SVG, reproducing the paper's
// Figure 8 (Mahout's DisplayClustering screenshots): sample points with the
// clusters of every iteration superimposed — the newest iteration in bold
// red, the preceding ones in orange, yellow, green, blue and magenta, and
// everything older in light grey, so convergence is visible at a glance.
package viz

import (
	"fmt"
	"math"
	"strings"

	"vhadoop/internal/clustering"
)

// Mahout DisplayClustering's colour order, newest first.
var iterationColors = []string{
	"#d62728", // bold red: final iteration
	"#ff7f0e", // orange
	"#ffd700", // yellow
	"#2ca02c", // green
	"#1f77b4", // blue
	"#d633ff", // magenta
}

const historyColor = "#cccccc"

// Options controls the rendering.
type Options struct {
	Width, Height int
	Title         string
	// Radius draws each cluster as a circle of this data-space radius; 0
	// sizes circles from the spread of points assigned to each center.
	Radius float64
}

// DefaultOptions mirrors the Mahout demo's 600x600 canvas.
func DefaultOptions(title string) Options {
	return Options{Width: 600, Height: 600, Title: title}
}

// bounds computes the data-space bounding box with a margin.
func bounds(points []clustering.Vector, history [][]clustering.Vector) (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	consider := func(v clustering.Vector) {
		if len(v) < 2 {
			return
		}
		minX, maxX = math.Min(minX, v[0]), math.Max(maxX, v[0])
		minY, maxY = math.Min(minY, v[1]), math.Max(maxY, v[1])
	}
	for _, p := range points {
		consider(p)
	}
	for _, centers := range history {
		for _, c := range centers {
			consider(c)
		}
	}
	if math.IsInf(minX, 1) {
		return 0, 0, 1, 1
	}
	mx, my := (maxX-minX)*0.08+1e-9, (maxY-minY)*0.08+1e-9
	return minX - mx, minY - my, maxX + mx, maxY + my
}

// RenderClusters renders 2-D sample points and the per-iteration cluster
// centers as an SVG document. Higher-dimensional data is projected onto its
// first two dimensions.
func RenderClusters(points []clustering.Vector, res clustering.Result, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 600
	}
	if opts.Height <= 0 {
		opts.Height = 600
	}
	minX, minY, maxX, maxY := bounds(points, res.History)
	sx := func(x float64) float64 { return (x - minX) / (maxX - minX) * float64(opts.Width) }
	sy := func(y float64) float64 { return float64(opts.Height) - (y-minY)/(maxY-minY)*float64(opts.Height) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="18" font-family="sans-serif" font-size="14" fill="#333">%s</text>`+"\n",
			8, xmlEscape(opts.Title))
	}

	// Sample points.
	for _, p := range points {
		if len(p) < 2 {
			continue
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="#555" fill-opacity="0.5"/>`+"\n",
			sx(p[0]), sy(p[1]))
	}

	// Cluster circles, oldest first so the newest draw on top.
	n := len(res.History)
	for i := 0; i < n; i++ {
		centers := res.History[i]
		age := n - 1 - i // 0 = newest
		color := historyColor
		width := 1.0
		if age < len(iterationColors) {
			color = iterationColors[age]
			width = 1.5
		}
		if age == 0 {
			width = 3
		}
		for ci, c := range centers {
			if len(c) < 2 {
				continue
			}
			r := opts.Radius
			if r <= 0 {
				r = clusterRadius(points, res, i, ci)
			}
			rp := r / (maxX - minX) * float64(opts.Width)
			if rp < 3 {
				rp = 3
			}
			fmt.Fprintf(&sb,
				`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
				sx(c[0]), sy(c[1]), rp, color, width)
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// clusterRadius estimates a circle radius for center ci of iteration i: the
// mean distance of its assigned points for the final iteration, shrunk for
// older iterations.
func clusterRadius(points []clustering.Vector, res clustering.Result, iter, ci int) float64 {
	centers := res.History[iter]
	if ci >= len(centers) {
		return 1
	}
	var sum float64
	n := 0
	for _, p := range points {
		if len(p) < 2 {
			continue
		}
		best, _ := clustering.Nearest(p, centers, clustering.Euclidean)
		if best == ci {
			sum += clustering.Euclidean(p, centers[ci])
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
