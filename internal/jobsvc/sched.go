package jobsvc

import (
	"fmt"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// Start arms the scheduler and spawns its daemon on the shared domain
// (it reads and writes cross-domain cluster state every tick). Until
// Start is called, submissions only queue — admission control applies
// but nothing dispatches, so callers can stage a backlog
// deterministically. The daemon is demand-driven: it parks (exits) when
// the service is fully idle so a drained simulation can terminate, and
// any later Submit revives it. Idempotent.
func (s *Service) Start() {
	s.started = true
	s.ensureSched()
}

// ensureSched spawns the scheduler daemon if the service has been
// started and the daemon is not already running.
func (s *Service) ensureSched() {
	if !s.started || s.schedRunning || s.stopped {
		return
	}
	s.schedRunning = true
	s.pl.Engine.Spawn("jobsvc-sched", func(p *sim.Proc) { s.schedLoop(p) })
}

// schedLoop ticks until Stop or full idleness. One tick integrates usage,
// dispatches under fair share (with backfill), and preempts for starving
// head jobs.
func (s *Service) schedLoop(p *sim.Proc) {
	if !s.schedStartSet {
		s.schedStart, s.schedStartSet = p.Now(), true
	}
	for !s.stopped && (s.queued > 0 || s.running > 0) {
		s.tickOnce(p.Now())
		p.Sleep(s.cfg.Tick)
	}
	s.schedRunning = false
}

// tickOnce is one scheduler decision round at virtual time now.
func (s *Service) tickOnce(now sim.Time) {
	s.integrate()
	blocked, dm, dr, dispatched := s.dispatchPass(now)
	if s.cfg.Preemption && blocked != nil {
		s.preemptPass(now, blocked, dm, dr)
	}
	if dispatched == 0 && blocked == nil && s.running == 0 && s.queued > 0 {
		// Nothing runs, nothing was startable, and no head is merely
		// waiting for slots: the backlog holds jobs no empty cluster could
		// ever place (demand beyond quota). Fail them or tick forever.
		s.failUnschedulable(now)
	}
	s.instr.queueDepth.Set(float64(s.queued))
	s.instr.runningJobs.Set(float64(s.running))
}

// failUnschedulable fails every queued job whose clamped demand exceeds
// its tenant's quota — jobs that could not dispatch even on an idle
// cluster.
func (s *Service) failUnschedulable(now sim.Time) {
	totM, totR := s.pl.MR.SlotTotals()
	for _, t := range s.tenants {
		kept := t.queue[:0]
		for _, j := range t.queue {
			dm, dr := clampDemand(j.spec, totM, totR)
			if (t.quotaMaps > 0 && dm > t.quotaMaps) || (t.quotaReduces > 0 && dr > t.quotaReduces) {
				s.queued--
				j.state = Failed
				j.finished = now
				j.err = fmt.Errorf("%w: %s demands (%d,%d), quota (%d,%d)",
					ErrUnschedulable, j.spec.Workload(), dm, dr, t.quotaMaps, t.quotaReduces)
				t.stats.Failed++
				s.instr.failed.Inc()
				s.eventf("fail %s job %d: unschedulable under quota", t.name, j.id)
				j.done.Fire()
				continue
			}
			kept = append(kept, j)
		}
		t.queue = kept
	}
}

// integrate accumulates per-tenant slot-seconds: occupancy from the
// cluster's live ledger, and reservations from the service's own
// admission ledger (what fair share allocates — the Jain index runs on
// this one). Seconds while every tenant has work in the system count
// separately as contended usage, the window where fair share is actually
// being arbitrated.
func (s *Service) integrate() {
	// Contended means every tenant still has queued demand: that is when
	// dispatch actually arbitrates between tenants. A tenant whose last
	// job is merely running no longer competes for slots, and the window
	// must exclude that tail — the freed slots drain to whoever is left,
	// which is scheduling's job, not unfairness.
	contended := len(s.tenants) > 1
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			contended = false
			break
		}
	}
	for _, t := range s.tenants {
		m, r := s.pl.MR.TenantSlots(t.name)
		busy := float64(m+r) * float64(s.cfg.Tick)
		res := float64(t.resMaps+t.resReduces) * float64(s.cfg.Tick)
		t.cumMapSec += float64(t.resMaps) * float64(s.cfg.Tick)
		t.cumReduceSec += float64(t.resReduces) * float64(s.cfg.Tick)
		t.stats.SlotSeconds += busy
		t.stats.ReservedSlotSeconds += res
		if contended {
			t.stats.ContendedSlotSeconds += busy
			t.stats.ContendedReservedSlotSeconds += res
		}
		s.instr.tenantSlots.With(t.name).Set(float64(m + r))
	}
}

// dominantShare is the tenant's DRF score: the larger of its map- and
// reduce-slot service fractions, normalized by its weight. Service is the
// cumulative reservation integral plus the current reservations projected
// over one tick — the cumulative term makes weights effective even when
// concurrency is below the tenant count (deficit/WFQ-style), and the
// projection term rotates dispatch within a single tick. Lowest dominant
// share is served first.
func (t *Tenant) dominantShare(totM, totR int, tick sim.Time) float64 {
	var dm, dr float64
	if totM > 0 {
		dm = (t.cumMapSec + float64(t.resMaps)*float64(tick)) / float64(totM)
	}
	if totR > 0 {
		dr = (t.cumReduceSec + float64(t.resReduces)*float64(tick)) / float64(totR)
	}
	ds := dm
	if dr > ds {
		ds = dr
	}
	return ds / t.weight
}

// clampDemand bounds a job's slot demand to the cluster's totals, so jobs
// wider than the cluster still become dispatchable when it is idle.
func clampDemand(spec interface{ Demand() (int, int) }, totM, totR int) (int, int) {
	dm, dr := spec.Demand()
	if dm > totM {
		dm = totM
	}
	if dr > totR {
		dr = totR
	}
	return dm, dr
}

// underQuota reports whether dispatching demand (dm, dr) keeps the tenant
// within its slot quotas.
func (t *Tenant) underQuota(dm, dr int) bool {
	if t.quotaMaps > 0 && t.resMaps+dm > t.quotaMaps {
		return false
	}
	if t.quotaReduces > 0 && t.resReduces+dr > t.quotaReduces {
		return false
	}
	return true
}

// fits reports whether demand (dm, dr) fits the unreserved slots.
func (s *Service) fits(dm, dr, totM, totR int) bool {
	return s.resMaps+dm <= totM && s.resReduces+dr <= totR
}

// pickJob selects the tenant's next job: deadline jobs first by earliest
// deadline (earliest slack, absent a runtime estimate), then priority
// descending, then — among jobs tying on both — the best
// locality score over the job's declared inputs, then submission order.
// Jobs whose demand would break the tenant's quota are passed over.
func (s *Service) pickJob(t *Tenant, totM, totR int) (*Job, int, int) {
	var best *Job
	var bestDM, bestDR int
	ties := 0
	better := func(a, b *Job) int {
		// Returns <0 if a precedes b, 0 if tied before locality.
		ad, bd := a.deadline, b.deadline
		switch {
		case ad > 0 && bd == 0:
			return -1
		case ad == 0 && bd > 0:
			return 1
		case ad != bd:
			if ad < bd {
				return -1
			}
			return 1
		}
		if a.priority != b.priority {
			if a.priority > b.priority {
				return -1
			}
			return 1
		}
		return 0
	}
	for _, j := range t.queue {
		dm, dr := clampDemand(j.spec, totM, totR)
		if !t.underQuota(dm, dr) {
			continue
		}
		if best == nil {
			best, bestDM, bestDR = j, dm, dr
			ties = 1
			continue
		}
		switch better(j, best) {
		case -1:
			best, bestDM, bestDR = j, dm, dr
			ties = 1
		case 0:
			ties++
			// Locality tiebreak, bounded to the first few ties so one
			// huge queue cannot turn a tick into a full HDFS scan.
			if ties <= 8 {
				if s.pl.MR.LocalityScore(j.spec.Inputs()) > s.pl.MR.LocalityScore(best.spec.Inputs()) {
					best, bestDM, bestDR = j, dm, dr
				}
			}
		}
	}
	return best, bestDM, bestDR
}

// dispatchPass serves tenants in dominant-share order while slots and the
// running-job budget last. When the fair-share head job does not fit it
// either backfills a smaller job past it (Backfill) or reports the blocked
// head to the preemption pass.
func (s *Service) dispatchPass(now sim.Time) (blocked *Job, bdm, bdr, dispatched int) {
	totM, totR := s.pl.MR.SlotTotals()
	for s.running < s.cfg.MaxRunning && s.queued > 0 {
		var t *Tenant
		var j *Job
		var dm, dr int
		bestDS := 0.0
		for _, cand := range s.tenants {
			if len(cand.queue) == 0 {
				continue
			}
			cj, cdm, cdr := s.pickJob(cand, totM, totR)
			if cj == nil {
				continue
			}
			ds := cand.dominantShare(totM, totR, s.cfg.Tick)
			if t == nil || ds < bestDS {
				t, j, dm, dr, bestDS = cand, cj, cdm, cdr, ds
			}
		}
		if j == nil {
			return nil, 0, 0, dispatched
		}
		if s.fits(dm, dr, totM, totR) {
			s.dispatch(j, dm, dr, now, false)
			dispatched++
			continue
		}
		blocked, bdm, bdr = j, dm, dr
		if !s.cfg.Backfill {
			return blocked, bdm, bdr, dispatched
		}
		// Backfill: the first queued job, tenants in registration order,
		// that fits the leftover slots jumps the blocked head.
		bj, bjdm, bjdr := s.findBackfill(j, totM, totR)
		if bj == nil {
			return blocked, bdm, bdr, dispatched
		}
		s.backfills++
		s.instr.backfilled.Inc()
		s.eventf("backfill %s job %d past %s job %d", bj.tenant.name, bj.id, j.tenant.name, j.id)
		s.dispatch(bj, bjdm, bjdr, now, true)
		dispatched++
	}
	return blocked, bdm, bdr, dispatched
}

// findBackfill scans all queues in deterministic order for the first job,
// other than the blocked head, that fits the unreserved slots and its
// tenant's quota.
func (s *Service) findBackfill(head *Job, totM, totR int) (*Job, int, int) {
	for _, t := range s.tenants {
		for _, j := range t.queue {
			if j == head {
				continue
			}
			dm, dr := clampDemand(j.spec, totM, totR)
			if t.underQuota(dm, dr) && s.fits(dm, dr, totM, totR) {
				return j, dm, dr
			}
		}
	}
	return nil, 0, 0
}

// preemptPass reclaims slots for a fair-share head job that has been
// starving past StarveWait: the tenant with the highest dominant share
// loses up to MaxPreemptPerTick running attempts of the blocking resource
// kinds (requeued, attempt budget refunded), and the starving job
// dispatches over-reserved — its tasks drain into the slots the aborted
// attempts free. Starvation is measured from the later of submission and
// the scheduler's own start, so a backlog staged before Start() does not
// count its staging time as starving.
func (s *Service) preemptPass(now sim.Time, blocked *Job, dm, dr int) {
	since := blocked.submitted
	if since < s.schedStart {
		since = s.schedStart
	}
	if now-since < s.cfg.StarveWait {
		return
	}
	totM, totR := s.pl.MR.SlotTotals()
	// Preemption only ever aborts map attempts. A map restarts cheaply,
	// but an aborted reduce forfeits its shuffle and re-enters the queue
	// for the very slot class under contention — the victim stalls holding
	// its reservation, its apparent service inflates, and it keeps being
	// picked as the "over-served" victim: a spiral, not a rebalance. So a
	// head blocked on reduce slots waits for natural drain instead.
	if dm == 0 || s.resMaps+dm <= totM {
		return
	}
	var victim *Tenant
	worst := 0.0
	for _, t := range s.tenants {
		if t == blocked.tenant || t.resMaps == 0 {
			continue
		}
		if t.stats.Preempted > 0 && now-t.preemptedAt < s.cfg.StarveWait {
			// Cooldown: a recently-hit victim is still re-running the
			// aborted attempts; hitting it again compounds the stall.
			continue
		}
		if ds := t.dominantShare(totM, totR, s.cfg.Tick); victim == nil || ds > worst {
			victim, worst = t, ds
		}
	}
	if victim == nil || worst <= blocked.tenant.dominantShare(totM, totR, s.cfg.Tick) {
		return
	}
	n := dm
	if n > s.cfg.MaxPreemptPerTick {
		n = s.cfg.MaxPreemptPerTick
	}
	k := s.pl.MR.PreemptTenant(victim.name, mapreduce.MapTask, n)
	if k == 0 {
		return
	}
	victim.stats.Preempted += k
	victim.preemptedAt = now
	s.preemptions += k
	s.instr.preempted.Add(float64(k))
	s.eventf("preempt %d slots of %s for %s job %d (waited %.3g)",
		k, victim.name, blocked.tenant.name, blocked.id, float64(now-since))
	blocked.boost = 1
	s.dispatch(blocked, dm, dr, now, false)
}

// dispatch removes j from its tenant's queue, reserves its demand and
// spawns the runner proc that executes the workload under the tenant's
// submission options.
func (s *Service) dispatch(j *Job, dm, dr int, now sim.Time, backfill bool) {
	t := j.tenant
	for i, q := range t.queue {
		if q == j {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	s.queued--
	j.state = Running
	j.started = now
	j.demMaps, j.demReduces = dm, dr
	t.resMaps += dm
	t.resReduces += dr
	s.resMaps += dm
	s.resReduces += dr
	t.running++
	s.running++
	wait := now - j.submitted
	t.stats.WaitTotal += wait
	t.stats.waits = append(t.stats.waits, wait)
	s.instr.waitHist.Observe(float64(wait))
	j.span = s.pl.Obs.Start(kindJobsvc, "jobsvc:"+j.spec.Workload(), nil)
	j.span.SetAttr("tenant", t.name)
	j.span.SetAttr("job", fmt.Sprintf("%d", j.id))
	if backfill {
		j.span.SetAttr("backfill", "true")
	}
	s.eventf("dispatch %s job %d (%s) after %.3g", t.name, j.id, j.spec.Workload(), float64(wait))
	s.pl.Engine.Spawn(fmt.Sprintf("jobsvc-run:%s:%d", t.name, j.id), func(p *sim.Proc) {
		opts := []mapreduce.SubmitOption{mapreduce.WithTenant(t.name)}
		if pr := j.priority + j.boost; pr != 0 {
			opts = append(opts, mapreduce.WithPriority(pr))
		}
		if j.deadline > 0 {
			opts = append(opts, mapreduce.WithDeadline(j.deadline))
		}
		if !j.collect {
			opts = append(opts, mapreduce.WithCollectOutput(false))
		}
		res, err := j.spec.Run(p, s.pl, opts...)
		s.complete(p, j, res, err)
	})
}

// complete records a runner's outcome and releases its reservation.
func (s *Service) complete(p *sim.Proc, j *Job, res workloads.Result, err error) {
	t := j.tenant
	j.finished = p.Now()
	j.result = res
	j.err = err
	if err != nil {
		j.state = Failed
		t.stats.Failed++
		s.instr.failed.Inc()
		j.span.SetAttr("outcome", "failed")
		s.eventf("job %d (%s) failed: %v", j.id, t.name, err)
	} else {
		j.state = Done
		t.stats.Completed++
		s.instr.completed.Inc()
		s.instr.tenantCompleted.With(t.name).Inc()
		j.span.SetAttr("outcome", "done")
	}
	if j.deadline > 0 && j.finished > j.deadline {
		t.stats.DeadlinesMissed++
		s.instr.deadlineMiss.Inc()
		j.span.SetAttr("deadline", "missed")
	}
	lat := j.finished - j.started
	s.instr.runHist.Observe(float64(lat))
	if j.finished > t.stats.LastFinish {
		t.stats.LastFinish = j.finished
	}
	t.resMaps -= j.demMaps
	t.resReduces -= j.demReduces
	s.resMaps -= j.demMaps
	s.resReduces -= j.demReduces
	t.running--
	s.running--
	j.span.Finish()
	j.done.Fire()
}
