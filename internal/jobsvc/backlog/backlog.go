// Package backlog is the job-service load harness: it provisions a
// platform, registers a tenant population, submits a synthetic but fully
// deterministic job mix, runs the backlog to completion under the
// fair-share scheduler, and captures every comparable artifact — the
// per-tenant report, the engine trace, the observability snapshot and
// span trace. The determinism suite replays the same backlog across
// reruns and shard widths and requires the artifacts byte-identical; the
// bench reuses the same harness to measure makespan, p99 wait and the
// Jain fairness index at scale.
package backlog

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"vhadoop/internal/core"
	"vhadoop/internal/faults"
	"vhadoop/internal/jobsvc"
	"vhadoop/internal/nmon"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// Options shapes one backlog run. The zero value is not runnable; fill at
// least Tenants and Jobs.
type Options struct {
	Nodes   int   // platform size (default 16)
	Seed    int64 // platform seed (default 1)
	Shards  int   // >1 selects the sharded engine
	Tenants int   // accounts; weights cycle 1..4 in registration order
	Jobs    int   // total submissions, round-robin over tenants

	// Config tunes the service under test (zero value = service defaults).
	Config jobsvc.Config

	// Uniform replaces the mixed job population with identical 16 MB
	// one-reduce wordcounts and drops priorities and deadlines, so every
	// tenant presents exactly the same demand. This is the fairness-bench
	// shape: with symmetric demand, any slot-share skew is the
	// scheduler's doing, and the weighted Jain index measures it.
	Uniform bool

	// Hardened provisions the chaos platform shape: cross-domain layout
	// and PM-aware triple replication with the replication monitor on, so
	// machine-level faults stay survivable.
	Hardened bool

	// FaultsAfterStart is a fault schedule whose At times are relative to
	// the instant the scheduler starts (after the whole backlog is staged
	// and queued), so faults land mid-execution regardless of how long
	// staging took.
	FaultsAfterStart faults.Schedule
}

// Result is everything one backlog run produced. Every string field is
// byte-reproducible for a fixed Options value, shard count included.
type Result struct {
	Report  string // jobsvc canonical per-tenant report
	Trace   string // full engine event trace
	Metrics string // observability registry snapshot (Prometheus text)
	Spans   string // full span trace (JSON)

	End      sim.Time // virtual end of the run
	Makespan sim.Time // scheduler start -> backlog drained
	P99Wait  sim.Time
	Jain     float64

	Admitted    int
	Rejected    int
	Backfills   int
	Preemptions int
	Stats       []jobsvc.TenantStats
}

// tenantName names account i; registration order is part of the schedule.
func tenantName(i int) string { return fmt.Sprintf("t%03d", i) }

// wcSizes are the wordcount footprints the mix cycles through: three
// single-map sizes and one two-map size.
var wcSizes = [4]float64{8e6, 16e6, 48e6, 96e6}

// specFor derives job j's workload from its index alone — no RNG, so the
// mix is trivially identical across reruns and shard widths. Every 13th
// job is a slot-free DFSIO pair (backfill fodder); the rest are small
// wordcounts whose inputs are shared per (tenant, size) so staging cost
// stays bounded by the tenant population. The size index folds in the
// round number (j / tenants) so that under round-robin submission every
// tenant cycles through every size — job weight must not correlate with
// tenant weight, or fairness measurements confound the two.
func specFor(o Options, j int, tenant string) workloads.Spec {
	if o.Uniform {
		return workloads.WordcountSpec{
			Input:     fmt.Sprintf("/backlog/%s/u", tenant),
			SizeBytes: 16e6,
			Reduces:   1,
			RealLines: 8,
		}
	}
	if j%13 == 7 {
		return workloads.DFSIOSpec{Options: workloads.DFSIOOptions{
			Files: 2, FileBytes: 2e6, Dir: fmt.Sprintf("/backlog/io/j%05d", j),
		}}
	}
	si := (j + j/o.Tenants) % len(wcSizes)
	return workloads.WordcountSpec{
		Input:     fmt.Sprintf("/backlog/%s/s%d", tenant, si),
		SizeBytes: wcSizes[si],
		Reduces:   1 + (j/3)%2,
		RealLines: 8,
	}
}

// submitOpts derives job j's submission options: a sprinkling of raised
// priorities and deadlines so the ordering paths all run under load.
func submitOpts(o Options, j int, now sim.Time) []jobsvc.SubmitOption {
	opts := []jobsvc.SubmitOption{jobsvc.WithoutOutput()}
	if o.Uniform {
		return opts
	}
	switch j % 9 {
	case 4:
		opts = append(opts, jobsvc.WithPriority(1))
	case 7:
		opts = append(opts, jobsvc.WithPriority(2))
	}
	if j%6 == 1 {
		opts = append(opts, jobsvc.WithDeadline(now+400+sim.Time(j%7)*120))
	}
	return opts
}

// platformOpts builds the platform for one run.
func platformOpts(o Options) core.Options {
	opts := core.DefaultOptions()
	if o.Nodes > 0 {
		opts.Nodes = o.Nodes
	}
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	opts.Shards = o.Shards
	if o.Hardened {
		opts.Layout = core.CrossDomain
		opts.HDFS.PMAware = true
		opts.HDFS.Replication = 3
		opts.HDFS.ReplMonitorInterval = 15
	}
	return opts
}

// Run provisions the platform, queues the whole backlog, starts the
// scheduler, installs any faults relative to that instant, and drains.
// Admission rejects are counted, not fatal; any other error aborts.
func Run(o Options) (Result, error) {
	if o.Tenants <= 0 || o.Jobs <= 0 {
		return Result{}, fmt.Errorf("backlog: need Tenants and Jobs, got %d x %d", o.Tenants, o.Jobs)
	}
	pl := core.MustNewPlatform(platformOpts(o))
	var trace strings.Builder
	pl.Engine.SetTrace(func(t sim.Time, format string, args ...any) {
		trace.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		trace.WriteByte(' ')
		fmt.Fprintf(&trace, format, args...)
		trace.WriteByte('\n')
	})
	var inj *faults.Injector
	if len(o.FaultsAfterStart.Faults) > 0 {
		mon := nmon.New(pl.Engine, nmon.WithInterval(5), nmon.WithPlane(pl.Obs))
		inj = faults.NewInjector(pl)
		inj.Attach(mon)
	}
	svc := jobsvc.New(pl, o.Config)
	for i := 0; i < o.Tenants; i++ {
		if _, err := svc.Register(tenantName(i), float64(1+i%4)); err != nil {
			return Result{}, err
		}
	}
	var res Result
	var startAt sim.Time
	end, err := pl.Run(func(p *sim.Proc) error {
		for j := 0; j < o.Jobs; j++ {
			tn := tenantName(j % o.Tenants)
			_, err := svc.Submit(p, tn, specFor(o, j, tn), submitOpts(o, j, p.Now())...)
			switch {
			case err == nil:
				res.Admitted++
			case errors.Is(err, jobsvc.ErrQueueFull),
				errors.Is(err, jobsvc.ErrTenantQueueFull),
				errors.Is(err, jobsvc.ErrCapacity):
				res.Rejected++
			default:
				return fmt.Errorf("backlog: submitting job %d: %w", j, err)
			}
		}
		startAt = p.Now()
		if inj != nil {
			shifted := faults.Schedule{Faults: make([]faults.Fault, len(o.FaultsAfterStart.Faults))}
			copy(shifted.Faults, o.FaultsAfterStart.Faults)
			for i := range shifted.Faults {
				shifted.Faults[i].At += startAt
			}
			if err := inj.Install(shifted); err != nil {
				return err
			}
		}
		svc.Start()
		svc.Drain(p)
		res.Makespan = p.Now() - startAt
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res.Report = svc.Report()
	res.Trace = trace.String()
	res.Metrics = pl.Obs.Snapshot().PrometheusText()
	res.Spans = pl.Obs.Tracer().JSON()
	res.End = end
	res.P99Wait = svc.P99Wait()
	res.Jain = svc.Jain()
	res.Backfills = svc.Backfills()
	res.Preemptions = svc.Preemptions()
	res.Stats = svc.Stats()
	return res, nil
}
