package jobsvc_test

import (
	"errors"
	"fmt"
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/jobsvc"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// Assertions inside pl.Run drivers and spawned procs must be reported by
// returning an error, never t.Fatalf: Fatalf calls runtime.Goexit, which
// kills the sim proc mid-hand-off and wedges the engine instead of
// failing the test.

// testOpts is a small deterministic platform.
func testOpts(nodes int, seed int64) core.Options {
	opts := core.DefaultOptions()
	opts.Nodes = nodes
	opts.Seed = seed
	return opts
}

// tinyWC is a one-map one-reduce wordcount over its own input file.
func tinyWC(name string) workloads.WordcountSpec {
	return workloads.WordcountSpec{Input: "/jsvc/" + name, SizeBytes: 8e6, Reduces: 1, RealLines: 8}
}

// wideWC is a wordcount whose map demand exceeds any test cluster.
func wideWC(name string) workloads.WordcountSpec {
	return workloads.WordcountSpec{Input: "/jsvc/" + name, SizeBytes: 1024e6, Reduces: 1, RealLines: 64}
}

func TestAdmissionControl(t *testing.T) {
	pl := core.MustNewPlatform(testOpts(5, 7))
	svc := jobsvc.New(pl, jobsvc.Config{MaxQueued: 2, CapacityBytes: 400e6})
	if _, err := svc.Register("acct", 1); err != nil {
		t.Fatal(err)
	}
	_, err := pl.Run(func(p *sim.Proc) error {
		if _, err := svc.Submit(p, "ghost", tinyWC("g0")); !errors.Is(err, jobsvc.ErrUnknownTenant) {
			return fmt.Errorf("unknown tenant err = %v", err)
		}
		tk1, err := svc.Submit(p, "acct", tinyWC("a0"))
		if err != nil {
			return fmt.Errorf("first submit: %v", err)
		}
		tk2, err := svc.Submit(p, "acct", tinyWC("a1"))
		if err != nil {
			return fmt.Errorf("second submit: %v", err)
		}
		// The service is not Started yet, so the backlog cannot drain
		// between submissions and the queue cap is deterministic.
		if _, err := svc.Submit(p, "acct", tinyWC("a2")); !errors.Is(err, jobsvc.ErrQueueFull) {
			return fmt.Errorf("over-cap submit err = %v", err)
		}
		if _, err := svc.Submit(p, "acct", wideWC("big")); !errors.Is(err, jobsvc.ErrQueueFull) {
			// Queue cap is checked before capacity.
			return fmt.Errorf("queued big submit err = %v", err)
		}
		svc.Start()
		svc.Drain(p)
		if _, err := svc.Submit(p, "acct", wideWC("big")); !errors.Is(err, jobsvc.ErrCapacity) {
			return fmt.Errorf("capacity reject err = %v", err)
		}
		for i, tk := range []*jobsvc.Ticket{tk1, tk2} {
			res, err := tk.Wait(p)
			if err != nil {
				return fmt.Errorf("job %d: %v", i, err)
			}
			if res.Workload != "wordcount" || len(res.Output) == 0 {
				return fmt.Errorf("job %d result: %+v", i, res)
			}
			if tk.State() != jobsvc.Done {
				return fmt.Errorf("job %d state = %v", i, tk.State())
			}
		}
		stats := svc.Stats()[0]
		if stats.Submitted != 2 || stats.Completed != 2 || stats.Rejected != 3 {
			return fmt.Errorf("tenant stats = %+v", stats)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedFairShare(t *testing.T) {
	pl := core.MustNewPlatform(testOpts(5, 11))
	svc := jobsvc.New(pl, jobsvc.Config{Tick: 2})
	if _, err := svc.Register("gold", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("bronze", 1); err != nil {
		t.Fatal(err)
	}
	_, err := pl.Run(func(p *sim.Proc) error {
		for i := 0; i < 12; i++ {
			if _, err := svc.Submit(p, "gold", tinyWC(fmt.Sprintf("g%d", i)), jobsvc.WithoutOutput()); err != nil {
				return err
			}
			if _, err := svc.Submit(p, "bronze", tinyWC(fmt.Sprintf("b%d", i)), jobsvc.WithoutOutput()); err != nil {
				return err
			}
		}
		svc.Start()
		svc.Drain(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := svc.Stats()
	gold, bronze := stats[0], stats[1]
	if gold.Completed != 12 || bronze.Completed != 12 {
		t.Fatalf("completions: gold %d bronze %d", gold.Completed, bronze.Completed)
	}
	if gold.ContendedReservedSlotSeconds == 0 || bronze.ContendedReservedSlotSeconds == 0 {
		t.Fatalf("no contended usage recorded: %+v %+v", gold, bronze)
	}
	// Compare the reservation integrals — the quantity fair share
	// allocates. Cluster occupancy echoes it too noisily for a tight
	// bound (reduce slots idle in shuffle still count as occupied).
	ratio := gold.ContendedReservedSlotSeconds / bronze.ContendedReservedSlotSeconds
	if ratio < 1.8 || ratio > 5 {
		t.Fatalf("contended reserved slot-second ratio = %.2f, want ~3 for 3:1 weights", ratio)
	}
	if j := svc.Jain(); j < 0.9 {
		t.Fatalf("weighted Jain index = %.3f, want >= 0.9", j)
	}
}

func TestBackfillJumpsBlockedHead(t *testing.T) {
	pl := core.MustNewPlatform(testOpts(3, 13))
	svc := jobsvc.New(pl, jobsvc.Config{Tick: 2, Backfill: true})
	if _, err := svc.Register("batch", 1); err != nil {
		t.Fatal(err)
	}
	_, err := pl.Run(func(p *sim.Proc) error {
		// Two cluster-wide jobs on one tenant: the first takes every slot,
		// the second blocks as that tenant's queue head. (A second tenant
		// would not do: its idle account makes it the fair-share head and
		// its job dispatches on the normal path, not as a backfill.)
		if _, err := svc.Submit(p, "batch", wideWC("w0")); err != nil {
			return err
		}
		if _, err := svc.Submit(p, "batch", wideWC("w1")); err != nil {
			return err
		}
		// A slot-free DFSIO job fits the (zero) leftover demand and must
		// jump the blocked head.
		tk, err := svc.Submit(p, "batch", workloads.DFSIOSpec{Options: workloads.DFSIOOptions{Files: 2, FileBytes: 2e6}})
		if err != nil {
			return err
		}
		svc.Start()
		svc.Drain(p)
		if _, err := tk.Wait(p); err != nil {
			return fmt.Errorf("backfilled job failed: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Backfills() == 0 {
		t.Fatal("no backfill happened")
	}
}

func TestPreemptionUnblocksStarvingTenant(t *testing.T) {
	pl := core.MustNewPlatform(testOpts(3, 17))
	svc := jobsvc.New(pl, jobsvc.Config{
		Tick: 2, Preemption: true, StarveWait: 10, MaxPreemptPerTick: 2,
	})
	if _, err := svc.Register("hog", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("vip", 4); err != nil {
		t.Fatal(err)
	}
	_, err := pl.Run(func(p *sim.Proc) error {
		hogTk, err := svc.Submit(p, "hog", wideWC("hog"))
		if err != nil {
			return err
		}
		vipTk, err := svc.Submit(p, "vip", wideWC("vip"))
		if err != nil {
			return err
		}
		svc.Start()
		svc.Drain(p)
		if _, err := hogTk.Wait(p); err != nil {
			return fmt.Errorf("hog job should survive preemption: %v", err)
		}
		if _, err := vipTk.Wait(p); err != nil {
			return fmt.Errorf("vip job failed: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Preemptions() == 0 {
		t.Fatal("no slots were preempted")
	}
	if svc.Stats()[0].Preempted == 0 {
		t.Fatalf("hog lost no attempts: %+v", svc.Stats()[0])
	}
}

func TestDeadlineOrdering(t *testing.T) {
	pl := core.MustNewPlatform(testOpts(2, 19))
	svc := jobsvc.New(pl, jobsvc.Config{Tick: 2})
	if _, err := svc.Register("acct", 1); err != nil {
		t.Fatal(err)
	}
	// One worker means one job runs at a time, so completion order is
	// dispatch order: earliest deadline, later deadline, then deadline-less.
	var order []string
	_, err := pl.Run(func(p *sim.Proc) error {
		track := func(name string, tk *jobsvc.Ticket) {
			pl.Engine.Spawn("track:"+name, func(q *sim.Proc) {
				if _, err := tk.Wait(q); err == nil {
					order = append(order, name)
				}
			})
		}
		none, err := svc.Submit(p, "acct", tinyWC("none"))
		if err != nil {
			return err
		}
		late, err := svc.Submit(p, "acct", tinyWC("late"), jobsvc.WithDeadline(4000))
		if err != nil {
			return err
		}
		soon, err := svc.Submit(p, "acct", tinyWC("soon"), jobsvc.WithDeadline(2000))
		if err != nil {
			return err
		}
		track("none", none)
		track("late", late)
		track("soon", soon)
		svc.Start()
		svc.Drain(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "soon" || order[1] != "late" || order[2] != "none" {
		t.Fatalf("completion order = %v, want [soon late none]", order)
	}
	st := svc.Stats()[0]
	if st.DeadlinesMissed != 0 {
		t.Fatalf("deadlines missed = %d", st.DeadlinesMissed)
	}
}

func TestQuotaCapsConcurrency(t *testing.T) {
	pl := core.MustNewPlatform(testOpts(5, 23))
	svc := jobsvc.New(pl, jobsvc.Config{Tick: 2})
	if _, err := svc.Register("capped", 1, jobsvc.WithQuota(1, 1)); err != nil {
		t.Fatal(err)
	}
	maxRunning := 0
	_, err := pl.Run(func(p *sim.Proc) error {
		for i := 0; i < 4; i++ {
			if _, err := svc.Submit(p, "capped", tinyWC(fmt.Sprintf("q%d", i)), jobsvc.WithoutOutput()); err != nil {
				return err
			}
		}
		svc.Start()
		pl.Engine.Spawn("watcher", func(q *sim.Proc) {
			for svc.QueueDepth() > 0 || svc.RunningJobs() > 0 {
				if r := svc.RunningJobs(); r > maxRunning {
					maxRunning = r
				}
				q.Sleep(1)
			}
		})
		svc.Drain(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxRunning != 1 {
		t.Fatalf("max concurrent jobs = %d, want 1 under quota (1,1)", maxRunning)
	}
	if svc.Stats()[0].Completed != 4 {
		t.Fatalf("completed = %d", svc.Stats()[0].Completed)
	}
}
