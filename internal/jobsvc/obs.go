package jobsvc

import "vhadoop/internal/obs"

// kindJobsvc tags the service's spans and events in the trace export.
const kindJobsvc = obs.SpanKind("jobsvc")

// instruments is the service's observability surface: service-wide
// counters for every admission and scheduling decision, queue gauges, wait
// and runtime histograms, and a per-tenant occupancy gauge plus completion
// counter for fairness dashboards.
type instruments struct {
	submitted    *obs.Counter
	rejected     *obs.Counter
	completed    *obs.Counter
	failed       *obs.Counter
	preempted    *obs.Counter
	backfilled   *obs.Counter
	deadlineMiss *obs.Counter

	queueDepth  *obs.Gauge
	runningJobs *obs.Gauge

	waitHist *obs.Histogram
	runHist  *obs.Histogram

	tenantSlots     *obs.GaugeVec
	tenantCompleted *obs.CounterVec
}

// waitBuckets spans sub-tick dispatches through hour-long starvation.
var waitBuckets = []float64{1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}

func newInstruments(pl *obs.Plane) *instruments {
	return &instruments{
		submitted:       pl.Counter("jobsvc_submitted_total"),
		rejected:        pl.Counter("jobsvc_rejected_total"),
		completed:       pl.Counter("jobsvc_completed_total"),
		failed:          pl.Counter("jobsvc_failed_total"),
		preempted:       pl.Counter("jobsvc_preempted_slots_total"),
		backfilled:      pl.Counter("jobsvc_backfilled_total"),
		deadlineMiss:    pl.Counter("jobsvc_deadline_missed_total"),
		queueDepth:      pl.Gauge("jobsvc_queue_depth"),
		runningJobs:     pl.Gauge("jobsvc_running_jobs"),
		waitHist:        pl.Histogram("jobsvc_wait_seconds", waitBuckets),
		runHist:         pl.Histogram("jobsvc_run_seconds", waitBuckets),
		tenantSlots:     pl.GaugeVec("jobsvc_tenant_slots", "tenant"),
		tenantCompleted: pl.CounterVec("jobsvc_tenant_completed_total", "tenant"),
	}
}
