package jobsvc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vhadoop/internal/sim"
)

// TenantStats is one tenant's accumulated accounting.
type TenantStats struct {
	Name   string
	Weight float64

	Submitted       int
	Rejected        int
	Completed       int
	Failed          int
	Preempted       int // running attempts lost to preemption
	DeadlinesMissed int

	// WaitTotal sums queue waits (admission to dispatch).
	WaitTotal sim.Time
	// SlotSeconds integrates the tenant's cluster slot occupancy over the
	// scheduler ticks; ContendedSlotSeconds counts only ticks on which
	// every tenant had work in the system — the window fairness is judged
	// over.
	SlotSeconds          float64
	ContendedSlotSeconds float64
	// ReservedSlotSeconds integrates the tenant's admitted slot
	// reservations — the quantity dominant-share scheduling actually
	// allocates. Cluster occupancy is a lagging, noisy echo of it (a
	// reduce slot waiting on shuffle data counts as occupied), so the
	// weighted fairness index is computed over the contended reserved
	// integral, not occupancy.
	ReservedSlotSeconds          float64
	ContendedReservedSlotSeconds float64
	// LastFinish is the virtual completion time of the tenant's last job.
	LastFinish sim.Time

	waits []sim.Time
}

// P99Wait returns the tenant's 99th-percentile queue wait.
func (ts TenantStats) P99Wait() sim.Time { return percentile(ts.waits, 0.99) }

// Stats returns a copy of the tenant's accounting.
func (t *Tenant) Stats() TenantStats {
	ts := t.stats
	ts.waits = append([]sim.Time(nil), t.stats.waits...)
	return ts
}

// percentile returns the pth percentile (0 < p <= 1) of xs, 0 when empty.
func percentile(xs []sim.Time, p float64) sim.Time {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Stats returns every tenant's accounting in registration order.
func (s *Service) Stats() []TenantStats {
	out := make([]TenantStats, len(s.tenants))
	for i, t := range s.tenants {
		out[i] = t.Stats()
	}
	return out
}

// Backfills returns how many jobs jumped a blocked fair-share head.
func (s *Service) Backfills() int { return s.backfills }

// Preemptions returns how many running slots were reclaimed.
func (s *Service) Preemptions() int { return s.preemptions }

// P99Wait returns the 99th-percentile queue wait across all tenants.
func (s *Service) P99Wait() sim.Time {
	var all []sim.Time
	for _, t := range s.tenants {
		all = append(all, t.stats.waits...)
	}
	return percentile(all, 0.99)
}

// Jain returns the Jain fairness index over weight-normalized tenant
// reservations: (Σx)² / (n·Σx²) with xᵢ = reserved slot-seconds of tenant
// i divided by its weight. 1.0 is perfectly weighted-fair; 1/n is
// maximally unfair. The integral from the contended window is preferred —
// outside it a lone tenant using the whole cluster is not unfairness —
// falling back to the total when the tenants' backlogs never overlapped.
func (s *Service) Jain() float64 {
	xs := make([]float64, 0, len(s.tenants))
	contended := false
	for _, t := range s.tenants {
		if t.stats.ContendedReservedSlotSeconds > 0 {
			contended = true
			break
		}
	}
	for _, t := range s.tenants {
		use := t.stats.ContendedReservedSlotSeconds
		if !contended {
			use = t.stats.ReservedSlotSeconds
		}
		xs = append(xs, use/t.weight)
	}
	return jain(xs)
}

// jain is the raw Jain index over xs; 0 when the total usage is zero.
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// g formats a float the way the repo's canonical artifacts do: shortest
// round-trip representation, so reports byte-compare across runs.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Report renders the service's full accounting as a canonical string: one
// header line, one line per tenant in registration order, one footer with
// the service-wide fairness numbers. Byte-identical across same-seed runs
// and shard counts; the determinism suite pins it.
func (s *Service) Report() string {
	var b strings.Builder
	var sub, done, fail, rej, pre, miss int
	for _, t := range s.tenants {
		sub += t.stats.Submitted
		done += t.stats.Completed
		fail += t.stats.Failed
		rej += t.stats.Rejected
		pre += t.stats.Preempted
		miss += t.stats.DeadlinesMissed
	}
	fmt.Fprintf(&b, "jobsvc tenants=%d submitted=%d completed=%d failed=%d rejected=%d preempted=%d backfills=%d deadline_missed=%d\n",
		len(s.tenants), sub, done, fail, rej, pre, s.backfills, miss)
	for _, t := range s.tenants {
		ts := t.stats
		fmt.Fprintf(&b, "tenant %s w=%s sub=%d done=%d fail=%d rej=%d pre=%d miss=%d wait_total=%s p99_wait=%s slotsec=%s contended=%s ressec=%s cressec=%s last_finish=%s\n",
			ts.Name, g(ts.Weight), ts.Submitted, ts.Completed, ts.Failed, ts.Rejected,
			ts.Preempted, ts.DeadlinesMissed, g(float64(ts.WaitTotal)), g(float64(ts.P99Wait())),
			g(ts.SlotSeconds), g(ts.ContendedSlotSeconds),
			g(ts.ReservedSlotSeconds), g(ts.ContendedReservedSlotSeconds), g(float64(ts.LastFinish)))
	}
	fmt.Fprintf(&b, "jain=%s p99_wait=%s\n", g(s.Jain()), g(float64(s.P99Wait())))
	return b.String()
}
