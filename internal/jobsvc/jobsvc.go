// Package jobsvc is the multi-tenant job service: a long-running control
// plane that owns a mapreduce.Cluster, accepts workload submissions from
// many tenants, and schedules them under weighted fair share. It supplies
// what the paper's one-shot experiment drivers could not: admission control
// against queue and HDFS-capacity pressure, DRF-style dominant-share
// ordering over map and reduce slots, deadline- and locality-aware job
// selection, preemption of over-share tenants, and backfill of idle slots.
//
// The service is a pure simulation citizen: its scheduler is a daemon proc
// ticking on the virtual clock, every decision consumes only deterministic
// inputs (registration order, submission sequence, cluster slot ledgers),
// and a whole 100-tenant backlog replays byte-identically under a fixed
// seed for any shard count.
package jobsvc

import (
	"errors"
	"fmt"

	"vhadoop/internal/core"
	"vhadoop/internal/obs"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// Admission errors. Submit returns them wrapped with the tenant and
// workload so callers can log rejections without string-matching.
var (
	// ErrUnknownTenant rejects submissions for unregistered accounts.
	ErrUnknownTenant = errors.New("jobsvc: unknown tenant")
	// ErrQueueFull rejects when the service-wide backlog cap is reached.
	ErrQueueFull = errors.New("jobsvc: queue full")
	// ErrTenantQueueFull rejects when one tenant's backlog cap is reached.
	ErrTenantQueueFull = errors.New("jobsvc: tenant queue full")
	// ErrCapacity rejects when admitting the job would overcommit the
	// configured HDFS capacity.
	ErrCapacity = errors.New("jobsvc: insufficient HDFS capacity")
	// ErrStopped rejects submissions to a stopped service.
	ErrStopped = errors.New("jobsvc: service stopped")
	// ErrUnschedulable fails admitted jobs whose slot demand exceeds their
	// tenant's quota even on an idle cluster — they could never dispatch.
	ErrUnschedulable = errors.New("jobsvc: unschedulable")
)

// Config tunes the service. The zero value is usable: Defaults fills every
// unset knob.
type Config struct {
	// Tick is the scheduler period on the virtual clock.
	Tick sim.Time
	// MaxQueued caps the service-wide backlog (queued, not yet running).
	MaxQueued int
	// MaxQueuedPerTenant caps one tenant's backlog.
	MaxQueuedPerTenant int
	// MaxRunning caps concurrently dispatched jobs across all tenants,
	// bounding the proc fan-out of huge backlogs.
	MaxRunning int
	// CapacityBytes is the admission budget for HDFS: a submission whose
	// footprint would push the sum of bytes already written plus admitted
	// footprints past it is rejected. 0 disables the check.
	CapacityBytes float64
	// StarveWait is how long the fair-share head job may sit queued before
	// the scheduler preempts slots from the most over-share tenant.
	StarveWait sim.Time
	// Preemption enables starvation-triggered preemption.
	Preemption bool
	// Backfill lets jobs that fit the leftover slots jump a blocked
	// fair-share head job.
	Backfill bool
	// MaxPreemptPerTick bounds slots reclaimed per scheduler tick.
	MaxPreemptPerTick int
}

// Defaults fills unset fields with the testbed defaults.
func (c Config) Defaults() Config {
	if c.Tick == 0 {
		c.Tick = 2
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 1 << 20
	}
	if c.MaxQueuedPerTenant == 0 {
		c.MaxQueuedPerTenant = c.MaxQueued
	}
	if c.MaxRunning == 0 {
		c.MaxRunning = 32
	}
	if c.StarveWait == 0 {
		c.StarveWait = 60
	}
	if c.MaxPreemptPerTick == 0 {
		c.MaxPreemptPerTick = 2
	}
	return c
}

// Tenant is one registered account: a weight for fair share and optional
// slot quotas. Tenants live in a slice in registration order — scheduling
// never iterates a map.
type Tenant struct {
	name   string
	weight float64
	// quotaMaps/quotaReduces cap the tenant's reserved slots (0: no cap).
	quotaMaps    int
	quotaReduces int

	queue []*Job // queued jobs, submission order
	// resMaps/resReduces are the slot demands of dispatched-not-finished
	// jobs — the service-side usage signal fair share runs on (the cluster
	// ledger lags dispatch by the heartbeat delay).
	resMaps    int
	resReduces int
	running    int
	// cumMapSec/cumReduceSec integrate the reservations over scheduler
	// ticks: the tenant's accumulated service, per resource. Dominant
	// share runs on these — an instantaneous share degenerates to
	// unweighted round-robin whenever concurrency is below the tenant
	// count (a tenant holding nothing is always "most starved"), while
	// cumulative service lets weights bite at any capacity, WFQ-style.
	cumMapSec    float64
	cumReduceSec float64
	// preemptedAt is the last time this tenant lost attempts to
	// preemption. A preempted attempt restarts and holds its reservation
	// longer, inflating the tenant's apparent service — without a cooldown
	// the same tenant stays the highest-share "victim" and is preempted
	// into a stall spiral.
	preemptedAt sim.Time

	stats TenantStats
}

// Name returns the tenant's account name.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() float64 { return t.weight }

// TenantOption tunes one tenant registration.
type TenantOption func(*Tenant)

// WithQuota caps the tenant's concurrently reserved map and reduce slots.
func WithQuota(maps, reduces int) TenantOption {
	return func(t *Tenant) { t.quotaMaps, t.quotaReduces = maps, reduces }
}

// JobState is a job's position in the service lifecycle.
type JobState int

// Job lifecycle states, in order.
const (
	Queued JobState = iota
	Running
	Done
	Failed
)

// String names the state for reports.
func (st JobState) String() string {
	switch st {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	default:
		return "failed"
	}
}

// Job is one admitted submission.
type Job struct {
	id       int
	seq      int
	tenant   *Tenant
	spec     workloads.Spec
	priority int
	deadline sim.Time
	collect  bool

	// boost is added to the job's cluster-level priority when the
	// scheduler dispatches it via preemption: the reclaimed slots must go
	// to this job's tasks, not back to the victim's requeued ones.
	boost int

	state     JobState
	submitted sim.Time
	started   sim.Time
	finished  sim.Time
	result    workloads.Result
	err       error
	done      *sim.Done
	span      *obs.Span

	demMaps    int // demand clamped to cluster totals at dispatch
	demReduces int
}

// Ticket is the caller's handle on an admitted job.
type Ticket struct{ j *Job }

// ID returns the service-wide job id (admission order).
func (tk *Ticket) ID() int { return tk.j.id }

// State returns the job's current lifecycle state.
func (tk *Ticket) State() JobState { return tk.j.state }

// Wait blocks until the job finishes, then returns its result and error.
// Like mapreduce.Handle.Wait it is idempotent: every call after completion
// returns the same stored result and error.
func (tk *Ticket) Wait(p *sim.Proc) (workloads.Result, error) {
	tk.j.done.Wait(p)
	return tk.j.result, tk.j.err
}

// Err returns the job's terminal error without blocking (nil while in
// flight or on success).
func (tk *Ticket) Err() error { return tk.j.err }

// SubmitOption tunes one submission.
type SubmitOption func(*Job)

// WithPriority raises (or, negative, lowers) the job's priority within its
// tenant's queue and inside the MapReduce cluster's task queue.
func WithPriority(pr int) SubmitOption {
	return func(j *Job) { j.priority = pr }
}

// WithDeadline sets the virtual-time deadline the scheduler orders by
// (earliest slack first) and the stats report misses against.
func WithDeadline(d sim.Time) SubmitOption {
	return func(j *Job) { j.deadline = d }
}

// WithoutOutput drops the job's collected output records, for backlogs
// where only the stats matter.
func WithoutOutput() SubmitOption {
	return func(j *Job) { j.collect = false }
}

// Service is the job service. Construct with New, register tenants, Start
// the scheduler, Submit from any proc, then Drain and Stop.
type Service struct {
	pl    *core.Platform
	cfg   Config
	instr *instruments

	tenants []*Tenant
	// byName resolves tenant names; lookup only, never iterated.
	byName map[string]*Tenant

	queued         int
	running        int
	resMaps        int
	resReduces     int
	nextID         int
	committedBytes float64
	dispatched     []*Job // running jobs, dispatch order (for completions)

	backfills   int
	preemptions int
	// schedStart is the virtual time the scheduler first ticked; jobs
	// staged before Start() measure starvation from here, not from their
	// (arbitrarily earlier) submission.
	schedStart    sim.Time
	schedStartSet bool
	started       bool
	stopped       bool
	schedRunning  bool
}

// New builds a service over the platform's MapReduce cluster.
func New(pl *core.Platform, cfg Config) *Service {
	s := &Service{
		pl:     pl,
		cfg:    cfg.Defaults(),
		byName: make(map[string]*Tenant),
	}
	s.instr = newInstruments(pl.Obs)
	return s
}

// Register adds a tenant account with the given fair-share weight.
// Registration order is part of the deterministic schedule; register all
// tenants before Start.
func (s *Service) Register(name string, weight float64, opts ...TenantOption) (*Tenant, error) {
	if weight <= 0 {
		return nil, fmt.Errorf("jobsvc: tenant %q weight %v must be positive", name, weight)
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("jobsvc: tenant %q already registered", name)
	}
	t := &Tenant{name: name, weight: weight}
	for _, o := range opts {
		o(t)
	}
	t.stats.Name = name
	t.stats.Weight = weight
	s.tenants = append(s.tenants, t)
	s.byName[name] = t
	return t, nil
}

// Tenants returns the accounts in registration order.
func (s *Service) Tenants() []*Tenant { return s.tenants }

// Submit admits spec for the tenant, staging its input on the calling proc
// (serially per submission, so concurrent jobs never race over shared
// staging) and enqueuing it for the scheduler. Admission rejects — queue
// caps, capacity — return an error wrapping one of the Err sentinels.
func (s *Service) Submit(p *sim.Proc, tenant string, spec workloads.Spec, opts ...SubmitOption) (*Ticket, error) {
	if s.stopped {
		return nil, fmt.Errorf("%w: %s %s", ErrStopped, tenant, spec.Workload())
	}
	t, ok := s.byName[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if s.queued >= s.cfg.MaxQueued {
		t.stats.Rejected++
		s.instr.rejected.Inc()
		s.eventf("reject %s/%s: queue full (%d)", tenant, spec.Workload(), s.queued)
		return nil, fmt.Errorf("%w: %d queued", ErrQueueFull, s.queued)
	}
	if len(t.queue) >= s.cfg.MaxQueuedPerTenant {
		t.stats.Rejected++
		s.instr.rejected.Inc()
		s.eventf("reject %s/%s: tenant queue full (%d)", tenant, spec.Workload(), len(t.queue))
		return nil, fmt.Errorf("%w: %s has %d queued", ErrTenantQueueFull, tenant, len(t.queue))
	}
	if s.cfg.CapacityBytes > 0 {
		used := s.pl.DFS.BytesWritten() + s.committedBytes
		if used+spec.Bytes() > s.cfg.CapacityBytes {
			t.stats.Rejected++
			s.instr.rejected.Inc()
			s.eventf("reject %s/%s: capacity %.3g+%.3g > %.3g",
				tenant, spec.Workload(), used, spec.Bytes(), s.cfg.CapacityBytes)
			return nil, fmt.Errorf("%w: %.3g of %.3g bytes committed",
				ErrCapacity, used, s.cfg.CapacityBytes)
		}
		s.committedBytes += spec.Bytes()
	}
	if err := spec.Stage(p, s.pl); err != nil {
		return nil, fmt.Errorf("jobsvc: staging %s/%s: %w", tenant, spec.Workload(), err)
	}
	s.nextID++
	j := &Job{
		id:        s.nextID,
		seq:       s.nextID,
		tenant:    t,
		spec:      spec,
		collect:   true,
		state:     Queued,
		submitted: s.pl.Engine.Now(),
		done:      sim.NewDone(s.pl.Engine),
	}
	for _, o := range opts {
		o(j)
	}
	t.queue = append(t.queue, j)
	s.queued++
	t.stats.Submitted++
	s.instr.submitted.Inc()
	s.instr.queueDepth.Set(float64(s.queued))
	s.eventf("admit %s/%s as job %d", tenant, spec.Workload(), j.id)
	s.ensureSched()
	return &Ticket{j: j}, nil
}

// QueueDepth returns the service-wide queued job count.
func (s *Service) QueueDepth() int { return s.queued }

// RunningJobs returns the dispatched-not-finished job count.
func (s *Service) RunningJobs() int { return s.running }

// Drain blocks until every admitted job has finished.
func (s *Service) Drain(p *sim.Proc) {
	for s.queued > 0 || s.running > 0 {
		p.Sleep(s.cfg.Tick)
	}
}

// Stop ends the scheduler daemon after its current tick. A stopped service
// rejects further submissions but lets in-flight jobs finish.
func (s *Service) Stop() { s.stopped = true }

// eventf mirrors a service decision to the obs event log and, when a test
// harness captures it, the engine trace — admission, dispatch, preemption
// and backfill all leave an auditable deterministic record.
func (s *Service) eventf(format string, args ...any) {
	s.pl.Obs.Eventf(kindJobsvc, format, args...)
	s.pl.Engine.Tracef("jobsvc: "+format, args...)
}
