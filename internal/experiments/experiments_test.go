package experiments

import (
	"strings"
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/sim"
)

func quickCfg() Config {
	// Three repetitions, like the paper's protocol: single runs of small
	// jobs are sensitive to placement randomness.
	return Config{Seed: 1, Reps: 3, Nodes: 16, Quick: true}
}

func find2(t *testing.T, r Fig2Result, size float64, layout core.Layout) sim.Time {
	t.Helper()
	for _, p := range r.Points {
		if p.SizeMB == size && p.Layout == layout {
			return p.Runtime
		}
	}
	t.Fatalf("missing fig2 point %v/%v", size, layout)
	return 0
}

func TestTable1ContainsAllBenchmarks(t *testing.T) {
	out := Table1()
	for _, name := range []string{"Wordcount", "MRBench", "TeraSort", "DFSIOTest"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	res, err := RunFig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sizes := Fig2Sizes(true)
	small, large := sizes[0], sizes[len(sizes)-1]
	// Runtime grows with input size.
	if find2(t, res, large, core.Normal) <= find2(t, res, small, core.Normal) {
		t.Fatal("runtime does not grow with input size")
	}
	// The layouts track each other closely for this cache-friendly job
	// (the paper notes they are "very similar" until the network
	// saturates); cross-domain must never win by a meaningful margin.
	gapSmall := find2(t, res, small, core.CrossDomain) / find2(t, res, small, core.Normal)
	gapLarge := find2(t, res, large, core.CrossDomain) / find2(t, res, large, core.Normal)
	if gapSmall < 0.9 || gapLarge < 0.9 {
		t.Fatalf("cross-domain meaningfully faster than normal: small=%v large=%v", gapSmall, gapLarge)
	}
	if !strings.Contains(res.Table(), "Slowdown") {
		t.Fatal("table missing")
	}
}

func TestFig3Shapes(t *testing.T) {
	res, err := RunFig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(points []Fig3Point, key int, layout core.Layout, byReduce bool) sim.Time {
		for _, p := range points {
			k := p.Maps
			if byReduce {
				k = p.Reduces
			}
			if k == key && p.Layout == layout {
				return p.Runtime
			}
		}
		t.Fatalf("missing fig3 point %d/%v", key, layout)
		return 0
	}
	maps := Fig3MapCounts(true)
	if get(res.MapSweep, maps[len(maps)-1], core.Normal, false) <= get(res.MapSweep, maps[0], core.Normal, false) {
		t.Fatal("MRBench runtime does not grow with maps")
	}
	reduces := Fig3ReduceCounts(true)
	if get(res.ReduceSweep, reduces[len(reduces)-1], core.Normal, true) <= get(res.ReduceSweep, reduces[0], core.Normal, true) {
		t.Fatal("MRBench runtime does not grow with reduces")
	}
	// Cross-domain at the top of the sweep must not win meaningfully (the
	// filer serialises this job's data path in both layouts).
	top := maps[len(maps)-1]
	if get(res.MapSweep, top, core.CrossDomain, false) < get(res.MapSweep, top, core.Normal, false)*0.9 {
		t.Fatal("cross-domain MRBench meaningfully faster (map sweep)")
	}
}

func TestFig4aShapes(t *testing.T) {
	res, err := RunFig4a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(size float64, layout core.Layout) Fig4aPoint {
		for _, p := range res.Points {
			if p.SizeMB == size && p.Layout == layout {
				return p
			}
		}
		t.Fatalf("missing fig4a point %v/%v", size, layout)
		return Fig4aPoint{}
	}
	sizes := Fig4aSizes(true)
	small, large := get(sizes[0], core.Normal), get(sizes[len(sizes)-1], core.Normal)
	if large.SortTime <= small.SortTime || large.GenTime <= small.GenTime {
		t.Fatalf("terasort does not scale with size: %+v vs %+v", small, large)
	}
	// The knee: going 10x in size costs far more than 10/4x in sort time
	// once reduce-side merges spill (data outgrows the sort buffers).
	if large.SortTime < 2.5*small.SortTime {
		t.Fatalf("no spill knee: sort %v -> %v", small.SortTime, large.SortTime)
	}
	// Generation is filer-write-bound in both layouts (parity); neither
	// phase may be meaningfully faster cross-domain.
	x := get(sizes[len(sizes)-1], core.CrossDomain)
	if x.GenTime < large.GenTime*0.95 || x.SortTime < large.SortTime*0.9 {
		t.Fatalf("cross-domain terasort meaningfully faster: gen %.1f/%.1f sort %.1f/%.1f",
			x.GenTime, large.GenTime, x.SortTime, large.SortTime)
	}
}

func TestFig4bShapes(t *testing.T) {
	res, err := RunFig4b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(kind string, layout core.Layout) float64 {
		for _, p := range res.Points {
			if p.Kind == kind && p.Layout == layout {
				return p.ThroughputMBps
			}
		}
		t.Fatalf("missing fig4b point %s/%v", kind, layout)
		return 0
	}
	if get("read", core.Normal) <= get("write", core.Normal) {
		t.Fatal("read throughput not above write")
	}
	if get("read", core.CrossDomain) >= get("read", core.Normal)*0.8 {
		t.Fatal("cross-domain read not clearly slower")
	}
	if get("write", core.CrossDomain) > get("write", core.Normal)*1.02 {
		t.Fatal("cross-domain write faster than normal")
	}
}

func TestFig5AndTable2Shapes(t *testing.T) {
	cfg := quickCfg()
	cfg.Nodes = 4 // keep the busy scenario tractable in a unit test
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idle1024 := res.Runs["idle.1024MB"]
	idle512 := res.Runs["idle.512MB"]
	wc1024 := res.Runs["wordcount.1024MB"]
	// (i) larger memory -> longer migration; downtime uncorrelated.
	if idle1024.OverallTime <= idle512.OverallTime {
		t.Fatal("migration time does not grow with memory")
	}
	// (ii) loaded cluster migrates slower with much larger downtime.
	if wc1024.OverallTime <= idle1024.OverallTime {
		t.Fatal("busy migration not slower than idle")
	}
	if wc1024.OverallDowntime <= 3*idle1024.OverallDowntime {
		t.Fatalf("busy downtime (%v) not much larger than idle (%v)",
			wc1024.OverallDowntime, idle1024.OverallDowntime)
	}
	// (iii) downtime varies across loaded nodes.
	if wc1024.MaxDowntime() <= wc1024.MinDowntime() {
		t.Fatal("no downtime variance under load")
	}
	if !strings.Contains(res.Table2(), "Overall Downtime") {
		t.Fatal("table 2 missing")
	}
	if !strings.Contains(res.PerVMTable(), "Downtime (ms)") {
		t.Fatal("per-VM table missing")
	}
}

func TestFig6RuntimeGrowsWithClusterSize(t *testing.T) {
	res, err := RunFig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sizes := ClusterSizes(true)
	small, large := sizes[0], sizes[len(sizes)-1]
	for _, algo := range []string{"canopy", "dirichlet", "meanshift"} {
		var tSmall, tLarge sim.Time
		for _, p := range res.Points {
			if p.Algorithm == algo && p.Nodes == small {
				tSmall = p.Runtime
			}
			if p.Algorithm == algo && p.Nodes == large {
				tLarge = p.Runtime
			}
		}
		if tLarge <= tSmall {
			t.Fatalf("%s: %d-node runtime (%v) not above %d-node (%v)", algo, large, tLarge, small, tSmall)
		}
	}
}

func TestFig7RelativelySmooth(t *testing.T) {
	res, err := RunFig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string][]sim.Time{}
	for _, p := range res.Points {
		algos[p.Algorithm] = append(algos[p.Algorithm], p.Runtime)
	}
	if len(algos) != 6 {
		t.Fatalf("algorithms = %d, want 6", len(algos))
	}
	for algo, times := range algos {
		min, max := times[0], times[0]
		for _, x := range times {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		// "Performs relatively smooth as the size scales": bounded spread.
		if max > 3*min {
			t.Fatalf("%s varies too much across cluster sizes: %v..%v", algo, min, max)
		}
	}
}

func TestFig8ProducesAllPanels(t *testing.T) {
	res, err := RunFig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"sample-data", "canopy", "dirichlet", "fuzzykmeans", "kmeans", "meanshift", "minhash"}
	if len(res.Order) != len(want) {
		t.Fatalf("panels = %v", res.Order)
	}
	for _, name := range want {
		svg := res.SVGs[name]
		if !strings.HasPrefix(svg, "<svg") {
			t.Fatalf("panel %s missing or malformed", name)
		}
	}
	// Iterative panels must show convergence colours.
	if !strings.Contains(res.SVGs["kmeans"], "#d62728") {
		t.Fatal("kmeans panel lacks the bold red final iteration")
	}
}

func TestJobsvcStudyShapes(t *testing.T) {
	res, err := RunJobsvc(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []JobsvcShape{res.Mixed, res.Uniform} {
		if s.Result.Admitted != s.Opts.Jobs || s.Result.Rejected != 0 {
			t.Fatalf("%s: admitted %d rejected %d of %d jobs", s.Name, s.Result.Admitted, s.Result.Rejected, s.Opts.Jobs)
		}
	}
	if j := res.Uniform.Result.Jain; j < 0.9 {
		t.Fatalf("uniform-shape Jain index = %.3f, want >= 0.9", j)
	}
	tbl := res.Table()
	for _, want := range []string{"mixed", "uniform", "Jain"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if !strings.Contains(res.MetricsLines(), "jobsvc-bench shape=uniform") {
		t.Fatalf("metrics lines malformed:\n%s", res.MetricsLines())
	}
}
