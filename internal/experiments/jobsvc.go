package experiments

import (
	"fmt"

	"vhadoop/internal/jobsvc"
	"vhadoop/internal/jobsvc/backlog"
)

// Job-service study -----------------------------------------------------------
//
// The paper's evaluation runs one benchmark at a time against a dedicated
// cluster; the job-service study instead measures the platform as a shared
// multi-tenant facility. Two backlog shapes run through the fair-share
// scheduler:
//
//   - mixed: the acceptance-scale backlog (asymmetric wordcount sizes,
//     DFSIO backfill fodder, priorities and deadlines). It reports the
//     throughput numbers — makespan and p99 job wait.
//   - uniform: every tenant submits identical jobs, so any slot-share skew
//     is the scheduler's own doing. It reports the fairness number — the
//     weighted Jain index over contended reserved slot-seconds.

// JobsvcShape is one measured backlog shape.
type JobsvcShape struct {
	Name   string
	Opts   backlog.Options
	Result backlog.Result
}

// JobsvcResult is the full job-service study.
type JobsvcResult struct {
	Mixed   JobsvcShape
	Uniform JobsvcShape
}

// jobsvcBacklog builds the study's backlog options for a shape.
func jobsvcBacklog(cfg Config, uniform bool) backlog.Options {
	o := backlog.Options{
		Nodes:   16,
		Seed:    42,
		Shards:  cfg.Shards,
		Tenants: 100,
		Jobs:    1000,
		Uniform: uniform,
		Config: jobsvc.Config{
			Tick: 2, Backfill: true, Preemption: true,
			StarveWait: 40, MaxPreemptPerTick: 2,
		},
	}
	if cfg.Quick {
		o.Nodes = 8
		o.Tenants = 20
		o.Jobs = 200
	}
	if cfg.Seed != 0 {
		o.Seed = cfg.Seed
	}
	if cfg.Nodes > 1 {
		o.Nodes = cfg.Nodes
	}
	return o
}

// RunJobsvc runs both backlog shapes. The backlog is fully deterministic
// for a fixed Config, so no repetition averaging applies — reruns
// reproduce the same artifacts byte-for-byte.
func RunJobsvc(cfg Config) (JobsvcResult, error) {
	var res JobsvcResult
	for _, s := range []struct {
		name    string
		uniform bool
		dst     *JobsvcShape
	}{
		{"mixed", false, &res.Mixed},
		{"uniform", true, &res.Uniform},
	} {
		opts := jobsvcBacklog(cfg, s.uniform)
		r, err := backlog.Run(opts)
		if err != nil {
			return JobsvcResult{}, fmt.Errorf("jobsvc %s backlog: %w", s.name, err)
		}
		*s.dst = JobsvcShape{Name: s.name, Opts: opts, Result: r}
	}
	return res, nil
}

// Table renders both shapes side by side.
func (r JobsvcResult) Table() string {
	rows := make([][]string, 0, 2)
	for _, s := range []JobsvcShape{r.Mixed, r.Uniform} {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Opts.Tenants),
			fmt.Sprintf("%d", s.Opts.Jobs),
			fmt.Sprintf("%d", s.Result.Admitted),
			secs(s.Result.Makespan),
			secs(s.Result.P99Wait),
			fmt.Sprintf("%.3f", s.Result.Jain),
			fmt.Sprintf("%d", s.Result.Backfills),
			fmt.Sprintf("%d", s.Result.Preemptions),
		})
	}
	return table(
		[]string{"Shape", "Tenants", "Jobs", "Admitted", "Makespan (s)", "p99 wait (s)", "Jain", "Backfills", "Preempts"},
		rows,
	)
}

// MetricsLines renders one machine-parsable line per shape; the bench
// smoke script gates these against the BENCH_PR10 pin.
func (r JobsvcResult) MetricsLines() string {
	var out string
	for _, s := range []JobsvcShape{r.Mixed, r.Uniform} {
		out += fmt.Sprintf(
			"jobsvc-bench shape=%s tenants=%d jobs=%d admitted=%d rejected=%d makespan_s=%.2f p99_wait_s=%.2f jain=%.4f backfills=%d preemptions=%d\n",
			s.Name, s.Opts.Tenants, s.Opts.Jobs, s.Result.Admitted, s.Result.Rejected,
			float64(s.Result.Makespan), float64(s.Result.P99Wait), s.Result.Jain,
			s.Result.Backfills, s.Result.Preemptions)
	}
	return out
}
