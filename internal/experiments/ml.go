package experiments

import (
	"fmt"

	"vhadoop/internal/clustering"
	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/sim"
	"vhadoop/internal/viz"
)

// ClusterSizes is the virtual-cluster-size axis of Figures 6 and 7.
func ClusterSizes(quick bool) []int {
	if quick {
		return []int{2, 8}
	}
	return []int{2, 4, 8, 16}
}

// MLPoint is one bar of Figure 6 or 7.
type MLPoint struct {
	Algorithm  string
	Nodes      int
	Runtime    sim.Time
	Centers    int
	Iterations int
}

// MLResult is a clustering runtime sweep.
type MLResult struct {
	Dataset string
	Points  []MLPoint
}

// Table renders runtimes as algorithms x cluster sizes.
func (r MLResult) Table() string {
	sizes := map[int]bool{}
	algos := []string{}
	seenAlgo := map[string]bool{}
	byKey := map[string]sim.Time{}
	var sizeList []int
	for _, p := range r.Points {
		byKey[fmt.Sprintf("%s/%d", p.Algorithm, p.Nodes)] = p.Runtime
		if !seenAlgo[p.Algorithm] {
			seenAlgo[p.Algorithm] = true
			algos = append(algos, p.Algorithm)
		}
		if !sizes[p.Nodes] {
			sizes[p.Nodes] = true
			sizeList = append(sizeList, p.Nodes)
		}
	}
	header := []string{"Algorithm"}
	for _, n := range sizeList {
		header = append(header, fmt.Sprintf("%d nodes (s)", n))
	}
	rows := make([][]string, 0, len(algos))
	for _, a := range algos {
		row := []string{a}
		for _, n := range sizeList {
			row = append(row, secs(byKey[fmt.Sprintf("%s/%d", a, n)]))
		}
		rows = append(rows, row)
	}
	return table(header, rows)
}

// mlAlgo runs one algorithm through a fresh driver and returns the result.
type mlAlgo struct {
	name string
	run  func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error)
}

// controlChartAlgos are Figure 6's three algorithms with Mahout's
// synthetic-control example parameters (T1=80/T2=55 canopy; mean shift with
// the example's bandwidth; Dirichlet with 10 candidate models).
func controlChartAlgos() []mlAlgo {
	return []mlAlgo{
		{name: "canopy", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.CanopyMR(p, d, clustering.CanopyOptions{T1: 80, T2: 55, Distance: clustering.Euclidean})
		}},
		{name: "dirichlet", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.DirichletMR(p, d, clustering.DefaultDirichletOptions(10))
		}},
		{name: "meanshift", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.MeanShiftMR(p, d, clustering.DefaultMeanShiftOptions(47.6, 20))
		}},
	}
}

// displayAlgos are Figure 7/8's six algorithms with the DisplayClustering
// demo parameters on the 2-D mixture.
func displayAlgos() []mlAlgo {
	kmeansInit := func(d *clustering.Driver) []clustering.Vector { return d.InitCenters(3) }
	return []mlAlgo{
		{name: "canopy", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.CanopyMR(p, d, clustering.CanopyOptions{T1: 3, T2: 1.5, Distance: clustering.Euclidean})
		}},
		{name: "dirichlet", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.DirichletMR(p, d, clustering.DefaultDirichletOptions(10))
		}},
		{name: "fuzzykmeans", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			opts := clustering.DefaultFuzzyKMeansOptions(3)
			opts.M = 3
			return clustering.FuzzyKMeansMR(p, d, kmeansInit(d), opts)
		}},
		{name: "kmeans", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.KMeansMR(p, d, kmeansInit(d), clustering.DefaultKMeansOptions(3))
		}},
		{name: "meanshift", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.MeanShiftMR(p, d, clustering.DefaultMeanShiftOptions(2, 1))
		}},
		{name: "minhash", run: func(p *sim.Proc, d *clustering.Driver) (clustering.Result, error) {
			return clustering.MinHashMR(p, d, clustering.DefaultMinHashOptions())
		}},
	}
}

// runMLPoint provisions a platform of the given size, loads the vectors and
// runs one algorithm.
func runMLPoint(cfg Config, nodes int, seed int64, vectors []clustering.Vector, algo mlAlgo) (clustering.Result, error) {
	opts := cfg.platformOptions(core.Normal, seed)
	opts.Nodes = nodes
	pl := core.MustNewPlatform(opts)
	d := clustering.NewDriver(pl, "/ml/input")
	var out clustering.Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, vectors); err != nil {
			return err
		}
		var err error
		out, err = algo.run(p, d)
		return err
	})
	return out, err
}

// RunFig6 measures canopy, dirichlet and mean shift on the Synthetic
// Control Chart data set across virtual cluster sizes.
func RunFig6(cfg Config) (MLResult, error) {
	res := MLResult{Dataset: "synthetic-control"}
	perClass := 100
	if cfg.Quick {
		perClass = 30
	}
	for _, algo := range controlChartAlgos() {
		for _, nodes := range ClusterSizes(cfg.Quick) {
			var sum sim.Time
			var last clustering.Result
			for rep := 0; rep < cfg.reps(); rep++ {
				seed := cfg.Seed + int64(rep)*1000
				series := datasets.ControlChart(sim.New(seed).Rand(),
					datasets.ControlChartOptions{PerClass: perClass, Length: 60})
				vecs := clustering.FromFloats(datasets.ControlVectors(series))
				out, err := runMLPoint(cfg, nodes, seed, vecs, algo)
				if err != nil {
					return res, fmt.Errorf("fig6 %s n=%d: %w", algo.name, nodes, err)
				}
				sum += out.Runtime
				last = out
			}
			res.Points = append(res.Points, MLPoint{
				Algorithm:  algo.name,
				Nodes:      nodes,
				Runtime:    sum / sim.Time(cfg.reps()),
				Centers:    len(last.Centers),
				Iterations: last.Iterations,
			})
		}
	}
	return res, nil
}

// RunFig7 measures all six algorithms on the 1000-sample DisplayClustering
// mixture across virtual cluster sizes.
func RunFig7(cfg Config) (MLResult, error) {
	res := MLResult{Dataset: "display-clustering"}
	for _, algo := range displayAlgos() {
		for _, nodes := range ClusterSizes(cfg.Quick) {
			var sum sim.Time
			var last clustering.Result
			for rep := 0; rep < cfg.reps(); rep++ {
				seed := cfg.Seed + int64(rep)*1000
				pts, _ := datasets.DisplayClusteringSample(sim.New(seed).Rand())
				vecs := clustering.FromFloats(pts)
				out, err := runMLPoint(cfg, nodes, seed, vecs, algo)
				if err != nil {
					return res, fmt.Errorf("fig7 %s n=%d: %w", algo.name, nodes, err)
				}
				sum += out.Runtime
				last = out
			}
			res.Points = append(res.Points, MLPoint{
				Algorithm:  algo.name,
				Nodes:      nodes,
				Runtime:    sum / sim.Time(cfg.reps()),
				Centers:    len(last.Centers),
				Iterations: last.Iterations,
			})
		}
	}
	return res, nil
}

// Fig8Result carries the rendered convergence visualisations.
type Fig8Result struct {
	// SVGs maps panel name (sample-data plus each algorithm) to an SVG
	// document, in the paper's panel order.
	SVGs  map[string]string
	Order []string
}

// RunFig8 runs the six algorithms once on the standard mixture (8-node
// cluster) and renders each one's convergence as SVG, plus the raw sample
// panel.
func RunFig8(cfg Config) (Fig8Result, error) {
	res := Fig8Result{SVGs: make(map[string]string)}
	pts, _ := datasets.DisplayClusteringSample(sim.New(cfg.Seed).Rand())
	vecs := clustering.FromFloats(pts)

	res.Order = append(res.Order, "sample-data")
	res.SVGs["sample-data"] = viz.RenderClusters(vecs, clustering.Result{}, viz.DefaultOptions("Sample Data"))

	for _, algo := range displayAlgos() {
		out, err := runMLPoint(cfg, 8, cfg.Seed, vecs, algo)
		if err != nil {
			return res, fmt.Errorf("fig8 %s: %w", algo.name, err)
		}
		res.Order = append(res.Order, algo.name)
		res.SVGs[algo.name] = viz.RenderClusters(vecs, out, viz.DefaultOptions(algo.name))
	}
	return res, nil
}
