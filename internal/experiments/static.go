package experiments

import (
	"fmt"

	"vhadoop/internal/core"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// Table I ------------------------------------------------------------------

// Table1 reproduces the benchmark inventory verbatim.
func Table1() string {
	return table(
		[]string{"Name", "Category", "Description"},
		[][]string{
			{"Wordcount", "MapReduce", "Reads text files and counts how often words occur"},
			{"MRBench", "MapReduce", "Checks whether small job runs are responsive and running efficiently on the cluster"},
			{"TeraSort", "MapReduce & HDFS", "Sorts the data as fast as possible, combining testing the HDFS and MapReduce layers"},
			{"DFSIOTest", "HDFS", "Is a read and write test for HDFS"},
		},
	)
}

// Figure 2 ------------------------------------------------------------------

// Fig2Point is one bar of Figure 2.
type Fig2Point struct {
	SizeMB  float64
	Layout  core.Layout
	Runtime sim.Time
}

// Fig2Result is the Wordcount normal-vs-cross-domain sweep.
type Fig2Result struct {
	Points []Fig2Point
}

// Table renders the figure's series as rows (sizes) x columns (layouts).
func (r Fig2Result) Table() string {
	byKey := map[string]sim.Time{}
	var sizes []float64
	seen := map[float64]bool{}
	for _, p := range r.Points {
		byKey[fmt.Sprintf("%v/%v", p.SizeMB, p.Layout)] = p.Runtime
		if !seen[p.SizeMB] {
			seen[p.SizeMB] = true
			sizes = append(sizes, p.SizeMB)
		}
	}
	rows := make([][]string, 0, len(sizes))
	for _, s := range sizes {
		n := byKey[fmt.Sprintf("%v/%v", s, core.Normal)]
		x := byKey[fmt.Sprintf("%v/%v", s, core.CrossDomain)]
		rows = append(rows, []string{
			fmt.Sprintf("%.0f MB", s), secs(n), secs(x), fmt.Sprintf("%.2fx", x/n),
		})
	}
	return table([]string{"Input", "Normal (s)", "Cross-domain (s)", "Slowdown"}, rows)
}

// Fig2Sizes returns the input sweep in MB.
func Fig2Sizes(quick bool) []float64 {
	if quick {
		return []float64{128, 1024}
	}
	return []float64{64, 128, 256, 512, 1024}
}

// RunFig2 measures Wordcount runtime over input size for both layouts.
func RunFig2(cfg Config) (Fig2Result, error) {
	var res Fig2Result
	for _, size := range Fig2Sizes(cfg.Quick) {
		for _, layout := range layouts() {
			size, layout := size, layout
			rt, err := cfg.avg(func(seed int64) (float64, error) {
				pl := core.MustNewPlatform(cfg.platformOptions(layout, seed))
				var out workloads.WordcountResult
				_, err := pl.Run(func(p *sim.Proc) error {
					var err error
					out, err = workloads.RunWordcount(p, pl, "/wc/in", size*1e6, 4, true)
					return err
				})
				return out.Stats.Runtime, err
			})
			if err != nil {
				return res, fmt.Errorf("fig2 %v %v: %w", size, layout, err)
			}
			res.Points = append(res.Points, Fig2Point{SizeMB: size, Layout: layout, Runtime: rt})
		}
	}
	return res, nil
}

// Figure 3 ------------------------------------------------------------------

// Fig3Point is one bar of Figure 3.
type Fig3Point struct {
	Maps, Reduces int
	Layout        core.Layout
	Runtime       sim.Time
}

// Fig3Result covers both panels: (a) map sweep at reduce=1, (b) reduce sweep
// at map=15.
type Fig3Result struct {
	MapSweep    []Fig3Point
	ReduceSweep []Fig3Point
}

func fig3Table(points []Fig3Point, varying string) string {
	rows := make([][]string, 0, len(points)/2)
	byKey := map[string]sim.Time{}
	var keys []int
	seen := map[int]bool{}
	for _, p := range points {
		k := p.Maps
		if varying == "reduces" {
			k = p.Reduces
		}
		byKey[fmt.Sprintf("%d/%v", k, p.Layout)] = p.Runtime
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		n := byKey[fmt.Sprintf("%d/%v", k, core.Normal)]
		x := byKey[fmt.Sprintf("%d/%v", k, core.CrossDomain)]
		rows = append(rows, []string{
			fmt.Sprintf("%d", k), secs(n), secs(x), fmt.Sprintf("%.2fx", x/n),
		})
	}
	return table([]string{varying, "Normal (s)", "Cross-domain (s)", "Slowdown"}, rows)
}

// Table renders both panels.
func (r Fig3Result) Table() string {
	return "Figure 3(a): MRBench, reduce=1, maps scaling\n" + fig3Table(r.MapSweep, "maps") +
		"\nFigure 3(b): MRBench, map=15, reduces scaling\n" + fig3Table(r.ReduceSweep, "reduces")
}

// Fig3MapCounts returns panel (a)'s sweep.
func Fig3MapCounts(quick bool) []int {
	if quick {
		return []int{1, 4}
	}
	return []int{1, 2, 3, 4, 5, 6}
}

// Fig3ReduceCounts returns panel (b)'s sweep.
func Fig3ReduceCounts(quick bool) []int {
	if quick {
		return []int{1, 4}
	}
	return []int{1, 2, 3, 4, 5, 6}
}

func runMRBenchPoint(cfg Config, layout core.Layout, maps, reduces int) (sim.Time, error) {
	rt, err := cfg.avg(func(seed int64) (float64, error) {
		pl := core.MustNewPlatform(cfg.platformOptions(layout, seed))
		var out workloads.MRBenchResult
		_, err := pl.Run(func(p *sim.Proc) error {
			opts := workloads.DefaultMRBenchOptions()
			opts.Maps = maps
			opts.Reduces = reduces
			var err error
			out, err = workloads.RunMRBench(p, pl, opts)
			return err
		})
		return out.AvgTime, err
	})
	return rt, err
}

// RunFig3 measures MRBench under map and reduce scaling for both layouts.
func RunFig3(cfg Config) (Fig3Result, error) {
	var res Fig3Result
	for _, m := range Fig3MapCounts(cfg.Quick) {
		for _, layout := range layouts() {
			rt, err := runMRBenchPoint(cfg, layout, m, 1)
			if err != nil {
				return res, fmt.Errorf("fig3a maps=%d %v: %w", m, layout, err)
			}
			res.MapSweep = append(res.MapSweep, Fig3Point{Maps: m, Reduces: 1, Layout: layout, Runtime: rt})
		}
	}
	for _, r := range Fig3ReduceCounts(cfg.Quick) {
		for _, layout := range layouts() {
			rt, err := runMRBenchReducePoint(cfg, layout, 15, r)
			if err != nil {
				return res, fmt.Errorf("fig3b reduces=%d %v: %w", r, layout, err)
			}
			res.ReduceSweep = append(res.ReduceSweep, Fig3Point{Maps: 15, Reduces: r, Layout: layout, Runtime: rt})
		}
	}
	return res, nil
}

// runMRBenchReducePoint uses MRBench's classic tiny input (the tool's
// default is literally one generated line), where job runtime is framework
// overhead: task JVM setup, heartbeat-quantised scheduling and the
// jobtracker's one-reduce-per-round ramp-up.
func runMRBenchReducePoint(cfg Config, layout core.Layout, maps, reduces int) (sim.Time, error) {
	return cfg.avg(func(seed int64) (float64, error) {
		pl := core.MustNewPlatform(cfg.platformOptions(layout, seed))
		var out workloads.MRBenchResult
		_, err := pl.Run(func(p *sim.Proc) error {
			opts := workloads.DefaultMRBenchOptions()
			opts.Maps = maps
			opts.Reduces = reduces
			opts.BytesPerMap = 2e6
			opts.LinesPerMap = 16
			var err error
			out, err = workloads.RunMRBench(p, pl, opts)
			return err
		})
		return out.AvgTime, err
	})
}

// Figure 4 ------------------------------------------------------------------

// Fig4aPoint is one TeraSort measurement.
type Fig4aPoint struct {
	SizeMB   float64
	Layout   core.Layout
	GenTime  sim.Time
	SortTime sim.Time
}

// Fig4aResult is the TeraSort size sweep.
type Fig4aResult struct {
	Points []Fig4aPoint
}

// Table renders generation and sort times per size and layout.
func (r Fig4aResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f MB", p.SizeMB), p.Layout.String(),
			secs(p.GenTime), secs(p.SortTime),
		})
	}
	return table([]string{"Data", "Layout", "TeraGen (s)", "TeraSort (s)"}, rows)
}

// Fig4aSizes returns the data sweep in MB.
func Fig4aSizes(quick bool) []float64 {
	if quick {
		return []float64{100, 1000}
	}
	return []float64{100, 200, 400, 600, 800, 1000}
}

// RunFig4a measures TeraGen and TeraSort times over data size.
func RunFig4a(cfg Config) (Fig4aResult, error) {
	var res Fig4aResult
	for _, size := range Fig4aSizes(cfg.Quick) {
		for _, layout := range layouts() {
			var genSum, sortSum sim.Time
			for rep := 0; rep < cfg.reps(); rep++ {
				pl := core.MustNewPlatform(cfg.platformOptions(layout, cfg.Seed+int64(rep)*1000))
				var out workloads.TeraResult
				_, err := pl.Run(func(p *sim.Proc) error {
					var err error
					out, err = workloads.RunTeraSort(p, pl, workloads.DefaultTeraOptions(size*1e6))
					return err
				})
				if err != nil {
					return res, fmt.Errorf("fig4a %v %v: %w", size, layout, err)
				}
				if !out.Validated {
					return res, fmt.Errorf("fig4a %v %v: output failed validation", size, layout)
				}
				genSum += out.GenTime
				sortSum += out.SortTime
			}
			res.Points = append(res.Points, Fig4aPoint{
				SizeMB:   size,
				Layout:   layout,
				GenTime:  genSum / sim.Time(cfg.reps()),
				SortTime: sortSum / sim.Time(cfg.reps()),
			})
		}
	}
	return res, nil
}

// Fig4bPoint is one DFSIO measurement.
type Fig4bPoint struct {
	Kind           string
	Layout         core.Layout
	ThroughputMBps float64
}

// Fig4bResult is the DFSIO read/write throughput comparison.
type Fig4bResult struct {
	Points []Fig4bPoint
}

// Table renders throughput per operation and layout.
func (r Fig4bResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Kind, p.Layout.String(), fmt.Sprintf("%.1f", p.ThroughputMBps),
		})
	}
	return table([]string{"Operation", "Layout", "Aggregate MB/s"}, rows)
}

// RunFig4b measures DFSIO write then read throughput for both layouts.
func RunFig4b(cfg Config) (Fig4bResult, error) {
	var res Fig4bResult
	files := 8
	fileMB := 128.0
	for _, layout := range layouts() {
		layout := layout
		var wSum, rSum float64
		for rep := 0; rep < cfg.reps(); rep++ {
			pl := core.MustNewPlatform(cfg.platformOptions(layout, cfg.Seed+int64(rep)*1000))
			var w, rr workloads.DFSIOResult
			_, err := pl.Run(func(p *sim.Proc) error {
				opts := workloads.DFSIOOptions{Files: files, FileBytes: fileMB * 1e6}
				var err error
				if w, err = workloads.RunDFSIOWrite(p, pl, opts); err != nil {
					return err
				}
				rr, err = workloads.RunDFSIORead(p, pl, opts)
				return err
			})
			if err != nil {
				return res, fmt.Errorf("fig4b %v: %w", layout, err)
			}
			wSum += w.ThroughputMBps
			rSum += rr.ThroughputMBps
		}
		res.Points = append(res.Points,
			Fig4bPoint{Kind: "write", Layout: layout, ThroughputMBps: wSum / float64(cfg.reps())},
			Fig4bPoint{Kind: "read", Layout: layout, ThroughputMBps: rSum / float64(cfg.reps())},
		)
	}
	return res, nil
}
