// Package experiments regenerates every table and figure of the paper's
// evaluation: the cross-domain static performance study (Figures 2-4), the
// live-migration study (Figure 5, Table II) and the parallel machine
// learning study (Figures 6-8), plus Table I's benchmark inventory.
//
// Each Run* function provisions fresh platforms, repeats every
// configuration Reps times with distinct seeds and averages — the paper's
// "experimental precision" protocol ("running benchmarks three times with
// the same configuration and average the three values") — and returns both
// structured points and a formatted table mirroring the paper's rows.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"vhadoop/internal/core"
	"vhadoop/internal/sim"
)

// Config controls an experiment sweep.
type Config struct {
	Seed   int64
	Reps   int  // repetitions averaged per configuration (paper: 3)
	Nodes  int  // virtual cluster size for the static/migration studies
	Quick  bool // trimmed sweeps (tests, smoke runs)
	Shards int  // simulation shard workers; <=1 runs the sequential engine
}

// DefaultConfig mirrors the paper's protocol.
func DefaultConfig() Config {
	return Config{Seed: 1, Reps: 3, Nodes: 16}
}

func (c Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

// platformOptions builds the standard platform options for a layout.
func (c Config) platformOptions(layout core.Layout, seed int64) core.Options {
	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Nodes = c.Nodes
	if opts.Nodes < 2 {
		opts.Nodes = 16
	}
	opts.Layout = layout
	opts.Shards = c.Shards
	return opts
}

// layouts returns the two layouts of the static study.
func layouts() []core.Layout { return []core.Layout{core.Normal, core.CrossDomain} }

// avg runs fn once per repetition with derived seeds and averages the
// returned quantity.
func (c Config) avg(fn func(seed int64) (float64, error)) (float64, error) {
	var sum float64
	for rep := 0; rep < c.reps(); rep++ {
		v, err := fn(c.Seed + int64(rep)*1000)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(c.reps()), nil
}

// table builds an aligned text table.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	fmt.Fprintln(w, strings.Join(dashes(header), "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}

func dashes(header []string) []string {
	out := make([]string, len(header))
	for i, h := range header {
		out[i] = strings.Repeat("-", len(h))
	}
	return out
}

func secs(t sim.Time) string { return fmt.Sprintf("%.1f", t) }
