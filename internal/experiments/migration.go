package experiments

import (
	"fmt"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/sim"
	"vhadoop/internal/virtlm"
	"vhadoop/internal/workloads"
)

// MigrationScenario names one Figure 5 / Table II configuration.
type MigrationScenario struct {
	Workload string // "idle" or "wordcount"
	MemMB    float64
}

func (s MigrationScenario) String() string {
	return fmt.Sprintf("%s.%.0fMB", s.Workload, s.MemMB)
}

// MigrationScenarios returns the paper's four configurations.
func MigrationScenarios() []MigrationScenario {
	return []MigrationScenario{
		{Workload: "idle", MemMB: 1024},
		{Workload: "idle", MemMB: 512},
		{Workload: "wordcount", MemMB: 1024},
		{Workload: "wordcount", MemMB: 512},
	}
}

// Fig5Result is the migration study: per-VM stats per scenario (Figure 5)
// and cluster-level aggregates (Table II).
type Fig5Result struct {
	Runs map[string]virtlm.Result
}

// runMigrationScenario migrates the whole cluster off PM1 under the given
// scenario. The wordcount variant sizes the job so every worker stays busy
// through the entire migration window, matching the paper's methodology.
func runMigrationScenario(cfg Config, sc MigrationScenario, seed int64) (virtlm.Result, error) {
	opts := cfg.platformOptions(core.Normal, seed)
	opts.VMMemBytes = sc.MemMB * 1e6
	pl := core.MustNewPlatform(opts)
	var res virtlm.Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if sc.Workload == "wordcount" {
			// Load a job big enough to keep every worker busy through the
			// whole migration window, submit it, and migrate once a few map
			// waves are in flight.
			inputMB := 2048 * float64(cfg.Nodes)
			recs := datasets.Text(pl.Engine.Rand(), datasets.DefaultTextOptions(inputMB*1e6))
			if _, err := pl.LoadText(p, "/wc/in", inputMB*1e6, recs); err != nil {
				return err
			}
			h, err := pl.MR.Submit(p, workloads.WordcountJob("/wc/in", "", 4, true))
			if err != nil {
				return err
			}
			for {
				mapsDone, maps, _, _ := h.Progress()
				if mapsDone >= maps/16+1 || h.Done() {
					break
				}
				p.Sleep(5)
			}
			res, err = virtlm.MigrateCluster(p, pl, sc.String(), pl.PMs[0], pl.PMs[1])
			if err != nil {
				return err
			}
			// The job must still complete: Hadoop's fault tolerance rides
			// out the downtime (paper §III-C).
			_, err = h.Wait(p)
			return err
		}
		var err error
		res, err = virtlm.MigrateCluster(p, pl, sc.String(), pl.PMs[0], pl.PMs[1])
		return err
	})
	return res, err
}

// RunFig5 runs the four migration scenarios (single rep per scenario: the
// simulation is deterministic and the paper's per-node plot is one run).
func RunFig5(cfg Config) (Fig5Result, error) {
	res := Fig5Result{Runs: make(map[string]virtlm.Result)}
	for _, sc := range MigrationScenarios() {
		out, err := runMigrationScenario(cfg, sc, cfg.Seed)
		if err != nil {
			return res, fmt.Errorf("fig5 %v: %w", sc, err)
		}
		res.Runs[sc.String()] = out
	}
	return res, nil
}

// PerVMTable renders Figure 5's per-node migration time and downtime.
func (r Fig5Result) PerVMTable() string {
	var rows [][]string
	for _, sc := range MigrationScenarios() {
		run, ok := r.Runs[sc.String()]
		if !ok {
			continue
		}
		for _, s := range run.PerVM {
			rows = append(rows, []string{
				sc.String(), s.VM,
				fmt.Sprintf("%.2f", s.Total),
				fmt.Sprintf("%.0f", s.Downtime*1e3),
				fmt.Sprintf("%d", s.Rounds),
			})
		}
	}
	return table([]string{"Scenario", "VM", "Migration (s)", "Downtime (ms)", "Rounds"}, rows)
}

// Table2 renders the paper's Table II: overall migration time and downtime
// of the whole cluster per scenario, plus the Virt-LM score relative to the
// idle 1024 MB reference run.
func (r Fig5Result) Table2() string {
	ref, hasRef := r.Runs["idle.1024MB"]
	var rows [][]string
	for _, sc := range MigrationScenarios() {
		run, ok := r.Runs[sc.String()]
		if !ok {
			continue
		}
		score := "-"
		if hasRef {
			score = fmt.Sprintf("%.2f", run.Score(ref))
		}
		rows = append(rows, []string{
			sc.String(),
			fmt.Sprintf("%.2f", run.OverallTime),
			fmt.Sprintf("%.0f", run.OverallDowntime*1e3),
			score,
		})
	}
	return table([]string{"Scenario", "Overall Migration Time (s)", "Overall Downtime (ms)", "Virt-LM Score"}, rows)
}
