package xen

import (
	"vhadoop/internal/obs"
)

// downtimeBuckets are the histogram bounds for migration downtime in
// seconds: idle VMs land in the low-millisecond buckets, loaded ones an
// order of magnitude higher (the paper's Virt-LM spread).
var downtimeBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5}

// instruments caches the manager's metric handles; nil without a plane.
type instruments struct {
	migrations     *obs.Counter
	aborts         *obs.Counter
	downtime       *obs.Histogram
	vmCrashes      *obs.Counter
	machineCrashes *obs.Counter
}

// SetObs attaches the observability plane: live migrations get spans
// with downtime/rounds/bytes attributes, crashes become typed events,
// and the registry gains the xen_* metric family.
func (m *Manager) SetObs(pl *obs.Plane) {
	m.obs = pl
	if pl == nil {
		m.instr = nil
		return
	}
	m.instr = &instruments{
		migrations:     pl.Counter("xen_migrations_total"),
		aborts:         pl.Counter("xen_migration_aborts_total"),
		downtime:       pl.Histogram("xen_migration_downtime_seconds", downtimeBuckets),
		vmCrashes:      pl.Counter("xen_vm_crashes_total"),
		machineCrashes: pl.Counter("xen_machine_crashes_total"),
	}
}

// eventf records a typed top-level trace event through the plane, or
// falls back to the raw engine trace when no plane is attached.
func (m *Manager) eventf(kind obs.SpanKind, format string, args ...any) {
	if m.obs != nil {
		m.obs.Eventf(kind, format, args...)
		return
	}
	m.engine.Tracef(format, args...)
}

// spanEventf records an event attributed to sp, falling back to the
// engine trace when the manager has no plane (sp is then nil).
func (m *Manager) spanEventf(sp *obs.Span, format string, args ...any) {
	if sp != nil {
		sp.Eventf(format, args...)
		return
	}
	m.engine.Tracef(format, args...)
}
