// Package xen models the virtualization layer of vHadoop: virtual machines
// scheduled by a Xen-style credit scheduler, with their images on an NFS
// filer, and pre-copy live migration between physical machines.
package xen

import (
	"errors"
	"fmt"

	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
)

// ErrVMDead aborts a process that touches a crashed VM.
var ErrVMDead = errors.New("xen: virtual machine has crashed")

// ErrVMStopped aborts a process that touches a cleanly shut-down VM.
var ErrVMStopped = errors.New("xen: virtual machine was shut down")

// VMState is the lifecycle state of a virtual machine.
type VMState int

// VM lifecycle states.
const (
	StateDefined VMState = iota
	StateRunning
	StatePaused // stop-and-copy phase of live migration
	StateCrashed
	StateShutdown // cleanly released (cloud lease teardown, scale-in)
)

func (s VMState) String() string {
	switch s {
	case StateDefined:
		return "defined"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateCrashed:
		return "crashed"
	case StateShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("VMState(%d)", int(s))
}

// VM is a virtual machine: 1 VCPU plus a fixed memory reservation, with its
// virtual disk backed by the NFS filer.
type VM struct {
	Name     string
	MemBytes float64

	mgr   *Manager
	host  *phys.Machine
	gate  *sim.Gate  // closed while paused
	vcpu  *sim.Queue // the single VCPU: co-resident tasks serialise on it
	state VMState

	cpuWeight  float64
	extraDirty float64     // page-dirty rate contributed by running activity
	inflight   []*sim.Proc // procs parked inside I/O ops touching this VM

	// cumulative counters, read by the nmon monitor
	cpuUsed    float64 // core-seconds executed
	diskRead   float64
	diskWrite  float64
	netSent    float64
	netRecv    float64
	migrations int
}

// Host returns the physical machine currently hosting the VM.
func (vm *VM) Host() *phys.Machine { return vm.host }

// Domain returns the shard domain of the VM's current host. A process
// pins its domain at spawn time, so a proc spawned on a VM's domain
// keeps running on the original host's shard across live migration —
// migration moves guest state, not the scheduling of in-flight work.
func (vm *VM) Domain() sim.Domain { return vm.host.Domain() }

// Engine returns the simulation engine the VM lives in.
func (vm *VM) Engine() *sim.Engine { return vm.mgr.engine }

// State returns the VM lifecycle state.
func (vm *VM) State() VMState { return vm.state }

// Running reports whether the VM is running (not paused or crashed).
func (vm *VM) Running() bool { return vm.state == StateRunning }

// Migrations returns how many times this VM has been live-migrated.
func (vm *VM) Migrations() int { return vm.migrations }

// CPUUsed returns cumulative core-seconds executed by the VCPU.
func (vm *VM) CPUUsed() float64 { return vm.cpuUsed }

// DiskRead and DiskWrite return cumulative VM virtual-disk traffic in bytes.
func (vm *VM) DiskRead() float64  { return vm.diskRead }
func (vm *VM) DiskWrite() float64 { return vm.diskWrite }

// NetSent and NetRecv return cumulative VM network traffic in bytes.
func (vm *VM) NetSent() float64 { return vm.netSent }
func (vm *VM) NetRecv() float64 { return vm.netRecv }

func (vm *VM) String() string { return vm.Name + "@" + vm.host.Name }

// checkAlive aborts the calling process if the VM has crashed or was shut
// down.
func (vm *VM) checkAlive(p *sim.Proc) {
	switch vm.state {
	case StateCrashed:
		p.Fail(fmt.Errorf("%w: %s", ErrVMDead, vm.Name))
	case StateShutdown:
		p.Fail(fmt.Errorf("%w: %s", ErrVMStopped, vm.Name))
	}
}

// watch registers p as parked inside a bulk I/O operation touching this VM,
// so that Crash/Shutdown can abort it immediately — the severed TCP stream
// or vanished virtual disk a real endpoint failure produces — rather than
// letting the transfer complete and the death go unnoticed until the next
// operation. Paired with unwatch via defer, which also runs when the abort
// itself unwinds p. Exec and Message are not watched: their blocking spans
// are bounded by the scheduling quantum and sub-millisecond RPC times, so
// the entry/exit checkAlive already observes death promptly.
func (vm *VM) watch(p *sim.Proc) { vm.inflight = append(vm.inflight, p) }

// unwatch removes p from the in-flight set; a no-op if already aborted out.
func (vm *VM) unwatch(p *sim.Proc) {
	for i, q := range vm.inflight {
		if q == p {
			vm.inflight = append(vm.inflight[:i], vm.inflight[i+1:]...)
			return
		}
	}
}

// abortInflight aborts every proc parked in an I/O op on this VM, in
// registration order (deterministic wakeup order).
func (vm *VM) abortInflight(cause error) {
	procs := vm.inflight
	vm.inflight = nil
	for _, p := range procs {
		p.Abort(fmt.Errorf("%w: %s", cause, vm.Name))
	}
}

// Exec runs cpuSeconds of VCPU work. The VM has a single VCPU, so
// co-resident tasks time-slice on it quantum by quantum; across VMs the Xen
// credit scheduler (the host CPU fair-share) stretches quanta when VCPUs
// outnumber cores. Execution stalls while the VM is paused (live migration
// stop-and-copy) and aborts the process if the VM crashes.
func (vm *VM) Exec(p *sim.Proc, cpuSeconds float64) {
	q := vm.mgr.cfg.CPUQuantum
	for remaining := cpuSeconds; remaining > 0; {
		vm.checkAlive(p)
		vm.gate.WaitOpen(p)
		vm.checkAlive(p)
		step := q
		if step > remaining {
			step = remaining
		}
		vm.vcpu.Acquire(p, 1)
		func() {
			defer vm.vcpu.Release(1) // released even if the process aborts
			vm.checkAlive(p)
			vm.host.CPU.UseWeighted(p, step, vm.cpuWeight)
		}()
		vm.cpuUsed += step
		remaining -= step
	}
}

// ReadDisk reads bytes from the VM's NFS-backed virtual disk, bypassing the
// dom0 page cache (scratch data that is written and read once).
func (vm *VM) ReadDisk(p *sim.Proc, bytes float64) { vm.ReadDiskTagged(p, "", bytes) }

// ReadDiskTagged reads bytes belonging to the cacheable object key (an HDFS
// block, typically). Data recently written or read on this host is served
// from the dom0 NFS-client page cache at memory speed; otherwise it streams
// from the filer and populates the cache. An empty key bypasses the cache.
func (vm *VM) ReadDiskTagged(p *sim.Proc, key string, bytes float64) {
	if bytes <= 0 {
		return
	}
	vm.checkAlive(p)
	vm.gate.WaitOpen(p)
	vm.checkAlive(p)
	vm.diskRead += bytes
	vm.watch(p)
	defer vm.unwatch(p)
	if key != "" && vm.host.Cache.Contains(key) {
		vm.host.MemBus.Use(p, bytes)
		return
	}
	vm.mgr.nfs.Read(p, vm.host, bytes)
	if key != "" {
		vm.host.Cache.Insert(key, bytes)
	}
}

// WriteDisk writes bytes to the VM's NFS-backed virtual disk (uncached
// scratch data).
func (vm *VM) WriteDisk(p *sim.Proc, bytes float64) { vm.WriteDiskTagged(p, "", bytes) }

// WriteDiskTagged writes bytes for the cacheable object key: write-through
// to the filer (NFS close-to-open consistency flushes on close), leaving a
// copy in this host's page cache for later reads.
func (vm *VM) WriteDiskTagged(p *sim.Proc, key string, bytes float64) {
	if bytes <= 0 {
		return
	}
	vm.checkAlive(p)
	vm.gate.WaitOpen(p)
	vm.checkAlive(p)
	vm.diskWrite += bytes
	vm.watch(p)
	defer vm.unwatch(p)
	vm.mgr.nfs.Write(p, vm.host, bytes)
	if key != "" {
		vm.host.Cache.Insert(key, bytes)
	}
}

// ReadFromDiskTo streams bytes from this VM's NFS-backed virtual disk to
// dst as one coupled flow: filer disk -> filer NIC -> this host -> (bridge
// and NICs as needed) -> dst. Because the relay occupies every segment
// simultaneously, a cross-machine read consumes both machines' netback
// capacity for its full volume — the physical reason cross-domain HDFS
// reads degrade. Xen's blktap opens image files with O_DIRECT, so there is
// no dom0 caching on this path.
func (vm *VM) ReadFromDiskTo(p *sim.Proc, dst *VM, bytes float64) {
	if bytes <= 0 {
		return
	}
	vm.checkAlive(p)
	vm.gate.WaitOpen(p)
	vm.checkAlive(p)
	if dst != nil && dst != vm {
		dst.checkAlive(p)
	}
	vm.diskRead += bytes
	topo := vm.mgr.topo
	filer := vm.mgr.nfs.Machine()
	path := topo.HostPath(filer, vm.host)
	if dst != nil && dst != vm {
		vm.netSent += bytes
		dst.netRecv += bytes
		path = append(path, topo.Path(vm.host, dst.host)...)
	}
	vm.watch(p)
	defer vm.unwatch(p)
	if dst != nil && dst != vm {
		dst.watch(p)
		defer dst.unwatch(p)
	}
	diskDone := vm.mgr.nfs.SubmitRead(bytes)
	fl := topo.Fabric().StartFlow("disk-relay:"+vm.Name, path, bytes)
	sim.WaitAll(p, diskDone, fl.Done())
}

// SendTo streams bytes from this VM to dst over the fabric: the virtual
// bridge alone within one physical machine, or bridge + NIC + switch across
// machines. Loopback (dst == vm) is free.
func (vm *VM) SendTo(p *sim.Proc, dst *VM, bytes float64) {
	if bytes <= 0 || dst == vm {
		return
	}
	vm.checkAlive(p)
	vm.gate.WaitOpen(p)
	vm.checkAlive(p)
	dst.checkAlive(p)
	vm.netSent += bytes
	dst.netRecv += bytes
	vm.watch(p)
	defer vm.unwatch(p)
	dst.watch(p)
	defer dst.unwatch(p)
	path := vm.mgr.topo.Path(vm.host, dst.host)
	vm.mgr.topo.Fabric().Transfer(p, vm.Name+"->"+dst.Name, path, bytes)
}

// Message sends a small control RPC to dst (latency-dominated, does not
// contend with bulk flows). Loopback costs nothing.
func (vm *VM) Message(p *sim.Proc, dst *VM, bytes float64) {
	if dst == vm {
		return
	}
	vm.checkAlive(p)
	vm.gate.WaitOpen(p)
	dst.checkAlive(p)
	path := vm.mgr.topo.Path(vm.host, dst.host)
	vm.mgr.topo.Fabric().Message(p, path, bytes)
}

// AddActivity registers extra page-dirtying activity (bytes/s), typically
// for the lifetime of a running task; it feeds the migration working-set
// model. Pair with RemoveActivity.
func (vm *VM) AddActivity(dirtyRate float64) { vm.extraDirty += dirtyRate }

// RemoveActivity unregisters page-dirtying activity.
func (vm *VM) RemoveActivity(dirtyRate float64) {
	vm.extraDirty -= dirtyRate
	if vm.extraDirty < -1e-9 {
		panic("xen: activity over-removed on " + vm.Name)
	}
	if vm.extraDirty < 0 {
		vm.extraDirty = 0
	}
}

// DirtyRate returns the current page-dirty rate in bytes/s: an idle baseline
// (guest OS housekeeping) plus registered task activity, capped so the
// working set cannot exceed memory itself per unit time.
func (vm *VM) DirtyRate() float64 {
	return vm.mgr.cfg.IdleDirtyRate + vm.extraDirty
}

// Crash marks the VM dead. Blocked and future operations on it abort their
// processes with ErrVMDead — including procs parked mid-transfer inside its
// I/O operations; the memory reservation is released. The underlying fabric
// flows of aborted transfers drain to completion unobserved (the fluid model
// has no mid-flow cancel), a brief ghost of bandwidth a real failed TCP
// stream also occupies until timeouts fire.
//
//vhlint:owner machine
func (vm *VM) Crash() {
	if vm.state == StateCrashed || vm.state == StateShutdown {
		return
	}
	vm.state = StateCrashed
	vm.host.ReleaseMem(vm.MemBytes)
	if i := vm.mgr.instr; i != nil {
		i.vmCrashes.Inc()
	}
	// Wake anything parked on the pause gate so it observes the crash.
	vm.gate.Open()
	vm.abortInflight(ErrVMDead)
}

// Shutdown releases the VM cleanly (cloud lease teardown): the memory
// reservation returns to the host and any late or in-flight operations
// abort their processes with ErrVMStopped.
//
//vhlint:owner machine
func (vm *VM) Shutdown() {
	if vm.state == StateCrashed || vm.state == StateShutdown {
		return
	}
	vm.state = StateShutdown
	vm.host.ReleaseMem(vm.MemBytes)
	vm.gate.Open()
	vm.abortInflight(ErrVMStopped)
}

// pause closes the VCPU gate (stop-and-copy).
func (vm *VM) pause() {
	vm.state = StatePaused
	vm.gate.Close()
}

// resume reopens the VCPU gate after migration.
func (vm *VM) resume() {
	vm.state = StateRunning
	vm.gate.Open()
}
