package xen

import (
	"errors"
	"fmt"
	"strconv"

	"vhadoop/internal/obs"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
)

// ErrMigrationAborted reports a live migration abandoned because the
// destination machine failed mid-flight. The guest keeps running (or resumes)
// on the source; the caller may retry toward another target.
var ErrMigrationAborted = errors.New("xen: migration aborted, destination failed")

// MigrationConfig tunes the pre-copy live migration algorithm.
type MigrationConfig struct {
	// MaxRounds bounds the number of iterative pre-copy rounds before the
	// algorithm gives up converging and stops the VM.
	MaxRounds int
	// StopThresholdBytes ends pre-copy early once the dirty set is this
	// small: the remainder moves during stop-and-copy.
	StopThresholdBytes float64
	// CPUStateBytes is the fixed VCPU/device state moved during downtime.
	CPUStateBytes float64
	// ActivationOverhead is the fixed cost of re-activating the guest on the
	// destination (ARP announcements, device reattach).
	ActivationOverhead sim.Time
	// WWSTime models the writable working set: the hottest pages are
	// re-dirtied so fast that roughly WWSTime seconds worth of dirtying can
	// never be pre-copied away and must move during stop-and-copy. This is
	// what makes a loaded VM's downtime an order of magnitude larger than an
	// idle one's while its total migration time grows only moderately.
	WWSTime sim.Time
}

// DefaultMigrationConfig mirrors Xen 3.4's pre-copy defaults.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		MaxRounds:          8,
		StopThresholdBytes: 1e6,
		CPUStateBytes:      2e5,
		ActivationOverhead: 0.050,
		WWSTime:            1.0,
	}
}

// MigrationStats records one VM's live migration, the quantities the paper's
// Virt-LM benchmark measures.
type MigrationStats struct {
	VM        string
	From, To  string
	Start     sim.Time
	Total     sim.Time // wall-clock migration time
	Downtime  sim.Time // stop-and-copy service interruption
	Rounds    int      // pre-copy rounds (excluding stop-and-copy)
	BytesSent float64  // total bytes moved, all rounds
}

func (s MigrationStats) String() string {
	return fmt.Sprintf("%s %s->%s total=%.2fs downtime=%.0fms rounds=%d sent=%.0fMB",
		s.VM, s.From, s.To, s.Total, s.Downtime*1e3, s.Rounds, s.BytesSent/1e6)
}

// Migrate live-migrates vm to dst with the pre-copy algorithm: round 0
// pushes all memory while the guest keeps running; each later round pushes
// the pages dirtied during the previous round; when the dirty set is small
// enough (or MaxRounds is hit, or a round stops making progress) the guest
// pauses, the final set plus CPU state moves, and the guest resumes on dst.
//
// Migration traffic flows dom0-to-dom0 and therefore contends with the
// cluster's own workload traffic on the NICs — a busy Hadoop VM both dirties
// pages faster and leaves less bandwidth for migration, which is why the
// paper measures ~3x migration time and ~13x downtime for a Wordcount-loaded
// cluster versus an idle one.
//
//vhlint:owner machine
func (m *Manager) Migrate(p *sim.Proc, vm *VM, dst *phys.Machine, cfg MigrationConfig) (MigrationStats, error) {
	stats := MigrationStats{VM: vm.Name, From: vm.host.Name, To: dst.Name, Start: m.engine.Now()}
	if vm.state == StateCrashed {
		return stats, fmt.Errorf("xen: migrate %s: %w", vm.Name, ErrVMDead)
	}
	if dst == vm.host {
		return stats, fmt.Errorf("xen: migrate %s: already on %s", vm.Name, dst.Name)
	}
	if err := dst.ReserveMem(vm.MemBytes); err != nil {
		return stats, fmt.Errorf("xen: migrate %s: %w", vm.Name, err)
	}
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}

	src := vm.host
	fabric := m.topo.Fabric()
	path := m.topo.HostPath(src, dst)

	sp := m.obs.Start(obs.KindMigration, vm.Name, nil).
		SetAttr("from", stats.From).SetAttr("to", stats.To)

	// abort undoes the destination reservation and reports why the
	// migration cannot complete. The guest is left untouched on the source:
	// pre-copy rounds never pause it, so there is nothing to resume.
	abort := func(cause error) (MigrationStats, error) {
		dst.ReleaseMem(vm.MemBytes)
		stats.Total = m.engine.Now() - stats.Start
		if m.instr != nil {
			m.instr.aborts.Inc()
		}
		m.spanEventf(sp, "migration aborted %s %s->%s after %d rounds: %v",
			vm.Name, stats.From, stats.To, stats.Rounds, cause)
		sp.SetAttr("error", cause.Error()).Finish()
		return stats, fmt.Errorf("xen: migrate %s: %w", vm.Name, cause)
	}

	// Iterative pre-copy.
	toSend := vm.MemBytes
	for {
		before := m.engine.Now()
		fabric.Transfer(p, "migrate:"+vm.Name, path, toSend)
		stats.BytesSent += toSend
		stats.Rounds++
		if vm.state == StateCrashed || vm.state == StateShutdown {
			// The guest died mid-round; its memory image is worthless.
			return abort(ErrVMDead)
		}
		if dst.Failed() {
			return abort(ErrMigrationAborted)
		}
		elapsed := m.engine.Now() - before
		dirtied := vm.DirtyRate() * elapsed
		if wws := vm.DirtyRate() * cfg.WWSTime; dirtied < wws {
			dirtied = wws // hot pages re-dirty faster than they copy
		}
		if dirtied > vm.MemBytes {
			dirtied = vm.MemBytes
		}
		if dirtied <= cfg.StopThresholdBytes || stats.Rounds >= cfg.MaxRounds || dirtied >= toSend {
			toSend = dirtied
			break
		}
		toSend = dirtied
	}

	// Stop-and-copy: the guest is paused; the final dirty set and CPU state
	// move; the guest re-activates on the destination.
	downStart := m.engine.Now()
	vm.pause()
	fabric.Transfer(p, "migrate-final:"+vm.Name, path, toSend+cfg.CPUStateBytes)
	stats.BytesSent += toSend + cfg.CPUStateBytes
	if vm.state == StateCrashed || vm.state == StateShutdown {
		// Crashed while paused: do not resurrect it by resuming.
		return abort(ErrVMDead)
	}
	if dst.Failed() {
		// Destination died during downtime: the source still holds the
		// authoritative image, so resume there and report the abort.
		vm.resume()
		return abort(ErrMigrationAborted)
	}
	p.Sleep(cfg.ActivationOverhead)
	vm.host = dst
	src.ReleaseMem(vm.MemBytes)
	vm.resume()
	vm.migrations++

	stats.Downtime = m.engine.Now() - downStart
	stats.Total = m.engine.Now() - stats.Start
	if m.instr != nil {
		m.instr.migrations.Inc()
		m.instr.downtime.Observe(float64(stats.Downtime))
	}
	m.spanEventf(sp, "migrated %s", stats)
	sp.SetFloat("downtime", float64(stats.Downtime)).
		SetFloat("bytes", stats.BytesSent).
		SetAttr("rounds", strconv.Itoa(stats.Rounds)).
		Finish()
	return stats, nil
}

// MigrateWithFailover tries to live-migrate vm to each target in order,
// returning the stats of the first migration that completes. A target that
// fails mid-flight aborts that attempt (the guest stays on the source) and
// the next target is tried; a guest that dies mid-migration ends the retry
// loop immediately, since there is nothing left to move.
func (m *Manager) MigrateWithFailover(p *sim.Proc, vm *VM, targets []*phys.Machine, cfg MigrationConfig) (MigrationStats, error) {
	var lastErr error
	for _, dst := range targets {
		if dst == vm.host || dst.Failed() {
			continue
		}
		stats, err := m.Migrate(p, vm, dst, cfg)
		if err == nil {
			return stats, nil
		}
		if errors.Is(err, ErrVMDead) || errors.Is(err, ErrVMStopped) {
			return stats, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("xen: migrate %s: no viable migration target", vm.Name)
	}
	return MigrationStats{VM: vm.Name, From: vm.host.Name}, lastErr
}
