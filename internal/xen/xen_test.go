package xen

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vhadoop/internal/nfs"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
	"vhadoop/internal/vnet"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

// testbed with two 8-core compute machines and an NFS filer.
func newTestbed(seed int64) (*sim.Engine, *phys.Topology, *Manager) {
	e := sim.New(seed)
	f := vnet.NewFabric(e)
	topo := phys.NewTopology(e, f, 10e9, 0.00001)
	spec := phys.MachineSpec{
		Cores: 8, DRAMBytes: 32e9, DiskBW: 100e6,
		NICBW: 119e6, NICLat: 0.0001, BridgeBW: 500e6, BridgeLat: 0.00002,
	}
	topo.AddMachine("pm1", spec)
	topo.AddMachine("pm2", spec)
	filer := topo.AddMachine("filer", spec)
	mgr := NewManager(topo, nfs.NewServer(topo, filer), DefaultConfig())
	return e, topo, mgr
}

func TestExecUncontended(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	vm := mgr.MustDefine("vm1", 1e9, topo.Machines()[0])
	var done sim.Time
	e.SpawnOn(vm.Domain(), "task", func(p *sim.Proc) {
		vm.Exec(p, 5)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 5, 1e-6, "5 core-seconds on an idle host")
	almost(t, vm.CPUUsed(), 5, 1e-9, "CPU accounting")
}

func TestExecCreditSchedulerOversubscription(t *testing.T) {
	// 16 single-VCPU VMs on 8 cores: every VM runs at half speed.
	e, topo, mgr := newTestbed(1)
	host := topo.Machines()[0]
	var last sim.Time
	for i := 0; i < 16; i++ {
		vm := mgr.MustDefine("vm", 1e9, host)
		e.SpawnOn(vm.Domain(), "task", func(p *sim.Proc) {
			vm.Exec(p, 5)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	almost(t, last, 10, 1e-3, "16 VCPUs on 8 cores at half speed")
}

func TestDefineRespectsDRAM(t *testing.T) {
	_, topo, mgr := newTestbed(1)
	host := topo.Machines()[0]
	for i := 0; i < 32; i++ {
		mgr.MustDefine("vm", 1e9, host)
	}
	if _, err := mgr.Define("vm33", 1e9, host); err == nil {
		t.Fatal("33rd 1GB VM fit on a 32GB machine")
	}
}

func TestPauseStallsExecution(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	vm := mgr.MustDefine("vm1", 1e9, topo.Machines()[0])
	var done sim.Time
	e.SpawnOn(vm.Domain(), "task", func(p *sim.Proc) {
		vm.Exec(p, 2)
		done = p.Now()
	})
	e.At(0.5, func() { vm.pause() })
	e.At(3.5, func() { vm.resume() })
	e.Run()
	// Roughly 3s of stall (quantum granularity allows the in-flight quantum
	// to finish).
	if done < 4.5 || done > 5.5 {
		t.Fatalf("exec finished at %v, want ~5s with a 3s pause", done)
	}
}

func TestCrashAbortsOperations(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	vm := mgr.MustDefine("vm1", 1e9, topo.Machines()[0])
	task := e.SpawnOn(vm.Domain(), "task", func(p *sim.Proc) {
		vm.Exec(p, 100)
	})
	e.At(1, func() { vm.Crash() })
	e.Run()
	if task.Err() == nil || !errors.Is(task.Err(), ErrVMDead) {
		t.Fatalf("task error = %v, want ErrVMDead", task.Err())
	}
	if vm.State() != StateCrashed {
		t.Fatalf("state = %v", vm.State())
	}
}

func TestDiskIOGoesThroughNFS(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	vm := mgr.MustDefine("vm1", 1e9, topo.Machines()[0])
	var done sim.Time
	e.SpawnOn(vm.Domain(), "io", func(p *sim.Proc) {
		vm.WriteDisk(p, 200e6)
		done = p.Now()
	})
	e.Run()
	// 200MB x 1.5 RAID write penalty at 100MB/s filer disk = 3s.
	almost(t, done, 3, 0.05, "disk write via NFS")
	almost(t, vm.DiskWrite(), 200e6, 1, "disk accounting")
}

func TestSendToIntraVsCross(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	a := mgr.MustDefine("a", 1e9, pm1)
	b := mgr.MustDefine("b", 1e9, pm1)
	c := mgr.MustDefine("c", 1e9, pm2)
	var intra, cross sim.Time
	e.SpawnOn(a.Domain(), "intra", func(p *sim.Proc) {
		start := p.Now()
		a.SendTo(p, b, 250e6)
		intra = p.Now() - start
	})
	e.Run()
	e.SpawnOn(a.Domain(), "cross", func(p *sim.Proc) {
		start := p.Now()
		a.SendTo(p, c, 250e6)
		cross = p.Now() - start
	})
	e.Run()
	almost(t, intra, 0.5, 0.01, "intra via 500MB/s bridge")
	almost(t, cross, 250e6/119e6, 0.01, "cross via 119MB/s NIC")
	almost(t, a.NetSent(), 500e6, 1, "sender accounting")
	almost(t, c.NetRecv(), 250e6, 1, "receiver accounting")
}

func TestActivityTracksDirtyRate(t *testing.T) {
	_, topo, mgr := newTestbed(1)
	vm := mgr.MustDefine("vm1", 1e9, topo.Machines()[0])
	base := vm.DirtyRate()
	vm.AddActivity(40e6)
	vm.AddActivity(10e6)
	almost(t, vm.DirtyRate(), base+50e6, 1, "dirty rate with activity")
	vm.RemoveActivity(40e6)
	vm.RemoveActivity(10e6)
	almost(t, vm.DirtyRate(), base, 1, "dirty rate after removal")
}

func TestMigrationIdle(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	vm := mgr.MustDefine("vm1", 1024e6, pm1)
	var stats MigrationStats
	e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
		var err error
		stats, err = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
		if err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	e.Run()
	// First round: 1024MB at 119MB/s ≈ 8.6s; idle dirty rate 2MB/s dirties
	// ~17MB; a couple more rounds converge quickly.
	if stats.Total < 8 || stats.Total > 12 {
		t.Fatalf("idle migration total = %v, want ~9s", stats.Total)
	}
	if stats.Downtime > 0.2 {
		t.Fatalf("idle downtime = %v, want well under 200ms", stats.Downtime)
	}
	if vm.Host() != pm2 {
		t.Fatalf("VM still on %s", vm.Host().Name)
	}
	if vm.Migrations() != 1 {
		t.Fatalf("migration count = %d", vm.Migrations())
	}
	almost(t, pm1.MemFree(), 32e9, 1, "source memory released")
}

func TestMigrationBusyVsIdle(t *testing.T) {
	run := func(activity float64) MigrationStats {
		e, topo, mgr := newTestbed(1)
		pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
		vm := mgr.MustDefine("vm1", 1024e6, pm1)
		vm.AddActivity(activity)
		var stats MigrationStats
		e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
			stats, _ = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
		})
		e.Run()
		return stats
	}
	idle, busy := run(0), run(40e6)
	if busy.Total <= idle.Total {
		t.Fatalf("busy migration (%v) not longer than idle (%v)", busy.Total, idle.Total)
	}
	if busy.Downtime <= idle.Downtime*2 {
		t.Fatalf("busy downtime (%v) not much larger than idle (%v)", busy.Downtime, idle.Downtime)
	}
	if busy.Rounds <= idle.Rounds {
		t.Fatalf("busy rounds (%d) not more than idle (%d)", busy.Rounds, idle.Rounds)
	}
}

func TestMigrationMemorySizeScaling(t *testing.T) {
	run := func(mem float64) MigrationStats {
		e, topo, mgr := newTestbed(1)
		pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
		vm := mgr.MustDefine("vm1", mem, pm1)
		var stats MigrationStats
		e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
			stats, _ = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
		})
		e.Run()
		return stats
	}
	small, large := run(512e6), run(1024e6)
	if large.Total <= small.Total {
		t.Fatalf("1024MB migration (%v) not longer than 512MB (%v)", large.Total, small.Total)
	}
	// Downtime has no causal relationship with memory size (paper, §III-C).
	if ratio := large.Downtime / small.Downtime; ratio > 1.5 || ratio < 0.67 {
		t.Fatalf("downtime scaled with memory (%v vs %v)", large.Downtime, small.Downtime)
	}
}

func TestMigrateToSameHostFails(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1 := topo.Machines()[0]
	vm := mgr.MustDefine("vm1", 1e9, pm1)
	var err error
	e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
		_, err = mgr.Migrate(p, vm, pm1, DefaultMigrationConfig())
	})
	e.Run()
	if err == nil {
		t.Fatal("migration to current host succeeded")
	}
}

func TestMigrateCrashedVMFails(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	vm := mgr.MustDefine("vm1", 1e9, pm1)
	vm.Crash()
	var err error
	e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
		_, err = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
	})
	e.Run()
	if !errors.Is(err, ErrVMDead) {
		t.Fatalf("err = %v, want ErrVMDead", err)
	}
}

func TestMigrationAbortsWhenDestinationFails(t *testing.T) {
	// 1 GB over the ~119 MB/s storage NIC: round 0 alone takes ~8.4s, so a
	// destination failure at t=2 is observed at the next round boundary. The
	// guest must keep running on the source with the destination reservation
	// undone.
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	vm := mgr.MustDefine("vm1", 1e9, pm1)
	free := pm2.MemFree()
	e.At(2, pm2.Fail)
	var err error
	e.SpawnOn(vm.Domain(), "m", func(p *sim.Proc) {
		_, err = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
	})
	e.Run()
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("err = %v, want ErrMigrationAborted", err)
	}
	if vm.Host() != pm1 || !vm.Running() {
		t.Fatalf("vm on %s in state %v, want running on pm1", vm.Host(), vm.State())
	}
	almost(t, pm2.MemFree(), free, 1, "destination reservation released")
}

func TestMigrationAbortsWhenVMCrashesMidPreCopy(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	vm := mgr.MustDefine("vm1", 1e9, pm1)
	srcFree, dstFree := pm1.MemFree(), pm2.MemFree()
	e.At(2, vm.Crash)
	var err error
	e.SpawnOn(vm.Domain(), "m", func(p *sim.Proc) {
		_, err = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
	})
	e.Run()
	if !errors.Is(err, ErrVMDead) {
		t.Fatalf("err = %v, want ErrVMDead", err)
	}
	if vm.State() != StateCrashed {
		t.Fatalf("vm state = %v, want crashed (not resurrected by resume)", vm.State())
	}
	almost(t, pm2.MemFree(), dstFree, 1, "destination reservation released")
	almost(t, pm1.MemFree(), srcFree+1e9, 1, "crash released source memory")
}

func TestMigrateWithFailoverRetriesNextTarget(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	pm3 := topo.AddMachine("pm3", phys.MachineSpec{
		Cores: 8, DRAMBytes: 32e9, DiskBW: 100e6,
		NICBW: 119e6, NICLat: 0.0001, BridgeBW: 500e6, BridgeLat: 0.00002,
	})
	vm := mgr.MustDefine("vm1", 1e9, pm1)
	e.At(2, pm2.Fail)
	var stats MigrationStats
	var err error
	e.SpawnOn(vm.Domain(), "m", func(p *sim.Proc) {
		stats, err = mgr.MigrateWithFailover(p, vm, []*phys.Machine{pm2, pm3}, DefaultMigrationConfig())
	})
	e.Run()
	if err != nil {
		t.Fatalf("failover migration: %v", err)
	}
	if vm.Host() != pm3 || stats.To != "pm3" {
		t.Fatalf("vm on %s (stats.To=%s), want pm3", vm.Host(), stats.To)
	}
}

func TestCrashMachineCrashesResidents(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	a := mgr.MustDefine("a", 1e9, pm1)
	b := mgr.MustDefine("b", 1e9, pm1)
	c := mgr.MustDefine("c", 1e9, pm2)
	crashed := mgr.CrashMachine(pm1)
	if len(crashed) != 2 || crashed[0] != a || crashed[1] != b {
		t.Fatalf("crashed = %v, want [a b]", crashed)
	}
	if a.State() != StateCrashed || b.State() != StateCrashed {
		t.Fatal("co-resident VMs not crashed with their machine")
	}
	if c.State() != StateRunning {
		t.Fatalf("VM on surviving machine in state %v", c.State())
	}
	if !pm1.Failed() {
		t.Fatal("machine not marked failed")
	}
	if _, err := mgr.Define("d", 1e9, pm1); err == nil {
		t.Fatal("failed machine accepted a new VM")
	}
	_ = e
}

func TestBootChargesImageAndBootTime(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	vm := mgr.MustDefine("vm1", 1e9, topo.Machines()[0])
	var done sim.Time
	e.SpawnOn(vm.Domain(), "boot", func(p *sim.Proc) {
		mgr.Boot(p, vm)
		done = p.Now()
	})
	e.Run()
	// 1.5GB image at 100MB/s disk = 15s, plus 20s boot.
	almost(t, done, 35, 0.5, "boot time")
}

func TestExecDuringMigrationStallsOnlyDuringDowntime(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	vm := mgr.MustDefine("vm1", 512e6, pm1)
	var execDone sim.Time
	e.SpawnOn(vm.Domain(), "task", func(p *sim.Proc) {
		vm.Exec(p, 20)
		execDone = p.Now()
	})
	var stats MigrationStats
	e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
		p.Sleep(1)
		stats, _ = mgr.Migrate(p, vm, pm2, DefaultMigrationConfig())
	})
	e.Run()
	// The task runs throughout pre-copy; only the downtime stalls it.
	if execDone > 20+stats.Downtime+1 {
		t.Fatalf("exec done at %v, want ~20s + downtime %v", execDone, stats.Downtime)
	}
	if vm.Host() != pm2 {
		t.Fatal("VM did not move")
	}
}

func TestMigrationChainRoundTrip(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1, pm2 := topo.Machines()[0], topo.Machines()[1]
	vm := mgr.MustDefine("vm1", 512e6, pm1)
	e.SpawnOn(vm.Domain(), "mig", func(p *sim.Proc) {
		if _, err := mgr.Migrate(p, vm, pm2, DefaultMigrationConfig()); err != nil {
			t.Errorf("first hop: %v", err)
		}
		if _, err := mgr.Migrate(p, vm, pm1, DefaultMigrationConfig()); err != nil {
			t.Errorf("return hop: %v", err)
		}
	})
	e.Run()
	if vm.Host() != pm1 {
		t.Fatalf("VM on %s after round trip", vm.Host().Name)
	}
	if vm.Migrations() != 2 {
		t.Fatalf("migration count = %d", vm.Migrations())
	}
	// Memory accounting must be exact after the round trip.
	almost(t, pm1.MemFree(), 32e9-512e6, 1, "pm1 memory")
	almost(t, pm2.MemFree(), 32e9, 1, "pm2 memory")
}

func TestShutdownReleasesMemoryAndAbortsOps(t *testing.T) {
	e, topo, mgr := newTestbed(1)
	pm1 := topo.Machines()[0]
	vm := mgr.MustDefine("vm1", 2e9, pm1)
	task := e.SpawnOn(vm.Domain(), "task", func(p *sim.Proc) {
		vm.Exec(p, 100)
	})
	e.At(1, func() { vm.Shutdown() })
	e.Run()
	if !errors.Is(task.Err(), ErrVMStopped) {
		t.Fatalf("task err = %v, want ErrVMStopped", task.Err())
	}
	almost(t, pm1.MemFree(), 32e9, 1, "memory after shutdown")
	// Idempotent; Crash after Shutdown is a no-op.
	vm.Shutdown()
	vm.Crash()
	if vm.State() != StateShutdown {
		t.Fatalf("state = %v", vm.State())
	}
}

// Property: after any sequence of define/migrate/shutdown operations, every
// machine's committed memory equals the sum of its live VMs' reservations.
func TestMemoryAccountingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		e, topo, mgr := newTestbed(9)
		pms := topo.Machines()[:2]
		var vms []*VM
		ok := true
		// The driver defines VMs and steers the manager — coordinator
		// work, so it stays on the Shared domain like production drivers.
		e.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				switch op % 3 {
				case 0: // define
					if vm, err := mgr.Define("vm", 1e9, pms[int(op/3)%2]); err == nil {
						vms = append(vms, vm)
					}
				case 1: // migrate a live VM
					for _, vm := range vms {
						if vm.State() == StateRunning {
							dst := pms[0]
							if vm.Host() == pms[0] {
								dst = pms[1]
							}
							mgr.Migrate(p, vm, dst, DefaultMigrationConfig())
							break
						}
					}
				case 2: // shutdown a live VM
					for _, vm := range vms {
						if vm.State() == StateRunning {
							vm.Shutdown()
							break
						}
					}
				}
			}
		})
		e.Run()
		for _, pm := range pms {
			var want float64
			for _, vm := range vms {
				if vm.State() == StateRunning && vm.Host() == pm {
					want += vm.MemBytes
				}
			}
			if math.Abs((pm.Spec.DRAMBytes-pm.MemFree())-want) > 1 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
