package xen

import (
	"fmt"

	"vhadoop/internal/nfs"
	"vhadoop/internal/obs"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
)

// Config carries the virtualization layer's tunables.
type Config struct {
	// CPUQuantum is the VCPU scheduling quantum in core-seconds. Smaller
	// values track contention changes more precisely at the cost of more
	// simulation events.
	CPUQuantum float64
	// IdleDirtyRate is the page-dirty rate of an idle guest (bytes/s).
	IdleDirtyRate float64
	// BootTime is the guest OS boot time once the image is available.
	BootTime sim.Time
	// ImageBytes is the VM image size streamed from NFS on first boot.
	ImageBytes float64
}

// DefaultConfig mirrors the paper's testbed software stack (CentOS dom0,
// Ubuntu 8.10 guests, Xen 3.4).
func DefaultConfig() Config {
	return Config{
		CPUQuantum:    0.25,
		IdleDirtyRate: 2e6,
		BootTime:      20,
		ImageBytes:    1.5e9,
	}
}

// Manager is the cluster-wide virtualization control plane (the role xend +
// the platform's Virtualization Module play in the paper): it creates VMs on
// machines, boots them from NFS images and live-migrates them.
type Manager struct {
	engine *sim.Engine
	topo   *phys.Topology
	nfs    *nfs.Server
	cfg    Config
	vms    []*VM

	obs   *obs.Plane // nil outside core.NewPlatform; every use is guarded
	instr *instruments
}

// NewManager returns a manager over the given topology and filer.
func NewManager(topo *phys.Topology, filer *nfs.Server, cfg Config) *Manager {
	if cfg.CPUQuantum <= 0 {
		panic("xen: CPUQuantum must be positive")
	}
	return &Manager{engine: topo.Engine(), topo: topo, nfs: filer, cfg: cfg}
}

// Engine returns the simulation engine.
func (m *Manager) Engine() *sim.Engine { return m.engine }

// Topology returns the physical topology.
func (m *Manager) Topology() *phys.Topology { return m.topo }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// VMs returns every defined VM in creation order.
func (m *Manager) VMs() []*VM { return m.vms }

// Define creates a VM on host with the given memory, reserving DRAM. The VM
// is immediately runnable; use Boot to additionally charge image-fetch and
// guest boot time.
//
//vhlint:owner machine
func (m *Manager) Define(name string, memBytes float64, host *phys.Machine) (*VM, error) {
	if err := host.ReserveMem(memBytes); err != nil {
		return nil, fmt.Errorf("xen: define %s: %w", name, err)
	}
	vm := &VM{
		Name:      name,
		MemBytes:  memBytes,
		mgr:       m,
		host:      host,
		gate:      sim.NewGate(m.engine, true),
		vcpu:      sim.NewQueue(m.engine, 1),
		state:     StateRunning,
		cpuWeight: 1,
	}
	m.vms = append(m.vms, vm)
	return vm, nil
}

// MustDefine is Define that panics on placement failure (setup code).
func (m *Manager) MustDefine(name string, memBytes float64, host *phys.Machine) *VM {
	vm, err := m.Define(name, memBytes, host)
	if err != nil {
		panic(err)
	}
	return vm
}

// Boot charges the cost of streaming the VM image from the NFS filer to the
// host and booting the guest OS. VMs booting on the same host contend on the
// filer's disk and the host NIC, which is what makes large virtual clusters
// slow to start in lockstep.
func (m *Manager) Boot(p *sim.Proc, vm *VM) {
	m.nfs.FetchImage(p, vm.host, m.cfg.ImageBytes)
	p.Sleep(m.cfg.BootTime)
}

// CrashMachine fails a physical machine and crashes every VM resident on it
// — the correlated failure mode specific to virtualized clusters, where one
// host loss takes a whole rack-worth of co-resident datanodes and
// tasktrackers with it. Returns the VMs crashed, in creation order.
//
//vhlint:owner machine
func (m *Manager) CrashMachine(pm *phys.Machine) []*VM {
	pm.Fail()
	var crashed []*VM
	for _, vm := range m.vms {
		if vm.host == pm && vm.state != StateCrashed && vm.state != StateShutdown {
			vm.Crash()
			crashed = append(crashed, vm)
		}
	}
	if len(crashed) > 0 {
		if m.instr != nil {
			m.instr.machineCrashes.Inc()
		}
		m.eventf(obs.KindCluster, "machine %s failed, crashed %d VMs", pm.Name, len(crashed))
	}
	return crashed
}
