// Package phys models the physical testbed of the vHadoop paper: Dell T710
// servers (2× quad-core Xeon E5620 with hyper-threading, 32 GB DRAM, local
// SATA disk, 1 Gb/s NIC) joined by a gigabit switch, plus a separate NFS
// filer. Each machine contributes a CPU pool (a fair-share resource driven
// by the Xen credit scheduler in internal/xen), a local disk, a virtual
// bridge link for intra-machine VM traffic and NIC transmit/receive links
// for cross-machine traffic.
package phys

import (
	"fmt"

	"vhadoop/internal/sim"
	"vhadoop/internal/vnet"
)

// MachineSpec describes one physical machine's hardware.
type MachineSpec struct {
	Cores     int     // schedulable CPUs (hyper-threads count)
	DRAMBytes float64 // physical memory
	DiskBW    float64 // local disk bandwidth, bytes/s
	NICBW     float64 // NIC line rate each direction, bytes/s
	NICLat    sim.Time
	BridgeBW  float64 // intra-machine virtual bridge bandwidth, bytes/s
	BridgeLat sim.Time
	// NICDuplexFactor caps combined tx+rx throughput as a multiple of the
	// line rate: Xen-era dom0 netback processing could not sustain full
	// duplex gigabit (Cherkasova & Gardner, USENIX '05). 0 defaults to 1.0
	// (roughly line rate for tx+rx combined through the bridge/netback).
	NICDuplexFactor float64
	// MemBW is the rate at which dom0 serves page-cache hits (bytes/s).
	// 0 defaults to 8 GB/s (DDR3 multi-channel).
	MemBW float64
	// CacheBytes is the dom0 NFS-client page cache capacity. 0 defaults to
	// half of DRAM (the rest is reserved for guests).
	CacheBytes float64
	// StorNICBW is the storage/management NIC line rate (bytes/s). The
	// testbed's servers have multiple GbE ports: guest traffic is bridged
	// over one, while dom0's NFS client and live migration use another.
	// 0 defaults to NICBW.
	StorNICBW  float64
	StorNICLat sim.Time
}

// Machine is one physical server.
type Machine struct {
	Name string
	Spec MachineSpec

	CPU  *sim.FairShare // capacity = Cores, per-job cap = 1 core
	Disk *sim.FairShare // local disk, bytes/s

	Bridge  *vnet.Link // intra-machine VM-to-VM segment
	NICTx   *vnet.Link // machine -> switch
	NICRx   *vnet.Link // switch -> machine
	NICProc *vnet.Link // shared netback processing: combined tx+rx cap
	StorTx  *vnet.Link // storage/management NIC: machine -> switch
	StorRx  *vnet.Link // storage/management NIC: switch -> machine

	MemBus *sim.FairShare // dom0 page-cache service rate
	Cache  *PageCache     // dom0 NFS-client page cache

	memInUse float64 // bytes of DRAM committed to VMs
	failed   bool    // whole-host failure (power loss, hypervisor panic)

	dom sim.Domain // shard domain: machine-confined procs spawn here
}

// Domain returns the machine's shard domain, assigned at AddMachine
// time (1-based, creation order; sim.Shared stays 0 for the
// coordinator). Processes whose writes the spawn-domain ledger proves
// machine-confined are spawned on it via Engine.SpawnOn.
func (m *Machine) Domain() sim.Domain { return m.dom }

// PageCache is the dom0 NFS-client page cache: recently written or read
// file data is served from host memory instead of the filer, with FIFO
// eviction. This is what makes a freshly-written HDFS data set fast to
// re-read on the same physical machine — and what a cross-domain cluster
// loses whenever a replica lives on the other machine.
type PageCache struct {
	capacity float64
	used     float64
	entries  map[string]float64
	order    []string

	hits, misses int
}

// NewPageCache returns an empty cache of the given capacity.
func NewPageCache(capacity float64) *PageCache {
	return &PageCache{capacity: capacity, entries: make(map[string]float64)}
}

// Contains reports (and records) whether key is cached.
func (c *PageCache) Contains(key string) bool {
	_, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ok
}

// Insert adds key with the given size, evicting oldest entries to fit.
// Entries larger than the whole cache are not cached.
func (c *PageCache) Insert(key string, bytes float64) {
	if bytes > c.capacity {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.used -= old
		c.remove(key)
	}
	for c.used+bytes > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		c.used -= c.entries[victim]
		delete(c.entries, victim)
	}
	c.entries[key] = bytes
	c.order = append(c.order, key)
	c.used += bytes
}

func (c *PageCache) remove(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	delete(c.entries, key)
}

// Used returns the cached byte volume.
func (c *PageCache) Used() float64 { return c.used }

// HitRate returns the fraction of lookups that hit.
func (c *PageCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// MemFree returns uncommitted DRAM in bytes.
func (m *Machine) MemFree() float64 { return m.Spec.DRAMBytes - m.memInUse }

// Fail marks the machine as failed (power loss, hypervisor panic). A failed
// machine accepts no new VM placements; the virtualization layer is
// responsible for crashing the VMs resident at failure time (see
// xen.Manager.CrashMachine). There is no repair: a failed host stays failed
// for the rest of the simulation, as in the paper's testbed failure model.
func (m *Machine) Fail() { m.failed = true }

// Failed reports whether the machine has suffered a whole-host failure.
func (m *Machine) Failed() bool { return m.failed }

// ReserveMem commits bytes of DRAM to a VM, failing if it does not fit or
// if the machine itself has failed.
func (m *Machine) ReserveMem(bytes float64) error {
	if m.failed {
		return fmt.Errorf("phys: %s: machine has failed", m.Name)
	}
	if bytes > m.MemFree() {
		return fmt.Errorf("phys: %s: cannot reserve %.0f bytes, %.0f free", m.Name, bytes, m.MemFree())
	}
	m.memInUse += bytes
	return nil
}

// ReleaseMem returns bytes of DRAM to the free pool.
func (m *Machine) ReleaseMem(bytes float64) {
	m.memInUse -= bytes
	if m.memInUse < 0 {
		panic("phys: memory over-released on " + m.Name)
	}
}

func (m *Machine) String() string { return m.Name }

// Topology is the set of machines plus the switch joining them.
type Topology struct {
	engine   *sim.Engine
	fabric   *vnet.Fabric
	machines []*Machine
	backbone *vnet.Link // switch backplane (not normally the bottleneck)
}

// NewTopology creates an empty topology with a switch backplane of the given
// aggregate bandwidth.
func NewTopology(e *sim.Engine, fabric *vnet.Fabric, backboneBW float64, backboneLat sim.Time) *Topology {
	return &Topology{
		engine:   e,
		fabric:   fabric,
		backbone: fabric.NewLink("switch", backboneBW, backboneLat),
	}
}

// Engine returns the simulation engine.
func (t *Topology) Engine() *sim.Engine { return t.engine }

// Fabric returns the network fabric.
func (t *Topology) Fabric() *vnet.Fabric { return t.fabric }

// Backbone returns the switch backplane link.
func (t *Topology) Backbone() *vnet.Link { return t.backbone }

// AddMachine creates a machine with the given spec and attaches it to the
// switch.
//
//vhlint:owner machine
func (t *Topology) AddMachine(name string, spec MachineSpec) *Machine {
	duplex := spec.NICDuplexFactor
	if duplex <= 0 {
		duplex = 1.0
	}
	memBW := spec.MemBW
	if memBW <= 0 {
		memBW = 8e9
	}
	cacheBytes := spec.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = spec.DRAMBytes / 2
	}
	storBW := spec.StorNICBW
	if storBW <= 0 {
		storBW = spec.NICBW
	}
	storLat := spec.StorNICLat
	if storLat <= 0 {
		storLat = spec.NICLat
	}
	m := &Machine{
		Name:    name,
		Spec:    spec,
		CPU:     sim.NewFairShare(t.engine, name+".cpu", float64(spec.Cores), 1),
		Disk:    sim.NewFairShare(t.engine, name+".disk", spec.DiskBW, 0),
		Bridge:  t.fabric.NewLink(name+".bridge", spec.BridgeBW, spec.BridgeLat),
		NICTx:   t.fabric.NewLink(name+".tx", spec.NICBW, spec.NICLat),
		NICRx:   t.fabric.NewLink(name+".rx", spec.NICBW, spec.NICLat),
		NICProc: t.fabric.NewLink(name+".nicproc", spec.NICBW*duplex, 0),
		StorTx:  t.fabric.NewLink(name+".stor.tx", storBW, storLat),
		StorRx:  t.fabric.NewLink(name+".stor.rx", storBW, storLat),
		MemBus:  sim.NewFairShare(t.engine, name+".membus", memBW, 0),
		Cache:   NewPageCache(cacheBytes),
		dom:     sim.Domain(len(t.machines) + 1),
	}
	t.machines = append(t.machines, m)
	return m
}

// Machines returns all machines in creation order.
func (t *Topology) Machines() []*Machine { return t.machines }

// Path returns the link path for traffic from src to dst. Intra-machine
// traffic crosses only the virtual bridge; cross-machine traffic crosses the
// source bridge, the source NIC, the switch, the destination NIC and the
// destination bridge.
func (t *Topology) Path(src, dst *Machine) []*vnet.Link {
	if src == dst {
		return []*vnet.Link{src.Bridge}
	}
	return []*vnet.Link{
		src.Bridge, src.NICTx, src.NICProc, t.backbone,
		dst.NICProc, dst.NICRx, dst.Bridge,
	}
}

// HostPath returns the path for dom0-level traffic — the NFS client moving
// VM disk blocks, image fetches and live migration — which rides the
// dedicated storage/management NIC, not the guest bridge: a VM reaches its
// own dom0 through a hypercall, and dom0 kernel TCP needs no netback
// processing.
func (t *Topology) HostPath(src, dst *Machine) []*vnet.Link {
	if src == dst {
		return nil
	}
	return []*vnet.Link{src.StorTx, t.backbone, dst.StorRx}
}
