package phys

import (
	"testing"

	"vhadoop/internal/sim"
	"vhadoop/internal/vnet"
)

func testSpec() MachineSpec {
	return MachineSpec{
		Cores:     8,
		DRAMBytes: 32e9,
		DiskBW:    100e6,
		NICBW:     125e6,
		NICLat:    0.0001,
		BridgeBW:  500e6,
		BridgeLat: 0.00002,
	}
}

func newTestTopo(t *testing.T, n int) (*sim.Engine, *Topology) {
	t.Helper()
	e := sim.New(1)
	f := vnet.NewFabric(e)
	topo := NewTopology(e, f, 10e9, 0.00001)
	for i := 0; i < n; i++ {
		topo.AddMachine(string(rune('A'+i)), testSpec())
	}
	return e, topo
}

func TestMemoryReservation(t *testing.T) {
	_, topo := newTestTopo(t, 1)
	m := topo.Machines()[0]
	if err := m.ReserveMem(30e9); err != nil {
		t.Fatalf("reserve 30GB on 32GB machine: %v", err)
	}
	if err := m.ReserveMem(4e9); err == nil {
		t.Fatal("over-reservation succeeded")
	}
	m.ReleaseMem(30e9)
	if got := m.MemFree(); got != 32e9 {
		t.Fatalf("free = %v after release", got)
	}
}

func TestMemoryOverReleasePanics(t *testing.T) {
	_, topo := newTestTopo(t, 1)
	m := topo.Machines()[0]
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	m.ReleaseMem(1)
}

func TestIntraMachinePathIsBridgeOnly(t *testing.T) {
	_, topo := newTestTopo(t, 2)
	a := topo.Machines()[0]
	path := topo.Path(a, a)
	if len(path) != 1 || path[0] != a.Bridge {
		t.Fatalf("intra-machine path = %v, want just the bridge", path)
	}
}

func TestCrossMachinePathCrossesNICsAndSwitch(t *testing.T) {
	_, topo := newTestTopo(t, 2)
	a, b := topo.Machines()[0], topo.Machines()[1]
	path := topo.Path(a, b)
	want := []*vnet.Link{a.Bridge, a.NICTx, a.NICProc, topo.Backbone(), b.NICProc, b.NICRx, b.Bridge}
	if len(path) != len(want) {
		t.Fatalf("path has %d hops, want %d", len(path), len(want))
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("hop %d = %s, want %s", i, path[i].Name(), want[i].Name())
		}
	}
}

func TestHostPathUsesStorageNICs(t *testing.T) {
	_, topo := newTestTopo(t, 2)
	a, b := topo.Machines()[0], topo.Machines()[1]
	// dom0-to-dom0 (NFS, migration): storage NICs plus the switch, no
	// bridges and no netback processing.
	path := topo.HostPath(a, b)
	want := []*vnet.Link{a.StorTx, topo.Backbone(), b.StorRx}
	if len(path) != len(want) {
		t.Fatalf("dom0 path has %d hops, want %d", len(path), len(want))
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("hop %d = %s, want %s", i, path[i].Name(), want[i].Name())
		}
	}
	// Host-to-host same machine: free.
	if p := topo.HostPath(a, a); p != nil {
		t.Fatalf("same-machine dom0 path = %v, want nil", p)
	}
}

func TestCrossMachineTransferSlowerThanIntra(t *testing.T) {
	e, topo := newTestTopo(t, 2)
	a, b := topo.Machines()[0], topo.Machines()[1]
	var intra, cross sim.Time
	e.SpawnOn(a.Domain(), "intra", func(p *sim.Proc) {
		start := p.Now()
		topo.Fabric().Transfer(p, "i", topo.Path(a, a), 500e6)
		intra = p.Now() - start
	})
	e.Run()
	e2 := topo.Engine()
	_ = e2
	e.SpawnOn(a.Domain(), "cross", func(p *sim.Proc) {
		start := p.Now()
		topo.Fabric().Transfer(p, "c", topo.Path(a, b), 500e6)
		cross = p.Now() - start
	})
	e.Run()
	if cross <= intra {
		t.Fatalf("cross-machine transfer (%.3fs) not slower than intra (%.3fs)", cross, intra)
	}
}
