// Package cloud implements the paper's stated future work: "integrating the
// vHadoop platform to open source cloud computing system to provide scalable
// on-demand computation service for processing data-intensive (or big-data)
// applications with parallel machine learning algorithms" (§VI), i.e. the
// EC2-style flow its introduction motivates ("users can simply rent a hadoop
// virtual cluster ... to run the MapReduce tasks without purchasing
// expensive physical servers").
//
// A Service owns a pool of physical machines and provisions hadoop virtual
// clusters on demand: placement across the pool (packed or spread), VM
// booting from the NFS filer, HDFS/MapReduce daemon wiring, elastic
// scale-out and scale-in of running clusters (with HDFS re-replication when
// datanodes leave), and lease release that returns capacity to the pool.
package cloud

import (
	"errors"
	"fmt"

	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
	"vhadoop/internal/xen"
)

// ErrInsufficientCapacity means the pool cannot host the requested VMs.
var ErrInsufficientCapacity = errors.New("cloud: insufficient capacity")

// Placement selects how a cluster's VMs map onto the pool.
type Placement int

// Placement policies.
const (
	// Pack fills one machine before spilling to the next (the paper's
	// "normal" layout while capacity lasts).
	Pack Placement = iota
	// Spread round-robins VMs across the pool (cross-domain by design;
	// maximises per-cluster CPU headroom at the cost of network crossing).
	Spread
)

func (p Placement) String() string {
	if p == Pack {
		return "pack"
	}
	return "spread"
}

// Request describes one on-demand hadoop virtual cluster.
type Request struct {
	Name       string
	Nodes      int     // 1 master + Nodes-1 workers
	VMMemBytes float64 // per-VM memory
	Placement  Placement
	Boot       bool // charge image fetch + guest boot time
	HDFS       hdfs.Config
	MR         mapreduce.Config
}

// Lease is a provisioned, running hadoop virtual cluster.
type Lease struct {
	ID   int
	Name string

	VMs    []*xen.VM
	Master *xen.VM
	DFS    *hdfs.Cluster
	MR     *mapreduce.Cluster

	svc      *Service
	req      Request
	released bool
	nextVM   int
}

// Service provisions hadoop virtual clusters over a shared machine pool.
type Service struct {
	engine *sim.Engine
	mgr    *xen.Manager
	pool   []*phys.Machine
	leases []*Lease
	nextID int
}

// NewService creates a provisioning service over the pool.
func NewService(mgr *xen.Manager, pool []*phys.Machine) *Service {
	if len(pool) == 0 {
		panic("cloud: empty machine pool")
	}
	return &Service{engine: mgr.Engine(), mgr: mgr, pool: pool}
}

// Leases returns all leases ever granted (including released ones).
func (s *Service) Leases() []*Lease { return s.leases }

// ReleaseAll tears down every live lease — the teardown path that lets a
// simulation drain (each lease runs heartbeat daemons until released).
func (s *Service) ReleaseAll() {
	for _, l := range s.leases {
		l.Release()
	}
}

// capacityFor returns machine targets for n VMs of the given size, or an
// error when they cannot fit. It respects current reservations.
func (s *Service) placeVMs(n int, memBytes float64, policy Placement) ([]*phys.Machine, error) {
	free := make([]float64, len(s.pool))
	total := 0.0
	for i, pm := range s.pool {
		free[i] = pm.MemFree()
		total += free[i]
	}
	if total < float64(n)*memBytes {
		return nil, fmt.Errorf("%w: need %.0f MB, %.0f MB free in pool",
			ErrInsufficientCapacity, float64(n)*memBytes/1e6, total/1e6)
	}
	targets := make([]*phys.Machine, 0, n)
	switch policy {
	case Pack:
		for i := range s.pool {
			for free[i] >= memBytes && len(targets) < n {
				targets = append(targets, s.pool[i])
				free[i] -= memBytes
			}
		}
	case Spread:
		for len(targets) < n {
			placed := false
			for i := range s.pool {
				if free[i] >= memBytes && len(targets) < n {
					targets = append(targets, s.pool[i])
					free[i] -= memBytes
					placed = true
				}
			}
			if !placed {
				break
			}
		}
	}
	if len(targets) < n {
		return nil, fmt.Errorf("%w: fragmentation prevents placing %d x %.0f MB VMs",
			ErrInsufficientCapacity, n, memBytes/1e6)
	}
	return targets, nil
}

// Provision creates, (optionally) boots and wires up a hadoop virtual
// cluster, returning its lease. Boot time is dominated by streaming VM
// images from the shared filer, so large clusters start slower — the
// "rapid startup" the paper credits virtualization with is rapid relative
// to racking servers, not free.
func (s *Service) Provision(p *sim.Proc, req Request) (*Lease, error) {
	if req.Nodes < 2 {
		return nil, fmt.Errorf("cloud: request %q needs at least 2 nodes", req.Name)
	}
	if req.VMMemBytes <= 0 {
		req.VMMemBytes = 1024e6
	}
	targets, err := s.placeVMs(req.Nodes, req.VMMemBytes, req.Placement)
	if err != nil {
		return nil, err
	}
	s.nextID++
	l := &Lease{ID: s.nextID, Name: req.Name, svc: s, req: req}
	for i, pm := range targets {
		vm, err := s.mgr.Define(fmt.Sprintf("%s-vm%02d", req.Name, i), req.VMMemBytes, pm)
		if err != nil {
			return nil, fmt.Errorf("cloud: provisioning %s: %w", req.Name, err)
		}
		l.VMs = append(l.VMs, vm)
		l.nextVM = i + 1
	}
	if req.Boot {
		boots := make([]*sim.Proc, len(l.VMs))
		for i, vm := range l.VMs {
			vm := vm
			boots[i] = s.engine.Spawn("boot:"+vm.Name, func(q *sim.Proc) {
				s.mgr.Boot(q, vm)
			})
		}
		if err := sim.WaitProcs(p, boots...); err != nil {
			return nil, fmt.Errorf("cloud: booting %s: %w", req.Name, err)
		}
	}
	l.Master = l.VMs[0]
	l.DFS = hdfs.NewCluster(req.HDFS, l.Master)
	for _, vm := range l.VMs[1:] {
		l.DFS.AddDatanode(vm)
	}
	l.MR = mapreduce.NewCluster(s.engine, req.MR, l.Master, l.DFS)
	for _, vm := range l.VMs[1:] {
		l.MR.AddTracker(vm)
	}
	l.MR.Start()
	s.leases = append(s.leases, l)
	return l, nil
}

// Released reports whether the lease has been torn down.
func (l *Lease) Released() bool { return l.released }

// Workers returns the lease's live worker VMs.
func (l *Lease) Workers() []*xen.VM {
	var out []*xen.VM
	for _, vm := range l.VMs[1:] {
		if vm.State() == xen.StateRunning || vm.State() == xen.StatePaused {
			out = append(out, vm)
		}
	}
	return out
}

// ScaleOut adds n worker VMs to the running cluster: place, (optionally)
// boot, join HDFS and the jobtracker. New trackers start pulling tasks at
// their first heartbeat.
func (l *Lease) ScaleOut(p *sim.Proc, n int) error {
	if l.released {
		return fmt.Errorf("cloud: lease %q already released", l.Name)
	}
	targets, err := l.svc.placeVMs(n, l.req.VMMemBytes, l.req.Placement)
	if err != nil {
		return err
	}
	var added []*xen.VM
	for _, pm := range targets {
		vm, err := l.svc.mgr.Define(fmt.Sprintf("%s-vm%02d", l.Name, l.nextVM), l.req.VMMemBytes, pm)
		if err != nil {
			return err
		}
		l.nextVM++
		added = append(added, vm)
	}
	if l.req.Boot {
		boots := make([]*sim.Proc, len(added))
		for i, vm := range added {
			vm := vm
			boots[i] = l.svc.engine.Spawn("boot:"+vm.Name, func(q *sim.Proc) {
				l.svc.mgr.Boot(q, vm)
			})
		}
		if err := sim.WaitProcs(p, boots...); err != nil {
			return err
		}
	}
	for _, vm := range added {
		l.VMs = append(l.VMs, vm)
		l.DFS.AddDatanode(vm)
		tr := l.MR.AddTracker(vm)
		l.MR.StartTracker(tr)
	}
	return nil
}

// ScaleIn removes the last n workers: their tasktrackers are decommissioned
// (in-flight tasks re-queue), their datanodes drain via re-replication, and
// the VMs shut down cleanly.
func (l *Lease) ScaleIn(p *sim.Proc, n int) error {
	if l.released {
		return fmt.Errorf("cloud: lease %q already released", l.Name)
	}
	workers := l.Workers()
	if n >= len(workers) {
		return fmt.Errorf("cloud: cannot remove %d of %d workers", n, len(workers))
	}
	victims := workers[len(workers)-n:]
	for _, vm := range victims {
		for _, tr := range l.MR.Trackers() {
			if tr.VM == vm {
				l.MR.DecommissionTracker(tr)
			}
		}
		if d := l.DFS.DatanodeOf(vm); d != nil {
			l.DFS.Decommission(d)
		}
	}
	// Drain: restore replication before the VMs (and their disks) go away.
	l.DFS.ReReplicate(p)
	for _, vm := range victims {
		vm.Shutdown()
	}
	return nil
}

// Release tears the cluster down and returns its capacity to the pool.
func (l *Lease) Release() {
	if l.released {
		return
	}
	l.released = true
	l.MR.Stop()
	for _, vm := range l.VMs {
		vm.Shutdown()
	}
}
