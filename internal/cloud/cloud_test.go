package cloud_test

import (
	"errors"
	"fmt"
	"testing"

	"vhadoop/internal/cloud"
	"vhadoop/internal/core"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
	"vhadoop/internal/workloads"
)

// pool builds a bare platform (no pre-provisioned cluster) whose machines
// form the service's pool. We reuse core's hardware calibration by creating
// a minimal 2-node platform and ignoring its cluster.
func pool(seed int64) (*core.Platform, *cloud.Service) {
	opts := core.DefaultOptions()
	opts.Nodes = 2 // placeholder VMs; the service provisions its own
	opts.Seed = seed
	pl := core.MustNewPlatform(opts)
	// Free the placeholder VMs so the whole pool belongs to the service.
	for _, vm := range pl.VMs {
		vm.Shutdown()
	}
	return pl, cloud.NewService(pl.Xen, pl.PMs)
}

func request(name string, nodes int) cloud.Request {
	return cloud.Request{
		Name:       name,
		Nodes:      nodes,
		VMMemBytes: 1024e6,
		HDFS:       hdfs.DefaultConfig(),
		MR:         mapreduce.DefaultConfig(),
	}
}

func TestProvisionAndRunJob(t *testing.T) {
	pl, svc := pool(1)
	var res workloads.WordcountResult
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		l, err := svc.Provision(p, request("tenant-a", 8))
		if err != nil {
			return err
		}
		defer l.Release()
		tp := tenantPlatform(pl, l)
		res, err = workloads.RunWordcount(p, tp, "/a/in", 256e6, 2, true)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Runtime <= 0 || len(res.Counts) == 0 {
		t.Fatalf("job did not run: %+v", res.Stats)
	}
}

// tenantPlatform views a lease through the core.Platform API so the
// workload helpers run unchanged on leased clusters.
func tenantPlatform(pl *core.Platform, l *cloud.Lease) *core.Platform {
	tp := *pl
	tp.VMs = l.VMs
	tp.Master = l.Master
	tp.DFS = l.DFS
	tp.MR = l.MR
	return &tp
}

func TestTwoTenantsShareThePool(t *testing.T) {
	pl, svc := pool(1)
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		a, err := svc.Provision(p, request("tenant-a", 6))
		if err != nil {
			return err
		}
		b, err := svc.Provision(p, request("tenant-b", 6))
		if err != nil {
			return err
		}
		defer a.Release()
		defer b.Release()
		// Both tenants run concurrently.
		pa, pb := tenantPlatform(pl, a), tenantPlatform(pl, b)
		ja := pl.Engine.Spawn("job-a", func(q *sim.Proc) {
			if _, err := workloads.RunWordcount(q, pa, "/a/in", 128e6, 2, true); err != nil {
				q.Fail(err)
			}
		})
		jb := pl.Engine.Spawn("job-b", func(q *sim.Proc) {
			if _, err := workloads.RunWordcount(q, pb, "/b/in", 128e6, 2, true); err != nil {
				q.Fail(err)
			}
		})
		return sim.WaitProcs(p, ja, jb)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	pl, svc := pool(1)
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		// Two 32 GB machines hold at most 64 VMs of 1 GB.
		if _, err := svc.Provision(p, request("big", 60)); err != nil {
			return err
		}
		_, err := svc.Provision(p, request("overflow", 8))
		if !errors.Is(err, cloud.ErrInsufficientCapacity) {
			return fmt.Errorf("overflow request: err=%v, want ErrInsufficientCapacity", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	pl, svc := pool(1)
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		l, err := svc.Provision(p, request("first", 60))
		if err != nil {
			return err
		}
		l.Release()
		if !l.Released() {
			return fmt.Errorf("lease not marked released")
		}
		// The freed capacity must be reusable.
		_, err = svc.Provision(p, request("second", 60))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlacementPolicies(t *testing.T) {
	pl, svc := pool(1)
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		packed, err := svc.Provision(p, request("packed", 8))
		if err != nil {
			return err
		}
		for _, vm := range packed.VMs {
			if vm.Host() != pl.PMs[0] {
				return fmt.Errorf("pack policy placed %s on %s", vm.Name, vm.Host().Name)
			}
		}
		req := request("spread", 8)
		req.Placement = cloud.Spread
		spread, err := svc.Provision(p, req)
		if err != nil {
			return err
		}
		perPM := map[string]int{}
		for _, vm := range spread.VMs {
			perPM[vm.Host().Name]++
		}
		if perPM["pm1"] != 4 || perPM["pm2"] != 4 {
			return fmt.Errorf("spread policy placed %v", perPM)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBootChargesTime(t *testing.T) {
	pl, svc := pool(1)
	var cold, warm sim.Time
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		start := p.Now()
		req := request("booted", 4)
		req.Boot = true
		if _, err := svc.Provision(p, req); err != nil {
			return err
		}
		cold = p.Now() - start
		start = p.Now()
		if _, err := svc.Provision(p, request("instant", 4)); err != nil {
			return err
		}
		warm = p.Now() - start
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold < 30 {
		t.Fatalf("booted provisioning took %v, want >= image fetch + boot", cold)
	}
	if warm > 1 {
		t.Fatalf("unbooted provisioning took %v", warm)
	}
}

func TestScaleOutSpeedsUpJobs(t *testing.T) {
	run := func(scale bool) sim.Time {
		pl, svc := pool(1)
		var rt sim.Time
		_, err := pl.Run(func(p *sim.Proc) error {
			defer svc.ReleaseAll()
			l, err := svc.Provision(p, request("elastic", 4))
			if err != nil {
				return err
			}
			defer l.Release()
			if scale {
				if err := l.ScaleOut(p, 8); err != nil {
					return err
				}
			}
			tp := tenantPlatform(pl, l)
			res, err := workloads.RunWordcount(p, tp, "/e/in", 1024e6, 4, true)
			rt = res.Stats.Runtime
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	smallCluster, scaled := run(false), run(true)
	if scaled >= smallCluster {
		t.Fatalf("scaled-out cluster (%v) not faster than 3 workers (%v)", scaled, smallCluster)
	}
}

func TestScaleInPreservesData(t *testing.T) {
	pl, svc := pool(1)
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		l, err := svc.Provision(p, request("shrinking", 10))
		if err != nil {
			return err
		}
		defer l.Release()
		tp := tenantPlatform(pl, l)
		if _, err := tp.LoadText(p, "/s/data", 256e6, nil); err != nil {
			return err
		}
		if err := l.ScaleIn(p, 4); err != nil {
			return err
		}
		if got := len(l.Workers()); got != 5 {
			return fmt.Errorf("workers after scale-in = %d, want 5", got)
		}
		if ur := len(l.DFS.UnderReplicated()); ur != 0 {
			return fmt.Errorf("%d blocks under-replicated after drain", ur)
		}
		// All data still readable from a surviving node.
		_, err = l.DFS.Read(p, l.Workers()[0], "/s/data")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaleInRefusesToRemoveAllWorkers(t *testing.T) {
	pl, svc := pool(1)
	_, err := pl.Run(func(p *sim.Proc) error {
		defer svc.ReleaseAll()
		l, err := svc.Provision(p, request("tiny", 3))
		if err != nil {
			return err
		}
		if err := l.ScaleIn(p, 2); err == nil {
			return fmt.Errorf("removing every worker succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTenantsContendForSharedResources(t *testing.T) {
	// The same job takes longer when a second tenant hammers the shared
	// filer at the same time: leases isolate capacity, not bandwidth.
	run := func(withNeighbor bool) sim.Time {
		pl, svc := pool(1)
		var rt sim.Time
		_, err := pl.Run(func(p *sim.Proc) error {
			defer svc.ReleaseAll()
			a, err := svc.Provision(p, request("a", 8))
			if err != nil {
				return err
			}
			if withNeighbor {
				b, err := svc.Provision(p, request("b", 8))
				if err != nil {
					return err
				}
				tb := tenantPlatform(pl, b)
				pl.Engine.Spawn("noisy-neighbor", func(q *sim.Proc) {
					for i := 0; i < 4; i++ {
						o := workloads.DFSIOOptions{Files: 7, FileBytes: 256e6}
						if _, err := workloads.RunDFSIOWrite(q, tb, o); err != nil {
							q.Fail(err)
						}
						if err := tb.DFS.Delete(fmt.Sprintf("/dfsio/f%03d", 0)); err == nil {
							_ = err
						}
						for f := 0; f < 7; f++ {
							_ = tb.DFS.Delete(fmt.Sprintf("/dfsio/f%03d", f))
						}
					}
				})
			}
			ta := tenantPlatform(pl, a)
			res, err := workloads.RunWordcount(p, ta, "/a/in", 512e6, 4, true)
			rt = res.Stats.Runtime
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	alone, contended := run(false), run(true)
	if contended <= alone {
		t.Fatalf("noisy neighbor had no effect: %v vs %v", contended, alone)
	}
}
