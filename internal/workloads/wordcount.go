// Package workloads implements the four MapReduce benchmarks of the paper's
// Table I — Wordcount, MRBench, TeraSort (TeraGen/TeraSort/TeraValidate) and
// TestDFSIO — as real jobs for the vHadoop platform. Each workload processes
// real records (actual words, actual sortable keys) while the virtual sizes
// attached to those records drive the simulated I/O, network and CPU costs.
package workloads

import (
	"strings"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// WordcountCost is the calibrated cost model for Wordcount: Java-era
// tokenising plus hash updates run at roughly 10 MB/s per 2.4 GHz core on a
// 1-VCPU Xen guest; sorting and reducing are cheaper per byte.
func WordcountCost() mapreduce.CostModel {
	return mapreduce.CostModel{
		MapCPUPerByte:       1e-7,
		SortCPUPerByte:      5e-9,
		ReduceCPUPerByte:    1e-8,
		CombineCPUPerRecord: 1e-6,
		TaskSetupCPU:        1.5,
	}
}

// WordcountJob builds the canonical Wordcount job: mappers tokenise lines
// and emit (word, 1); reducers sum. A combiner pre-aggregates map-side.
func WordcountJob(input, output string, reduces int, combiner bool) mapreduce.JobConfig {
	cfg := mapreduce.JobConfig{
		Name:       "wordcount",
		Input:      []string{input},
		Output:     output,
		NumReduces: reduces,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(_ string, value any, emit mapreduce.Emit) {
				line := value.(datasets.Line)
				n := countWords(line.Text)
				if n == 0 {
					return
				}
				// Hadoop's wordcount map output is ~1.7x the input volume
				// (Text word + IntWritable per token); each real token
				// carries its share.
				per := line.Bytes / float64(n) * 1.7
				eachWord(line.Text, func(w string) { emit(w, 1, per) })
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				sum := 0
				for _, v := range values {
					sum += v.(int)
				}
				emit(key, sum, 24)
			})
		},
		// The combiner keeps the count semantics but its output volume per
		// distinct word shrinks to one record's worth.
		Cost: WordcountCost(),
	}
	if combiner {
		cfg.NewCombiner = cfg.NewReducer
	}
	return cfg
}

// asciiSpace mirrors strings.Fields' ASCII space set.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// countWords returns the number of space-separated words in s: the count
// strings.Fields would produce, without building the slice. Non-ASCII input
// falls back to strings.Fields for exact Unicode semantics.
//
//vhlint:hot
func countWords(s string) int {
	n := 0
	inWord := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return len(strings.Fields(s))
		}
		if asciiSpace[c] {
			inWord = false
		} else if !inWord {
			inWord = true
			n++
		}
	}
	return n
}

// eachWord calls fn for every space-separated word of s. Words are
// substrings sharing s's storage, so tokenising a line allocates neither the
// []string strings.Fields builds nor any byte copies. Falls back to
// strings.Fields for non-ASCII input to keep Unicode semantics.
//
//vhlint:hot
func eachWord(s string, fn func(string)) {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			for _, w := range strings.Fields(s) {
				fn(w)
			}
			return
		}
	}
	i := 0
	for i < len(s) {
		for i < len(s) && asciiSpace[s[i]] {
			i++
		}
		start := i
		for i < len(s) && !asciiSpace[s[i]] {
			i++
		}
		if i > start {
			fn(s[start:i])
		}
	}
}

// WordcountResult is one Wordcount benchmark run.
type WordcountResult struct {
	InputBytes float64
	Stats      mapreduce.JobStats
	Counts     map[string]int
}

// RunWordcount generates a corpus of the given virtual size, loads it into
// HDFS from the master and runs Wordcount over it, returning the job stats
// and the real word counts. Submission options (tenant, priority, deadline)
// pass through to the cluster.
func RunWordcount(p *sim.Proc, pl *core.Platform, inputName string, sizeBytes float64, reduces int, combiner bool, opts ...mapreduce.SubmitOption) (WordcountResult, error) {
	res := WordcountResult{InputBytes: sizeBytes}
	if !pl.DFS.Exists(inputName) {
		recs := datasets.Text(pl.Engine.Rand(), datasets.DefaultTextOptions(sizeBytes))
		if _, err := pl.LoadText(p, inputName, sizeBytes, recs); err != nil {
			return res, err
		}
	}
	h, err := pl.MR.Submit(p, WordcountJob(inputName, "", reduces, combiner), opts...)
	if err != nil {
		return res, err
	}
	stats, err := h.Wait(p)
	if err != nil {
		return res, err
	}
	out := h.OutputRecords()
	res.Stats = stats
	res.Counts = make(map[string]int, len(out))
	for _, kv := range out {
		res.Counts[kv.Key] = kv.Value.(int)
	}
	return res, nil
}
