package workloads

import (
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/sim"
)

func platform(t *testing.T, nodes int, layout core.Layout) *core.Platform {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Nodes = nodes
	opts.Layout = layout
	return core.MustNewPlatform(opts)
}

func TestWordcountMatchesReferenceCounts(t *testing.T) {
	pl := platform(t, 8, core.Normal)
	var res WordcountResult
	_, err := pl.Run(func(p *sim.Proc) error {
		var err error
		res, err = RunWordcount(p, pl, "/wc/in", 256e6, 2, true)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the reference counts from the same deterministic corpus.
	ref := datasets.CountWords(datasets.Text(
		sim.New(pl.Opts.Seed).Rand(), datasets.DefaultTextOptions(256e6)))
	if len(res.Counts) != len(ref) {
		t.Fatalf("distinct words = %d, want %d", len(res.Counts), len(ref))
	}
	for w, n := range ref {
		if res.Counts[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, res.Counts[w], n)
		}
	}
	if res.Stats.Runtime <= 0 {
		t.Fatal("no runtime recorded")
	}
}

func TestWordcountScalesWithInput(t *testing.T) {
	run := func(size float64) sim.Time {
		pl := platform(t, 8, core.Normal)
		var res WordcountResult
		if _, err := pl.Run(func(p *sim.Proc) error {
			var err error
			res, err = RunWordcount(p, pl, "/wc/in", size, 2, true)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return res.Stats.Runtime
	}
	small, large := run(128e6), run(1024e6)
	if large <= small {
		t.Fatalf("1GB wordcount (%v) not slower than 128MB (%v)", large, small)
	}
}

func TestMRBenchMapsScaleRuntime(t *testing.T) {
	run := func(maps int) sim.Time {
		pl := platform(t, 16, core.Normal)
		var res MRBenchResult
		if _, err := pl.Run(func(p *sim.Proc) error {
			opts := DefaultMRBenchOptions()
			opts.Maps = maps
			var err error
			res, err = RunMRBench(p, pl, opts)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return res.AvgTime
	}
	t1, t6 := run(1), run(6)
	if t6 <= t1 {
		t.Fatalf("6-map MRBench (%v) not slower than 1-map (%v)", t6, t1)
	}
}

func TestMRBenchMultipleRuns(t *testing.T) {
	pl := platform(t, 8, core.Normal)
	var res MRBenchResult
	if _, err := pl.Run(func(p *sim.Proc) error {
		opts := DefaultMRBenchOptions()
		opts.NumRuns = 3
		var err error
		res, err = RunMRBench(p, pl, opts)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 3 {
		t.Fatalf("times = %v, want 3 runs", res.Times)
	}
	for _, tt := range res.Times {
		if tt <= 0 {
			t.Fatalf("non-positive run time %v", tt)
		}
	}
}

func TestTeraSortSortsAndValidates(t *testing.T) {
	pl := platform(t, 8, core.Normal)
	var res TeraResult
	if _, err := pl.Run(func(p *sim.Proc) error {
		var err error
		res, err = RunTeraSort(p, pl, DefaultTeraOptions(200e6))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Fatal("terasort output failed validation")
	}
	if res.Rows != res.Options.RealRows {
		t.Fatalf("rows out = %d, want %d", res.Rows, res.Options.RealRows)
	}
	if res.GenTime <= 0 || res.SortTime <= 0 {
		t.Fatalf("gen=%v sort=%v", res.GenTime, res.SortTime)
	}
}

func TestTeraSortScalesWithData(t *testing.T) {
	run := func(bytes float64) TeraResult {
		pl := platform(t, 8, core.Normal)
		var res TeraResult
		if _, err := pl.Run(func(p *sim.Proc) error {
			var err error
			res, err = RunTeraSort(p, pl, DefaultTeraOptions(bytes))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return res
	}
	small, large := run(100e6), run(600e6)
	if large.SortTime <= small.SortTime {
		t.Fatalf("600MB sort (%v) not slower than 100MB (%v)", large.SortTime, small.SortTime)
	}
	if large.GenTime <= small.GenTime {
		t.Fatalf("600MB gen (%v) not slower than 100MB (%v)", large.GenTime, small.GenTime)
	}
}

func TestDFSIOReadFasterThanWrite(t *testing.T) {
	pl := platform(t, 16, core.Normal)
	var w, r DFSIOResult
	if _, err := pl.Run(func(p *sim.Proc) error {
		opts := DFSIOOptions{Files: 8, FileBytes: 128e6}
		var err error
		if w, err = RunDFSIOWrite(p, pl, opts); err != nil {
			return err
		}
		r, err = RunDFSIORead(p, pl, opts)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if r.ThroughputMBps <= w.ThroughputMBps {
		t.Fatalf("read throughput (%.1f MB/s) not above write (%.1f MB/s)",
			r.ThroughputMBps, w.ThroughputMBps)
	}
}

func TestDFSIOCrossDomainSlower(t *testing.T) {
	// Averaged over three seeds, like the paper's protocol: single runs of
	// an 8-file benchmark are sensitive to random replica placement.
	run := func(layout core.Layout) (float64, float64) {
		var wAvg, rAvg float64
		for seed := int64(1); seed <= 3; seed++ {
			opts := core.DefaultOptions()
			opts.Nodes = 16
			opts.Layout = layout
			opts.Seed = seed
			pl := core.MustNewPlatform(opts)
			var w, r DFSIOResult
			if _, err := pl.Run(func(p *sim.Proc) error {
				o := DFSIOOptions{Files: 8, FileBytes: 128e6}
				var err error
				if w, err = RunDFSIOWrite(p, pl, o); err != nil {
					return err
				}
				r, err = RunDFSIORead(p, pl, o)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			wAvg += w.ThroughputMBps / 3
			rAvg += r.ThroughputMBps / 3
		}
		return wAvg, rAvg
	}
	wN, rN := run(core.Normal)
	wX, rX := run(core.CrossDomain)
	// Writes are serialised by the filer disk in both layouts (the paper's
	// "NFS disk I/O bottleneck"): cross-domain must not be faster.
	if wX > wN*1.02 {
		t.Fatalf("cross-domain write throughput (%.1f) above normal (%.1f)", wX, wN)
	}
	// Reads come from the dom0 page cache of the machine holding the
	// replica: a cross-domain cluster pays the gigabit link, hard.
	if rX >= rN*0.8 {
		t.Fatalf("cross-domain read throughput (%.1f) not clearly below normal (%.1f)", rX, rN)
	}
}
