package workloads

import (
	"fmt"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// MRBenchOptions parametrises the MRBench small-job benchmark (Kim et al.,
// ICPADS 2008): it checks whether small jobs are responsive on the cluster.
// As in the paper's runs, the generated input grows with the number of map
// tasks (each map processes its own chunk of generated lines), so scaling
// maps also scales the concurrent shuffle traffic.
type MRBenchOptions struct {
	NumRuns     int
	Maps        int
	Reduces     int
	BytesPerMap float64
	LinesPerMap int
	// Input overrides the generated input's HDFS name (default derives
	// from the map/reduce shape, so equally-shaped runs share staging).
	Input string
}

// input returns the configured input name or the shape-derived default.
func (o MRBenchOptions) input() string {
	if o.Input == "" {
		return fmt.Sprintf("/mrbench/in-m%d-r%d", o.Maps, o.Reduces)
	}
	return o.Input
}

// DefaultMRBenchOptions mirrors the benchmark's defaults scaled to the
// testbed.
func DefaultMRBenchOptions() MRBenchOptions {
	return MRBenchOptions{NumRuns: 1, Maps: 2, Reduces: 1, BytesPerMap: 64e6, LinesPerMap: 128}
}

// MRBenchResult aggregates the runs.
type MRBenchResult struct {
	Options MRBenchOptions
	Times   []sim.Time
	AvgTime sim.Time
	Stats   []mapreduce.JobStats // one per run
}

// mrbenchJob: the real MRBench runs a trivial text job (identity map,
// pass-through reduce), so the shuffle carries the full input volume and the
// measurement target is framework overhead plus data movement.
func mrbenchJob(input string, run, maps, reduces int, bytesPerRecord float64) mapreduce.JobConfig {
	return mapreduce.JobConfig{
		Name:       fmt.Sprintf("mrbench-%d", run),
		Input:      []string{input},
		NumReduces: reduces,
		NumMaps:    maps,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(key string, value any, emit mapreduce.Emit) {
				line := value.(datasets.Line)
				emit(line.Text, key, bytesPerRecord)
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				for _, v := range values {
					emit(key, v, float64(len(key))+16)
				}
			})
		},
		Cost: mapreduce.CostModel{
			MapCPUPerByte:    1e-8,
			SortCPUPerByte:   5e-9,
			ReduceCPUPerByte: 1e-8,
			TaskSetupCPU:     1.5,
		},
	}
}

// RunMRBench generates the input once, then runs the small job NumRuns times
// and reports each runtime plus the average — the number MRBench prints.
// Submission options pass through to every run's job.
func RunMRBench(p *sim.Proc, pl *core.Platform, opts MRBenchOptions, subOpts ...mapreduce.SubmitOption) (MRBenchResult, error) {
	res := MRBenchResult{Options: opts}
	input := opts.input()
	if !pl.DFS.Exists(input) {
		totalBytes := opts.BytesPerMap * float64(opts.Maps)
		textOpts := datasets.TextOptions{
			VirtualBytes:   totalBytes,
			RealLines:      opts.LinesPerMap * opts.Maps,
			WordsPerLine:   8,
			VocabularySize: 200,
			ZipfS:          1.2,
		}
		var recs []hdfs.Record = datasets.Text(pl.Engine.Rand(), textOpts)
		if _, err := pl.LoadText(p, input, totalBytes, recs); err != nil {
			return res, err
		}
	}
	bytesPerRecord := opts.BytesPerMap * float64(opts.Maps) / float64(opts.LinesPerMap*opts.Maps)
	for run := 0; run < opts.NumRuns; run++ {
		h, err := pl.MR.Submit(p, mrbenchJob(input, run, opts.Maps, opts.Reduces, bytesPerRecord), subOpts...)
		if err != nil {
			return res, err
		}
		stats, err := h.Wait(p)
		if err != nil {
			return res, err
		}
		res.Times = append(res.Times, stats.Runtime)
		res.AvgTime += stats.Runtime
		res.Stats = append(res.Stats, stats)
	}
	res.AvgTime /= sim.Time(len(res.Times))
	return res, nil
}
