package workloads

import (
	"fmt"
	"strconv"

	"vhadoop/internal/clustering"
	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// Spec is one self-describing workload instance behind a uniform surface:
// the job service (and any other multi-workload driver) enqueues, stages
// and runs wordcount, terasort, dfsio, mrbench and canopy through this
// interface without per-type switches.
type Spec interface {
	// Workload is the family name ("wordcount", "terasort", ...).
	Workload() string
	// Inputs lists the HDFS files the workload's first job reads — the
	// locality-placement signal. Empty when the workload generates its own
	// input in-band (TeraGen) or bypasses MapReduce entirely (DFSIO).
	Inputs() []string
	// Demand estimates the workload's peak (map, reduce) slot demand, the
	// fit test the scheduler's backfill pass uses.
	Demand() (maps, reduces int)
	// Bytes estimates the HDFS footprint the workload creates — the
	// admission controller's capacity signal.
	Bytes() float64
	// Stage idempotently prepares the workload's input data. The job
	// service stages at submission time, on the submitting proc, so
	// concurrently dispatched Runs never race over shared input files.
	Stage(p *sim.Proc, pl *core.Platform) error
	// Run stages any remaining input and executes the workload to
	// completion, forwarding opts (tenant, priority, deadline, output
	// collection) to every MapReduce submission it makes.
	Run(p *sim.Proc, pl *core.Platform, opts ...mapreduce.SubmitOption) (Result, error)
}

// Result is the uniform outcome of one workload run.
type Result struct {
	Workload string
	Elapsed  sim.Time
	// Stats carries the stats of the MapReduce jobs the workload ran,
	// where the workload surfaces them (DFSIO runs none).
	Stats []mapreduce.JobStats
	// Output is the workload's canonical output records — the byte-stable
	// serialization chaos and determinism suites compare.
	Output []mapreduce.KV
}

// WordcountSpec sizes one wordcount instance over a generated corpus.
type WordcountSpec struct {
	Input     string  // HDFS input file (staged on first use)
	SizeBytes float64 // virtual corpus volume
	Reduces   int
	Combiner  bool
	// RealLines overrides the generated corpus's real line count
	// (0: DefaultTextOptions scaling). Backlogs of thousands of small jobs
	// use a few lines each to keep real computation proportionate.
	RealLines int
}

// Workload implements Spec.
func (s WordcountSpec) Workload() string { return "wordcount" }

// Inputs implements Spec.
func (s WordcountSpec) Inputs() []string { return []string{s.Input} }

// Demand implements Spec: one map per 64 MB block plus the reduces.
func (s WordcountSpec) Demand() (int, int) { return int(s.SizeBytes/64e6) + 1, s.Reduces }

// Bytes implements Spec.
func (s WordcountSpec) Bytes() float64 { return s.SizeBytes }

// Stage implements Spec: generates and loads the corpus once.
func (s WordcountSpec) Stage(p *sim.Proc, pl *core.Platform) error {
	if pl.DFS.Exists(s.Input) {
		return nil
	}
	textOpts := datasets.DefaultTextOptions(s.SizeBytes)
	if s.RealLines > 0 {
		textOpts.RealLines = s.RealLines
	}
	recs := datasets.Text(pl.Engine.Rand(), textOpts)
	_, err := pl.LoadText(p, s.Input, s.SizeBytes, recs)
	return err
}

// Run implements Spec.
func (s WordcountSpec) Run(p *sim.Proc, pl *core.Platform, opts ...mapreduce.SubmitOption) (Result, error) {
	res := Result{Workload: s.Workload()}
	start := p.Now()
	if err := s.Stage(p, pl); err != nil {
		return res, err
	}
	h, err := pl.MR.Submit(p, WordcountJob(s.Input, "", s.Reduces, s.Combiner), opts...)
	if err != nil {
		return res, err
	}
	stats, err := h.Wait(p)
	if err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	res.Stats = []mapreduce.JobStats{stats}
	res.Output = h.OutputRecords()
	return res, nil
}

// TeraSortSpec wraps the TeraGen + TeraSort + TeraValidate pipeline.
type TeraSortSpec struct {
	Options TeraOptions
}

// Workload implements Spec.
func (s TeraSortSpec) Workload() string { return "terasort" }

// Inputs implements Spec: TeraGen creates its own input in-band.
func (s TeraSortSpec) Inputs() []string { return nil }

// Demand implements Spec.
func (s TeraSortSpec) Demand() (int, int) {
	maps := s.Options.GenMaps
	if maps == 0 {
		maps = 4
	}
	return maps, s.Options.SortReduces
}

// Bytes implements Spec: generated volume plus the sorted copy.
func (s TeraSortSpec) Bytes() float64 { return 2.2 * s.Options.Bytes }

// Stage implements Spec: generation is part of the measured pipeline.
func (s TeraSortSpec) Stage(p *sim.Proc, pl *core.Platform) error { return nil }

// Run implements Spec.
func (s TeraSortSpec) Run(p *sim.Proc, pl *core.Platform, opts ...mapreduce.SubmitOption) (Result, error) {
	res := Result{Workload: s.Workload()}
	start := p.Now()
	tr, err := RunTeraSort(p, pl, s.Options, opts...)
	if err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	res.Output = tr.Output
	return res, nil
}

// DFSIOSpec wraps the TestDFSIO write-then-read phase pair.
type DFSIOSpec struct {
	Options DFSIOOptions
}

// Workload implements Spec.
func (s DFSIOSpec) Workload() string { return "dfsio" }

// Inputs implements Spec: DFSIO bypasses MapReduce.
func (s DFSIOSpec) Inputs() []string { return nil }

// Demand implements Spec: no MapReduce slots.
func (s DFSIOSpec) Demand() (int, int) { return 0, 0 }

// Bytes implements Spec.
func (s DFSIOSpec) Bytes() float64 { return s.Options.FileBytes * float64(s.Options.Files) }

// Stage implements Spec: the write phase is the staging.
func (s DFSIOSpec) Stage(p *sim.Proc, pl *core.Platform) error { return nil }

// Run implements Spec: its canonical output is the two phase throughputs.
func (s DFSIOSpec) Run(p *sim.Proc, pl *core.Platform, _ ...mapreduce.SubmitOption) (Result, error) {
	res := Result{Workload: s.Workload()}
	start := p.Now()
	wr, err := RunDFSIOWrite(p, pl, s.Options)
	if err != nil {
		return res, err
	}
	rd, err := RunDFSIORead(p, pl, s.Options)
	if err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	res.Output = []mapreduce.KV{
		{Key: "write", Value: fmt.Sprintf("%.9g", wr.ThroughputMBps)},
		{Key: "read", Value: fmt.Sprintf("%.9g", rd.ThroughputMBps)},
	}
	return res, nil
}

// MRBenchSpec wraps the MRBench small-job responsiveness benchmark.
type MRBenchSpec struct {
	Options MRBenchOptions
}

// Workload implements Spec.
func (s MRBenchSpec) Workload() string { return "mrbench" }

// Inputs implements Spec.
func (s MRBenchSpec) Inputs() []string { return []string{s.Options.input()} }

// Demand implements Spec.
func (s MRBenchSpec) Demand() (int, int) { return s.Options.Maps, s.Options.Reduces }

// Bytes implements Spec.
func (s MRBenchSpec) Bytes() float64 { return s.Options.BytesPerMap * float64(s.Options.Maps) }

// Stage implements Spec: generates and loads the shaped input once.
func (s MRBenchSpec) Stage(p *sim.Proc, pl *core.Platform) error {
	input := s.Options.input()
	if pl.DFS.Exists(input) {
		return nil
	}
	totalBytes := s.Options.BytesPerMap * float64(s.Options.Maps)
	recs := datasets.Text(pl.Engine.Rand(), datasets.TextOptions{
		VirtualBytes:   totalBytes,
		RealLines:      s.Options.LinesPerMap * s.Options.Maps,
		WordsPerLine:   8,
		VocabularySize: 200,
		ZipfS:          1.2,
	})
	_, err := pl.LoadText(p, input, totalBytes, recs)
	return err
}

// Run implements Spec: its canonical output is the per-run runtimes.
func (s MRBenchSpec) Run(p *sim.Proc, pl *core.Platform, opts ...mapreduce.SubmitOption) (Result, error) {
	res := Result{Workload: s.Workload()}
	start := p.Now()
	if err := s.Stage(p, pl); err != nil {
		return res, err
	}
	mb, err := RunMRBench(p, pl, s.Options, opts...)
	if err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	res.Stats = mb.Stats
	res.Output = make([]mapreduce.KV, len(mb.Times))
	for i, t := range mb.Times {
		res.Output[i] = mapreduce.KV{
			Key:   fmt.Sprintf("run%03d", i),
			Value: strconv.FormatFloat(float64(t), 'g', -1, 64),
		}
	}
	return res, nil
}

// CanopySpec wraps Mahout-style canopy clustering over the control-chart
// dataset — the library workload of the mix.
type CanopySpec struct {
	Dir    string  // HDFS working path for the vectors
	T1, T2 float64 // canopy thresholds (0: the chaos-matrix defaults 80/55)
}

// Workload implements Spec.
func (s CanopySpec) Workload() string { return "canopy" }

// Inputs implements Spec.
func (s CanopySpec) Inputs() []string { return []string{s.Dir} }

// Demand implements Spec: the driver sizes maps to the worker count; two
// maps plus one reduce is the conservative fit estimate.
func (s CanopySpec) Demand() (int, int) { return 2, 1 }

// Bytes implements Spec: the control-chart vectors are small.
func (s CanopySpec) Bytes() float64 { return 2e6 }

// Stage implements Spec: vector loading needs the driver Run constructs.
func (s CanopySpec) Stage(p *sim.Proc, pl *core.Platform) error { return nil }

// Run implements Spec: its canonical output is the final canopy centers.
func (s CanopySpec) Run(p *sim.Proc, pl *core.Platform, opts ...mapreduce.SubmitOption) (Result, error) {
	res := Result{Workload: s.Workload()}
	t1, t2 := s.T1, s.T2
	if t1 == 0 {
		t1 = 80
	}
	if t2 == 0 {
		t2 = 55
	}
	start := p.Now()
	series := datasets.ControlChart(pl.Engine.Rand(), datasets.DefaultControlChartOptions())
	vectors := clustering.FromFloats(datasets.ControlVectors(series))
	d := clustering.NewDriver(pl, s.Dir)
	d.SubmitOpts = opts
	if err := d.Load(p, vectors); err != nil {
		return res, err
	}
	cr, err := clustering.CanopyMR(p, d,
		clustering.CanopyOptions{T1: t1, T2: t2, Distance: clustering.Euclidean})
	if err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	res.Stats = cr.JobStats
	res.Output = make([]mapreduce.KV, len(cr.Centers))
	for i, c := range cr.Centers {
		res.Output[i] = mapreduce.KV{Key: fmt.Sprintf("c%04d", i), Value: fmt.Sprintf("%.9g", []float64(c))}
	}
	return res, nil
}
