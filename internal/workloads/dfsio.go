package workloads

import (
	"fmt"

	"vhadoop/internal/core"
	"vhadoop/internal/sim"
)

// TestDFSIO is the HDFS stress benchmark of Table I: N concurrent writers
// (then readers), one per worker VM, each streaming one file through HDFS.
// As in Hadoop's TestDFSIO, each file is handled by the task running on the
// VM that also stores its first replica, so reads are datanode-local while
// writes additionally pay the replication pipeline — which is why measured
// read throughput exceeds write throughput.

// DFSIOOptions sizes one TestDFSIO run.
type DFSIOOptions struct {
	Files     int     // concurrent files (one per worker, round-robin)
	FileBytes float64 // size of each file
	// Dir is the HDFS directory holding the benchmark files (default
	// "/dfsio"). Concurrent DFSIO jobs in the job service get distinct
	// directories so their file sets never collide.
	Dir string
}

// dir returns the configured directory or the classic default.
func (o DFSIOOptions) dir() string {
	if o.Dir == "" {
		return "/dfsio"
	}
	return o.Dir
}

// DFSIOResult is one read or write phase.
type DFSIOResult struct {
	Kind           string // "write" or "read"
	Options        DFSIOOptions
	Elapsed        sim.Time
	ThroughputMBps float64 // aggregate MB/s across all files
	PerFileMBps    float64 // mean per-file throughput, what TestDFSIO prints
}

// RunDFSIOWrite runs the write phase: every file is written concurrently
// from its assigned worker VM.
func RunDFSIOWrite(p *sim.Proc, pl *core.Platform, opts DFSIOOptions) (DFSIOResult, error) {
	res := DFSIOResult{Kind: "write", Options: opts}
	workers := pl.Workers()
	start := p.Now()
	procs := make([]*sim.Proc, opts.Files)
	for i := 0; i < opts.Files; i++ {
		vm := workers[i%len(workers)]
		name := fmt.Sprintf("%s/f%03d", opts.dir(), i)
		procs[i] = pl.Engine.Spawn("dfsio-write", func(q *sim.Proc) {
			if _, err := pl.DFS.Write(q, vm, name, opts.FileBytes, nil); err != nil {
				q.Fail(err)
			}
		})
	}
	if err := sim.WaitProcs(p, procs...); err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	total := opts.FileBytes * float64(opts.Files)
	res.ThroughputMBps = total / res.Elapsed / 1e6
	res.PerFileMBps = res.ThroughputMBps / float64(opts.Files)
	return res, nil
}

// RunDFSIORead runs the read phase over files written by RunDFSIOWrite.
// Readers are offset from the writers by one VM, reflecting that TestDFSIO's
// read maps rarely all land on the datanode holding the first replica; with
// replication 2 the data still usually arrives from a nearby node.
func RunDFSIORead(p *sim.Proc, pl *core.Platform, opts DFSIOOptions) (DFSIOResult, error) {
	res := DFSIOResult{Kind: "read", Options: opts}
	workers := pl.Workers()
	start := p.Now()
	procs := make([]*sim.Proc, opts.Files)
	stride := len(workers)/2 + 1
	for i := 0; i < opts.Files; i++ {
		vm := workers[(i+stride)%len(workers)]
		name := fmt.Sprintf("%s/f%03d", opts.dir(), i)
		procs[i] = pl.Engine.Spawn("dfsio-read", func(q *sim.Proc) {
			if _, err := pl.DFS.Read(q, vm, name); err != nil {
				q.Fail(err)
			}
		})
	}
	if err := sim.WaitProcs(p, procs...); err != nil {
		return res, err
	}
	res.Elapsed = p.Now() - start
	total := opts.FileBytes * float64(opts.Files)
	res.ThroughputMBps = total / res.Elapsed / 1e6
	res.PerFileMBps = res.ThroughputMBps / float64(opts.Files)
	return res, nil
}
