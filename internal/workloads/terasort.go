package workloads

import (
	"fmt"
	"sort"

	"vhadoop/internal/core"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// TeraSort reproduces the three-step benchmark: TeraGen writes rows of
// random keys to HDFS, TeraSort sorts them with a total-order partitioner,
// TeraValidate checks global order. Rows are the canonical 100 bytes; the
// real record count is down-scaled while virtual sizes carry the full I/O
// volume.

// TeraOptions sizes one TeraSort run.
type TeraOptions struct {
	Bytes       float64 // total data volume (virtual)
	RealRows    int     // actual keys generated and sorted
	GenMaps     int     // TeraGen map tasks
	SortReduces int
	// Dir is the HDFS working directory (default "/tera"). Concurrent
	// TeraSort jobs in the job service get distinct directories.
	Dir string
}

// dir returns the configured working directory or the classic default.
func (o TeraOptions) dir() string {
	if o.Dir == "" {
		return "/tera"
	}
	return o.Dir
}

// DefaultTeraOptions scales the real row count with the data volume.
func DefaultTeraOptions(bytes float64) TeraOptions {
	rows := int(bytes / 1e6 * 4) // 4 real rows per virtual MB
	if rows < 64 {
		rows = 64
	}
	if rows > 20000 {
		rows = 20000
	}
	return TeraOptions{Bytes: bytes, RealRows: rows, GenMaps: 4, SortReduces: 4}
}

// TeraResult is one full TeraSort benchmark run.
type TeraResult struct {
	Options   TeraOptions
	GenTime   sim.Time
	SortTime  sim.Time
	Validated bool
	Rows      int
	Output    []mapreduce.KV // the globally sorted rows (key, payload)
}

const teraKeyLen = 10

// teraKey produces a random 10-character printable key, like gensort's.
func teraKey(rng interface{ Intn(int) int }) string {
	const alphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	b := make([]byte, teraKeyLen)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// teraGenJob: each map generates its share of rows and writes them to HDFS
// (map-only, like Hadoop's TeraGen).
func teraGenJob(seed, output string, opts TeraOptions) mapreduce.JobConfig {
	return mapreduce.JobConfig{
		Name:    "teragen",
		Input:   []string{seed},
		Output:  output,
		NumMaps: opts.GenMaps,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(key string, value any, emit mapreduce.Emit) {
				row := value.(teraRow)
				emit(row.key, row, row.bytes)
			})
		},
		Cost: mapreduce.CostModel{
			MapCPUPerByte: 2e-9, // generation is cheap: I/O bound
			TaskSetupCPU:  1.5,
		},
	}
}

// teraRow is one generated row: the sort key plus its 90-byte payload.
type teraRow struct {
	key     string
	payload string
	bytes   float64
}

// TeraGen runs the generation step: a seed file carrying the real rows is
// staged cheaply, then a map-only job writes the full-volume output through
// HDFS replication pipelines.
func TeraGen(p *sim.Proc, pl *core.Platform, output string, opts TeraOptions, subOpts ...mapreduce.SubmitOption) (sim.Time, error) {
	start := p.Now()
	rng := pl.Engine.Rand()
	perRow := opts.Bytes / float64(opts.RealRows)
	recs := make([]hdfs.Record, opts.RealRows)
	for i := range recs {
		row := teraRow{key: teraKey(rng), payload: fmt.Sprintf("row%07d", i), bytes: perRow}
		recs[i] = hdfs.Record{Key: row.key, Value: row, Size: 64} // seed rows are tiny
	}
	seed := output + ".seed"
	if _, err := pl.DFS.Write(p, pl.Master, seed, float64(len(recs)*64), recs); err != nil {
		return 0, err
	}
	h, err := pl.MR.Submit(p, teraGenJob(seed, output, opts), subOpts...)
	if err != nil {
		return 0, err
	}
	if _, err := h.Wait(p); err != nil {
		return 0, err
	}
	return p.Now() - start, nil
}

// samplePartitionBoundaries picks NumReduces-1 key boundaries from the
// generated rows, as TeraSort's input sampler does.
func samplePartitionBoundaries(rows []hdfs.Record, reduces int) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key
	}
	sort.Strings(keys)
	bounds := make([]string, reduces-1)
	for i := range bounds {
		bounds[i] = keys[(i+1)*len(keys)/reduces]
	}
	return bounds
}

// teraSortJob: identity map, total-order partition, identity reduce. The
// sorting itself happens in the framework's sort phase.
func teraSortJob(input, output string, reduces int, bounds []string) mapreduce.JobConfig {
	return mapreduce.JobConfig{
		Name:       "terasort",
		Input:      []string{input},
		Output:     output,
		NumReduces: reduces,
		Partition: func(key string, _ int) int {
			// Total-order partitioner: binary search the sampled boundaries.
			return sort.SearchStrings(bounds, key+"\x00")
		},
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(key string, value any, emit mapreduce.Emit) {
				row := value.(teraRow)
				emit(row.key, row, row.bytes)
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				for _, v := range values {
					row := v.(teraRow)
					emit(key, row.payload, row.bytes)
				}
			})
		},
		Cost: mapreduce.CostModel{
			MapCPUPerByte:    4e-9,
			SortCPUPerByte:   1.2e-8, // the heavy phase
			ReduceCPUPerByte: 4e-9,
			TaskSetupCPU:     1.5,
		},
	}
}

// RunTeraSort runs TeraGen + TeraSort + TeraValidate and reports the times
// of the two measured steps plus the validation verdict. Submission options
// pass through to both MapReduce jobs.
func RunTeraSort(p *sim.Proc, pl *core.Platform, opts TeraOptions, subOpts ...mapreduce.SubmitOption) (TeraResult, error) {
	res := TeraResult{Options: opts}
	data := fmt.Sprintf("%s/in-%.0f", opts.dir(), opts.Bytes)
	genTime, err := TeraGen(p, pl, data, opts, subOpts...)
	if err != nil {
		return res, fmt.Errorf("teragen: %w", err)
	}
	res.GenTime = genTime

	gen, err := pl.DFS.Lookup(data + ".seed")
	if err != nil {
		return res, err
	}
	bounds := samplePartitionBoundaries(gen.Records(), opts.SortReduces)

	start := p.Now()
	// TeraSort reads TeraGen's committed output files.
	var inputs []string
	for _, name := range pl.DFS.Files() {
		if len(name) > len(data) && name[:len(data)+1] == data+"/" {
			inputs = append(inputs, name)
		}
	}
	spec := teraSortJob(data, data+".sorted", opts.SortReduces, bounds)
	spec.Input = inputs
	h, err := pl.MR.Submit(p, spec, subOpts...)
	if err != nil {
		return res, fmt.Errorf("terasort: %w", err)
	}
	if _, err := h.Wait(p); err != nil {
		return res, fmt.Errorf("terasort: %w", err)
	}
	out := h.OutputRecords()
	res.SortTime = p.Now() - start
	res.Rows = len(out)
	res.Output = out

	// TeraValidate: the output partitions are concatenated in partition
	// order, so global sortedness is simply pairwise order.
	res.Validated = true
	for i := 1; i < len(out); i++ {
		if out[i].Key < out[i-1].Key {
			res.Validated = false
			return res, fmt.Errorf("teravalidate: row %d key %q < previous %q", i, out[i].Key, out[i-1].Key)
		}
	}
	return res, nil
}
