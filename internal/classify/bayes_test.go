package classify

import (
	"math"
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/sim"
)

var testLabels = []string{"sports", "science", "politics"}

func TestReferenceTrainAndClassify(t *testing.T) {
	docs := SyntheticDocs(7, testLabels, 80, 30)
	m, err := Train(docs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Labels) != 3 {
		t.Fatalf("labels = %v", m.Labels)
	}
	if acc := Accuracy(m, docs); acc < 0.95 {
		t.Fatalf("training accuracy = %v", acc)
	}
	// Held-out set from a different seed.
	held := SyntheticDocs(99, testLabels, 20, 30)
	if acc := Accuracy(m, held); acc < 0.85 {
		t.Fatalf("held-out accuracy = %v", acc)
	}
}

func TestTrainRejectsEmptyAndUnlabelled(t *testing.T) {
	if _, err := Train(nil, 1.0); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Train([]Document{{ID: "x", Tokens: []string{"a"}}}, 1.0); err == nil {
		t.Fatal("unlabelled training document accepted")
	}
}

func TestMRTrainMatchesReference(t *testing.T) {
	docs := SyntheticDocs(7, testLabels, 60, 25)
	opts := core.DefaultOptions()
	opts.Nodes = 8
	pl := core.MustNewPlatform(opts)
	tr := NewTrainer(pl, "/bayes/train")
	var mr *Model
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := tr.Load(p, docs); err != nil {
			return err
		}
		var err error
		mr, _, err = tr.TrainMR(p)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Train(docs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if mr.TotalDocs != ref.TotalDocs {
		t.Fatalf("total docs: mr=%v ref=%v", mr.TotalDocs, ref.TotalDocs)
	}
	for _, l := range ref.Labels {
		if mr.LabelDocs[l] != ref.LabelDocs[l] {
			t.Fatalf("label %s docs: mr=%v ref=%v", l, mr.LabelDocs[l], ref.LabelDocs[l])
		}
		if math.Abs(mr.TotalTokens[l]-ref.TotalTokens[l]) > 1e-9 {
			t.Fatalf("label %s tokens: mr=%v ref=%v", l, mr.TotalTokens[l], ref.TotalTokens[l])
		}
		for tok, n := range ref.TokenCounts[l] {
			if mr.TokenCounts[l][tok] != n {
				t.Fatalf("count[%s][%s]: mr=%v ref=%v", l, tok, mr.TokenCounts[l][tok], n)
			}
		}
	}
	if len(mr.Vocabulary) != len(ref.Vocabulary) {
		t.Fatalf("vocabulary: mr=%d ref=%d", len(mr.Vocabulary), len(ref.Vocabulary))
	}
}

func TestMRClassifyEndToEnd(t *testing.T) {
	train := SyntheticDocs(7, testLabels, 60, 25)
	test := SyntheticDocs(99, testLabels, 15, 25)
	opts := core.DefaultOptions()
	opts.Nodes = 8
	pl := core.MustNewPlatform(opts)
	tr := NewTrainer(pl, "/bayes/train")
	var preds map[string]string
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := tr.Load(p, train); err != nil {
			return err
		}
		m, _, err := tr.TrainMR(p)
		if err != nil {
			return err
		}
		// Upload the unlabelled test set.
		unl := Unlabel(test)
		recs := make([]hdfs.Record, len(unl))
		for i, d := range unl {
			recs[i] = hdfs.Record{Key: d.ID, Value: d, Size: tr.BytesPerDoc}
		}
		if _, err := pl.DFS.Write(p, pl.Master, "/bayes/test", tr.BytesPerDoc*float64(len(recs)), recs); err != nil {
			return err
		}
		preds, _, err = tr.ClassifyMR(p, m, "/bayes/test")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(test) {
		t.Fatalf("predictions = %d, want %d", len(preds), len(test))
	}
	correct := 0
	for _, d := range test {
		if preds[d.ID] == d.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.8 {
		t.Fatalf("MR classification accuracy = %v", acc)
	}
}

func TestSyntheticDocsDeterministic(t *testing.T) {
	a := SyntheticDocs(3, testLabels, 5, 10)
	b := SyntheticDocs(3, testLabels, 5, 10)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Tokens[0] != b[i].Tokens[0] {
			t.Fatal("corpus not deterministic")
		}
	}
}

// Property: the model's token totals always equal the corpus's token count,
// for any synthetic corpus shape.
func TestModelCountConservationProperty(t *testing.T) {
	docs := SyntheticDocs(11, testLabels, 30, 20)
	m, err := Train(docs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var wantTokens int
	for _, d := range docs {
		wantTokens += len(d.Tokens)
	}
	var gotTokens float64
	for _, l := range m.Labels {
		gotTokens += m.TotalTokens[l]
	}
	if int(gotTokens) != wantTokens {
		t.Fatalf("token totals %v != corpus tokens %d", gotTokens, wantTokens)
	}
	if int(m.TotalDocs) != len(docs) {
		t.Fatalf("doc total %v != %d", m.TotalDocs, len(docs))
	}
}

func TestSmoothingPreventsZeroProbabilities(t *testing.T) {
	docs := []Document{
		{ID: "1", Label: "a", Tokens: []string{"x"}},
		{ID: "2", Label: "b", Tokens: []string{"y"}},
	}
	m, err := Train(docs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// A token never seen under either label must still classify finitely.
	if got := m.Classify([]string{"zzz"}); got != "a" && got != "b" {
		t.Fatalf("classified unseen token as %q", got)
	}
}
