// Package classify extends the vHadoop Machine Learning Algorithm Library
// with its second category: MapReduce-based classification. The paper (§II-B)
// describes the library as covering "clustering, classification,
// recommendations"; its evaluation exercises clustering, and this package
// supplies the classification side in Mahout 0.6's style — a multinomial
// Naive Bayes classifier with a distributed training job (count feature and
// label frequencies) and a map-only classification job.
//
// As everywhere in this repository, both phases run real computation over
// real records: the trained model contains actual smoothed log-likelihoods,
// and the in-memory reference implementation must agree exactly with the
// MapReduce run.
package classify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/hdfs"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// Document is one labelled training (or unlabelled test) example.
type Document struct {
	ID     string
	Label  string // empty for unlabelled documents
	Tokens []string
}

// Model is a trained multinomial Naive Bayes classifier.
type Model struct {
	Alpha       float64 // Laplace smoothing
	Labels      []string
	LabelDocs   map[string]float64            // documents per label
	TokenCounts map[string]map[string]float64 // label -> token -> count
	TotalTokens map[string]float64            // label -> total token count
	Vocabulary  map[string]bool
	TotalDocs   float64
}

// newModel returns an empty model with the given smoothing.
func newModel(alpha float64) *Model {
	return &Model{
		Alpha:       alpha,
		LabelDocs:   make(map[string]float64),
		TokenCounts: make(map[string]map[string]float64),
		TotalTokens: make(map[string]float64),
		Vocabulary:  make(map[string]bool),
	}
}

// observe folds one (label, token, count) observation into the model.
func (m *Model) observe(label, token string, count float64) {
	tc, ok := m.TokenCounts[label]
	if !ok {
		tc = make(map[string]float64)
		m.TokenCounts[label] = tc
	}
	tc[token] += count
	m.TotalTokens[label] += count
	m.Vocabulary[token] = true
}

// finalize sorts the label list after all observations.
func (m *Model) finalize() {
	m.Labels = m.Labels[:0]
	for l := range m.LabelDocs {
		m.Labels = append(m.Labels, l)
	}
	sort.Strings(m.Labels)
}

// logPosterior scores one label for a token multiset.
func (m *Model) logPosterior(label string, tokens []string) float64 {
	v := float64(len(m.Vocabulary))
	prior := math.Log((m.LabelDocs[label] + m.Alpha) / (m.TotalDocs + m.Alpha*float64(len(m.Labels))))
	denom := m.TotalTokens[label] + m.Alpha*v
	s := prior
	for _, tok := range tokens {
		s += math.Log((m.TokenCounts[label][tok] + m.Alpha) / denom)
	}
	return s
}

// Classify returns the most probable label for the tokens.
func (m *Model) Classify(tokens []string) string {
	best, bestScore := "", math.Inf(-1)
	for _, l := range m.Labels {
		if s := m.logPosterior(l, tokens); s > bestScore {
			best, bestScore = l, s
		}
	}
	return best
}

// Train is the in-memory reference trainer.
func Train(docs []Document, alpha float64) (*Model, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("classify: no training documents")
	}
	m := newModel(alpha)
	for _, d := range docs {
		if d.Label == "" {
			return nil, fmt.Errorf("classify: unlabelled training document %s", d.ID)
		}
		m.LabelDocs[d.Label]++
		m.TotalDocs++
		for _, tok := range d.Tokens {
			m.observe(d.Label, tok, 1)
		}
	}
	m.finalize()
	return m, nil
}

// Accuracy scores predictions against the documents' true labels.
func Accuracy(m *Model, docs []Document) float64 {
	if len(docs) == 0 {
		return 0
	}
	correct := 0
	for _, d := range docs {
		if m.Classify(d.Tokens) == d.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(docs))
}

// Trainer runs Naive Bayes as MapReduce jobs on a vHadoop platform.
type Trainer struct {
	pl    *core.Platform
	input string
	Alpha float64
	// BytesPerDoc is the virtual on-disk size of one serialized document.
	BytesPerDoc float64
	Cost        mapreduce.CostModel
	// SubmitOpts (tenant, priority, deadline) are forwarded to every
	// MapReduce job the trainer submits.
	SubmitOpts []mapreduce.SubmitOption
}

// runJob submits spec with the trainer's submission options and waits,
// returning the collected output.
func (tr *Trainer) runJob(p *sim.Proc, spec mapreduce.JobSpec) ([]mapreduce.KV, mapreduce.JobStats, error) {
	h, err := tr.pl.MR.Submit(p, spec, tr.SubmitOpts...)
	if err != nil {
		return nil, mapreduce.JobStats{}, err
	}
	stats, err := h.Wait(p)
	if err != nil {
		return nil, stats, err
	}
	return h.OutputRecords(), stats, nil
}

// NewTrainer prepares a distributed trainer reading from the given HDFS path.
func NewTrainer(pl *core.Platform, input string) *Trainer {
	return &Trainer{
		pl:          pl,
		input:       input,
		Alpha:       1.0,
		BytesPerDoc: 2048,
		Cost: mapreduce.CostModel{
			MapCPUPerRecord:    5e-5,
			ReduceCPUPerRecord: 1e-5,
			SortCPUPerByte:     5e-9,
			TaskSetupCPU:       1.5,
		},
	}
}

// Load uploads the documents to HDFS.
func (tr *Trainer) Load(p *sim.Proc, docs []Document) error {
	recs := make([]hdfs.Record, len(docs))
	for i, d := range docs {
		recs[i] = hdfs.Record{Key: d.ID, Value: d, Size: tr.BytesPerDoc}
	}
	size := tr.BytesPerDoc * float64(len(docs))
	_, err := tr.pl.DFS.Write(p, tr.pl.Master, tr.input, size, recs)
	return err
}

// countKey encodes the two count families the trainer aggregates.
func tokenKey(label, token string) string { return "t/" + label + "/" + token }
func labelKey(label string) string        { return "l/" + label }

// TrainMR runs the distributed training job: mappers emit per-(label,token)
// and per-label counts, a combiner pre-aggregates, reducers sum, and the
// driver assembles the model from the output.
func (tr *Trainer) TrainMR(p *sim.Proc) (*Model, mapreduce.JobStats, error) {
	cfg := mapreduce.JobConfig{
		Name:       "bayes-train",
		Input:      []string{tr.input},
		NumReduces: 4,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(_ string, value any, emit mapreduce.Emit) {
				d := value.(Document)
				emit(labelKey(d.Label), 1.0, 24)
				for _, tok := range d.Tokens {
					emit(tokenKey(d.Label, tok), 1.0, float64(len(tok))+16)
				}
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				var sum float64
				for _, v := range values {
					sum += v.(float64)
				}
				emit(key, sum, float64(len(key))+8)
			})
		},
		Cost: tr.Cost,
	}
	cfg.NewCombiner = cfg.NewReducer
	out, stats, err := tr.runJob(p, cfg)
	if err != nil {
		return nil, stats, err
	}
	m := newModel(tr.Alpha)
	for _, kv := range out {
		count := kv.Value.(float64)
		switch {
		case strings.HasPrefix(kv.Key, "l/"):
			label := kv.Key[2:]
			m.LabelDocs[label] += count
			m.TotalDocs += count
		case strings.HasPrefix(kv.Key, "t/"):
			rest := kv.Key[2:]
			slash := strings.IndexByte(rest, '/')
			if slash < 0 {
				return nil, stats, fmt.Errorf("classify: malformed count key %q", kv.Key)
			}
			m.observe(rest[:slash], rest[slash+1:], count)
		default:
			return nil, stats, fmt.Errorf("classify: unknown count key %q", kv.Key)
		}
	}
	m.finalize()
	return m, stats, nil
}

// ClassifyMR runs the map-only classification job over a test file whose
// records carry unlabelled Documents; the model ships to every mapper as a
// side input. It returns docID -> predicted label.
func (tr *Trainer) ClassifyMR(p *sim.Proc, m *Model, testFile string) (map[string]string, mapreduce.JobStats, error) {
	// Persist the model so mappers pay for reading it (Mahout stores the
	// trained model in HDFS).
	modelFile := tr.input + ".model"
	modelBytes := float64(len(m.Vocabulary)*len(m.Labels))*12 + 4096
	if !tr.pl.DFS.Exists(modelFile) {
		if _, err := tr.pl.DFS.Write(p, tr.pl.Master, modelFile, modelBytes, nil); err != nil {
			return nil, mapreduce.JobStats{}, err
		}
	}
	cfg := mapreduce.JobConfig{
		Name:      "bayes-classify",
		Input:     []string{testFile},
		SideInput: []string{modelFile},
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(_ string, value any, emit mapreduce.Emit) {
				d := value.(Document)
				emit(d.ID, m.Classify(d.Tokens), 32)
			})
		},
		Cost: tr.Cost,
	}
	out, stats, err := tr.runJob(p, cfg)
	if err != nil {
		return nil, stats, err
	}
	preds := make(map[string]string, len(out))
	for _, kv := range out {
		preds[kv.Key] = kv.Value.(string)
	}
	return preds, stats, nil
}

// SyntheticDocs generates a labelled corpus for tests and examples: each
// label boosts its own slice of the vocabulary, so the classes are learnable
// but overlapping.
func SyntheticDocs(seed int64, labels []string, perLabel, tokensPerDoc int) []Document {
	rng := sim.New(seed).Rand()
	vocab := datasets.Vocabulary(60 * len(labels))
	var docs []Document
	for li, label := range labels {
		own := vocab[li*60 : (li+1)*60]
		for i := 0; i < perLabel; i++ {
			d := Document{ID: fmt.Sprintf("%s-%04d", label, i), Label: label}
			for t := 0; t < tokensPerDoc; t++ {
				if rng.Float64() < 0.7 {
					d.Tokens = append(d.Tokens, own[rng.Intn(len(own))])
				} else {
					d.Tokens = append(d.Tokens, vocab[rng.Intn(len(vocab))])
				}
			}
			docs = append(docs, d)
		}
	}
	// Deterministic shuffle so labels interleave across HDFS blocks.
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	return docs
}

// Unlabel strips labels (for classification inputs), returning copies.
func Unlabel(docs []Document) []Document {
	out := make([]Document, len(docs))
	for i, d := range docs {
		out[i] = Document{ID: d.ID, Tokens: d.Tokens}
	}
	return out
}
