// Package nfs models the NFS filer that stores every virtual machine image
// in the vHadoop testbed ("All the virtual machine images are stored on a
// separate NFS server"). Because VM virtual disks are files on this server,
// every block of VM disk I/O becomes network traffic to the filer plus a
// fair share of the filer's disk — which is why the paper's conclusion names
// "network I/O and NFS disk I/O" as the platform's two main bottlenecks.
package nfs

import (
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
)

// Server is the NFS filer: a dedicated machine whose disk backs all VM
// images.
type Server struct {
	topo    *phys.Topology
	machine *phys.Machine

	// writePenalty scales disk time per written byte relative to reads
	// (RAID parity updates make array writes slower than reads).
	writePenalty float64

	readBytes  float64
	writeBytes float64
}

// NewServer attaches an NFS filer to the topology using the given machine,
// with the default RAID write penalty of 1.5x.
func NewServer(topo *phys.Topology, machine *phys.Machine) *Server {
	return &Server{topo: topo, machine: machine, writePenalty: 1.5}
}

// SetWritePenalty overrides the disk-time multiplier for writes (>= 1).
func (s *Server) SetWritePenalty(x float64) {
	if x < 1 {
		x = 1
	}
	s.writePenalty = x
}

// Machine returns the filer's physical machine.
func (s *Server) Machine() *phys.Machine { return s.machine }

// Disk returns the filer's disk resource.
func (s *Server) Disk() *sim.FairShare { return s.machine.Disk }

// ReadBytes returns cumulative bytes read from the filer.
func (s *Server) ReadBytes() float64 { return s.readBytes }

// WriteBytes returns cumulative bytes written to the filer.
func (s *Server) WriteBytes() float64 { return s.writeBytes }

// SubmitRead charges the filer's disk for a read asynchronously, returning
// its completion latch (used by relay flows that pair the disk stream with
// a multi-hop network flow).
func (s *Server) SubmitRead(bytes float64) *sim.Done {
	s.readBytes += bytes
	return s.machine.Disk.Submit(bytes, 1)
}

// Read services a VM disk read issued from a VM on client: the filer's disk
// and the network transfer to the client proceed in parallel (streaming),
// so the caller pays the slower of the two.
func (s *Server) Read(p *sim.Proc, client *phys.Machine, bytes float64) {
	if bytes <= 0 {
		return
	}
	s.readBytes += bytes
	diskDone := s.machine.Disk.Submit(bytes, 1)
	if path := s.topo.HostPath(s.machine, client); path != nil {
		fl := s.topo.Fabric().StartFlow("nfs-read", path, bytes)
		fl.Done().Wait(p)
	}
	diskDone.Wait(p)
}

// Write services a VM disk write from a VM on client: network transfer to
// the filer and the filer's disk write stream in parallel.
func (s *Server) Write(p *sim.Proc, client *phys.Machine, bytes float64) {
	if bytes <= 0 {
		return
	}
	s.writeBytes += bytes
	diskDone := s.machine.Disk.Submit(bytes*s.writePenalty, 1)
	if path := s.topo.HostPath(client, s.machine); path != nil {
		fl := s.topo.Fabric().StartFlow("nfs-write", path, bytes)
		fl.Done().Wait(p)
	}
	diskDone.Wait(p)
}

// FetchImage streams a VM image of the given size from the filer to dst's
// dom0 (used when booting a VM on a machine for the first time).
func (s *Server) FetchImage(p *sim.Proc, dst *phys.Machine, bytes float64) {
	if bytes <= 0 {
		return
	}
	s.readBytes += bytes
	diskDone := s.machine.Disk.Submit(bytes, 1)
	if path := s.topo.HostPath(s.machine, dst); path != nil {
		fl := s.topo.Fabric().StartFlow("nfs-image", path, bytes)
		fl.Done().Wait(p)
	}
	diskDone.Wait(p)
}
