package nfs

import (
	"math"
	"testing"

	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
	"vhadoop/internal/vnet"
)

// testbed: two compute machines plus an NFS filer with a 100 MB/s disk and
// 125 MB/s NICs everywhere.
func newTestbed() (*sim.Engine, *phys.Topology, *Server) {
	e := sim.New(1)
	f := vnet.NewFabric(e)
	topo := phys.NewTopology(e, f, 10e9, 0)
	spec := phys.MachineSpec{
		Cores: 8, DRAMBytes: 32e9, DiskBW: 100e6,
		NICBW: 125e6, BridgeBW: 500e6,
	}
	topo.AddMachine("pm1", spec)
	topo.AddMachine("pm2", spec)
	filerSpec := spec
	filer := topo.AddMachine("filer", filerSpec)
	return e, topo, NewServer(topo, filer)
}

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestReadCostIsSlowerOfDiskAndNetwork(t *testing.T) {
	e, topo, srv := newTestbed()
	client := topo.Machines()[0]
	var done sim.Time
	e.Spawn("r", func(p *sim.Proc) {
		srv.Read(p, client, 500e6)
		done = p.Now()
	})
	e.Run()
	// Disk at 100 MB/s is slower than the 125 MB/s network path: 5s.
	almost(t, done, 5, 0.01, "read bound by filer disk")
	almost(t, srv.ReadBytes(), 500e6, 1, "read accounting")
}

func TestWriteMirrorsRead(t *testing.T) {
	e, topo, srv := newTestbed()
	client := topo.Machines()[0]
	var done sim.Time
	e.Spawn("w", func(p *sim.Proc) {
		srv.Write(p, client, 200e6)
		done = p.Now()
	})
	e.Run()
	// 200MB x 1.5 RAID write penalty at 100MB/s = 3s.
	almost(t, done, 3, 0.01, "write bound by filer disk")
	almost(t, srv.WriteBytes(), 200e6, 1, "write accounting")
}

func TestConcurrentClientsContendOnFilerDisk(t *testing.T) {
	e, topo, srv := newTestbed()
	c1, c2 := topo.Machines()[0], topo.Machines()[1]
	var d1, d2 sim.Time
	e.Spawn("r1", func(p *sim.Proc) { srv.Read(p, c1, 300e6); d1 = p.Now() })
	e.Spawn("r2", func(p *sim.Proc) { srv.Read(p, c2, 300e6); d2 = p.Now() })
	e.Run()
	// Two concurrent readers: each path has its own NIC, but the filer disk
	// (100 MB/s shared) is now the bottleneck at 50 MB/s each => 6s.
	// The filer's tx NIC (125 MB/s shared => 62.5 each) is faster than that.
	almost(t, d1, 6, 0.05, "reader 1 under disk contention")
	almost(t, d2, 6, 0.05, "reader 2 under disk contention")
}

func TestSameMachineClientsContendOnNIC(t *testing.T) {
	e, topo, srv := newTestbed()
	c1 := topo.Machines()[0]
	var d1, d2 sim.Time
	e.Spawn("r1", func(p *sim.Proc) { srv.Read(p, c1, 300e6); d1 = p.Now() })
	e.Spawn("r2", func(p *sim.Proc) { srv.Read(p, c1, 300e6); d2 = p.Now() })
	e.Run()
	// Both land on pm1's rx NIC (125 MB/s shared => 62.5 each) but the filer
	// disk share (50 each) is still tighter => 6s again; check it is not
	// faster than the single-NIC bound.
	if d1 < 4.8-0.01 || d2 < 4.8-0.01 {
		t.Fatalf("reads too fast: %v %v (NIC sharing ignored?)", d1, d2)
	}
}

func TestFetchImage(t *testing.T) {
	e, topo, srv := newTestbed()
	dst := topo.Machines()[0]
	var done sim.Time
	e.Spawn("boot", func(p *sim.Proc) {
		srv.FetchImage(p, dst, 100e6)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 1, 0.01, "image fetch bound by filer disk")
}

func TestZeroByteIOIsFree(t *testing.T) {
	e, topo, srv := newTestbed()
	client := topo.Machines()[0]
	var done sim.Time
	e.Spawn("z", func(p *sim.Proc) {
		srv.Read(p, client, 0)
		srv.Write(p, client, 0)
		done = p.Now()
	})
	e.Run()
	almost(t, done, 0, 0, "zero-byte I/O")
}
