package clustering

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// MinHashOptions configures MinHash clustering (Mahout's MinHashDriver):
// probabilistic grouping of similar items by locality-sensitive hashing of
// their feature sets.
type MinHashOptions struct {
	NumHashes  int // total hash functions
	KeyGroups  int // hashes concatenated into one band key (Mahout default 2)
	MinCluster int // groups smaller than this are dropped (Mahout default 2)
	// Binarize turns a dense vector into a feature set: the dimensions
	// whose value exceeds the per-dimension dataset median.
	medians Vector
}

// DefaultMinHashOptions mirrors Mahout 0.6 defaults.
func DefaultMinHashOptions() MinHashOptions {
	return MinHashOptions{NumHashes: 10, KeyGroups: 2, MinCluster: 2}
}

// dimensionMedians computes the per-dimension median used to binarize dense
// vectors into feature sets.
func dimensionMedians(vectors []Vector) Vector {
	dim := len(vectors[0])
	med := Zero(dim)
	col := make([]float64, len(vectors))
	for j := 0; j < dim; j++ {
		for i, v := range vectors {
			col[i] = v[j]
		}
		sort.Float64s(col)
		med[j] = col[len(col)/2]
	}
	return med
}

// features returns the feature set of v: indices above the dataset median.
func features(v, medians Vector) []int {
	var out []int
	for j := range v {
		if v[j] > medians[j] {
			out = append(out, j)
		}
	}
	return out
}

// minhashKeys computes the band keys for one vector: NumHashes universal
// hashes over the feature set, min-folded, concatenated KeyGroups at a time.
func minhashKeys(v Vector, opts MinHashOptions) []string {
	fs := features(v, opts.medians)
	if len(fs) == 0 {
		fs = []int{0}
	}
	const prime = 2147483647
	mins := make([]uint64, opts.NumHashes)
	for h := 0; h < opts.NumHashes; h++ {
		a := uint64(2*h + 1)
		b := uint64(104729 * (h + 1))
		min := uint64(1<<63 - 1)
		for _, f := range fs {
			x := (a*uint64(f+1) + b) % prime
			if x < min {
				min = x
			}
		}
		mins[h] = min
	}
	var keys []string
	for h := 0; h+opts.KeyGroups <= opts.NumHashes; h += opts.KeyGroups {
		var sb strings.Builder
		for g := 0; g < opts.KeyGroups; g++ {
			if g > 0 {
				sb.WriteByte('-')
			}
			sb.WriteString(strconv.FormatUint(mins[h+g], 36))
		}
		keys = append(keys, sb.String())
	}
	return keys
}

// minhashGroups collects, per band key, the IDs of the vectors that hash
// there; groups of at least MinCluster survive.
func minhashGroups(vectors []Vector, opts MinHashOptions) map[string][]int {
	groups := make(map[string][]int)
	for i, v := range vectors {
		for _, k := range minhashKeys(v, opts) {
			groups[k] = append(groups[k], i)
		}
	}
	for k, g := range groups {
		if len(g) < opts.MinCluster {
			delete(groups, k)
		}
	}
	return groups
}

// unionGroups merges overlapping groups into disjoint clusters (union-find)
// and produces per-vector assignments (-1 for unclustered points).
func unionGroups(n int, groups map[string][]int) ([][]int, []int) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	clustered := make([]bool, n)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic merge order
	for _, k := range keys {
		g := groups[k]
		for _, id := range g {
			clustered[id] = true
			ra, rb := find(g[0]), find(id)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		if clustered[i] {
			r := find(i)
			byRoot[r] = append(byRoot[r], i)
		}
	}
	// Canonical order: members ascending within a cluster, clusters by
	// smallest member — independent of union order, so the MapReduce run
	// and the reference produce identical numbering. Build from sorted
	// roots, not map-visit order, so the construction is deterministic by
	// inspection (and provable to detflow) rather than argued from the
	// comparator never tying.
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	clusters := make([][]int, 0, len(roots))
	for _, r := range roots {
		members := byRoot[r]
		sort.Ints(members)
		clusters = append(clusters, members)
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a][0] < clusters[b][0] })
	assignments := make([]int, n)
	for i := range assignments {
		assignments[i] = -1
	}
	for ci, members := range clusters {
		for _, id := range members {
			assignments[id] = ci
		}
	}
	return clusters, assignments
}

// MinHash is the in-memory reference implementation.
func MinHash(vectors []Vector, opts MinHashOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if opts.NumHashes < opts.KeyGroups || opts.KeyGroups < 1 {
		return Result{}, fmt.Errorf("clustering: minhash needs NumHashes >= KeyGroups >= 1")
	}
	opts.medians = dimensionMedians(vectors)
	groups := minhashGroups(vectors, opts)
	clusters, assignments := unionGroups(len(vectors), groups)
	res := Result{Algorithm: "minhash", Iterations: 1, Groups: clusters, Assignments: assignments}
	for _, members := range clusters {
		pts := make([]Vector, len(members))
		for i, id := range members {
			pts[i] = vectors[id]
		}
		res.Centers = append(res.Centers, Mean(pts))
	}
	res.History = [][]Vector{res.Centers}
	return res, nil
}

// minhashMapper emits (bandKey, vectorID) pairs.
type minhashMapper struct{ opts MinHashOptions }

func (m *minhashMapper) Map(key string, value any, emit mapreduce.Emit) {
	v := Vector(value.([]float64))
	for _, k := range minhashKeys(v, m.opts) {
		emit(k, key, float64(len(k)+len(key)+8))
	}
}

// MinHashMR runs MinHash clustering as one MapReduce job: mappers hash their
// vectors into band keys, reducers collect each band's member list, and the
// driver unions overlapping bands into final clusters.
func MinHashMR(p *sim.Proc, d *Driver, opts MinHashOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if opts.NumHashes < opts.KeyGroups || opts.KeyGroups < 1 {
		return Result{}, fmt.Errorf("clustering: minhash needs NumHashes >= KeyGroups >= 1")
	}
	opts.medians = dimensionMedians(d.vectors)
	res := Result{Algorithm: "minhash"}
	start := p.Now()
	state, err := d.writeState(p, "minhash", 1)
	if err != nil {
		return res, err
	}
	minCluster := opts.MinCluster
	cfg := d.iterationJob("minhash", state, 1,
		func() mapreduce.Mapper { return &minhashMapper{opts: opts} },
		func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				if len(values) < minCluster {
					return
				}
				ids := make([]int, len(values))
				for i, v := range values {
					id, err := strconv.Atoi(strings.TrimPrefix(v.(string), "v"))
					if err != nil {
						// A malformed id is a mapper bug. Skipping the value
						// would silently leave a spurious vector 0 in the
						// cluster; fail the simulated process loudly instead.
						panic(fmt.Sprintf("clustering: minhash reducer: malformed vector id %v: %v", v, err))
					}
					ids[i] = id
				}
				emit(key, ids, float64(8*len(ids)))
			})
		},
		nil,
	)
	cfg.Cost.MapCPUPerRecord = d.perRecordCost(opts.NumHashes)
	out, stats, err := d.runJob(p, cfg)
	if err != nil {
		return res, err
	}
	res.JobStats = append(res.JobStats, stats)
	res.Iterations = 1

	groups := make(map[string][]int, len(out))
	for _, kv := range out {
		groups[kv.Key] = kv.Value.([]int)
	}
	clusters, assignments := unionGroups(len(d.vectors), groups)
	res.Groups = clusters
	res.Assignments = assignments
	for _, members := range clusters {
		pts := make([]Vector, len(members))
		for i, id := range members {
			pts[i] = d.vectors[id]
		}
		res.Centers = append(res.Centers, Mean(pts))
	}
	res.History = [][]Vector{res.Centers}
	res.Runtime = p.Now() - start
	return res, nil
}
