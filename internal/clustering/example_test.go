package clustering_test

import (
	"fmt"

	"vhadoop/internal/clustering"
)

// The in-memory reference implementations work on plain vectors, no
// simulated cluster required.
func ExampleKMeans() {
	points := []clustering.Vector{
		{0, 0}, {0.5, 0}, {0, 0.5},
		{10, 10}, {10.5, 10}, {10, 10.5},
	}
	initial := []clustering.Vector{{0, 0}, {10, 10}}
	res, err := clustering.KMeans(points, initial, clustering.DefaultKMeansOptions(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("clusters: %d, first center near origin: %v\n",
		len(res.Centers), res.Centers[0][0] < 1)
	fmt.Printf("assignments: %v\n", res.Assignments)
	// Output:
	// clusters: 2, first center near origin: true
	// assignments: [0 0 0 1 1 1]
}

func ExampleCanopy() {
	points := []clustering.Vector{
		{0, 0}, {0.4, 0}, {8, 8}, {8.3, 8},
	}
	res, err := clustering.Canopy(points, clustering.CanopyOptions{
		T1: 3, T2: 1, Distance: clustering.Euclidean,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("canopies: %d\n", len(res.Centers))
	// Output:
	// canopies: 2
}
