package clustering

import (
	"fmt"
	"math"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// CanopyOptions configures canopy clustering (Mahout's CanopyDriver): T1 is
// the loose distance (points within it join the canopy), T2 the tight one
// (points within it are removed from further canopy creation). T1 > T2.
type CanopyOptions struct {
	T1, T2   float64
	Distance Distance
}

// canopySet accumulates canopy centers: absorb adds a point as a new center
// unless it lies within T2 of an existing one. The Euclidean specialization
// caches each center's norm and rejects most point/center pairs on the norm
// gap alone (see normMargin for why the prune is exact) before falling back
// to the bounded squared-distance kernel.
type canopySet struct {
	inT2    func(a, b Vector) bool // generic path (non-Euclidean)
	t2sq    float64
	fast    bool
	centers []Vector
	norms   []float64 // center norms, Euclidean path only
}

func newCanopySet(opts CanopyOptions) *canopySet {
	s := &canopySet{fast: isEuclidean(opts.Distance)}
	if s.fast {
		s.t2sq = opts.T2 * opts.T2
	} else {
		s.inT2 = withinThreshold(opts.Distance, opts.T2)
	}
	return s
}

func (s *canopySet) absorb(pt Vector) {
	if s.fast {
		sv := sqNorm(pt)
		nv := math.Sqrt(sv)
		for i, c := range s.centers {
			nc := s.norms[i]
			diff := nv - nc
			if lb := diff * diff; lb >= s.t2sq+normMargin*(sv+nc*nc) {
				continue // provably not within T2
			}
			if _, ok := squaredEuclideanWithin(pt, c, s.t2sq); ok {
				return
			}
		}
		s.centers = append(s.centers, pt.Clone())
		s.norms = append(s.norms, nv)
		return
	}
	for _, c := range s.centers {
		if s.inT2(pt, c) {
			return
		}
	}
	s.centers = append(s.centers, pt.Clone())
}

// canopyCluster runs the sequential canopy pass over points: the exact
// routine used by the reference implementation, by each mapper on its split,
// and by the reducer on the mapper-produced centers.
func canopyCluster(points []Vector, opts CanopyOptions) []Vector {
	s := newCanopySet(opts)
	for _, pt := range points {
		s.absorb(pt)
	}
	return s.centers
}

// Canopy is the in-memory reference implementation: one pass creates the
// canopies, a second assigns each point to its nearest canopy center.
func Canopy(vectors []Vector, opts CanopyOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if err := validateCanopy(opts); err != nil {
		return Result{}, err
	}
	centers := canopyCluster(vectors, opts)
	return Result{
		Algorithm:   "canopy",
		Centers:     centers,
		Assignments: Assignments(vectors, centers, opts.Distance),
		Iterations:  1,
		History:     [][]Vector{centers},
	}, nil
}

func validateCanopy(opts CanopyOptions) error {
	if opts.Distance == nil {
		return fmt.Errorf("clustering: canopy needs a distance measure")
	}
	if opts.T1 <= opts.T2 || opts.T2 <= 0 {
		return fmt.Errorf("clustering: canopy needs T1 > T2 > 0, got T1=%v T2=%v", opts.T1, opts.T2)
	}
	return nil
}

// canopyMapper builds canopies over its split and emits their centers when
// the split ends (Hadoop's cleanup hook). The canopySet is compiled once per
// mapper so every point-center check takes the norm-pruned squared path.
type canopyMapper struct {
	opts CanopyOptions
	set  *canopySet
}

func (m *canopyMapper) Map(_ string, value any, _ mapreduce.Emit) {
	if m.set == nil {
		m.set = newCanopySet(m.opts)
	}
	m.set.absorb(Vector(value.([]float64)))
}

func (m *canopyMapper) Close(emit mapreduce.Emit) {
	if m.set == nil {
		return
	}
	for _, c := range m.set.centers {
		emit("centroid", c, float64(len(c)*8+16))
	}
}

// CanopyMR runs canopy generation as a single MapReduce job, Mahout-style:
// each mapper canopies its split, the single reducer re-canopies the mapper
// centers into the final set.
func CanopyMR(p *sim.Proc, d *Driver, opts CanopyOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if err := validateCanopy(opts); err != nil {
		return Result{}, err
	}
	res := Result{Algorithm: "canopy"}
	start := p.Now()
	state, err := d.writeState(p, "canopy", 1)
	if err != nil {
		return res, err
	}
	cfg := d.iterationJob("canopy", state, 1,
		func() mapreduce.Mapper { return &canopyMapper{opts: opts} },
		func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				pts := make([]Vector, len(values))
				for i, v := range values {
					pts[i] = v.(Vector)
				}
				for _, c := range canopyCluster(pts, opts) {
					emit("canopy", c, float64(len(c)*8+16))
				}
			})
		},
		nil,
	)
	cfg.Cost.MapCPUPerRecord = d.perRecordCost(48) // typical live canopy count
	out, stats, err := d.runJob(p, cfg)
	if err != nil {
		return res, err
	}
	res.JobStats = append(res.JobStats, stats)
	res.Iterations = 1
	for _, kv := range out {
		res.Centers = append(res.Centers, kv.Value.(Vector))
	}
	if len(res.Centers) == 0 {
		return res, fmt.Errorf("clustering: canopy produced no centers")
	}
	res.History = [][]Vector{res.Centers}
	res.Assignments = Assignments(d.vectors, res.Centers, opts.Distance)
	res.Runtime = p.Now() - start
	return res, nil
}
