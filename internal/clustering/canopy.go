package clustering

import (
	"fmt"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// CanopyOptions configures canopy clustering (Mahout's CanopyDriver): T1 is
// the loose distance (points within it join the canopy), T2 the tight one
// (points within it are removed from further canopy creation). T1 > T2.
type CanopyOptions struct {
	T1, T2   float64
	Distance Distance
}

// canopyCluster runs the sequential canopy pass over points: the exact
// routine used by the reference implementation, by each mapper on its split,
// and by the reducer on the mapper-produced centers.
func canopyCluster(points []Vector, opts CanopyOptions) []Vector {
	var centers []Vector
	for _, pt := range points {
		inTight := false
		for _, c := range centers {
			if opts.Distance(pt, c) < opts.T2 {
				inTight = true
				break
			}
		}
		if !inTight {
			centers = append(centers, pt.Clone())
		}
	}
	return centers
}

// Canopy is the in-memory reference implementation: one pass creates the
// canopies, a second assigns each point to its nearest canopy center.
func Canopy(vectors []Vector, opts CanopyOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if err := validateCanopy(opts); err != nil {
		return Result{}, err
	}
	centers := canopyCluster(vectors, opts)
	return Result{
		Algorithm:   "canopy",
		Centers:     centers,
		Assignments: Assignments(vectors, centers, opts.Distance),
		Iterations:  1,
		History:     [][]Vector{centers},
	}, nil
}

func validateCanopy(opts CanopyOptions) error {
	if opts.Distance == nil {
		return fmt.Errorf("clustering: canopy needs a distance measure")
	}
	if opts.T1 <= opts.T2 || opts.T2 <= 0 {
		return fmt.Errorf("clustering: canopy needs T1 > T2 > 0, got T1=%v T2=%v", opts.T1, opts.T2)
	}
	return nil
}

// canopyMapper builds canopies over its split and emits their centers when
// the split ends (Hadoop's cleanup hook).
type canopyMapper struct {
	opts    CanopyOptions
	centers []Vector
}

func (m *canopyMapper) Map(_ string, value any, _ mapreduce.Emit) {
	pt := Vector(value.([]float64))
	inTight := false
	for _, c := range m.centers {
		if m.opts.Distance(pt, c) < m.opts.T2 {
			inTight = true
			break
		}
	}
	if !inTight {
		m.centers = append(m.centers, pt.Clone())
	}
}

func (m *canopyMapper) Close(emit mapreduce.Emit) {
	for _, c := range m.centers {
		emit("centroid", c, float64(len(c)*8+16))
	}
}

// CanopyMR runs canopy generation as a single MapReduce job, Mahout-style:
// each mapper canopies its split, the single reducer re-canopies the mapper
// centers into the final set.
func CanopyMR(p *sim.Proc, d *Driver, opts CanopyOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if err := validateCanopy(opts); err != nil {
		return Result{}, err
	}
	res := Result{Algorithm: "canopy"}
	start := p.Now()
	state, err := d.writeState(p, "canopy", 1)
	if err != nil {
		return res, err
	}
	cfg := d.iterationJob("canopy", state, 1,
		func() mapreduce.Mapper { return &canopyMapper{opts: opts} },
		func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
				pts := make([]Vector, len(values))
				for i, v := range values {
					pts[i] = v.(Vector)
				}
				for _, c := range canopyCluster(pts, opts) {
					emit("canopy", c, float64(len(c)*8+16))
				}
			})
		},
		nil,
	)
	cfg.Cost.MapCPUPerRecord = d.perRecordCost(48) // typical live canopy count
	out, stats, err := d.pl.MR.RunAndCollect(p, cfg)
	if err != nil {
		return res, err
	}
	res.JobStats = append(res.JobStats, stats)
	res.Iterations = 1
	for _, kv := range out {
		res.Centers = append(res.Centers, kv.Value.(Vector))
	}
	if len(res.Centers) == 0 {
		return res, fmt.Errorf("clustering: canopy produced no centers")
	}
	res.History = [][]Vector{res.Centers}
	res.Assignments = Assignments(d.vectors, res.Centers, opts.Distance)
	res.Runtime = p.Now() - start
	return res, nil
}
