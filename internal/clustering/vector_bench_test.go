package clustering

import (
	"math"
	"math/rand"
	"testing"
)

// Reference (pre-unroll) kernel implementations: the unrolled versions must
// match them to tight tolerance on arbitrary dimensions, and beat them in
// the benchmarks below.

func refSquaredEuclidean(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func refManhattan(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func refCosine(a, b Vector) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

func randVec(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func TestUnrolledKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 15, 60, 129} {
		a, b := randVec(rng, d), randVec(rng, d)
		if got, want := SquaredEuclidean(a, b), refSquaredEuclidean(a, b); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("dim %d: SquaredEuclidean = %v, ref %v", d, got, want)
		}
		if got, want := Manhattan(a, b), refManhattan(a, b); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("dim %d: Manhattan = %v, ref %v", d, got, want)
		}
		if got, want := Cosine(a, b), refCosine(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("dim %d: Cosine = %v, ref %v", d, got, want)
		}
		// Add/AddScaled are per-element: must be bit-identical.
		va, vb := a.Clone(), a.Clone()
		va.Add(b)
		for i := range vb {
			vb[i] += b[i]
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("dim %d: Add[%d] = %v, want %v", d, i, va[i], vb[i])
			}
		}
		va, vb = a.Clone(), a.Clone()
		va.AddScaled(b, 0.37)
		for i := range vb {
			vb[i] += 0.37 * b[i]
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("dim %d: AddScaled[%d] = %v, want %v", d, i, va[i], vb[i])
			}
		}
	}
}

func TestNearestSquaredMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(70)
		k := 1 + rng.Intn(30)
		v := randVec(rng, dim)
		centers := make([]Vector, k)
		for i := range centers {
			centers[i] = randVec(rng, dim)
		}
		gotI, gotD := NearestSquared(v, centers)
		wantI, wantD := -1, math.Inf(1)
		for i, c := range centers {
			if d := refSquaredEuclidean(v, c); d < wantD {
				wantI, wantD = i, d
			}
		}
		if gotI != wantI {
			t.Fatalf("trial %d: NearestSquared index %d, want %d", trial, gotI, wantI)
		}
		if got := SquaredEuclidean(v, centers[gotI]); gotD != got {
			t.Fatalf("trial %d: NearestSquared distance %v not exact (%v)", trial, gotD, got)
		}
	}
}

func TestSquaredEuclideanWithinPrunes(t *testing.T) {
	a := Vector{0, 0, 0, 0, 0, 0, 0, 0}
	b := Vector{10, 10, 10, 10, 10, 10, 10, 10}
	if _, ok := squaredEuclideanWithin(a, b, 50); ok {
		t.Fatal("distance 800 reported within bound 50")
	}
	d, ok := squaredEuclideanWithin(a, b, 1e9)
	if !ok || d != SquaredEuclidean(a, b) {
		t.Fatalf("within large bound: d=%v ok=%v", d, ok)
	}
	// Equality to the bound is "not within" (strict <), matching d < bestD.
	if _, ok := squaredEuclideanWithin(Vector{0}, Vector{2}, 4); ok {
		t.Fatal("d == bound must not report within")
	}
}

// prunedNearest is the test-side wrapper computing the per-point inputs the
// way the production call sites do.
func prunedNearest(v Vector, centers []Vector, norms []float64) (int, float64) {
	sv := sqNorm(v)
	return nearestSquaredPruned(v, math.Sqrt(sv), sv, centers, norms)
}

func TestNearestSquaredPrunedMatchesPlainScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(70)
		k := 1 + rng.Intn(40)
		v := randVec(rng, dim)
		centers := make([]Vector, k)
		for i := range centers {
			centers[i] = randVec(rng, dim)
		}
		norms := centerNorms(centers)
		wi, wd := NearestSquared(v, centers)
		gi, gd := prunedNearest(v, centers, norms)
		if gi != wi || gd != wd {
			t.Fatalf("trial %d: pruned (%d, %v), plain (%d, %v)", trial, gi, gd, wi, wd)
		}
	}
}

func TestNearestSquaredPrunedAdversarial(t *testing.T) {
	check := func(name string, v Vector, centers []Vector) {
		t.Helper()
		norms := centerNorms(centers)
		wi, wd := NearestSquared(v, centers)
		gi, gd := prunedNearest(v, centers, norms)
		if gi != wi || gd != wd {
			t.Fatalf("%s: pruned (%d, %v), plain (%d, %v)", name, gi, gd, wi, wd)
		}
	}
	// Exact duplicate centers: the tie must resolve to the lower index.
	c := Vector{1, 2, 3, 4, 5}
	check("duplicate-centers", Vector{1.1, 2.1, 2.9, 4.2, 5.3},
		[]Vector{c.Clone(), c.Clone(), {9, 9, 9, 9, 9}})
	// Equidistant centers on a shared shell around the query point.
	check("equidistant", Vector{0, 0},
		[]Vector{{3, 4}, {4, 3}, {-3, 4}, {5, 0}})
	// Far from the origin with tightly packed centers: the norm subtraction
	// cancels catastrophically, the margin must absorb it.
	base := make(Vector, 60)
	for i := range base {
		base[i] = 1e6
	}
	near1, near2, origin := base.Clone(), base.Clone(), make(Vector, 60)
	near1[0] += 1e-4
	near2[1] -= 2e-4
	check("cancellation", base, []Vector{near1, near2, origin})
	// Query coincides with a center (bestD becomes 0).
	check("zero-distance", base.Clone(), []Vector{near1, base.Clone(), near2})
}

func TestNearestEuclideanFastPathAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	v := randVec(rng, 60)
	centers := []Vector{randVec(rng, 60), randVec(rng, 60), randVec(rng, 60)}
	i1, d1 := Nearest(v, centers, Euclidean)
	// A distinct closure with identical arithmetic skips the fast path.
	slow := func(a, b Vector) float64 { return math.Sqrt(refSquaredEuclidean(a, b)) }
	i2, d2 := Nearest(v, centers, slow)
	if i1 != i2 {
		t.Fatalf("fast path index %d, generic %d", i1, i2)
	}
	if math.Abs(d1-d2) > 1e-9*(1+d2) {
		t.Fatalf("fast path distance %v, generic %v", d1, d2)
	}
	if !isEuclidean(Euclidean) || isEuclidean(slow) || isEuclidean(nil) {
		t.Fatal("isEuclidean misclassifies")
	}
}

// --- Micro-benchmarks ------------------------------------------------------

func benchVecs(d int) (Vector, Vector) {
	rng := rand.New(rand.NewSource(42))
	return randVec(rng, d), randVec(rng, d)
}

func BenchmarkSquaredEuclidean60(b *testing.B) {
	x, y := benchVecs(60)
	b.Run("unrolled", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s += SquaredEuclidean(x, y)
		}
		_ = s
	})
	b.Run("reference", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s += refSquaredEuclidean(x, y)
		}
		_ = s
	})
}

func BenchmarkManhattan60(b *testing.B) {
	x, y := benchVecs(60)
	var s float64
	for i := 0; i < b.N; i++ {
		s += Manhattan(x, y)
	}
	_ = s
}

func BenchmarkCosine60(b *testing.B) {
	x, y := benchVecs(60)
	var s float64
	for i := 0; i < b.N; i++ {
		s += Cosine(x, y)
	}
	_ = s
}

func BenchmarkNearestSquared(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v := randVec(rng, 60)
	centers := make([]Vector, 48)
	for i := range centers {
		centers[i] = randVec(rng, 60)
	}
	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NearestSquared(v, centers)
		}
	})
	b.Run("fullscan-sqrt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best, bestD := -1, math.Inf(1)
			for j, c := range centers {
				if d := math.Sqrt(refSquaredEuclidean(v, c)); d < bestD {
					best, bestD = j, d
				}
			}
			_ = best
		}
	})
}
