// Package clustering is the Machine Learning Algorithm Library of the
// vHadoop platform: the six MapReduce-based parallel clustering algorithms
// the paper evaluates — Canopy, k-means, Fuzzy k-means, MeanShift, Dirichlet
// process clustering and MinHash — in Mahout 0.6's formulations.
//
// Every algorithm comes in two forms that compute the same result:
//
//   - an in-memory reference implementation (used for correctness tests and
//     fast local experimentation), and
//   - a MapReduce driver that runs the iterations as real jobs on a vHadoop
//     platform, with real vectors flowing through map, combine, shuffle and
//     reduce while virtual time advances through the simulated cluster.
package clustering

import (
	"fmt"
	"math"
	"reflect"
)

// Vector is a dense feature vector.
type Vector []float64

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add accumulates w into v (in place). The kernel is 4-way unrolled with the
// bounds checks hoisted; per-element arithmetic is unchanged, so results are
// bit-identical to the plain loop.
func (v Vector) Add(w Vector) {
	w = w[:len(v)]
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] += w[i]
		v[i+1] += w[i+1]
		v[i+2] += w[i+2]
		v[i+3] += w[i+3]
	}
	for ; i < len(v); i++ {
		v[i] += w[i]
	}
}

// AddScaled accumulates s*w into v (in place); unrolled like Add.
func (v Vector) AddScaled(w Vector, s float64) {
	w = w[:len(v)]
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] += s * w[i]
		v[i+1] += s * w[i+1]
		v[i+2] += s * w[i+2]
		v[i+3] += s * w[i+3]
	}
	for ; i < len(v); i++ {
		v[i] += s * w[i]
	}
}

// Scale multiplies v by s (in place).
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Zero returns a zero vector of dimension d.
func Zero(d int) Vector { return make(Vector, d) }

// Distance measures dissimilarity between two vectors.
type Distance func(a, b Vector) float64

// Euclidean is the L2 distance.
func Euclidean(a, b Vector) float64 { return math.Sqrt(SquaredEuclidean(a, b)) }

// SquaredEuclidean is the squared L2 distance (cheaper; order-preserving).
// The loop runs 4 independent accumulators with bounds checks hoisted —
// these kernels execute points x centers x iterations times, so they are
// the clustering library's hottest code.
//
//vhlint:hot
func SquaredEuclidean(a, b Vector) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Manhattan is the L1 distance; unrolled like SquaredEuclidean.
//
//vhlint:hot
func Manhattan(a, b Vector) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += math.Abs(a[i] - b[i])
		s1 += math.Abs(a[i+1] - b[i+1])
		s2 += math.Abs(a[i+2] - b[i+2])
		s3 += math.Abs(a[i+3] - b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += math.Abs(a[i] - b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// Cosine is 1 - cosine similarity; unrolled like SquaredEuclidean.
//
//vhlint:hot
func Cosine(a, b Vector) float64 {
	b = b[:len(a)]
	var dot0, dot1, na0, na1, nb0, nb1 float64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		dot0 += a[i] * b[i]
		na0 += a[i] * a[i]
		nb0 += b[i] * b[i]
		dot1 += a[i+1] * b[i+1]
		na1 += a[i+1] * a[i+1]
		nb1 += b[i+1] * b[i+1]
	}
	for ; i < len(a); i++ {
		dot0 += a[i] * b[i]
		na0 += a[i] * a[i]
		nb0 += b[i] * b[i]
	}
	dot, na, nb := dot0+dot1, na0+na1, nb0+nb1
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Mean returns the centroid of vectors (which must be non-empty).
func Mean(vectors []Vector) Vector {
	if len(vectors) == 0 {
		panic("clustering: mean of no vectors")
	}
	m := Zero(len(vectors[0]))
	for _, v := range vectors {
		m.Add(v)
	}
	m.Scale(1 / float64(len(vectors)))
	return m
}

// euclideanPtr identifies the package's own Euclidean measure so hot paths
// can switch to squared-distance arithmetic (one sqrt per point instead of
// one per center, and no order change since sqrt is monotonic).
var euclideanPtr = reflect.ValueOf(Euclidean).Pointer()

// isEuclidean reports whether dist is exactly the package's Euclidean.
func isEuclidean(dist Distance) bool {
	return dist != nil && reflect.ValueOf(dist).Pointer() == euclideanPtr
}

// Nearest returns the index of the center closest to v under dist, plus the
// distance itself. When dist is the package's Euclidean it runs the
// NearestSquared fast path and takes a single square root at the end.
func Nearest(v Vector, centers []Vector, dist Distance) (int, float64) {
	if isEuclidean(dist) {
		best, d2 := NearestSquared(v, centers)
		return best, math.Sqrt(d2)
	}
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d := dist(v, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// NearestSquared returns the index of the center closest to v in L2 and the
// squared distance — the kernel the k-means, fuzzy k-means, canopy and
// mean-shift mappers lean on. Each candidate is scanned with the current
// best as an early-exit bound, which prunes most of the work once a close
// center is found while returning exactly the distances and index the full
// scan would.
func NearestSquared(v Vector, centers []Vector) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d, ok := squaredEuclideanWithin(v, c, bestD); ok {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// squaredEuclideanWithin computes SquaredEuclidean(a, b), abandoning the
// scan once the partial sum reaches bound. ok reports whether the full
// distance is strictly below bound, in which case d is the exact distance.
// Because squares are non-negative the partial sum is monotone, so the
// early exit never changes a comparison's outcome — only skips arithmetic
// whose result is already decided.
//
//vhlint:hot
func squaredEuclideanWithin(a, b Vector, bound float64) (d float64, ok bool) {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	// The bound check runs once per 16 elements: checking every unrolled
	// block would serialize the four accumulator chains and cost more than
	// the pruning saves.
	for ; i+16 <= len(a); i += 16 {
		for j := i; j < i+16; j += 4 {
			d0 := a[j] - b[j]
			d1 := a[j+1] - b[j+1]
			d2 := a[j+2] - b[j+2]
			d3 := a[j+3] - b[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if (s0+s1)+(s2+s3) >= bound {
			return 0, false
		}
	}
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		dd := a[i] - b[i]
		s0 += dd * dd
	}
	d = (s0 + s1) + (s2 + s3)
	return d, d < bound
}

// sqNorm returns v·v, unrolled like SquaredEuclidean.
//
//vhlint:hot
func sqNorm(v Vector) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i] * v[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// centerNorms returns the L2 norm of each center, the precomputed side of
// the norm-bound prefilter below.
func centerNorms(centers []Vector) []float64 {
	norms := make([]float64, len(centers))
	for i, c := range centers {
		norms[i] = math.Sqrt(sqNorm(c))
	}
	return norms
}

// normMargin is the safety margin of the norm-bound prefilter. The triangle
// inequality gives (‖v‖−‖c‖)² ≤ ‖v−c‖² exactly over the reals, but both
// sides here are computed in floating point. The computed lower bound is off
// by at most ~42u·(‖v‖²+‖c‖²) (norms carry ≤ ~10u relative error each, the
// subtract and square another few u), and the kernel's computed distance by
// ~(dim+2)u relative — and a prune can only fire when the comparison bound
// is below 2(‖v‖²+‖c‖²), which folds the relative term into the same scale.
// A 1e-13 multiplier therefore exceeds the worst-case combined error by
// >20x: a center is skipped only when its computed distance provably could
// not have won, so pruned and unpruned scans return bit-identical results.
const normMargin = 1e-13

// nearestSquaredPruned is NearestSquared with a norm prefilter: nv and sv
// are ‖v‖ and v·v, norms[i] is ‖centers[i]‖. Centers whose norm gap already
// reaches the current best (plus normMargin slack) are skipped without
// touching their coordinates; the rest go through the same bounded kernel
// with the same evolving bound, so the result is bit-identical to the plain
// scan.
//
//vhlint:hot
func nearestSquaredPruned(v Vector, nv, sv float64, centers []Vector, norms []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		nc := norms[i]
		diff := nv - nc
		if lb := diff * diff; lb >= bestD+normMargin*(sv+nc*nc) {
			continue
		}
		if d, ok := squaredEuclideanWithin(v, c, bestD); ok {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// withinThreshold returns a predicate reporting dist(a,b) < t, compiled once
// per scan: for Euclidean it compares squared partial sums against t*t with
// early exit, removing both the per-pair square root and most of the
// arithmetic for pairs that are clearly apart — the checks that dominated
// the canopy and mean-shift profiles.
func withinThreshold(dist Distance, t float64) func(a, b Vector) bool {
	if isEuclidean(dist) {
		t2 := t * t
		return func(a, b Vector) bool {
			_, ok := squaredEuclideanWithin(a, b, t2)
			return ok
		}
	}
	return func(a, b Vector) bool { return dist(a, b) < t }
}

// FromFloats converts raw slices to Vectors (sharing storage).
func FromFloats(raw [][]float64) []Vector {
	out := make([]Vector, len(raw))
	for i, r := range raw {
		out[i] = Vector(r)
	}
	return out
}

// Assignments labels each vector with its nearest center. The Euclidean
// path precomputes center norms once and prunes by norm gap before touching
// coordinates — the dominant cost of the clustering drivers' final
// assignment pass.
func Assignments(vectors, centers []Vector, dist Distance) []int {
	out := make([]int, len(vectors))
	if isEuclidean(dist) {
		norms := centerNorms(centers)
		for i, v := range vectors {
			sv := sqNorm(v)
			out[i], _ = nearestSquaredPruned(v, math.Sqrt(sv), sv, centers, norms)
		}
		return out
	}
	for i, v := range vectors {
		out[i], _ = Nearest(v, centers, dist)
	}
	return out
}

// WithinClusterSS is the total squared distance of vectors to their assigned
// centers: k-means' objective function.
func WithinClusterSS(vectors, centers []Vector, assign []int) float64 {
	var s float64
	for i, v := range vectors {
		s += SquaredEuclidean(v, centers[assign[i]])
	}
	return s
}

func checkDims(vectors []Vector) (int, error) {
	if len(vectors) == 0 {
		return 0, fmt.Errorf("clustering: no input vectors")
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return 0, fmt.Errorf("clustering: vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	return d, nil
}
