// Package clustering is the Machine Learning Algorithm Library of the
// vHadoop platform: the six MapReduce-based parallel clustering algorithms
// the paper evaluates — Canopy, k-means, Fuzzy k-means, MeanShift, Dirichlet
// process clustering and MinHash — in Mahout 0.6's formulations.
//
// Every algorithm comes in two forms that compute the same result:
//
//   - an in-memory reference implementation (used for correctness tests and
//     fast local experimentation), and
//   - a MapReduce driver that runs the iterations as real jobs on a vHadoop
//     platform, with real vectors flowing through map, combine, shuffle and
//     reduce while virtual time advances through the simulated cluster.
package clustering

import (
	"fmt"
	"math"
)

// Vector is a dense feature vector.
type Vector []float64

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add accumulates w into v (in place).
func (v Vector) Add(w Vector) {
	for i := range v {
		v[i] += w[i]
	}
}

// AddScaled accumulates s*w into v (in place).
func (v Vector) AddScaled(w Vector, s float64) {
	for i := range v {
		v[i] += s * w[i]
	}
}

// Scale multiplies v by s (in place).
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Zero returns a zero vector of dimension d.
func Zero(d int) Vector { return make(Vector, d) }

// Distance measures dissimilarity between two vectors.
type Distance func(a, b Vector) float64

// Euclidean is the L2 distance.
func Euclidean(a, b Vector) float64 { return math.Sqrt(SquaredEuclidean(a, b)) }

// SquaredEuclidean is the squared L2 distance (cheaper; order-preserving).
func SquaredEuclidean(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Manhattan is the L1 distance.
func Manhattan(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Cosine is 1 - cosine similarity.
func Cosine(a, b Vector) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Mean returns the centroid of vectors (which must be non-empty).
func Mean(vectors []Vector) Vector {
	if len(vectors) == 0 {
		panic("clustering: mean of no vectors")
	}
	m := Zero(len(vectors[0]))
	for _, v := range vectors {
		m.Add(v)
	}
	m.Scale(1 / float64(len(vectors)))
	return m
}

// Nearest returns the index of the center closest to v under dist, plus the
// distance itself.
func Nearest(v Vector, centers []Vector, dist Distance) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d := dist(v, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// FromFloats converts raw slices to Vectors (sharing storage).
func FromFloats(raw [][]float64) []Vector {
	out := make([]Vector, len(raw))
	for i, r := range raw {
		out[i] = Vector(r)
	}
	return out
}

// Assignments labels each vector with its nearest center.
func Assignments(vectors, centers []Vector, dist Distance) []int {
	out := make([]int, len(vectors))
	for i, v := range vectors {
		out[i], _ = Nearest(v, centers, dist)
	}
	return out
}

// WithinClusterSS is the total squared distance of vectors to their assigned
// centers: k-means' objective function.
func WithinClusterSS(vectors, centers []Vector, assign []int) float64 {
	var s float64
	for i, v := range vectors {
		s += SquaredEuclidean(v, centers[assign[i]])
	}
	return s
}

func checkDims(vectors []Vector) (int, error) {
	if len(vectors) == 0 {
		return 0, fmt.Errorf("clustering: no input vectors")
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return 0, fmt.Errorf("clustering: vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	return d, nil
}
