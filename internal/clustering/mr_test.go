package clustering

import (
	"math"
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/sim"
)

// mrDriver provisions a small platform and loads the vectors.
func mrDriver(t *testing.T, nodes int, vectors []Vector) (*core.Platform, *Driver) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Nodes = nodes
	pl := core.MustNewPlatform(opts)
	d := NewDriver(pl, "/ml/input")
	return pl, d
}

func gaussPoints(n int) []Vector {
	pts, _ := datasets.DisplayClusteringSample(sim.New(42).Rand())
	return FromFloats(pts[:n])
}

func TestKMeansMRMatchesReference(t *testing.T) {
	pts, _ := threeBlobs(40)
	pl, d := mrDriver(t, 6, pts)
	initial := []Vector{pts[0].Clone(), pts[50].Clone(), pts[90].Clone()}
	var mr Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, pts); err != nil {
			return err
		}
		var err error
		mr, err = KMeansMR(p, d, initial, DefaultKMeansOptions(3))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := KMeans(pts, initial, DefaultKMeansOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if mr.Iterations != ref.Iterations {
		t.Fatalf("iterations: mr=%d ref=%d", mr.Iterations, ref.Iterations)
	}
	for i := range ref.Centers {
		if d := Euclidean(mr.Centers[i], ref.Centers[i]); d > 1e-6 {
			t.Fatalf("center %d differs by %v: mr=%v ref=%v", i, d, mr.Centers[i], ref.Centers[i])
		}
	}
	for i := range ref.Assignments {
		if mr.Assignments[i] != ref.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
	if mr.Runtime <= 0 {
		t.Fatal("no virtual runtime recorded")
	}
	if len(mr.JobStats) != mr.Iterations {
		t.Fatalf("job stats = %d for %d iterations", len(mr.JobStats), mr.Iterations)
	}
}

func TestFuzzyKMeansMRMatchesReference(t *testing.T) {
	pts, _ := threeBlobs(30)
	pl, d := mrDriver(t, 6, pts)
	initial := []Vector{pts[0].Clone(), pts[40].Clone(), pts[70].Clone()}
	opts := DefaultFuzzyKMeansOptions(3)
	opts.MaxIter = 5
	var mr Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, pts); err != nil {
			return err
		}
		var err error
		mr, err = FuzzyKMeansMR(p, d, initial, opts)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FuzzyKMeans(pts, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Centers {
		if dd := Euclidean(mr.Centers[i], ref.Centers[i]); dd > 1e-6 {
			t.Fatalf("center %d differs by %v", i, dd)
		}
	}
}

func TestCanopyMRCoversPoints(t *testing.T) {
	pts, _ := threeBlobs(40)
	pl, d := mrDriver(t, 6, pts)
	opts := CanopyOptions{T1: 6, T2: 3, Distance: Euclidean}
	var mr Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, pts); err != nil {
			return err
		}
		var err error
		mr, err = CanopyMR(p, d, opts)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centers) < 3 {
		t.Fatalf("canopies = %d for 3 blobs", len(mr.Centers))
	}
	// Two-level canopying bounds every point within T2 (mapper) + T2
	// (reducer merge) of a final center.
	for i, v := range pts {
		if _, dd := Nearest(v, mr.Centers, Euclidean); dd > 2*opts.T2 {
			t.Fatalf("point %d is %v from nearest canopy", i, dd)
		}
	}
}

func TestMeanShiftMRConvergesOnBlobs(t *testing.T) {
	pts, labels := threeBlobs(40)
	pl, d := mrDriver(t, 6, pts)
	var mr Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, pts); err != nil {
			return err
		}
		var err error
		mr, err = MeanShiftMR(p, d, DefaultMeanShiftOptions(4, 2))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centers) < 3 || len(mr.Centers) > 6 {
		t.Fatalf("centers = %d", len(mr.Centers))
	}
	if p := purity(mr.Assignments, labels); p < 0.9 {
		t.Fatalf("purity = %v", p)
	}
}

func TestDirichletMRMatchesReference(t *testing.T) {
	pts := gaussPoints(120)
	pl, d := mrDriver(t, 6, pts)
	opts := DefaultDirichletOptions(6)
	opts.MaxIter = 5
	var mr Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, pts); err != nil {
			return err
		}
		var err error
		mr, err = DirichletMR(p, d, opts)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Dirichlet(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same hash-seeded assignments and same arithmetic shape: centers agree
	// closely (reduce-order float drift allowed).
	for i := range ref.Centers {
		if dd := Euclidean(mr.Centers[i], ref.Centers[i]); dd > 1e-3 {
			t.Fatalf("component %d differs by %v", i, dd)
		}
	}
}

func TestMinHashMRMatchesReference(t *testing.T) {
	pts := gaussPoints(100)
	pl, d := mrDriver(t, 6, pts)
	var mr Result
	_, err := pl.Run(func(p *sim.Proc) error {
		if err := d.Load(p, pts); err != nil {
			return err
		}
		var err error
		mr, err = MinHashMR(p, d, DefaultMinHashOptions())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MinHash(pts, DefaultMinHashOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Groups) != len(ref.Groups) {
		t.Fatalf("groups: mr=%d ref=%d", len(mr.Groups), len(ref.Groups))
	}
	for i := range ref.Groups {
		if len(mr.Groups[i]) != len(ref.Groups[i]) {
			t.Fatalf("group %d sizes differ: %d vs %d", i, len(mr.Groups[i]), len(ref.Groups[i]))
		}
		for j := range ref.Groups[i] {
			if mr.Groups[i][j] != ref.Groups[i][j] {
				t.Fatalf("group %d member %d differs", i, j)
			}
		}
	}
}

func TestClusteringRuntimeGrowsWithClusterSize(t *testing.T) {
	// The Figure 6 effect: fixed small input, bigger virtual cluster, longer
	// runtime (more per-node communication and task overhead).
	runtime := func(nodes int) sim.Time {
		series := datasets.ControlChart(sim.New(42).Rand(), datasets.ControlChartOptions{PerClass: 50, Length: 60})
		vecs := FromFloats(datasets.ControlVectors(series))
		pl, d := mrDriver(t, nodes, vecs)
		var mr Result
		_, err := pl.Run(func(p *sim.Proc) error {
			if err := d.Load(p, vecs); err != nil {
				return err
			}
			var err error
			mr, err = CanopyMR(p, d, CanopyOptions{T1: 80, T2: 40, Distance: Euclidean})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return mr.Runtime
	}
	small, large := runtime(2), runtime(16)
	if large <= small {
		t.Fatalf("16-node canopy (%v) not slower than 2-node (%v)", large, small)
	}
}

func TestDriverLoadRejectsMixedDims(t *testing.T) {
	pl, d := mrDriver(t, 4, nil)
	var loadErr error
	_, _ = pl.Run(func(p *sim.Proc) error {
		loadErr = d.Load(p, []Vector{{1, 2}, {1, 2, 3}})
		return nil
	})
	if loadErr == nil {
		t.Fatal("mixed-dimension load accepted")
	}
	if !math.IsNaN(math.NaN()) {
		t.Fatal("sanity")
	}
}
