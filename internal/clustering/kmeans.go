package clustering

import (
	"fmt"
	"math"
	"strconv"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// KMeansOptions configures k-means (Mahout's KMeansDriver parameters).
type KMeansOptions struct {
	K        int
	MaxIter  int
	Epsilon  float64 // convergence: stop when no center moves further
	Distance Distance
}

// DefaultKMeansOptions mirrors Mahout 0.6 defaults.
func DefaultKMeansOptions(k int) KMeansOptions {
	return KMeansOptions{K: k, MaxIter: 10, Epsilon: 0.001, Distance: Euclidean}
}

// kmeansStep computes one Lloyd iteration: assign each vector to its nearest
// center and return the new centroids (empty clusters keep their center).
// Both the reference implementation and the MapReduce reducer use this exact
// arithmetic, so the two paths agree.
func kmeansStep(vectors, centers []Vector, dist Distance) []Vector {
	dim := len(vectors[0])
	acc := make([]*partial, len(centers))
	for i := range acc {
		acc[i] = newPartial(dim, false)
	}
	var norms []float64
	if isEuclidean(dist) {
		norms = centerNorms(centers)
	}
	for _, v := range vectors {
		var c int
		if norms != nil {
			sv := sqNorm(v)
			c, _ = nearestSquaredPruned(v, math.Sqrt(sv), sv, centers, norms)
		} else {
			c, _ = Nearest(v, centers, dist)
		}
		acc[c].sum.Add(v)
		acc[c].count++
	}
	out := make([]Vector, len(centers))
	for i, a := range acc {
		if a.count == 0 {
			out[i] = centers[i].Clone()
			continue
		}
		c := a.sum.Clone()
		c.Scale(1 / float64(a.count))
		out[i] = c
	}
	return out
}

// KMeans is the in-memory reference implementation.
func KMeans(vectors []Vector, initial []Vector, opts KMeansOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if opts.Distance == nil {
		opts.Distance = Euclidean
	}
	centers := make([]Vector, len(initial))
	for i, c := range initial {
		centers[i] = c.Clone()
	}
	res := Result{Algorithm: "kmeans"}
	for iter := 0; iter < opts.MaxIter; iter++ {
		next := kmeansStep(vectors, centers, opts.Distance)
		res.Iterations++
		res.History = append(res.History, next)
		shift := maxShift(centers, next, opts.Distance)
		centers = next
		if shift <= opts.Epsilon {
			break
		}
	}
	res.Centers = centers
	res.Assignments = Assignments(vectors, centers, opts.Distance)
	return res, nil
}

// kmeansMapper assigns each input vector to its nearest current center and
// emits a partial (sum, count) toward that center. fast selects the
// NearestSquared path (set once at construction when dist is Euclidean,
// saving the per-point reflect check Nearest would repeat).
type kmeansMapper struct {
	centers []Vector
	dist    Distance
	fast    bool
	norms   []float64 // center norms for the pruned path, built on first Map
}

func (m *kmeansMapper) Map(_ string, value any, emit mapreduce.Emit) {
	v := Vector(value.([]float64))
	var c int
	if m.fast {
		if m.norms == nil {
			m.norms = centerNorms(m.centers)
		}
		sv := sqNorm(v)
		c, _ = nearestSquaredPruned(v, math.Sqrt(sv), sv, m.centers, m.norms)
	} else {
		c, _ = Nearest(v, m.centers, m.dist)
	}
	emit("c"+strconv.Itoa(c), partialOf(v), partialSize(len(v)))
}

// kmeansReducer folds partials into the new centroid.
func kmeansReducer() mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
		acc := sumPartials(values)
		c := acc.sum.Clone()
		c.Scale(1 / float64(acc.count))
		emit(key, c, float64(len(c)*8+16))
	})
}

// kmeansCombiner pre-folds partials map-side.
func kmeansCombiner() mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
		acc := sumPartials(values)
		emit(key, acc, partialSize(len(acc.sum)))
	})
}

// KMeansMR runs k-means as per-iteration MapReduce jobs on the driver's
// platform, exactly as Mahout's KMeansDriver does: each iteration ships the
// current centers to every mapper (side input), maps emit partial sums per
// cluster, a combiner folds them map-side and one reducer produces the new
// centers.
func KMeansMR(p *sim.Proc, d *Driver, initial []Vector, opts KMeansOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if opts.Distance == nil {
		opts.Distance = Euclidean
	}
	centers := make([]Vector, len(initial))
	for i, c := range initial {
		centers[i] = c.Clone()
	}
	res := Result{Algorithm: "kmeans"}
	start := p.Now()
	for iter := 0; iter < opts.MaxIter; iter++ {
		state, err := d.writeState(p, "kmeans", len(centers))
		if err != nil {
			return res, err
		}
		captured := centers
		fast := isEuclidean(opts.Distance)
		cfg := d.iterationJob("kmeans", state, 1,
			func() mapreduce.Mapper { return &kmeansMapper{centers: captured, dist: opts.Distance, fast: fast} },
			func() mapreduce.Reducer { return kmeansReducer() },
			kmeansCombiner,
		)
		cfg.Cost.MapCPUPerRecord = d.perRecordCost(len(captured))
		out, stats, err := d.runJob(p, cfg)
		if err != nil {
			return res, err
		}
		res.JobStats = append(res.JobStats, stats)
		res.Iterations++

		next := make([]Vector, len(centers))
		for i := range next {
			next[i] = centers[i].Clone() // empty clusters keep their center
		}
		for _, kv := range out {
			idx, err := reduceIndex(kv.Key, len(next))
			if err != nil {
				return res, err
			}
			next[idx] = kv.Value.(Vector)
		}
		res.History = append(res.History, next)
		shift := maxShift(centers, next, opts.Distance)
		centers = next
		if shift <= opts.Epsilon {
			break
		}
	}
	res.Centers = centers
	res.Assignments = Assignments(d.vectors, centers, opts.Distance)
	res.Runtime = p.Now() - start
	return res, nil
}
