package clustering

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vhadoop/internal/datasets"
)

// threeBlobs returns well-separated 2-D clusters for recovery tests.
func threeBlobs(n int) ([]Vector, []int) {
	rng := rand.New(rand.NewSource(11))
	means := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var pts []Vector
	var labels []int
	for ci, m := range means {
		for i := 0; i < n; i++ {
			pts = append(pts, Vector{
				m[0] + rng.NormFloat64()*0.8,
				m[1] + rng.NormFloat64()*0.8,
			})
			labels = append(labels, ci)
		}
	}
	return pts, labels
}

// purity measures how well assignments match true labels.
func purity(assign, labels []int) float64 {
	type key struct{ a, l int }
	counts := map[key]int{}
	for i := range assign {
		counts[key{assign[i], labels[i]}]++
	}
	best := map[int]int{}
	for k, n := range counts {
		if n > best[k.a] {
			best[k.a] = n
		}
	}
	var correct int
	for _, n := range best {
		correct += n
	}
	return float64(correct) / float64(len(assign))
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[2] != 9 {
		t.Fatalf("Add: %v", v)
	}
	v.Scale(2)
	if v[1] != 14 {
		t.Fatalf("Scale: %v", v)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases storage")
	}
}

func TestDistances(t *testing.T) {
	a, b := Vector{0, 0}, Vector{3, 4}
	if d := Euclidean(a, b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("euclidean = %v", d)
	}
	if d := SquaredEuclidean(a, b); math.Abs(d-25) > 1e-12 {
		t.Fatalf("squared = %v", d)
	}
	if d := Manhattan(a, b); math.Abs(d-7) > 1e-12 {
		t.Fatalf("manhattan = %v", d)
	}
	if d := Cosine(Vector{1, 0}, Vector{1, 0}); math.Abs(d) > 1e-12 {
		t.Fatalf("cosine identical = %v", d)
	}
	if d := Cosine(Vector{1, 0}, Vector{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("cosine orthogonal = %v", d)
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	pts, labels := threeBlobs(60)
	initial := []Vector{pts[0].Clone(), pts[70].Clone(), pts[130].Clone()}
	res, err := KMeans(pts, initial, DefaultKMeansOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Assignments, labels); p < 0.98 {
		t.Fatalf("purity = %v", p)
	}
	if res.Iterations < 1 || res.Iterations > 10 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestKMeansObjectiveNonIncreasing(t *testing.T) {
	pts, _ := threeBlobs(50)
	initial := []Vector{pts[3].Clone(), pts[5].Clone(), pts[9].Clone()}
	res, err := KMeans(pts, initial, DefaultKMeansOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, centers := range res.History {
		assign := Assignments(pts, centers, Euclidean)
		wcss := WithinClusterSS(pts, centers, assign)
		if wcss > prev+1e-6 {
			t.Fatalf("objective increased: %v -> %v", prev, wcss)
		}
		prev = wcss
	}
}

func TestKMeansEmptyClusterKeepsCenter(t *testing.T) {
	pts := []Vector{{0, 0}, {0.1, 0}, {0.2, 0}}
	initial := []Vector{{0, 0}, {100, 100}} // second center sees no points
	res, err := KMeans(pts, initial, DefaultKMeansOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Centers[1][0] != 100 {
		t.Fatalf("empty cluster center moved: %v", res.Centers[1])
	}
}

func TestFuzzyKMeansMembershipsSumToOne(t *testing.T) {
	pts, _ := threeBlobs(20)
	centers := []Vector{pts[0], pts[25], pts[45]}
	for _, v := range pts {
		u := memberships(v, centers, Euclidean, 2)
		var s float64
		for _, x := range u {
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("memberships sum to %v", s)
		}
	}
}

func TestFuzzyKMeansRecoversBlobs(t *testing.T) {
	pts, labels := threeBlobs(60)
	initial := []Vector{pts[0].Clone(), pts[70].Clone(), pts[130].Clone()}
	res, err := FuzzyKMeans(pts, initial, DefaultFuzzyKMeansOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Assignments, labels); p < 0.95 {
		t.Fatalf("purity = %v", p)
	}
}

func TestFuzzyKMeansRejectsBadM(t *testing.T) {
	pts, _ := threeBlobs(5)
	opts := DefaultFuzzyKMeansOptions(2)
	opts.M = 1.0
	if _, err := FuzzyKMeans(pts, []Vector{pts[0], pts[1]}, opts); err == nil {
		t.Fatal("m=1 accepted")
	}
}

func TestCanopyCoversAllPoints(t *testing.T) {
	pts, _ := threeBlobs(60)
	opts := CanopyOptions{T1: 6, T2: 3, Distance: Euclidean}
	res, err := Canopy(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) < 3 {
		t.Fatalf("only %d canopies for 3 separated blobs", len(res.Centers))
	}
	for i, v := range pts {
		_, d := Nearest(v, res.Centers, Euclidean)
		if d >= opts.T2 {
			t.Fatalf("point %d is %v from nearest canopy (T2=%v)", i, d, opts.T2)
		}
	}
}

func TestCanopyValidation(t *testing.T) {
	pts, _ := threeBlobs(5)
	if _, err := Canopy(pts, CanopyOptions{T1: 1, T2: 2, Distance: Euclidean}); err == nil {
		t.Fatal("T1 < T2 accepted")
	}
	if _, err := Canopy(pts, CanopyOptions{T1: 2, T2: 1}); err == nil {
		t.Fatal("nil distance accepted")
	}
}

func TestMeanShiftMergesToBlobCount(t *testing.T) {
	pts, labels := threeBlobs(60)
	res, err := MeanShift(pts, DefaultMeanShiftOptions(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) < 3 || len(res.Centers) > 6 {
		t.Fatalf("centers = %d, want near 3", len(res.Centers))
	}
	if p := purity(res.Assignments, labels); p < 0.95 {
		t.Fatalf("purity = %v", p)
	}
}

func TestDirichletWeightsFormDistribution(t *testing.T) {
	pts, _ := threeBlobs(60)
	res, err := Dirichlet(pts, DefaultDirichletOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 8 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	if res.Iterations != 10 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	for _, c := range res.Centers {
		for _, x := range c {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("non-finite center %v", c)
			}
		}
	}
	// Every point gets an assignment in range.
	for _, a := range res.Assignments {
		if a < 0 || a >= 8 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestMinHashGroupsIdenticalVectors(t *testing.T) {
	base := Vector{5, 0, 5, 0, 5, 0}
	other := Vector{0, 5, 0, 5, 0, 5}
	pts := []Vector{base.Clone(), base.Clone(), base.Clone(), other.Clone(), other.Clone()}
	res, err := MinHash(pts, DefaultMinHashOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[1] != res.Assignments[2] {
		t.Fatalf("identical vectors split: %v", res.Assignments)
	}
	if res.Assignments[3] != res.Assignments[4] {
		t.Fatalf("identical vectors split: %v", res.Assignments)
	}
	if res.Assignments[0] == res.Assignments[3] {
		t.Fatalf("disjoint feature sets merged: %v", res.Assignments)
	}
}

func TestMinHashOnControlChartSeparatesSomeStructure(t *testing.T) {
	series := datasets.ControlChart(rand.New(rand.NewSource(5)), datasets.ControlChartOptions{PerClass: 20, Length: 60})
	vecs := FromFloats(datasets.ControlVectors(series))
	res, err := MinHash(vecs, DefaultMinHashOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no minhash groups at all")
	}
}

func TestKMeansOnControlChartSeparatesTrends(t *testing.T) {
	series := datasets.ControlChart(rand.New(rand.NewSource(5)), datasets.ControlChartOptions{PerClass: 30, Length: 60})
	vecs := FromFloats(datasets.ControlVectors(series))
	labels := make([]int, len(series))
	for i, s := range series {
		labels[i] = int(s.Class)
	}
	initial := []Vector{vecs[0], vecs[30], vecs[60], vecs[90], vecs[120], vecs[150]}
	opts := DefaultKMeansOptions(6)
	opts.MaxIter = 20
	res, err := KMeans(vecs, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The six classes are not linearly separable in raw space, but k-means
	// should do far better than random (1/6).
	if p := purity(res.Assignments, labels); p < 0.4 {
		t.Fatalf("purity = %v on control chart", p)
	}
}

// Property: canopy centers are never within T2 of each other.
func TestCanopySeparationProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Vector, n)
		for i := range pts {
			pts[i] = Vector{rng.Float64() * 20, rng.Float64() * 20}
		}
		opts := CanopyOptions{T1: 5, T2: 2.5, Distance: Euclidean}
		res, err := Canopy(pts, opts)
		if err != nil {
			return false
		}
		for i := range res.Centers {
			for j := i + 1; j < len(res.Centers); j++ {
				if Euclidean(res.Centers[i], res.Centers[j]) < opts.T2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-means assignments always point at the nearest center.
func TestNearestAssignmentProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Vector, 30)
		for i := range pts {
			pts[i] = Vector{rng.NormFloat64(), rng.NormFloat64()}
		}
		res, err := KMeans(pts, []Vector{pts[0].Clone(), pts[1].Clone()}, DefaultKMeansOptions(2))
		if err != nil {
			return false
		}
		for i, v := range pts {
			want, _ := Nearest(v, res.Centers, Euclidean)
			if res.Assignments[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
