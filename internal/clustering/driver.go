package clustering

import (
	"fmt"
	"strconv"

	"vhadoop/internal/core"
	"vhadoop/internal/datasets"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// reduceIndex parses the numeric part of a "c<idx>"-style reduce key
// and bounds-checks it against n cluster slots. The parse failure is
// propagated, not replaced: a malformed key is a mapper bug, and the
// strconv cause says which kind.
func reduceIndex(key string, n int) (int, error) {
	if len(key) < 2 {
		return 0, fmt.Errorf("clustering: reduce key %q has no index", key)
	}
	idx, err := strconv.Atoi(key[1:])
	if err != nil {
		return 0, fmt.Errorf("clustering: bad reduce key %q: %w", key, err)
	}
	if idx < 0 || idx >= n {
		return 0, fmt.Errorf("clustering: reduce key %q out of range [0,%d)", key, n)
	}
	return idx, nil
}

// Result is the outcome of one clustering run (in-memory or MapReduce).
type Result struct {
	Algorithm   string
	Centers     []Vector
	Assignments []int // per input vector; -1 if the algorithm does not assign
	Iterations  int
	Runtime     sim.Time // wall-clock virtual time of the MapReduce run
	JobStats    []mapreduce.JobStats
	// History keeps the centers after each iteration, oldest first — the
	// data Figure 8's convergence visualisation superimposes.
	History [][]Vector
	// Groups holds cluster membership sets for algorithms whose natural
	// output is groups rather than centroids (MinHash).
	Groups [][]int
}

// Driver runs clustering algorithms as sequences of MapReduce jobs on a
// vHadoop platform, mirroring how Mahout drives Hadoop.
type Driver struct {
	pl      *core.Platform
	name    string
	vectors []Vector

	// NumMaps is the map-task count per iteration job. Mahout sizes the map
	// count to the cluster's capacity, so it defaults to the worker count.
	NumMaps int
	// BytesPerVector is the virtual on-disk size of one serialized vector.
	BytesPerVector float64
	// StateBytesPerCluster is the virtual size of one serialized cluster in
	// the per-iteration state file every mapper reads.
	StateBytesPerCluster float64
	// Cost charges per-record CPU for the distance computations.
	Cost mapreduce.CostModel
	// SubmitOpts (tenant, priority, deadline) are forwarded to every
	// MapReduce job the driver submits.
	SubmitOpts []mapreduce.SubmitOption

	iteration int
}

// runJob submits spec with the driver's submission options and waits for
// completion, returning the collected output — the driver-internal
// replacement for the deprecated RunAndCollect surface.
func (d *Driver) runJob(p *sim.Proc, spec mapreduce.JobSpec) ([]mapreduce.KV, mapreduce.JobStats, error) {
	h, err := d.pl.MR.Submit(p, spec, d.SubmitOpts...)
	if err != nil {
		return nil, mapreduce.JobStats{}, err
	}
	stats, err := h.Wait(p)
	if err != nil {
		return nil, stats, err
	}
	return h.OutputRecords(), stats, nil
}

// NewDriver prepares a driver for the given input name. Call Load before
// running any algorithm.
func NewDriver(pl *core.Platform, name string) *Driver {
	return &Driver{
		pl:      pl,
		name:    name,
		NumMaps: len(pl.Workers()),
		Cost: mapreduce.CostModel{
			MapCPUPerRecord:    2e-4, // distance computations per point
			ReduceCPUPerRecord: 5e-5,
			SortCPUPerByte:     5e-9,
			TaskSetupCPU:       1.5,
		},
	}
}

// Vectors returns the loaded input vectors.
func (d *Driver) Vectors() []Vector { return d.vectors }

// Platform returns the underlying platform.
func (d *Driver) Platform() *core.Platform { return d.pl }

// Load uploads the vectors to HDFS as the algorithm input. Serialized sizes
// scale with the data dimensionality (a Mahout VectorWritable of the 60-dim
// control series is an order of magnitude bigger than a 2-D sample, and so
// is a cluster with its per-dimension statistics), unless the caller set
// them explicitly before Load.
func (d *Driver) Load(p *sim.Proc, vectors []Vector) error {
	dims, err := checkDims(vectors)
	if err != nil {
		return err
	}
	if d.BytesPerVector == 0 {
		d.BytesPerVector = 64 + 16*float64(dims)
	}
	if d.StateBytesPerCluster == 0 {
		d.StateBytesPerCluster = 8e3 + 1e3*float64(dims)
	}
	d.vectors = vectors
	raw := make([][]float64, len(vectors))
	for i, v := range vectors {
		raw[i] = v
	}
	recs := datasets.VectorRecords(raw, d.BytesPerVector)
	size := d.BytesPerVector * float64(len(vectors))
	_, werr := d.pl.DFS.Write(p, d.pl.Master, d.name, size, recs)
	return werr
}

// InitCenters samples k distinct input vectors as initial centers, using
// the platform's deterministic random stream.
func (d *Driver) InitCenters(k int) []Vector {
	if k > len(d.vectors) {
		k = len(d.vectors)
	}
	rng := d.pl.Engine.Rand()
	perm := rng.Perm(len(d.vectors))
	centers := make([]Vector, k)
	for i := 0; i < k; i++ {
		centers[i] = d.vectors[perm[i]].Clone()
	}
	return centers
}

// writeState persists the per-iteration cluster state to HDFS and returns
// its name; every mapper of the next job reads it as a side input.
func (d *Driver) writeState(p *sim.Proc, algo string, nClusters int) (string, error) {
	d.iteration++
	name := fmt.Sprintf("%s.%s-state-%04d", d.name, algo, d.iteration)
	size := d.StateBytesPerCluster * float64(nClusters)
	if size < 1e3 {
		size = 1e3
	}
	if _, err := d.pl.DFS.Write(p, d.pl.Master, name, size, nil); err != nil {
		return "", err
	}
	return name, nil
}

// perRecordCost returns the VCPU seconds one input record costs when scored
// against nCenters centers (≈10 ns per dimension operation, the measured
// rate of tight distance loops on the testbed's cores).
func (d *Driver) perRecordCost(nCenters int) float64 {
	dims := 0
	if len(d.vectors) > 0 {
		dims = len(d.vectors[0])
	}
	return float64(nCenters*dims) * 1e-7
}

// iterationJob assembles the standard per-iteration job around the given
// mapper/reducer factories.
func (d *Driver) iterationJob(algo, state string, reduces int,
	newMapper func() mapreduce.Mapper, newReducer func() mapreduce.Reducer,
	newCombiner func() mapreduce.Reducer) mapreduce.JobConfig {
	cfg := mapreduce.JobConfig{
		Name:       fmt.Sprintf("%s-iter%04d", algo, d.iteration),
		Input:      []string{d.name},
		NumReduces: reduces,
		NumMaps:    d.NumMaps,
		NewMapper:  newMapper,
		NewReducer: newReducer,
		Cost:       d.Cost,
	}
	if state != "" {
		cfg.SideInput = []string{state}
	}
	if newCombiner != nil {
		cfg.NewCombiner = newCombiner
	}
	return cfg
}

// partial is the additive statistic flowing from mappers to reducers in the
// centroid-style algorithms: a weighted vector sum (plus a sum of squares
// for the model-based ones).
type partial struct {
	sum    Vector
	sumSq  Vector
	weight float64
	count  int
}

func newPartial(dim int, squares bool) *partial {
	p := &partial{sum: Zero(dim)}
	if squares {
		p.sumSq = Zero(dim)
	}
	return p
}

// partialOf builds the single-observation partial the mappers emit per
// point: one clone instead of a zero-fill plus an add pass.
func partialOf(v Vector) *partial {
	return &partial{sum: v.Clone(), count: 1}
}

// scaledPartialOf is partialOf with membership weight w applied (the fuzzy
// k-means per-point emission).
func scaledPartialOf(v Vector, w float64) *partial {
	sum := make(Vector, len(v))
	for i, x := range v {
		sum[i] = w * x
	}
	return &partial{sum: sum, weight: w, count: 1}
}

func (a *partial) add(b *partial) {
	a.sum.Add(b.sum)
	if a.sumSq != nil && b.sumSq != nil {
		a.sumSq.Add(b.sumSq)
	}
	a.weight += b.weight
	a.count += b.count
}

// partialSize is the virtual size of a serialized partial.
func partialSize(dim int) float64 { return float64(dim)*8 + 32 }

// sumPartialsReducer folds all partials for a key into one.
func sumPartials(values []any) *partial {
	var acc *partial
	for _, v := range values {
		pv := v.(*partial)
		if acc == nil {
			c := &partial{sum: pv.sum.Clone(), weight: pv.weight, count: pv.count}
			if pv.sumSq != nil {
				c.sumSq = pv.sumSq.Clone()
			}
			acc = c
			continue
		}
		acc.add(pv)
	}
	return acc
}

// maxShift returns the largest distance between corresponding old and new
// centers (the convergence criterion).
func maxShift(old, new []Vector, dist Distance) float64 {
	shift := 0.0
	n := len(old)
	if len(new) < n {
		n = len(new)
	}
	for i := 0; i < n; i++ {
		if d := dist(old[i], new[i]); d > shift {
			shift = d
		}
	}
	return shift
}
