package clustering

import (
	"fmt"
	"math"
	"strconv"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// FuzzyKMeansOptions configures fuzzy k-means (Mahout's FuzzyKMeansDriver).
type FuzzyKMeansOptions struct {
	K        int
	MaxIter  int
	Epsilon  float64
	M        float64 // fuzziness exponent, > 1 (Mahout default 2)
	Distance Distance
}

// DefaultFuzzyKMeansOptions mirrors Mahout 0.6 defaults.
func DefaultFuzzyKMeansOptions(k int) FuzzyKMeansOptions {
	return FuzzyKMeansOptions{K: k, MaxIter: 10, Epsilon: 0.001, M: 2, Distance: Euclidean}
}

// memberships computes the fuzzy membership of v in every center:
// u_i = 1 / sum_j (d_i/d_j)^(2/(m-1)). A zero distance collapses to a hard
// assignment.
func memberships(v Vector, centers []Vector, dist Distance, m float64) []float64 {
	return membershipsInto(v, centers, dist, m, nil, nil)
}

// membershipsInto is memberships with caller-owned scratch: ds holds the
// per-center distances and u receives the result (both grown as needed; the
// returned slice aliases u). For Mahout's default m=2 the exponent is
// exactly 2, so the ratio is squared directly instead of through math.Pow —
// the same rounding, an order of magnitude less CPU.
func membershipsInto(v Vector, centers []Vector, dist Distance, m float64, ds, u []float64) []float64 {
	k := len(centers)
	if cap(ds) < k {
		ds = make([]float64, k)
	}
	ds = ds[:k]
	if cap(u) < k {
		u = make([]float64, k)
	}
	u = u[:k]
	for i, c := range centers {
		ds[i] = dist(v, c)
		if ds[i] == 0 {
			for j := range u {
				u[j] = 0
			}
			u[i] = 1
			return u
		}
	}
	exp := 2 / (m - 1)
	square := exp == 2
	for i := range centers {
		var s float64
		for j := range centers {
			r := ds[i] / ds[j]
			if square {
				s += r * r
			} else {
				s += math.Pow(r, exp)
			}
		}
		u[i] = 1 / s
	}
	return u
}

// powM raises x to the fuzziness exponent, multiplying directly when m=2
// (bit-identical to math.Pow's repeated-squaring result).
func powM(x, m float64) float64 {
	if m == 2 {
		return x * x
	}
	return math.Pow(x, m)
}

// fuzzyStep performs one fuzzy c-means update of the centers.
func fuzzyStep(vectors, centers []Vector, dist Distance, m float64) []Vector {
	dim := len(vectors[0])
	acc := make([]*partial, len(centers))
	for i := range acc {
		acc[i] = newPartial(dim, false)
	}
	ds := make([]float64, len(centers))
	u := make([]float64, len(centers))
	for _, v := range vectors {
		membershipsInto(v, centers, dist, m, ds, u)
		for i := range centers {
			w := powM(u[i], m)
			acc[i].sum.AddScaled(v, w)
			acc[i].weight += w
		}
	}
	out := make([]Vector, len(centers))
	for i, a := range acc {
		if a.weight == 0 {
			out[i] = centers[i].Clone()
			continue
		}
		c := a.sum.Clone()
		c.Scale(1 / a.weight)
		out[i] = c
	}
	return out
}

// FuzzyKMeans is the in-memory reference implementation.
func FuzzyKMeans(vectors []Vector, initial []Vector, opts FuzzyKMeansOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if opts.Distance == nil {
		opts.Distance = Euclidean
	}
	if opts.M <= 1 {
		return Result{}, fmt.Errorf("clustering: fuzziness m must exceed 1, got %v", opts.M)
	}
	centers := make([]Vector, len(initial))
	for i, c := range initial {
		centers[i] = c.Clone()
	}
	res := Result{Algorithm: "fuzzykmeans"}
	for iter := 0; iter < opts.MaxIter; iter++ {
		next := fuzzyStep(vectors, centers, opts.Distance, opts.M)
		res.Iterations++
		res.History = append(res.History, next)
		shift := maxShift(centers, next, opts.Distance)
		centers = next
		if shift <= opts.Epsilon {
			break
		}
	}
	res.Centers = centers
	res.Assignments = Assignments(vectors, centers, opts.Distance)
	return res, nil
}

// fuzzyMapper emits a weighted partial toward every center for each vector.
// ds and u are per-mapper scratch reused across records, so the membership
// computation allocates nothing per point.
type fuzzyMapper struct {
	centers []Vector
	dist    Distance
	m       float64
	ds, u   []float64
}

func (fm *fuzzyMapper) Map(_ string, value any, emit mapreduce.Emit) {
	v := Vector(value.([]float64))
	if fm.ds == nil {
		fm.ds = make([]float64, len(fm.centers))
		fm.u = make([]float64, len(fm.centers))
	}
	membershipsInto(v, fm.centers, fm.dist, fm.m, fm.ds, fm.u)
	for i := range fm.centers {
		w := powM(fm.u[i], fm.m)
		emit("c"+strconv.Itoa(i), scaledPartialOf(v, w), partialSize(len(v)))
	}
}

// FuzzyKMeansMR runs fuzzy k-means as per-iteration MapReduce jobs.
func FuzzyKMeansMR(p *sim.Proc, d *Driver, initial []Vector, opts FuzzyKMeansOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if opts.Distance == nil {
		opts.Distance = Euclidean
	}
	if opts.M <= 1 {
		return Result{}, fmt.Errorf("clustering: fuzziness m must exceed 1, got %v", opts.M)
	}
	centers := make([]Vector, len(initial))
	for i, c := range initial {
		centers[i] = c.Clone()
	}
	res := Result{Algorithm: "fuzzykmeans"}
	start := p.Now()
	reducer := func() mapreduce.Reducer {
		return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
			acc := sumPartials(values)
			if acc.weight == 0 {
				return
			}
			c := acc.sum.Clone()
			c.Scale(1 / acc.weight)
			emit(key, c, float64(len(c)*8+16))
		})
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		state, err := d.writeState(p, "fuzzykmeans", len(centers))
		if err != nil {
			return res, err
		}
		captured := centers
		cfg := d.iterationJob("fuzzykmeans", state, 1,
			func() mapreduce.Mapper { return &fuzzyMapper{centers: captured, dist: opts.Distance, m: opts.M} },
			reducer,
			func() mapreduce.Reducer { return kmeansCombiner() },
		)
		cfg.Cost.MapCPUPerRecord = 2 * d.perRecordCost(len(captured)) // pow() on top of distances
		out, stats, err := d.runJob(p, cfg)
		if err != nil {
			return res, err
		}
		res.JobStats = append(res.JobStats, stats)
		res.Iterations++

		next := make([]Vector, len(centers))
		for i := range next {
			next[i] = centers[i].Clone()
		}
		for _, kv := range out {
			idx, err := reduceIndex(kv.Key, len(next))
			if err != nil {
				return res, err
			}
			next[idx] = kv.Value.(Vector)
		}
		res.History = append(res.History, next)
		shift := maxShift(centers, next, opts.Distance)
		centers = next
		if shift <= opts.Epsilon {
			break
		}
	}
	res.Centers = centers
	res.Assignments = Assignments(d.vectors, centers, opts.Distance)
	res.Runtime = p.Now() - start
	return res, nil
}
