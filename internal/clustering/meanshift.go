package clustering

import (
	"fmt"
	"strconv"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// MeanShiftOptions configures mean-shift canopy clustering (Mahout's
// MeanShiftCanopyDriver): every point starts as a canopy; canopies shift to
// the mean of the points within T1 and merge when they come within T2.
type MeanShiftOptions struct {
	T1, T2   float64
	MaxIter  int
	Epsilon  float64 // converged when no center shifts further than this
	Distance Distance
}

// DefaultMeanShiftOptions mirrors Mahout 0.6 defaults (10 iterations cap).
func DefaultMeanShiftOptions(t1, t2 float64) MeanShiftOptions {
	return MeanShiftOptions{T1: t1, T2: t2, MaxIter: 10, Epsilon: 0.001, Distance: Euclidean}
}

func validateMeanShift(opts MeanShiftOptions) error {
	if opts.Distance == nil {
		return fmt.Errorf("clustering: mean-shift needs a distance measure")
	}
	if opts.T1 <= opts.T2 || opts.T2 <= 0 {
		return fmt.Errorf("clustering: mean-shift needs T1 > T2 > 0, got T1=%v T2=%v", opts.T1, opts.T2)
	}
	return nil
}

// meanShiftMove computes the shifted position of each center: the mean of
// all data points within T1 (a center with no points in range stays put).
func meanShiftMove(vectors, centers []Vector, opts MeanShiftOptions) []Vector {
	dim := len(vectors[0])
	acc := make([]*partial, len(centers))
	for i := range acc {
		acc[i] = newPartial(dim, false)
	}
	inT1 := withinThreshold(opts.Distance, opts.T1)
	for _, v := range vectors {
		for i, c := range centers {
			if inT1(v, c) {
				acc[i].sum.Add(v)
				acc[i].count++
			}
		}
	}
	out := make([]Vector, len(centers))
	for i, a := range acc {
		if a.count == 0 {
			out[i] = centers[i].Clone()
			continue
		}
		c := a.sum.Clone()
		c.Scale(1 / float64(a.count))
		out[i] = c
	}
	return out
}

// mergeCanopies collapses centers that came within T2 of an earlier center.
func mergeCanopies(centers []Vector, opts MeanShiftOptions) []Vector {
	inT2 := withinThreshold(opts.Distance, opts.T2)
	var out []Vector
	for _, c := range centers {
		merged := false
		for _, kept := range out {
			if inT2(c, kept) {
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, c)
		}
	}
	return out
}

// seedCenters starts mean-shift from a decimated copy of the data (Mahout
// seeds one canopy per point; decimation keeps the simulation tractable on
// large inputs while preserving the algorithm's behaviour).
func seedCenters(vectors []Vector, maxSeeds int) []Vector {
	step := 1
	if len(vectors) > maxSeeds {
		step = (len(vectors) + maxSeeds - 1) / maxSeeds
	}
	var out []Vector
	for i := 0; i < len(vectors); i += step {
		out = append(out, vectors[i].Clone())
	}
	return out
}

// MeanShift is the in-memory reference implementation.
func MeanShift(vectors []Vector, opts MeanShiftOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if err := validateMeanShift(opts); err != nil {
		return Result{}, err
	}
	centers := seedCenters(vectors, 256)
	res := Result{Algorithm: "meanshift"}
	for iter := 0; iter < opts.MaxIter; iter++ {
		moved := meanShiftMove(vectors, centers, opts)
		shift := maxShift(centers, moved, opts.Distance)
		centers = mergeCanopies(moved, opts)
		res.Iterations++
		res.History = append(res.History, centers)
		if shift <= opts.Epsilon {
			break
		}
	}
	res.Centers = centers
	res.Assignments = Assignments(vectors, centers, opts.Distance)
	return res, nil
}

// meanShiftMapper emits, per data point, a partial toward every canopy
// within T1.
type meanShiftMapper struct {
	centers []Vector
	opts    MeanShiftOptions
	inT1    func(a, b Vector) bool
}

func (m *meanShiftMapper) Map(_ string, value any, emit mapreduce.Emit) {
	v := Vector(value.([]float64))
	if m.inT1 == nil {
		m.inT1 = withinThreshold(m.opts.Distance, m.opts.T1)
	}
	for i, c := range m.centers {
		if m.inT1(v, c) {
			emit("c"+strconv.Itoa(i), partialOf(v), partialSize(len(v)))
		}
	}
}

// MeanShiftMR runs mean-shift as per-iteration MapReduce jobs: mappers
// compute partial means per canopy, the reducer moves each canopy, and the
// driver merges canopies that converged together.
func MeanShiftMR(p *sim.Proc, d *Driver, opts MeanShiftOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if err := validateMeanShift(opts); err != nil {
		return Result{}, err
	}
	centers := seedCenters(d.vectors, 256)
	res := Result{Algorithm: "meanshift"}
	start := p.Now()
	for iter := 0; iter < opts.MaxIter; iter++ {
		state, err := d.writeState(p, "meanshift", len(centers))
		if err != nil {
			return res, err
		}
		captured := centers
		cfg := d.iterationJob("meanshift", state, 1,
			func() mapreduce.Mapper { return &meanShiftMapper{centers: captured, opts: opts} },
			func() mapreduce.Reducer {
				return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
					acc := sumPartials(values)
					c := acc.sum.Clone()
					c.Scale(1 / float64(acc.count))
					emit(key, c, float64(len(c)*8+16))
				})
			},
			kmeansCombiner,
		)
		cfg.Cost.MapCPUPerRecord = d.perRecordCost(len(captured))
		out, stats, err := d.runJob(p, cfg)
		if err != nil {
			return res, err
		}
		res.JobStats = append(res.JobStats, stats)
		res.Iterations++

		moved := make([]Vector, len(centers))
		for i := range moved {
			moved[i] = centers[i].Clone()
		}
		for _, kv := range out {
			idx, err := reduceIndex(kv.Key, len(moved))
			if err != nil {
				return res, err
			}
			moved[idx] = kv.Value.(Vector)
		}
		shift := maxShift(centers, moved, opts.Distance)
		centers = mergeCanopies(moved, opts)
		res.History = append(res.History, centers)
		if shift <= opts.Epsilon {
			break
		}
	}
	res.Centers = centers
	res.Assignments = Assignments(d.vectors, centers, opts.Distance)
	res.Runtime = p.Now() - start
	return res, nil
}
