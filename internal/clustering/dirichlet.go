package clustering

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"

	"vhadoop/internal/mapreduce"
	"vhadoop/internal/sim"
)

// DirichletOptions configures Dirichlet process clustering (Mahout's
// DirichletDriver): Bayesian mixture modelling over K candidate components
// with a symmetric Dirichlet prior of concentration Alpha.
type DirichletOptions struct {
	K       int // candidate model components (Mahout's numModels)
	MaxIter int
	Alpha   float64 // Dirichlet concentration (Mahout default 1.0)
}

// DefaultDirichletOptions mirrors Mahout 0.6 defaults.
func DefaultDirichletOptions(k int) DirichletOptions {
	return DirichletOptions{K: k, MaxIter: 10, Alpha: 1.0}
}

// normalModel is a spherical Gaussian mixture component with weight.
type normalModel struct {
	Mean   Vector
	Stddev float64
	Weight float64
}

// logPdf is the spherical Gaussian log density (up to the shared constant).
func (m normalModel) logPdf(v Vector) float64 {
	d := SquaredEuclidean(v, m.Mean)
	s2 := m.Stddev * m.Stddev
	return -0.5*d/s2 - float64(len(v))*math.Log(m.Stddev)
}

// dirichletInit seeds K components from the data spread.
func dirichletInit(vectors []Vector, k int) []normalModel {
	dim := len(vectors[0])
	mean := Mean(vectors)
	// Global stddev estimate.
	var ss float64
	for _, v := range vectors {
		ss += SquaredEuclidean(v, mean)
	}
	sd := math.Sqrt(ss/float64(len(vectors))/float64(dim)) + 1e-9
	models := make([]normalModel, k)
	for i := range models {
		c := vectors[(i*len(vectors))/k].Clone()
		models[i] = normalModel{Mean: c, Stddev: sd, Weight: 1 / float64(k)}
	}
	return models
}

// assignComponent picks the component for v: a deterministic pseudo-random
// draw from the posterior (hash-seeded so mappers need no shared RNG and the
// simulation stays reproducible).
func assignComponent(v Vector, id string, iter int, models []normalModel) int {
	logp := make([]float64, len(models))
	maxLog := math.Inf(-1)
	for i, m := range models {
		logp[i] = math.Log(m.Weight+1e-12) + m.logPdf(v)
		if logp[i] > maxLog {
			maxLog = logp[i]
		}
	}
	var total float64
	for i := range logp {
		logp[i] = math.Exp(logp[i] - maxLog)
		total += logp[i]
	}
	// Deterministic uniform draw in [0,1) from the (id, iter) pair.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, iter)
	u := float64(h.Sum64()%1e9) / 1e9 * total
	for i, p := range logp {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(models) - 1
}

// dirichletPosterior folds assigned-point statistics into updated models.
func dirichletPosterior(acc []*partial, prior []normalModel, n int, alpha float64) []normalModel {
	out := make([]normalModel, len(prior))
	for i, a := range acc {
		m := prior[i]
		if a != nil && a.count > 0 {
			mean := a.sum.Clone()
			mean.Scale(1 / float64(a.count))
			// Per-dimension variance from the sufficient statistics.
			var varSum float64
			for j := range mean {
				ex2 := a.sumSq[j] / float64(a.count)
				varSum += ex2 - mean[j]*mean[j]
			}
			sd := math.Sqrt(math.Max(varSum/float64(len(mean)), 1e-6))
			m.Mean = mean
			m.Stddev = 0.5*m.Stddev + 0.5*sd // smoothed update
		}
		count := 0.0
		if a != nil {
			count = float64(a.count)
		}
		m.Weight = (count + alpha/float64(len(prior))) / (float64(n) + alpha)
		out[i] = m
	}
	return out
}

// dirichletStep runs one Gibbs-style iteration in memory.
func dirichletStep(vectors []Vector, models []normalModel, iter int, alpha float64) []normalModel {
	dim := len(vectors[0])
	acc := make([]*partial, len(models))
	for i, v := range vectors {
		// Record IDs match datasets.VectorRecords so the reference and the
		// MapReduce run draw identical assignments.
		c := assignComponent(v, fmt.Sprintf("v%06d", i), iter, models)
		if acc[c] == nil {
			acc[c] = newPartial(dim, true)
		}
		acc[c].sum.Add(v)
		for j := range v {
			acc[c].sumSq[j] += v[j] * v[j]
		}
		acc[c].count++
	}
	return dirichletPosterior(acc, models, len(vectors), alpha)
}

// modelsToResult finalises a Result from the mixture: significant components
// become centers; points are assigned by maximum posterior.
func modelsToResult(vectors []Vector, models []normalModel, res Result) Result {
	for _, m := range models {
		res.Centers = append(res.Centers, m.Mean)
	}
	res.Assignments = make([]int, len(vectors))
	for i, v := range vectors {
		best, bestP := 0, math.Inf(-1)
		for c, m := range models {
			if lp := math.Log(m.Weight+1e-12) + m.logPdf(v); lp > bestP {
				best, bestP = c, lp
			}
		}
		res.Assignments[i] = best
	}
	return res
}

// Dirichlet is the in-memory reference implementation.
func Dirichlet(vectors []Vector, opts DirichletOptions) (Result, error) {
	if _, err := checkDims(vectors); err != nil {
		return Result{}, err
	}
	if opts.K < 1 || opts.MaxIter < 1 {
		return Result{}, fmt.Errorf("clustering: dirichlet needs K >= 1 and MaxIter >= 1")
	}
	models := dirichletInit(vectors, opts.K)
	res := Result{Algorithm: "dirichlet"}
	for iter := 0; iter < opts.MaxIter; iter++ {
		models = dirichletStep(vectors, models, iter, opts.Alpha)
		res.Iterations++
		centers := make([]Vector, len(models))
		for i, m := range models {
			centers[i] = m.Mean
		}
		res.History = append(res.History, centers)
	}
	return modelsToResult(vectors, models, res), nil
}

// dirichletMapper samples a component per point and emits its sufficient
// statistics (sum, sum of squares, count).
type dirichletMapper struct {
	models []normalModel
	iter   int
}

func (m *dirichletMapper) Map(key string, value any, emit mapreduce.Emit) {
	v := Vector(value.([]float64))
	c := assignComponent(v, key, m.iter, m.models)
	pt := newPartial(len(v), true)
	pt.sum.Add(v)
	for j := range v {
		pt.sumSq[j] += v[j] * v[j]
	}
	pt.count = 1
	emit("c"+strconv.Itoa(c), pt, partialSize(len(v))*2)
}

// DirichletMR runs Dirichlet process clustering as per-iteration MapReduce
// jobs: mappers sample assignments against the current mixture (shipped as
// side input), the reducer updates each component's posterior, and the
// driver re-normalises the mixture weights.
func DirichletMR(p *sim.Proc, d *Driver, opts DirichletOptions) (Result, error) {
	if len(d.vectors) == 0 {
		return Result{}, fmt.Errorf("clustering: driver has no loaded vectors")
	}
	if opts.K < 1 || opts.MaxIter < 1 {
		return Result{}, fmt.Errorf("clustering: dirichlet needs K >= 1 and MaxIter >= 1")
	}
	models := dirichletInit(d.vectors, opts.K)
	res := Result{Algorithm: "dirichlet"}
	start := p.Now()
	for iter := 0; iter < opts.MaxIter; iter++ {
		state, err := d.writeState(p, "dirichlet", len(models))
		if err != nil {
			return res, err
		}
		captured := models
		capIter := iter
		cfg := d.iterationJob("dirichlet", state, 1,
			func() mapreduce.Mapper { return &dirichletMapper{models: captured, iter: capIter} },
			func() mapreduce.Reducer {
				return mapreduce.ReducerFunc(func(key string, values []any, emit mapreduce.Emit) {
					acc := sumPartials(values)
					emit(key, acc, partialSize(len(acc.sum))*2)
				})
			},
			kmeansCombiner,
		)
		cfg.Cost.MapCPUPerRecord = d.perRecordCost(len(captured))
		out, stats, err := d.runJob(p, cfg)
		if err != nil {
			return res, err
		}
		res.JobStats = append(res.JobStats, stats)
		res.Iterations++

		acc := make([]*partial, len(models))
		for _, kv := range out {
			idx, err := reduceIndex(kv.Key, len(models))
			if err != nil {
				return res, err
			}
			acc[idx] = kv.Value.(*partial)
		}
		models = dirichletPosterior(acc, models, len(d.vectors), opts.Alpha)
		centers := make([]Vector, len(models))
		for i, m := range models {
			centers[i] = m.Mean
		}
		res.History = append(res.History, centers)
	}
	res = modelsToResult(d.vectors, models, res)
	res.Runtime = p.Now() - start
	return res, nil
}
