package faults

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vhadoop/internal/core"
	"vhadoop/internal/nmon"
	"vhadoop/internal/sim"
	"vhadoop/internal/xen"
)

func sampleSchedule() Schedule {
	return Schedule{Faults: []Fault{
		{At: 1.5, Kind: KindDegrade, Target: "pm2", Duration: 2, Factor: 0.5},
		{At: 10, Kind: KindPartition, Target: "pm2", Duration: 5},
		{At: 20.25, Kind: KindNFSStall, Target: "filer", Duration: 5, Factor: 0.5},
		{At: 30, Kind: KindHang, Target: "vm01", Duration: 40},
		{At: 50, Kind: KindVMCrash, Target: "vm03"},
		{At: 60, Kind: KindMachCrash, Target: "pm2"},
	}}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := sampleSchedule()
	// Add awkward-but-exact floats: the codec must round-trip every float64.
	s.Faults = append(s.Faults, Fault{
		At: 1.0 / 3.0, Kind: KindDegrade, Target: "pm1",
		Duration: math.Nextafter(2, 3), Factor: 0.1 + 0.2,
	})
	enc := EncodeString(s)
	got, err := DecodeString(enc)
	if err != nil {
		t.Fatalf("Decode(Encode(s)): %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed schedule:\n got %+v\nwant %+v", got, s)
	}
	if re := EncodeString(got); re != enc {
		t.Fatalf("re-encode not canonical:\n got %q\nwant %q", re, enc)
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	text := "# chaos run 7\n\nvhfaults v1\n\n# mid-run partition\n10 partition pm2 5 0\n"
	s, err := DecodeString(text)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := Schedule{Faults: []Fault{{At: 10, Kind: KindPartition, Target: "pm2", Duration: 5}}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("got %+v, want %+v", s, want)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"no header", "10 vmcrash vm01 0 0\n"},
		{"bad header", "vhfaults v2\n"},
		{"short line", "vhfaults v1\n10 vmcrash vm01\n"},
		{"long line", "vhfaults v1\n10 vmcrash vm01 0 0 extra\n"},
		{"bad float", "vhfaults v1\nten vmcrash vm01 0 0\n"},
		{"negative time", "vhfaults v1\n-1 vmcrash vm01 0 0\n"},
		{"nan time", "vhfaults v1\nNaN vmcrash vm01 0 0\n"},
		{"inf duration", "vhfaults v1\n1 hang vm01 +Inf 0\n"},
		{"unknown kind", "vhfaults v1\n1 meteor pm1 0 0\n"},
		{"permanent with duration", "vhfaults v1\n1 vmcrash vm01 5 0\n"},
		{"transient without duration", "vhfaults v1\n1 hang vm01 0 0\n"},
		{"factor on crash", "vhfaults v1\n1 vmcrash vm01 0 0.5\n"},
		{"degrade factor zero", "vhfaults v1\n1 degrade pm1 5 0\n"},
		{"degrade factor above one", "vhfaults v1\n1 degrade pm1 5 1.5\n"},
		{"partition with factor", "vhfaults v1\n1 partition pm1 5 0.5\n"},
	}
	for _, tc := range cases {
		if _, err := DecodeString(tc.text); err == nil {
			t.Errorf("%s: Decode accepted %q", tc.name, tc.text)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	s := Schedule{Faults: []Fault{{At: -1, Kind: KindVMCrash, Target: "vm01"}}}
	var b strings.Builder
	if err := Encode(&b, s); err == nil {
		t.Fatal("Encode accepted a negative fault time")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	opts := GenOptions{
		N: 25, Horizon: 600,
		VMs:      []string{"vm01", "vm02", "vm03"},
		Machines: []string{"pm1", "pm2"},
		Filer:    "filer",
	}
	a := Generate(rand.New(rand.NewSource(42)), opts)
	b := Generate(rand.New(rand.NewSource(42)), opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Faults) != opts.N {
		t.Fatalf("got %d faults, want %d", len(a.Faults), opts.N)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatalf("faults not time-sorted at %d", i)
		}
	}
	c := Generate(rand.New(rand.NewSource(43)), opts)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateRespectsTargetPools(t *testing.T) {
	// Only machine targets: no vmcrash/hang/nfsstall may appear.
	s := Generate(rand.New(rand.NewSource(7)), GenOptions{
		N: 40, Horizon: 100, Machines: []string{"pm1"},
	})
	for _, f := range s.Faults {
		switch f.Kind {
		case KindMachCrash, KindDegrade, KindPartition:
		default:
			t.Fatalf("kind %s drawn with no targets for it", f.Kind)
		}
	}
	if len(Generate(rand.New(rand.NewSource(7)), GenOptions{N: 10, Horizon: 100}).Faults) != 0 {
		t.Fatal("empty target pools should generate an empty schedule")
	}
}

func testPlatform(t *testing.T) *core.Platform {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Nodes = 4
	opts.Layout = core.CrossDomain
	return core.MustNewPlatform(opts)
}

func TestInjectorEndToEnd(t *testing.T) {
	pl := testPlatform(t)
	inj := NewInjector(pl)
	mon := nmon.New(pl.Engine, nmon.WithInterval(1), nmon.WithPlane(pl.Obs))
	inj.Attach(mon)
	if err := inj.Install(sampleSchedule()); err != nil {
		t.Fatalf("Install: %v", err)
	}

	pm2 := pl.PMs[1]
	nicBW := pm2.NICTx.Bandwidth()
	diskCap := pl.NFS.Disk().Capacity()
	type probe struct {
		at       sim.Time
		nic      float64
		filer    float64
		vm03Dead bool
		pm2Fail  bool
	}
	var probes []probe
	_, err := pl.Run(func(p *sim.Proc) error {
		for _, at := range []sim.Time{2.5, 4, 12, 16, 22, 26, 55, 65} {
			p.Sleep(at - p.Now())
			probes = append(probes, probe{
				at:       at,
				nic:      pm2.NICTx.Bandwidth(),
				filer:    pl.NFS.Disk().Capacity(),
				vm03Dead: pl.VMs[3].State() == xen.StateCrashed,
				pm2Fail:  pm2.Failed(),
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	want := []struct {
		nic, filer float64
	}{
		{nicBW * 0.5, diskCap}, // 2.5: degrade pm2 active
		{nicBW, diskCap},       // 4: degrade restored exactly
		{1, diskCap},           // 12: partition floor
		{nicBW, diskCap},       // 16: partition restored
		{nicBW, diskCap * 0.5}, // 22: filer stalled
		{nicBW, diskCap},       // 26: filer restored
		{nicBW, diskCap},       // 55: after vmcrash
		{nicBW, diskCap},       // 65: after machcrash
	}
	for i, pr := range probes {
		if pr.nic != want[i].nic {
			t.Errorf("t=%.1f: pm2 NIC bandwidth = %g, want %g", pr.at, pr.nic, want[i].nic)
		}
		if pr.filer != want[i].filer {
			t.Errorf("t=%.1f: filer disk capacity = %g, want %g", pr.at, pr.filer, want[i].filer)
		}
	}
	if !probes[6].vm03Dead {
		t.Error("vm03 still alive after vmcrash fault")
	}
	if probes[6].pm2Fail {
		t.Error("pm2 failed before its machcrash fault")
	}
	if !probes[7].pm2Fail {
		t.Error("pm2 not failed after machcrash fault")
	}
	if st := pl.VMs[2].State(); st != xen.StateCrashed {
		t.Errorf("vm02 (resident on pm2) state = %v after machcrash, want crashed", st)
	}

	events := mon.Events()
	// 6 faults, 3 of them transient with a restore event each, and the hang
	// has no restore (the tracker just resumes heartbeating): 6 + 3 = 9.
	if len(events) != 9 {
		t.Fatalf("got %d monitor events, want 9: %+v", len(events), events)
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("events out of order at %d", i)
		}
	}
	wantSubstr := []string{"degrade pm2", "degrade pm2 restored", "partition pm2",
		"partition pm2 restored", "nfsstall filer", "nfsstall filer restored",
		"hang vm01", "vmcrash vm03", "machcrash pm2"}
	for _, sub := range wantSubstr {
		found := false
		for _, ev := range events {
			if strings.Contains(ev.Label, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no monitor event containing %q", sub)
		}
	}
	if rep := mon.Analyze(); len(rep.Events) != len(events) {
		t.Errorf("Analyze dropped events: %d vs %d", len(rep.Events), len(events))
	}
}

func TestInjectorRejectsUnknownTargets(t *testing.T) {
	pl := testPlatform(t)
	inj := NewInjector(pl)
	cases := []Schedule{
		{Faults: []Fault{{At: 1, Kind: KindVMCrash, Target: "vm99"}}},
		{Faults: []Fault{{At: 1, Kind: KindHang, Target: "vm00", Duration: 5}}}, // master has no tracker
		{Faults: []Fault{{At: 1, Kind: KindMachCrash, Target: "pm9"}}},
		{Faults: []Fault{{At: 1, Kind: KindDegrade, Target: "pm9", Duration: 5, Factor: 0.5}}},
		{Faults: []Fault{{At: 1, Kind: KindNFSStall, Target: "pm1", Duration: 5, Factor: 0.5}}},
		{Faults: []Fault{{At: -1, Kind: KindVMCrash, Target: "vm01"}}}, // invalid fault
	}
	for i, s := range cases {
		if err := inj.Install(s); err == nil {
			t.Errorf("case %d: Install accepted %+v", i, s.Faults[0])
		}
	}
	// A rejected schedule must not arm anything: the engine should drain
	// immediately with no fault events pending.
	if end := pl.Engine.Run(); end != 0 {
		t.Fatalf("rejected schedules left events armed: engine ran to %v", end)
	}
}

func TestOverlappingFaultsComposeByMinimum(t *testing.T) {
	pl := testPlatform(t)
	inj := NewInjector(pl)
	s := Schedule{Faults: []Fault{
		{At: 1, Kind: KindDegrade, Target: "pm1", Duration: 10, Factor: 0.5},
		{At: 3, Kind: KindDegrade, Target: "pm1", Duration: 4, Factor: 0.25},
	}}
	if err := inj.Install(s); err != nil {
		t.Fatalf("Install: %v", err)
	}
	pm1 := pl.PMs[0]
	orig := pm1.NICTx.Bandwidth()
	var mid, after, restored float64
	pl.Engine.At(5, func() { mid = pm1.NICTx.Bandwidth() })
	pl.Engine.At(8, func() { after = pm1.NICTx.Bandwidth() })
	pl.Engine.At(12, func() { restored = pm1.NICTx.Bandwidth() })
	pl.Engine.Run()
	if mid != orig*0.25 {
		t.Errorf("overlap window: bandwidth = %g, want %g (min factor)", mid, orig*0.25)
	}
	if after != orig*0.5 {
		t.Errorf("after inner restore: bandwidth = %g, want %g", after, orig*0.5)
	}
	if restored != orig {
		t.Errorf("after outer restore: bandwidth = %g, want %g", restored, orig)
	}
}
