package faults

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFaultSchedule drives the schedule codec with arbitrary bytes: Decode
// must never panic, and anything it accepts must re-encode canonically —
// Encode(Decode(x)) decodes back to the identical schedule and the second
// encoding is byte-identical to the first. This is what lets chaos runs
// treat a schedule file as a stable identity for a whole experiment.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte("vhfaults v1\n"))
	f.Add([]byte("vhfaults v1\n10 partition pm2 5 0\n"))
	f.Add([]byte("# comment\n\nvhfaults v1\n1.5 degrade pm1 2 0.5\n50 vmcrash vm03 0 0\n"))
	f.Add([]byte("vhfaults v1\n0.3333333333333333 nfsstall filer 5 0.30000000000000004\n"))
	f.Add([]byte("vhfaults v1\n30 hang vm01 40 0\n60 machcrash pm2 0 0\n"))
	f.Add([]byte("vhfaults v2\n1 vmcrash vm01 0 0\n"))
	f.Add([]byte("vhfaults v1\nNaN vmcrash vm01 0 0\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		enc := EncodeString(s)
		s2, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\nencoding: %q", err, enc)
		}
		if !reflect.DeepEqual(s2, s) {
			t.Fatalf("round trip changed schedule:\n got %+v\nwant %+v", s2, s)
		}
		if re := EncodeString(s2); re != enc {
			t.Fatalf("re-encode unstable:\n got %q\nwant %q", re, enc)
		}
	})
}
