package faults

import (
	"fmt"

	"vhadoop/internal/core"
	"vhadoop/internal/mapreduce"
	"vhadoop/internal/nmon"
	"vhadoop/internal/obs"
	"vhadoop/internal/phys"
	"vhadoop/internal/sim"
	"vhadoop/internal/vnet"
	"vhadoop/internal/xen"
)

// partitionFloor is the bandwidth a partitioned machine's links keep, in
// bytes/s. The fluid fabric cannot carry a true zero (active flows must
// drain), so a partition leaves a trickle — the same shape as TCP
// retransmissions crawling through a flapping link.
const partitionFloor = 1.0

// scaledLinks is one machine's network links under fault control. Several
// overlapping faults may target the same machine; the effective bandwidth
// is the original times the most severe (minimum) active factor.
type scaledLinks struct {
	name    string
	links   []*vnet.Link
	orig    []float64
	factors []float64 // active multipliers; a partition contributes 0
}

func newScaledLinks(pm *phys.Machine) *scaledLinks {
	links := []*vnet.Link{pm.Bridge, pm.NICTx, pm.NICRx, pm.NICProc, pm.StorTx, pm.StorRx}
	orig := make([]float64, len(links))
	for i, l := range links {
		orig[i] = l.Bandwidth()
	}
	return &scaledLinks{name: pm.Name, links: links, orig: orig}
}

func (sl *scaledLinks) push(factor float64) {
	sl.factors = append(sl.factors, factor)
	sl.retune()
}

func (sl *scaledLinks) pop(factor float64) {
	for i, f := range sl.factors {
		if f == factor {
			sl.factors = append(sl.factors[:i], sl.factors[i+1:]...)
			sl.retune()
			return
		}
	}
	panic("faults: restoring a factor that was never applied on " + sl.name)
}

func (sl *scaledLinks) retune() {
	eff := 1.0
	for _, f := range sl.factors {
		if f < eff {
			eff = f
		}
	}
	for i, l := range sl.links {
		bw := sl.orig[i] * eff
		if bw < partitionFloor {
			bw = partitionFloor
		}
		//vhlint:allow xdomain -- chaos harness degrades link bandwidth directly; a sharded engine would route this as a vnet-shard control event
		l.SetBandwidth(bw)
	}
}

// scaledDisk is the same overlap bookkeeping for a fair-share disk (the
// NFS filer's).
type scaledDisk struct {
	name    string
	disk    *sim.FairShare
	orig    float64
	factors []float64
}

func (sd *scaledDisk) push(factor float64) {
	sd.factors = append(sd.factors, factor)
	sd.retune()
}

func (sd *scaledDisk) pop(factor float64) {
	for i, f := range sd.factors {
		if f == factor {
			sd.factors = append(sd.factors[:i], sd.factors[i+1:]...)
			sd.retune()
			return
		}
	}
	panic("faults: restoring a factor that was never applied on " + sd.name)
}

func (sd *scaledDisk) retune() {
	eff := 1.0
	for _, f := range sd.factors {
		if f < eff {
			eff = f
		}
	}
	c := sd.orig * eff
	if c < partitionFloor {
		c = partitionFloor
	}
	sd.disk.SetCapacity(c)
}

// Injector arms fault schedules against a provisioned platform. Every
// fault fires as a simulation event at its scheduled virtual time, is
// written to the engine trace, and — when a monitor is attached — lands
// as an annotation in the nmon output.
type Injector struct {
	pl  *core.Platform
	mon *nmon.Monitor

	byPM  map[string]*scaledLinks // lookup only; never iterated
	filer *scaledDisk

	injected *obs.CounterVec // faults_injected_total by kind, interned per kind
}

// NewInjector wires an injector to a platform.
func NewInjector(pl *core.Platform) *Injector {
	inj := &Injector{pl: pl, byPM: make(map[string]*scaledLinks)}
	inj.injected = pl.Obs.CounterVec("faults_injected_total", "kind")
	for _, pm := range pl.Topo.Machines() {
		inj.byPM[pm.Name] = newScaledLinks(pm)
	}
	inj.filer = &scaledDisk{
		name: pl.NFS.Machine().Name,
		disk: pl.NFS.Disk(),
		orig: pl.NFS.Disk().Capacity(),
	}
	return inj
}

// Attach routes fault events into mon as annotations.
func (inj *Injector) Attach(mon *nmon.Monitor) { inj.mon = mon }

// note records one fault action: as a typed event in the span trace
// (which mirrors the identical line into the engine trace), or straight
// to Engine.Tracef on a platform without a plane, plus an nmon
// annotation when a monitor is attached.
func (inj *Injector) note(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if inj.pl.Obs != nil {
		inj.pl.Obs.Eventf(obs.KindFault, "fault: %s", msg)
	} else {
		inj.pl.Engine.Tracef("fault: %s", msg)
	}
	if inj.mon != nil {
		inj.mon.Annotate("fault: " + msg)
	}
}

// fired counts one injected fault and opens its span (zero-length for
// instantaneous kinds; the caller finishes longer ones at restore time).
func (inj *Injector) fired(f Fault) *obs.Span {
	pl := inj.pl.Obs
	if pl == nil {
		return nil
	}
	inj.injected.With(string(f.Kind)).Inc()
	sp := pl.Start(obs.KindFault, string(f.Kind)+":"+f.Target, nil)
	if f.Factor != 0 {
		sp.SetFloat("factor", f.Factor)
	}
	if f.Duration != 0 {
		sp.SetFloat("duration", float64(f.Duration))
	}
	return sp
}

func (inj *Injector) vm(name string) (*xen.VM, error) {
	for _, vm := range inj.pl.VMs {
		if vm.Name == name {
			return vm, nil
		}
	}
	return nil, fmt.Errorf("faults: no VM named %q", name)
}

func (inj *Injector) tracker(name string) (*mapreduce.Tracker, error) {
	for _, tr := range inj.pl.MR.Trackers() {
		if tr.VM.Name == name {
			return tr, nil
		}
	}
	return nil, fmt.Errorf("faults: no tasktracker on a VM named %q", name)
}

func (inj *Injector) machine(name string) (*phys.Machine, error) {
	for _, pm := range inj.pl.Topo.Machines() {
		if pm.Name == name {
			return pm, nil
		}
	}
	return nil, fmt.Errorf("faults: no machine named %q", name)
}

// Install validates the schedule, resolves every target against the
// platform, and arms one engine event per fault action (transient kinds
// get a second event for the restore). Nothing is armed if any fault
// fails to resolve, so a bad schedule cannot half-fire.
func (inj *Injector) Install(s Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	arm := make([]func(), 0, len(s.Faults))
	for i, f := range s.Faults {
		a, err := inj.resolve(f)
		if err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
		arm = append(arm, a)
	}
	for _, a := range arm {
		a()
	}
	return nil
}

// resolve binds one fault to its target and returns the arming closure.
func (inj *Injector) resolve(f Fault) (func(), error) {
	e := inj.pl.Engine
	switch f.Kind {
	case KindVMCrash:
		vm, err := inj.vm(f.Target)
		if err != nil {
			return nil, err
		}
		return func() {
			e.At(f.At, func() {
				inj.note("vmcrash %s", vm.Name)
				inj.fired(f).Finish()
				vm.Crash()
			})
		}, nil
	case KindMachCrash:
		pm, err := inj.machine(f.Target)
		if err != nil {
			return nil, err
		}
		return func() {
			e.At(f.At, func() {
				crashed := inj.pl.Xen.CrashMachine(pm)
				inj.note("machcrash %s (%d VMs lost)", pm.Name, len(crashed))
				inj.fired(f).Finish()
			})
		}, nil
	case KindHang:
		tr, err := inj.tracker(f.Target)
		if err != nil {
			return nil, err
		}
		until := f.At + f.Duration
		return func() {
			var sp *obs.Span
			e.At(f.At, func() {
				inj.note("hang %s until %.2f", f.Target, until)
				sp = inj.fired(f)
				//vhlint:allow xdomain -- chaos harness wedges the tracker daemon in place; a sharded engine would deliver this as a machine-shard fault event
				tr.Hang(until)
			})
			e.At(until, func() { sp.Finish() })
		}, nil
	case KindDegrade, KindPartition:
		sl, ok := inj.byPM[f.Target]
		if !ok {
			return nil, fmt.Errorf("faults: no machine named %q", f.Target)
		}
		factor := f.Factor // 0 for partition
		return func() {
			var sp *obs.Span
			e.At(f.At, func() {
				inj.note("%s %s factor %g for %.2fs", f.Kind, sl.name, factor, f.Duration)
				sp = inj.fired(f)
				sl.push(factor)
			})
			e.At(f.At+f.Duration, func() {
				inj.note("%s %s restored", f.Kind, sl.name)
				sp.Finish()
				sl.pop(factor)
			})
		}, nil
	case KindNFSStall:
		if f.Target != inj.filer.name {
			return nil, fmt.Errorf("faults: nfsstall target %q is not the filer (%s)", f.Target, inj.filer.name)
		}
		return func() {
			var sp *obs.Span
			e.At(f.At, func() {
				inj.note("nfsstall %s factor %g for %.2fs", inj.filer.name, f.Factor, f.Duration)
				sp = inj.fired(f)
				inj.filer.push(f.Factor)
			})
			e.At(f.At+f.Duration, func() {
				inj.note("nfsstall %s restored", inj.filer.name)
				sp.Finish()
				inj.filer.pop(f.Factor)
			})
		}, nil
	}
	return nil, fmt.Errorf("faults: unknown kind %q", string(f.Kind))
}
