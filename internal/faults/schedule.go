// Package faults is the deterministic fault-injection subsystem of the
// vHadoop platform. A Schedule is a seeded, serialisable list of faults —
// VM crashes, whole-machine failures, tasktracker hangs, network
// degradation and partitions, NFS filer stalls — pinned to virtual
// timestamps. An Injector arms a schedule against a provisioned platform
// so every fault fires off the simulation clock, which makes chaos runs
// exactly reproducible: same seed, same schedule, same trace.
package faults

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"vhadoop/internal/sim"
)

// Kind names a fault class.
type Kind string

// The fault classes the injector understands.
const (
	// KindVMCrash kills one VM permanently (domU panic / destroy).
	KindVMCrash Kind = "vmcrash"
	// KindMachCrash fails a physical machine and every resident VM
	// (power loss, hypervisor panic). Permanent.
	KindMachCrash Kind = "machcrash"
	// KindHang silences a tasktracker's heartbeats for Duration seconds
	// while the VM stays alive — the classic hung-daemon failure that
	// only a timeout-based failure detector can see.
	KindHang Kind = "hang"
	// KindDegrade multiplies a machine's network links (bridge, guest NIC,
	// storage NIC) by Factor for Duration seconds: a flapping switch port
	// or a saturated uplink.
	KindDegrade Kind = "degrade"
	// KindPartition cuts a machine off the network for Duration seconds
	// (bandwidth floored at 1 B/s so the fluid fabric stays live — in-flight
	// transfers stall rather than vanish, like TCP retries during a real
	// partition).
	KindPartition Kind = "partition"
	// KindNFSStall multiplies the NFS filer's disk service rate by Factor
	// for Duration seconds (RAID rebuild, backup job on the filer).
	KindNFSStall Kind = "nfsstall"
)

// transient reports whether the kind is restored after Duration.
func (k Kind) transient() bool {
	switch k {
	case KindHang, KindDegrade, KindPartition, KindNFSStall:
		return true
	}
	return false
}

// scaled reports whether the kind carries a meaningful Factor.
func (k Kind) scaled() bool { return k == KindDegrade || k == KindNFSStall }

// valid reports whether the kind is one the injector understands.
func (k Kind) valid() bool {
	switch k {
	case KindVMCrash, KindMachCrash, KindHang, KindDegrade, KindPartition, KindNFSStall:
		return true
	}
	return false
}

// Fault is one scheduled fault.
type Fault struct {
	At       sim.Time // virtual time the fault fires
	Kind     Kind
	Target   string   // VM name, machine name, or the filer's machine name
	Duration sim.Time // transient kinds only; 0 for permanent kinds
	Factor   float64  // degrade/nfsstall only: multiplier in (0,1]; 0 otherwise
}

// Validate checks one fault's internal consistency (target existence is the
// Injector's job, since only it knows the platform).
func (f Fault) Validate() error {
	if !f.Kind.valid() {
		return fmt.Errorf("faults: unknown kind %q", string(f.Kind))
	}
	if math.IsNaN(f.At) || math.IsInf(f.At, 0) || f.At < 0 {
		return fmt.Errorf("faults: %s %s: bad time %v", f.Kind, f.Target, f.At)
	}
	if f.Target == "" || strings.ContainsAny(f.Target, " \t\n\r#") {
		return fmt.Errorf("faults: %s: bad target %q", f.Kind, f.Target)
	}
	if math.IsNaN(f.Duration) || math.IsInf(f.Duration, 0) {
		return fmt.Errorf("faults: %s %s: bad duration %v", f.Kind, f.Target, f.Duration)
	}
	if f.Kind.transient() {
		if f.Duration <= 0 {
			return fmt.Errorf("faults: %s %s: transient fault needs positive duration, got %v", f.Kind, f.Target, f.Duration)
		}
	} else if f.Duration != 0 {
		return fmt.Errorf("faults: %s %s: permanent fault cannot carry duration %v", f.Kind, f.Target, f.Duration)
	}
	if f.Kind.scaled() {
		if math.IsNaN(f.Factor) || f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("faults: %s %s: factor %v outside (0,1]", f.Kind, f.Target, f.Factor)
		}
	} else if f.Factor != 0 {
		return fmt.Errorf("faults: %s %s: kind carries no factor, got %v", f.Kind, f.Target, f.Factor)
	}
	return nil
}

// Schedule is an ordered list of faults. Order in the file is preserved;
// the injector arms each fault at its own timestamp, so the simulation
// clock, not slice position, decides firing order.
type Schedule struct {
	Faults []Fault
}

// Validate checks every fault.
func (s Schedule) Validate() error {
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// header identifies the schedule wire format.
const header = "vhfaults v1"

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// Encode writes the schedule in its canonical text form: a header line,
// then one `at kind target duration factor` line per fault. Floats use
// the shortest representation that parses back exactly, so
// Decode(Encode(s)) == s for any valid schedule.
func Encode(w io.Writer, s Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, f := range s.Faults {
		_, err := fmt.Fprintf(w, "%s %s %s %s %s\n",
			ftoa(f.At), string(f.Kind), f.Target, ftoa(f.Duration), ftoa(f.Factor))
		if err != nil {
			return err
		}
	}
	return nil
}

// EncodeString is Encode into a string.
func EncodeString(s Schedule) string {
	var b strings.Builder
	if err := Encode(&b, s); err != nil {
		panic(err) // strings.Builder cannot fail; only invalid schedules do
	}
	return b.String()
}

// Decode parses a schedule. Blank lines and `#` comments are skipped;
// everything else is validated strictly, so any successfully decoded
// schedule re-encodes canonically.
func Decode(r io.Reader) (Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var s Schedule
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !sawHeader {
			if text != header {
				return Schedule{}, fmt.Errorf("faults: line %d: bad header %q, want %q", line, text, header)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return Schedule{}, fmt.Errorf("faults: line %d: want 5 fields, got %d", line, len(fields))
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: line %d: at: %v", line, err)
		}
		dur, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: line %d: duration: %v", line, err)
		}
		factor, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: line %d: factor: %v", line, err)
		}
		f := Fault{At: at, Kind: Kind(fields[1]), Target: fields[2], Duration: dur, Factor: factor}
		if err := f.Validate(); err != nil {
			return Schedule{}, fmt.Errorf("faults: line %d: %w", line, err)
		}
		s.Faults = append(s.Faults, f)
	}
	if err := sc.Err(); err != nil {
		return Schedule{}, fmt.Errorf("faults: %w", err)
	}
	if !sawHeader {
		return Schedule{}, fmt.Errorf("faults: missing %q header", header)
	}
	return s, nil
}

// DecodeString is Decode from a string.
func DecodeString(text string) (Schedule, error) {
	return Decode(strings.NewReader(text))
}

// GenOptions parameterises Generate.
type GenOptions struct {
	N       int      // faults to draw
	Horizon sim.Time // faults fire in [0.05, 0.95) of the horizon
	// Target pools. A kind with an empty pool is never drawn.
	VMs      []string // vmcrash and hang targets
	Machines []string // machcrash, degrade and partition targets
	Filer    string   // nfsstall target; "" disables nfsstall
	// Kinds restricts generation to a subset; empty means every kind
	// whose target pool is populated.
	Kinds []Kind
}

// Generate draws a random schedule from rng: deterministic for a given
// seed and options, so chaos runs can regenerate their schedule from a
// single integer. Faults come out sorted by time.
func Generate(rng *rand.Rand, opts GenOptions) Schedule {
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindVMCrash, KindMachCrash, KindHang, KindDegrade, KindPartition, KindNFSStall}
	}
	var usable []Kind
	for _, k := range kinds {
		switch k {
		case KindVMCrash, KindHang:
			if len(opts.VMs) > 0 {
				usable = append(usable, k)
			}
		case KindMachCrash, KindDegrade, KindPartition:
			if len(opts.Machines) > 0 {
				usable = append(usable, k)
			}
		case KindNFSStall:
			if opts.Filer != "" {
				usable = append(usable, k)
			}
		}
	}
	var s Schedule
	if len(usable) == 0 || opts.N <= 0 || opts.Horizon <= 0 {
		return s
	}
	for i := 0; i < opts.N; i++ {
		k := usable[rng.Intn(len(usable))]
		f := Fault{
			Kind: k,
			At:   (0.05 + 0.9*rng.Float64()) * opts.Horizon,
		}
		switch k {
		case KindVMCrash, KindHang:
			f.Target = opts.VMs[rng.Intn(len(opts.VMs))]
		case KindMachCrash, KindDegrade, KindPartition:
			f.Target = opts.Machines[rng.Intn(len(opts.Machines))]
		case KindNFSStall:
			f.Target = opts.Filer
		}
		if k.transient() {
			f.Duration = (0.05 + 0.25*rng.Float64()) * opts.Horizon
		}
		if k.scaled() {
			f.Factor = 0.05 + 0.45*rng.Float64()
		}
		s.Faults = append(s.Faults, f)
	}
	// Insertion sort by (At, Kind, Target): stable, deterministic, and
	// keeps the generated file human-scannable.
	for i := 1; i < len(s.Faults); i++ {
		for j := i; j > 0 && less(s.Faults[j], s.Faults[j-1]); j-- {
			s.Faults[j], s.Faults[j-1] = s.Faults[j-1], s.Faults[j]
		}
	}
	return s
}

func less(a, b Fault) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Target < b.Target
}
